#!/usr/bin/env bash
# cluster_smoke.sh — multi-process distributed-tier smoke in three phases.
#
# Phase 1 (availability): 3 partitioned mqserve backends (R=2 rotation
# placement) + the mqrouter coordinator, with a faultlink-scripted total
# outage of backend 2 in the middle of a closed-loop mqload run through the
# router. Passes when the run completes with 0 client-visible errors, the
# breaker-driven failover is visible in the router counters (failovers > 0),
# and no query was unroutable.
#
# Phase 2 (freshness): 3 MUTABLE backends + a router with live routing-table
# refresh and the router-tier result cache, driven by the moving-vehicles
# workload with -readback: every acked move is immediately read back through
# the router, so vehicles crossing Hilbert range boundaries prove that
# cluster reads see fresh writes. Passes when the run checks > 0 moves and
# misses exactly 0 of them.
#
# Phase 3 (adaptive): one monolithic mutable backend with -adaptive behind
# the router, driven by the migrating-hotspot workload (-drift). The
# repartitioner must split the hot ranges it observes, the router must pick
# the new cuts up through its refresh loop, and no query may fail while the
# topology shifts underneath the run. Passes on 0 client-visible errors,
# >= 1 split, and >= 1 structural routing refresh.
#
# Build flags come from $RACE (default -race), so CI exercises the whole
# fan-out path under the race detector.
#
# The outage window is relative to the backend's *listen* time (mqserve
# builds its dataset and index before arming the injector), so the schedule
# below holds regardless of how slow the -race build of the index is.
set -euo pipefail
cd "$(dirname "$0")/.."

# RACE may be set empty for a quick non-race run; unset means -race.
RACE=${RACE--race}
CONNS=${CONNS:-32}
DURATION=${DURATION:-30s}
OUTAGE=${OUTAGE:-10s+8s}
MOVE_DURATION=${MOVE_DURATION:-10s}
DRIFT_DURATION=${DRIFT_DURATION:-12s}

BIN=$(mktemp -d)
LOG=$(mktemp -d)
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$BIN"
  echo "logs in $LOG"
}
trap cleanup EXIT

echo "== build ($RACE)"
go build $RACE -o "$BIN" ./cmd/mqserve ./cmd/mqrouter ./cmd/mqload

P0=7081 P1=7082 P2=7083 RP=7171

echo "== start 3 backends (R=2; backend 2 scheduled outage $OUTAGE after listen)"
"$BIN/mqserve" -addr 127.0.0.1:$P0 -partition 0/3 -replicas 2 >"$LOG/be0.log" 2>&1 &
"$BIN/mqserve" -addr 127.0.0.1:$P1 -partition 1/3 -replicas 2 >"$LOG/be1.log" 2>&1 &
"$BIN/mqserve" -addr 127.0.0.1:$P2 -partition 2/3 -replicas 2 -fault "outage=$OUTAGE" >"$LOG/be2.log" 2>&1 &

wait_for() { # wait_for <logfile> <what>
  for _ in $(seq 1 180); do
    grep -q "listening" "$1" 2>/dev/null && return 0
    sleep 1
  done
  echo "FAIL: $2 did not start"; cat "$1" 2>/dev/null; exit 1
}
wait_for "$LOG/be0.log" "backend 0"
wait_for "$LOG/be1.log" "backend 1"
wait_for "$LOG/be2.log" "backend 2"

echo "== start router"
"$BIN/mqrouter" -addr 127.0.0.1:$RP \
  -backends 127.0.0.1:$P0,127.0.0.1:$P1,127.0.0.1:$P2 >"$LOG/router.log" 2>&1 &
wait_for "$LOG/router.log" "router"

echo "== mqload through the router ($CONNS workers, $DURATION, outage mid-run)"
"$BIN/mqload" -addr 127.0.0.1:$RP -conns "$CONNS" -duration "$DURATION" \
  -warmup 1s -router | tee "$LOG/load.log"

queries=$(awk '$1 == "queries" {print $2; exit}' "$LOG/load.log")
errors=$(awk '$1 == "errors" {print $2; exit}' "$LOG/load.log")
failovers=$(sed -n 's/.* \([0-9]*\) failovers.*/\1/p' "$LOG/load.log" | head -1)
unroutable=$(sed -n 's/.* \([0-9]*\) unroutable.*/\1/p' "$LOG/load.log" | head -1)

echo "== verdict: queries=$queries errors=$errors failovers=$failovers unroutable=$unroutable"
fail=0
[ -n "$queries" ] && [ "$queries" -gt 0 ] || { echo "FAIL: no queries completed"; fail=1; }
[ "$errors" = "0" ] || { echo "FAIL: $errors client-visible errors (want 0: R=2 must cover the outage)"; fail=1; }
[ -n "$failovers" ] && [ "$failovers" -gt 0 ] || { echo "FAIL: no failovers recorded — the outage never hit the run"; fail=1; }
[ "$unroutable" = "0" ] || { echo "FAIL: $unroutable queries unroutable"; fail=1; }
if [ "$fail" -ne 0 ]; then
  echo "-- backend 2 log tail --"; tail -5 "$LOG/be2.log"
  echo "-- router log tail --"; tail -5 "$LOG/router.log"
  exit 1
fi
echo "PASS: outage covered by replicas with zero client-visible errors"

kill $(jobs -p) 2>/dev/null || true
wait 2>/dev/null || true

M0=7084 M1=7085 M2=7086 MR=7172

echo "== phase 2: start 3 mutable backends (R=2)"
"$BIN/mqserve" -addr 127.0.0.1:$M0 -partition 0/3 -replicas 2 -mutable >"$LOG/mbe0.log" 2>&1 &
"$BIN/mqserve" -addr 127.0.0.1:$M1 -partition 1/3 -replicas 2 -mutable >"$LOG/mbe1.log" 2>&1 &
"$BIN/mqserve" -addr 127.0.0.1:$M2 -partition 2/3 -replicas 2 -mutable >"$LOG/mbe2.log" 2>&1 &
wait_for "$LOG/mbe0.log" "mutable backend 0"
wait_for "$LOG/mbe1.log" "mutable backend 1"
wait_for "$LOG/mbe2.log" "mutable backend 2"

echo "== start router (live refresh + result cache)"
"$BIN/mqrouter" -addr 127.0.0.1:$MR -refresh 50ms -qcache 32 \
  -backends 127.0.0.1:$M0,127.0.0.1:$M1,127.0.0.1:$M2 >"$LOG/mrouter.log" 2>&1 &
wait_for "$LOG/mrouter.log" "mutable-tier router"

echo "== moving vehicles through the router with read-back ($MOVE_DURATION)"
"$BIN/mqload" -addr 127.0.0.1:$MR -moving -readback -vehicles 16 -conns 8 \
  -duration "$MOVE_DURATION" -warmup 1s -router | tee "$LOG/moving.log"

checked=$(awk '$1 == "readback" {print $2; exit}' "$LOG/moving.log")
missed=$(sed -n 's/.*read back, \([0-9]*\) missed.*/\1/p' "$LOG/moving.log" | head -1)
werrs=$(awk '$1 == "errors" {print $2; exit}' "$LOG/moving.log")

echo "== verdict: readback checked=$checked missed=$missed write-errors=$werrs"
fail=0
[ -n "$checked" ] && [ "$checked" -gt 0 ] || { echo "FAIL: no acked moves were read back"; fail=1; }
[ "$missed" = "0" ] || { echo "FAIL: $missed acked moves invisible to reads (want 0: routing must track writes)"; fail=1; }
[ "$werrs" = "0" ] || { echo "FAIL: $werrs write errors"; fail=1; }
if [ "$fail" -ne 0 ]; then
  echo "-- mutable router log tail --"; tail -5 "$LOG/mrouter.log"
  exit 1
fi
echo "PASS: every acked move across the cluster was immediately readable"

kill $(jobs -p) 2>/dev/null || true
wait 2>/dev/null || true

A0=7087 AR=7173

echo "== phase 3: start adaptive mutable backend + router"
"$BIN/mqserve" -addr 127.0.0.1:$A0 -mutable -adaptive >"$LOG/abe0.log" 2>&1 &
wait_for "$LOG/abe0.log" "adaptive backend"
"$BIN/mqrouter" -addr 127.0.0.1:$AR -refresh 50ms \
  -backends 127.0.0.1:$A0 >"$LOG/arouter.log" 2>&1 &
wait_for "$LOG/arouter.log" "adaptive-tier router"

echo "== drifting hotspot through the router ($DRIFT_DURATION)"
"$BIN/mqload" -addr 127.0.0.1:$AR -drift -conns 8 \
  -duration "$DRIFT_DURATION" -warmup 1s -router | tee "$LOG/drift.log"

derrs=$(sed -n 's/.*, \([0-9]*\) errors.*/\1/p' "$LOG/drift.log" | head -1)
dstructural=$(sed -n 's/.*refreshes: \([0-9]*\) structural.*/\1/p' "$LOG/drift.log" | head -1)
dstructural=${dstructural:-0}

# The drift run talks to the router, whose stats snapshot carries router_*
# metrics only — pull the backend's own counters directly for the split
# count.
"$BIN/mqload" -addr 127.0.0.1:$A0 -conns 1 -duration 1s -serverstats \
  >"$LOG/astats.log" 2>&1 || true
dsplits=$(awk '$1 == "mutable_splits_total" {print $2; exit}' "$LOG/astats.log")

echo "== verdict: errors=$derrs splits=$dsplits structural-refreshes=$dstructural"
fail=0
[ "$derrs" = "0" ] || { echo "FAIL: $derrs client-visible errors while the topology shifted"; fail=1; }
[ -n "$dsplits" ] && [ "$dsplits" -gt 0 ] || { echo "FAIL: the repartitioner never split under the hotspot"; fail=1; }
[ "$dstructural" -gt 0 ] || { echo "FAIL: the router never saw a structural cut change"; fail=1; }
if [ "$fail" -ne 0 ]; then
  echo "-- adaptive backend log tail --"; tail -5 "$LOG/abe0.log"
  echo "-- adaptive router log tail --"; tail -5 "$LOG/arouter.log"
  exit 1
fi
echo "PASS: hot ranges split under load and the router followed the cuts live"
