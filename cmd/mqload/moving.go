// moving.go is the moving-objects workload: vehicles drive shortest-path
// routes on the road network derived from the deterministic dataset, every
// step a MsgMove write of the vehicle's fresh geometry, interleaved with
// range/point/NN reads near the vehicle — the paper's mobile client doing
// both halves of the work at once. The server must run an updatable pool
// (mqserve -mutable, or an mqrouter over mutable backends).
//
// Staleness is measured from the acks themselves: each ack carries the
// owning shard's base epoch, so a vehicle whose consecutive moves ack at the
// same epoch is watching its writes pile up in the overlay; the epoch bump
// rate is writes-folded-per-compaction as the client observes it.
package main

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/obs"
	"mobispatial/internal/ops"
	"mobispatial/internal/roadnet"
	"mobispatial/internal/serve/client"
	"mobispatial/internal/stats"
)

type movingOpts struct {
	dsName      string
	conns       int
	vehicles    int
	duration    time.Duration
	warmup      time.Duration
	rangeW      float64
	seed        int64
	readFrac    float64
	readback    bool
	qmix        mix
	serverStats bool
	routerMode  bool
}

// vehicle is one moving object: its wire id (above the base dataset, so it
// never collides with a static segment), the road node it is heading to, and
// the remaining segment ids of its current route.
type vehicle struct {
	id        uint32
	node      int32
	route     []uint32
	lastEpoch uint64
	acked     bool
}

// advance steps the vehicle one road segment, routing to a fresh random
// destination in the connected component whenever the current route runs
// out, and returns the segment geometry the vehicle now occupies.
func (v *vehicle) advance(g *roadnet.Graph, comp []int32, ds *dataset.Dataset, rng *rand.Rand) geom.Segment {
	for len(v.route) == 0 {
		dst := comp[rng.Intn(len(comp))]
		if dst == v.node {
			continue
		}
		rt, ok := g.RouteBetweenNodes(v.node, dst, ops.Null{})
		if !ok || len(rt.SegIDs) == 0 {
			continue
		}
		v.route = rt.SegIDs
		v.node = dst
	}
	segID := v.route[0]
	v.route = v.route[1:]
	return ds.Seg(segID)
}

func runMoving(c *client.Client, o movingOpts) error {
	var ds *dataset.Dataset
	if o.dsName == "pa" {
		ds = dataset.PA()
	} else {
		ds = dataset.NYC()
	}
	g, err := roadnet.Build(ds, 50, ops.Null{})
	if err != nil {
		return fmt.Errorf("road network: %w", err)
	}
	comp := g.LargestComponentNodes()
	if len(comp) < 2 {
		return fmt.Errorf("road network has no routable component")
	}
	fmt.Printf("mqload: moving-objects workload, %d vehicles on %d nodes / %d edges (component %d)\n",
		o.vehicles, g.Nodes(), g.Edges(), len(comp))

	// Place every vehicle: one step along a route, then an insert. The
	// first write proves the server is updatable before the clock starts.
	rng := rand.New(rand.NewSource(o.seed))
	vehs := make([]*vehicle, o.vehicles)
	for i := range vehs {
		v := &vehicle{id: uint32(ds.Len() + i), node: comp[rng.Intn(len(comp))]}
		seg := v.advance(g, comp, ds, rng)
		ack, err := c.Insert(v.id, seg)
		if err != nil {
			return fmt.Errorf("placing vehicle %d (is the server running -mutable?): %w", v.id, err)
		}
		v.lastEpoch, v.acked = ack.Epoch, true
		vehs[i] = v
	}

	var (
		measuring  atomic.Bool
		stop       atomic.Bool
		writeErrs  atomic.Uint64
		readErrs   atomic.Uint64
		notOwned   atomic.Uint64
		epochBumps atomic.Uint64
		rbChecked  atomic.Uint64
		rbMissed   atomic.Uint64
		wg         sync.WaitGroup
	)
	writeHists := make([]*stats.Histogram, o.conns)
	readHists := make([]*stats.Histogram, o.conns)
	for w := 0; w < o.conns; w++ {
		writeHists[w] = stats.NewLatencyHistogram()
		readHists[w] = stats.NewLatencyHistogram()
		// Worker w drives vehicles w, w+conns, w+2*conns, ...
		var mine []*vehicle
		for i := w; i < len(vehs); i += o.conns {
			mine = append(mine, vehs[i])
		}
		wg.Add(1)
		go func(w int, mine []*vehicle) {
			defer wg.Done()
			if len(mine) == 0 {
				return
			}
			wrng := rand.New(rand.NewSource(o.seed + 1000 + int64(w)))
			wh, rh := writeHists[w], readHists[w]
			for k := 0; !stop.Load(); k++ {
				v := mine[k%len(mine)]
				seg := v.advance(g, comp, ds, wrng)
				start := time.Now()
				ack, err := c.Move(v.id, seg)
				elapsed := time.Since(start)
				if measuring.Load() {
					if err != nil {
						writeErrs.Add(1)
					} else {
						wh.Record(elapsed.Seconds())
						if !ack.Owned {
							notOwned.Add(1)
						}
						if v.acked && ack.Epoch > v.lastEpoch {
							epochBumps.Add(1)
						}
					}
				}
				if err == nil {
					v.lastEpoch, v.acked = ack.Epoch, true
				}

				// Read-your-writes check: the move was acked, so a range
				// read over the fresh geometry must return this vehicle —
				// a miss means the serving tier's routing or caching lags
				// its writes. Counted for the whole run, warmup included:
				// freshness is a correctness property, not a latency one.
				if o.readback && err == nil {
					ids, rerr := c.RangeIDs(seg.MBR())
					if rerr != nil {
						readErrs.Add(1)
					} else {
						rbChecked.Add(1)
						found := false
						for _, got := range ids {
							if got == v.id {
								found = true
								break
							}
						}
						if !found {
							rbMissed.Add(1)
						}
					}
				}

				if wrng.Float64() >= o.readFrac {
					continue
				}
				pt := seg.MBR().Center()
				var rerr error
				start = time.Now()
				switch o.qmix.pick(wrng) {
				case "point":
					_, rerr = c.PointIDs(pt, 0)
				case "range":
					_, rerr = c.RangeIDs(geom.Rect{
						Min: geom.Point{X: pt.X - o.rangeW, Y: pt.Y - o.rangeW},
						Max: geom.Point{X: pt.X + o.rangeW, Y: pt.Y + o.rangeW},
					})
				case "nn":
					_, rerr = c.Nearest(pt)
				}
				elapsed = time.Since(start)
				if measuring.Load() {
					if rerr != nil {
						readErrs.Add(1)
					} else {
						rh.Record(elapsed.Seconds())
					}
				}
			}
		}(w, mine)
	}

	time.Sleep(o.warmup)
	var pre obs.Snapshot
	if o.serverStats || o.routerMode {
		if msg, err := c.StatsSnapshot(); err == nil {
			pre = obs.SnapshotFromMsg(msg)
		}
	}
	measuring.Store(true)
	start := time.Now()
	time.Sleep(o.duration)
	measuring.Store(false)
	measured := time.Since(start)
	stop.Store(true)
	wg.Wait()

	writes := stats.NewLatencyHistogram()
	reads := stats.NewLatencyHistogram()
	for w := 0; w < o.conns; w++ {
		if err := writes.Merge(writeHists[w]); err != nil {
			return err
		}
		if err := reads.Merge(readHists[w]); err != nil {
			return err
		}
	}

	link := c.Link()
	fmt.Printf("mqload: %d workers, %v measured\n", o.conns, measured.Round(time.Millisecond))
	fmt.Printf("  writes    %d moves (%.0f qps), latency mean %s  p50 %s  p95 %s  p99 %s\n",
		writes.Count(), float64(writes.Count())/measured.Seconds(),
		ms(writes.Mean()), ms(writes.P(0.50)), ms(writes.P(0.95)), ms(writes.P(0.99)))
	fmt.Printf("  reads     %d (%.0f qps), latency mean %s  p50 %s  p95 %s  p99 %s\n",
		reads.Count(), float64(reads.Count())/measured.Seconds(),
		ms(reads.Mean()), ms(reads.P(0.50)), ms(reads.P(0.95)), ms(reads.P(0.99)))
	fmt.Printf("  errors    %d write, %d read, %d retries; %d acks not-owned\n",
		writeErrs.Load(), readErrs.Load(), c.Retries(), notOwned.Load())
	if o.readback {
		fmt.Printf("  readback  %d acked moves read back, %d missed\n",
			rbChecked.Load(), rbMissed.Load())
	}
	if bumps := epochBumps.Load(); bumps > 0 {
		fmt.Printf("  staleness %d epoch swaps observed in acks — a write waits ~%.0f writes in the overlay before folding into the packed base\n",
			bumps, float64(writes.Count())/float64(bumps))
	} else {
		fmt.Printf("  staleness no epoch swaps observed in acks (compactor idle or disabled)\n")
	}
	fmt.Printf("  link      rtt %v, bandwidth %s\n", link.RTT.Round(time.Microsecond), mbps(link.BandwidthBps))
	printWireReport(c.WireStats(), link.BandwidthBps, 1)

	if o.serverStats || o.routerMode {
		msg, err := c.StatsSnapshot()
		if err != nil {
			return fmt.Errorf("server stats: %w", err)
		}
		snap := obs.SnapshotFromMsg(msg)
		if o.routerMode {
			printRouterReport(pre, snap)
			printRouterWriteReport(pre, snap)
		}
		if o.serverStats {
			printMutableReport(pre, snap)
			printServerStats(snap, msg.UptimeMicros)
		}
	}
	return nil
}

// printMutableReport summarizes the server's update subsystem over this run:
// write volume by kind, compactions, and the per-shard epoch/pending/
// staleness gauges aggregated to their extremes. Degrades to a notice when
// the snapshot has no mutable_* metrics (server not started with -mutable).
func printMutableReport(pre, post obs.Snapshot) {
	inserts := counterDelta(pre, post, "mutable_inserts_total")
	deletes := counterDelta(pre, post, "mutable_deletes_total")
	moves := counterDelta(pre, post, "mutable_moves_total")
	compactions := counterDelta(pre, post, "mutable_compactions_total")
	shards, maxEpoch, pending, maxStale := mutableGauges(post)
	if shards == 0 {
		fmt.Println("  mutable   no mutable_* metrics in the snapshot (server not started with -mutable?)")
		return
	}
	fmt.Printf("  mutable   %d updatable shards; this run applied %.0f inserts, %.0f deletes, %.0f moves over %.0f compactions\n",
		shards, inserts, deletes, moves, compactions)
	fmt.Printf("            max epoch %.0f, %.0f updates pending in overlays, max staleness %.3fs\n",
		maxEpoch, pending, maxStale)
}

// mutableGauges folds the per-shard mutable_* gauges: shard count, maximum
// epoch, total pending overlay entries, and maximum staleness.
func mutableGauges(snap obs.Snapshot) (shards int, maxEpoch, pending, maxStale float64) {
	for _, g := range snap.Gauges {
		if _, _, ok := splitShardLabeled(g.Name, "mutable_epoch"); ok {
			shards++
			if g.Value > maxEpoch {
				maxEpoch = g.Value
			}
		}
		if _, _, ok := splitShardLabeled(g.Name, "mutable_pending"); ok {
			pending += g.Value
		}
		if _, _, ok := splitShardLabeled(g.Name, "mutable_staleness_seconds"); ok {
			if g.Value > maxStale {
				maxStale = g.Value
			}
		}
	}
	return shards, maxEpoch, pending, maxStale
}

// splitShardLabeled matches base{shard="label"} like splitLabeled does for
// backend labels.
func splitShardLabeled(name, base string) (full, label string, ok bool) {
	rest, found := strings.CutPrefix(name, base+"{shard=\"")
	if !found {
		return "", "", false
	}
	label, found = strings.CutSuffix(rest, "\"}")
	if !found {
		return "", "", false
	}
	return name, label, true
}

// printRouterWriteReport appends the coordinator's write-replication
// counters when the target router routed any writes this run.
func printRouterWriteReport(pre, post obs.Snapshot) {
	writes := counterDelta(pre, post, "router_writes_total")
	if writes == 0 {
		return
	}
	fmt.Printf("            writes: %.0f routed over %.0f legs; %.0f leg errors, %.0f diverged, %.0f unroutable\n",
		writes, counterDelta(pre, post, "router_write_legs_total"),
		counterDelta(pre, post, "router_write_leg_errors_total"),
		counterDelta(pre, post, "router_write_divergence_total"),
		counterDelta(pre, post, "router_write_unroutable_total"))
}
