// drift.go is the migrating-hotspot workload (-drift): the Zipf hotspot
// cluster jumps to a new region of the map at every phase boundary, the
// access pattern an adaptive server (-mqserve -adaptive) is built to chase.
// Against a static partition the hot shard stays hot and its queue grows;
// an adaptive backend splits the hot shard within a half-life or two and
// the per-phase tail latency recovers. The report prints p50/p99 per phase
// plus the server's repartition events (mutable_splits_total /
// mutable_merges_total deltas) observed during each phase, so the
// follow-the-heat behavior is visible directly in the run output.
package main

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/obs"
	"mobispatial/internal/serve/client"
	"mobispatial/internal/shard"
	"mobispatial/internal/stats"
)

type driftOpts struct {
	dsName      string
	conns       int
	duration    time.Duration
	warmup      time.Duration
	qmix        mix
	rangeW      float64
	zipfS       float64
	hotspots    int
	phases      int
	seed        int64
	serverStats bool
	routerMode  bool
}

// runDrift drives the phased workload: closed-loop workers sample query
// points from the CURRENT phase's hotspot centers; the main goroutine
// advances the phase on a fixed schedule and snapshots the server's
// counters at every boundary.
func runDrift(c *client.Client, o driftOpts) error {
	var ds *dataset.Dataset
	if o.dsName == "pa" {
		ds = dataset.PA()
	} else {
		ds = dataset.NYC()
	}

	// Phase anchors sit at evenly spaced ranks of the Hilbert-ordered
	// segment midpoints: each phase's centers are one spatially compact
	// cluster (Hilbert locality), and consecutive phases land far apart in
	// the exact key space the adaptive backend partitions on — so the heat
	// provably moves between shards, not within one.
	type keyed struct {
		key uint64
		pt  geom.Point
	}
	quant := shard.QuantizerFor(shard.BoundsOf(ds.Items()), 0)
	pts := make([]keyed, ds.Len())
	for i := range pts {
		mid := ds.Segments[i].Midpoint()
		pts[i] = keyed{quant.Value(mid.X, mid.Y), mid}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].key < pts[j].key })
	centers := make([][]geom.Point, o.phases)
	for p := range centers {
		lo := (2*p+1)*len(pts)/(2*o.phases) - o.hotspots/2
		if lo < 0 {
			lo = 0
		}
		hi := lo + o.hotspots
		if hi > len(pts) {
			hi = len(pts)
			if lo = hi - o.hotspots; lo < 0 {
				lo = 0
			}
		}
		cs := make([]geom.Point, 0, hi-lo)
		for _, kp := range pts[lo:hi] {
			cs = append(cs, kp.pt)
		}
		centers[p] = cs
	}

	var (
		phase     atomic.Int64
		measuring atomic.Bool
		stop      atomic.Bool
		errs      atomic.Uint64
		wg        sync.WaitGroup
	)
	// hists[w*phases+p] is worker w's latency record for phase p.
	hists := make([]*stats.Histogram, o.conns*o.phases)
	for i := range hists {
		hists[i] = stats.NewLatencyHistogram()
	}
	const hotJitter = 64.0
	for w := 0; w < o.conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.seed + int64(w)))
			zipf := rand.NewZipf(rng, o.zipfS, 1, uint64(o.hotspots-1))
			for !stop.Load() {
				ph := int(phase.Load())
				cs := centers[ph]
				k := int(zipf.Uint64())
				if k >= len(cs) {
					k = len(cs) - 1
				}
				pt := geom.Point{
					X: cs[k].X + (rng.Float64()-0.5)*2*hotJitter,
					Y: cs[k].Y + (rng.Float64()-0.5)*2*hotJitter,
				}
				var qerr error
				start := time.Now()
				switch o.qmix.pick(rng) {
				case "point":
					_, qerr = c.PointIDs(pt, 0)
				case "range":
					_, qerr = c.RangeIDs(geom.Rect{
						Min: geom.Point{X: pt.X - o.rangeW, Y: pt.Y - o.rangeW},
						Max: geom.Point{X: pt.X + o.rangeW, Y: pt.Y + o.rangeW},
					})
				case "nn":
					_, qerr = c.Nearest(pt)
				}
				elapsed := time.Since(start)
				if !measuring.Load() {
					continue
				}
				if qerr != nil {
					errs.Add(1)
					continue
				}
				hists[w*o.phases+ph].Record(elapsed.Seconds())
			}
		}(w)
	}

	// Snapshot the server's counters at every phase boundary so repartition
	// events (and anything else) can be attributed per phase. A failed
	// snapshot leaves the slot empty and the report degrades gracefully.
	snapAt := func() (obs.Snapshot, bool) {
		msg, err := c.StatsSnapshot()
		if err != nil {
			return obs.Snapshot{}, false
		}
		return obs.SnapshotFromMsg(msg), true
	}
	snaps := make([]obs.Snapshot, o.phases+1)
	snapOK := make([]bool, o.phases+1)

	time.Sleep(o.warmup)
	snaps[0], snapOK[0] = snapAt()
	measuring.Store(true)
	start := time.Now()
	phaseLen := o.duration / time.Duration(o.phases)
	for p := 0; p < o.phases; p++ {
		phase.Store(int64(p))
		time.Sleep(phaseLen)
		snaps[p+1], snapOK[p+1] = snapAt()
	}
	measuring.Store(false)
	measured := time.Since(start)
	stop.Store(true)
	wg.Wait()

	fmt.Printf("mqload: drift workload, %d phases x %v, zipf s=%.2f over %d centers/phase, mix %s\n",
		o.phases, phaseLen.Round(time.Millisecond), o.zipfS, o.hotspots, mixString(o.qmix))
	total := stats.NewLatencyHistogram()
	for p := 0; p < o.phases; p++ {
		ph := stats.NewLatencyHistogram()
		for w := 0; w < o.conns; w++ {
			if err := ph.Merge(hists[w*o.phases+p]); err != nil {
				return err
			}
		}
		if err := total.Merge(ph); err != nil {
			return err
		}
		line := fmt.Sprintf("  phase %-2d  %7d queries (%.0f qps)  p50 %s  p99 %s",
			p, ph.Count(), float64(ph.Count())/phaseLen.Seconds(), ms(ph.P(0.50)), ms(ph.P(0.99)))
		if snapOK[p] && snapOK[p+1] {
			splits := counterDelta(snaps[p], snaps[p+1], "mutable_splits_total")
			merges := counterDelta(snaps[p], snaps[p+1], "mutable_merges_total")
			if splits+merges > 0 || snapOK[0] {
				line += fmt.Sprintf("  [%.0f splits, %.0f merges]", splits, merges)
			}
		}
		fmt.Println(line)
	}
	fmt.Printf("  total     %d queries (%.0f qps), p50 %s p95 %s p99 %s, %d errors, %d retries\n",
		total.Count(), float64(total.Count())/measured.Seconds(),
		ms(total.P(0.50)), ms(total.P(0.95)), ms(total.P(0.99)), errs.Load(), c.Retries())
	if snapOK[0] && snapOK[o.phases] {
		fmt.Printf("  adaptive  %.0f splits, %.0f merges over the run\n",
			counterDelta(snaps[0], snaps[o.phases], "mutable_splits_total"),
			counterDelta(snaps[0], snaps[o.phases], "mutable_merges_total"))
	}
	printWireReport(c.WireStats(), c.Link().BandwidthBps, 1)
	if o.routerMode && snapOK[0] && snapOK[o.phases] {
		printRouterReport(snaps[0], snaps[o.phases])
	}
	if o.serverStats {
		msg, err := c.StatsSnapshot()
		if err != nil {
			return fmt.Errorf("server stats: %w", err)
		}
		snap := obs.SnapshotFromMsg(msg)
		if snapOK[0] {
			printShardReport(snaps[0], snap)
			printCacheReport(snaps[0], snap)
		}
		printServerStats(snap, msg.UptimeMicros)
	}
	return nil
}

func mixString(m mix) string {
	s := ""
	for i, k := range m.kinds {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s=%d", k, m.weights[i])
	}
	return s
}
