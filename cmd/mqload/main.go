// Command mqload is a closed-loop load generator for mqserve: N workers each
// issue the next query only after the previous answer arrives, so measured
// latency is uninflated by coordinated omission and QPS reflects the
// server's real completion rate at that concurrency.
//
// Usage:
//
//	mqload [flags]
//
// Flags:
//
//	-addr        server address (default 127.0.0.1:7070)
//	-dataset     pa | nyc — sizes the query area to the server's map (default pa)
//	-conns       concurrent closed-loop workers / pooled connections (default 32)
//	-duration    measured run length (default 10s)
//	-warmup      excluded ramp-up time (default 1s)
//	-mix         query mix, e.g. point=60,range=25,nn=15
//	-rangew      half-width in meters of range windows (default 1000)
//	-zipf        Zipf skew s (> 1): queries cluster around -hotspots centers
//	             sampled from the dataset's segments, rank-weighted k^-s —
//	             the workload the server's result cache (-qcache) is built
//	             for (0 = uniform; incompatible with -planner and -moving)
//	-hotspots    zipf mode: number of hotspot centers (default 64)
//	-seed        workload seed (default 1)
//	-batch       micro-batch size: each worker packs N queries into one
//	             QueryBatch wire exchange (default 1 = one frame per query;
//	             incompatible with -planner)
//	-planner     route queries through the partitioning planner against a
//	             shipped sub-index instead of always offloading
//	-shipw       planner mode: half-width in meters of the shipment window
//	             (default 5000)
//	-shipbudget  planner mode: shipment memory budget in bytes (default 4MB)
//	-fault       fault-injection profile applied to every connection: a
//	             preset (lossy, slow, stall, outage, flaky), a key=value
//	             list, or both — "lossy,drop=0.1" (see internal/faultlink)
//	-fallback    arm the circuit breaker and a full local index: when the
//	             link fails, queries are answered at the client (the paper's
//	             all-client scheme as a degraded mode)
//	-serverstats pull and print the server's metrics snapshot at the end;
//	             against a sharded server this adds the per-run shard report
//	             (mean fan-out, scatter fraction, NN shards visited/pruned)
//	-router      the target is an mqrouter coordinator: append its fan-out,
//	             failover, and per-backend leg report (the workload itself
//	             is unchanged — the router speaks the same protocol)
//	-drift       migrating-hotspot workload: the Zipf hotspot cluster jumps
//	             to a new region of the map each phase — the pattern an
//	             adaptive server (mqserve -adaptive) chases by splitting hot
//	             shards; the report prints p50/p99 and the server's
//	             repartition events per phase (implies -zipf 1.5 if unset;
//	             incompatible with -planner, -batch, and -moving)
//	-phases      drift mode: hotspot phases across the run (default 4)
//	-moving      moving-objects workload: vehicles drive shortest-path
//	             routes on the road network derived from the dataset,
//	             each step a MsgMove write, interleaved with reads near
//	             the vehicle (requires a server started with -mutable;
//	             incompatible with -planner and -batch)
//	-vehicles    moving mode: vehicle count (default 64)
//	-readfrac    moving mode: mean reads issued per move (default 1.0)
//	-readback    moving mode: after every acked move, immediately range-read
//	             the vehicle's own position and count acked writes a read
//	             fails to return — the freshness check that catches a serving
//	             tier whose routing or caching lags its writes
//
// In moving mode the report splits writes from reads — write qps and
// latency, read latency, ack'd ownership — and adds the staleness evidence:
// how many writes fold into each epoch swap (from the acks' epoch
// progression) plus the server's own mutable_* gauges when -serverstats is
// set.
//
// Output: total queries, QPS, mean and p50/p95/p99 latency from a merged
// streaming histogram (internal/stats), plus error and retry counts, and a
// wire line — frames, bytes, and modeled NIC energy per query from the
// client's wire counters. With -batch > 1 the report adds a modeled
// batched-vs-unbatched NIC energy comparison. In planner mode the report
// breaks down per scheme (fully-client, server-ids, fully-server) with the
// predicted-vs-actual §4.1 cost ratios.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mobispatial/internal/core"
	"mobispatial/internal/dataset"
	"mobispatial/internal/faultlink"
	"mobispatial/internal/geom"
	"mobispatial/internal/obs"
	"mobispatial/internal/ops"
	"mobispatial/internal/parallel"
	"mobispatial/internal/proto"
	"mobispatial/internal/rtree"
	"mobispatial/internal/serve/client"
	"mobispatial/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mqload:", err)
		os.Exit(1)
	}
}

type mix struct {
	kinds   []string
	weights []int
	total   int
}

func parseMix(s string) (mix, error) {
	var m mix
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("bad mix entry %q (want kind=weight)", part)
		}
		switch name {
		case "point", "range", "nn":
		default:
			return m, fmt.Errorf("unknown query kind %q in mix", name)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad weight in %q", part)
		}
		m.kinds = append(m.kinds, name)
		m.weights = append(m.weights, w)
		m.total += w
	}
	if m.total <= 0 {
		return m, fmt.Errorf("mix has no positive weight")
	}
	return m, nil
}

func (m mix) pick(rng *rand.Rand) string {
	n := rng.Intn(m.total)
	for i, w := range m.weights {
		if n < w {
			return m.kinds[i]
		}
		n -= w
	}
	return m.kinds[len(m.kinds)-1]
}

func run(args []string) error {
	fs := flag.NewFlagSet("mqload", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "server address")
	dsName := fs.String("dataset", "pa", "dataset the server runs: pa | nyc")
	conns := fs.Int("conns", 32, "closed-loop workers / pooled connections")
	duration := fs.Duration("duration", 10*time.Second, "measured run length")
	warmup := fs.Duration("warmup", time.Second, "excluded ramp-up time")
	mixFlag := fs.String("mix", "point=60,range=25,nn=15", "query mix")
	rangeW := fs.Float64("rangew", 1000, "half-width of range windows (m)")
	zipfS := fs.Float64("zipf", 0, "Zipf skew s > 1 for hotspot reads (0 = uniform)")
	hotspotN := fs.Int("hotspots", 64, "zipf mode: hotspot count")
	seed := fs.Int64("seed", 1, "workload seed")
	batch := fs.Int("batch", 1, "queries per wire exchange (QueryBatch micro-batching)")
	planner := fs.Bool("planner", false, "route queries through the partitioning planner")
	shipW := fs.Float64("shipw", 5000, "planner: half-width of the shipment window (m)")
	shipBudget := fs.Int("shipbudget", 4<<20, "planner: shipment memory budget (bytes)")
	faultSpec := fs.String("fault", "", "fault-injection profile (preset and/or key=value list)")
	fallback := fs.Bool("fallback", false, "arm the breaker and answer queries locally when the link fails")
	serverStats := fs.Bool("serverstats", false, "print the server's metrics snapshot at the end")
	routerMode := fs.Bool("router", false, "target is an mqrouter: print its fan-out/failover report at the end")
	drift := fs.Bool("drift", false, "migrating-hotspot workload: the Zipf hotspot cluster jumps to a new region each phase")
	phases := fs.Int("phases", 4, "drift mode: hotspot phases across the run")
	moving := fs.Bool("moving", false, "moving-objects workload against a -mutable server")
	vehicles := fs.Int("vehicles", 64, "moving mode: vehicle count")
	readFrac := fs.Float64("readfrac", 1.0, "moving mode: mean reads per move")
	readback := fs.Bool("readback", false, "moving mode: read own position back after every acked move and count misses")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *moving && (*planner || *batch > 1) {
		return fmt.Errorf("-moving is incompatible with -planner and -batch")
	}
	if *drift {
		if *moving || *planner || *batch > 1 {
			return fmt.Errorf("-drift is incompatible with -moving, -planner, and -batch")
		}
		if *zipfS == 0 {
			*zipfS = 1.5 // a drifting hotspot is a Zipf hotspot by definition
		}
		if *zipfS <= 1 {
			return fmt.Errorf("-drift needs zipf s > 1 (got %v)", *zipfS)
		}
		if *phases < 1 {
			return fmt.Errorf("-phases must be >= 1")
		}
		if *hotspotN < 2 {
			return fmt.Errorf("-hotspots must be >= 2 in drift mode")
		}
	}
	if *zipfS != 0 && !*drift {
		if *zipfS <= 1 {
			return fmt.Errorf("-zipf needs s > 1 (got %v)", *zipfS)
		}
		if *hotspotN < 1 {
			return fmt.Errorf("-hotspots must be >= 1")
		}
		if *moving || *planner {
			return fmt.Errorf("-zipf is incompatible with -moving and -planner")
		}
	}

	var extent geom.Rect
	var recordBytes int
	switch *dsName {
	case "pa":
		extent, recordBytes = dataset.PAConfig().Extent, dataset.PAConfig().RecordBytes
	case "nyc":
		extent, recordBytes = dataset.NYCConfig().Extent, dataset.NYCConfig().RecordBytes
	default:
		return fmt.Errorf("unknown dataset %q (want pa or nyc)", *dsName)
	}
	qmix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}
	if *batch < 1 || *batch > proto.MaxBatchQueries {
		return fmt.Errorf("-batch must be in [1, %d]", proto.MaxBatchQueries)
	}
	if *batch > 1 && *planner {
		return fmt.Errorf("-batch and -planner are mutually exclusive: the planner " +
			"decides per query where it runs, batching always offloads")
	}

	hub := obs.NewHub()
	cfg := client.Config{Addr: *addr, Conns: *conns, Obs: hub}

	// Fault injection: every connection this client dials goes through the
	// injector, so the measured run experiences the profile's drops, stalls,
	// resets, and outage windows.
	var inj *faultlink.Injector
	if *faultSpec != "" {
		prof, err := faultlink.ParseProfile(*faultSpec)
		if err != nil {
			return err
		}
		inj = faultlink.New(prof)
		cfg.Dial = inj.DialFunc(nil)
		fmt.Printf("mqload: fault injection on: %s\n", prof)
	}

	// Local fallback: rebuild the server's deterministic dataset and index at
	// the client (data present at client), arm the breaker, and degrade to
	// the all-client scheme whenever the link fails.
	if *fallback {
		var ds *dataset.Dataset
		if *dsName == "pa" {
			ds = dataset.PA()
		} else {
			ds = dataset.NYC()
		}
		tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
		if err != nil {
			return fmt.Errorf("fallback index: %w", err)
		}
		pool, err := parallel.New(ds, tree, 0)
		if err != nil {
			return fmt.Errorf("fallback pool: %w", err)
		}
		cfg.Fallback = client.NewPoolFallback(pool)
		cfg.Breaker = client.BreakerConfig{Enabled: true}
		fmt.Printf("mqload: local fallback armed (%d records indexed, breaker on)\n", ds.Len())
	}

	c, err := client.New(cfg)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Probe(); err != nil {
		if inj == nil && !*fallback {
			return fmt.Errorf("server unreachable: %w", err)
		}
		// A faulted or fallback-armed run tolerates an unreachable server —
		// demonstrating that is the point.
		fmt.Printf("mqload: probe failed (%v) — continuing degraded\n", err)
	}

	if *drift {
		return runDrift(c, driftOpts{
			dsName:      *dsName,
			conns:       *conns,
			duration:    *duration,
			warmup:      *warmup,
			qmix:        qmix,
			rangeW:      *rangeW,
			zipfS:       *zipfS,
			hotspots:    *hotspotN,
			phases:      *phases,
			seed:        *seed,
			serverStats: *serverStats,
			routerMode:  *routerMode,
		})
	}

	if *moving {
		return runMoving(c, movingOpts{
			dsName:      *dsName,
			conns:       *conns,
			vehicles:    *vehicles,
			duration:    *duration,
			warmup:      *warmup,
			rangeW:      *rangeW,
			seed:        *seed,
			readFrac:    *readFrac,
			readback:    *readback,
			qmix:        qmix,
			serverStats: *serverStats,
			routerMode:  *routerMode,
		})
	}

	// Planner mode: ship a sub-index around the map center, then confine the
	// workload to the covered window so the §4.1 advisor — not missing
	// coverage — decides each query's scheme. One planner is shared by all
	// workers: the shipment is read-only after the fetch.
	var pl *client.Planner
	if *planner {
		pl = client.NewPlanner(c)
		center := extent.Center()
		window := geom.Rect{
			Min: geom.Point{X: center.X - *shipW, Y: center.Y - *shipW},
			Max: geom.Point{X: center.X + *shipW, Y: center.Y + *shipW},
		}
		if err := pl.FetchShipment(window, *shipBudget, recordBytes); err != nil {
			return fmt.Errorf("shipment: %w", err)
		}
		cov := pl.Shipment().Coverage
		fmt.Printf("mqload: planner mode, shipment covers %.1fx%.1f km (%d records)\n",
			cov.Width()/1000, cov.Height()/1000, pl.Shipment().Len())
		extent = cov
	}

	// Zipf hotspot mode: centers are sampled from the dataset's segment
	// midpoints (density-biased, like real junctions), and every query lands
	// near a rank-k^-s-weighted center with a small jitter — many clients
	// asking nearly the same question, the shape the server's result cache
	// turns into hits.
	var hotspots []geom.Point
	if *zipfS != 0 {
		var ds *dataset.Dataset
		if *dsName == "pa" {
			ds = dataset.PA()
		} else {
			ds = dataset.NYC()
		}
		hrng := rand.New(rand.NewSource(*seed))
		hotspots = make([]geom.Point, *hotspotN)
		for i := range hotspots {
			hotspots[i] = ds.Segments[hrng.Intn(ds.Len())].Midpoint()
		}
		fmt.Printf("mqload: zipf hotspot workload, s=%.2f over %d centers\n", *zipfS, *hotspotN)
	}

	var (
		measuring atomic.Bool
		stop      atomic.Bool
		errs      atomic.Uint64
		wg        sync.WaitGroup
	)
	if inj != nil {
		// Scripted outage windows are relative to the start of the workload,
		// not process start (probing and index builds above take real time).
		inj.ResetClock()
	}
	hists := make([]*stats.Histogram, *conns)
	for w := 0; w < *conns; w++ {
		hists[w] = stats.NewLatencyHistogram()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			h := hists[w]
			// hotJitter keeps a hotspot's queries inside a handful of the
			// cache's snapping cells (default pitch 512 map units).
			const hotJitter = 64.0
			var zipf *rand.Zipf
			if hotspots != nil {
				zipf = rand.NewZipf(rng, *zipfS, 1, uint64(len(hotspots)-1))
			}
			samplePt := func() geom.Point {
				if zipf == nil {
					return geom.Point{
						X: extent.Min.X + rng.Float64()*extent.Width(),
						Y: extent.Min.Y + rng.Float64()*extent.Height(),
					}
				}
				c := hotspots[zipf.Uint64()]
				return geom.Point{
					X: c.X + (rng.Float64()-0.5)*2*hotJitter,
					Y: c.Y + (rng.Float64()-0.5)*2*hotJitter,
				}
			}
			qs := make([]proto.QueryMsg, 0, *batch)
			for !stop.Load() {
				if *batch > 1 {
					// Micro-batched path: pack the mix into one QueryBatch
					// exchange. Every query in the batch experienced the
					// batch's round trip, so each records the full latency.
					qs = qs[:0]
					for len(qs) < *batch {
						pt := samplePt()
						switch qmix.pick(rng) {
						case "point":
							qs = append(qs, proto.QueryMsg{Kind: proto.KindPoint, Mode: proto.ModeIDs, Point: pt})
						case "range":
							qs = append(qs, proto.QueryMsg{Kind: proto.KindRange, Mode: proto.ModeIDs, Window: geom.Rect{
								Min: geom.Point{X: pt.X - *rangeW, Y: pt.Y - *rangeW},
								Max: geom.Point{X: pt.X + *rangeW, Y: pt.Y + *rangeW},
							}})
						case "nn":
							qs = append(qs, proto.QueryMsg{Kind: proto.KindNN, Mode: proto.ModeData, Point: pt})
						}
					}
					start := time.Now()
					rs, qerr := c.QueryBatch(qs)
					elapsed := time.Since(start)
					if !measuring.Load() {
						continue
					}
					if qerr != nil {
						errs.Add(uint64(len(qs)))
						continue
					}
					for _, r := range rs {
						if r.Err != nil {
							errs.Add(1)
						} else {
							h.Record(elapsed.Seconds())
						}
					}
					continue
				}
				pt := samplePt()
				var qerr error
				start := time.Now()
				switch qmix.pick(rng) {
				case "point":
					if pl != nil {
						_, qerr = pl.Execute(core.Point(pt))
					} else {
						_, qerr = c.PointIDs(pt, 0)
					}
				case "range":
					w := geom.Rect{
						Min: geom.Point{X: pt.X - *rangeW, Y: pt.Y - *rangeW},
						Max: geom.Point{X: pt.X + *rangeW, Y: pt.Y + *rangeW},
					}
					if pl != nil {
						// Keep the window inside coverage so the advisor,
						// not the coverage check, picks the scheme.
						_, qerr = pl.Execute(core.Range(w.Intersection(extent)))
					} else {
						_, qerr = c.RangeIDs(w)
					}
				case "nn":
					if pl != nil {
						_, qerr = pl.Execute(core.Nearest(pt))
					} else {
						_, qerr = c.Nearest(pt)
					}
				}
				elapsed := time.Since(start)
				if !measuring.Load() {
					continue
				}
				if qerr != nil {
					errs.Add(1)
					continue
				}
				h.Record(elapsed.Seconds())
			}
		}(w)
	}

	time.Sleep(*warmup)
	// Pre-run server snapshot: the shard report prices only this run's
	// queries, so it needs the counter baseline before measurement starts.
	var preShard obs.Snapshot
	if *serverStats || *routerMode {
		if msg, err := c.StatsSnapshot(); err == nil {
			preShard = obs.SnapshotFromMsg(msg)
		}
	}
	measuring.Store(true)
	start := time.Now()
	time.Sleep(*duration)
	measuring.Store(false)
	measured := time.Since(start)
	stop.Store(true)
	wg.Wait()

	total := stats.NewLatencyHistogram()
	for _, h := range hists {
		if err := total.Merge(h); err != nil {
			return err
		}
	}
	link := c.Link()
	fmt.Printf("mqload: %d workers, %v measured, mix %s\n", *conns, measured.Round(time.Millisecond), *mixFlag)
	fmt.Printf("  queries   %d (%.0f qps)\n", total.Count(), float64(total.Count())/measured.Seconds())
	fmt.Printf("  latency   mean %s  p50 %s  p95 %s  p99 %s  max %s\n",
		ms(total.Mean()), ms(total.P(0.50)), ms(total.P(0.95)), ms(total.P(0.99)), ms(total.Max()))
	fmt.Printf("  errors    %d   retries %d\n", errs.Load(), c.Retries())
	fmt.Printf("  link      rtt %v, bandwidth %s\n", link.RTT.Round(time.Microsecond), mbps(link.BandwidthBps))
	printWireReport(c.WireStats(), link.BandwidthBps, *batch)
	if inj != nil || *fallback {
		printDegradedReport(c.Degraded(), inj)
	}

	if pl != nil {
		printSchemeReport(hub.Reg.Snapshot())
	}
	if *serverStats || *routerMode {
		msg, err := c.StatsSnapshot()
		if err != nil {
			return fmt.Errorf("server stats: %w", err)
		}
		snap := obs.SnapshotFromMsg(msg)
		if *routerMode {
			printRouterReport(preShard, snap)
		}
		if *serverStats {
			printShardReport(preShard, snap)
			printCacheReport(preShard, snap)
			printServerStats(snap, msg.UptimeMicros)
		}
	}
	return nil
}

// printRouterReport summarizes the coordinator's behavior over this run —
// counter deltas of the router_* metrics — when the target is an mqrouter
// (router_backends gauge present in its snapshot). The per-backend leg split
// is the read-spreading and failover evidence: during an outage the dead
// backend's legs stop while its replicas absorb the range.
func printRouterReport(pre, post obs.Snapshot) {
	backends := gaugeValue(post, "router_backends")
	if backends <= 0 {
		fmt.Println("  router    no router_* metrics in the snapshot (is the target an mqrouter?)")
		return
	}
	legErrs := counterDelta(pre, post, "router_leg_errors_total")
	failovers := counterDelta(pre, post, "router_failover_total")
	unroutable := counterDelta(pre, post, "router_unroutable_total")
	visited := counterDelta(pre, post, "router_nn_backends_visited_total")
	pruned := counterDelta(pre, post, "router_nn_backends_pruned_total")
	fmt.Printf("  router    %.0f backends, %.0f ranges; %.0f leg errors, %.0f failovers, %.0f unroutable\n",
		backends, gaugeValue(post, "router_ranges"), legErrs, failovers, unroutable)
	if visited+pruned > 0 {
		fmt.Printf("            nn legs: %.0f visited, %.0f pruned by the running bound\n", visited, pruned)
	}
	if batches := counterDelta(pre, post, "router_batches_total"); batches > 0 {
		legs := counterDelta(pre, post, "router_batch_legs_total")
		fmt.Printf("            batches: %.0f grouped (%.0f sub-queries), %.0f legs = %.2f legs/batch, %.0f fallbacks\n",
			batches, counterDelta(pre, post, "router_batch_queries_total"),
			legs, legs/batches, counterDelta(pre, post, "router_batch_fallback_total"))
	}
	if structural := counterDelta(pre, post, "router_refresh_structural_total"); structural > 0 {
		fmt.Printf("            refreshes: %.0f structural (backend repartitioned) of %.0f total\n",
			structural, counterDelta(pre, post, "router_refresh_total"))
	}
	for _, c := range post.Counters {
		name, label, ok := splitLabeled(c.Name, "router_backend_legs_total")
		if !ok {
			continue
		}
		errsName := obs.Name("router_backend_leg_errors_total", "backend", label)
		fmt.Printf("            backend %-24s %.0f legs, %.0f errors, healthy=%.0f\n",
			label, counterDelta(pre, post, name), counterDelta(pre, post, errsName),
			gaugeValue(post, obs.Name("router_backend_healthy", "backend", label)))
	}
}

// splitLabeled matches a labeled metric name of the form
// base{backend="label"} and returns its full name and label.
func splitLabeled(name, base string) (full, label string, ok bool) {
	rest, found := strings.CutPrefix(name, base+"{backend=\"")
	if !found {
		return "", "", false
	}
	label, found = strings.CutSuffix(rest, "\"}")
	if !found {
		return "", "", false
	}
	return name, label, true
}

// printWireReport prices the run's measured wire traffic with the Table 2
// NIC model: per-query frames, bytes, and modeled Joules (transfer at the
// measured bandwidth plus one sleep-exit wakeup per exchange). With batching
// it adds the counterfactual — the same bytes priced at one exchange per
// query — so the report shows exactly what the amortized wakeups bought.
func printWireReport(ws client.WireStats, bwBps float64, batch int) {
	if ws.Queries == 0 {
		return
	}
	if bwBps <= 0 {
		bwBps = 2e6 // the paper's base bandwidth when unmeasured
	}
	em := obs.DefaultEnergyModel()
	q := float64(ws.Queries)
	nicJ := em.NICExchangeJoules(int(ws.BytesTx), int(ws.BytesRx), int(ws.Exchanges), bwBps)
	fmt.Printf("  wire      %.2f frames/query, %.0f B/query, modeled NIC %.4f mJ/query (%d exchanges / %d queries)\n",
		float64(ws.FramesTx+ws.FramesRx)/q, float64(ws.BytesTx+ws.BytesRx)/q,
		nicJ/q*1e3, ws.Exchanges, ws.Queries)
	if batch > 1 {
		unbatched := em.NICExchangeJoules(int(ws.BytesTx), int(ws.BytesRx), int(ws.Queries), bwBps)
		saved := 0.0
		if unbatched > 0 {
			saved = (1 - nicJ/unbatched) * 100
		}
		fmt.Printf("  batching  %d queries/exchange: modeled NIC %.4f mJ/query vs %.4f unbatched (%.1f%% saved on wakeups)\n",
			batch, nicJ/q*1e3, unbatched/q*1e3, saved)
	}
}

// printDegradedReport renders the disconnection-tolerance accounting: the
// breaker's history, how many queries the local fallback absorbed, and the
// energy split — modeled client CPU Joules spent answering locally against
// modeled NIC Joules spent on remote exchanges — plus the injector's fault
// counts when a -fault profile was active.
func printDegradedReport(d client.DegradedStats, inj *faultlink.Injector) {
	fmt.Printf("  breaker   %s: %d trips, %d probes (%d failed)\n",
		d.Breaker, d.Trips, d.Probes, d.ProbeFailures)
	fmt.Printf("  fallback  %d queries answered locally (%d local failures), energy %.4f mJ local CPU vs %.4f mJ remote NIC\n",
		d.Fallbacks, d.FallbackErrors, d.FallbackJoules*1e3, d.RemoteNICJoules*1e3)
	if inj != nil {
		st := inj.Stats()
		fmt.Printf("  faults    %d drops, %d resets, %d stalls, %d outage failures, %d dials\n",
			st.Drops, st.Resets, st.Stalls, st.OutageFailures, st.Dials)
	}
}

// printSchemeReport breaks the run down per partitioning scheme: volume,
// latency, modeled energy, and the §4.1 predicted-vs-actual cost ratios.
func printSchemeReport(snap obs.Snapshot) {
	counters := map[string]uint64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	gauges := map[string]float64{}
	for _, g := range snap.Gauges {
		gauges[g.Name] = g.Value
	}
	hists := map[string]obs.HistValue{}
	for _, h := range snap.Hists {
		hists[h.Name] = h
	}
	fmt.Println("  scheme breakdown (predicted/actual: 1.0 = the model priced it perfectly)")
	for _, scheme := range []string{"fully-client", "server-ids", "fully-server"} {
		n := counters[obs.Name("client_plans_total", "scheme", scheme)]
		if n == 0 {
			continue
		}
		eh := hists[obs.Name("client_exec_seconds", "scheme", scheme)]
		cr := hists[obs.Name("client_plan_cycle_ratio", "scheme", scheme)]
		er := hists[obs.Name("client_plan_energy_ratio", "scheme", scheme)]
		fmt.Printf("    %-12s %7d queries  mean %s p95 %s  %.3f J  pred/act cycles %.2f energy %.2f\n",
			scheme, n, ms(eh.Mean), ms(eh.P95),
			gauges[obs.Name("client_energy_joules_total", "scheme", scheme)],
			cr.Mean, er.Mean)
	}
}

// printShardReport summarizes the server's scatter-gather behavior over this
// run — counter deltas between the pre-measurement and final snapshots — when
// the server runs a sharded pool (shard_count gauge present). Fan-out is the
// mean number of shards a range/point query touched after MBR pruning;
// visited/pruned are the best-first NN scheduling outcomes.
func printShardReport(pre, post obs.Snapshot) {
	shards := gaugeValue(post, "shard_count")
	if shards <= 0 {
		return
	}
	scatter := counterDelta(pre, post, "shard_scatter_total")
	inline := counterDelta(pre, post, "shard_inline_total")
	fanout := counterDelta(pre, post, "shard_fanout_shards_total")
	nn := counterDelta(pre, post, "shard_nn_total")
	visited := counterDelta(pre, post, "shard_nn_shards_visited_total")
	pruned := counterDelta(pre, post, "shard_nn_shards_pruned_total")

	fmt.Printf("  shards    %.0f shards, %.0f scatter lanes\n",
		shards, gaugeValue(post, "shard_workers"))
	if q := scatter + inline; q > 0 {
		fmt.Printf("            range/point: %.0f queries, mean fan-out %.2f shards, %.1f%% scattered\n",
			q, fanout/q, 100*scatter/q)
	}
	if nn > 0 {
		fmt.Printf("            nn/k-nn:     %.0f queries, mean %.2f shards visited, %.2f pruned\n",
			nn, visited/nn, pruned/nn)
	}
}

// printCacheReport summarizes the server's result cache over this run —
// counter deltas of the qcache_* metrics — when the server was started with
// -qcache. A silent return means the cache is off or saw no traffic.
func printCacheReport(pre, post obs.Snapshot) {
	hits := counterDelta(pre, post, "qcache_hits_total")
	misses := counterDelta(pre, post, "qcache_misses_total")
	if hits+misses == 0 {
		return
	}
	fmt.Printf("  qcache    %.0f hits / %.0f misses (%.1f%% hit rate), %.0f invalidations, %.0f bypasses, %.2f J server compute saved\n",
		hits, misses, 100*hits/(hits+misses),
		counterDelta(pre, post, "qcache_invalidations_total"),
		counterDelta(pre, post, "qcache_bypass_total"),
		gaugeValue(post, "qcache_saved_joules"))
}

func gaugeValue(snap obs.Snapshot, name string) float64 {
	for _, g := range snap.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

func counterDelta(pre, post obs.Snapshot, name string) float64 {
	var a, b uint64
	for _, c := range pre.Counters {
		if c.Name == name {
			a = c.Value
		}
	}
	for _, c := range post.Counters {
		if c.Name == name {
			b = c.Value
		}
	}
	if b < a {
		return 0
	}
	return float64(b - a)
}

// printServerStats renders the server's in-protocol snapshot.
func printServerStats(snap obs.Snapshot, uptimeMicros uint64) {
	fmt.Printf("  server stats (uptime %v)\n",
		(time.Duration(uptimeMicros) * time.Microsecond).Round(time.Second))
	for _, c := range snap.Counters {
		fmt.Printf("    %-48s %d\n", c.Name, c.Value)
	}
	sort.Slice(snap.Hists, func(i, j int) bool { return snap.Hists[i].Name < snap.Hists[j].Name })
	for _, h := range snap.Hists {
		if h.Count == 0 {
			continue
		}
		if strings.HasSuffix(h.Name, "_seconds") {
			fmt.Printf("    %-48s n=%d mean %s p95 %s p99 %s\n",
				h.Name, h.Count, ms(h.Mean), ms(h.P95), ms(h.P99))
		} else {
			// Count-valued histograms (e.g. shard_fanout): plain numbers.
			fmt.Printf("    %-48s n=%d mean %.2f p95 %.2f p99 %.2f\n",
				h.Name, h.Count, h.Mean, h.P95, h.P99)
		}
	}
}

func ms(sec float64) string { return fmt.Sprintf("%.2fms", sec*1e3) }

func mbps(bps float64) string {
	if bps <= 0 {
		return "unmeasured"
	}
	return fmt.Sprintf("%.1f Mbps", bps/1e6)
}
