// Command mqload is a closed-loop load generator for mqserve: N workers each
// issue the next query only after the previous answer arrives, so measured
// latency is uninflated by coordinated omission and QPS reflects the
// server's real completion rate at that concurrency.
//
// Usage:
//
//	mqload [flags]
//
// Flags:
//
//	-addr       server address (default 127.0.0.1:7070)
//	-dataset    pa | nyc — sizes the query area to the server's map (default pa)
//	-conns      concurrent closed-loop workers / pooled connections (default 32)
//	-duration   measured run length (default 10s)
//	-warmup     excluded ramp-up time (default 1s)
//	-mix        query mix, e.g. point=60,range=25,nn=15
//	-rangew     half-width in meters of range windows (default 1000)
//	-seed       workload seed (default 1)
//
// Output: total queries, QPS, mean and p50/p95/p99 latency from a merged
// streaming histogram (internal/stats), plus error and retry counts.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/serve/client"
	"mobispatial/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mqload:", err)
		os.Exit(1)
	}
}

type mix struct {
	kinds   []string
	weights []int
	total   int
}

func parseMix(s string) (mix, error) {
	var m mix
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("bad mix entry %q (want kind=weight)", part)
		}
		switch name {
		case "point", "range", "nn":
		default:
			return m, fmt.Errorf("unknown query kind %q in mix", name)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad weight in %q", part)
		}
		m.kinds = append(m.kinds, name)
		m.weights = append(m.weights, w)
		m.total += w
	}
	if m.total <= 0 {
		return m, fmt.Errorf("mix has no positive weight")
	}
	return m, nil
}

func (m mix) pick(rng *rand.Rand) string {
	n := rng.Intn(m.total)
	for i, w := range m.weights {
		if n < w {
			return m.kinds[i]
		}
		n -= w
	}
	return m.kinds[len(m.kinds)-1]
}

func run(args []string) error {
	fs := flag.NewFlagSet("mqload", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "server address")
	dsName := fs.String("dataset", "pa", "dataset the server runs: pa | nyc")
	conns := fs.Int("conns", 32, "closed-loop workers / pooled connections")
	duration := fs.Duration("duration", 10*time.Second, "measured run length")
	warmup := fs.Duration("warmup", time.Second, "excluded ramp-up time")
	mixFlag := fs.String("mix", "point=60,range=25,nn=15", "query mix")
	rangeW := fs.Float64("rangew", 1000, "half-width of range windows (m)")
	seed := fs.Int64("seed", 1, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var extent geom.Rect
	switch *dsName {
	case "pa":
		extent = dataset.PAConfig().Extent
	case "nyc":
		extent = dataset.NYCConfig().Extent
	default:
		return fmt.Errorf("unknown dataset %q (want pa or nyc)", *dsName)
	}
	qmix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}

	c, err := client.New(client.Config{Addr: *addr, Conns: *conns})
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Probe(); err != nil {
		return fmt.Errorf("server unreachable: %w", err)
	}

	var (
		measuring atomic.Bool
		stop      atomic.Bool
		errs      atomic.Uint64
		wg        sync.WaitGroup
	)
	hists := make([]*stats.Histogram, *conns)
	for w := 0; w < *conns; w++ {
		hists[w] = stats.NewLatencyHistogram()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			h := hists[w]
			for !stop.Load() {
				pt := geom.Point{
					X: extent.Min.X + rng.Float64()*extent.Width(),
					Y: extent.Min.Y + rng.Float64()*extent.Height(),
				}
				var qerr error
				start := time.Now()
				switch qmix.pick(rng) {
				case "point":
					_, qerr = c.PointIDs(pt, 0)
				case "range":
					_, qerr = c.RangeIDs(geom.Rect{
						Min: geom.Point{X: pt.X - *rangeW, Y: pt.Y - *rangeW},
						Max: geom.Point{X: pt.X + *rangeW, Y: pt.Y + *rangeW},
					})
				case "nn":
					_, qerr = c.Nearest(pt)
				}
				elapsed := time.Since(start)
				if !measuring.Load() {
					continue
				}
				if qerr != nil {
					errs.Add(1)
					continue
				}
				h.Record(elapsed.Seconds())
			}
		}(w)
	}

	time.Sleep(*warmup)
	measuring.Store(true)
	start := time.Now()
	time.Sleep(*duration)
	measuring.Store(false)
	measured := time.Since(start)
	stop.Store(true)
	wg.Wait()

	total := stats.NewLatencyHistogram()
	for _, h := range hists {
		if err := total.Merge(h); err != nil {
			return err
		}
	}
	link := c.Link()
	fmt.Printf("mqload: %d workers, %v measured, mix %s\n", *conns, measured.Round(time.Millisecond), *mixFlag)
	fmt.Printf("  queries   %d (%.0f qps)\n", total.Count(), float64(total.Count())/measured.Seconds())
	fmt.Printf("  latency   mean %s  p50 %s  p95 %s  p99 %s  max %s\n",
		ms(total.Mean()), ms(total.P(0.50)), ms(total.P(0.95)), ms(total.P(0.99)), ms(total.Max()))
	fmt.Printf("  errors    %d   retries %d\n", errs.Load(), c.Retries())
	fmt.Printf("  link      rtt %v, bandwidth %s\n", link.RTT.Round(time.Microsecond), mbps(link.BandwidthBps))
	return nil
}

func ms(sec float64) string { return fmt.Sprintf("%.2fms", sec*1e3) }

func mbps(bps float64) string {
	if bps <= 0 {
		return "unmeasured"
	}
	return fmt.Sprintf("%.1f Mbps", bps/1e6)
}
