// Command mqtrace dumps the execution-driven cost streams of a single query:
// the abstract-operation log, the memory-reference trace, and the machine
// models' verdicts. This is the debugging lens on the simulator — "what
// exactly does this query touch, and what does each machine charge for it?"
//
//	mqtrace -kind range -x 40000 -y 30000 -w 4000 [-ops] [-n 20000]
//
// Flags:
//
//	-kind    point | range | nn            (default range)
//	-x,-y    query location (meters)       (default dataset center)
//	-w       window side for range queries (default 2000 m)
//	-n       synthetic dataset size        (default 20000; 0 = full PA)
//	-ops     also print the full event log (can be large)
package main

import (
	"flag"
	"fmt"
	"os"

	"mobispatial/internal/cpu"
	"mobispatial/internal/dataset"
	"mobispatial/internal/energy"
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mqtrace:", err)
		os.Exit(1)
	}
}

func run() error {
	kind := flag.String("kind", "range", "query kind: point, range, nn")
	x := flag.Float64("x", -1, "query x (meters)")
	y := flag.Float64("y", -1, "query y (meters)")
	w := flag.Float64("w", 2000, "range-window side (meters)")
	n := flag.Int("n", 20000, "synthetic dataset size (0 = full PA)")
	dumpOps := flag.Bool("ops", false, "print the full event log")
	flag.Parse()

	var ds *dataset.Dataset
	if *n == 0 {
		ds = dataset.PA()
	} else {
		cfg := dataset.PAConfig()
		cfg.NumSegments = *n
		var err error
		ds, err = dataset.Generate(cfg)
		if err != nil {
			return err
		}
	}
	if *x < 0 {
		*x = ds.Extent.Center().X
	}
	if *y < 0 {
		*y = ds.Extent.Center().Y
	}

	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		return err
	}
	client, err := cpu.NewClient(cpu.DefaultClientConfig())
	if err != nil {
		return err
	}
	server, err := cpu.NewServer(cpu.DefaultServerConfig())
	if err != nil {
		return err
	}

	// Tee: counts + both machine models (+ the raw log if asked).
	var counts ops.Counts
	recs := ops.Tee{&counts, client, server}
	var tw *ops.TraceWriter
	if *dumpOps {
		tw = ops.NewTraceWriter(os.Stdout)
		recs = append(recs, tw)
	}

	p := geom.Point{X: *x, Y: *y}
	switch *kind {
	case "point":
		ids := tree.SearchPoint(p, recs)
		fmt.Fprintf(os.Stderr, "point query at %v: %d MBR candidates\n", p, len(ids))
	case "nn":
		id, d, ok := tree.Nearest(p, func(id uint32) float64 {
			recs.Load(ds.RecordAddr(id), ds.RecordBytes)
			recs.Op(ops.OpRefineNN, 1)
			return ds.Seg(id).DistToPoint(p)
		}, recs)
		fmt.Fprintf(os.Stderr, "nn query at %v: id %d at %.1f m (ok=%v)\n", p, id, d, ok)
	case "range":
		win := geom.Rect{
			Min: geom.Point{X: *x - *w/2, Y: *y - *w/2},
			Max: geom.Point{X: *x + *w/2, Y: *y + *w/2},
		}
		ids := tree.Search(win, recs)
		hits := 0
		for _, id := range ids {
			recs.Load(ds.RecordAddr(id), ds.RecordBytes)
			recs.Op(ops.OpRefineRange, 1)
			if ds.Seg(id).IntersectsRect(win) {
				hits++
			}
		}
		fmt.Fprintf(os.Stderr, "range query %v: %d candidates, %d exact hits\n", win, len(ids), hits)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if tw != nil {
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	// Summaries.
	fmt.Fprintln(os.Stderr, "\n-- abstract operations --")
	for op := 0; op < ops.NumOps; op++ {
		if c := counts.Ops[op]; c > 0 {
			fmt.Fprintf(os.Stderr, "  %-16s %10d\n", ops.Op(op), c)
		}
	}
	fmt.Fprintf(os.Stderr, "  loads %d (%d B), stores %d (%d B)\n",
		counts.LoadCalls, counts.LoadBytes, counts.StoreCalls, counts.StoreBytes)

	ca := client.Activity()
	ep := energy.DefaultParams()
	fmt.Fprintln(os.Stderr, "\n-- client machine (Table 3) --")
	fmt.Fprintf(os.Stderr, "  instructions %d, cycles %d (CPI %.2f), stalls %d\n",
		ca.Instructions, ca.Cycles, ca.CPI(), ca.StallCycles)
	fmt.Fprintf(os.Stderr, "  I$ %.1f%% hit, D$ %.1f%% hit, DRAM reads %d\n",
		ca.ICache.HitRate()*100, ca.DCache.HitRate()*100, ca.MemReads)
	fmt.Fprintf(os.Stderr, "  time %.3f ms @ %.0f MHz, energy %.3f mJ (%.3f W active)\n",
		client.Seconds(ca.Cycles)*1e3, client.ClockHz()/1e6,
		ep.ComputeJoules(ca)*1e3, ep.ActiveWatts(ca, client.ClockHz()))

	sa := server.Activity()
	fmt.Fprintln(os.Stderr, "\n-- server machine (Table 4) --")
	fmt.Fprintf(os.Stderr, "  cycles %d (CPI %.2f), L1D %.1f%% hit, L2 %.1f%% hit, time %.3f ms @ 1 GHz\n",
		sa.Cycles, sa.CPI(), sa.DCache.HitRate()*100, sa.L2.HitRate()*100,
		server.Seconds(sa.Cycles)*1e3)
	fmt.Fprintf(os.Stderr, "  client/server speedup: %.1f×\n",
		client.Seconds(ca.Cycles)/server.Seconds(sa.Cycles))
	return nil
}
