// Command datagen generates and inspects the synthetic TIGER-like datasets.
//
//	datagen stats            print both datasets' statistics (Fig. 3 stand-in)
//	datagen map <PA|NYC>     render a coarse ASCII density map
//	datagen index <PA|NYC>   print the packed R-tree composition
package main

import (
	"fmt"
	"os"
	"strings"

	"mobispatial/internal/dataset"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: datagen <stats|map|index|export|import> [args]")
	}
	switch args[0] {
	case "export":
		if len(args) < 3 {
			return fmt.Errorf("usage: datagen export <PA|NYC> <path>")
		}
		ds, err := pick(args)
		if err != nil {
			return err
		}
		if err := ds.SaveFile(args[2]); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d segments) to %s\n", ds.Name, ds.Len(), args[2])
		return nil
	case "import":
		if len(args) < 2 {
			return fmt.Errorf("usage: datagen import <path>")
		}
		ds, err := dataset.LoadFile(args[1])
		if err != nil {
			return err
		}
		printStats(ds)
		return nil
	case "stats":
		for _, ds := range []*dataset.Dataset{dataset.PA(), dataset.NYC()} {
			printStats(ds)
		}
		return nil
	case "map":
		ds, err := pick(args)
		if err != nil {
			return err
		}
		printMap(ds)
		return nil
	case "index":
		ds, err := pick(args)
		if err != nil {
			return err
		}
		tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
		if err != nil {
			return err
		}
		st := tree.TreeStats()
		fmt.Printf("%s packed R-tree: %d items, %d nodes (%d leaves), height %d, fanout %d, %.2f MB\n",
			ds.Name, st.Items, st.Nodes, st.LeafNodes, st.Height, st.Fanout,
			float64(st.IndexBytes)/(1<<20))
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func pick(args []string) (*dataset.Dataset, error) {
	if len(args) < 2 {
		return nil, fmt.Errorf("usage: datagen %s <PA|NYC>", args[0])
	}
	switch strings.ToUpper(args[1]) {
	case "PA":
		return dataset.PA(), nil
	case "NYC":
		return dataset.NYC(), nil
	}
	return nil, fmt.Errorf("unknown dataset %q", args[1])
}

func printStats(ds *dataset.Dataset) {
	s := ds.Summary()
	fmt.Printf("%s: %d segments, %.2f MB (%d B/record), extent %.0f×%.0f km, mean segment %.0f m\n",
		s.Name, s.Segments, float64(s.TotalBytes)/(1<<20), s.RecordBytes,
		s.Extent.Width()/1000, s.Extent.Height()/1000, s.MeanSegLen)
}

// printMap renders segment density on a coarse character grid — the ASCII
// stand-in for the paper's Fig. 3 dataset plots.
func printMap(ds *dataset.Dataset) {
	const w, h = 72, 28
	var grid [h][w]int
	maxCount := 0
	for _, s := range ds.Segments {
		m := s.Midpoint()
		x := int((m.X - ds.Extent.Min.X) / ds.Extent.Width() * w)
		y := int((m.Y - ds.Extent.Min.Y) / ds.Extent.Height() * h)
		if x >= w {
			x = w - 1
		}
		if y >= h {
			y = h - 1
		}
		grid[y][x]++
		if grid[y][x] > maxCount {
			maxCount = grid[y][x]
		}
	}
	shades := []byte(" .:-=+*#%@")
	fmt.Printf("%s density (%d segments):\n", ds.Name, ds.Len())
	for y := h - 1; y >= 0; y-- {
		row := make([]byte, w)
		for x := 0; x < w; x++ {
			idx := 0
			if maxCount > 0 {
				idx = grid[y][x] * (len(shades) - 1) / maxCount
			}
			row[x] = shades[idx]
		}
		fmt.Println(string(row))
	}
}
