// Command advisor evaluates the paper's §4.1 analytic conditions: given a
// workload characterization and platform parameters, should the work be
// offloaded to the server — from the performance and energy perspectives?
//
//	advisor -fully-local 5e6 -w2 4e5 -tx 1000 -rx 20000 -bw 2,4,6,8,11
//
// Flags describe one candidate partitioning; the tool prints, per bandwidth,
// the partitioned/fully-local ratios for cycles and energy and the verdict.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mobispatial/internal/core"
	"mobispatial/internal/nic"
	"mobispatial/internal/proto"
)

func main() {
	fullyLocal := flag.Float64("fully-local", 5e6, "client cycles of the fully-local execution")
	local := flag.Float64("local", 0, "client cycles of the locally-kept portion (w1+w3)")
	protoCycles := flag.Float64("protocol", 5e3, "client cycles of protocol processing")
	w2 := flag.Float64("w2", 4e5, "server cycles of the offloaded portion")
	clientMHz := flag.Float64("client-mhz", 125, "client clock in MHz")
	serverMHz := flag.Float64("server-mhz", 1000, "server clock in MHz")
	txBytes := flag.Int("tx", proto.QueryRequestBytes, "transmitted payload bytes")
	rxBytes := flag.Int("rx", 4096, "received payload bytes")
	distance := flag.Float64("distance", 1000, "meters to the base station")
	pClient := flag.Float64("p-client", 0.11, "client compute power (W)")
	bws := flag.String("bw", "2,4,6,8,11", "bandwidths to evaluate (Mbps, comma-separated)")
	flag.Parse()

	in := core.AnalyticInputs{
		CFullyLocal:  *fullyLocal,
		CLocal:       *local,
		CProtocol:    *protoCycles,
		CW2:          *w2,
		ClientHz:     *clientMHz * 1e6,
		ServerHz:     *serverMHz * 1e6,
		PacketTxBits: float64(proto.Packetize(*txBytes).WireBytes * 8),
		PacketRxBits: float64(proto.Packetize(*rxBytes).WireBytes * 8),
		PClient:      *pClient,
		PTx:          nic.TxPowerAt(*distance),
		PRx:          nic.RxPower,
		PIdle:        nic.IdlePower,
		PSleep:       nic.SleepPower,
		PBlocked:     0.05,
	}

	fmt.Printf("fully-local: %.3g cycles at %.0f MHz; offload: %.3g server cycles, %dB up / %dB down, %gm range\n\n",
		in.CFullyLocal, *clientMHz, in.CW2, *txBytes, *rxBytes, *distance)
	fmt.Printf("%10s %13s %13s %12s\n", "bandwidth", "cycle ratio", "energy ratio", "offload for")
	for _, tok := range strings.Split(*bws, ",") {
		mbps, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil || mbps <= 0 {
			fmt.Fprintf(os.Stderr, "advisor: bad bandwidth %q\n", tok)
			os.Exit(1)
		}
		in.BandwidthBps = mbps * 1e6
		v := in.Advise()
		verdict := "neither"
		switch {
		case v.SavesCycles && v.SavesEnergy:
			verdict = "both"
		case v.SavesCycles:
			verdict = "performance"
		case v.SavesEnergy:
			verdict = "energy"
		}
		fmt.Printf("%8.1f M %13.3f %13.3f %12s\n", mbps, v.CycleRatio, v.EnergyRatio, verdict)
	}
	fmt.Println("\nratios are partitioned / fully-local: below 1.0 means offloading wins")
}
