// Command mqserve runs the networked spatial-query server: the repository's
// simulated "server" machine made real — a TCP service answering point,
// range, and NN queries against a shared packed R-tree through the parallel
// worker pool, and shipping budgeted sub-indexes to memory-limited clients.
//
// Usage:
//
//	mqserve [flags]
//
// Flags:
//
//	-addr       listen address (default :7070)
//	-dataset    pa | nyc (default pa)
//	-workers    refinement workers (0 = GOMAXPROCS)
//	-shards     spatial shards for scatter-gather execution (0 = monolithic
//	            single tree; N > 0 = Hilbert-sharded pool, one packed R-tree
//	            per shard, each query fanned across the worker lanes)
//	-inflight   admission-control cap on concurrent requests (0 = 4x workers)
//	-obs        observability HTTP address serving /metrics (Prometheus),
//	            /traces (JSON spans), and /debug/pprof ("" = disabled)
//	-partition  i/N: run as cluster backend i of N, indexing only the
//	            Hilbert key ranges it holds (every backend derives the
//	            identical partition from the shared deterministic dataset)
//	-replicas   R-way replication under rotation placement (with
//	            -partition; backend i also holds ranges i-1..i-R+1 mod N)
//	-mutable    updatable pool: accepts live MsgInsert/MsgDelete/MsgMove,
//	            overlaying a delta tree on the packed base and folding it
//	            in with epoch-swapped compactions (monolithic or with
//	            -partition; -shards sets the monolithic shard count)
//	-adaptive   workload-adaptive repartitioning (with -mutable, monolithic
//	            only): a background repartitioner tracks per-shard query
//	            heat and splits hot shards / merges cold neighbors at their
//	            median Hilbert key, publishing the new cuts through live
//	            summaries so routers follow the workload
//	-qcache     result-cache budget in MB (0 = caching off): hotspot query
//	            results are cached under cell-snapped keys and invalidated
//	            by shard version, so repeated nearby queries skip the index
//	            walk entirely (works with -partition too: a mutable cluster
//	            backend invalidates by per-shard write version, a frozen
//	            one caches against a static view; the server refuses the
//	            flag only for a pool with no validity view at all)
//	-qcell      result-cache snapping grid pitch in map units (with -qcache)
//	-fault      faultlink profile injected on the listener (e.g.
//	            "outage=30s+10s" or a preset name; "" = no faults)
//
// Metrics, spans, and the in-protocol MsgStats snapshot are always on; -obs
// only controls the HTTP export. The server reports its throughput counters
// on SIGINT/SIGTERM and exits after a graceful drain.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mobispatial/internal/dataset"
	"mobispatial/internal/faultlink"
	"mobispatial/internal/mutable"
	"mobispatial/internal/obs"
	"mobispatial/internal/ops"
	"mobispatial/internal/parallel"
	"mobispatial/internal/proto"
	"mobispatial/internal/qcache"
	"mobispatial/internal/rtree"
	"mobispatial/internal/serve"
	"mobispatial/internal/shard"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mqserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mqserve", flag.ContinueOnError)
	addr := fs.String("addr", ":7070", "listen address")
	dsName := fs.String("dataset", "pa", "dataset: pa | nyc")
	workers := fs.Int("workers", 0, "refinement workers (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 0, "spatial shards (0 = monolithic)")
	inflight := fs.Int("inflight", 0, "max concurrent requests (0 = 4x workers)")
	obsAddr := fs.String("obs", "", "observability HTTP address (\"\" = disabled)")
	partition := fs.String("partition", "", "i/N: cluster backend i of N Hilbert ranges (\"\" = whole dataset)")
	replicas := fs.Int("replicas", 1, "R-way replication under rotation placement (with -partition)")
	mut := fs.Bool("mutable", false, "updatable pool accepting live inserts/deletes/moves")
	adaptive := fs.Bool("adaptive", false, "workload-adaptive shard repartitioning (with -mutable, monolithic only)")
	qcacheMB := fs.Int("qcache", 0, "result-cache budget in MB (0 = off)")
	qcell := fs.Float64("qcell", qcache.DefaultCellSize, "result-cache snapping grid pitch in map units")
	fault := fs.String("fault", "", "faultlink profile injected on the listener (\"\" = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var ds *dataset.Dataset
	switch *dsName {
	case "pa":
		ds = dataset.PA()
	case "nyc":
		ds = dataset.NYC()
	default:
		return fmt.Errorf("unknown dataset %q (want pa or nyc)", *dsName)
	}

	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		return err
	}
	hub := obs.NewHub()

	// The master tree always stays monolithic — shipments carve sub-indexes
	// from it — but query execution is either the monolithic parallel pool,
	// the Hilbert-sharded scatter-gather pool, or (with -partition) a
	// sharded pool over only the cluster ranges this backend holds.
	var pool serve.Executor
	var held []proto.RangeInfo
	numRanges := 0
	if *adaptive {
		if !*mut {
			return fmt.Errorf("-adaptive requires -mutable")
		}
		if *partition != "" {
			return fmt.Errorf("-adaptive requires a monolithic pool (drop -partition); the repartitioner must own the whole key space")
		}
	}
	if *partition != "" {
		var err error
		held, numRanges, pool, err = partitionPool(ds, *partition, *replicas, *shards, *workers, *mut, hub)
		if err != nil {
			return err
		}
	} else if *mut {
		n := *shards
		if n <= 0 {
			n = 4
		}
		mp, err := mutable.NewFromDataset(ds, n, mutable.Config{
			Workers: *workers, Obs: hub,
			Adaptive: mutable.AdaptiveConfig{Enabled: *adaptive},
		})
		if err != nil {
			return err
		}
		defer mp.Close()
		if *adaptive {
			fmt.Printf("mqserve: adaptive mutable pool, %d updatable shards over %d segments (split/merge on query heat)\n",
				mp.NumShards(), mp.Len())
		} else {
			fmt.Printf("mqserve: mutable pool, %d updatable shards over %d segments\n", mp.NumShards(), mp.Len())
		}
		pool = mp
	} else if *shards > 0 {
		sp, err := shard.New(ds, shard.Config{Shards: *shards, Workers: *workers, Obs: hub.Reg})
		if err != nil {
			return err
		}
		defer sp.Close()
		fmt.Printf("mqserve: %d shards x ~%d segments, %d scatter lanes\n",
			sp.Shards(), (sp.Len()+sp.Shards()-1)/sp.Shards(), sp.Workers())
		pool = sp
	} else {
		mp, err := parallel.New(ds, tree, *workers)
		if err != nil {
			return err
		}
		pool = mp
	}
	var qc *qcache.Cache
	if *qcacheMB > 0 {
		qc = qcache.New(qcache.Config{MaxBytes: *qcacheMB << 20, CellSize: *qcell, Obs: hub})
		fmt.Printf("mqserve: result cache %d MB, %.0f-unit cells\n", *qcacheMB, *qcell)
	}
	srv, err := serve.New(serve.Config{
		Pool: pool, Master: tree, MaxInFlight: *inflight, Obs: hub,
		Ranges: held, NumRanges: numRanges, Cache: qc,
	})
	if err != nil {
		return err
	}

	if *obsAddr != "" {
		obsSrv := &http.Server{Addr: *obsAddr, Handler: obs.Handler(hub)}
		go func() {
			if err := obsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "mqserve: obs http:", err)
			}
		}()
		defer obsSrv.Close()
		fmt.Printf("mqserve: observability on http://%s/metrics /traces /debug/pprof\n", *obsAddr)
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *fault != "" {
		prof, err := faultlink.ParseProfile(*fault)
		if err != nil {
			return err
		}
		lis = faultlink.New(prof).Listen(lis)
		fmt.Printf("mqserve: fault profile %v on listener\n", prof)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()
	fmt.Printf("mqserve: dataset %s (%d segments, %.0fx%.0f km), listening on %s\n",
		ds.Name, len(ds.Segments), ds.Extent.Width()/1000, ds.Extent.Height()/1000, *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("mqserve: %v, draining...\n", sig)
	}
	if err := srv.Shutdown(10 * time.Second); err != nil {
		return err
	}
	st := srv.Stats()
	fmt.Printf("mqserve: served %d requests (%d shipments) over %d connections; %d overloads, %d deadline misses, %d errors\n",
		st.Served, st.Shipments, st.Conns, st.Overloads, st.Deadlines, st.Errors)
	if qc != nil {
		cst := srv.CacheStats()
		fmt.Printf("mqserve: cache %d hits / %d misses (%.1f%% hit rate), %d invalidations, %d entries, %.2f J saved\n",
			cst.Hits, cst.Misses, cst.HitRate()*100, cst.Invalidations, cst.Entries, srv.CacheSavedJoules())
	}
	return nil
}

// partitionPool builds the sharded pool of cluster backend i of n: the
// deterministic dataset is partitioned into n contiguous Hilbert ranges
// (bit-identical in every process), and this backend indexes the ranges
// rotation placement assigns it. Item ids stay cluster-global.
func partitionPool(ds *dataset.Dataset, spec string, replicas, shards, workers int, mut bool, hub *obs.Hub) ([]proto.RangeInfo, int, serve.Executor, error) {
	var idx, n int
	if c, err := fmt.Sscanf(spec, "%d/%d", &idx, &n); err != nil || c != 2 {
		return nil, 0, nil, fmt.Errorf("bad -partition %q (want i/N)", spec)
	}
	ranges, bounds := shard.PartitionHilbert(ds.Items(), n, 0)
	if len(ranges) != n {
		return nil, 0, nil, fmt.Errorf("-partition %q: dataset yields only %d ranges", spec, len(ranges))
	}
	idxs, err := shard.ReplicaRanges(idx, n, replicas)
	if err != nil {
		return nil, 0, nil, err
	}
	var sub []rtree.Item
	var held []proto.RangeInfo
	var heldRanges []shard.Range
	for _, ri := range idxs {
		rg := ranges[ri]
		sub = append(sub, rg.Items...)
		heldRanges = append(heldRanges, rg)
		held = append(held, proto.RangeInfo{
			Index: uint32(rg.Index),
			Items: uint32(len(rg.Items)),
			Lo:    rg.Lo,
			Hi:    rg.Hi,
			MBR:   rg.MBR,
		})
	}
	var pool serve.Executor
	if mut {
		// One updatable shard per held range, keyed by the cluster-wide
		// cuts so every backend agrees on write ownership.
		cuts := make([]uint64, len(ranges))
		for i, rg := range ranges {
			cuts[i] = rg.Lo
		}
		mp, err := mutable.New(mutable.Config{
			Dataset: ds, Ranges: heldRanges, Cuts: cuts, GlobalIndex: idxs,
			Bounds: bounds, Workers: workers, Obs: hub,
		})
		if err != nil {
			return nil, 0, nil, err
		}
		pool = mp
	} else {
		sp, err := shard.New(ds, shard.Config{Shards: shards, Workers: workers, Items: sub, Obs: hub.Reg})
		if err != nil {
			return nil, 0, nil, err
		}
		pool = sp
	}
	fmt.Printf("mqserve: backend %d/%d holds %d of %d ranges (%d segments, R=%d, mutable=%v)\n",
		idx, n, len(held), n, len(sub), replicas, mut)
	return held, n, pool, nil
}
