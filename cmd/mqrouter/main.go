// Command mqrouter runs the distributed serving tier's coordinator: a
// process that speaks the same framed protocol as mqserve toward mobile
// clients, but answers by fanning each query across the backend shard
// servers that own the touched Hilbert key ranges, merging their replies,
// and failing over to replicas when a backend dies mid-run.
//
// Usage:
//
//	mqrouter -backends host:port,host:port,... [flags]
//
// Flags:
//
//	-addr        listen address for clients (default :7171)
//	-backends    comma-separated backend addresses (required); the order
//	             must match the backends' -partition indices
//	-dataset     pa | nyc (default pa) — the shared deterministic dataset,
//	             used to resolve record payloads locally
//	-conns       pooled connections per backend (default 4)
//	-leg-timeout one backend leg's budget (default 1s)
//	-register    registration timeout while polling backend summaries
//	             (default 30s; backends may still be starting)
//	-refresh     routing-table refresh period — how often backend summaries
//	             are re-polled so writes applied elsewhere become routable
//	             (default 250ms; negative freezes the table at registration)
//	-qcache      router-tier result-cache budget in MB (0 = off): hotspot
//	             fan-out results are cached under cell-snapped keys and
//	             invalidated by the cluster's per-range version vector, so
//	             a repeated nearby query skips the whole fan-out
//	-qcell       result-cache snapping grid pitch in map units (with -qcache)
//	-obs         observability HTTP address ("" = disabled)
//
// The router registers by polling every backend for its MsgSummary (held
// ranges, item counts, MBRs, write versions), builds the assignment table,
// and serves until SIGINT/SIGTERM. The table is refreshed live: a background
// loop re-polls summaries and epoch-swaps the routing snapshot, and every
// write routed through this router widens the routing predicates
// immediately — so objects inserted or moved outside their range's
// registered MBR stay visible to range, point, and NN queries. When the
// backends run -mutable, live writes route too: inserts go to every holder
// of the owning Hilbert range, moves and deletes broadcast (evicting stale
// copies), and the end-of-run report counts routed writes and replica
// divergence.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mobispatial/internal/dataset"
	"mobispatial/internal/obs"
	"mobispatial/internal/qcache"
	"mobispatial/internal/router"
	"mobispatial/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mqrouter:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mqrouter", flag.ContinueOnError)
	addr := fs.String("addr", ":7171", "client listen address")
	backends := fs.String("backends", "", "comma-separated backend addresses (required)")
	dsName := fs.String("dataset", "pa", "dataset: pa | nyc")
	conns := fs.Int("conns", 4, "pooled connections per backend")
	legTimeout := fs.Duration("leg-timeout", time.Second, "one backend leg's budget")
	register := fs.Duration("register", 30*time.Second, "registration timeout")
	refresh := fs.Duration("refresh", 250*time.Millisecond, "routing-table refresh period (negative = frozen at registration)")
	qcacheMB := fs.Int("qcache", 0, "router result-cache budget in MB (0 = off)")
	qcell := fs.Float64("qcell", qcache.DefaultCellSize, "result-cache snapping grid pitch in map units")
	obsAddr := fs.String("obs", "", "observability HTTP address (\"\" = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *backends == "" {
		return fmt.Errorf("-backends is required")
	}

	var ds *dataset.Dataset
	switch *dsName {
	case "pa":
		ds = dataset.PA()
	case "nyc":
		ds = dataset.NYC()
	default:
		return fmt.Errorf("unknown dataset %q (want pa or nyc)", *dsName)
	}

	hub := obs.NewHub()
	r, err := router.New(router.Config{
		Backends:        strings.Split(*backends, ","),
		Dataset:         ds,
		ConnsPerBackend: *conns,
		LegTimeout:      *legTimeout,
		RegisterTimeout: *register,
		RefreshInterval: *refresh,
		Obs:             hub,
	})
	if err != nil {
		return err
	}
	defer r.Close()
	fmt.Printf("mqrouter: registered %d backends, %d ranges\n", len(strings.Split(*backends, ",")), r.NumRanges())

	// The router IS the server's pool: clients connect with the unchanged
	// protocol and every query fans out behind the same framed surface.
	// Shipments need the master tree, which lives on the backends, so the
	// router leaves them unsupported. The router doubles as the cluster's
	// validity view (qcache.Source over the per-range version vector), so
	// the same result cache mqserve runs locally works one tier up — a hit
	// skips the whole fan-out.
	var qc *qcache.Cache
	if *qcacheMB > 0 {
		qc = qcache.New(qcache.Config{MaxBytes: *qcacheMB << 20, CellSize: *qcell, Obs: hub})
		fmt.Printf("mqrouter: result cache %d MB, %.0f-unit cells\n", *qcacheMB, *qcell)
	}
	srv, err := serve.New(serve.Config{Pool: r, Obs: hub, Cache: qc})
	if err != nil {
		return err
	}

	if *obsAddr != "" {
		obsSrv := &http.Server{Addr: *obsAddr, Handler: obs.Handler(hub)}
		go func() {
			if err := obsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "mqrouter: obs http:", err)
			}
		}()
		defer obsSrv.Close()
		fmt.Printf("mqrouter: observability on http://%s/metrics\n", *obsAddr)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	fmt.Printf("mqrouter: dataset %s, listening on %s\n", ds.Name, *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("mqrouter: %v, draining...\n", sig)
	}
	if err := srv.Shutdown(10 * time.Second); err != nil {
		return err
	}
	st := srv.Stats()
	snap := hub.Reg.Snapshot()
	var failovers, unroutable, writes, writeDiverged, writeUnroutable uint64
	for _, c := range snap.Counters {
		switch c.Name {
		case "router_failover_total":
			failovers = c.Value
		case "router_unroutable_total":
			unroutable = c.Value
		case "router_writes_total":
			writes = c.Value
		case "router_write_divergence_total":
			writeDiverged = c.Value
		case "router_write_unroutable_total":
			writeUnroutable = c.Value
		}
	}
	fmt.Printf("mqrouter: served %d requests over %d connections; %d errors, %d failovers, %d unroutable\n",
		st.Served, st.Conns, st.Errors, failovers, unroutable)
	if writes > 0 {
		fmt.Printf("mqrouter: routed %d writes to replicas; %d diverged, %d unroutable\n",
			writes, writeDiverged, writeUnroutable)
	}
	if qc != nil {
		cst := srv.CacheStats()
		fmt.Printf("mqrouter: cache %d hits / %d misses (%.1f%% hit rate), %d invalidations, %d entries, %.2f J saved\n",
			cst.Hits, cst.Misses, cst.HitRate()*100, cst.Invalidations, cst.Entries, srv.CacheSavedJoules())
	}
	return nil
}
