// Command mqrouter runs the distributed serving tier's coordinator: a
// process that speaks the same framed protocol as mqserve toward mobile
// clients, but answers by fanning each query across the backend shard
// servers that own the touched Hilbert key ranges, merging their replies,
// and failing over to replicas when a backend dies mid-run.
//
// Usage:
//
//	mqrouter -backends host:port,host:port,... [flags]
//
// Flags:
//
//	-addr        listen address for clients (default :7171)
//	-backends    comma-separated backend addresses (required); the order
//	             must match the backends' -partition indices
//	-dataset     pa | nyc (default pa) — the shared deterministic dataset,
//	             used to resolve record payloads locally
//	-conns       pooled connections per backend (default 4)
//	-leg-timeout one backend leg's budget (default 1s)
//	-register    registration timeout while polling backend summaries
//	             (default 30s; backends may still be starting)
//	-obs         observability HTTP address ("" = disabled)
//
// The router registers by polling every backend for its MsgSummary (held
// ranges, item counts, MBRs), builds the assignment table, and serves until
// SIGINT/SIGTERM. When the backends run -mutable, live writes route too:
// inserts go to every holder of the owning Hilbert range, moves and deletes
// broadcast (evicting stale copies), and the end-of-run report counts routed
// writes and replica divergence.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mobispatial/internal/dataset"
	"mobispatial/internal/obs"
	"mobispatial/internal/router"
	"mobispatial/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mqrouter:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mqrouter", flag.ContinueOnError)
	addr := fs.String("addr", ":7171", "client listen address")
	backends := fs.String("backends", "", "comma-separated backend addresses (required)")
	dsName := fs.String("dataset", "pa", "dataset: pa | nyc")
	conns := fs.Int("conns", 4, "pooled connections per backend")
	legTimeout := fs.Duration("leg-timeout", time.Second, "one backend leg's budget")
	register := fs.Duration("register", 30*time.Second, "registration timeout")
	obsAddr := fs.String("obs", "", "observability HTTP address (\"\" = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *backends == "" {
		return fmt.Errorf("-backends is required")
	}

	var ds *dataset.Dataset
	switch *dsName {
	case "pa":
		ds = dataset.PA()
	case "nyc":
		ds = dataset.NYC()
	default:
		return fmt.Errorf("unknown dataset %q (want pa or nyc)", *dsName)
	}

	hub := obs.NewHub()
	r, err := router.New(router.Config{
		Backends:        strings.Split(*backends, ","),
		Dataset:         ds,
		ConnsPerBackend: *conns,
		LegTimeout:      *legTimeout,
		RegisterTimeout: *register,
		Obs:             hub,
	})
	if err != nil {
		return err
	}
	defer r.Close()
	fmt.Printf("mqrouter: registered %d backends, %d ranges\n", len(strings.Split(*backends, ",")), r.NumRanges())

	// The router IS the server's pool: clients connect with the unchanged
	// protocol and every query fans out behind the same framed surface.
	// Shipments need the master tree, which lives on the backends, so the
	// router leaves them unsupported.
	srv, err := serve.New(serve.Config{Pool: r, Obs: hub})
	if err != nil {
		return err
	}

	if *obsAddr != "" {
		obsSrv := &http.Server{Addr: *obsAddr, Handler: obs.Handler(hub)}
		go func() {
			if err := obsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "mqrouter: obs http:", err)
			}
		}()
		defer obsSrv.Close()
		fmt.Printf("mqrouter: observability on http://%s/metrics\n", *obsAddr)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	fmt.Printf("mqrouter: dataset %s, listening on %s\n", ds.Name, *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("mqrouter: %v, draining...\n", sig)
	}
	if err := srv.Shutdown(10 * time.Second); err != nil {
		return err
	}
	st := srv.Stats()
	snap := hub.Reg.Snapshot()
	var failovers, unroutable, writes, writeDiverged, writeUnroutable uint64
	for _, c := range snap.Counters {
		switch c.Name {
		case "router_failover_total":
			failovers = c.Value
		case "router_unroutable_total":
			unroutable = c.Value
		case "router_writes_total":
			writes = c.Value
		case "router_write_divergence_total":
			writeDiverged = c.Value
		case "router_write_unroutable_total":
			writeUnroutable = c.Value
		}
	}
	fmt.Printf("mqrouter: served %d requests over %d connections; %d errors, %d failovers, %d unroutable\n",
		st.Served, st.Conns, st.Errors, failovers, unroutable)
	if writes > 0 {
		fmt.Printf("mqrouter: routed %d writes to replicas; %d diverged, %d unroutable\n",
			writes, writeDiverged, writeUnroutable)
	}
	return nil
}
