// Command mqsim reproduces the paper's evaluation: one subcommand per figure
// plus configuration printers for the tables.
//
// Usage:
//
//	mqsim <fig4|fig5|fig6|fig7|fig8|fig9|fig10|all|config|schemes> [flags]
//
// Flags:
//
//	-runs N       queries per sweep point (default 100, as in the paper)
//	-trials N     sequences per proximity value for fig10 (default 3)
//	-workers N    parallel sweep points (default GOMAXPROCS)
//	-seed N       workload seed (default 42)
package main

import (
	"flag"
	"fmt"
	"os"

	"mobispatial/internal/core"
	"mobispatial/internal/cpu"
	"mobispatial/internal/dataset"
	"mobispatial/internal/experiments"
	"mobispatial/internal/geom"
	"mobispatial/internal/nic"
	"mobispatial/internal/proto"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mqsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: mqsim <fig4..fig10|fig10var|indexes|clocksweep|broadcast|load|session|report|all|config|schemes> [flags]")
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	runs := fs.Int("runs", experiments.Runs, "queries per sweep point")
	trials := fs.Int("trials", 3, "fig10 sequences per proximity value")
	workers := fs.Int("workers", 0, "parallel sweep points (0 = GOMAXPROCS)")
	seed := fs.Int64("seed", 42, "workload seed (figs 4-9)")
	seed10 := fs.Int64("seed10", 4242, "fig10 workload seed")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	out := os.Stdout
	switch cmd {
	case "config":
		return printConfig(out)
	case "schemes":
		return printSchemes(out)
	case "fig4":
		return adequate(out, "Fig. 4", dataset.PA(), core.PointQuery, 0, 0, *runs, *seed, *workers)
	case "fig5":
		return adequate(out, "Fig. 5", dataset.PA(), core.RangeQuery, 0, 0, *runs, *seed, *workers)
	case "fig6":
		return adequate(out, "Fig. 6", dataset.PA(), core.NNQuery, 0, 0, *runs, *seed, *workers)
	case "fig7":
		return adequate(out, "Fig. 7", dataset.NYC(), core.RangeQuery, 0, 0, *runs, *seed, *workers)
	case "fig8":
		return adequate(out, "Fig. 8", dataset.PA(), core.RangeQuery, 0.5, 0, *runs, *seed, *workers)
	case "fig9":
		return adequate(out, "Fig. 9", dataset.PA(), core.RangeQuery, 0, 100, *runs, *seed, *workers)
	case "fig10":
		return insufficient(out, dataset.PA(), *trials, *seed10, *workers)
	case "fig10var":
		for _, budget := range []int{1 << 20, 2 << 20} {
			v, err := experiments.InsufficientSeedSweep(experiments.InsufficientConfig{
				DS: dataset.PA(), BudgetBytes: budget, Trials: *trials, Workers: *workers,
			}, []int64{42, 777, 4242, 9001, 31337})
			if err != nil {
				return err
			}
			if err := experiments.WriteInsufficientVariance(out, v); err != nil {
				return err
			}
		}
		return nil
	case "report":
		return experiments.WriteReport(out, experiments.ReportConfig{
			Runs: *runs, Trials: *trials, Workers: *workers,
		})
	case "session":
		results, err := experiments.Session(experiments.SessionConfig{DS: dataset.PA(), Seed: *seed})
		if err != nil {
			return err
		}
		return experiments.WriteSession(out, results, experiments.SessionConfig{})
	case "load":
		pts, err := experiments.LoadSweep(dataset.PA(), 6, *runs, *seed)
		if err != nil {
			return err
		}
		return experiments.WriteLoadSweep(out, pts, 6, *runs)
	case "clocksweep":
		pts, err := experiments.ClockSweep(dataset.PA(), 6, *runs, *seed)
		if err != nil {
			return err
		}
		return experiments.WriteClockSweep(out, pts, 6, *runs)
	case "broadcast":
		ds := dataset.PA()
		c := ds.Segments[2026].Midpoint()
		window := geom.Rect{
			Min: geom.Point{X: c.X - 2000, Y: c.Y - 2000},
			Max: geom.Point{X: c.X + 2000, Y: c.Y + 2000},
		}
		cmp, err := experiments.CompareBroadcast(ds, window, 2)
		if err != nil {
			return err
		}
		return experiments.WriteBroadcastComparison(out, cmp, 2)
	case "indexes":
		results, err := experiments.CompareIndexes(experiments.IndexComparisonConfig{
			DS: dataset.PA(), Runs: *runs, Seed: *seed,
		})
		if err != nil {
			return err
		}
		return experiments.WriteIndexComparison(out, results, *runs)
	case "all":
		type figSpec struct {
			label string
			run   func() error
		}
		pa := dataset.PA()
		nyc := dataset.NYC()
		figs := []figSpec{
			{"Fig. 4", func() error { return adequate(out, "Fig. 4", pa, core.PointQuery, 0, 0, *runs, *seed, *workers) }},
			{"Fig. 5", func() error { return adequate(out, "Fig. 5", pa, core.RangeQuery, 0, 0, *runs, *seed, *workers) }},
			{"Fig. 6", func() error { return adequate(out, "Fig. 6", pa, core.NNQuery, 0, 0, *runs, *seed, *workers) }},
			{"Fig. 7", func() error { return adequate(out, "Fig. 7", nyc, core.RangeQuery, 0, 0, *runs, *seed, *workers) }},
			{"Fig. 8", func() error { return adequate(out, "Fig. 8", pa, core.RangeQuery, 0.5, 0, *runs, *seed, *workers) }},
			{"Fig. 9", func() error { return adequate(out, "Fig. 9", pa, core.RangeQuery, 0, 100, *runs, *seed, *workers) }},
			{"Fig. 10", func() error { return insufficient(out, pa, *trials, *seed10, *workers) }},
		}
		for _, f := range figs {
			if err := f.run(); err != nil {
				return fmt.Errorf("%s: %w", f.label, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func adequate(out *os.File, label string, ds *dataset.Dataset, kind core.QueryKind,
	ratio, distance float64, runs int, seed int64, workers int) error {

	fmt.Fprintf(out, "### %s ###\n", label)
	fig, err := experiments.Adequate(experiments.Config{
		DS:         ds,
		Kind:       kind,
		SpeedRatio: ratio,
		DistanceM:  distance,
		Runs:       runs,
		Seed:       seed,
		Workers:    workers,
	})
	if err != nil {
		return err
	}
	if err := experiments.WriteFigure(out, fig); err != nil {
		return err
	}
	if err := experiments.WriteFigureBars(out, fig); err != nil {
		return err
	}
	fmt.Fprintln(out, experiments.Summary(fig))
	return nil
}

func insufficient(out *os.File, ds *dataset.Dataset, trials int, seed int64, workers int) error {
	fmt.Fprintln(out, "### Fig. 10 ###")
	for _, budget := range []int{1 << 20, 2 << 20} {
		fig, err := experiments.Insufficient(experiments.InsufficientConfig{
			DS:          ds,
			BudgetBytes: budget,
			Trials:      trials,
			Seed:        seed,
			Workers:     workers,
		})
		if err != nil {
			return err
		}
		if err := experiments.WriteInsufficientFigure(out, fig); err != nil {
			return err
		}
	}
	return nil
}

func printConfig(out *os.File) error {
	cc := cpu.DefaultClientConfig()
	sc := cpu.DefaultServerConfig()
	fmt.Fprintln(out, "== Table 2: NIC power states ==")
	fmt.Fprintf(out, "TRANSMIT  %7.1f mW at 1 km (%.1f mW at 100 m)\n", nic.TxPower1Km*1e3, nic.TxPower100m*1e3)
	fmt.Fprintf(out, "RECEIVE   %7.1f mW\n", nic.RxPower*1e3)
	fmt.Fprintf(out, "IDLE      %7.1f mW (exit latency: 0 s)\n", nic.IdlePower*1e3)
	fmt.Fprintf(out, "SLEEP     %7.1f mW (exit latency: %.0f us)\n", nic.SleepPower*1e3, nic.SleepExitLatency*1e6)
	if err := nic.SanityCheckTable2(); err != nil {
		return err
	}

	fmt.Fprintln(out, "\n== Table 3: client configuration ==")
	fmt.Fprintf(out, "clock            %s/8 = %.0f MHz (swept)\n", "MhzS", cc.ClockHz/1e6)
	fmt.Fprintf(out, "pipeline         single-issue 5-stage integer\n")
	fmt.Fprintf(out, "I-cache          %d KB %d-way, %d B lines\n", cc.ICache.SizeBytes/1024, cc.ICache.Assoc, cc.ICache.LineBytes)
	fmt.Fprintf(out, "D-cache          %d KB %d-way, %d B lines\n", cc.DCache.SizeBytes/1024, cc.DCache.Assoc, cc.DCache.LineBytes)
	fmt.Fprintf(out, "memory latency   %d cycles\n", cc.MemLatency)

	fmt.Fprintln(out, "\n== Table 4: server configuration ==")
	fmt.Fprintf(out, "clock            %.0f GHz\n", sc.ClockHz/1e9)
	fmt.Fprintf(out, "issue width      %d (effective IPC %.2f)\n", sc.IssueWidth, float64(sc.IssueWidth)*sc.IPCEfficiency)
	fmt.Fprintf(out, "L1 I/D           %d KB %d-way, %d B lines\n", sc.ICache.SizeBytes/1024, sc.ICache.Assoc, sc.ICache.LineBytes)
	fmt.Fprintf(out, "unified L2       %d KB %d-way, %d B lines\n", sc.L2.SizeBytes/1024, sc.L2.Assoc, sc.L2.LineBytes)

	fmt.Fprintln(out, "\n== Wire format ==")
	fmt.Fprintf(out, "TCP/IP headers   %d + %d B, MAC %d B, MTU %d B, MSS %d B\n",
		proto.TCPHeaderBytes, proto.IPHeaderBytes, proto.MACHeaderBytes, proto.MTU, proto.MSS)
	return proto.Validate()
}

func printSchemes(out *os.File) error {
	fmt.Fprintln(out, "== Table 1: work partitioning and data placement choices ==")
	fmt.Fprintln(out, "\nAdequate memory at client:")
	fmt.Fprintln(out, "  fully-client                      index both,  data both")
	fmt.Fprintln(out, "  fully-server                      index server, data server-only OR both")
	fmt.Fprintln(out, "  filter-client-refine-server       index both,  data server-only OR both")
	fmt.Fprintln(out, "  filter-server-refine-client       index server, data both")
	fmt.Fprintln(out, "\nInsufficient memory at client:")
	fmt.Fprintln(out, "  fully-server                      index server, data server")
	fmt.Fprintln(out, "  fully-client (budgeted shipment)  index/data partly at client, fully at server")
	fmt.Fprintln(out, "\nQuery kinds: point, range, nn (nn has no filter/refine split)")
	return nil
}
