// Command mqtop is a live terminal view of a running mqserve: it polls the
// server's metrics over the query protocol itself (MsgStatsReq/MsgStats on
// a plain client connection — no HTTP endpoint required) and renders
// counters, rates, and latency histograms top-style.
//
// Usage:
//
//	mqtop [flags]
//
// Flags:
//
//	-addr      server address (default 127.0.0.1:7070)
//	-interval  refresh interval (default 2s)
//	-n         number of refreshes, 0 = until interrupted (default 0)
//
// Rates (qps, bytes/s) are deltas between consecutive snapshots; the first
// frame shows totals only. A failed poll does not exit: mqtop's own client
// runs a circuit breaker, the header flips to UNREACHABLE with the breaker
// state, and polling resumes when the server comes back.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"mobispatial/internal/obs"
	"mobispatial/internal/serve/client"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mqtop:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mqtop", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "server address")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	count := fs.Int("n", 0, "number of refreshes (0 = until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// mqtop's own connection rides the breaker so a dead server costs one
	// fast failure per refresh, not a full retry storm; polling continues and
	// the header reports the link state until the server returns.
	c, err := client.New(client.Config{Addr: *addr, Conns: 1,
		RequestTimeout: 2 * time.Second, MaxRetries: 1,
		Breaker: client.BreakerConfig{Enabled: true, ProbeInterval: *interval}})
	if err != nil {
		return err
	}
	defer c.Close()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()

	var prev obs.Snapshot
	var prevAt time.Time
	for i := 0; ; i++ {
		msg, err := c.StatsSnapshot()
		if *count != 1 {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		if err != nil {
			fmt.Printf("mqtop — %s  UNREACHABLE (breaker %s)  %s\n  %v\n",
				*addr, c.BreakerState(), time.Now().Format("15:04:05"), err)
		} else {
			now := time.Now()
			snap := obs.SnapshotFromMsg(msg)
			render(os.Stdout, *addr, c, msg.UptimeMicros, snap, prev, now.Sub(prevAt), i > 0)
			prev, prevAt = snap, now
		}

		if *count > 0 && i+1 >= *count {
			return nil
		}
		select {
		case <-ticker.C:
		case <-sigc:
			return nil
		}
	}
}

// render draws one frame. haveDelta enables the rate column once a previous
// snapshot exists.
func render(w *os.File, addr string, c *client.Client, uptimeMicros uint64, snap, prev obs.Snapshot, dt time.Duration, haveDelta bool) {
	link := c.Link()
	// A sharded server exports the shard_count gauge and a router exports
	// router_backends; surface whichever is present in the header so one
	// glance says which tier and execution mode is running. Unknown metric
	// names — a newer server's snapshot — still render generically below.
	sharding := ""
	for _, g := range snap.Gauges {
		switch {
		case g.Name == "shard_count" && g.Value > 0:
			sharding += fmt.Sprintf("  shards %.0f", g.Value)
		case g.Name == "router_backends" && g.Value > 0:
			sharding += fmt.Sprintf("  router %.0f backends", g.Value)
		case g.Name == "router_ranges" && g.Value > 0:
			sharding += fmt.Sprintf("/%.0f ranges", g.Value)
		}
	}
	fmt.Fprintf(w, "mqtop — %s  up %v  breaker %s  rtt %v%s  %s\n", addr,
		(time.Duration(uptimeMicros) * time.Microsecond).Round(time.Second),
		c.BreakerState(), link.RTT.Round(time.Microsecond), sharding,
		time.Now().Format("15:04:05"))
	// An updatable server exports per-shard mutable_* gauges; aggregate
	// them into one update-subsystem line. Older servers export none and
	// the line is simply absent — no version negotiation needed.
	if line := mutableLine(snap); line != "" {
		fmt.Fprintln(w, line)
	}
	// An adaptive server exports per-shard mutable_heat gauges and the
	// repartition counters; older servers (or -adaptive off) export none
	// and the line is absent — same graceful degradation.
	if line := heatLine(snap, prev, haveDelta); line != "" {
		fmt.Fprintln(w, line)
	}
	// A caching server exports qcache_* counters; older servers (or -qcache
	// off) export none and the line is absent — same graceful degradation.
	if line := cacheLine(snap, prev, dt, haveDelta); line != "" {
		fmt.Fprintln(w, line)
	}
	fmt.Fprintln(w)

	prevCounters := map[string]uint64{}
	for _, c := range prev.Counters {
		prevCounters[c.Name] = c.Value
	}
	fmt.Fprintf(w, "%-44s %14s %12s\n", "counter", "total", "per second")
	for _, c := range snap.Counters {
		rate := "-"
		if haveDelta && dt > 0 {
			rate = fmt.Sprintf("%.1f", float64(c.Value-prevCounters[c.Name])/dt.Seconds())
		}
		fmt.Fprintf(w, "%-44s %14d %12s\n", c.Name, c.Value, rate)
	}

	if len(snap.Gauges) > 0 {
		fmt.Fprintf(w, "\n%-44s %14s\n", "gauge", "value")
		for _, g := range snap.Gauges {
			fmt.Fprintf(w, "%-44s %14.4g\n", g.Name, g.Value)
		}
	}

	hists := append([]obs.HistValue(nil), snap.Hists...)
	sort.Slice(hists, func(i, j int) bool { return hists[i].Name < hists[j].Name })
	header := false
	for _, h := range hists {
		if h.Count == 0 {
			continue
		}
		if !header {
			fmt.Fprintf(w, "\n%-44s %10s %9s %9s %9s %9s\n",
				"histogram", "count", "mean", "p50", "p95", "p99")
			header = true
		}
		fmt.Fprintf(w, "%-44s %10d %9s %9s %9s %9s\n",
			trimName(h.Name), h.Count, histVal(h.Name, h.Mean), histVal(h.Name, h.P50),
			histVal(h.Name, h.P95), histVal(h.Name, h.P99))
	}
}

// mutableLine folds the per-shard mutable_epoch / mutable_pending /
// mutable_staleness_seconds gauges into one summary line, or "" when the
// server exports none (not updatable, or predates the update subsystem).
func mutableLine(snap obs.Snapshot) string {
	shards := 0
	var maxEpoch, pending, maxStale float64
	for _, g := range snap.Gauges {
		switch {
		case shardLabeled(g.Name, "mutable_epoch"):
			shards++
			if g.Value > maxEpoch {
				maxEpoch = g.Value
			}
		case shardLabeled(g.Name, "mutable_pending"):
			pending += g.Value
		case shardLabeled(g.Name, "mutable_staleness_seconds"):
			if g.Value > maxStale {
				maxStale = g.Value
			}
		}
	}
	if shards == 0 {
		return ""
	}
	return fmt.Sprintf("mutable — %d shards  max epoch %.0f  pending %.0f  max staleness %s",
		shards, maxEpoch, pending, ms(maxStale))
}

// heatLine folds the adaptive-repartitioning telemetry into one line: total
// and hottest per-shard EWMA query rate (mutable_heat gauges) plus split and
// merge counts, with the last interval's repartition events when a baseline
// exists. Returns "" when the server exports no heat at all — a frozen pool,
// a non-adaptive mutable server, or a server predating the repartitioner.
func heatLine(snap, prev obs.Snapshot, haveDelta bool) string {
	n, total, hottest, hotIdx := 0, 0.0, 0.0, ""
	for _, g := range snap.Gauges {
		if rest, ok := strings.CutPrefix(g.Name, "mutable_heat{shard=\""); ok {
			n++
			total += g.Value
			if g.Value >= hottest {
				hottest = g.Value
				hotIdx = strings.TrimSuffix(rest, "\"}")
			}
		}
	}
	var splits, merges, prevSplits, prevMerges uint64
	for _, c := range snap.Counters {
		switch c.Name {
		case "mutable_splits_total":
			splits = c.Value
		case "mutable_merges_total":
			merges = c.Value
		}
	}
	if n == 0 && splits == 0 && merges == 0 {
		return ""
	}
	for _, c := range prev.Counters {
		switch c.Name {
		case "mutable_splits_total":
			prevSplits = c.Value
		case "mutable_merges_total":
			prevMerges = c.Value
		}
	}
	line := fmt.Sprintf("heat — %.0f q/s across %d shards  hottest shard %s (%.0f q/s)  %d splits  %d merges",
		total, n, hotIdx, hottest, splits, merges)
	if haveDelta && (splits > prevSplits || merges > prevMerges) {
		line += fmt.Sprintf("  [+%d/+%d this interval]", splits-prevSplits, merges-prevMerges)
	}
	return line
}

// cacheLine folds the qcache_* counters into one result-cache summary line —
// hits, misses, hit rate, and invalidations over the last refresh interval —
// or "" when the server exports none (cache off, or a server predating the
// result cache). The first frame has no baseline and shows run totals.
func cacheLine(snap, prev obs.Snapshot, dt time.Duration, haveDelta bool) string {
	cur := map[string]uint64{}
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, "qcache_") {
			cur[c.Name] = c.Value
		}
	}
	if len(cur) == 0 {
		return ""
	}
	old := map[string]uint64{}
	if haveDelta {
		for _, c := range prev.Counters {
			old[c.Name] = c.Value
		}
	}
	delta := func(name string) uint64 {
		v := cur[name]
		if o := old[name]; haveDelta && o <= v {
			return v - o
		}
		return v
	}
	hits, misses := delta("qcache_hits_total"), delta("qcache_misses_total")
	rate := 0.0
	if hits+misses > 0 {
		rate = 100 * float64(hits) / float64(hits+misses)
	}
	window := "total"
	if haveDelta {
		window = "last " + dt.Round(time.Second).String()
	}
	return fmt.Sprintf("qcache — %d hits  %d misses  %.1f%% hit rate  %d invalidations  (%s)",
		hits, misses, rate, delta("qcache_invalidations_total"), window)
}

// shardLabeled reports whether name is base{shard="..."}.
func shardLabeled(name, base string) bool {
	rest, ok := strings.CutPrefix(name, base+"{shard=\"")
	return ok && strings.HasSuffix(rest, "\"}")
}

// histVal formats one histogram summary cell. Only names ending in _seconds
// are durations; anything else — shard fan-out, router legs per query, and
// whatever future servers export — renders as a plain number instead of
// being misread as a latency.
func histVal(name string, v float64) string {
	if strings.HasSuffix(name, "_seconds") {
		return ms(v)
	}
	return fmt.Sprintf("%.2f", v)
}

// trimName shortens long labeled names to keep the table aligned.
func trimName(name string) string {
	if len(name) <= 44 {
		return name
	}
	return name[:41] + "..."
}

func ms(sec float64) string {
	switch {
	case sec >= 1:
		return fmt.Sprintf("%.2fs", sec)
	case sec >= 1e-3:
		return fmt.Sprintf("%.2fms", sec*1e3)
	default:
		return fmt.Sprintf("%.1fµs", sec*1e6)
	}
}
