module mobispatial

go 1.22
