// Package mobispatial reproduces "Energy and Performance Considerations in
// Work Partitioning for Mobile Spatial Queries" (Gurumurthi, An,
// Sivasubramaniam, Vijaykrishnan, Kandemir, Irwin — IPPS 2003): a study of
// how to split spatial query processing between a battery-powered mobile
// client and a resource-rich server across a wireless link.
//
// The implementation lives under internal/ (one package per subsystem: the
// packed R-tree, the synthetic TIGER-like datasets, the SimplePower-style
// client and SimpleScalar-style server machine models, the NIC power
// machine, the wireless protocol stack, the co-simulator, the partitioning
// schemes, and the per-figure experiment harness), with runnable tools in
// cmd/ and worked examples in examples/. The benchmarks in this root
// package regenerate every table and figure of the paper's evaluation; see
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package mobispatial
