// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation plus ablation benches for the design choices DESIGN.md calls
// out. Each figure benchmark regenerates the full sweep (the paper's 100
// query runs per point) and reports the headline numbers as custom metrics,
// so `go test -bench` output records the reproduced results.
package mobispatial

import (
	"sync"
	"testing"

	"mobispatial/internal/core"
	"mobispatial/internal/dataset"
	"mobispatial/internal/experiments"
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
	"mobispatial/internal/sim"
)

var (
	paOnce  sync.Once
	paData  *dataset.Dataset
	nycOnce sync.Once
	nycData *dataset.Dataset
)

func paDS() *dataset.Dataset {
	paOnce.Do(func() { paData = dataset.PA() })
	return paData
}

func nycDS() *dataset.Dataset {
	nycOnce.Do(func() { nycData = dataset.NYC() })
	return nycData
}

// reportCrossovers attaches the figure's headline result — the lowest swept
// bandwidth at which the given scheme beats fully-at-client — as bench
// metrics (0 = never within the sweep).
func reportCrossovers(b *testing.B, fig experiments.Figure, label string) {
	for _, s := range fig.Series {
		if s.Variant.Label != label {
			continue
		}
		var ec, cc float64
		for _, p := range s.Points {
			if cc == 0 && p.Cycles.Total() < fig.Baseline.Cycles.Total() {
				cc = p.BandwidthMbps
			}
			if ec == 0 && p.Energy.Total() < fig.Baseline.Energy.Total() {
				ec = p.BandwidthMbps
			}
		}
		b.ReportMetric(cc, "cycles-crossover-Mbps")
		b.ReportMetric(ec, "energy-crossover-Mbps")
		b.ReportMetric(fig.Baseline.Energy.Total(), "fully-client-J")
	}
}

func benchAdequate(b *testing.B, cfg experiments.Config, crossoverLabel string) {
	b.Helper()
	var fig experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Adequate(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if crossoverLabel != "" {
		reportCrossovers(b, fig, crossoverLabel)
	}
}

// BenchmarkFig4 — point queries on PA: energy and cycles across bandwidths
// for the fully-server and hybrid schemes (fully-client wins everywhere).
func BenchmarkFig4(b *testing.B) {
	benchAdequate(b, experiments.Config{DS: paDS(), Kind: core.PointQuery}, "fully-server")
}

// BenchmarkFig5 — range queries on PA: the central work-partitioning result.
func BenchmarkFig5(b *testing.B) {
	benchAdequate(b, experiments.Config{DS: paDS(), Kind: core.RangeQuery}, "fully-server/data-present")
}

// BenchmarkFig6 — nearest-neighbor queries on PA.
func BenchmarkFig6(b *testing.B) {
	benchAdequate(b, experiments.Config{DS: paDS(), Kind: core.NNQuery}, "fully-server")
}

// BenchmarkFig7 — range queries on the NYC dataset.
func BenchmarkFig7(b *testing.B) {
	benchAdequate(b, experiments.Config{DS: nycDS(), Kind: core.RangeQuery}, "fully-server/data-present")
}

// BenchmarkFig8 — range queries with the faster client (C/S = 1/2).
func BenchmarkFig8(b *testing.B) {
	benchAdequate(b, experiments.Config{DS: paDS(), Kind: core.RangeQuery, SpeedRatio: 0.5}, "fully-server/data-present")
}

// BenchmarkFig9 — range queries at 100 m client–base-station distance.
func BenchmarkFig9(b *testing.B) {
	benchAdequate(b, experiments.Config{DS: paDS(), Kind: core.RangeQuery, DistanceM: 100}, "fully-server/data-present")
}

// BenchmarkFig10 — insufficient client memory: proximity sweep for the 1 MB
// and 2 MB budgets; the reported metric is the energy-crossover proximity.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig1, err := experiments.Insufficient(experiments.InsufficientConfig{
			DS: paDS(), BudgetBytes: 1 << 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		fig2, err := experiments.Insufficient(experiments.InsufficientConfig{
			DS: paDS(), BudgetBytes: 2 << 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(fig1.EnergyCrossover), "energy-crossover-1MB")
			b.ReportMetric(float64(fig2.EnergyCrossover), "energy-crossover-2MB")
		}
	}
}

// BenchmarkTables123and4 — the configuration tables are constants; this
// bench exercises the full stack once per iteration at those exact settings
// (Table 2 NIC powers, Table 3 client, Table 4 server) on a single range
// query, reporting the per-query cost under the base configuration.
func BenchmarkTables123and4(b *testing.B) {
	ds := paDS()
	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		b.Fatal(err)
	}
	w := dataset.RangeQueries(ds, 1, 5)[0]
	var total float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := sim.New(sim.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		eng := core.NewEngineWithTree(ds, tree, sys)
		if _, err := eng.Run(core.Range(w), core.FullyServer, core.DataAtClient); err != nil {
			b.Fatal(err)
		}
		total = sys.Result().Energy.Total()
	}
	b.ReportMetric(total*1e3, "mJ/query")
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// ablationConfig runs a reduced fig5-style sweep with a parameter mutation
// and reports the fully-server/data-present energy at 2 Mbps.
func ablationConfig(b *testing.B, mutate func(*sim.Params)) {
	b.Helper()
	cfg := experiments.Config{
		DS:             paDS(),
		Kind:           core.RangeQuery,
		Runs:           40,
		BandwidthsMbps: []float64{2},
		Mutate:         mutate,
	}
	var fig experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Adequate(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range fig.Series {
		if s.Variant.Label == "fully-server/data-present" {
			b.ReportMetric(s.Points[0].Energy.Total(), "offload-J")
		}
	}
	b.ReportMetric(fig.Baseline.Energy.Total(), "fully-client-J")
}

// BenchmarkAblationBaseline is the reference point for the ablations below.
func BenchmarkAblationBaseline(b *testing.B) {
	ablationConfig(b, nil)
}

// BenchmarkAblationBusyWait re-runs with the client polling instead of
// blocking during receives (§5.2 reports blocking halves receive energy).
func BenchmarkAblationBusyWait(b *testing.B) {
	ablationConfig(b, func(p *sim.Params) { p.BusyWaitReceive = true })
}

// BenchmarkAblationNoCPUSleep disables the client core's low-power mode
// while blocked (§5.2 reports a 10–20% saving from it).
func BenchmarkAblationNoCPUSleep(b *testing.B) {
	ablationConfig(b, func(p *sim.Params) { p.DisableCPUSleep = true })
}

// BenchmarkAblationNoNICSleep keeps the NIC in IDLE wherever the protocol
// would sleep it.
func BenchmarkAblationNoNICSleep(b *testing.B) {
	ablationConfig(b, func(p *sim.Params) { p.DisableNICSleep = true })
}

// BenchmarkAblationPacking compares Hilbert-packed bulk loading against a
// 1-D x-sorted packing on the index-node visits of a fixed window workload.
func BenchmarkAblationPacking(b *testing.B) {
	ds := paDS()
	windows := dataset.RangeQueries(ds, 50, 9)
	for _, packing := range []struct {
		name string
		mode rtree.Packing
	}{{"hilbert", rtree.PackingHilbert}, {"str", rtree.PackingSTR}, {"xsort", rtree.PackingXSort}} {
		b.Run(packing.name, func(b *testing.B) {
			tree, err := rtree.Build(ds.Items(), rtree.Config{Packing: packing.mode}, ops.Null{})
			if err != nil {
				b.Fatal(err)
			}
			var visits int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var rec ops.Counts
				for _, w := range windows {
					tree.Search(w, &rec)
				}
				visits = rec.Ops[ops.OpNodeVisit]
			}
			b.ReportMetric(float64(visits)/float64(len(windows)), "node-visits/query")
		})
	}
}

// BenchmarkAblationFanout sweeps the R-tree node size (and hence fanout),
// reporting index size and per-query node visits.
func BenchmarkAblationFanout(b *testing.B) {
	ds := paDS()
	windows := dataset.RangeQueries(ds, 50, 9)
	for _, nodeBytes := range []int{128, 256, 512, 1024, 2048} {
		b.Run(byteSizeName(nodeBytes), func(b *testing.B) {
			tree, err := rtree.Build(ds.Items(), rtree.Config{NodeBytes: nodeBytes}, ops.Null{})
			if err != nil {
				b.Fatal(err)
			}
			var visits int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var rec ops.Counts
				for _, w := range windows {
					tree.Search(w, &rec)
				}
				visits = rec.Ops[ops.OpNodeVisit]
			}
			b.ReportMetric(float64(visits)/float64(len(windows)), "node-visits/query")
			b.ReportMetric(float64(tree.IndexBytes())/(1<<20), "index-MB")
		})
	}
}

func byteSizeName(n int) string {
	switch {
	case n >= 1024:
		return string(rune('0'+n/1024)) + "KiB"
	default:
		return string(rune('0'+n/100)) + "xxB" // 128->1xxB, 256->2xxB, 512->5xxB
	}
}

// BenchmarkInsufficientShipment measures one Fig. 2 extraction + sub-index
// build on the full PA master index.
func BenchmarkInsufficientShipment(b *testing.B) {
	ds := paDS()
	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		b.Fatal(err)
	}
	w := dataset.RangeQueries(ds, 1, 11)[0]
	budget := rtree.Budget{Bytes: 1 << 20, RecordBytes: ds.RecordBytes}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.ExtractSubset(w, budget, ops.Null{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullSessionSimulation measures the end-to-end simulator cost of
// one fully-at-server range query on PA (system setup + query + accounting).
func BenchmarkFullSessionSimulation(b *testing.B) {
	ds := paDS()
	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		b.Fatal(err)
	}
	w := geom.Rect{Min: geom.Point{X: 40_000, Y: 30_000}, Max: geom.Point{X: 44_000, Y: 34_000}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := sim.New(sim.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		eng := core.NewEngineWithTree(ds, tree, sys)
		if _, err := eng.Run(core.Range(w), core.FullyClient, core.DataAtClient); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTCPAcks re-runs the reduced sweep with TCP acknowledgment
// traffic modeled (delayed ACKs transmitted by the client during receives).
func BenchmarkAblationTCPAcks(b *testing.B) {
	ablationConfig(b, func(p *sim.Params) { p.ModelTCPAcks = true })
}

// BenchmarkPipelined compares the serial filter@client+refine@server scheme
// against the pipelined variant (w4 > 0) on a fixed heavyweight window,
// reporting the cycle counts of both.
func BenchmarkPipelined(b *testing.B) {
	ds := paDS()
	c := ds.Segments[4242].Midpoint()
	q := core.Range(geom.Rect{
		Min: geom.Point{X: c.X - 4000, Y: c.Y - 4000},
		Max: geom.Point{X: c.X + 4000, Y: c.Y + 4000},
	})
	var serialCycles, pipeCycles int64
	for i := 0; i < b.N; i++ {
		sysA, err := sim.New(sim.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		engA, err := core.NewEngine(ds, sysA)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := engA.Run(q, core.FilterClientRefineServer, core.DataAtClient); err != nil {
			b.Fatal(err)
		}
		serialCycles = sysA.Result().TotalClientCycles()

		sysB, err := sim.New(sim.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		engB, err := core.NewEngine(ds, sysB)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := engB.RunPipelined(q, core.DataAtClient, 6); err != nil {
			b.Fatal(err)
		}
		pipeCycles = sysB.Result().TotalClientCycles()
	}
	b.ReportMetric(float64(serialCycles), "serial-cycles")
	b.ReportMetric(float64(pipeCycles), "pipelined-cycles")
	b.ReportMetric(float64(serialCycles)/float64(pipeCycles), "speedup")
}

// BenchmarkIndexComparison regenerates the access-method comparison matrix
// (the paper's reference-[2] context) on the NYC dataset.
func BenchmarkIndexComparison(b *testing.B) {
	var results []experiments.IndexResult
	var err error
	for i := 0; i < b.N; i++ {
		results, err = experiments.CompareIndexes(experiments.IndexComparisonConfig{
			DS: nycDS(), Runs: 40,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		if r.Index == "packed-rtree" && r.Kind == core.RangeQuery {
			b.ReportMetric(float64(r.IndexBytes)/(1<<20), "packed-index-MB")
			b.ReportMetric(r.EnergyJ, "packed-range-J")
		}
	}
}

// BenchmarkBroadcastVsPull regenerates the hot-region dissemination
// comparison ([15]'s setting inside this framework).
func BenchmarkBroadcastVsPull(b *testing.B) {
	ds := paDS()
	c := ds.Segments[2026].Midpoint()
	window := geom.Rect{
		Min: geom.Point{X: c.X - 2000, Y: c.Y - 2000},
		Max: geom.Point{X: c.X + 2000, Y: c.Y + 2000},
	}
	var cmp experiments.BroadcastComparison
	var err error
	for i := 0; i < b.N; i++ {
		cmp, err = experiments.CompareBroadcast(ds, window, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cmp.PullJ, "pull-J")
	b.ReportMetric(cmp.BroadcastJ, "broadcast-J")
}

// BenchmarkValidationLease measures the consistency/energy trade-off of the
// update-handling extension: revalidate every local query vs every 10.
func BenchmarkValidationLease(b *testing.B) {
	ds := paDS()
	var eagerJ, lazyJ float64
	for i := 0; i < b.N; i++ {
		for _, lease := range []int{1, 10} {
			seq := dataset.ProximitySequence(ds, 40, 0.012, 4242)
			sys, err := sim.New(sim.DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			eng, err := core.NewEngine(ds, sys)
			if err != nil {
				b.Fatal(err)
			}
			cache := core.NewCache(1<<20, ds.RecordBytes)
			log := core.NewUpdateLog()
			for qi, w := range seq {
				if qi%4 == 1 {
					log.Apply(eng.RandomUpdates(w, 3))
				}
				if _, _, _, err := eng.RunInsufficientClientValidated(core.Range(w), cache, log, lease); err != nil {
					b.Fatal(err)
				}
			}
			if lease == 1 {
				eagerJ = sys.Result().Energy.Total()
			} else {
				lazyJ = sys.Result().Energy.Total()
			}
		}
	}
	b.ReportMetric(eagerJ, "lease1-J")
	b.ReportMetric(lazyJ, "lease10-J")
}
