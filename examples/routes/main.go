// Routes: driving directions on the road atlas — the shortest-path
// application the paper's road-atlas discussion opens with. A routable graph
// is derived from the NYC dataset, and the same route is computed on the
// device versus offloaded to the server, showing why the most
// compute-intensive query in the workload is the strongest offloading
// candidate.
//
//	go run ./examples/routes
package main

import (
	"fmt"
	"log"

	"mobispatial/internal/core"
	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/roadnet"
	"mobispatial/internal/sim"
)

func main() {
	fmt.Println("generating the NYC dataset and deriving the road graph...")
	ds := dataset.NYC()
	spec, err := core.NewRouteSpec(ds)
	if err != nil {
		log.Fatal(err)
	}
	st := spec.Graph.Summary()
	fmt.Printf("graph: %d intersections, %d directed edges, %.2f MB, %d components\n\n",
		st.Nodes, st.Edges, float64(st.Bytes)/(1<<20), st.Components)

	// Pick routable terminals from the network's largest connected
	// component (the synthetic atlas, like real TIGER extracts, has
	// disconnected fringes).
	comp := spec.Graph.LargestComponentNodes()
	if len(comp) < 100 {
		log.Fatalf("largest component has only %d nodes", len(comp))
	}
	anchor := spec.Graph.NodeAt(comp[0])
	var farthest, mid geom.Point
	var farD float64
	for _, ni := range comp {
		p := spec.Graph.NodeAt(ni)
		if d := p.Dist(anchor); d > farD {
			farD, farthest = d, p
		}
	}
	for _, ni := range comp {
		p := spec.Graph.NodeAt(ni)
		if d := p.Dist(anchor); d > farD/3 && d < farD/2 {
			mid = p
			break
		}
	}

	trips := []struct {
		name     string
		from, to geom.Point
	}{
		{"crosstown", anchor, farthest},
		{"short hop", anchor, mid},
	}

	for _, trip := range trips {
		fmt.Printf("trip %q:\n", trip.name)
		var routed roadnet.Route
		for _, scheme := range []core.RouteScheme{core.RouteFullyClient, core.RouteFullyServer} {
			sys, err := sim.New(sim.DefaultParams())
			if err != nil {
				log.Fatal(err)
			}
			route, ok, err := core.RunRoute(sys, spec, trip.from, trip.to, scheme)
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				fmt.Printf("  %-20v unreachable in this network\n", scheme)
				continue
			}
			routed = route
			r := sys.Result()
			fmt.Printf("  %-20v %8.2f km, %6d segments, %10.3f mJ, %12d cycles\n",
				scheme, route.Meters/1000, len(route.SegIDs),
				r.Energy.Total()*1e3, r.TotalClientCycles())
		}
		_ = routed
		fmt.Println()
	}

	fmt.Println("long routes expand enough graph nodes that one small request/reply")
	fmt.Println("exchange beats computing on the slow device — while short hops, like")
	fmt.Println("the paper's point queries, are cheaper to keep local. The same")
	fmt.Println("work-partitioning calculus, applied to a new query type.")
}
