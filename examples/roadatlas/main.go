// Roadatlas: a simulated mobile road-atlas session on the paper's PA
// dataset — the workload its introduction motivates. A driver pans and zooms
// the map (range queries), taps streets (point queries), and asks for the
// nearest street to landmarks (NN queries).
//
// The session is executed three ways and compared on battery energy and
// responsiveness:
//
//  1. everything on the device (the prior work's assumption),
//
//  2. everything on the server (the thin-client reflex), and
//
//  3. the paper's informed partitioning: tiny point/NN lookups stay local,
//     compute-heavy range queries offload with the data replicated.
//
//     go run ./examples/roadatlas
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mobispatial/internal/core"
	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/sim"
)

// sessionQueries scripts a map-browsing session: arrive somewhere, zoom
// around it, inspect streets, find the nearest road from a parking spot.
func sessionQueries(ds *dataset.Dataset, n int, seed int64) []core.Query {
	rng := rand.New(rand.NewSource(seed))
	var qs []core.Query
	at := ds.Segments[rng.Intn(ds.Len())].Midpoint()
	for len(qs) < n {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // pan/zoom: range query around the position
			w := 2000 + rng.Float64()*8000
			qs = append(qs, core.Range(geom.Rect{
				Min: geom.Point{X: at.X - w/2, Y: at.Y - w/2},
				Max: geom.Point{X: at.X + w/2, Y: at.Y + w/2},
			}))
			// Drift to a nearby neighborhood.
			at.X += (rng.Float64() - 0.5) * 2000
			at.Y += (rng.Float64() - 0.5) * 2000
		case 5, 6, 7: // tap a street
			s := ds.Segments[rng.Intn(ds.Len())]
			qs = append(qs, core.Point(s.A))
		default: // nearest street to a landmark
			qs = append(qs, core.Nearest(geom.Point{
				X: at.X + (rng.Float64()-0.5)*1000,
				Y: at.Y + (rng.Float64()-0.5)*1000,
			}))
		}
	}
	return qs
}

// runSession executes the session under a per-query scheme chooser.
func runSession(ds *dataset.Dataset, qs []core.Query,
	choose func(core.Query) (core.Scheme, core.DataPlacement)) (sim.Result, error) {

	p := sim.DefaultParams()
	p.BandwidthBps = 11e6 // an 802.11b-class link
	sys, err := sim.New(p)
	if err != nil {
		return sim.Result{}, err
	}
	eng, err := core.NewEngine(ds, sys)
	if err != nil {
		return sim.Result{}, err
	}
	for _, q := range qs {
		scheme, placement := choose(q)
		if _, err := eng.Run(q, scheme, placement); err != nil {
			return sim.Result{}, err
		}
	}
	return sys.Result(), nil
}

func main() {
	fmt.Println("generating the PA dataset (139,006 TIGER-like street segments)...")
	ds := dataset.PA()
	qs := sessionQueries(ds, 60, 99)
	fmt.Printf("session: %d mixed queries over an 11 Mbps link, 1 km range\n\n", len(qs))

	strategies := []struct {
		name   string
		choose func(core.Query) (core.Scheme, core.DataPlacement)
	}{
		{"all on the device", func(core.Query) (core.Scheme, core.DataPlacement) {
			return core.FullyClient, core.DataAtClient
		}},
		{"all on the server", func(core.Query) (core.Scheme, core.DataPlacement) {
			return core.FullyServer, core.DataAtClient
		}},
		{"informed partitioning", func(q core.Query) (core.Scheme, core.DataPlacement) {
			// The paper's lessons: point and NN queries are communication-
			// dominated — keep them local; range queries are refinement-
			// dominated — offload them with the data replicated so the
			// reply is just ids.
			if q.Kind == core.RangeQuery {
				return core.FullyServer, core.DataAtClient
			}
			return core.FullyClient, core.DataAtClient
		}},
	}

	fmt.Printf("%-24s %12s %14s %12s\n", "strategy", "energy (J)", "client cycles", "elapsed (s)")
	for _, st := range strategies {
		r, err := runSession(ds, qs, st.choose)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %12.4f %14d %12.3f\n",
			st.name, r.Energy.Total(), r.TotalClientCycles(), r.ElapsedSeconds)
	}

	fmt.Println("\nInformed partitioning keeps the cheap lookups off the radio and")
	fmt.Println("ships only the work the slow client would struggle with.")
}
