// Quickstart: build a road-atlas dataset and its packed R-tree, then run the
// three query types of the paper (point, range, nearest-neighbor) under every
// work-partitioning scheme, printing the client's energy and end-to-end
// cycles for each.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mobispatial/internal/core"
	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/sim"
)

func main() {
	// A small synthetic city so the example runs instantly; dataset.PA()
	// and dataset.NYC() give the paper's full-size datasets.
	ds, err := dataset.Generate(dataset.GenConfig{
		Name:           "demo-city",
		NumSegments:    20000,
		RecordBytes:    76,
		Extent:         geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 20_000, Y: 20_000}},
		Clusters:       5,
		ClusterStdFrac: 0.08,
		UniformFrac:    0.2,
		StreetSegs:     [2]int{3, 15},
		SegLen:         [2]float64{50, 150},
		GridBias:       0.6,
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %q: %d street segments, %.2f MB\n",
		ds.Name, ds.Len(), float64(ds.TotalBytes())/(1<<20))

	// The queries: a point on a street, a window around downtown, and a
	// nearest-street probe.
	queries := []struct {
		name string
		q    core.Query
	}{
		{"point", core.Point(ds.Segments[100].A)},
		{"range", core.Range(geom.Rect{
			Min: geom.Point{X: 9_000, Y: 9_000},
			Max: geom.Point{X: 11_000, Y: 11_000},
		})},
		{"nearest-neighbor", core.Nearest(geom.Point{X: 5_000, Y: 14_000})},
	}

	schemes := []struct {
		name      string
		scheme    core.Scheme
		placement core.DataPlacement
	}{
		{"fully at client", core.FullyClient, core.DataAtClient},
		{"fully at server (data absent)", core.FullyServer, core.DataAtServerOnly},
		{"fully at server (data present)", core.FullyServer, core.DataAtClient},
		{"filter@client + refine@server", core.FilterClientRefineServer, core.DataAtClient},
		{"filter@server + refine@client", core.FilterServerRefineClient, core.DataAtClient},
	}

	for _, qc := range queries {
		fmt.Printf("\n%s query — 2 Mbps link, 1 km to base station, client at 125 MHz:\n", qc.name)
		fmt.Printf("  %-34s %12s %14s %8s\n", "scheme", "energy (mJ)", "cycles", "answers")
		for _, sc := range schemes {
			// One fresh simulated system per scheme so the comparisons
			// start from identical cold state.
			sys, err := sim.New(sim.DefaultParams())
			if err != nil {
				log.Fatal(err)
			}
			eng, err := core.NewEngine(ds, sys)
			if err != nil {
				log.Fatal(err)
			}
			ans, err := eng.Run(qc.q, sc.scheme, sc.placement)
			if err != nil {
				// NN queries have no filter/refine split — skip those rows.
				continue
			}
			r := sys.Result()
			fmt.Printf("  %-34s %12.3f %14d %8d\n",
				sc.name, r.Energy.Total()*1e3, r.TotalClientCycles(), len(ans.IDs))
		}
	}

	fmt.Println("\nLesson (as in the paper): tiny queries stay on the client;")
	fmt.Println("compute-heavy range queries are worth offloading once the data is")
	fmt.Println("replicated and the link is fast enough.")
}
