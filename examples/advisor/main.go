// Advisor: uses the paper's §4.1 analytic trade-off model as a library. The
// workload is first characterized by executing it against the real index
// with a counting recorder (no machine simulation), then the closed-form
// conditions predict — per bandwidth — whether offloading the work saves
// cycles and/or energy. The example then validates the prediction for one
// point against the full simulator.
//
//	go run ./examples/advisor
package main

import (
	"fmt"
	"log"

	"mobispatial/internal/core"
	"mobispatial/internal/cpu"
	"mobispatial/internal/dataset"
	"mobispatial/internal/energy"
	"mobispatial/internal/geom"
	"mobispatial/internal/nic"
	"mobispatial/internal/ops"
	"mobispatial/internal/proto"
	"mobispatial/internal/rtree"
	"mobispatial/internal/sim"
)

func main() {
	ds, err := dataset.Generate(dataset.GenConfig{
		Name: "advisor-demo", NumSegments: 30000, RecordBytes: 76,
		Extent:   geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 30_000, Y: 30_000}},
		Clusters: 6, ClusterStdFrac: 0.08, UniformFrac: 0.25,
		StreetSegs: [2]int{3, 14}, SegLen: [2]float64{50, 160},
		GridBias: 0.5, Seed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		log.Fatal(err)
	}

	// Characterize a downtown range query by counting its abstract
	// operations — this is cheap (no machine model attached).
	window := geom.Rect{Min: geom.Point{X: 12_000, Y: 12_000}, Max: geom.Point{X: 16_000, Y: 16_000}}
	var counts ops.Counts
	cands := tree.Search(window, &counts)
	costs := cpu.DefaultOpCosts()
	filterInstr := float64(counts.Ops[ops.OpMBRTest])*float64(costs[ops.OpMBRTest].Instr) +
		float64(counts.Ops[ops.OpNodeVisit])*float64(costs[ops.OpNodeVisit].Instr)
	refineInstr := float64(len(cands)) * float64(costs[ops.OpRefineRange].Instr)
	// A single-issue client: cycles ≈ instructions plus a miss allowance.
	fullyLocal := (filterInstr + refineInstr) * 1.25

	// Offloading fully to the server with the data replicated: the uplink
	// carries the request, the downlink the matching ids.
	ep := energy.DefaultParams()
	hits := len(cands) // upper bound on the reply size
	in := core.AnalyticInputs{
		CFullyLocal:  fullyLocal,
		CLocal:       0,
		CProtocol:    3000,
		CW2:          (filterInstr + refineInstr) / 2.6, // server IPC
		ClientHz:     125e6,
		ServerHz:     1e9,
		PacketTxBits: float64(proto.Packetize(proto.QueryRequestBytes).WireBytes * 8),
		PacketRxBits: float64(proto.Packetize(proto.IDListBytes(hits)).WireBytes * 8),
		PClient:      0.11,
		PTx:          nic.TxPower1Km,
		PRx:          nic.RxPower,
		PIdle:        nic.IdlePower,
		PSleep:       nic.SleepPower,
		PBlocked:     ep.CPUSleepWatts,
	}

	fmt.Printf("query window %v: %d filter candidates\n", window, len(cands))
	fmt.Printf("fully-local estimate: %.2f Mcycles\n\n", fullyLocal/1e6)
	fmt.Printf("%10s %14s %14s %12s %12s\n", "bandwidth", "cycle ratio", "energy ratio", "offload for", "")
	for _, mbps := range []float64{1, 2, 4, 6, 8, 11, 20} {
		in.BandwidthBps = mbps * 1e6
		v := in.Advise()
		verdict := "neither"
		switch {
		case v.SavesCycles && v.SavesEnergy:
			verdict = "both"
		case v.SavesCycles:
			verdict = "performance"
		case v.SavesEnergy:
			verdict = "energy"
		}
		fmt.Printf("%8.0f M %14.2f %14.2f %12s\n", mbps, v.CycleRatio, v.EnergyRatio, verdict)
	}

	// Validate one point with the full execution-driven simulator.
	fmt.Println("\nvalidating the 11 Mbps prediction against the full simulator:")
	for _, scheme := range []core.Scheme{core.FullyClient, core.FullyServer} {
		p := sim.DefaultParams()
		p.BandwidthBps = 11e6
		sys, err := sim.New(p)
		if err != nil {
			log.Fatal(err)
		}
		eng := core.NewEngineWithTree(ds, tree, sys)
		if _, err := eng.Run(core.Range(window), scheme, core.DataAtClient); err != nil {
			log.Fatal(err)
		}
		r := sys.Result()
		fmt.Printf("  %-13v: %10.3f mJ, %12d cycles\n",
			scheme, r.Energy.Total()*1e3, r.TotalClientCycles())
	}
}
