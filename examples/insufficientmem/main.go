// Insufficientmem: walks through the paper's §6.2 scenario, where the
// dataset and index do not fit on the mobile device. The first query makes
// the server pick a memory-budget-sized slice of data spatially around the
// query (Fig. 2), build a fresh packed sub-index over it, and ship both; the
// client then answers every spatially proximate follow-up locally, with the
// radio asleep, until the user wanders outside the shipped coverage.
//
//	go run ./examples/insufficientmem
package main

import (
	"fmt"
	"log"

	"mobispatial/internal/core"
	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/sim"
)

func main() {
	fmt.Println("generating the PA dataset...")
	ds := dataset.PA()
	fmt.Printf("dataset: %d segments, %.2f MB data — far beyond a 1 MB client budget\n\n",
		ds.Len(), float64(ds.TotalBytes())/(1<<20))

	p := sim.DefaultParams()
	p.BandwidthBps = 11e6
	sys, err := sim.New(p)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.NewEngine(ds, sys)
	if err != nil {
		log.Fatal(err)
	}
	cache := core.NewCache(1<<20, ds.RecordBytes)

	// A browsing session: queries around one neighborhood, then a jump to a
	// far part of the state.
	browse := dataset.ProximitySequence(ds, 8, 0.012, 4242)
	far := geom.Rect{
		Min: geom.Point{X: 2_000, Y: 2_000},
		Max: geom.Point{X: 4_000, Y: 4_000},
	}
	queries := append(browse, far)

	fmt.Printf("%-6s %-10s %10s %14s %10s\n", "query", "served", "hits", "total cycles", "energy J")
	for i, w := range queries {
		ans, local, err := eng.RunInsufficientClient(core.Range(w), cache)
		if err != nil {
			log.Fatal(err)
		}
		served := "SHIPMENT" // a fresh slice was downloaded
		if local {
			served = "local"
		}
		r := sys.Result()
		fmt.Printf("%-6d %-10s %10d %14d %10.4f\n",
			i, served, len(ans.IDs), r.TotalClientCycles(), r.Energy.Total())
	}

	fmt.Printf("\nshipments fetched: %d, local hits: %d\n", cache.Refetches, cache.LocalHits)
	fmt.Println("\nThe first query pays for a 1 MB shipment; the follow-ups cost almost")
	fmt.Println("nothing because they never touch the radio. The jump across the state")
	fmt.Println("falls outside the shipped coverage and triggers a fresh shipment —")
	fmt.Println("exactly the amortization trade-off the paper's Fig. 10 sweeps.")
}
