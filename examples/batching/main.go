// Batching: the paper's amortization lesson in action — "the receive cost
// can be amortized by the savings over several queries" (§7). A map client
// prefetching the tiles around the user's position can ship all the tile
// queries in one request instead of one round trip each, paying the
// transmitter ramp, the protocol fixed costs, and the NIC wake-up once.
//
//	go run ./examples/batching
package main

import (
	"fmt"
	"log"

	"mobispatial/internal/core"
	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/sim"
)

func main() {
	fmt.Println("generating the NYC dataset...")
	ds := dataset.NYC()

	// The 3×3 tile neighborhood around a position — a prefetch burst.
	center := ds.Segments[4242].Midpoint()
	const tile = 1500.0
	var queries []core.Query
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			cx := center.X + float64(dx)*tile
			cy := center.Y + float64(dy)*tile
			queries = append(queries, core.Range(geom.Rect{
				Min: geom.Point{X: cx - tile/2, Y: cy - tile/2},
				Max: geom.Point{X: cx + tile/2, Y: cy + tile/2},
			}.Intersection(ds.Extent)))
		}
	}
	fmt.Printf("prefetch burst: %d tile queries around %v\n\n", len(queries), center)

	newEngine := func() (*core.Engine, *sim.System) {
		sys, err := sim.New(sim.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		eng, err := core.NewEngine(ds, sys)
		if err != nil {
			log.Fatal(err)
		}
		return eng, sys
	}

	// One round trip per tile.
	engI, sysI := newEngine()
	for _, q := range queries {
		if _, err := engI.Run(q, core.FullyServer, core.DataAtClient); err != nil {
			log.Fatal(err)
		}
	}
	ri := sysI.Result()

	// One batched exchange.
	engB, sysB := newEngine()
	batch, err := engB.RunBatch(queries)
	if err != nil {
		log.Fatal(err)
	}
	rb := sysB.Result()

	hits := 0
	for _, a := range batch.Answers {
		hits += len(a.IDs)
	}
	fmt.Printf("%-18s %12s %14s %12s %10s\n", "strategy", "energy (mJ)", "cycles", "elapsed ms", "wakeups")
	fmt.Printf("%-18s %12.3f %14d %12.2f %10d\n", "one-by-one",
		ri.Energy.Total()*1e3, ri.TotalClientCycles(), ri.ElapsedSeconds*1e3, ri.NIC.Wakeups)
	fmt.Printf("%-18s %12.3f %14d %12.2f %10d\n", "batched",
		rb.Energy.Total()*1e3, rb.TotalClientCycles(), rb.ElapsedSeconds*1e3, rb.NIC.Wakeups)
	fmt.Printf("\n%d street segments prefetched; batching saved %.0f%% energy and %.0f%% time.\n",
		hits,
		(1-rb.Energy.Total()/ri.Energy.Total())*100,
		(1-rb.ElapsedSeconds/ri.ElapsedSeconds)*100)
}
