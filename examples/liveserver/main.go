// Liveserver: boots the real TCP service (internal/serve) in-process,
// connects the partitioning-aware client, ships a budgeted sub-index, and
// then watches the planner change its mind as the (simulated) wireless link
// degrades — the paper's Fig. 4/5 crossover as a live routing decision. The
// same query is cheap to offload on a fast campus link and cheaper to answer
// on the handheld when the channel collapses.
//
//	go run ./examples/liveserver
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"mobispatial/internal/core"
	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/parallel"
	"mobispatial/internal/rtree"
	"mobispatial/internal/serve"
	"mobispatial/internal/serve/client"
)

func main() {
	fmt.Println("generating the NYC dataset and booting the server...")
	ds := dataset.NYC()
	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		log.Fatal(err)
	}
	pool, err := parallel.New(ds, tree, 0)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Pool: pool, Master: tree})
	if err != nil {
		log.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Close()
	fmt.Printf("server: %d segments on %s\n\n", ds.Len(), lis.Addr())

	c, err := client.New(client.Config{Addr: lis.Addr().String()})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// The handheld ships a sub-index around its neighborhood: enough budget
	// for the whole (small) NYC map, so every query below is covered and the
	// plan choice is purely the advisor's.
	p := client.NewPlanner(c)
	center := ds.Extent.Center()
	window := geom.Rect{
		Min: geom.Point{X: center.X - 2000, Y: center.Y - 2000},
		Max: geom.Point{X: center.X + 2000, Y: center.Y + 2000},
	}
	budget := ds.Len()*(ds.RecordBytes+rtree.EntryBytes) + 1<<20
	if err := p.FetchShipment(window, budget, ds.RecordBytes); err != nil {
		log.Fatal(err)
	}
	ship := p.Shipment()
	fmt.Printf("shipment: %d records, coverage %.0fx%.0f km\n\n",
		ship.Len(), ship.Coverage.Width()/1000, ship.Coverage.Height()/1000)

	point := core.Point(center)
	smallRange := core.Range(geom.Rect{
		Min: geom.Point{X: center.X - 300, Y: center.Y - 300},
		Max: geom.Point{X: center.X + 300, Y: center.Y + 300},
	})
	bigRange := core.Range(geom.Rect{
		Min: geom.Point{X: center.X - 15000, Y: center.Y - 15000},
		Max: geom.Point{X: center.X + 15000, Y: center.Y + 15000},
	})

	// Walk the link from a fast WLAN down to a struggling wide-area channel.
	links := []struct {
		name string
		rtt  time.Duration
		bps  float64
	}{
		{"campus WLAN, 54 Mbps", 2 * time.Millisecond, 54e6},
		{"paper's 2 Mbps WaveLAN", 5 * time.Millisecond, 2e6},
		{"congested 200 kbps", 40 * time.Millisecond, 200e3},
		{"fringe 20 kbps", 200 * time.Millisecond, 20e3},
	}
	queries := []struct {
		name string
		q    core.Query
	}{
		{"point lookup", point},
		{"small range (600 m)", smallRange},
		{"big range (30 km)", bigRange},
	}

	fmt.Printf("%-26s", "link")
	for _, q := range queries {
		fmt.Printf("  %-20s", q.name)
	}
	fmt.Println()
	for _, l := range links {
		c.SetLink(l.rtt, l.bps)
		fmt.Printf("%-26s", l.name)
		for _, q := range queries {
			plan, _ := p.Plan(q.q)
			fmt.Printf("  %-20s", plan)
		}
		fmt.Println()
	}

	// Execute one query per regime to show the answers agree regardless of
	// where the work ran.
	fmt.Println("\nexecuting the big range on both extremes:")
	c.SetLink(2*time.Millisecond, 54e6)
	fast, err := p.Execute(bigRange)
	if err != nil {
		log.Fatal(err)
	}
	c.SetLink(200*time.Millisecond, 20e3)
	slow, err := p.Execute(bigRange)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  fast link:   %-12s -> %d records\n", fast.Plan, len(fast.Records))
	fmt.Printf("  fringe link: %-12s -> %d records\n", slow.Plan, len(slow.Records))
	if len(fast.Records) != len(slow.Records) {
		log.Fatalf("answers disagree: %d vs %d", len(fast.Records), len(slow.Records))
	}
	fmt.Println("  identical answers — only the partitioning moved.")
}
