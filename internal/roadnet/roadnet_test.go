package roadnet

import (
	"container/heap"
	"math"
	"math/rand"
	"testing"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
)

func testDataset(t testing.TB, n int) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.GenConfig{
		Name: "net", NumSegments: n, RecordBytes: 76,
		Extent:   geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 10_000, Y: 10_000}},
		Clusters: 3, ClusterStdFrac: 0.15, UniformFrac: 0.3,
		StreetSegs: [2]int{3, 12}, SegLen: [2]float64{60, 150},
		GridBias: 0.5, Seed: 61,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func buildGraph(t testing.TB, n int) (*Graph, *dataset.Dataset) {
	t.Helper()
	ds := testDataset(t, n)
	g, err := Build(ds, 60, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	return g, ds
}

// denseCity builds a compact, well-connected network for routing tests:
// street spacing well below the snap radius, so the graph has one dominant
// component.
func denseCity(t testing.TB, n int) (*Graph, *dataset.Dataset) {
	t.Helper()
	d, err := dataset.Generate(dataset.GenConfig{
		Name: "dense", NumSegments: n, RecordBytes: 76,
		Extent:   geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 4_000, Y: 4_000}},
		Clusters: 2, ClusterStdFrac: 0.25, UniformFrac: 0.6,
		StreetSegs: [2]int{4, 14}, SegLen: [2]float64{60, 140},
		GridBias: 0.6, Seed: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(d, 80, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	return g, d
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(&dataset.Dataset{}, 50, ops.Null{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestGraphStructure(t *testing.T) {
	g, ds := buildGraph(t, 5000)
	if g.Nodes() == 0 || g.Edges() == 0 {
		t.Fatal("empty graph")
	}
	// Each kept segment contributes two directed edges.
	if g.Edges()%2 != 0 {
		t.Fatal("odd edge count — pairing broken")
	}
	if g.Edges() > 2*ds.Len() {
		t.Fatalf("edges %d exceed 2×segments %d", g.Edges(), 2*ds.Len())
	}
	if g.GraphBytes() != g.Nodes()*nodeRecBytes+g.Edges()*edgeRecBytes {
		t.Fatal("byte accounting broken")
	}
	// Snapping must consolidate: far fewer nodes than endpoints.
	if g.Nodes() >= 2*ds.Len() {
		t.Fatalf("no endpoint sharing: %d nodes for %d segments", g.Nodes(), ds.Len())
	}
	st := g.Summary()
	if st.Components <= 0 || st.Components > g.Nodes() {
		t.Fatalf("components = %d", st.Components)
	}
}

func TestEdgeOriginPairing(t *testing.T) {
	g, _ := buildGraph(t, 1000)
	for ei := int32(0); int(ei) < g.Edges(); ei++ {
		origin := g.edgeOrigin(ei)
		// The edge must appear in its origin's adjacency list.
		found := false
		for e := g.nodes[origin].firstEdge; e >= 0; e = g.edges[e].next {
			if e == ei {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("edge %d not in its origin's list", ei)
		}
	}
}

func TestNearestNode(t *testing.T) {
	g, ds := buildGraph(t, 3000)
	rng := rand.New(rand.NewSource(62))
	for i := 0; i < 50; i++ {
		p := geom.Point{X: rng.Float64() * 10_000, Y: rng.Float64() * 10_000}
		ni, ok := g.NearestNode(p, ops.Null{})
		if !ok {
			t.Fatal("no node found inside the extent")
		}
		// The returned node must be near-optimal: within one snap cell of
		// the true nearest (the ring search scans cell-granular).
		best := math.Inf(1)
		for _, n := range g.nodes {
			if d := n.at.Dist(p); d < best {
				best = d
			}
		}
		if got := g.nodes[ni].at.Dist(p); got > best+2*g.snapM*math.Sqrt2 {
			t.Fatalf("probe %d: nearest node at %.0f m, optimum %.0f m", i, got, best)
		}
	}
	_ = ds
}

// dijkstra is the oracle: plain Dijkstra without a heuristic.
func dijkstra(g *Graph, src, dst int32) (float64, bool) {
	dist := map[int32]float64{src: 0}
	done := map[int32]bool{}
	q := &pq{{node: src, f: 0}}
	for q.Len() > 0 {
		cur := heap.Pop(q).(pqItem)
		if done[cur.node] {
			continue
		}
		done[cur.node] = true
		if cur.node == dst {
			return dist[dst], true
		}
		for ei := g.nodes[cur.node].firstEdge; ei >= 0; ei = g.edges[ei].next {
			e := &g.edges[ei]
			nd := dist[cur.node] + e.len
			if old, seen := dist[e.to]; !seen || nd < old {
				dist[e.to] = nd
				heap.Push(q, pqItem{node: e.to, f: nd})
			}
		}
	}
	return 0, false
}

func TestShortestPathMatchesDijkstra(t *testing.T) {
	g, ds := denseCity(t, 12000)
	rng := rand.New(rand.NewSource(63))
	routed := 0
	for i := 0; i < 60 && routed < 25; i++ {
		a := ds.Segments[rng.Intn(ds.Len())].Midpoint()
		bq := ds.Segments[rng.Intn(ds.Len())].Midpoint()
		src, ok1 := g.NearestNode(a, ops.Null{})
		dst, ok2 := g.NearestNode(bq, ops.Null{})
		if !ok1 || !ok2 || src == dst {
			continue
		}
		route, ok := g.ShortestPath(src, dst, ops.Null{})
		want, connected := dijkstra(g, src, dst)
		if ok != connected {
			t.Fatalf("pair %d: A* ok=%v, Dijkstra connected=%v", i, ok, connected)
		}
		if !ok {
			continue
		}
		routed++
		if math.Abs(route.Meters-want) > 1e-6*want+1e-9 {
			t.Fatalf("pair %d: A* %.3f m, Dijkstra %.3f m", i, route.Meters, want)
		}
		// The network distance can never beat the crow-flies distance
		// between the terminals.
		straight := g.nodes[src].at.Dist(g.nodes[dst].at)
		if route.Meters < straight-1e-6 {
			t.Fatalf("pair %d: route %.3f m shorter than straight line %.3f m", i, route.Meters, straight)
		}
		if len(route.SegIDs) == 0 {
			t.Fatalf("pair %d: non-trivial route with no segments", i)
		}
	}
	if routed < 10 {
		t.Fatalf("only %d connected pairs — graph too fragmented for the test", routed)
	}
}

func TestShortestPathDegenerate(t *testing.T) {
	g, _ := buildGraph(t, 500)
	if _, ok := g.ShortestPath(0, 0, ops.Null{}); !ok {
		t.Fatal("src == dst should trivially succeed")
	}
	if _, ok := g.ShortestPath(-1, 0, ops.Null{}); ok {
		t.Fatal("negative node accepted")
	}
	if _, ok := g.ShortestPath(0, int32(g.Nodes()+5), ops.Null{}); ok {
		t.Fatal("out-of-range node accepted")
	}
}

func TestInstrumentation(t *testing.T) {
	ds := testDataset(t, 2000)
	var rec ops.Counts
	g, err := Build(ds, 60, &rec)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Ops[ops.OpIndexBuildEntry] == 0 || rec.StoreBytes == 0 {
		t.Fatal("build not instrumented")
	}
	var q ops.Counts
	src, _ := g.NearestNode(geom.Point{X: 2000, Y: 2000}, &q)
	dst, _ := g.NearestNode(geom.Point{X: 8000, Y: 8000}, &q)
	g.ShortestPath(src, dst, &q)
	if q.Ops[ops.OpHeapOp] == 0 || q.LoadBytes == 0 {
		t.Fatal("routing not instrumented")
	}
}

func BenchmarkShortestPath(b *testing.B) {
	g, _ := denseCity(b, 20000)
	src, _ := g.NearestNode(geom.Point{X: 1000, Y: 1000}, ops.Null{})
	dst, _ := g.NearestNode(geom.Point{X: 9000, Y: 9000}, ops.Null{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShortestPath(src, dst, ops.Null{})
	}
}
