// Package roadnet derives a routable graph from a line-segment road atlas
// and answers shortest-path ("driving directions") queries with A* — the
// first application the paper's road-atlas discussion names (§2: "allowing
// the user to get driving directions (shortest path problem)"). Routing is
// the most compute-intensive query in the suite, which makes it the
// strongest offloading candidate of the workload mix — the partitioning
// schemes for it live in internal/core.
//
// Graph construction snaps segment endpoints to a coarse grid so that
// nearby street ends join at shared intersections (TIGER-style data has
// exact shared endpoints; the synthetic data approximates them). Like every
// other substrate, all traversals emit work to an ops.Recorder, and the
// adjacency structure has a byte-exact simulated layout.
package roadnet

import (
	"container/heap"
	"fmt"
	"math"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
)

// GraphBase is the simulated address region of the adjacency structure.
const GraphBase uint64 = 0x2800_0000

// Physical layout: a node record holds its position and edge-list head
// (16 B); an edge record holds target, segment id, length, and next link
// (16 B).
const (
	nodeRecBytes = 16
	edgeRecBytes = 16
)

type nodeRec struct {
	at        geom.Point
	firstEdge int32 // index into edges; -1 = none
}

type edgeRec struct {
	to    int32
	segID uint32
	len   float64
	next  int32
}

// Graph is a routable road network.
type Graph struct {
	nodes []nodeRec
	edges []edgeRec
	// cellIndex maps snap-grid cells to node ids.
	cellIndex map[[2]int32]int32
	snapM     float64
	extent    geom.Rect
}

// Build derives the graph from a dataset, snapping endpoints to snapM-sized
// grid cells (50 m by default when snapM <= 0). rec receives the
// construction work.
func Build(ds *dataset.Dataset, snapM float64, rec ops.Recorder) (*Graph, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("roadnet: empty dataset")
	}
	if snapM <= 0 {
		snapM = 50
	}
	g := &Graph{
		cellIndex: make(map[[2]int32]int32),
		snapM:     snapM,
		extent:    ds.Extent,
	}
	for id, s := range ds.Segments {
		a := g.nodeFor(s.A, rec)
		b := g.nodeFor(s.B, rec)
		if a == b {
			continue // segment collapsed into one cell
		}
		// Edge weight is the distance between the snapped node positions,
		// not the raw segment length: the graph metric must satisfy the
		// triangle inequality over node positions for A*'s straight-line
		// heuristic to stay admissible.
		length := g.nodes[a].at.Dist(g.nodes[b].at)
		g.addEdge(a, b, uint32(id), length, rec)
		g.addEdge(b, a, uint32(id), length, rec)
	}
	return g, nil
}

// cellOf quantizes a point.
func (g *Graph) cellOf(p geom.Point) [2]int32 {
	return [2]int32{int32(math.Floor(p.X / g.snapM)), int32(math.Floor(p.Y / g.snapM))}
}

// nodeFor returns (creating if needed) the node for p's cell.
func (g *Graph) nodeFor(p geom.Point, rec ops.Recorder) int32 {
	cell := g.cellOf(p)
	if ni, ok := g.cellIndex[cell]; ok {
		return ni
	}
	ni := int32(len(g.nodes))
	g.nodes = append(g.nodes, nodeRec{at: p, firstEdge: -1})
	g.cellIndex[cell] = ni
	rec.Op(ops.OpIndexBuildEntry, 1)
	rec.Store(g.nodeAddr(ni), nodeRecBytes)
	return ni
}

func (g *Graph) addEdge(from, to int32, segID uint32, length float64, rec ops.Recorder) {
	ei := int32(len(g.edges))
	g.edges = append(g.edges, edgeRec{
		to:    to,
		segID: segID,
		len:   length,
		next:  g.nodes[from].firstEdge,
	})
	g.nodes[from].firstEdge = ei
	rec.Op(ops.OpIndexBuildEntry, 1)
	rec.Store(g.edgeAddr(ei), edgeRecBytes)
}

func (g *Graph) nodeAddr(ni int32) uint64 { return GraphBase + uint64(ni)*nodeRecBytes }
func (g *Graph) edgeAddr(ei int32) uint64 {
	return GraphBase + uint64(len(g.nodes))*nodeRecBytes + uint64(ei)*edgeRecBytes
}

// Nodes returns the node count.
func (g *Graph) Nodes() int { return len(g.nodes) }

// Edges returns the directed-edge count.
func (g *Graph) Edges() int { return len(g.edges) }

// GraphBytes returns the adjacency structure's simulated size.
func (g *Graph) GraphBytes() int {
	return len(g.nodes)*nodeRecBytes + len(g.edges)*edgeRecBytes
}

// NearestNode returns the graph node closest to p (linear over the cell of
// p and its ring neighborhood, widening until a node is found).
func (g *Graph) NearestNode(p geom.Point, rec ops.Recorder) (int32, bool) {
	if len(g.nodes) == 0 {
		return 0, false
	}
	center := g.cellOf(p)
	for radius := int32(0); ; radius++ {
		best := int32(-1)
		bestD := math.Inf(1)
		found := false
		for dx := -radius; dx <= radius; dx++ {
			for dy := -radius; dy <= radius; dy++ {
				// Ring only (interior rings were already scanned).
				if radius > 0 && dx > -radius && dx < radius && dy > -radius && dy < radius {
					continue
				}
				rec.Op(ops.OpDistCalc, 1)
				if ni, ok := g.cellIndex[[2]int32{center[0] + dx, center[1] + dy}]; ok {
					found = true
					rec.Load(g.nodeAddr(ni), nodeRecBytes)
					if d := g.nodes[ni].at.DistSq(p); d < bestD {
						bestD, best = d, ni
					}
				}
			}
		}
		if found {
			return best, true
		}
		// Bail out when the ring has left the extent entirely.
		if float64(radius)*g.snapM > math.Max(g.extent.Width(), g.extent.Height()) {
			return 0, false
		}
	}
}

// Route is a shortest-path answer.
type Route struct {
	// SegIDs are the traversed segment ids in order.
	SegIDs []uint32
	// Meters is the path length.
	Meters float64
}

// pqItem is an A* frontier entry.
type pqItem struct {
	node int32
	f    float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].f < q[j].f }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// ShortestPath runs A* (Euclidean heuristic) from src to dst and returns
// the route; ok == false when they are not connected.
func (g *Graph) ShortestPath(src, dst int32, rec ops.Recorder) (Route, bool) {
	if src < 0 || dst < 0 || int(src) >= len(g.nodes) || int(dst) >= len(g.nodes) {
		return Route{}, false
	}
	if src == dst {
		return Route{}, true
	}
	const unvisited = -1
	dist := make(map[int32]float64, 1024)
	prevEdge := make(map[int32]int32, 1024)
	goal := g.nodes[dst].at

	frontier := &pq{{node: src, f: g.nodes[src].at.Dist(goal)}}
	dist[src] = 0
	prevEdge[src] = unvisited
	done := map[int32]bool{}

	for frontier.Len() > 0 {
		cur := heap.Pop(frontier).(pqItem)
		rec.Op(ops.OpHeapOp, 1)
		if done[cur.node] {
			continue
		}
		done[cur.node] = true
		if cur.node == dst {
			break
		}
		rec.Load(g.nodeAddr(cur.node), nodeRecBytes)
		for ei := g.nodes[cur.node].firstEdge; ei >= 0; ei = g.edges[ei].next {
			rec.Load(g.edgeAddr(ei), edgeRecBytes)
			rec.Op(ops.OpDistCalc, 1)
			e := &g.edges[ei]
			nd := dist[cur.node] + e.len
			if old, seen := dist[e.to]; !seen || nd < old {
				dist[e.to] = nd
				prevEdge[e.to] = ei
				heap.Push(frontier, pqItem{node: e.to, f: nd + g.nodes[e.to].at.Dist(goal)})
				rec.Op(ops.OpHeapOp, 1)
			}
		}
	}
	if !done[dst] {
		return Route{}, false
	}

	// Reconstruct: walk prevEdge from dst back to src.
	var route Route
	route.Meters = dist[dst]
	at := dst
	for at != src {
		ei := prevEdge[at]
		e := &g.edges[ei]
		route.SegIDs = append(route.SegIDs, e.segID)
		// The edge ei leads *to* `at`; its origin is recoverable from the
		// reverse edge... we track it by scanning dist: the origin is the
		// node whose dist + len == dist[at]. Cheaper: store origins.
		at = g.edgeOrigin(ei)
	}
	// Reverse into travel order.
	for i, j := 0, len(route.SegIDs)-1; i < j; i, j = i+1, j-1 {
		route.SegIDs[i], route.SegIDs[j] = route.SegIDs[j], route.SegIDs[i]
	}
	return route, true
}

// edgeOrigin returns the node an edge departs from. Edges are stored in the
// origin's list, so the origin is found via the paired reverse edge: edges
// are appended in (a→b, b→a) pairs, so ei's partner is ei^1.
func (g *Graph) edgeOrigin(ei int32) int32 { return g.edges[ei^1].to }

// Stats summarizes the graph.
type Stats struct {
	Nodes, Edges int
	Bytes        int
	// Components is the number of connected components (0 = not computed).
	Components int
}

// Summary computes graph statistics including the component count.
func (g *Graph) Summary() Stats {
	comp := 0
	seen := make([]bool, len(g.nodes))
	for start := range g.nodes {
		if seen[start] {
			continue
		}
		comp++
		stack := []int32{int32(start)}
		seen[start] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for ei := g.nodes[n].firstEdge; ei >= 0; ei = g.edges[ei].next {
				if to := g.edges[ei].to; !seen[to] {
					seen[to] = true
					stack = append(stack, to)
				}
			}
		}
	}
	return Stats{Nodes: g.Nodes(), Edges: g.Edges(), Bytes: g.GraphBytes(), Components: comp}
}

// NodeAt returns a node's position.
func (g *Graph) NodeAt(ni int32) geom.Point { return g.nodes[ni].at }

// LargestComponentNodes returns the node ids of the largest connected
// component (useful for picking routable terminals on fragmented synthetic
// networks).
func (g *Graph) LargestComponentNodes() []int32 {
	seen := make([]bool, len(g.nodes))
	var best []int32
	for start := range g.nodes {
		if seen[start] {
			continue
		}
		var comp []int32
		stack := []int32{int32(start)}
		seen[start] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, n)
			for ei := g.nodes[n].firstEdge; ei >= 0; ei = g.edges[ei].next {
				if to := g.edges[ei].to; !seen[to] {
					seen[to] = true
					stack = append(stack, to)
				}
			}
		}
		if len(comp) > len(best) {
			best = comp
		}
	}
	return best
}

// RouteBetweenNodes is ShortestPath with node ids already resolved (used by
// tools that picked terminals from LargestComponentNodes).
func (g *Graph) RouteBetweenNodes(src, dst int32, rec ops.Recorder) (Route, bool) {
	return g.ShortestPath(src, dst, rec)
}
