package sim

import (
	"math"
	"testing"

	"mobispatial/internal/nic"
	"mobispatial/internal/ops"
	"mobispatial/internal/proto"
)

func newSystem(t *testing.T, mutate func(*Params)) *System {
	t.Helper()
	p := DefaultParams()
	if mutate != nil {
		mutate(&p)
	}
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParamsValidation(t *testing.T) {
	p := DefaultParams()
	p.BandwidthBps = 0
	if _, err := New(p); err == nil {
		t.Error("zero bandwidth accepted")
	}
	p = DefaultParams()
	p.DistanceM = -1
	if _, err := New(p); err == nil {
		t.Error("negative distance accepted")
	}
}

func TestLocalComputeAccounting(t *testing.T) {
	s := newSystem(t, nil)
	s.ClientCompute(func(rec ops.Recorder) {
		rec.Op(ops.OpRefineRange, 1000)
		rec.Load(ops.DataBase, 4096)
	})
	r := s.Result()
	if r.ProcessorCycles == 0 {
		t.Fatal("no processor cycles recorded")
	}
	if r.TxCycles != 0 || r.RxCycles != 0 || r.WaitCycles != 0 || r.ServerCycles != 0 {
		t.Fatalf("local compute leaked communication cycles: %+v", r)
	}
	// NIC slept throughout: Efully-local = (Pclient + Psleep)·C in §4.1.
	if r.Energy.NICSleep <= 0 {
		t.Fatal("NIC sleep energy missing")
	}
	if r.Energy.NICTx != 0 || r.Energy.NICRx != 0 || r.Energy.NICIdle != 0 {
		t.Fatalf("local compute used the radio: %+v", r.Energy)
	}
	wantSleepJ := nic.SleepPower * r.ElapsedSeconds
	if math.Abs(r.Energy.NICSleep-wantSleepJ)/wantSleepJ > 1e-9 {
		t.Fatalf("sleep energy %v, want %v", r.Energy.NICSleep, wantSleepJ)
	}
	if r.TotalClientCycles() != r.ProcessorCycles {
		t.Fatal("total cycles mismatch for local run")
	}
}

func TestRoundTripAccounting(t *testing.T) {
	s := newSystem(t, nil)
	s.Send(proto.QueryRequestBytes)
	s.ServerCompute(func(rec ops.Recorder) {
		rec.Op(ops.OpRefineRange, 5000)
		rec.Load(ops.DataBase, 1<<16)
	})
	s.Receive(proto.IDListBytes(200))
	r := s.Result()

	if r.TxCycles == 0 || r.RxCycles == 0 || r.WaitCycles == 0 {
		t.Fatalf("round trip missing phases: %+v", r)
	}
	if r.ServerCycles == 0 {
		t.Fatal("server did no work")
	}
	if r.Energy.NICTx <= 0 || r.Energy.NICRx <= 0 || r.Energy.NICIdle <= 0 {
		t.Fatalf("NIC energies: %+v", r.Energy)
	}
	// Transmit dominates per-second cost (3 W vs 0.165 W at 1 km).
	txW := r.Energy.NICTx / r.NIC.TxSeconds
	rxW := r.Energy.NICRx / r.NIC.RxSeconds
	if txW <= rxW*10 {
		t.Fatalf("tx power %v not >> rx power %v", txW, rxW)
	}
	// Wait cycles reflect the client/server clock ratio: Cwait = Cw2·(C/S).
	wantWait := float64(r.ServerCycles) * (s.Params().Client.ClockHz / s.Params().Server.ClockHz)
	if math.Abs(float64(r.WaitCycles)-wantWait) > wantWait*0.05+2 {
		t.Fatalf("wait cycles %d, want ≈%v", r.WaitCycles, wantWait)
	}
}

func TestBandwidthScalesCommunication(t *testing.T) {
	run := func(bw float64) Result {
		s := newSystem(t, func(p *Params) { p.BandwidthBps = bw })
		s.Send(proto.DataListBytes(1000, 76))
		s.Receive(proto.DataListBytes(1000, 76))
		return s.Result()
	}
	slow := run(2e6)
	fast := run(11e6)
	if fast.TxCycles >= slow.TxCycles || fast.RxCycles >= slow.RxCycles {
		t.Fatalf("higher bandwidth not faster: %+v vs %+v", fast, slow)
	}
	if fast.Energy.NICTx >= slow.Energy.NICTx {
		t.Fatal("higher bandwidth did not cut Tx energy")
	}
	// Air time ratio ≈ bandwidth ratio (wake latency adds a constant).
	ratio := slow.NIC.TxSeconds / fast.NIC.TxSeconds
	if ratio < 4 || ratio > 6.5 {
		t.Fatalf("tx time ratio %v, want ≈5.5", ratio)
	}
}

func TestDistanceAffectsOnlyTransmitPower(t *testing.T) {
	run := func(d float64) Result {
		s := newSystem(t, func(p *Params) { p.DistanceM = d })
		s.Send(proto.DataListBytes(500, 76))
		s.Receive(proto.IDListBytes(500))
		return s.Result()
	}
	far := run(1000)
	near := run(100)
	if near.Energy.NICTx >= far.Energy.NICTx {
		t.Fatal("shorter distance did not cut Tx energy")
	}
	if math.Abs(near.Energy.NICRx-far.Energy.NICRx) > 1e-12 {
		t.Fatal("distance changed Rx energy")
	}
	if near.TotalClientCycles() != far.TotalClientCycles() {
		t.Fatal("distance changed cycles")
	}
	wantRatio := nic.TxPower1Km / nic.TxPower100m
	gotRatio := far.Energy.NICTx / near.Energy.NICTx
	if math.Abs(gotRatio-wantRatio) > 0.01 {
		t.Fatalf("tx energy ratio %v, want %v", gotRatio, wantRatio)
	}
}

func TestBusyWaitCostsMoreEnergySameCycles(t *testing.T) {
	run := func(busy bool) Result {
		s := newSystem(t, func(p *Params) { p.BusyWaitReceive = busy })
		s.Send(proto.QueryRequestBytes)
		s.ServerCompute(func(rec ops.Recorder) { rec.Op(ops.OpRefineRange, 20000) })
		s.Receive(proto.DataListBytes(2000, 76))
		return s.Result()
	}
	block := run(false)
	busy := run(true)
	if busy.TotalClientCycles() != block.TotalClientCycles() {
		t.Fatal("busy-wait changed cycle count")
	}
	// §5.2: blocking cut the receive-path processor energy by more than
	// half. The NIC energy is identical, so compare processor components.
	if block.Energy.Processor >= busy.Energy.Processor/2 {
		t.Fatalf("blocking saved too little: block %v vs busy %v",
			block.Energy.Processor, busy.Energy.Processor)
	}
}

func TestCPUSleepAblation(t *testing.T) {
	run := func(disable bool) Result {
		s := newSystem(t, func(p *Params) { p.DisableCPUSleep = disable })
		s.Send(proto.QueryRequestBytes)
		s.ServerCompute(func(rec ops.Recorder) { rec.Op(ops.OpRefineRange, 20000) })
		s.Receive(proto.DataListBytes(2000, 76))
		return s.Result()
	}
	withSleep := run(false)
	noSleep := run(true)
	if withSleep.Energy.Processor >= noSleep.Energy.Processor {
		t.Fatal("CPU low-power mode saved nothing")
	}
	if withSleep.TotalClientCycles() != noSleep.TotalClientCycles() {
		t.Fatal("CPU sleep changed cycles")
	}
}

func TestNICSleepAblation(t *testing.T) {
	run := func(disable bool) Result {
		s := newSystem(t, func(p *Params) { p.DisableNICSleep = disable })
		s.ClientCompute(func(rec ops.Recorder) { rec.Op(ops.OpRefineRange, 100000) })
		return s.Result()
	}
	sleep := run(false)
	noSleep := run(true)
	// Without sleep, the long local compute burns idle power (100 mW vs
	// 19.8 mW).
	if sleep.Energy.Total() >= noSleep.Energy.Total() {
		t.Fatal("NIC sleep saved nothing on a local workload")
	}
}

func TestResultAdd(t *testing.T) {
	a := Result{ProcessorCycles: 1, TxCycles: 2, RxCycles: 3, WaitCycles: 4, ServerCycles: 5, ElapsedSeconds: 1}
	a.Add(Result{ProcessorCycles: 10, TxCycles: 20, RxCycles: 30, WaitCycles: 40, ServerCycles: 50, ElapsedSeconds: 2})
	if a.ProcessorCycles != 11 || a.TxCycles != 22 || a.RxCycles != 33 || a.WaitCycles != 44 || a.ServerCycles != 55 {
		t.Fatalf("Add: %+v", a)
	}
	if a.TotalClientCycles() != 11+22+33+44 {
		t.Fatalf("TotalClientCycles = %d", a.TotalClientCycles())
	}
	if a.ElapsedSeconds != 3 {
		t.Fatalf("elapsed = %v", a.ElapsedSeconds)
	}
}

func TestReset(t *testing.T) {
	s := newSystem(t, nil)
	s.Send(1000)
	s.Reset()
	r := s.Result()
	if r.TotalClientCycles() != 0 || r.Energy.Total() != 0 || r.ElapsedSeconds != 0 {
		t.Fatalf("state after reset: %+v", r)
	}
}

func TestEnergyTimelineConsistency(t *testing.T) {
	// NIC total accounted seconds must equal the elapsed wall time: the
	// radio is always in exactly one state.
	s := newSystem(t, nil)
	s.ClientCompute(func(rec ops.Recorder) { rec.Op(ops.OpRefineRange, 500) })
	s.Send(proto.QueryRequestBytes)
	s.ServerCompute(func(rec ops.Recorder) { rec.Op(ops.OpRefineRange, 5000) })
	s.Receive(proto.DataListBytes(100, 76))
	s.ClientCompute(func(rec ops.Recorder) { rec.Op(ops.OpRefineRange, 500) })
	r := s.Result()
	if math.Abs(r.NIC.TotalSeconds()-r.ElapsedSeconds) > 1e-9 {
		t.Fatalf("NIC time %v != elapsed %v", r.NIC.TotalSeconds(), r.ElapsedSeconds)
	}
}

func TestTCPAckModeling(t *testing.T) {
	run := func(acks bool) Result {
		s := newSystem(t, func(p *Params) { p.ModelTCPAcks = acks })
		s.Send(proto.QueryRequestBytes)
		s.Receive(proto.DataListBytes(2000, 76)) // ~104 frames down
		return s.Result()
	}
	off := run(false)
	on := run(true)
	// Receiving a large payload with ACKs on costs extra *transmit* energy.
	if on.Energy.NICTx <= off.Energy.NICTx {
		t.Fatalf("ACKs did not add transmit energy: %v vs %v", on.Energy.NICTx, off.Energy.NICTx)
	}
	if on.TotalClientCycles() <= off.TotalClientCycles() {
		t.Fatal("ACKs did not add cycles")
	}
	// The ACK overhead is bounded: pure-header frames against a 150 KB
	// payload must stay well under half the total energy.
	if on.Energy.Total() > off.Energy.Total()*1.5 {
		t.Fatalf("ACK overhead implausibly large: %v vs %v", on.Energy.Total(), off.Energy.Total())
	}
	// Timeline consistency still holds with ACKs on.
	s := newSystem(t, func(p *Params) { p.ModelTCPAcks = true })
	s.Send(proto.DataListBytes(500, 76))
	s.Receive(proto.DataListBytes(500, 76))
	r := s.Result()
	if math.Abs(r.NIC.TotalSeconds()-r.ElapsedSeconds) > 1e-9 {
		t.Fatalf("NIC time %v != elapsed %v with ACKs", r.NIC.TotalSeconds(), r.ElapsedSeconds)
	}
}

func TestServerLoadQueueing(t *testing.T) {
	run := func(rho float64) Result {
		s := newSystem(t, func(p *Params) { p.ServerUtilization = rho })
		s.Send(proto.QueryRequestBytes)
		s.ServerCompute(func(rec ops.Recorder) { rec.Op(ops.OpRefineRange, 1000) })
		s.Receive(proto.IDListBytes(100))
		return s.Result()
	}
	idle := run(0)
	loaded := run(0.9)
	// A ρ=0.9 M/D/1 queue adds 9 ms of waiting on a 2 ms mean service.
	if loaded.WaitCycles <= idle.WaitCycles {
		t.Fatal("server load added no waiting")
	}
	addedSecs := float64(loaded.WaitCycles-idle.WaitCycles) / DefaultParams().Client.ClockHz
	if addedSecs < 8e-3 || addedSecs > 10e-3 {
		t.Fatalf("queueing delay %.4f s, want ≈9 ms", addedSecs)
	}
	// The wait is idle+blocked time: energy grows too.
	if loaded.Energy.Total() <= idle.Energy.Total() {
		t.Fatal("server load added no energy")
	}
	// Utilization must be validated.
	p := DefaultParams()
	p.ServerUtilization = 1.0
	if _, err := New(p); err == nil {
		t.Fatal("utilization 1.0 accepted")
	}
	p.ServerUtilization = -0.1
	if _, err := New(p); err == nil {
		t.Fatal("negative utilization accepted")
	}
}

func TestOverlapStageClientBound(t *testing.T) {
	// Client work longer than the exchange: elapsed tracks the client, and
	// total cycles equal elapsed × clock (air time hidden).
	s := newSystem(t, nil)
	s.OverlapStage(func(rec ops.Recorder) {
		rec.Op(ops.OpRefineRange, 200000) // ~0.38e6 instr -> several ms
	}, proto.IDListBytes(10), func(rec ops.Recorder) {
		rec.Op(ops.OpRefineRange, 10)
	}, proto.IDListBytes(10))
	r := s.Result()
	wantCycles := s.cyclesOf(r.ElapsedSeconds)
	if diff := r.TotalClientCycles() - wantCycles; diff > 2 || diff < -2 {
		t.Fatalf("total cycles %d != elapsed-derived %d", r.TotalClientCycles(), wantCycles)
	}
	if math.Abs(r.NIC.TotalSeconds()-r.ElapsedSeconds) > 1e-9 {
		t.Fatalf("NIC timeline %v != elapsed %v", r.NIC.TotalSeconds(), r.ElapsedSeconds)
	}
}

func TestOverlapStageCommBound(t *testing.T) {
	// Exchange longer than the client work: the client blocks for the
	// difference and the wait bucket absorbs the residue.
	s := newSystem(t, func(p *Params) { p.BandwidthBps = 2e6 })
	s.OverlapStage(func(rec ops.Recorder) {
		rec.Op(ops.OpMBRTest, 10)
	}, proto.DataListBytes(2000, 76), func(rec ops.Recorder) {
		rec.Op(ops.OpRefineRange, 5000)
	}, proto.DataListBytes(2000, 76))
	r := s.Result()
	if r.WaitCycles == 0 && r.TxCycles == 0 {
		t.Fatal("comm-bound stage recorded no communication")
	}
	wantCycles := s.cyclesOf(r.ElapsedSeconds)
	if diff := r.TotalClientCycles() - wantCycles; diff > 2 || diff < -2 {
		t.Fatalf("total cycles %d != elapsed-derived %d", r.TotalClientCycles(), wantCycles)
	}
	if math.Abs(r.NIC.TotalSeconds()-r.ElapsedSeconds) > 1e-9 {
		t.Fatalf("NIC timeline %v != elapsed %v", r.NIC.TotalSeconds(), r.ElapsedSeconds)
	}
}

func TestOverlapStageEmptyIsNoop(t *testing.T) {
	s := newSystem(t, nil)
	s.OverlapStage(nil, -1, nil, 0)
	if r := s.Result(); r.ElapsedSeconds != 0 || r.TotalClientCycles() != 0 {
		t.Fatalf("empty stage did something: %+v", r)
	}
}
