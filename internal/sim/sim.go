// Package sim is the co-simulator that ties the machine models together: the
// client CPU (internal/cpu), the wireless NIC power machine (internal/nic),
// the protocol stack (internal/proto), and the server model. It provides the
// communication API of §5.2 — SendMessage/RecvMessage with Sleep/Idle NIC
// management — and produces the two quantities the paper's figures plot for
// every scheme:
//
//   - the client's energy breakdown (Processor, NIC-Tx, NIC-Rx, NIC-Idle,
//     NIC-Sleep), and
//   - the total client-clock cycles from query submission to answer
//     (Processor, NIC-Tx, NIC-Rx, plus time blocked on server work).
//
// CPU management during communication follows the paper's findings: the
// client blocks (entering a CPU low-power mode) while waiting for and
// receiving messages — the paper measured that blocking halves the receive
// energy versus busy-waiting, and the low-power mode saves another 10–20 % —
// with both ablations (busy-wait, no CPU sleep) available as switches.
package sim

import (
	"fmt"
	"math"

	"mobispatial/internal/cpu"
	"mobispatial/internal/energy"
	"mobispatial/internal/nic"
	"mobispatial/internal/ops"
	"mobispatial/internal/proto"
)

// Params configures one simulated client/server/link system.
type Params struct {
	// BandwidthBps is the effective delivered wireless bandwidth in
	// bits/second (the paper sweeps 2, 4, 6, 8, 11 Mbps).
	BandwidthBps float64
	// DistanceM is the client–base-station range in meters (100 or 1000 in
	// the paper).
	DistanceM float64
	Client    cpu.ClientConfig
	Server    cpu.ServerConfig
	Energy    energy.Params
	// BusyWaitReceive makes the client poll instead of blocking while
	// waiting for / receiving messages (ablation, §5.2).
	BusyWaitReceive bool
	// DisableCPUSleep keeps the blocked client core at idle power instead
	// of its low-power mode (ablation, §5.2).
	DisableCPUSleep bool
	// DisableNICSleep keeps the NIC in IDLE wherever the protocol would
	// sleep it (ablation).
	DisableNICSleep bool
	// ModelTCPAcks adds TCP acknowledgment traffic: receiving data makes
	// the client transmit delayed ACKs (expensive at 3 W), and sending data
	// makes it receive the server's ACKs. Off by default — the paper folds
	// reverse traffic into the effective bandwidth — and exercised by the
	// TCP-ACK ablation bench.
	ModelTCPAcks bool
	// ServerUtilization models a loaded, shared server (the paper's §5.3
	// future work: "modeling I/O issues and the resulting throughput at
	// the server"): each request queues behind other clients' work before
	// service. The value is the background utilization ρ ∈ [0, 1); the
	// added delay is the M/D/1 mean queueing time
	// ρ·S/(2(1−ρ)) with S = ServerMeanServiceSec. 0 = the paper's
	// unloaded-server assumption.
	ServerUtilization float64
	// ServerMeanServiceSec is the mean service time of the background
	// requests; 2 ms when zero.
	ServerMeanServiceSec float64
}

// DefaultParams returns the paper's base configuration: 2 Mbps, 1 km,
// Table 3 client at MhzS/8, Table 4 server.
func DefaultParams() Params {
	return Params{
		BandwidthBps: 2e6,
		DistanceM:    1000,
		Client:       cpu.DefaultClientConfig(),
		Server:       cpu.DefaultServerConfig(),
		Energy:       energy.DefaultParams(),
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.BandwidthBps <= 0 {
		return fmt.Errorf("sim: bandwidth %v bps", p.BandwidthBps)
	}
	if p.DistanceM <= 0 {
		return fmt.Errorf("sim: distance %v m", p.DistanceM)
	}
	if p.ServerUtilization < 0 || p.ServerUtilization >= 1 {
		return fmt.Errorf("sim: server utilization %v outside [0,1)", p.ServerUtilization)
	}
	if p.ServerMeanServiceSec < 0 {
		return fmt.Errorf("sim: negative mean service time")
	}
	return p.Energy.Validate()
}

// System is one client + server + wireless link instance. It is not safe
// for concurrent use; the experiment harness creates one System per sweep
// point.
type System struct {
	params Params
	// Client and Server are exposed so query code can record work on them
	// via the phase helpers below.
	Client *cpu.Client
	Server *cpu.Server
	nic    *nic.NIC

	elapsed       float64 // client-observed wall seconds
	blockedJoules float64 // client core energy while blocked/polling
	procCycles    int64   // client cycles doing real work (compute+protocol)
	txCycles      int64   // client-clock cycles spent in NIC transmit
	rxCycles      int64   // client-clock cycles spent in NIC receive
	waitCycles    int64   // client-clock cycles blocked on server work
	serverCycles  int64   // server-clock cycles (the paper's Cw2)
}

// New builds a System.
func New(p Params) (*System, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	client, err := cpu.NewClient(p.Client)
	if err != nil {
		return nil, err
	}
	server, err := cpu.NewServer(p.Server)
	if err != nil {
		return nil, err
	}
	n, err := nic.New(nic.Config{DistanceM: p.DistanceM, DisableSleep: p.DisableNICSleep})
	if err != nil {
		return nil, err
	}
	return &System{params: p, Client: client, Server: server, nic: n}, nil
}

// Params returns the system parameters.
func (s *System) Params() Params { return s.params }

// cyclesOf converts seconds to client-clock cycles, rounding to nearest.
func (s *System) cyclesOf(seconds float64) int64 {
	return int64(math.Round(seconds * s.params.Client.ClockHz))
}

// blockedWatts is the client-core draw while it has nothing to execute.
func (s *System) blockedWatts() float64 {
	switch {
	case s.params.BusyWaitReceive:
		return s.params.Energy.PollWatts(s.params.Client.ClockHz)
	case s.params.DisableCPUSleep:
		return s.params.Energy.CPUIdleWatts
	default:
		return s.params.Energy.CPUSleepWatts
	}
}

// ClientCompute runs f against the client machine model as local work (the
// paper's w1/w3): the NIC sleeps for the duration.
func (s *System) ClientCompute(f func(ops.Recorder)) {
	secs := s.clientPhase(f)
	s.nic.SleepFor(secs)
	s.elapsed += secs
}

// clientPhase runs f on the client model and returns the phase's duration;
// cycles are attributed to procCycles.
func (s *System) clientPhase(f func(ops.Recorder)) float64 {
	before := s.Client.Activity().Cycles
	f(s.Client)
	delta := s.Client.Activity().Cycles - before
	s.procCycles += delta
	return s.Client.Seconds(delta)
}

// queueDelay returns the time a request spends queued behind other
// clients' work at the shared server (M/D/1 mean waiting time).
func (s *System) queueDelay() float64 {
	rho := s.params.ServerUtilization
	if rho <= 0 {
		return 0
	}
	svc := s.params.ServerMeanServiceSec
	if svc <= 0 {
		svc = 2e-3
	}
	return rho * svc / (2 * (1 - rho))
}

// ServerCompute runs f against the server machine model while the client
// blocks with the NIC in IDLE (carrier sense — a reply could arrive any
// moment). This is the paper's w2/Cwait phase. Under a non-zero
// ServerUtilization the request first queues behind other clients' work.
func (s *System) ServerCompute(f func(ops.Recorder)) {
	before := s.Server.Cycles()
	f(s.Server)
	delta := s.Server.Cycles() - before
	s.serverCycles += delta
	secs := s.Server.Seconds(delta) + s.queueDelay()
	s.nic.IdleFor(secs)
	s.blockedJoules += s.blockedWatts() * secs
	s.waitCycles += s.cyclesOf(secs)
	s.elapsed += secs
}

// Send transmits a client→server message with the given payload size: the
// client runs the protocol stack (send side), then the NIC transmits the
// framed bytes at the link bandwidth while the core blocks. The NIC wake-up
// penalty (470 µs out of SLEEP) is paid here when applicable.
func (s *System) Send(payloadBytes int) {
	t := proto.Packetize(payloadBytes)
	// Protocol processing runs with the NIC still asleep (it is CPU work).
	secs := s.clientPhase(func(rec ops.Recorder) { t.ChargeProcessing(rec, true) })
	s.nic.SleepFor(secs)
	s.elapsed += secs

	// Server-side receive processing overlaps the transmission; charge the
	// server model but no extra client wall time.
	t.ChargeProcessing(s.Server, false)

	air := t.Seconds(s.params.BandwidthBps)
	total := s.nic.TransmitFor(air) // includes sleep-exit latency
	s.blockedJoules += s.blockedWatts() * total
	s.txCycles += s.cyclesOf(total)
	s.elapsed += total

	if s.params.ModelTCPAcks {
		// The server's ACKs come back while the client listens.
		ack := proto.AckTransfer(proto.AckFrames(t.Packets))
		secs := s.clientPhase(func(rec ops.Recorder) { ack.ChargeProcessing(rec, false) })
		s.nic.IdleFor(secs)
		ackAir := ack.Seconds(s.params.BandwidthBps)
		s.nic.ReceiveFor(ackAir)
		s.blockedJoules += s.blockedWatts() * ackAir
		s.rxCycles += s.cyclesOf(ackAir)
		s.elapsed += secs + ackAir
	}
}

// Receive accepts a server→client message with the given payload size: the
// server runs its send-side protocol stack (overlapped, charged to the
// server model only), the NIC receives the framed bytes while the core
// blocks, and the client then runs its receive-side protocol processing.
// Afterwards the NIC is put back to SLEEP (no further inbound traffic is
// expected until the next request, §5.2).
func (s *System) Receive(payloadBytes int) {
	t := proto.Packetize(payloadBytes)
	t.ChargeProcessing(s.Server, true)

	air := t.Seconds(s.params.BandwidthBps)
	total := s.nic.ReceiveFor(air)
	s.blockedJoules += s.blockedWatts() * total
	s.rxCycles += s.cyclesOf(total)
	s.elapsed += total

	if s.params.ModelTCPAcks {
		// The client transmits delayed ACKs for the received segments —
		// the transmitter's high power makes this the dominant ACK cost.
		ack := proto.AckTransfer(proto.AckFrames(t.Packets))
		secs := s.clientPhase(func(rec ops.Recorder) { ack.ChargeProcessing(rec, true) })
		s.nic.IdleFor(secs)
		ackAir := ack.Seconds(s.params.BandwidthBps)
		s.nic.TransmitFor(ackAir)
		s.blockedJoules += s.blockedWatts() * ackAir
		s.txCycles += s.cyclesOf(ackAir)
		s.elapsed += secs + ackAir
	}

	secs := s.clientPhase(func(rec ops.Recorder) { t.ChargeProcessing(rec, false) })
	s.nic.SleepFor(secs)
	s.elapsed += secs
}

// Result is the per-run outcome in the paper's reporting units.
type Result struct {
	// Energy is the client's energy breakdown in Joules.
	Energy energy.Breakdown
	// ProcessorCycles are client cycles doing compute + protocol work.
	ProcessorCycles int64
	// TxCycles / RxCycles are client-clock cycles during NIC transmit /
	// receive (including NIC wake-ups).
	TxCycles int64
	RxCycles int64
	// WaitCycles are client-clock cycles blocked on server computation.
	WaitCycles int64
	// ServerCycles are server-clock cycles (Cw2).
	ServerCycles int64
	// ElapsedSeconds is the wall time from submission to answer.
	ElapsedSeconds float64
	// NIC is the NIC's own time/energy accounting.
	NIC nic.Usage
	// ClientActivity is the raw client machine activity.
	ClientActivity cpu.Activity
}

// TotalClientCycles is the paper's performance metric: all client-clock
// cycles from query submission until the result is available.
func (r Result) TotalClientCycles() int64 {
	return r.ProcessorCycles + r.TxCycles + r.RxCycles + r.WaitCycles
}

// Add accumulates other into r (summing runs, as the figures do).
func (r *Result) Add(other Result) {
	r.Energy.Add(other.Energy)
	r.ProcessorCycles += other.ProcessorCycles
	r.TxCycles += other.TxCycles
	r.RxCycles += other.RxCycles
	r.WaitCycles += other.WaitCycles
	r.ServerCycles += other.ServerCycles
	r.ElapsedSeconds += other.ElapsedSeconds
}

// Result snapshots the accumulated accounting.
func (s *System) Result() Result {
	act := s.Client.Activity()
	usage := s.nic.Usage()
	return Result{
		Energy: energy.Breakdown{
			Processor: s.params.Energy.ComputeJoules(act) + s.blockedJoules,
			NICTx:     usage.TxJoules,
			NICRx:     usage.RxJoules,
			NICIdle:   usage.IdleJoules,
			NICSleep:  usage.SleepJoules,
		},
		ProcessorCycles: s.procCycles,
		TxCycles:        s.txCycles,
		RxCycles:        s.rxCycles,
		WaitCycles:      s.waitCycles,
		ServerCycles:    s.serverCycles,
		ElapsedSeconds:  s.elapsed,
		NIC:             usage,
		ClientActivity:  act,
	}
}

// Reset returns the system to a pristine cold state.
func (s *System) Reset() {
	s.Client.Reset()
	s.Server.Reset()
	s.nic.Reset()
	s.elapsed = 0
	s.blockedJoules = 0
	s.procCycles, s.txCycles, s.rxCycles, s.waitCycles, s.serverCycles = 0, 0, 0, 0, 0
}
