package sim

import (
	"mobispatial/internal/ops"
	"mobispatial/internal/proto"
)

// OverlapStage models one stage of a pipelined work partitioning — the
// paper's w4: "it is sometimes possible for the client to overlap its
// waiting for the results from the server with a certain amount of useful
// work". The base schemes set w4 = 0; the pipelined scheme in internal/core
// uses this primitive.
//
// Two tracks run concurrently:
//
//   - the client track executes clientWork on the client model;
//   - the communication track transmits txBytes to the server, runs
//     serverWork there, and receives rxBytes back.
//
// The stage's wall time is the longer track. Energy accounting follows each
// component's actual busy time: the NIC transmits/receives for the air
// times and carrier-senses (IDLE) for the rest of the stage — it cannot
// sleep, since traffic can arrive at any moment; the client core is active
// for its own work and blocked for whatever remains of the stage.
//
// Cycle attribution: the client's own work goes to ProcessorCycles, the air
// times to Tx/RxCycles, and any residue of the stage (communication time
// the client work did not cover) to WaitCycles, so TotalClientCycles still
// equals elapsed wall time × client clock.
func (s *System) OverlapStage(clientWork func(ops.Recorder), txBytes int, serverWork func(ops.Recorder), rxBytes int) {
	// Client track.
	var clientSecs float64
	if clientWork != nil {
		clientSecs = s.clientPhase(clientWork)
	}

	// Communication track.
	var commSecs, txAir, rxAir float64
	if txBytes >= 0 && serverWork != nil {
		tx := proto.Packetize(txBytes)
		rx := proto.Packetize(rxBytes)
		// Protocol processing for both directions is charged to the client
		// model (it is part of the client track's compute in a real
		// pipeline, but it is small; folding it into the client track keeps
		// the accounting single-threaded).
		secs := s.clientPhase(func(rec ops.Recorder) {
			tx.ChargeProcessing(rec, true)
			rx.ChargeProcessing(rec, false)
		})
		clientSecs += secs
		tx.ChargeProcessing(s.Server, false)
		rx.ChargeProcessing(s.Server, true)

		before := s.Server.Cycles()
		serverWork(s.Server)
		delta := s.Server.Cycles() - before
		s.serverCycles += delta

		txAir = tx.Seconds(s.params.BandwidthBps)
		rxAir = rx.Seconds(s.params.BandwidthBps)
		commSecs = txAir + s.Server.Seconds(delta) + rxAir
	}

	elapsed := clientSecs
	if commSecs > elapsed {
		elapsed = commSecs
	}
	if elapsed == 0 {
		return
	}

	// NIC: wake if needed, transmit and receive for the air times, idle the
	// remainder of the stage (carrier sense).
	wake := s.nic.TransmitFor(txAir) - txAir
	s.nic.ReceiveFor(rxAir)
	s.nic.IdleFor(elapsed - txAir - rxAir)
	elapsed += wake

	// Client core: busy for clientSecs, blocked for the rest.
	if blocked := elapsed - clientSecs; blocked > 0 {
		s.blockedJoules += s.blockedWatts() * blocked
	}

	// Cycle attribution (see doc comment).
	s.txCycles += s.cyclesOf(txAir + wake)
	s.rxCycles += s.cyclesOf(rxAir)
	if residue := elapsed - clientSecs - txAir - rxAir - wake; residue > 0 {
		s.waitCycles += s.cyclesOf(residue)
	} else if residue < 0 {
		// The client track covered part of the air time; trim the processor
		// attribution so the stage total still equals elapsed × clock.
		trim := s.cyclesOf(-residue)
		if trim > s.procCycles {
			trim = s.procCycles
		}
		s.procCycles -= trim
	}
	s.elapsed += elapsed
}
