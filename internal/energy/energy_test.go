package energy

import (
	"math"
	"testing"

	"mobispatial/internal/cache"
	"mobispatial/internal/cpu"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.MemPerAccess = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative parameter accepted")
	}
}

func TestComputeJoulesComposition(t *testing.T) {
	p := Params{
		DatapathPerInstr: 1, ClockPerCycle: 10, ICachePerAccess: 100,
		DCachePerAccess: 1000, MemPerAccess: 10000, BusPerMem: 100000,
	}
	act := cpu.Activity{
		Instructions: 2,
		Cycles:       3,
		ICache:       cache.Stats{Accesses: 4},
		DCache:       cache.Stats{Accesses: 5},
		MemReads:     6,
		MemWrites:    1,
	}
	want := 2.0*1 + 3*10 + 4*100 + 5*1000 + 7*(10000+100000)
	if got := p.ComputeJoules(act); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ComputeJoules = %v, want %v", got, want)
	}
}

func TestActiveWattsPlausibleForStrongARMClassCore(t *testing.T) {
	// A 125 MHz client running flat out should land in the few-hundred-mW
	// range — the magnitude of the paper-era StrongARM parts.
	p := DefaultParams()
	const clock = 125e6
	act := cpu.Activity{
		Instructions: 100_000_000,
		Cycles:       130_000_000,
		ICache:       cache.Stats{Accesses: 100_000_000},
		DCache:       cache.Stats{Accesses: 30_000_000},
		MemReads:     600_000,
	}
	w := p.ActiveWatts(act, clock)
	if w < 0.1 || w > 1.0 {
		t.Fatalf("active power %.3f W implausible for the modeled core", w)
	}
	if p.ActiveWatts(cpu.Activity{}, clock) != 0 {
		t.Fatal("idle ActiveWatts not 0")
	}
}

func TestPollWattsExceedsSleepByALot(t *testing.T) {
	// §5.2: blocking (low-power mode) cut receive energy by more than half
	// versus busy-waiting — so polling power must dominate the sleep draw.
	p := DefaultParams()
	poll := p.PollWatts(125e6)
	if poll < 2*p.CPUSleepWatts {
		t.Fatalf("poll %.3f W not >> sleep %.3f W", poll, p.CPUSleepWatts)
	}
	if p.CPUIdleWatts <= p.CPUSleepWatts {
		t.Fatal("idle power must exceed sleep power")
	}
	if poll <= p.CPUIdleWatts {
		t.Fatalf("poll %.3f W should exceed idle %.3f W", poll, p.CPUIdleWatts)
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	b := Breakdown{Processor: 1, NICTx: 2, NICRx: 3, NICIdle: 4, NICSleep: 5}
	if b.Total() != 15 {
		t.Fatalf("Total = %v", b.Total())
	}
	b.Add(Breakdown{Processor: 1, NICTx: 1, NICRx: 1, NICIdle: 1, NICSleep: 1})
	if b.Total() != 20 {
		t.Fatalf("after Add: %v", b.Total())
	}
	s := b.Scale(0.5)
	if s.Total() != 10 || s.Processor != 1 {
		t.Fatalf("Scale: %+v", s)
	}
}
