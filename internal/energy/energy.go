// Package energy converts machine activity into Joules, mirroring the
// SimplePower methodology the paper uses for the mobile client (§5.1):
// energy is the sum of per-access component energies — datapath, clock tree,
// caches, buses, and DRAM — at the client's 3.3 V / 0.35 µm technology point
// (Table 3). It also provides the client CPU power modes used while the
// processor is blocked on communication (§5.2).
//
// Server energy is deliberately absent: the paper treats the wall-powered
// server as having no energy constraint (§5.3).
package energy

import (
	"fmt"

	"mobispatial/internal/cpu"
)

// Params are the per-event component energies in Joules. The defaults are
// representative 3.3 V / 0.35 µm values of the SimplePower era: cache
// accesses around a nanojoule, DRAM transactions tens of nanojoules, and a
// clock tree that is a first-class consumer — the same component mix whose
// I-cache dominance the paper's reference [2] reports.
type Params struct {
	// DatapathPerInstr is pipeline + register-file energy per instruction.
	DatapathPerInstr float64
	// ClockPerCycle is clock-tree energy per clock cycle.
	ClockPerCycle float64
	// ICachePerAccess is energy per instruction fetch.
	ICachePerAccess float64
	// DCachePerAccess is energy per data-cache access (line-granular).
	DCachePerAccess float64
	// MemPerAccess is DRAM energy per line transaction (fill or write-back).
	MemPerAccess float64
	// BusPerMem is processor–memory bus energy per line transaction.
	BusPerMem float64
	// CPUSleepWatts is the client core's low-power-mode draw while blocked
	// on the NIC (many mobile CPUs offer such modes, §5.2).
	CPUSleepWatts float64
	// CPUIdleWatts is the clock-gated draw when the core is idle but not in
	// the low-power mode (used by the CPU-sleep ablation).
	CPUIdleWatts float64
}

// DefaultParams returns the client energy table.
func DefaultParams() Params {
	return Params{
		DatapathPerInstr: 0.28e-9,
		ClockPerCycle:    0.18e-9,
		ICachePerAccess:  0.42e-9,
		DCachePerAccess:  0.50e-9,
		MemPerAccess:     32e-9,
		BusPerMem:        4e-9,
		CPUSleepWatts:    0.050,
		CPUIdleWatts:     0.120,
	}
}

// Validate reports nonsensical parameters.
func (p Params) Validate() error {
	vals := []float64{
		p.DatapathPerInstr, p.ClockPerCycle, p.ICachePerAccess,
		p.DCachePerAccess, p.MemPerAccess, p.BusPerMem,
		p.CPUSleepWatts, p.CPUIdleWatts,
	}
	for i, v := range vals {
		if v < 0 {
			return fmt.Errorf("energy: negative parameter #%d", i)
		}
	}
	return nil
}

// ComputeJoules returns the dynamic energy of the recorded activity.
func (p Params) ComputeJoules(act cpu.Activity) float64 {
	mem := act.MemReads + act.MemWrites
	return float64(act.Instructions)*p.DatapathPerInstr +
		float64(act.Cycles)*p.ClockPerCycle +
		float64(act.ICache.Accesses)*p.ICachePerAccess +
		float64(act.DCache.Accesses)*p.DCachePerAccess +
		float64(mem)*(p.MemPerAccess+p.BusPerMem)
}

// PollWatts returns the client-core draw of a tight busy-wait poll loop at
// the given clock: one instruction per cycle, all I-cache hits, roughly one
// data access (the message-queue state variable) every four instructions.
// Used by the busy-wait receive ablation (§5.2).
func (p Params) PollWatts(clockHz float64) float64 {
	perInstr := p.DatapathPerInstr + p.ICachePerAccess + p.ClockPerCycle + 0.25*p.DCachePerAccess
	return clockHz * perInstr
}

// ActiveWatts returns the average compute power implied by activity at the
// given clock — the paper's P_client term in the §4.1 analytic model.
func (p Params) ActiveWatts(act cpu.Activity, clockHz float64) float64 {
	if act.Cycles == 0 {
		return 0
	}
	seconds := float64(act.Cycles) / clockHz
	return p.ComputeJoules(act) / seconds
}

// Breakdown is the energy decomposition the paper's figures plot for the
// mobile client: everything that is not the wireless interface is bunched
// together as "Processor" (datapath, clock, caches, buses, memory), and the
// NIC is split by power state.
type Breakdown struct {
	Processor float64
	NICTx     float64
	NICRx     float64
	NICIdle   float64
	NICSleep  float64
}

// Total returns the total client energy in Joules.
func (b Breakdown) Total() float64 {
	return b.Processor + b.NICTx + b.NICRx + b.NICIdle + b.NICSleep
}

// Add accumulates other into b.
func (b *Breakdown) Add(other Breakdown) {
	b.Processor += other.Processor
	b.NICTx += other.NICTx
	b.NICRx += other.NICRx
	b.NICIdle += other.NICIdle
	b.NICSleep += other.NICSleep
}

// Scale returns b with every component multiplied by f.
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{
		Processor: b.Processor * f,
		NICTx:     b.NICTx * f,
		NICRx:     b.NICRx * f,
		NICIdle:   b.NICIdle * f,
		NICSleep:  b.NICSleep * f,
	}
}
