package router

import (
	"errors"
	"net"
	"testing"
	"time"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/mutable"
	"mobispatial/internal/obs"
	"mobispatial/internal/proto"
	"mobispatial/internal/serve"
	"mobispatial/internal/shard"
)

// The router is also a write-capable pool for the serve layer.
var (
	_ serve.Updatable   = (*Router)(nil)
	_ serve.SegResolver = (*Router)(nil)
)

// startMutableCluster is startCluster over updatable backends: each backend
// serves a mutable.Pool holding its ReplicaRanges, sharing the cluster-wide
// cuts so every process routes writes identically. Returns the per-backend
// pools for direct replica-state inspection, and the cuts.
func startMutableCluster(t testing.TB, ds *dataset.Dataset, nBackends, replicas int) (*testCluster, []*mutable.Pool, []uint64) {
	t.Helper()
	ranges, bounds := shard.PartitionHilbert(ds.Items(), nBackends, 0)
	if len(ranges) != nBackends {
		t.Fatalf("partition: got %d ranges, want %d", len(ranges), nBackends)
	}
	cuts := make([]uint64, len(ranges))
	for i, rg := range ranges {
		cuts[i] = rg.Lo
	}
	tc := &testCluster{ds: ds, ranges: ranges}
	var pools []*mutable.Pool
	for b := 0; b < nBackends; b++ {
		idxs, err := shard.ReplicaRanges(b, nBackends, replicas)
		if err != nil {
			t.Fatalf("replica ranges: %v", err)
		}
		var held []shard.Range
		var infos []proto.RangeInfo
		for _, ri := range idxs {
			rg := ranges[ri]
			held = append(held, rg)
			infos = append(infos, proto.RangeInfo{
				Index: uint32(rg.Index),
				Items: uint32(len(rg.Items)),
				Lo:    rg.Lo,
				Hi:    rg.Hi,
				MBR:   rg.MBR,
			})
		}
		pool, err := mutable.New(mutable.Config{
			Dataset:         ds,
			Ranges:          held,
			Cuts:            cuts,
			GlobalIndex:     idxs,
			Bounds:          bounds,
			CompactInterval: -1,
		})
		if err != nil {
			t.Fatalf("backend %d mutable pool: %v", b, err)
		}
		t.Cleanup(func() { pool.Close() })
		srv, err := serve.New(serve.Config{Pool: pool, Ranges: infos, NumRanges: nBackends})
		if err != nil {
			t.Fatalf("backend %d server: %v", b, err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("backend %d listen: %v", b, err)
		}
		go srv.Serve(lis)
		t.Cleanup(func() { srv.Close() })
		tc.addrs = append(tc.addrs, lis.Addr().String())
		tc.servers = append(tc.servers, srv)
		pools = append(pools, pool)
	}
	return tc, pools, cuts
}

// holdersOf counts which pools actually hold a fresh id at seg.
func holdersOf(pools []*mutable.Pool, id uint32, seg geom.Segment) []int {
	var out []int
	for b, p := range pools {
		if p.SegOf(id) == seg {
			out = append(out, b)
		}
	}
	return out
}

// segInRange finds a dataset segment whose write key lands in a range held
// by the wanted backend (pred over the global range index).
func segInRange(t *testing.T, ds *dataset.Dataset, cuts []uint64, pred func(rg int) bool) geom.Segment {
	t.Helper()
	q := shard.QuantizerFor(shard.BoundsOf(ds.Items()), 0)
	for id := 0; id < ds.Len(); id++ {
		seg := ds.Seg(uint32(id))
		if pred(shard.RangeForKey(cuts, shard.WriteKey(q, seg.MBR()))) {
			return seg
		}
	}
	t.Fatal("no dataset segment satisfies the range predicate")
	return geom.Segment{}
}

// TestRouterWriteReplication drives the write path across an R=2 cluster:
// an insert must land on BOTH holders of the owning range and nowhere else,
// a move across a range boundary must relocate the object to the new
// range's holders and evict it from the old ones, and a delete must clear
// every copy.
func TestRouterWriteReplication(t *testing.T) {
	ds := clusterDataset(t)
	tc, pools, cuts := startMutableCluster(t, ds, 3, 2)
	r := newRouter(t, tc, nil)

	q := shard.QuantizerFor(shard.BoundsOf(ds.Items()), 0)
	rangeOf := func(seg geom.Segment) int {
		return shard.RangeForKey(cuts, shard.WriteKey(q, seg.MBR()))
	}

	id := uint32(ds.Len() + 3)
	segA := ds.Seg(0) // geometry of a real item; the id is fresh
	epoch, existed, owned, err := r.ApplyInsert(id, segA)
	if err != nil || existed || !owned {
		t.Fatalf("insert: epoch=%d existed=%v owned=%v err=%v", epoch, existed, owned, err)
	}
	rgA := rangeOf(segA)
	hs := holdersOf(pools, id, segA)
	if len(hs) != 2 {
		t.Fatalf("inserted id on %d backends %v, want the 2 holders of range %d", len(hs), hs, rgA)
	}
	for _, b := range hs {
		if !r.snap().holds[b][rgA] {
			t.Fatalf("backend %d holds the inserted id but not range %d", b, rgA)
		}
	}
	if got := r.SegOf(id); got != segA {
		t.Fatalf("router SegOf after insert: %v, want %v", got, segA)
	}
	ids, err := r.RangeAppendUntil(nil, segA.MBR(), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if !containsU32(ids, id) {
		t.Fatalf("routed range over %v missing inserted id %d", segA.MBR(), id)
	}

	// Move across a range boundary.
	segB := segInRange(t, ds, cuts, func(rg int) bool { return rg != rgA })
	rgB := rangeOf(segB)
	epoch, existed, owned, err = r.ApplyMove(id, segB)
	if err != nil || !existed || !owned {
		t.Fatalf("move: epoch=%d existed=%v owned=%v err=%v", epoch, existed, owned, err)
	}
	hs = holdersOf(pools, id, segB)
	if len(hs) != 2 {
		t.Fatalf("moved id on %d backends %v, want the 2 holders of range %d", len(hs), hs, rgB)
	}
	for b, p := range pools {
		if !r.snap().holds[b][rgB] && p.SegOf(id) != (geom.Segment{}) {
			t.Fatalf("backend %d kept a stale copy after the move out of its ranges", b)
		}
	}
	ids, err = r.RangeAppendUntil(ids[:0], segB.MBR(), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if !containsU32(ids, id) {
		t.Fatalf("routed range over %v missing moved id %d", segB.MBR(), id)
	}

	// Delete clears every copy; re-delete is idempotent.
	if _, existed, _, err = r.ApplyDelete(id); err != nil || !existed {
		t.Fatalf("delete: existed=%v err=%v", existed, err)
	}
	if hs = holdersOf(pools, id, segB); len(hs) != 0 {
		t.Fatalf("deleted id survives on backends %v", hs)
	}
	if _, existed, _, err = r.ApplyDelete(id); err != nil || existed {
		t.Fatalf("re-delete: existed=%v err=%v", existed, err)
	}
	if got := r.SegOf(id); got != (geom.Segment{}) {
		t.Fatalf("router SegOf after delete: %v, want zero", got)
	}
}

// TestRouterWriteDivergence kills one replica of an R=2 cluster: writes
// into its ranges still succeed through the surviving replica, and the
// router counts the divergence.
func TestRouterWriteDivergence(t *testing.T) {
	ds := clusterDataset(t)
	tc, pools, cuts := startMutableCluster(t, ds, 3, 2)
	hub := obs.NewHub()
	r := newRouter(t, tc, func(cfg *Config) {
		cfg.Obs = hub
		cfg.LegTimeout = 500 * time.Millisecond
	})

	tc.servers[0].Close()

	seg := segInRange(t, ds, cuts, func(rg int) bool { return r.snap().holds[0][rg] })
	id := uint32(ds.Len() + 11)
	_, _, owned, err := r.ApplyInsert(id, seg)
	if err != nil || !owned {
		t.Fatalf("insert with one dead replica: owned=%v err=%v", owned, err)
	}
	if hs := holdersOf(pools, id, seg); len(hs) != 1 || hs[0] == 0 {
		t.Fatalf("insert landed on backends %v, want exactly the surviving replica", hs)
	}
	if v := hub.Reg.Counter("router_write_divergence_total").Value(); v == 0 {
		t.Fatal("no divergence recorded despite a dead replica")
	}
	if v := hub.Reg.Counter("router_write_unroutable_total").Value(); v != 0 {
		t.Fatalf("%d writes unroutable; R=2 must survive one backend", v)
	}

	// A broadcast delete also succeeds (and diverges on the dead backend).
	if _, existed, _, err := r.ApplyDelete(id); err != nil || !existed {
		t.Fatalf("delete with one dead backend: existed=%v err=%v", existed, err)
	}
}

// TestRouterWriteUnavailable loses the only holder of a range (R=1): a
// write owned by that range must fail CodeUnavailable, never land
// somewhere it does not belong.
func TestRouterWriteUnavailable(t *testing.T) {
	ds := clusterDataset(t)
	tc, pools, cuts := startMutableCluster(t, ds, 3, 1)
	hub := obs.NewHub()
	r := newRouter(t, tc, func(cfg *Config) {
		cfg.Obs = hub
		cfg.LegTimeout = 300 * time.Millisecond
	})

	tc.servers[1].Close()

	seg := segInRange(t, ds, cuts, func(rg int) bool { return rg == 1 })
	id := uint32(ds.Len() + 19)
	_, _, _, err := r.ApplyInsert(id, seg)
	var coded interface{ ErrCode() proto.ErrCode }
	if !errors.As(err, &coded) || coded.ErrCode() != proto.CodeUnavailable {
		t.Fatalf("write into a lost range: err=%v, want CodeUnavailable", err)
	}
	if hs := holdersOf(pools, id, seg); len(hs) != 0 {
		t.Fatalf("unroutable write still landed on backends %v", hs)
	}
	if v := hub.Reg.Counter("router_write_unroutable_total").Value(); v == 0 {
		t.Fatal("no unroutable write recorded")
	}
}

func containsU32(ids []uint32, id uint32) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
