package router

// freshness_test.go pins the routing layer's core liveness property: objects
// written AFTER the backends registered are visible to cluster reads, even
// when they land outside the MBRs the summaries reported — the exact hole a
// registration-frozen routing table leaves open (an object inserted into a
// range that registered empty, or moved outside its range's registered MBR,
// would be permanently invisible to range/point routing and mis-pruned by
// the NN visit order).

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/mutable"
	"mobispatial/internal/parallel"
	"mobispatial/internal/proto"
	"mobispatial/internal/rtree"
	"mobispatial/internal/serve"
	"mobispatial/internal/shard"
)

// startSparseCluster is startMutableCluster with R=1 (backend b holds range
// b only) and range emptyRg stripped of its items: that range registers with
// zero items and an empty MBR — the worst case for registration-time routing
// predicates. Returns the cluster, the per-backend pools, the cuts, and the
// stripped items (handy positions guaranteed to key into the empty range).
func startSparseCluster(t testing.TB, ds *dataset.Dataset, nBackends, emptyRg int) (*testCluster, []*mutable.Pool, []uint64, []rtree.Item) {
	t.Helper()
	ranges, bounds := shard.PartitionHilbert(ds.Items(), nBackends, 0)
	if len(ranges) != nBackends {
		t.Fatalf("partition: got %d ranges, want %d", len(ranges), nBackends)
	}
	cuts := make([]uint64, len(ranges))
	for i, rg := range ranges {
		cuts[i] = rg.Lo
	}
	stripped := ranges[emptyRg].Items
	if len(stripped) == 0 {
		t.Fatalf("range %d has no items to strip", emptyRg)
	}
	ranges[emptyRg].Items = nil
	ranges[emptyRg].MBR = geom.EmptyRect()

	tc := &testCluster{ds: ds, ranges: ranges}
	var pools []*mutable.Pool
	for b := 0; b < nBackends; b++ {
		rg := ranges[b]
		infos := []proto.RangeInfo{{
			Index: uint32(rg.Index),
			Items: uint32(len(rg.Items)),
			Lo:    rg.Lo,
			Hi:    rg.Hi,
			MBR:   rg.MBR,
		}}
		pool, err := mutable.New(mutable.Config{
			Dataset:         ds,
			Ranges:          []shard.Range{rg},
			Cuts:            cuts,
			GlobalIndex:     []int{b},
			Bounds:          bounds,
			CompactInterval: -1,
		})
		if err != nil {
			t.Fatalf("backend %d mutable pool: %v", b, err)
		}
		t.Cleanup(func() { pool.Close() })
		srv, err := serve.New(serve.Config{Pool: pool, Ranges: infos, NumRanges: nBackends})
		if err != nil {
			t.Fatalf("backend %d server: %v", b, err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("backend %d listen: %v", b, err)
		}
		go srv.Serve(lis)
		t.Cleanup(func() { srv.Close() })
		tc.addrs = append(tc.addrs, lis.Addr().String())
		tc.servers = append(tc.servers, srv)
		pools = append(pools, pool)
	}
	return tc, pools, cuts, stripped
}

func midpoint(seg geom.Segment) geom.Point {
	return geom.Point{X: (seg.A.X + seg.B.X) / 2, Y: (seg.A.Y + seg.B.Y) / 2}
}

// TestClusterReadsSeeFreshWrites is the headline regression: a write routed
// through the router into a range that registered EMPTY must be visible to
// range, point, and NN queries immediately after its ack — and a live object
// moved into that range must follow. A router that froze its routing
// predicates at registration fails every leg of this: the empty range's MBR
// intersects nothing (range/point fan-out never selects its holder) and the
// holder's empty bounds sort at +Inf MINDIST (the NN visit prunes it the
// moment any other backend sets a bound).
func TestClusterReadsSeeFreshWrites(t *testing.T) {
	ds := clusterDataset(t)
	const emptyRg = 2
	tc, _, _, stripped := startSparseCluster(t, ds, 4, emptyRg)
	r := newRouter(t, tc, nil)

	// Insert a fresh object at a stripped item's geometry: its write key
	// lands in the empty range by construction, outside every registered
	// MBR.
	id0 := uint32(ds.Len() + 101)
	seg0 := ds.Seg(stripped[0].ID)
	if _, _, owned, err := r.ApplyInsert(id0, seg0); err != nil || !owned {
		t.Fatalf("insert into the empty range: owned=%v err=%v", owned, err)
	}

	ids, err := r.RangeAppendUntil(nil, seg0.MBR(), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if !containsU32(ids, id0) {
		t.Fatalf("range query over the fresh insert's MBR missed id %d (got %d ids) — "+
			"the empty range's registration MBR is routing reads", id0, len(ids))
	}

	mid := midpoint(seg0)
	ids, err = r.PointAppendUntil(nil, mid, 0, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if !containsU32(ids, id0) {
		t.Fatalf("point query at the fresh insert missed id %d", id0)
	}

	nbs, err := r.KNearestAppendUntil(nil, mid, 3, nil, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	foundNN := false
	for _, nb := range nbs {
		if nb.ID == id0 {
			foundNN = true
			if nb.Dist != 0 {
				t.Fatalf("NN found id %d at dist %v, want 0 (query point on the segment)", id0, nb.Dist)
			}
		}
	}
	if !foundNN {
		t.Fatalf("NN at the fresh insert's midpoint missed id %d (got %v) — "+
			"the empty backend's registered bounds mis-pruned its leg", id0, nbs)
	}

	// A live object moved across a range boundary into the empty range must
	// be found at its new position and gone from its old one.
	idY := tc.ranges[0].Items[0].ID
	oldSeg := ds.Seg(idY)
	newSeg := ds.Seg(stripped[1].ID)
	if _, existed, owned, err := r.ApplyMove(idY, newSeg); err != nil || !existed || !owned {
		t.Fatalf("move into the empty range: existed=%v owned=%v err=%v", existed, owned, err)
	}
	ids, err = r.RangeAppendUntil(nil, newSeg.MBR(), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if !containsU32(ids, idY) {
		t.Fatalf("range query at the moved object's new position missed id %d", idY)
	}
	ids, err = r.RangeAppendUntil(nil, oldSeg.MBR(), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if containsU32(ids, idY) {
		t.Fatalf("moved id %d still answers at its old position", idY)
	}
}

// TestRouterMutableQuickEquivalence drives a random stream of inserts,
// moves, and deletes through the router and through a monolithic mutable
// pool, interleaving range/point/NN queries — the cluster must stay
// indistinguishable from the single-process truth the whole way.
func TestRouterMutableQuickEquivalence(t *testing.T) {
	ds := clusterDataset(t)
	tc, _, _ := startMutableCluster(t, ds, 3, 2)
	r := newRouter(t, tc, nil)
	truth, err := mutable.NewFromDataset(ds, 4, mutable.Config{CompactInterval: -1})
	if err != nil {
		t.Fatalf("truth pool: %v", err)
	}
	t.Cleanup(truth.Close)

	rng := rand.New(rand.NewSource(41))
	ext := ds.Extent
	randSeg := func() geom.Segment {
		x := ext.Min.X + rng.Float64()*ext.Width()
		y := ext.Min.Y + rng.Float64()*ext.Height()
		return geom.Segment{
			A: geom.Point{X: x, Y: y},
			B: geom.Point{X: x + rng.Float64()*120 - 60, Y: y + rng.Float64()*120 - 60},
		}
	}
	var psc parallel.Scratch
	check := func(step int) {
		t.Helper()
		w := randWindow(rng, ext, 0.03+0.2*rng.Float64())
		got, err := r.RangeAppendUntil(nil, w, time.Time{})
		if err != nil {
			t.Fatalf("step %d range: %v", step, err)
		}
		sameIDs(t, "range", got, truth.RangeAppend(nil, w))

		pt := geom.Point{X: ext.Min.X + rng.Float64()*ext.Width(), Y: ext.Min.Y + rng.Float64()*ext.Height()}
		got, err = r.PointAppendUntil(nil, pt, 2.0, time.Time{})
		if err != nil {
			t.Fatalf("step %d point: %v", step, err)
		}
		sameIDs(t, "point", got, truth.PointAppend(nil, pt, 2.0))

		gotN, err := r.KNearestAppendUntil(nil, pt, 8, nil, time.Time{})
		if err != nil {
			t.Fatalf("step %d knn: %v", step, err)
		}
		wantN, ok := truth.KNearestAppend(nil, pt, 8, &psc)
		if !ok {
			t.Fatalf("step %d: truth pool declined k-NN", step)
		}
		if len(gotN) != len(wantN) {
			t.Fatalf("step %d knn: %d neighbors, truth %d", step, len(gotN), len(wantN))
		}
		for i := range gotN {
			if gotN[i].Dist != wantN[i].Dist {
				t.Fatalf("step %d knn rank %d: dist %v, truth %v", step, i, gotN[i].Dist, wantN[i].Dist)
			}
		}
	}

	nextID := uint32(ds.Len() + 1000)
	var fresh []uint32
	for i := 0; i < 90; i++ {
		op := rng.Intn(10)
		switch {
		case op < 4 || (op >= 8 && len(fresh) == 0): // insert
			id := nextID
			nextID++
			seg := randSeg()
			_, ex1, _, err1 := r.ApplyInsert(id, seg)
			_, ex2, _, err2 := truth.ApplyInsert(id, seg)
			if err1 != nil || err2 != nil || ex1 != ex2 {
				t.Fatalf("op %d insert %d: cluster existed=%v err=%v, truth existed=%v err=%v",
					i, id, ex1, err1, ex2, err2)
			}
			fresh = append(fresh, id)
		case op < 8: // move a fresh or base object
			var id uint32
			if len(fresh) > 0 && rng.Intn(2) == 0 {
				id = fresh[rng.Intn(len(fresh))]
			} else {
				id = uint32(rng.Intn(ds.Len()))
			}
			seg := randSeg()
			_, ex1, _, err1 := r.ApplyMove(id, seg)
			_, ex2, _, err2 := truth.ApplyMove(id, seg)
			if err1 != nil || err2 != nil || ex1 != ex2 {
				t.Fatalf("op %d move %d: cluster existed=%v err=%v, truth existed=%v err=%v",
					i, id, ex1, err1, ex2, err2)
			}
		default: // delete a fresh object
			j := rng.Intn(len(fresh))
			id := fresh[j]
			fresh = append(fresh[:j], fresh[j+1:]...)
			_, ex1, _, err1 := r.ApplyDelete(id)
			_, ex2, _, err2 := truth.ApplyDelete(id)
			if err1 != nil || err2 != nil || ex1 != ex2 {
				t.Fatalf("op %d delete %d: cluster existed=%v err=%v, truth existed=%v err=%v",
					i, id, ex1, err1, ex2, err2)
			}
		}
		if i%9 == 0 {
			check(i)
		}
	}
	check(90)
	// Whole-world sweep: nothing lost, nothing duplicated, nothing stale.
	sweep := ext.Expand(500)
	got, err := r.RangeAppendUntil(nil, sweep, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	sameIDs(t, "sweep", got, truth.RangeAppend(nil, sweep))
}
