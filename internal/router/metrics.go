package router

import (
	"time"

	"mobispatial/internal/obs"
)

// routerMetrics holds the obs handles the fan-out paths touch, resolved
// once at New. Every handle is nil (no-op) when Config.Obs is nil — the
// same discipline as internal/serve and internal/shard.
//
// Exported metric names:
//
//	router_backends                 gauge: registered backends
//	router_ranges                   gauge: cluster Hilbert ranges
//	router_fanout                   histogram: backend legs per query
//	router_leg_seconds              histogram: one backend leg's duration
//	router_leg_errors_total         counter: failed backend legs
//	router_failover_total           counter: queries that lost a leg and
//	                                re-covered its ranges from replicas
//	router_unroutable_total         counter: queries failed CodeUnavailable
//	                                (a needed range had no healthy replica)
//	router_nn_backends_visited_total counter: NN legs actually sent
//	router_nn_backends_pruned_total  counter: backends skipped by the bound
//	router_writes_total             counter: write requests routed
//	router_write_legs_total         counter: write legs sent to backends
//	router_write_leg_errors_total   counter: failed write legs
//	router_write_divergence_total   counter: writes some replicas applied
//	                                and others missed — the copies disagree
//	                                until the missing replicas recover
//	router_write_unroutable_total   counter: writes no backend accepted
//	                                (answered CodeUnavailable)
//	router_batches_total            counter: client batches answered through
//	                                the grouped (one-leg-per-backend) path
//	router_batch_queries_total      counter: sub-queries inside those batches
//	router_batch_legs_total         counter: grouped batch legs shipped —
//	                                legs/batches is the locality win over
//	                                the per-item fan-out
//	router_batch_fallback_total     counter: sub-queries re-answered by the
//	                                per-item fan-out after a grouped leg
//	                                failed
//	router_refresh_total            counter: routing-table refreshes swapped
//	router_refresh_errors_total     counter: refresh polls that failed (an
//	                                unreachable backend, an inconsistent
//	                                summary set) — the table keeps serving
//	                                its previous snapshot
//	router_refresh_structural_total counter: refreshes that swapped in a
//	                                STRUCTURALLY different table (an
//	                                adaptive backend split or merged a
//	                                range) — write sequences and growth
//	                                restart against the new range set
//	router_ranges_divergent         gauge: ranges whose holders disagreed on
//	                                version or item count at the last
//	                                refresh — replication lag in flight;
//	                                these route unconditionally until the
//	                                copies reconverge
//	router_backend_healthy{backend} gauge: 1 while the backend's breaker
//	                                admits traffic, 0 after a leg failure
//	router_backend_legs_total{backend}       counter: legs per backend —
//	                                the read-spreading evidence
//	router_backend_leg_errors_total{backend} counter: failures per backend
type routerMetrics struct {
	backends *obs.Gauge
	ranges   *obs.Gauge

	fanout     *obs.Histogram
	legHist    *obs.Histogram
	legErrors  *obs.Counter
	failovers  *obs.Counter
	unroutable *obs.Counter
	nnVisited  *obs.Counter
	nnPruned   *obs.Counter

	writes          *obs.Counter
	writeLegs       *obs.Counter
	writeLegErrs    *obs.Counter
	writeDivergence *obs.Counter
	writeUnroutable *obs.Counter

	batches        *obs.Counter
	batchQueries   *obs.Counter
	batchLegs      *obs.Counter
	batchFallbacks *obs.Counter

	refreshes           *obs.Counter
	refreshErrors       *obs.Counter
	structuralRefreshes *obs.Counter
	divergentRanges     *obs.Gauge

	beHealthy []*obs.Gauge
	beLegs    []*obs.Counter
	beLegErrs []*obs.Counter
}

func newRouterMetrics(h *obs.Hub, backends []string) routerMetrics {
	var m routerMetrics
	if h == nil {
		m.beHealthy = make([]*obs.Gauge, len(backends))
		m.beLegs = make([]*obs.Counter, len(backends))
		m.beLegErrs = make([]*obs.Counter, len(backends))
		return m
	}
	m.backends = h.Reg.Gauge("router_backends")
	m.ranges = h.Reg.Gauge("router_ranges")
	m.fanout = h.Reg.Histogram("router_fanout")
	m.legHist = h.Reg.Histogram("router_leg_seconds")
	m.legErrors = h.Reg.Counter("router_leg_errors_total")
	m.failovers = h.Reg.Counter("router_failover_total")
	m.unroutable = h.Reg.Counter("router_unroutable_total")
	m.nnVisited = h.Reg.Counter("router_nn_backends_visited_total")
	m.nnPruned = h.Reg.Counter("router_nn_backends_pruned_total")
	m.writes = h.Reg.Counter("router_writes_total")
	m.writeLegs = h.Reg.Counter("router_write_legs_total")
	m.writeLegErrs = h.Reg.Counter("router_write_leg_errors_total")
	m.writeDivergence = h.Reg.Counter("router_write_divergence_total")
	m.writeUnroutable = h.Reg.Counter("router_write_unroutable_total")
	m.batches = h.Reg.Counter("router_batches_total")
	m.batchQueries = h.Reg.Counter("router_batch_queries_total")
	m.batchLegs = h.Reg.Counter("router_batch_legs_total")
	m.batchFallbacks = h.Reg.Counter("router_batch_fallback_total")
	m.refreshes = h.Reg.Counter("router_refresh_total")
	m.refreshErrors = h.Reg.Counter("router_refresh_errors_total")
	m.structuralRefreshes = h.Reg.Counter("router_refresh_structural_total")
	m.divergentRanges = h.Reg.Gauge("router_ranges_divergent")
	for _, addr := range backends {
		g := h.Reg.Gauge(obs.Name("router_backend_healthy", "backend", addr))
		g.Set(1)
		m.beHealthy = append(m.beHealthy, g)
		m.beLegs = append(m.beLegs, h.Reg.Counter(obs.Name("router_backend_legs_total", "backend", addr)))
		m.beLegErrs = append(m.beLegErrs, h.Reg.Counter(obs.Name("router_backend_leg_errors_total", "backend", addr)))
	}
	return m
}

// observeLeg records one backend leg's outcome and mirrors the backend's
// breaker position into its health gauge.
func (r *Router) observeLeg(b int, elapsed time.Duration, err error) {
	r.metrics.legHist.Observe(elapsed.Seconds())
	r.metrics.beLegs[b].Inc()
	if err != nil {
		r.metrics.legErrors.Inc()
		r.metrics.beLegErrs[b].Inc()
	}
	healthy := 0.0
	if r.BackendHealthy(b) {
		healthy = 1
	}
	r.metrics.beHealthy[b].Set(healthy)
}
