package router

import (
	"errors"
	"math/rand"
	"net"
	"slices"
	"testing"
	"time"

	"mobispatial/internal/dataset"
	"mobispatial/internal/faultlink"
	"mobispatial/internal/geom"
	"mobispatial/internal/obs"
	"mobispatial/internal/ops"
	"mobispatial/internal/parallel"
	"mobispatial/internal/proto"
	"mobispatial/internal/rtree"
	"mobispatial/internal/serve"
	"mobispatial/internal/serve/client"
	"mobispatial/internal/shard"
)

// A Router is a drop-in serve pool on every surface cmd/mqrouter needs.
var (
	_ serve.Executor         = (*Router)(nil)
	_ serve.DeadlineExecutor = (*Router)(nil)
)

// clusterDataset builds the deterministic world every process of a test
// cluster derives its partition from.
func clusterDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.GenConfig{
		Name:           "router-test",
		NumSegments:    6000,
		RecordBytes:    76,
		Extent:         geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 40000, Y: 40000}},
		Clusters:       5,
		ClusterStdFrac: 0.08,
		UniformFrac:    0.25,
		StreetSegs:     [2]int{2, 8},
		SegLen:         [2]float64{40, 160},
		GridBias:       0.6,
		Seed:           23,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return ds
}

// truthPool builds the monolithic pool the router's answers are compared
// against.
func truthPool(t testing.TB, ds *dataset.Dataset) *parallel.Pool {
	t.Helper()
	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		t.Fatalf("build master tree: %v", err)
	}
	pool, err := parallel.New(ds, tree, 2)
	if err != nil {
		t.Fatalf("parallel pool: %v", err)
	}
	return pool
}

// testCluster is nBackends partitioned serve.Servers over the same dataset,
// each holding its ReplicaRanges under R-way rotation placement.
type testCluster struct {
	ds      *dataset.Dataset
	ranges  []shard.Range
	addrs   []string
	servers []*serve.Server
}

func startCluster(t testing.TB, ds *dataset.Dataset, nBackends, replicas int) *testCluster {
	t.Helper()
	ranges, _ := shard.PartitionHilbert(ds.Items(), nBackends, 0)
	if len(ranges) != nBackends {
		t.Fatalf("partition: got %d ranges, want %d", len(ranges), nBackends)
	}
	tc := &testCluster{ds: ds, ranges: ranges}
	for b := 0; b < nBackends; b++ {
		idxs, err := shard.ReplicaRanges(b, nBackends, replicas)
		if err != nil {
			t.Fatalf("replica ranges: %v", err)
		}
		var sub []rtree.Item
		var infos []proto.RangeInfo
		for _, ri := range idxs {
			rg := ranges[ri]
			sub = append(sub, rg.Items...)
			infos = append(infos, proto.RangeInfo{
				Index: uint32(rg.Index),
				Items: uint32(len(rg.Items)),
				Lo:    rg.Lo,
				Hi:    rg.Hi,
				MBR:   rg.MBR,
			})
		}
		pool, err := shard.New(ds, shard.Config{Shards: 4, Workers: 2, Items: sub})
		if err != nil {
			t.Fatalf("backend %d pool: %v", b, err)
		}
		srv, err := serve.New(serve.Config{Pool: pool, Ranges: infos, NumRanges: nBackends})
		if err != nil {
			t.Fatalf("backend %d server: %v", b, err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("backend %d listen: %v", b, err)
		}
		go srv.Serve(lis)
		t.Cleanup(func() { srv.Close() })
		tc.addrs = append(tc.addrs, lis.Addr().String())
		tc.servers = append(tc.servers, srv)
	}
	return tc
}

func newRouter(t testing.TB, tc *testCluster, mutate func(*Config)) *Router {
	t.Helper()
	cfg := Config{
		Backends:        tc.addrs,
		Dataset:         tc.ds,
		RegisterTimeout: 15 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// randWindow draws a query window of fractional extent f.
func randWindow(rng *rand.Rand, extent geom.Rect, f float64) geom.Rect {
	w := extent.Width() * f
	h := extent.Height() * f
	x := extent.Min.X + rng.Float64()*(extent.Width()-w)
	y := extent.Min.Y + rng.Float64()*(extent.Height()-h)
	return geom.Rect{Min: geom.Point{X: x, Y: y}, Max: geom.Point{X: x + w, Y: y + h}}
}

func sortedCopy(ids []uint32) []uint32 {
	out := append([]uint32(nil), ids...)
	slices.Sort(out)
	return out
}

func sameIDs(t *testing.T, label string, got, want []uint32) {
	t.Helper()
	g, w := sortedCopy(got), sortedCopy(want)
	if !slices.Equal(g, w) {
		t.Fatalf("%s: got %d ids, want %d (first divergence around %v vs %v)", label, len(g), len(w), head(g), head(w))
	}
}

func head(ids []uint32) []uint32 {
	if len(ids) > 8 {
		return ids[:8]
	}
	return ids
}

// checkNN verifies a k-NN answer against the monolithic truth without
// over-constraining tie resolution: the distance sequence must match the
// truth rank by rank, every returned id must genuinely sit at its claimed
// distance, and no id may repeat. Any id satisfying those is a legitimate
// member of its equal-distance group, so the check is exact even when k
// cuts inside a tie.
func checkNN(t *testing.T, label string, ds *dataset.Dataset, pt geom.Point, got, want []rtree.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d neighbors, want %d", label, len(got), len(want))
	}
	seen := make(map[uint32]bool, len(got))
	for i := range got {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("%s: rank %d dist %v, want %v", label, i, got[i].Dist, want[i].Dist)
		}
		if i > 0 && got[i].Dist < got[i-1].Dist {
			t.Fatalf("%s: rank %d dist %v below rank %d dist %v", label, i, got[i].Dist, i-1, got[i-1].Dist)
		}
		if seen[got[i].ID] {
			t.Fatalf("%s: id %d repeated", label, got[i].ID)
		}
		seen[got[i].ID] = true
		if d := ds.Seg(got[i].ID).DistToPoint(pt); d != got[i].Dist {
			t.Fatalf("%s: id %d true dist %v, reported %v", label, got[i].ID, d, got[i].Dist)
		}
	}
}

func TestRouterRangeEquivalence(t *testing.T) {
	ds := clusterDataset(t)
	pool := truthPool(t, ds)
	tc := startCluster(t, ds, 3, 2)
	r := newRouter(t, tc, nil)

	rng := rand.New(rand.NewSource(7))
	extent := pool.Bounds()
	windows := []geom.Rect{
		extent,                       // everything
		randWindow(rng, extent, 0.0), // degenerate point-window
		{Min: geom.Point{X: -500, Y: -500}, Max: geom.Point{X: -100, Y: -100}}, // empty
	}
	for i := 0; i < 30; i++ {
		windows = append(windows, randWindow(rng, extent, 0.02+0.3*rng.Float64()))
	}
	for i, w := range windows {
		got, err := r.RangeAppendUntil(nil, w, time.Time{})
		if err != nil {
			t.Fatalf("range %d: %v", i, err)
		}
		sameIDs(t, "range", got, pool.RangeAppend(nil, w))

		got, err = r.FilterRangeAppendUntil(nil, w, time.Time{})
		if err != nil {
			t.Fatalf("filter range %d: %v", i, err)
		}
		sameIDs(t, "filter range", got, pool.FilterRangeAppend(nil, w))
	}
}

func TestRouterPointEquivalence(t *testing.T) {
	ds := clusterDataset(t)
	pool := truthPool(t, ds)
	tc := startCluster(t, ds, 3, 2)
	r := newRouter(t, tc, nil)

	rng := rand.New(rand.NewSource(8))
	var pts []geom.Point
	for i := 0; i < 20; i++ {
		// Segment endpoints guarantee hits; random points mostly miss.
		pts = append(pts, ds.Seg(uint32(rng.Intn(len(ds.Segments)))).A)
		pts = append(pts, geom.Point{
			X: 40000 * rng.Float64(),
			Y: 40000 * rng.Float64(),
		})
	}
	for i, pt := range pts {
		got, err := r.PointAppendUntil(nil, pt, 0, time.Time{})
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		sameIDs(t, "point", got, pool.PointAppend(nil, pt, 0))

		got, err = r.PointAppendUntil(nil, pt, 25, time.Time{})
		if err != nil {
			t.Fatalf("point eps %d: %v", i, err)
		}
		sameIDs(t, "point eps", got, pool.PointAppend(nil, pt, 25))

		got, err = r.FilterPointAppendUntil(nil, pt, time.Time{})
		if err != nil {
			t.Fatalf("filter point %d: %v", i, err)
		}
		sameIDs(t, "filter point", got, pool.FilterPointAppend(nil, pt))
	}
}

func TestRouterNNEquivalence(t *testing.T) {
	ds := clusterDataset(t)
	pool := truthPool(t, ds)
	tc := startCluster(t, ds, 3, 2)
	r := newRouter(t, tc, nil)

	rng := rand.New(rand.NewSource(9))
	sc := &parallel.Scratch{}
	for i := 0; i < 25; i++ {
		pt := geom.Point{X: 40000 * rng.Float64(), Y: 40000 * rng.Float64()}
		for _, k := range []int{1, 3, 8, 32} {
			got, err := r.KNearestAppendUntil(nil, pt, k, sc, time.Time{})
			if err != nil {
				t.Fatalf("knn pt %d k %d: %v", i, k, err)
			}
			want, _ := pool.KNearestAppend(nil, pt, k, sc)
			checkNN(t, "knn", ds, pt, got, want)
		}
		res, err := r.NearestUntil(pt, sc, time.Time{})
		if err != nil {
			t.Fatalf("nearest pt %d: %v", i, err)
		}
		truth := pool.NearestWith(pt, sc)
		if res.OK != truth.OK || res.Dist != truth.Dist {
			t.Fatalf("nearest pt %d: got (%v %v), want (%v %v)", i, res.OK, res.Dist, truth.OK, truth.Dist)
		}
	}
}

// TestRouterNNForcedTies queries exactly at endpoints shared by consecutive
// street segments: at least two items sit at distance zero, so every small k
// cuts inside an equal-distance group.
func TestRouterNNForcedTies(t *testing.T) {
	ds := clusterDataset(t)
	pool := truthPool(t, ds)
	tc := startCluster(t, ds, 3, 2)
	r := newRouter(t, tc, nil)

	sc := &parallel.Scratch{}
	ties := 0
	for id := uint32(0); int(id+1) < len(ds.Segments) && ties < 10; id++ {
		pt := ds.Seg(id).B
		if ds.Seg(id+1).A != pt {
			continue
		}
		ties++
		for _, k := range []int{1, 2, 4} {
			got, err := r.KNearestAppendUntil(nil, pt, k, sc, time.Time{})
			if err != nil {
				t.Fatalf("tie id %d k %d: %v", id, k, err)
			}
			want, _ := pool.KNearestAppend(nil, pt, k, sc)
			checkNN(t, "tie", ds, pt, got, want)
			if got[0].Dist != 0 {
				t.Fatalf("tie id %d: nearest dist %v, want 0", id, got[0].Dist)
			}
		}
	}
	if ties == 0 {
		t.Fatal("dataset produced no shared street endpoints; tie coverage lost")
	}
}

// TestRouterFailover kills one backend of an R=2 cluster mid-run: every
// query must still succeed, with the failovers visible in the router's
// counters.
func TestRouterFailover(t *testing.T) {
	ds := clusterDataset(t)
	pool := truthPool(t, ds)
	tc := startCluster(t, ds, 3, 2)
	hub := obs.NewHub()
	r := newRouter(t, tc, func(cfg *Config) {
		cfg.Obs = hub
		cfg.LegTimeout = 500 * time.Millisecond
	})

	tc.servers[0].Close() // outage: backend 0 gone, every range keeps a replica

	rng := rand.New(rand.NewSource(10))
	sc := &parallel.Scratch{}
	extent := pool.Bounds()
	for i := 0; i < 40; i++ {
		w := randWindow(rng, extent, 0.05+0.2*rng.Float64())
		got, err := r.RangeAppendUntil(nil, w, time.Time{})
		if err != nil {
			t.Fatalf("range %d during outage: %v", i, err)
		}
		sameIDs(t, "outage range", got, pool.RangeAppend(nil, w))

		pt := geom.Point{X: 40000 * rng.Float64(), Y: 40000 * rng.Float64()}
		nn, err := r.KNearestAppendUntil(nil, pt, 5, sc, time.Time{})
		if err != nil {
			t.Fatalf("knn %d during outage: %v", i, err)
		}
		want, _ := pool.KNearestAppend(nil, pt, 5, sc)
		checkNN(t, "outage knn", ds, pt, nn, want)
	}
	if v := hub.Reg.Counter("router_leg_errors_total").Value(); v == 0 {
		t.Fatal("no leg errors recorded despite a dead backend")
	}
	if v := hub.Reg.Counter("router_failover_total").Value(); v == 0 {
		t.Fatal("no failovers recorded despite a dead backend")
	}
	if v := hub.Reg.Counter("router_unroutable_total").Value(); v != 0 {
		t.Fatalf("%d queries unroutable; R=2 must survive one backend", v)
	}
}

// TestRouterUnavailable loses the only copy of a range (R=1) and expects the
// transient CodeUnavailable, never a silent hole.
func TestRouterUnavailable(t *testing.T) {
	ds := clusterDataset(t)
	tc := startCluster(t, ds, 3, 1)
	r := newRouter(t, tc, func(cfg *Config) {
		cfg.LegTimeout = 300 * time.Millisecond
	})

	tc.servers[1].Close()

	w := tc.ranges[1].MBR // needs the lost range
	_, err := r.RangeAppendUntil(nil, w, time.Time{})
	if err == nil {
		t.Fatal("query over a lost range succeeded; must fail unavailable")
	}
	var coded interface{ ErrCode() proto.ErrCode }
	if !errors.As(err, &coded) || coded.ErrCode() != proto.CodeUnavailable {
		t.Fatalf("lost-range error = %v; want CodeUnavailable", err)
	}

	sc := &parallel.Scratch{}
	_, err = r.KNearestAppendUntil(nil, w.Center(), 5, sc, time.Time{})
	if !errors.As(err, &coded) || coded.ErrCode() != proto.CodeUnavailable {
		t.Fatalf("lost-range knn error = %v; want CodeUnavailable", err)
	}
}

// TestRouterReadSpreading sends identical queries at an R=2 cluster and
// expects the rotation to put work on every replica, not pin the primary.
func TestRouterReadSpreading(t *testing.T) {
	ds := clusterDataset(t)
	tc := startCluster(t, ds, 2, 2)
	r := newRouter(t, tc, nil)

	before := make([]uint64, len(tc.servers))
	for b, srv := range tc.servers {
		before[b] = srv.Stats().Served
	}
	w := tc.ranges[0].MBR.Intersection(tc.ranges[1].MBR)
	if w.IsEmpty() {
		w = tc.ranges[0].MBR
	}
	for i := 0; i < 60; i++ {
		if _, err := r.RangeAppendUntil(nil, w, time.Time{}); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	for b, srv := range tc.servers {
		served := srv.Stats().Served - before[b]
		if served < 15 {
			t.Fatalf("backend %d served %d of 60 identical queries; reads are not spreading", b, served)
		}
	}
}

// stalledBackend is a protocol endpoint that registers (answers summaries)
// and then swallows every query without replying — the pathological slow
// replica. It reports itself the sole holder of the given ranges.
func stalledBackend(t testing.TB, numRanges int, held []proto.RangeInfo, bounds geom.Rect) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("stalled backend listen: %v", err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				for {
					msg, _, err := proto.ReadMessage(nc)
					if err != nil {
						return
					}
					if m, ok := msg.(*proto.SummaryReqMsg); ok {
						proto.WriteMessage(nc, &proto.SummaryMsg{
							ID:        m.ID,
							NumRanges: uint32(numRanges),
							Bounds:    bounds,
							Ranges:    held,
						})
					}
					// Everything else stalls forever: no reply.
				}
			}(nc)
		}
	}()
	return lis.Addr().String()
}

// TestRouterDeadlineCapsStalledLeg is the satellite regression: with a
// 5-second LegTimeout and a 300ms query deadline, a leg into a stalled
// backend must give up at the query deadline — the deadline is inherited
// down the hop, not re-applied per hop (which would stretch the query to
// LegTimeout or beyond).
func TestRouterDeadlineCapsStalledLeg(t *testing.T) {
	ds := clusterDataset(t)
	ranges, bounds := shard.PartitionHilbert(ds.Items(), 2, 0)

	// Backend 0 is real and holds range 0; backend 1 claims range 1 but
	// stalls every query.
	sub := append([]rtree.Item(nil), ranges[0].Items...)
	pool, err := shard.New(ds, shard.Config{Shards: 2, Workers: 2, Items: sub})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	info0 := proto.RangeInfo{Index: 0, Items: uint32(len(ranges[0].Items)), Lo: ranges[0].Lo, Hi: ranges[0].Hi, MBR: ranges[0].MBR}
	srv, err := serve.New(serve.Config{Pool: pool, Ranges: []proto.RangeInfo{info0}, NumRanges: 2})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })

	info1 := proto.RangeInfo{Index: 1, Items: uint32(len(ranges[1].Items)), Lo: ranges[1].Lo, Hi: ranges[1].Hi, MBR: ranges[1].MBR}
	stalled := stalledBackend(t, 2, []proto.RangeInfo{info1}, bounds)

	r, err := New(Config{
		Backends:        []string{lis.Addr().String(), stalled},
		Dataset:         ds,
		LegTimeout:      5 * time.Second, // must NOT be what caps the query
		RegisterTimeout: 15 * time.Second,
	})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	t.Cleanup(func() { r.Close() })

	w := ranges[0].MBR.Union(ranges[1].MBR) // touches both ranges
	start := time.Now()
	_, err = r.RangeAppendUntil(nil, w, time.Now().Add(300*time.Millisecond))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("query through a stalled sole holder succeeded")
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("stalled leg held the query %v; the 300ms deadline did not cap it", elapsed)
	}

	// A query that never needs the stalled range stays unaffected. The two
	// range MBRs overlap, so pick a range-0 item clear of range 1's MBR.
	healthy := geom.EmptyRect()
	for _, it := range ranges[0].Items {
		if !it.MBR.Intersects(ranges[1].MBR) {
			healthy = it.MBR
			break
		}
	}
	if healthy.IsEmpty() {
		t.Skip("no range-0 item clear of range 1's MBR")
	}
	got, err := r.RangeAppendUntil(nil, healthy, time.Now().Add(2*time.Second))
	if err != nil {
		t.Fatalf("healthy-range query: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("healthy-range query returned nothing")
	}
}

// TestRouterBackendRecovery is the re-admission regression: once the
// breaker trips a backend out of the read set, no query traffic reaches it
// again, so only the router's background probe loop can bring it back. The
// outage rides a per-backend faultlink dial so the backend process itself
// never dies.
func TestRouterBackendRecovery(t *testing.T) {
	ds := clusterDataset(t)
	tc := startCluster(t, ds, 3, 2)
	inj := faultlink.New(faultlink.Profile{})
	victim := tc.addrs[2]
	r := newRouter(t, tc, func(cfg *Config) {
		cfg.LegTimeout = 300 * time.Millisecond
		cfg.Breaker = client.BreakerConfig{
			Enabled:          true,
			FailureThreshold: 2,
			ProbeInterval:    50 * time.Millisecond,
		}
		cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			if addr == victim {
				return inj.DialFunc(nil)(addr, timeout)
			}
			return net.DialTimeout("tcp", addr, timeout)
		}
	})

	w := tc.ranges[2].MBR
	inj.ForceOutage(true)
	// Queries keep succeeding off the replicas while the victim's breaker
	// accumulates failures and trips.
	deadline := time.Now().Add(10 * time.Second)
	for r.BackendHealthy(2) {
		if time.Now().After(deadline) {
			t.Fatal("breaker never tripped during the forced outage")
		}
		if _, err := r.RangeAppendUntil(nil, w, time.Time{}); err != nil {
			t.Fatalf("query during outage: %v", err)
		}
	}

	// Outage over: with zero query traffic aimed at the victim, only the
	// probe loop can re-admit it.
	inj.ForceOutage(false)
	deadline = time.Now().Add(10 * time.Second)
	for !r.BackendHealthy(2) {
		if time.Now().After(deadline) {
			t.Fatal("backend never re-admitted after the outage ended")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := r.RangeAppendUntil(nil, w, time.Time{}); err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
}

func TestBuildTableValidation(t *testing.T) {
	mbr := geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 1, Y: 1}}
	rng := func(idx uint32) proto.RangeInfo {
		return proto.RangeInfo{Index: idx, Items: 1, MBR: mbr}
	}
	sum := func(n uint32, rs ...proto.RangeInfo) *proto.SummaryMsg {
		return &proto.SummaryMsg{NumRanges: n, Bounds: mbr, Ranges: rs}
	}

	if _, err := buildTable(nil); err == nil {
		t.Fatal("empty summaries accepted")
	}
	if _, err := buildTable([]*proto.SummaryMsg{sum(2, rng(0)), sum(3, rng(1))}); err == nil {
		t.Fatal("disagreeing NumRanges accepted")
	}
	if _, err := buildTable([]*proto.SummaryMsg{sum(2, rng(0), rng(0))}); err == nil {
		t.Fatal("duplicate range accepted")
	}
	if _, err := buildTable([]*proto.SummaryMsg{sum(2, rng(0), rng(2))}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := buildTable([]*proto.SummaryMsg{sum(2, rng(0)), sum(2, rng(0))}); err == nil {
		t.Fatal("holderless range accepted")
	}

	tbl, err := buildTable([]*proto.SummaryMsg{sum(2, rng(0), rng(1)), sum(2, rng(1))})
	if err != nil {
		t.Fatalf("valid summaries rejected: %v", err)
	}
	if tbl.numRanges != 2 || len(tbl.holders[1]) != 2 || len(tbl.holders[0]) != 1 {
		t.Fatalf("table misbuilt: %+v", tbl)
	}
	if tbl.items != 2 {
		t.Fatalf("items = %d, want 2 (each range counted once)", tbl.items)
	}
	if tbl.divergent[0] || tbl.divergent[1] {
		t.Fatalf("agreeing holders flagged divergent: %v", tbl.divergent)
	}

	// Disagreeing holders — replication lag in flight: items take the max
	// per range (the copy that has seen every write), versions the min (the
	// most conservative cache validity), and the range is flagged divergent.
	ri := func(idx uint32, items uint32, version uint64) proto.RangeInfo {
		return proto.RangeInfo{Index: idx, Items: items, Version: version, MBR: mbr}
	}
	tbl, err = buildTable([]*proto.SummaryMsg{
		sum(2, ri(0, 5, 9), ri(1, 1, 4)),
		sum(2, ri(0, 7, 6), ri(1, 1, 4)),
	})
	if err != nil {
		t.Fatalf("lagging summaries rejected: %v", err)
	}
	if tbl.items != 8 {
		t.Fatalf("items = %d, want 8 (max across holders per range: 7+1)", tbl.items)
	}
	if tbl.version[0] != 6 || tbl.version[1] != 4 {
		t.Fatalf("versions = %v, want min across holders [6 4]", tbl.version)
	}
	if !tbl.divergent[0] || tbl.divergent[1] {
		t.Fatalf("divergence misdetected: %v, want [true false]", tbl.divergent)
	}
}
