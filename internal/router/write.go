// write.go is the router's write path: live inserts, deletes, and moves
// fanned to every replica that must observe them. Reads pick ONE healthy
// holder per range; writes are the dual — they go to ALL holders of the
// owning range (an insert routed by the object's Hilbert key) or to every
// backend outright (moves and deletes, which must also evict stale copies
// from backends the object is leaving). Replication is synchronous and
// best-effort: the write succeeds if at least one replica applied it, and a
// replica that missed it (tripped breaker, timeout) is counted as
// divergence — the copies disagree until that backend is rebuilt or the
// object is written again.
//
// The merged ack is the most conservative view across replicas: Epoch is the
// MINIMUM base epoch among owning replicas (the most-behind copy — staleness
// measured against it never understates), Existed is true if any replica had
// a previous version, Owned is true if any replica accepted ownership.
package router

import (
	"fmt"
	"sync"
	"time"

	"mobispatial/internal/geom"
	"mobispatial/internal/proto"
	"mobispatial/internal/serve/client"
	"mobispatial/internal/shard"
)

// Router implements serve.Updatable and serve.SegResolver, so cmd/mqrouter's
// serve.Server accepts update messages and resolves live geometry in
// data-mode responses without any extra wiring.

// ApplyInsert routes an upsert to every holder of the owning range. Insert
// is the fresh-object path: it does not hunt down copies of id elsewhere in
// the cluster — relocating a live object is Move's job. On success the
// write enters the freshness plane (noteWrite) before the ack returns, so
// a read issued after the ack routes to the object even if it landed
// outside the range's summary MBR.
func (r *Router) ApplyInsert(id uint32, seg geom.Segment) (uint64, bool, bool, error) {
	t := r.snap()
	mbr := seg.MBR()
	rg := t.rangeForKey(shard.WriteKey(r.wq, mbr))
	epoch, existed, owned, err := r.fanWrite(t.holders[rg], func(cc *client.Client) (client.UpdateAck, error) {
		return cc.Insert(id, seg)
	})
	if err == nil {
		r.liveSet(id, seg)
		r.noteWrite(t, mbr, rg, rg)
	}
	return epoch, existed, owned, err
}

// ApplyMove broadcasts the relocation to every backend: holders of the
// target range upsert the new geometry, every other backend drops any stale
// copy it still holds (acking Owned=false), so a vehicle crossing a range
// boundary never answers queries from two places. Both the old and the new
// position's ranges invalidate: a cached result over the old position must
// stop reporting the object there. The old position comes from the router's
// live map (or the base dataset); an id neither knows moved through some
// other door, so every range is invalidated rather than guess.
func (r *Router) ApplyMove(id uint32, seg geom.Segment) (uint64, bool, bool, error) {
	t := r.snap()
	mbr := seg.MBR()
	newRg := t.rangeForKey(shard.WriteKey(r.wq, mbr))
	oldRg := -1
	if oldSeg, ok := r.segKnown(id); ok {
		oldRg = t.rangeForKey(shard.WriteKey(r.wq, oldSeg.MBR()))
	}
	epoch, existed, owned, err := r.fanWrite(r.all, func(cc *client.Client) (client.UpdateAck, error) {
		return cc.Move(id, seg)
	})
	if err == nil {
		r.liveSet(id, seg)
		if oldRg >= 0 {
			r.noteWrite(t, mbr, newRg, newRg, oldRg)
		} else {
			r.noteWrite(t, mbr, newRg)
			r.bumpAllRanges()
		}
	}
	return epoch, existed, owned, err
}

// ApplyDelete broadcasts the delete: only the backend holding id knows it,
// and the router does not track where id lives, so everyone is told.
// Deleting an id nobody holds succeeds with Existed=false. The range of the
// object's last known position invalidates (the object must vanish from
// cached results there); no growth is added — a delete never widens extent.
func (r *Router) ApplyDelete(id uint32) (uint64, bool, bool, error) {
	t := r.snap()
	oldRg := -1
	if oldSeg, ok := r.segKnown(id); ok {
		oldRg = t.rangeForKey(shard.WriteKey(r.wq, oldSeg.MBR()))
	}
	epoch, existed, owned, err := r.fanWrite(r.all, func(cc *client.Client) (client.UpdateAck, error) {
		return cc.Delete(id)
	})
	if err == nil {
		r.liveMu.Lock()
		delete(r.live, id)
		r.liveMu.Unlock()
		if existed {
			if oldRg >= 0 {
				r.noteWrite(t, geom.EmptyRect(), -1, oldRg)
			} else {
				r.bumpAllRanges()
			}
		}
	}
	return epoch, existed, owned, err
}

// SegOf implements serve.SegResolver: live-written geometry wins over the
// base dataset; an unknown id beyond the dataset resolves to the zero
// segment rather than a panic.
func (r *Router) SegOf(id uint32) geom.Segment {
	seg, _ := r.segKnown(id)
	return seg
}

// segKnown resolves id's last geometry this router can vouch for, and
// whether it could: live-written geometry wins over the base dataset; an
// id beyond both is unknown (ok=false), which write invalidation treats as
// "could be anywhere".
func (r *Router) segKnown(id uint32) (geom.Segment, bool) {
	r.liveMu.RLock()
	seg, ok := r.live[id]
	r.liveMu.RUnlock()
	if ok {
		return seg, true
	}
	if int(id) < r.ds.Len() {
		return r.ds.Seg(id), true
	}
	return geom.Segment{}, false
}

func (r *Router) liveSet(id uint32, seg geom.Segment) {
	r.liveMu.Lock()
	r.live[id] = seg
	r.liveMu.Unlock()
}

// writeLeg is one backend's share of a write.
type writeLeg func(cc *client.Client) (client.UpdateAck, error)

// fanWrite sends the write to every target concurrently (first leg on the
// calling goroutine, like the read fan-out) and merges the acks. Unlike
// reads there is no failover — the targets ARE the replica set; a failed
// leg has nowhere else to go and is recorded as divergence instead.
func (r *Router) fanWrite(targets []int32, leg writeLeg) (uint64, bool, bool, error) {
	r.metrics.writes.Inc()
	acks := make([]client.UpdateAck, len(targets))
	errs := make([]error, len(targets))
	run := func(i int, b int32) {
		start := time.Now()
		acks[i], errs[i] = leg(r.clients[b])
		r.observeLeg(int(b), time.Since(start), errs[i])
		r.metrics.writeLegs.Inc()
		if errs[i] != nil {
			r.metrics.writeLegErrs.Inc()
		}
	}
	var wg sync.WaitGroup
	for i := 1; i < len(targets); i++ {
		wg.Add(1)
		go func(i int, b int32) {
			defer wg.Done()
			run(i, b)
		}(i, targets[i])
	}
	if len(targets) > 0 {
		run(0, targets[0])
	}
	wg.Wait()

	ok := 0
	var epoch uint64
	existed, owned := false, false
	var lastErr error
	for i := range targets {
		if errs[i] != nil {
			lastErr = errs[i]
			continue
		}
		ok++
		a := acks[i]
		existed = existed || a.Existed
		if a.Owned {
			if !owned || a.Epoch < epoch {
				epoch = a.Epoch
			}
			owned = true
		}
	}
	if ok == 0 {
		r.metrics.writeUnroutable.Inc()
		return 0, false, false, &routerError{
			code: proto.CodeUnavailable,
			msg:  fmt.Sprintf("router: write reached none of %d replicas: %v", len(targets), lastErr),
		}
	}
	if ok < len(targets) {
		r.metrics.writeDivergence.Inc()
	}
	return epoch, existed, owned, nil
}
