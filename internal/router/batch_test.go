package router

// batch_test.go pins the locality-aware batch path (batch.go): a client
// batch through a router-fronted server must reach each owning backend as
// ONE MsgBatchQuery leg (the wire-counter acceptance check), answer exactly
// what the monolithic truth answers, survive a dead backend through the
// per-item fallback, and — the adaptive half — the router must pick up a
// backend's repartitioned cut table through its summary refresh without a
// restart.

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"mobispatial/internal/geom"
	"mobispatial/internal/mutable"
	"mobispatial/internal/obs"
	"mobispatial/internal/proto"
	"mobispatial/internal/serve"
	"mobispatial/internal/serve/client"
	"mobispatial/internal/shard"
)

var _ serve.BatchExecutor = (*Router)(nil)

// mixedBatch builds a batch of range/filter/point sub-queries spread over
// the extent, led by one full-extent window so every backend owns work.
func mixedBatch(rng *rand.Rand, extent geom.Rect, n int) []proto.QueryMsg {
	qs := []proto.QueryMsg{{Kind: proto.KindRange, Mode: proto.ModeIDs, Window: extent}}
	for len(qs) < n {
		switch len(qs) % 3 {
		case 0:
			qs = append(qs, proto.QueryMsg{Kind: proto.KindRange, Mode: proto.ModeIDs,
				Window: randWindow(rng, extent, 0.02+0.2*rng.Float64())})
		case 1:
			qs = append(qs, proto.QueryMsg{Kind: proto.KindRange, Mode: proto.ModeFilter,
				Window: randWindow(rng, extent, 0.02+0.2*rng.Float64())})
		default:
			qs = append(qs, proto.QueryMsg{Kind: proto.KindPoint, Mode: proto.ModeIDs, Eps: 25,
				Point: geom.Point{
					X: extent.Min.X + rng.Float64()*extent.Width(),
					Y: extent.Min.Y + rng.Float64()*extent.Height(),
				}})
		}
	}
	return qs
}

// checkBatchItem verifies one sub-query's id answer against the monolithic
// truth pool.
func checkBatchItem(t *testing.T, pool interface {
	RangeAppend([]uint32, geom.Rect) []uint32
	FilterRangeAppend([]uint32, geom.Rect) []uint32
	PointAppend([]uint32, geom.Point, float64) []uint32
}, i int, q *proto.QueryMsg, got []uint32) {
	t.Helper()
	switch {
	case q.Kind == proto.KindRange && q.Mode == proto.ModeFilter:
		sameIDs(t, "batch filter", got, pool.FilterRangeAppend(nil, q.Window))
	case q.Kind == proto.KindRange:
		sameIDs(t, "batch range", got, pool.RangeAppend(nil, q.Window))
	case q.Kind == proto.KindPoint:
		sameIDs(t, "batch point", got, pool.PointAppend(nil, q.Point, q.Eps))
	default:
		t.Fatalf("item %d: unexpected kind %v", i, q.Kind)
	}
}

// TestRouterBatchOneLegPerBackend is the acceptance wire-counter check: a
// client batch into a router-fronted server must cost each owning backend
// exactly ONE MsgBatchQuery, however many sub-queries it answers. R=1 makes
// ownership deterministic, and the full-extent lead query forces every
// backend to own work.
func TestRouterBatchOneLegPerBackend(t *testing.T) {
	ds := clusterDataset(t)
	pool := truthPool(t, ds)
	tc := startCluster(t, ds, 3, 1)
	hub := obs.NewHub()
	r := newRouter(t, tc, func(cfg *Config) { cfg.Obs = hub })

	front, err := serve.New(serve.Config{Pool: r})
	if err != nil {
		t.Fatalf("front server: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go front.Serve(lis)
	t.Cleanup(func() { front.Close() })
	c, err := client.New(client.Config{Addr: lis.Addr().String(), Conns: 1})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	t.Cleanup(func() { c.Close() })

	rng := rand.New(rand.NewSource(61))
	qs := mixedBatch(rng, ds.Extent, 18)

	before := make([]uint64, len(tc.servers))
	for b, srv := range tc.servers {
		before[b] = srv.Stats().Batches
	}
	res, err := c.QueryBatch(qs)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	for b, srv := range tc.servers {
		if got := srv.Stats().Batches - before[b]; got != 1 {
			t.Fatalf("backend %d served %d batch legs for one %d-query client batch, want exactly 1",
				b, got, len(qs))
		}
	}
	for i := range qs {
		if res[i].Err != nil {
			t.Fatalf("item %d: %v", i, res[i].Err)
		}
		checkBatchItem(t, pool, i, &qs[i], res[i].IDs)
	}
	if v := hub.Reg.Counter("router_batches_total").Value(); v != 1 {
		t.Fatalf("router_batches_total = %d, want 1", v)
	}
	if v := hub.Reg.Counter("router_batch_legs_total").Value(); v != uint64(len(tc.servers)) {
		t.Fatalf("router_batch_legs_total = %d, want %d (one per backend)", v, len(tc.servers))
	}
	if v := hub.Reg.Counter("router_batch_fallback_total").Value(); v != 0 {
		t.Fatalf("healthy cluster took %d batch fallbacks", v)
	}
}

// TestRouterRunQueryBatchEquivalence drives the BatchExecutor surface
// directly: mixed kinds and modes against an R=2 cluster (multi-holder
// covers exercise the sorted-dedup stitch), NN sub-queries riding along,
// and a slot the serve layer pre-rejected that must come back untouched.
func TestRouterRunQueryBatchEquivalence(t *testing.T) {
	ds := clusterDataset(t)
	pool := truthPool(t, ds)
	tc := startCluster(t, ds, 3, 2)
	r := newRouter(t, tc, nil)

	rng := rand.New(rand.NewSource(62))
	for round := 0; round < 4; round++ {
		qs := mixedBatch(rng, ds.Extent, 12)
		nnPt := geom.Point{X: 40000 * rng.Float64(), Y: 40000 * rng.Float64()}
		qs = append(qs, proto.QueryMsg{Kind: proto.KindNN, Mode: proto.ModeIDs, Point: nnPt, K: 5})
		qs = append(qs, proto.QueryMsg{Kind: proto.KindNN, Mode: proto.ModeIDs, Point: nnPt, K: 4000})
		items := make([]proto.BatchItem, len(qs))
		rejected := len(qs) - 1 // the serve layer pre-rejects over-limit k
		items[rejected].Err = proto.CodeBadRequest

		r.RunQueryBatch(qs, items, time.Time{})

		for i := range qs {
			if i == rejected {
				if items[i].Err != proto.CodeBadRequest || len(items[i].IDs) != 0 {
					t.Fatalf("round %d: pre-rejected slot was touched: %+v", round, items[i])
				}
				continue
			}
			if items[i].Err != 0 {
				t.Fatalf("round %d item %d: code %d (%s)", round, i, items[i].Err, items[i].Text)
			}
			if qs[i].Kind == proto.KindNN {
				want, _ := pool.KNearestAppend(nil, qs[i].Point, int(qs[i].K), nil)
				if len(items[i].IDs) != len(want) {
					t.Fatalf("round %d nn: %d ids, want %d", round, len(items[i].IDs), len(want))
				}
				for j, id := range items[i].IDs {
					if d := ds.Seg(id).DistToPoint(qs[i].Point); d != want[j].Dist {
						t.Fatalf("round %d nn rank %d: id %d at dist %v, truth dist %v",
							round, j, id, d, want[j].Dist)
					}
				}
				continue
			}
			checkBatchItem(t, pool, i, &qs[i], items[i].IDs)
		}
	}
}

// TestRouterBatchFallbackOnDeadBackend kills one backend of an R=2 cluster:
// every sub-query must still answer correctly (grouped legs into the corpse
// fail, their sub-queries re-run through the per-item fan-out and its
// failover), with the fallbacks visible in the router's counter.
func TestRouterBatchFallbackOnDeadBackend(t *testing.T) {
	ds := clusterDataset(t)
	pool := truthPool(t, ds)
	tc := startCluster(t, ds, 3, 2)
	hub := obs.NewHub()
	r := newRouter(t, tc, func(cfg *Config) {
		cfg.Obs = hub
		cfg.LegTimeout = 500 * time.Millisecond
	})

	tc.servers[1].Close()

	rng := rand.New(rand.NewSource(63))
	for round := 0; round < 8; round++ {
		qs := mixedBatch(rng, ds.Extent, 10)
		items := make([]proto.BatchItem, len(qs))
		r.RunQueryBatch(qs, items, time.Time{})
		for i := range qs {
			if items[i].Err != 0 {
				t.Fatalf("round %d item %d during outage: code %d (%s)",
					round, i, items[i].Err, items[i].Text)
			}
			checkBatchItem(t, pool, i, &qs[i], items[i].IDs)
		}
	}
	if v := hub.Reg.Counter("router_batch_fallback_total").Value(); v == 0 {
		t.Fatal("no batch fallbacks recorded despite a dead backend")
	}
	if v := hub.Reg.Counter("router_unroutable_total").Value(); v != 0 {
		t.Fatalf("%d sub-queries unroutable; R=2 must survive one backend", v)
	}
}

// TestRouterPicksUpAdaptiveCuts closes the adaptive loop across the wire: a
// backend pool splits a hot shard at runtime, and the router — registered
// when the backend had ONE range — must learn the new cut table through its
// summary refresh (a structural swap), grow its range view, and keep
// answering exactly.
func TestRouterPicksUpAdaptiveCuts(t *testing.T) {
	ds := clusterDataset(t)
	ranges, bounds := shard.PartitionHilbert(ds.Items(), 1, 0)
	cuts := []uint64{ranges[0].Lo}
	pool, err := mutable.New(mutable.Config{
		Dataset:         ds,
		Ranges:          ranges,
		Cuts:            cuts,
		GlobalIndex:     []int{0},
		Bounds:          bounds,
		CompactInterval: -1,
		Adaptive: mutable.AdaptiveConfig{
			Enabled:       true,
			Interval:      -1, // ticks driven by hand below
			MinShardItems: 8,
			MaxShards:     8,
		},
	})
	if err != nil {
		t.Fatalf("adaptive pool: %v", err)
	}
	t.Cleanup(pool.Close)
	infos := []proto.RangeInfo{{
		Index: 0,
		Items: uint32(len(ranges[0].Items)),
		Lo:    ranges[0].Lo,
		Hi:    ranges[0].Hi,
		MBR:   ranges[0].MBR,
	}}
	srv, err := serve.New(serve.Config{Pool: pool, Ranges: infos, NumRanges: 1})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	tc := &testCluster{ds: ds, ranges: ranges, addrs: []string{lis.Addr().String()}, servers: []*serve.Server{srv}}

	hub := obs.NewHub()
	r := newRouter(t, tc, func(cfg *Config) {
		cfg.Obs = hub
		cfg.RefreshInterval = 25 * time.Millisecond
	})
	if got := r.NumShards(); got != 1 {
		t.Fatalf("NumShards = %d at registration, want 1", got)
	}

	// Heat the pool until the repartitioner splits (driven by hand so the
	// test controls pacing; the EWMA fold needs wall time to see a rate).
	rng := rand.New(rand.NewSource(64))
	var buf []uint32
	deadline := time.Now().Add(15 * time.Second)
	for pool.Splits() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("repartitioner never split a 6000-item pool under sustained traffic")
		}
		for i := 0; i < 64; i++ {
			buf = pool.FilterRangeAppend(buf[:0], randWindow(rng, ds.Extent, 0.05))
		}
		pool.RepartitionOnce()
		time.Sleep(20 * time.Millisecond)
	}

	// The refresh loop must pick the new cut table up as a structural swap.
	deadline = time.Now().Add(10 * time.Second)
	for r.NumShards() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("router still sees %d ranges after the backend split (refresh stalled?)", r.NumShards())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if v := hub.Reg.Counter("router_refresh_structural_total").Value(); v == 0 {
		t.Fatal("range set grew without a structural refresh being counted")
	}
	// The backend stamps its topology generation into the version high bits,
	// so every post-split version the router reports reflects the new world.
	if gen := r.Version(0) >> 48; gen == 0 {
		t.Fatalf("range 0 version %#x carries no topology generation after a split", r.Version(0))
	}

	// The grown table must still route exactly.
	for i := 0; i < 20; i++ {
		w := randWindow(rng, ds.Extent, 0.02+0.2*rng.Float64())
		got, err := r.RangeAppendUntil(nil, w, time.Time{})
		if err != nil {
			t.Fatalf("post-split range %d: %v", i, err)
		}
		sameIDs(t, "post-split range", got, pool.RangeAppend(nil, w))
	}
	pt := geom.Point{X: 40000 * rng.Float64(), Y: 40000 * rng.Float64()}
	nbs, err := r.KNearestAppendUntil(nil, pt, 8, nil, time.Time{})
	if err != nil {
		t.Fatalf("post-split knn: %v", err)
	}
	want, _ := pool.KNearestAppend(nil, pt, 8, nil)
	if len(nbs) != len(want) {
		t.Fatalf("post-split knn: %d neighbors, want %d", len(nbs), len(want))
	}
	for i := range nbs {
		if nbs[i].Dist != want[i].Dist {
			t.Fatalf("post-split knn rank %d: dist %v, want %v", i, nbs[i].Dist, want[i].Dist)
		}
	}
}
