// exec.go is the range/point fan-out: relevant ranges → greedy replica
// cover → concurrent legs → failover rounds → sorted dedup merge.
package router

import (
	"slices"
	"sync"
	"time"

	"mobispatial/internal/geom"
	"mobispatial/internal/proto"
	"mobispatial/internal/serve/client"
)

// deadlineOr substitutes the default whole-query budget for a zero
// deadline.
func (r *Router) deadlineOr(deadline time.Time) time.Time {
	if deadline.IsZero() {
		return time.Now().Add(r.cfg.QueryTimeout)
	}
	return deadline
}

// legDeadline caps one leg at LegTimeout from now, never past the query
// deadline — the deadline is inherited downward, not re-applied per hop.
func (r *Router) legDeadline(deadline time.Time) time.Time {
	ld := time.Now().Add(r.cfg.LegTimeout)
	if deadline.Before(ld) {
		return deadline
	}
	return ld
}

// legFunc is one backend sub-query: append the backend's matching ids to
// dst under the leg deadline.
type legFunc func(cc *client.Client, dst []uint32, legDeadline time.Time) ([]uint32, error)

// fanIDs is the shared range/point fan-out. w is the routing window (the
// query window, or the eps-expanded point); leg runs the actual sub-query.
//
// Correctness of the merge: each selected backend answers over its whole
// local pool, so a backend holding several needed ranges answers them all
// in one leg, and two backends sharing a range may both report its items —
// the sorted dedup collapses the overlap. Completeness: every item matching
// the query lies in some range whose MBR intersects w, that range is in the
// needed set, and the cover guarantees a successful leg from one of its
// holders.
func (r *Router) fanIDs(dst []uint32, w geom.Rect, deadline time.Time, leg legFunc) ([]uint32, error) {
	deadline = r.deadlineOr(deadline)
	sc := r.getScratch()
	defer r.putScratch(sc)

	// One snapshot + growth overlay for the whole query: every routing
	// decision below sees a consistent assignment even if a refresh swaps
	// the table mid-flight.
	t := r.snap()
	grow := r.growth.Load()
	sc.needed = t.neededRanges(sc.needed[:0], w, grow.rect)
	if len(sc.needed) == 0 {
		return dst, nil
	}
	sc.covered = sc.covered[:0]
	for range sc.needed {
		sc.covered = append(sc.covered, -1)
	}
	sc.merged = sc.merged[:0]

	nLegs := 0
	for {
		if err := r.cover(t, sc); err != nil {
			r.metrics.unroutable.Inc()
			return dst, err
		}
		if len(sc.sel) == 0 {
			break // every needed range answered by an earlier round
		}
		// Run the round's legs concurrently, each into its own buffer; the
		// first leg runs on the calling goroutine.
		sc.legIDs = extendBufs(sc.legIDs, len(sc.sel))
		runLeg := func(li int, b int32) {
			start := time.Now()
			ids, err := leg(r.clients[b], sc.legIDs[li][:0], r.legDeadline(deadline))
			sc.legIDs[li] = ids
			sc.errs[b] = err
			r.observeLeg(int(b), time.Since(start), err)
		}
		var wg sync.WaitGroup
		for li := 1; li < len(sc.sel); li++ {
			wg.Add(1)
			go func(li int, b int32) {
				defer wg.Done()
				runLeg(li, b)
			}(li, sc.sel[li])
		}
		runLeg(0, sc.sel[0])
		wg.Wait()
		nLegs += len(sc.sel)

		// Successful legs contribute their answers; failed legs hand their
		// ranges back for the next round's cover (the failed backend is
		// excluded from it).
		failover := false
		for li, b := range sc.sel {
			if sc.errs[b] == nil {
				sc.merged = append(sc.merged, sc.legIDs[li]...)
				continue
			}
			failover = true
			sc.failed[b] = true
			for j := range sc.needed {
				if sc.covered[j] == b {
					sc.covered[j] = -1
				}
			}
		}
		if !failover {
			break
		}
		r.metrics.failovers.Inc()
	}
	r.metrics.fanout.Observe(float64(nLegs))

	if len(sc.merged) == 0 {
		return dst, nil
	}
	slices.Sort(sc.merged)
	dst = append(dst, sc.merged[0])
	for _, id := range sc.merged[1:] {
		if id != dst[len(dst)-1] {
			dst = append(dst, id)
		}
	}
	return dst, nil
}

// cover assigns every uncovered needed range to a healthy holder and
// collects the distinct backends into sc.sel. Holders already selected for
// another range are preferred (one leg answers all of a backend's ranges);
// otherwise the choice rotates across replicas — the read spreading.
func (r *Router) cover(t *table, sc *fanScratch) error {
	sc.sel = sc.sel[:0]
	rot := int(r.rr.Add(1))
	for j, rg := range sc.needed {
		if sc.covered[j] >= 0 {
			continue
		}
		hs := t.holders[rg]
		pick := int32(-1)
		for _, b := range hs {
			if !sc.failed[b] && r.BackendHealthy(int(b)) && containsBackend(sc.sel, b) {
				pick = b
				break
			}
		}
		if pick < 0 {
			for i := 0; i < len(hs); i++ {
				b := hs[(rot+i)%len(hs)]
				if !sc.failed[b] && r.BackendHealthy(int(b)) {
					pick = b
					break
				}
			}
		}
		if pick < 0 {
			return errUnavailable(int(rg))
		}
		sc.covered[j] = pick
		if !containsBackend(sc.sel, pick) {
			sc.sel = append(sc.sel, pick)
		}
		// The picked backend answers every range it holds in the same leg;
		// claim its other uncovered ranges too.
		for j2 := j + 1; j2 < len(sc.needed); j2++ {
			if sc.covered[j2] < 0 && t.holds[pick][sc.needed[j2]] {
				sc.covered[j2] = pick
			}
		}
	}
	return nil
}

func containsBackend(sel []int32, b int32) bool {
	for _, s := range sel {
		if s == b {
			return true
		}
	}
	return false
}

// extendBufs grows a slice-of-buffers to n entries, reusing capacity.
func extendBufs(bufs [][]uint32, n int) [][]uint32 {
	for len(bufs) < n {
		bufs = append(bufs, nil)
	}
	return bufs[:n]
}

// pointWindow is the routing window of a point query: the point expanded by
// its tolerance (the backend applies the exact predicate; the expansion
// only selects relevant ranges, so it must be at least the backend's own
// eps default).
func (r *Router) pointWindow(pt geom.Point, eps float64) geom.Rect {
	if eps <= 0 {
		eps = r.cfg.PointEps
	}
	return geom.Rect{Min: pt, Max: pt}.Expand(eps)
}

// The serve.DeadlineExecutor surface — the forms the serve layer drives
// when the pool is a Router.

// RangeAppendUntil answers a refined window query across the cluster.
func (r *Router) RangeAppendUntil(dst []uint32, w geom.Rect, deadline time.Time) ([]uint32, error) {
	return r.fanIDs(dst, w, deadline, func(cc *client.Client, dst []uint32, ld time.Time) ([]uint32, error) {
		return cc.RangeAppendUntil(dst, w, proto.ModeIDs, ld)
	})
}

// FilterRangeAppendUntil answers a filter (candidate-set) window query.
func (r *Router) FilterRangeAppendUntil(dst []uint32, w geom.Rect, deadline time.Time) ([]uint32, error) {
	return r.fanIDs(dst, w, deadline, func(cc *client.Client, dst []uint32, ld time.Time) ([]uint32, error) {
		return cc.RangeAppendUntil(dst, w, proto.ModeFilter, ld)
	})
}

// PointAppendUntil answers a refined point query with tolerance eps (0 =
// backend default).
func (r *Router) PointAppendUntil(dst []uint32, pt geom.Point, eps float64, deadline time.Time) ([]uint32, error) {
	return r.fanIDs(dst, r.pointWindow(pt, eps), deadline, func(cc *client.Client, dst []uint32, ld time.Time) ([]uint32, error) {
		return cc.PointAppendUntil(dst, pt, eps, proto.ModeIDs, ld)
	})
}

// FilterPointAppendUntil answers a filter point query.
func (r *Router) FilterPointAppendUntil(dst []uint32, pt geom.Point, deadline time.Time) ([]uint32, error) {
	return r.fanIDs(dst, r.pointWindow(pt, 0), deadline, func(cc *client.Client, dst []uint32, ld time.Time) ([]uint32, error) {
		return cc.PointAppendUntil(dst, pt, 0, proto.ModeFilter, ld)
	})
}

// The plain serve.Executor surface. The serve layer never drives these on a
// Router (it prefers the deadline forms), but the interface keeps a Router
// drop-in wherever an Executor fits (tests, tools). Fan-out failures
// degrade to the empty/partial answer here because the plain surface has no
// error channel.

// FilterRangeAppend implements serve.Executor.
func (r *Router) FilterRangeAppend(dst []uint32, w geom.Rect) []uint32 {
	dst, _ = r.FilterRangeAppendUntil(dst, w, time.Time{})
	return dst
}

// FilterPointAppend implements serve.Executor.
func (r *Router) FilterPointAppend(dst []uint32, pt geom.Point) []uint32 {
	dst, _ = r.FilterPointAppendUntil(dst, pt, time.Time{})
	return dst
}

// RangeAppend implements serve.Executor.
func (r *Router) RangeAppend(dst []uint32, w geom.Rect) []uint32 {
	dst, _ = r.RangeAppendUntil(dst, w, time.Time{})
	return dst
}

// PointAppend implements serve.Executor.
func (r *Router) PointAppend(dst []uint32, pt geom.Point, eps float64) []uint32 {
	dst, _ = r.PointAppendUntil(dst, pt, eps, time.Time{})
	return dst
}
