// Package router is the coordinator of the distributed serving tier: one
// process holding a shard→server assignment table of contiguous Hilbert key
// ranges with R-way replication, fanning each client query out to the
// backends that own the touched ranges and merging their replies.
//
// The router speaks the same framed protocol on both sides. Client-facing,
// it IS a serve.Server: Router implements serve.Executor and
// serve.DeadlineExecutor, so cmd/mqrouter wires it as the server's pool and
// existing clients (mqload, the planner, the soak tests) work unchanged.
// Backend-facing, it drives pooled serve/client connections — inheriting
// their retry, backoff, and per-backend circuit breakers.
//
// Routing metadata comes from the backends themselves at registration: each
// answers MsgSummaryReq with the Hilbert key ranges it holds, per-range item
// counts and MBRs, and its overall bounds. The table derived from the
// summaries drives three decisions:
//
//   - relevance: a range is fanned to only when its MBR can contain a match
//     (window intersection, eps-expanded point containment);
//   - replica spreading: among the backends holding a range, reads rotate
//     round-robin, with backends whose breaker is open skipped;
//   - NN scheduling: backends are visited best-first by MINDIST of their
//     bounds, carrying the running k-th-neighbor bound so later backends
//     prune whole shards (shard.Pool's KNearestBoundedAppend) and backends
//     whose bounds cannot beat the bound are never contacted at all.
//
// Failures fail over, not fail: a leg that errors marks its backend failed
// for the query, its ranges are re-covered from surviving replicas, and the
// query completes as long as every touched range keeps one healthy holder.
// Only when a needed range has no healthy replica does the router answer
// CodeUnavailable (transient, retried by clients like overload).
//
// The routing table is a live snapshot, not a registration-time constant.
// The world is mutable (internal/mutable): objects insert and move after the
// backends reported their summaries, so MBRs captured at registration go
// stale — an object written outside its range's registered MBR (or into a
// range that registered empty) would be invisible to range/point routing and
// could be mis-pruned by the NN visit order. Two mechanisms close the gap:
//
//   - refresh: a background loop re-polls backend summaries every
//     RefreshInterval and atomically swaps in a freshly built table
//     (epoch-swap discipline: build aside, swap a pointer, never mutate a
//     table readers may hold);
//   - growth: between refreshes, every write acked through this router
//     widens an overlay rect for its target range (and the holders' backend
//     bounds) immediately, before the write is acknowledged to the client —
//     so read-your-writes holds at the routing layer without waiting for
//     the next poll.
//
// The same plumbing makes the cluster cacheable: Router implements
// qcache.Source — each range is a pseudo-shard whose version is the minimum
// write-version its holders reported plus the count of writes this router
// has routed into it since — so a serve.Server wrapping a Router can run
// the epoch-invalidated result cache (-qcache) and stamp replies with
// cluster-wide epoch hints for the client semantic cache.
package router

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/hilbert"
	"mobispatial/internal/obs"
	"mobispatial/internal/proto"
	"mobispatial/internal/serve/client"
	"mobispatial/internal/shard"
)

// Config parameterizes a Router.
type Config struct {
	// Backends are the shard servers' addresses; the slice index is the
	// backend id everywhere in this package. Required, at least one.
	Backends []string
	// Dataset is the full deterministic dataset (ids are cluster-global, so
	// the router resolves record geometry locally instead of shipping it
	// from backends). Required.
	Dataset *dataset.Dataset
	// ConnsPerBackend caps pooled connections (and outstanding legs) per
	// backend; defaults to 4.
	ConnsPerBackend int
	// LegTimeout is one backend leg's time budget; defaults to 1s. It is
	// deliberately below the serve default 5s query deadline so a failed
	// leg leaves room to fail over within the client's deadline.
	LegTimeout time.Duration
	// QueryTimeout is the whole-query budget used when the caller supplies
	// no deadline; defaults to 5s.
	QueryTimeout time.Duration
	// RegisterTimeout bounds the registration handshake — backends are
	// polled until they all answer their summary; defaults to 10s.
	RegisterTimeout time.Duration
	// RefreshInterval is the summary re-poll period of the routing-table
	// refresh loop; defaults to 250ms. Negative disables refresh (the
	// table then stays frozen at registration, softened only by this
	// router's own write growth — appropriate for read-only clusters and
	// allocation-sensitive benchmarks).
	RefreshInterval time.Duration
	// PointEps is the tolerance used to route point queries whose eps is
	// unset; it must be at least the backends' own default (it only selects
	// which ranges are relevant, the backends apply the exact predicate).
	// Defaults to 2.0, mirroring serve.DefaultPointEps.
	PointEps float64
	// MaxKNN caps k on NN legs; defaults to 1024.
	MaxKNN int
	// Breaker is the per-backend circuit breaker; enabled by default with a
	// threshold of 3 failures and a 500ms probe interval.
	Breaker client.BreakerConfig
	// Obs receives the router metrics; nil disables them.
	Obs *obs.Hub
	// Dial overrides the backend transport (tests slot faultlink here).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
}

func (c *Config) fill() error {
	if len(c.Backends) == 0 {
		return fmt.Errorf("router: Config.Backends is required")
	}
	if c.Dataset == nil {
		return fmt.Errorf("router: Config.Dataset is required")
	}
	if c.ConnsPerBackend <= 0 {
		c.ConnsPerBackend = 4
	}
	if c.LegTimeout <= 0 {
		c.LegTimeout = time.Second
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 5 * time.Second
	}
	if c.RegisterTimeout <= 0 {
		c.RegisterTimeout = 10 * time.Second
	}
	if c.RefreshInterval == 0 {
		c.RefreshInterval = 250 * time.Millisecond
	}
	if c.PointEps <= 0 {
		c.PointEps = 2.0
	}
	if c.MaxKNN <= 0 {
		c.MaxKNN = 1024
	}
	if !c.Breaker.Enabled {
		c.Breaker = client.BreakerConfig{
			Enabled:          true,
			FailureThreshold: 3,
			ProbeInterval:    500 * time.Millisecond,
		}
	}
	return nil
}

// Router is the coordinator. It is safe for any number of concurrent
// callers; per-query state lives in a pooled fanScratch.
type Router struct {
	cfg     Config
	ds      *dataset.Dataset
	clients []*client.Client // one pooled client per backend
	// tbl is the current routing snapshot. Readers load it once per query
	// and work against an immutable table; the refresh loop swaps in a
	// replacement built from re-polled summaries.
	tbl atomic.Pointer[table]
	// summaries holds the latest summary per backend — the refresh loop's
	// working set (touched only by register and the refresh goroutine; an
	// unreachable backend keeps its last answer so the rest of the cluster
	// still refreshes).
	summaries []*proto.SummaryMsg
	// wmu orders the freshness plane's writers: growth copy-on-write,
	// wseq bumps, and the refresh swap all happen under it, so a reader
	// that observes a bumped sequence also observes the widened predicate.
	wmu sync.Mutex
	// growth widens the snapshot's routing predicates with the MBRs of
	// writes routed since the snapshot's summaries — read-your-writes for
	// routing, cleared per range by the refresh loop once a newer summary
	// provably covers the writes.
	growth atomic.Pointer[growthState]
	// wseq[r] counts writes this router has routed into range r — the
	// cumulative half of the cluster version vector. The vector is held
	// behind a pointer because a STRUCTURAL refresh (an adaptive backend
	// split or merged a range, changing the range count or key cuts)
	// replaces it wholesale: the old indices no longer mean anything. It
	// never resets otherwise (the summary-reported half catches up across
	// refreshes and the sum stays monotone); across a structural swap,
	// monotonicity of Version is carried by the backends' generation-
	// encoded range versions, which jump by far more than any dropped
	// write count.
	wseq atomic.Pointer[[]atomic.Uint64]
	// rr rotates replica choice across queries — the read-spreading
	// counter.
	rr      atomic.Uint64
	scratch sync.Pool // *fanScratch
	metrics routerMetrics

	// wq is the cluster's write-routing quantizer — the exact recipe
	// (shard.WriteKey over shard.BoundsOf of the deterministic item set)
	// the backends partitioned under, so router and backends agree on
	// every object's owning range.
	wq *hilbert.Quantizer
	// all lists every backend id — the broadcast target of moves and
	// deletes.
	all []int32
	// liveMu guards live, the geometry of objects written through this
	// router — how data-mode responses resolve records the base dataset
	// has never heard of (or whose position has moved).
	liveMu sync.RWMutex
	live   map[uint32]geom.Segment

	stopc     chan struct{}
	probeWG   sync.WaitGroup
	closeOnce sync.Once
}

// growthState is the write-growth overlay over one routing snapshot:
// per-range and per-backend rects unioned from the MBRs of writes routed
// since the snapshot's summaries were taken. Immutable once published —
// noteWrite replaces it copy-on-write under wmu.
type growthState struct {
	rect []geom.Rect // per range: growth beyond the snapshot's rangeMBR
	be   []geom.Rect // per backend: growth beyond the snapshot's beBounds
}

func emptyGrowth(numRanges, numBackends int) *growthState {
	g := &growthState{
		rect: make([]geom.Rect, numRanges),
		be:   make([]geom.Rect, numBackends),
	}
	for i := range g.rect {
		g.rect[i] = geom.EmptyRect()
	}
	for i := range g.be {
		g.be[i] = geom.EmptyRect()
	}
	return g
}

// New dials nothing, registers against every backend (polling until
// RegisterTimeout), builds the assignment table, and returns a ready
// Router.
func New(cfg Config) (*Router, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	r := &Router{
		cfg:     cfg,
		ds:      cfg.Dataset,
		metrics: newRouterMetrics(cfg.Obs, cfg.Backends),
		stopc:   make(chan struct{}),
		wq:      shard.QuantizerFor(shard.BoundsOf(cfg.Dataset.Items()), 0),
		live:    make(map[uint32]geom.Segment),
	}
	for b := range cfg.Backends {
		r.all = append(r.all, int32(b))
	}
	for _, addr := range cfg.Backends {
		// Backend clients keep retries at 1: the router's own failover is
		// the retry policy, a leg that fails should move to a replica, not
		// hammer the same backend. Obs stays nil — all backend clients
		// would share one metric namespace; the router's own metrics carry
		// the per-backend labels instead.
		cc, err := client.New(client.Config{
			Addr:           addr,
			Conns:          cfg.ConnsPerBackend,
			RequestTimeout: cfg.LegTimeout,
			MaxRetries:     1,
			Breaker:        cfg.Breaker,
			Dial:           cfg.Dial,
		})
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("router: backend %s: %w", addr, err)
		}
		r.clients = append(r.clients, cc)
	}
	if err := r.register(); err != nil {
		r.Close()
		return nil, err
	}
	r.scratch.New = func() any { return &fanScratch{} }
	r.metrics.backends.Set(float64(len(r.clients)))
	r.metrics.ranges.Set(float64(r.tbl.Load().numRanges))
	r.probeWG.Add(1)
	go r.probeLoop()
	if cfg.RefreshInterval > 0 {
		r.probeWG.Add(1)
		go r.refreshLoop()
	}
	return r, nil
}

// probeLoop re-admits tripped backends. The cover and the NN visit skip a
// backend whose breaker is open, so no query ever reaches it again — which
// means the breaker's own half-open probe (triggered by traffic) would never
// fire and an outage would eject the backend permanently. This loop is the
// missing traffic: it pings every open-breaker backend each probe interval,
// letting the breaker run its half-open protocol and close when the backend
// is back.
func (r *Router) probeLoop() {
	defer r.probeWG.Done()
	interval := r.cfg.Breaker.ProbeInterval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-r.stopc:
			return
		case <-tick.C:
		}
		for b, cc := range r.clients {
			if cc.BreakerState() != client.BreakerOpen {
				continue
			}
			// The ping flows through the breaker gate, so it IS the
			// half-open probe; its failure keeps the breaker open.
			_, err := cc.Ping(0)
			healthy := 0.0
			if err == nil && r.BackendHealthy(b) {
				healthy = 1
			}
			r.metrics.beHealthy[b].Set(healthy)
		}
	}
}

// register polls every backend for its summary until all have answered or
// RegisterTimeout passes, then builds the assignment table and seeds the
// freshness plane (empty growth, zero write sequences).
func (r *Router) register() error {
	deadline := time.Now().Add(r.cfg.RegisterTimeout)
	summaries := make([]*proto.SummaryMsg, len(r.clients))
	for {
		missing := 0
		var lastErr error
		for i, cc := range r.clients {
			if summaries[i] != nil {
				continue
			}
			sm, err := cc.Summary()
			if err != nil {
				missing++
				lastErr = fmt.Errorf("backend %s: %w", r.cfg.Backends[i], err)
				continue
			}
			summaries[i] = sm
		}
		if missing == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("router: registration timed out, %d backends unreachable: %v", missing, lastErr)
		}
		time.Sleep(200 * time.Millisecond)
	}
	tbl, err := buildTable(summaries)
	if err != nil {
		return fmt.Errorf("router: %w", err)
	}
	r.summaries = summaries
	r.tbl.Store(&tbl)
	seqs := make([]atomic.Uint64, tbl.numRanges)
	r.wseq.Store(&seqs)
	r.growth.Store(emptyGrowth(tbl.numRanges, len(r.clients)))
	return nil
}

// wseqAt reads one write sequence, tolerating the transient skew between the
// table snapshot and the sequence vector around a structural refresh: an
// index beyond the current vector reads as zero (the fresh vector starts
// there anyway).
func (r *Router) wseqAt(i int) uint64 {
	ws := *r.wseq.Load()
	if i >= len(ws) {
		return 0
	}
	return ws[i].Load()
}

// refreshLoop re-polls backend summaries and swaps the routing snapshot —
// how writes applied by OTHER routers (or directly at a backend) become
// visible to this router's routing predicates, and how the write-growth
// overlay drains back to exact backend-reported MBRs.
func (r *Router) refreshLoop() {
	defer r.probeWG.Done()
	// Jittered sleeps (±20% of the interval) instead of a fixed ticker: a
	// fleet of routers started together against the same backends would
	// otherwise poll summaries in lockstep, hitting every backend with a
	// synchronized burst each period. The jitter decorrelates them; one
	// router's mean refresh period is unchanged.
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	timer := time.NewTimer(jitterInterval(rng, r.cfg.RefreshInterval))
	defer timer.Stop()
	for {
		select {
		case <-r.stopc:
			return
		case <-timer.C:
		}
		r.refreshOnce()
		timer.Reset(jitterInterval(rng, r.cfg.RefreshInterval))
	}
}

// jitterInterval spreads d uniformly over [0.8d, 1.2d].
func jitterInterval(rng *rand.Rand, d time.Duration) time.Duration {
	return d + time.Duration((rng.Float64()-0.5)*0.4*float64(d))
}

// refreshOnce polls one summary round and, if anything answered, swaps in a
// rebuilt table. Correctness of the growth clearing: a range's growth rect
// may be dropped only when the new summaries provably cover every write
// behind it. wseq[rg] is captured BEFORE the first poll; a write acked
// before the capture was applied at its backends before the capture, so any
// summary polled after the capture reflects it. If wseq[rg] moved during
// the poll, a write may have landed after some backend answered — the rect
// is kept for the next round (conservative: a too-wide predicate only costs
// an extra leg, a too-narrow one loses objects).
func (r *Router) refreshOnce() {
	ws := *r.wseq.Load()
	before := make([]uint64, len(ws))
	for i := range ws {
		before[i] = ws[i].Load()
	}
	polled := false
	for i, cc := range r.clients {
		if cc.BreakerState() == client.BreakerOpen {
			continue // keep the last summary; probeLoop re-admits it
		}
		sm, err := cc.Summary()
		if err != nil {
			r.metrics.refreshErrors.Inc()
			continue
		}
		r.summaries[i] = sm
		polled = true
	}
	if !polled {
		return
	}
	tbl, err := buildTable(r.summaries)
	if err != nil {
		r.metrics.refreshErrors.Inc()
		return
	}
	old := r.tbl.Load()
	if structuralChange(&tbl, old) {
		// An adaptive backend repartitioned: the range count or the key
		// cuts changed, so every per-range index — write sequences, growth
		// rects, versions — refers to ranges that no longer exist. Swap in
		// the new table with a fresh (zeroed) sequence vector. Version
		// monotonicity survives the reset because adaptive backends encode
		// their topology generation in the high bits of every range version
		// (mutable's gen<<48), which dwarfs any dropped write count.
		//
		// Growth cannot be mapped range-to-range (the rects carry no keys),
		// so the union of all old growth is applied to EVERY new range that
		// had any: conservative — a too-wide predicate costs extra legs for
		// one refresh interval, and the rects drain on the next refresh
		// like any other growth.
		r.wmu.Lock()
		carry := geom.EmptyRect()
		g := r.growth.Load()
		for rg := range g.rect {
			if r.wseqAt(rg) != before[rg] || !g.rect[rg].IsEmpty() {
				carry = carry.Union(g.rect[rg])
			}
		}
		ng := emptyGrowth(tbl.numRanges, len(r.clients))
		if !carry.IsEmpty() {
			for rg := range ng.rect {
				ng.rect[rg] = carry
			}
			for b := range ng.be {
				ng.be[b] = carry
			}
		}
		r.tbl.Store(&tbl)
		seqs := make([]atomic.Uint64, tbl.numRanges)
		// Every new range starts one write up: the reset would otherwise
		// leave Version momentarily equal for caches built against the
		// carried growth; the bump forces every consumer to re-validate.
		for i := range seqs {
			seqs[i].Store(1)
		}
		r.wseq.Store(&seqs)
		r.growth.Store(ng)
		r.wmu.Unlock()
		r.metrics.refreshes.Inc()
		r.metrics.structuralRefreshes.Inc()
		r.metrics.ranges.Set(float64(tbl.numRanges))
		return
	}
	// Per-range versions must never go backwards (a cache entry stored
	// under a higher version would resurrect if they did). A returning
	// replica that lagged can drag the min-across-holders down; clamp to
	// the previous snapshot.
	for i := range tbl.version {
		if tbl.version[i] < old.version[i] {
			tbl.version[i] = old.version[i]
		}
	}
	r.wmu.Lock()
	r.tbl.Store(&tbl)
	g := r.growth.Load()
	ng := emptyGrowth(tbl.numRanges, len(r.clients))
	for rg := range ng.rect {
		if r.wseqAt(rg) != before[rg] {
			ng.rect[rg] = g.rect[rg]
		}
	}
	for rg, rect := range ng.rect {
		if rect.IsEmpty() {
			continue
		}
		for _, b := range tbl.holders[rg] {
			ng.be[b] = ng.be[b].Union(rect)
		}
	}
	r.growth.Store(ng)
	r.wmu.Unlock()
	r.metrics.refreshes.Inc()
	divergent := 0
	for _, d := range tbl.divergent {
		if d {
			divergent++
		}
	}
	r.metrics.divergentRanges.Set(float64(divergent))
}

// structuralChange reports whether two tables describe different range
// structures — a different range count or different Hilbert key cuts. Same
// structure with different MBRs/versions/items is an ordinary refresh.
func structuralChange(a, b *table) bool {
	if a.numRanges != b.numRanges {
		return true
	}
	for i := range a.keyLo {
		if a.keyLo[i] != b.keyLo[i] {
			return true
		}
	}
	return false
}

// snap returns the current routing snapshot. The returned table is
// immutable; callers load it once and use it for the whole query so every
// decision within the query sees one consistent assignment.
func (r *Router) snap() *table { return r.tbl.Load() }

// Router is the cluster's qcache.Source: each Hilbert range is a
// pseudo-shard of the validity view, so a serve.Server wrapping a Router
// can run the epoch-invalidated result cache over the whole cluster.

// NumShards implements qcache.Source — one pseudo-shard per range.
func (r *Router) NumShards() int { return r.snap().numRanges }

// Version implements qcache.Source. The version of range i is the minimum
// write-version its holders reported at the last refresh plus the writes
// this router has routed into it since. Both halves are monotone (the
// summary half is clamped at refresh, wseq never resets), so the sum never
// goes backwards; it advances on every local write immediately (bumped
// before the write acks) and on every refresh that observed remote writes.
// Spurious advances (a refresh catching up to writes wseq already counted)
// only cost cache misses, never staleness.
func (r *Router) Version(i int) uint64 {
	return r.snap().version[i] + r.wseqAt(i)
}

// ShardBounds implements qcache.Source: the range's summary MBR widened by
// its write growth. A divergent range reports unbounded extent — a lagging
// replica's items are not bounded by the merged MBR, so every cached region
// must treat the range as a participant.
func (r *Router) ShardBounds(i int) geom.Rect {
	t := r.snap()
	if t.divergent[i] {
		return everythingRect
	}
	return t.rangeMBR[i].Union(r.growth.Load().rect[i])
}

// everythingRect is the all-covering routing predicate used where a range's
// true extent cannot be trusted.
var everythingRect = geom.Rect{
	Min: geom.Point{X: math.Inf(-1), Y: math.Inf(-1)},
	Max: geom.Point{X: math.Inf(1), Y: math.Inf(1)},
}

// noteWrite publishes one successfully acked write into the freshness
// plane. target is the range that received the object's geometry (-1 for
// deletes, which add none); bumps lists every range whose cached results
// the write invalidates. The growth rects widen before the sequences bump,
// both under wmu — a reader that observes the new version also observes
// the widened predicate, so a cache rebuilt after the bump routes to the
// written object.
func (r *Router) noteWrite(t *table, mbr geom.Rect, target int, bumps ...int) {
	r.wmu.Lock()
	if target >= 0 {
		old := r.growth.Load()
		ng := &growthState{
			rect: append([]geom.Rect(nil), old.rect...),
			be:   append([]geom.Rect(nil), old.be...),
		}
		if cur := r.tbl.Load(); cur != t && structuralChange(t, cur) {
			// A structural refresh swapped the range set while this write
			// was in flight: the writer's target index describes a key span
			// that no longer exists. Widen every range instead —
			// conservative (extra legs for one interval), never a hole.
			for rg := range ng.rect {
				ng.rect[rg] = ng.rect[rg].Union(mbr)
			}
			for b := range ng.be {
				ng.be[b] = ng.be[b].Union(mbr)
			}
		} else {
			ng.rect[target] = ng.rect[target].Union(mbr)
			for _, b := range t.holders[target] {
				ng.be[b] = ng.be[b].Union(mbr)
			}
		}
		r.growth.Store(ng)
	}
	ws := *r.wseq.Load()
	for _, rg := range bumps {
		if rg < len(ws) { // a structural refresh may have shrunk the vector
			ws[rg].Add(1)
		}
	}
	r.wmu.Unlock()
}

// bumpAllRanges invalidates every range — the fallback when a write's old
// position is unknown and the ranges it touched cannot be narrowed down.
func (r *Router) bumpAllRanges() {
	r.wmu.Lock()
	ws := *r.wseq.Load()
	for i := range ws {
		ws[i].Add(1)
	}
	r.wmu.Unlock()
}

// Close stops the probe loop and closes every backend client.
func (r *Router) Close() error {
	r.closeOnce.Do(func() { close(r.stopc) })
	r.probeWG.Wait()
	for _, cc := range r.clients {
		if cc != nil {
			cc.Close()
		}
	}
	return nil
}

// Workers reports the router's concurrency width — the serve layer sizes
// its admission window from it. Legs are bounded by the per-backend
// connection pools, so the product is the honest fan-out capacity.
func (r *Router) Workers() int { return r.cfg.ConnsPerBackend * len(r.clients) }

// Dataset returns the cluster's dataset (for ModeData record resolution).
func (r *Router) Dataset() *dataset.Dataset { return r.ds }

// NumRanges returns the cluster-wide Hilbert range count.
func (r *Router) NumRanges() int { return r.snap().numRanges }

// BackendHealthy reports whether backend b's circuit breaker admits
// traffic.
func (r *Router) BackendHealthy(b int) bool {
	return r.clients[b].BreakerState() != client.BreakerOpen
}

// routerError is a fan-out failure carrying its wire code; the serve layer
// surfaces it via the ErrCode method (serve.errToCode).
type routerError struct {
	code proto.ErrCode
	msg  string
}

func (e *routerError) Error() string          { return e.msg }
func (e *routerError) ErrCode() proto.ErrCode { return e.code }

// errUnavailable builds the no-healthy-replica failure for one range.
func errUnavailable(rangeIdx int) error {
	return &routerError{
		code: proto.CodeUnavailable,
		msg:  fmt.Sprintf("router: no healthy replica for range %d", rangeIdx),
	}
}

// fanScratch is the pooled per-query fan-out state.
type fanScratch struct {
	needed  []int32           // relevant range indices
	covered []int32           // mirrors needed: backend covering it, -1 = uncovered
	sel     []int32           // backends selected this round
	failed  []bool            // backend id -> failed during this query
	status  []legStatus       // per-backend NN visit status
	legIDs  [][]uint32        // per-leg result buffers (range/point merge)
	merged  []uint32          // merge accumulator
	order   []shard.IndexDist // NN visit order (ascending MINDIST)
	beEff   []geom.Rect       // NN effective backend bounds (snapshot ∪ growth)
	nbrBuf  []proto.Neighbor  // NN leg reply buffer
	nbrTmp  []proto.Neighbor  // NN merge temp
	acc     []proto.Neighbor  // NN running best-k
	errs    []error           // per-backend errors of one round
}

func (r *Router) getScratch() *fanScratch {
	sc := r.scratch.Get().(*fanScratch)
	n := len(r.clients)
	if cap(sc.failed) < n {
		sc.failed = make([]bool, n)
		sc.status = make([]legStatus, n)
		sc.errs = make([]error, n)
	}
	sc.failed = sc.failed[:n]
	sc.status = sc.status[:n]
	sc.errs = sc.errs[:n]
	for i := range sc.failed {
		sc.failed[i] = false
		sc.status[i] = legUntouched
		sc.errs[i] = nil
	}
	return sc
}

func (r *Router) putScratch(sc *fanScratch) { r.scratch.Put(sc) }
