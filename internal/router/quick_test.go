package router

import (
	"math/rand"
	"net"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"mobispatial/internal/geom"
	"mobispatial/internal/proto"
	"mobispatial/internal/serve"
	"mobispatial/internal/serve/client"
)

// quickWindow is a testing/quick-generated query window inside the test
// extent; Generate implements quick.Generator.
type quickWindow struct{ W geom.Rect }

func (quickWindow) Generate(rng *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(quickWindow{W: randWindow(rng, geom.Rect{
		Min: geom.Point{X: 0, Y: 0},
		Max: geom.Point{X: 40000, Y: 40000},
	}, 0.01+0.25*rng.Float64())})
}

// quickPoint is a testing/quick-generated query point with a k.
type quickPoint struct {
	Pt geom.Point
	K  int
}

func (quickPoint) Generate(rng *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(quickPoint{
		Pt: geom.Point{X: 40000 * rng.Float64(), Y: 40000 * rng.Float64()},
		K:  1 + rng.Intn(16),
	})
}

// TestRouterQuickEquivalence pins router answers against a single monolithic
// serve instance over the same dataset, both reached through the wire
// protocol: whatever testing/quick draws, the routed cluster and the one
// big server must agree on id sets and exact NN distances.
func TestRouterQuickEquivalence(t *testing.T) {
	ds := clusterDataset(t)
	tc := startCluster(t, ds, 3, 2)
	r := newRouter(t, tc, nil)

	// The monolithic reference server plus its wire client.
	mono, err := serve.New(serve.Config{Pool: truthPool(t, ds)})
	if err != nil {
		t.Fatalf("mono server: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go mono.Serve(lis)
	t.Cleanup(func() { mono.Close() })
	cc, err := client.New(client.Config{Addr: lis.Addr().String(), Conns: 2})
	if err != nil {
		t.Fatalf("mono client: %v", err)
	}
	t.Cleanup(func() { cc.Close() })

	qc := &quick.Config{MaxCount: 40}

	ranges := func(q quickWindow) bool {
		got, err := r.RangeAppendUntil(nil, q.W, time.Time{})
		if err != nil {
			t.Logf("router range: %v", err)
			return false
		}
		want, err := cc.RangeAppendUntil(nil, q.W, proto.ModeIDs, time.Time{})
		if err != nil {
			t.Logf("mono range: %v", err)
			return false
		}
		return equalIDSets(got, want)
	}
	if err := quick.Check(ranges, qc); err != nil {
		t.Errorf("range property: %v", err)
	}

	points := func(q quickPoint) bool {
		got, err := r.PointAppendUntil(nil, q.Pt, 0, time.Time{})
		if err != nil {
			t.Logf("router point: %v", err)
			return false
		}
		want, err := cc.PointAppendUntil(nil, q.Pt, 0, proto.ModeIDs, time.Time{})
		if err != nil {
			t.Logf("mono point: %v", err)
			return false
		}
		return equalIDSets(got, want)
	}
	if err := quick.Check(points, qc); err != nil {
		t.Errorf("point property: %v", err)
	}

	knn := func(q quickPoint) bool {
		got, err := r.KNearestAppendUntil(nil, q.Pt, q.K, nil, time.Time{})
		if err != nil {
			t.Logf("router knn: %v", err)
			return false
		}
		want, err := cc.KNearestNeighborsAppendUntil(nil, q.Pt, q.K, 0, time.Time{})
		if err != nil {
			t.Logf("mono knn: %v", err)
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Dist != want[i].Dist {
				return false
			}
			if d := ds.Seg(got[i].ID).DistToPoint(q.Pt); d != got[i].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(knn, qc); err != nil {
		t.Errorf("knn property: %v", err)
	}
}

func equalIDSets(a, b []uint32) bool {
	sa, sb := sortedCopy(a), sortedCopy(b)
	if len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}
