package router

// refresh_test.go exercises the freshness plane the router builds on top of
// its registration snapshot: the background summary re-poll (writes applied
// directly at a backend become routable without this router seeing them),
// the qcache.Source surface (per-range version vector + conservative
// bounds), and the router-tier result cache wired through the serve layer.

import (
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"mobispatial/internal/geom"
	"mobispatial/internal/qcache"
	"mobispatial/internal/serve"
	"mobispatial/internal/serve/client"
)

// TestRouterRefreshSeesDirectWrites: a write applied straight at a backend
// pool — bypassing this router entirely, as a second router or an operator
// backfill would — must become visible here within a few refresh periods.
// The growth overlay can't help (this router never saw the write); only the
// summary re-poll carries the backend's widened MBR and bumped version back.
func TestRouterRefreshSeesDirectWrites(t *testing.T) {
	ds := clusterDataset(t)
	const emptyRg = 2
	tc, pools, _, stripped := startSparseCluster(t, ds, 4, emptyRg)
	r := newRouter(t, tc, func(cfg *Config) { cfg.RefreshInterval = 30 * time.Millisecond })

	id := uint32(ds.Len() + 202)
	seg := ds.Seg(stripped[2].ID)
	if _, _, owned, err := pools[emptyRg].ApplyInsert(id, seg); err != nil || !owned {
		t.Fatalf("direct backend insert: owned=%v err=%v", owned, err)
	}

	v0 := r.Version(emptyRg)
	deadline := time.Now().Add(10 * time.Second)
	for {
		ids, err := r.RangeAppendUntil(nil, seg.MBR(), time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if containsU32(ids, id) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("direct write %d never became routable (refresh stalled?)", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The re-polled summary must also have moved the range's version, so a
	// result cache keyed on this router's version vector invalidates too.
	waitV := time.Now().Add(10 * time.Second)
	for r.Version(emptyRg) == v0 {
		if time.Now().After(waitV) {
			t.Fatalf("range %d version stuck at %d after a backend write", emptyRg, v0)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRouterSourceVersions pins the Source contract the result cache keys
// on: a write routed through the router bumps the touched range's version
// immediately (before the next refresh lands), and the conservative bounds
// cover the written geometry.
func TestRouterSourceVersions(t *testing.T) {
	ds := clusterDataset(t)
	const emptyRg = 2
	tc, _, _, stripped := startSparseCluster(t, ds, 4, emptyRg)
	r := newRouter(t, tc, func(cfg *Config) { cfg.RefreshInterval = -1 })

	if got := r.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d, want 4", got)
	}
	before := make([]uint64, 4)
	for i := range before {
		before[i] = r.Version(i)
	}
	seg := ds.Seg(stripped[0].ID)
	if _, _, _, err := r.ApplyInsert(uint32(ds.Len()+303), seg); err != nil {
		t.Fatal(err)
	}
	if got := r.Version(emptyRg); got <= before[emptyRg] {
		t.Fatalf("range %d version %d did not advance past %d after a routed write",
			emptyRg, got, before[emptyRg])
	}
	if !r.ShardBounds(emptyRg).Intersects(seg.MBR()) {
		t.Fatalf("ShardBounds(%d) = %v does not cover the routed write %v",
			emptyRg, r.ShardBounds(emptyRg), seg.MBR())
	}
	for i := 0; i < 4; i++ {
		if i != emptyRg && r.Version(i) != before[i] {
			t.Fatalf("untouched range %d version moved %d -> %d", i, before[i], r.Version(i))
		}
	}
}

// TestRouterSourceZeroAlloc: building a validity view over the router — the
// per-query freshness check on the cache hit path — must not allocate.
// Refresh is disabled so AllocsPerRun (a process-global malloc count) sees
// only the view build itself.
func TestRouterSourceZeroAlloc(t *testing.T) {
	ds := clusterDataset(t)
	tc := startCluster(t, ds, 3, 2)
	r := newRouter(t, tc, func(cfg *Config) { cfg.RefreshInterval = -1 })

	rng := rand.New(rand.NewSource(7))
	w := randWindow(rng, ds.Extent, 0.1)
	var v qcache.View
	qcache.BuildView(r, w, &v)
	allocs := testing.AllocsPerRun(200, func() {
		qcache.BuildView(r, w, &v)
	})
	if allocs != 0 {
		t.Fatalf("BuildView over the router allocates %.1f times per call, want 0", allocs)
	}
}

// TestRouterCacheEquivalenceUnderWrites wires the full stack the way
// mqrouter -qcache does — client -> serve.Server{Pool: Router, Cache} ->
// backends — and checks that cached answers stay identical to the router's
// own uncached fan-out while writes interleave with a repeated hotspot, and
// that the hotspot actually hits the cache.
func TestRouterCacheEquivalenceUnderWrites(t *testing.T) {
	ds := clusterDataset(t)
	tc, _, _ := startMutableCluster(t, ds, 3, 2)
	r := newRouter(t, tc, nil)

	qc := qcache.New(qcache.Config{MaxBytes: 8 << 20})
	srv, err := serve.New(serve.Config{Pool: r, Cache: qc})
	if err != nil {
		t.Fatalf("router-tier server: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	c, err := client.New(client.Config{Addr: lis.Addr().String(), Conns: 1})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	t.Cleanup(func() { c.Close() })

	rng := rand.New(rand.NewSource(99))
	hot := make([]geom.Rect, 4)
	for i := range hot {
		hot[i] = randWindow(rng, ds.Extent, 0.05)
	}
	for round := 0; round < 6; round++ {
		for wi, w := range hot {
			got, err := c.RangeIDs(w)
			if err != nil {
				t.Fatalf("round %d window %d: %v", round, wi, err)
			}
			want, err := r.RangeAppendUntil(nil, w, time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			sameIDs(t, fmt.Sprintf("round %d window %d", round, wi), got, want)
		}
		// A write into the hottest window: the very next cached read must
		// include it — per-range version invalidation end to end.
		id := uint32(ds.Len() + 400 + round)
		cx := (hot[0].Min.X + hot[0].Max.X) / 2
		cy := (hot[0].Min.Y + hot[0].Max.Y) / 2
		seg := geom.Segment{A: geom.Point{X: cx, Y: cy}, B: geom.Point{X: cx + 5, Y: cy + 5}}
		if _, err := c.Insert(id, seg); err != nil {
			t.Fatalf("round %d insert: %v", round, err)
		}
		got, err := c.RangeIDs(hot[0])
		if err != nil {
			t.Fatal(err)
		}
		if !containsU32(got, id) {
			t.Fatalf("round %d: cached hotspot read missed the write %d acked just before it", round, id)
		}
	}
	if st := srv.CacheStats(); st.Hits == 0 {
		t.Fatalf("repeated hotspot never hit the router-tier cache: %+v", st)
	}
}
