// nn.go is the cross-server best-first nearest-neighbor search — the same
// MINDIST + running-k-th-bound algorithm internal/shard runs across its
// shards, lifted one level: backends are visited in ascending order of
// their bounds' MINDIST to the query point, each leg carries the running
// bound so the backend prunes whole shards against it, and the visit loop
// stops when the next backend's lower bound cannot beat the k-th best.
package router

import (
	"math"
	"time"

	"mobispatial/internal/geom"
	"mobispatial/internal/parallel"
	"mobispatial/internal/proto"
	"mobispatial/internal/rtree"
	"mobispatial/internal/shard"
)

// legStatus is one backend's disposition within one NN query.
type legStatus uint8

const (
	legUntouched legStatus = iota
	legVisited             // leg sent and answered
	legPruned              // MINDIST could not beat the running bound
	legSkipped             // breaker open, never contacted
	legFailed              // leg sent and errored
)

// KNearestAppendUntil answers one cluster-wide k-NN query, ascending by
// distance. The answer is complete when every range is accounted for by a
// visited or pruned backend; pruned is as good as visited — MINDIST of a
// backend's bounds lower-bounds every item it holds, so a pruned backend
// cannot improve on the k found. If a range's every holder failed or was
// skipped, the answer could silently miss true neighbors, so the query
// fails CodeUnavailable instead.
func (r *Router) KNearestAppendUntil(dst []rtree.Neighbor, pt geom.Point, k int, sc *parallel.Scratch, deadline time.Time) ([]rtree.Neighbor, error) {
	if k <= 0 {
		return dst, nil
	}
	deadline = r.deadlineOr(deadline)
	fs := r.getScratch()
	defer r.putScratch(fs)

	// Effective backend bounds: the snapshot's registered bounds widened by
	// the growth of writes routed since. Without the widening, a backend
	// that registered empty reports an empty rect — MINDIST +Inf — and is
	// pruned the moment any bound is set, permanently hiding objects later
	// written into it. A backend holding a divergent range gets unbounded
	// effective bounds (MINDIST 0): its summary cannot be trusted to bound
	// its data, so it is always visited rather than risk a silent miss.
	t := r.snap()
	grow := r.growth.Load()
	fs.beEff = fs.beEff[:0]
	for b, bb := range t.beBounds {
		fs.beEff = append(fs.beEff, bb.Union(grow.be[b]))
	}
	for rg, d := range t.divergent {
		if !d {
			continue
		}
		for _, b := range t.holders[rg] {
			fs.beEff[b] = everythingRect
		}
	}
	fs.order = shard.OrderByMinDist(fs.order[:0], fs.beEff, pt)
	fs.acc = fs.acc[:0]
	visited := 0
	for _, sd := range fs.order {
		b := int(sd.Index)
		bound := math.Inf(1)
		if len(fs.acc) == k {
			bound = fs.acc[k-1].Dist
		}
		if sd.Dist > bound {
			break // ascending order: every remaining backend is pruned
		}
		if !r.BackendHealthy(b) {
			fs.status[b] = legSkipped
			continue
		}
		start := time.Now()
		nbrs, err := r.clients[b].KNearestNeighborsAppendUntil(fs.nbrBuf[:0], pt, k, bound, r.legDeadline(deadline))
		fs.nbrBuf = nbrs
		r.observeLeg(b, time.Since(start), err)
		if err != nil {
			fs.status[b] = legFailed
			fs.failed[b] = true
			r.metrics.failovers.Inc()
			continue
		}
		fs.status[b] = legVisited
		visited++
		fs.acc = mergeNeighbors(fs.acc, nbrs, k, &fs.nbrTmp)
	}
	// Everything still untouched was pruned by the bound — including
	// unhealthy backends past the break point: health does not matter for a
	// backend whose items provably cannot enter the answer.
	pruned := 0
	for _, sd := range fs.order {
		if fs.status[sd.Index] == legUntouched {
			fs.status[sd.Index] = legPruned
			pruned++
		}
	}
	r.metrics.nnVisited.Add(uint64(visited))
	r.metrics.nnPruned.Add(uint64(pruned))
	r.metrics.fanout.Observe(float64(visited))

	// Coverage: every range needs one holder whose answer (or pruning)
	// accounts for its items.
	for rg, hs := range t.holders {
		ok := false
		for _, b := range hs {
			if st := fs.status[b]; st == legVisited || st == legPruned {
				ok = true
				break
			}
		}
		if !ok {
			r.metrics.unroutable.Inc()
			return dst, errUnavailable(rg)
		}
	}
	for _, nb := range fs.acc {
		dst = append(dst, rtree.Neighbor{ID: nb.ID, Dist: nb.Dist})
	}
	return dst, nil
}

// NearestUntil answers one cluster-wide nearest-neighbor query.
func (r *Router) NearestUntil(pt geom.Point, sc *parallel.Scratch, deadline time.Time) (parallel.NearestResult, error) {
	var buf [1]rtree.Neighbor
	nbs, err := r.KNearestAppendUntil(buf[:0], pt, 1, sc, deadline)
	if err != nil || len(nbs) == 0 {
		return parallel.NearestResult{}, err
	}
	return parallel.NearestResult{ID: nbs[0].ID, Dist: nbs[0].Dist, OK: true}, nil
}

// NearestWith implements serve.Executor (plain surface; see exec.go).
func (r *Router) NearestWith(pt geom.Point, sc *parallel.Scratch) parallel.NearestResult {
	res, _ := r.NearestUntil(pt, sc, time.Time{})
	return res
}

// KNearestAppend implements serve.Executor (plain surface; see exec.go).
func (r *Router) KNearestAppend(dst []rtree.Neighbor, pt geom.Point, k int, sc *parallel.Scratch) ([]rtree.Neighbor, bool) {
	dst, _ = r.KNearestAppendUntil(dst, pt, k, sc, time.Time{})
	return dst, true
}

// mergeNeighbors merges two ascending neighbor lists into the best k,
// deduplicating by id (the same item reported by two replicas carries the
// same exact distance, so duplicates are adjacent within an equal-distance
// run). tmp is the caller's reusable merge buffer.
func mergeNeighbors(a, b []proto.Neighbor, k int, tmp *[]proto.Neighbor) []proto.Neighbor {
	out := (*tmp)[:0]
	i, j := 0, 0
	for len(out) < k && (i < len(a) || j < len(b)) {
		var nb proto.Neighbor
		if j >= len(b) || (i < len(a) && a[i].Dist <= b[j].Dist) {
			nb = a[i]
			i++
		} else {
			nb = b[j]
			j++
		}
		if dupNeighbor(out, nb) {
			continue
		}
		out = append(out, nb)
	}
	*tmp = out
	return append(a[:0], out...)
}

// dupNeighbor reports whether nb's id already sits in the merged tail's
// equal-distance run.
func dupNeighbor(out []proto.Neighbor, nb proto.Neighbor) bool {
	for x := len(out) - 1; x >= 0 && out[x].Dist == nb.Dist; x-- {
		if out[x].ID == nb.ID {
			return true
		}
	}
	return false
}
