package router

import (
	"math/rand"
	"testing"
	"time"

	"mobispatial/internal/geom"
	"mobispatial/internal/parallel"
	"mobispatial/internal/rtree"
)

// BenchmarkRouterFanout measures one routed window query end to end across
// a 3-backend R=2 in-process cluster: relevance, cover, concurrent legs over
// real TCP loopback, and the sorted dedup merge.
func BenchmarkRouterFanout(b *testing.B) {
	ds := clusterDataset(b)
	tc := startCluster(b, ds, 3, 2)
	r := newRouter(b, tc, nil)

	rng := rand.New(rand.NewSource(12))
	extent := geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 40000, Y: 40000}}
	windows := make([]geom.Rect, 64)
	for i := range windows {
		windows[i] = randWindow(rng, extent, 0.05)
	}
	var dst []uint32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = r.RangeAppendUntil(dst[:0], windows[i%len(windows)], time.Time{})
		if err != nil {
			b.Fatalf("query: %v", err)
		}
	}
}

// BenchmarkRouterKNN measures one routed 8-NN query: best-first backend
// visit, bound-carrying legs, and the bounded merge.
func BenchmarkRouterKNN(b *testing.B) {
	ds := clusterDataset(b)
	tc := startCluster(b, ds, 3, 2)
	r := newRouter(b, tc, nil)

	rng := rand.New(rand.NewSource(13))
	pts := make([]geom.Point, 64)
	for i := range pts {
		pts[i] = geom.Point{X: 40000 * rng.Float64(), Y: 40000 * rng.Float64()}
	}
	sc := &parallel.Scratch{}
	var nbrs []rtree.Neighbor
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		nbrs, err = r.KNearestAppendUntil(nbrs[:0], pts[i%len(pts)], 8, sc, time.Time{})
		if err != nil {
			b.Fatalf("knn: %v", err)
		}
	}
}
