package router

import (
	"fmt"

	"mobispatial/internal/geom"
	"mobispatial/internal/proto"
	"mobispatial/internal/shard"
)

// table is the shard→server assignment derived from the backends' summaries:
// which backends hold each Hilbert range, each range's MBR (the routing
// predicate), and each backend's overall bounds (the NN visit order). A
// table value is immutable once built — the router refreshes routing by
// building a fresh table from re-polled summaries and atomically swapping
// the snapshot pointer, never by mutating one in place. Health is tracked
// by the per-backend breakers, not here.
type table struct {
	numRanges int
	// holders[r] lists the backends holding range r, ascending.
	holders [][]int32
	// rangeMBR[r] is the MBR of range r's items (geom.EmptyRect for a
	// range no backend reported items in).
	rangeMBR []geom.Rect
	// holds[b][r] reports whether backend b holds range r.
	holds [][]bool
	// beBounds[b] is backend b's overall data bounds.
	beBounds []geom.Rect
	// keyLo[r] is range r's Lo Hilbert key — the gap-free write-ownership
	// cuts (shard.RangeForKey). Every holder of a range must report the
	// same Lo: the cuts come from the deterministic cluster-wide
	// partition, so disagreement means the backends were partitioned
	// differently and no write routing is safe.
	keyLo []uint64
	// version[r] is the MINIMUM write-version any holder reported for
	// range r. The minimum is the conservative choice for cache validity:
	// a replica still catching up keeps the cluster-wide version (and so
	// every cache entry over the range) pinned until all copies agree.
	version []uint64
	// divergent[r] reports that r's holders disagreed on version or item
	// count at summary time — replication lag was in flight. A divergent
	// range's MBR may under-report (a lagging replica may be selected for
	// reads), so routing treats it as covering everything.
	divergent []bool
	// items is the cluster item count; per range the MAX across holders
	// (replicas of one range should agree, and when they transiently do
	// not, the largest count is the one that has seen every write).
	items uint64
}

// buildTable validates the summaries agree and derives the assignment. Every
// backend must report the same cluster range count, and every range must
// have at least one holder — a cluster missing a range entirely could
// silently answer with holes, which is worse than failing registration.
func buildTable(summaries []*proto.SummaryMsg) (table, error) {
	if len(summaries) == 0 {
		return table{}, fmt.Errorf("no summaries")
	}
	n := int(summaries[0].NumRanges)
	if n <= 0 {
		return table{}, fmt.Errorf("backend 0 reports %d ranges", n)
	}
	t := table{
		numRanges: n,
		holders:   make([][]int32, n),
		rangeMBR:  make([]geom.Rect, n),
		holds:     make([][]bool, len(summaries)),
		beBounds:  make([]geom.Rect, len(summaries)),
		keyLo:     make([]uint64, n),
		version:   make([]uint64, n),
		divergent: make([]bool, n),
	}
	for i := range t.rangeMBR {
		t.rangeMBR[i] = geom.EmptyRect()
	}
	maxItems := make([]uint32, n)
	for b, sm := range summaries {
		if int(sm.NumRanges) != n {
			return table{}, fmt.Errorf("backend %d reports %d ranges, backend 0 reports %d", b, sm.NumRanges, n)
		}
		t.holds[b] = make([]bool, n)
		t.beBounds[b] = sm.Bounds
		for _, ri := range sm.Ranges {
			idx := int(ri.Index)
			if idx >= n {
				return table{}, fmt.Errorf("backend %d holds out-of-range index %d", b, idx)
			}
			if t.holds[b][idx] {
				return table{}, fmt.Errorf("backend %d reports range %d twice", b, idx)
			}
			t.holds[b][idx] = true
			if len(t.holders[idx]) == 0 {
				t.keyLo[idx] = ri.Lo
				t.version[idx] = ri.Version
				maxItems[idx] = ri.Items
			} else {
				if t.keyLo[idx] != ri.Lo {
					return table{}, fmt.Errorf("backend %d reports range %d with Lo key %d, earlier holder reported %d",
						b, idx, ri.Lo, t.keyLo[idx])
				}
				if t.version[idx] != ri.Version || maxItems[idx] != ri.Items {
					t.divergent[idx] = true
				}
				if ri.Version < t.version[idx] {
					t.version[idx] = ri.Version
				}
				if ri.Items > maxItems[idx] {
					maxItems[idx] = ri.Items
				}
			}
			t.holders[idx] = append(t.holders[idx], int32(b))
			t.rangeMBR[idx] = t.rangeMBR[idx].Union(ri.MBR)
		}
	}
	for idx, hs := range t.holders {
		if len(hs) == 0 {
			return table{}, fmt.Errorf("range %d has no holder among %d backends", idx, len(summaries))
		}
		if idx > 0 && t.keyLo[idx] < t.keyLo[idx-1] {
			return table{}, fmt.Errorf("range %d has Lo key %d below range %d's %d — key cuts must ascend",
				idx, t.keyLo[idx], idx-1, t.keyLo[idx-1])
		}
		t.items += uint64(maxItems[idx])
	}
	return t, nil
}

// rangeForKey returns the index of the range owning a write key under the
// cluster's gap-free ownership rule.
func (t *table) rangeForKey(key uint64) int {
	return shard.RangeForKey(t.keyLo, key)
}

// neededRanges appends the indices of ranges that may hold items matching a
// query inside w. A range participates when its summary MBR, widened by any
// growth rect accumulated from writes routed since the summary (grow may be
// nil), intersects w — or unconditionally when its holders diverged at
// summary time, because a lagging replica's items are not bounded by the
// merged MBR.
func (t *table) neededRanges(dst []int32, w geom.Rect, grow []geom.Rect) []int32 {
	for idx, mbr := range t.rangeMBR {
		if t.divergent[idx] || mbr.Intersects(w) || (grow != nil && grow[idx].Intersects(w)) {
			dst = append(dst, int32(idx))
		}
	}
	return dst
}
