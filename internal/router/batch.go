// batch.go is the locality-aware batch executor: the serve.BatchExecutor
// surface the router exposes so a client batch (MsgBatchQuery) fans out as
// ONE wire leg per owning backend instead of one full fan-out per sub-query.
//
// The per-item path costs legs × sub-queries: a 32-query batch over a
// 4-backend cluster pays up to 128 round trips even when every sub-query's
// ranges live on one backend. Here the router plans the whole batch against
// one routing snapshot, groups the range/point sub-queries by the backends
// chosen to cover their ranges, ships each group as a single MsgBatchQuery
// leg, and stitches the per-item answers back in client order. A sub-query
// whose ranges span several backends contributes one slot to each owning
// leg and its answers merge by sorted dedup, exactly like the single-query
// fan-out. NN sub-queries keep the per-item best-first visit (nn.go) — the
// running k-th-bound protocol is inherently sequential across backends and
// gains nothing from grouping — and they run on the calling goroutine while
// the grouped legs are in flight.
//
// Failure handling is two-tier: a failed leg (or a per-slot backend error)
// does not fail its sub-queries — each one falls back to the per-item
// fan-out, which carries its own cover/failover machinery. Only when that
// also fails does the error land in the item.
package router

import (
	"errors"
	"slices"
	"sync"
	"time"

	"mobispatial/internal/proto"
)

// batchLeg is one backend's share of a client batch: the sub-query indices
// it answers, the rewritten leg queries, and the per-slot results copied out
// of the pooled reply during the visit.
type batchLeg struct {
	b    int32
	qis  []int            // indices into the client batch
	qs   []proto.QueryMsg // leg queries (ModeData rewritten to ModeIDs)
	ids  [][]uint32       // per slot: answer ids
	code []proto.ErrCode  // per slot: backend-reported error
	err  error            // whole-leg failure
}

// RunQueryBatch implements serve.BatchExecutor: items[i] answers qs[i], in
// id space only (record materialization stays with the serve layer). Slots
// arriving with Err pre-set were rejected by the server and are skipped.
func (r *Router) RunQueryBatch(qs []proto.QueryMsg, items []proto.BatchItem, deadline time.Time) {
	deadline = r.deadlineOr(deadline)
	r.metrics.batches.Inc()
	r.metrics.batchQueries.Add(uint64(len(qs)))

	// One snapshot + growth overlay for the whole batch: every sub-query is
	// planned against the same assignment, so "one leg per owning backend"
	// holds even if a refresh swaps the table mid-plan.
	t := r.snap()
	grow := r.growth.Load()

	legs, legOf := []*batchLeg(nil), make(map[int32]*batchLeg)
	owners := make([][]int32, len(qs)) // backends covering each sub-query
	used := make([]bool, len(r.clients))
	rot := int(r.rr.Add(1))
	var needed []int32
	var nnIdx []int

	for i := range qs {
		it := &items[i]
		if it.Err != 0 {
			continue // pre-rejected by the serve layer
		}
		q := &qs[i]
		if q.Kind == proto.KindNN {
			nnIdx = append(nnIdx, i)
			continue
		}
		w := q.Window
		if q.Kind == proto.KindPoint {
			w = r.pointWindow(q.Point, q.Eps)
		}
		needed = t.neededRanges(needed[:0], w, grow.rect)
		if len(needed) == 0 {
			continue // provably empty answer
		}
		// Greedy cover, preferring backends already carrying a leg for this
		// batch — the whole point: a shared backend answers any number of
		// sub-queries in the same wire round trip.
		qb := owners[i]
		unroutable := false
		for _, rg := range needed {
			if holdsAny(t, qb, rg) {
				continue // a backend already covering this query holds it too
			}
			hs := t.holders[rg]
			pick := int32(-1)
			for _, b := range hs {
				if used[b] && r.BackendHealthy(int(b)) {
					pick = b
					break
				}
			}
			if pick < 0 {
				for x := 0; x < len(hs); x++ {
					b := hs[(rot+x)%len(hs)]
					if r.BackendHealthy(int(b)) {
						pick = b
						break
					}
				}
			}
			if pick < 0 {
				it.Err = proto.CodeUnavailable
				it.Text = errUnavailable(int(rg)).Error()
				r.metrics.unroutable.Inc()
				unroutable = true
				break
			}
			qb = append(qb, pick)
			used[pick] = true
		}
		if unroutable {
			continue
		}
		owners[i] = qb
		for _, b := range qb {
			lg := legOf[b]
			if lg == nil {
				lg = &batchLeg{b: b}
				legOf[b] = lg
				legs = append(legs, lg)
			}
			lq := *q
			if lq.Mode == proto.ModeData {
				lq.Mode = proto.ModeIDs // backends answer legs in id space
			}
			lg.qis = append(lg.qis, i)
			lg.qs = append(lg.qs, lq)
		}
	}

	// Ship the grouped legs concurrently; NN sub-queries run their per-item
	// best-first visits on the calling goroutine meanwhile.
	var wg sync.WaitGroup
	for _, lg := range legs {
		wg.Add(1)
		go func(lg *batchLeg) {
			defer wg.Done()
			r.runBatchLeg(lg, deadline)
		}(lg)
	}
	for _, i := range nnIdx {
		r.batchNN(&qs[i], &items[i], deadline)
	}
	wg.Wait()

	// Stitch: successful slots contribute their ids; any failed contribution
	// (dead leg or per-slot error) voids the sub-query's partial answer and
	// sends it to the per-item fallback instead — a partial merge would be a
	// silent hole.
	fallback := make([]bool, len(qs))
	for _, lg := range legs {
		for si, qi := range lg.qis {
			if items[qi].Err != 0 || fallback[qi] {
				continue
			}
			if lg.err != nil || lg.code[si] != 0 {
				fallback[qi] = true
				items[qi].IDs = items[qi].IDs[:0]
				continue
			}
			items[qi].IDs = append(items[qi].IDs, lg.ids[si]...)
		}
	}
	for i := range qs {
		it := &items[i]
		if it.Err != 0 {
			continue
		}
		if fallback[i] {
			r.metrics.batchFallbacks.Inc()
			r.batchFallback(&qs[i], it, deadline)
			continue
		}
		if len(owners[i]) > 1 && len(it.IDs) > 1 {
			// Multi-backend sub-query: replicas sharing a range may both
			// have reported its items; sorted dedup collapses the overlap.
			slices.Sort(it.IDs)
			it.IDs = dedupSorted(it.IDs)
		}
	}
}

// holdsAny reports whether any backend of sel holds range rg.
func holdsAny(t *table, sel []int32, rg int32) bool {
	for _, b := range sel {
		if t.holds[b][rg] {
			return true
		}
	}
	return false
}

// runBatchLeg ships one grouped leg and copies each slot's answer out of the
// pooled reply (the visit's ids alias the reply and die with it).
func (r *Router) runBatchLeg(lg *batchLeg, deadline time.Time) {
	lg.ids = make([][]uint32, len(lg.qs))
	lg.code = make([]proto.ErrCode, len(lg.qs))
	start := time.Now()
	lg.err = r.clients[lg.b].QueryBatchVisit(lg.qs, r.legDeadline(deadline), func(i int, ids []uint32, code proto.ErrCode, text string) {
		if code != 0 {
			lg.code[i] = code
			return
		}
		lg.ids[i] = append(lg.ids[i], ids...)
	})
	r.observeLeg(int(lg.b), time.Since(start), lg.err)
	r.metrics.batchLegs.Inc()
}

// batchNN answers one NN sub-query through the cluster-wide best-first
// visit, ids ascending by distance — the same shape the per-item batch loop
// produces.
func (r *Router) batchNN(q *proto.QueryMsg, it *proto.BatchItem, deadline time.Time) {
	k := int(q.K)
	if k < 1 {
		k = 1
	}
	nbs, err := r.KNearestAppendUntil(nil, q.Point, k, nil, deadline)
	if err != nil {
		it.Err, it.Text = errCodeOf(err)
		return
	}
	for _, nb := range nbs {
		it.IDs = append(it.IDs, nb.ID)
	}
}

// batchFallback re-answers one sub-query through the per-item fan-out after
// its grouped leg failed; fanIDs brings the cover/failover machinery the
// grouped path deliberately keeps thin.
func (r *Router) batchFallback(q *proto.QueryMsg, it *proto.BatchItem, deadline time.Time) {
	var err error
	switch {
	case q.Kind == proto.KindRange && q.Mode == proto.ModeFilter:
		it.IDs, err = r.FilterRangeAppendUntil(it.IDs[:0], q.Window, deadline)
	case q.Kind == proto.KindRange:
		it.IDs, err = r.RangeAppendUntil(it.IDs[:0], q.Window, deadline)
	case q.Kind == proto.KindPoint && q.Mode == proto.ModeFilter:
		it.IDs, err = r.FilterPointAppendUntil(it.IDs[:0], q.Point, deadline)
	default:
		it.IDs, err = r.PointAppendUntil(it.IDs[:0], q.Point, q.Eps, deadline)
	}
	if err != nil {
		it.IDs = it.IDs[:0]
		it.Err, it.Text = errCodeOf(err)
	}
}

// dedupSorted compacts a sorted id slice in place.
func dedupSorted(ids []uint32) []uint32 {
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// errCodeOf maps a fan-out error onto a wire code for a batch item: errors
// that carry one (routerError, a backend's ErrorMsg) keep it, anything else
// is internal. Text is clamped to the wire limit.
func errCodeOf(err error) (proto.ErrCode, string) {
	var em *proto.ErrorMsg
	if errors.As(err, &em) {
		return em.Code, clampText(em.Text)
	}
	var ec interface{ ErrCode() proto.ErrCode }
	if errors.As(err, &ec) {
		return ec.ErrCode(), clampText(err.Error())
	}
	return proto.CodeInternal, clampText(err.Error())
}

func clampText(s string) string {
	if len(s) > proto.MaxErrorText {
		return s[:proto.MaxErrorText]
	}
	return s
}
