// Package faultlink is a deterministic fault-injecting wrapper around
// net.Conn, net.Listener, and dial functions — the lossy, stalling,
// disappearing wireless link the paper assumes, imposed on the real TCP
// transport between internal/serve and internal/serve/client.
//
// Every fault decision is drawn from one seeded PRNG behind a mutex, so a
// given profile and seed produce the same decision SEQUENCE run after run
// (goroutine interleaving still decides which connection draws which
// decision). The injectable faults:
//
//   - added latency and jitter per operation (one-way, read and write);
//   - a bandwidth throttle (transfer time = bytes×8 / BandwidthBps);
//   - frame drops: a write reports success but the bytes never leave, so
//     the peer's read runs into its deadline — a lost frame on a live link;
//   - mid-frame resets: a write delivers a prefix of the buffer and then
//     hard-closes the connection, exercising the peer's partial-frame path;
//   - read/write stalls: the operation is held for StallFor (never past the
//     connection's deadline) before proceeding;
//   - scripted outage windows: during [Start, End) relative to the
//     injector's epoch — or while ForceOutage(true) is in effect — every
//     read, write, and dial fails immediately with ErrLinkDown.
//
// Sleeps are always capped by the connection's read/write deadline, so a
// faulted operation can delay up to its caller's own time budget but never
// hang past it.
package faultlink

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrLinkDown is the failure every operation returns during an outage
// window. It unwraps from the net.OpError the wrapped conns produce.
var ErrLinkDown = errors.New("faultlink: link down (outage window)")

// ErrInjectedReset is the failure of a mid-frame reset.
var ErrInjectedReset = errors.New("faultlink: injected connection reset")

// Outage is one scripted window of total link loss, relative to the
// injector's epoch (New or the last ResetClock call).
type Outage struct {
	Start time.Duration
	End   time.Duration
}

// Profile parameterizes an Injector. The zero value injects nothing.
type Profile struct {
	// Seed seeds the fault PRNG; 0 means 1 (stay deterministic by default).
	Seed int64
	// DropProb is the per-write probability that the frame is silently
	// discarded: the write reports full success, the peer sees nothing.
	DropProb float64
	// ResetProb is the per-operation probability of a mid-frame reset: a
	// write delivers a random prefix and the connection dies; a read fails
	// immediately.
	ResetProb float64
	// StallProb is the per-operation probability of holding the operation
	// for StallFor before proceeding.
	StallProb float64
	// StallFor is the stall duration; defaults to 200ms when StallProb > 0.
	StallFor time.Duration
	// Latency is added to every read and write (one-way).
	Latency time.Duration
	// Jitter adds a uniform extra delay in [0, Jitter) on top of Latency.
	Jitter time.Duration
	// BandwidthBps throttles transfers: each operation additionally sleeps
	// bytes×8/BandwidthBps. 0 means unthrottled.
	BandwidthBps float64
	// Outages are scripted total-loss windows relative to the epoch.
	Outages []Outage
}

// Stats counts the faults an injector has delivered.
type Stats struct {
	Drops, Resets, Stalls, OutageFailures, Dials uint64
}

// Injector applies one Profile to any number of wrapped connections.
type Injector struct {
	prof Profile

	mu    sync.Mutex
	rng   *rand.Rand
	epoch time.Time

	forced atomic.Bool

	drops, resets, stalls, outageFails, dials atomic.Uint64
}

// New builds an injector with its epoch at now.
func New(prof Profile) *Injector {
	seed := prof.Seed
	if seed == 0 {
		seed = 1
	}
	if prof.StallProb > 0 && prof.StallFor <= 0 {
		prof.StallFor = 200 * time.Millisecond
	}
	return &Injector{
		prof:  prof,
		rng:   rand.New(rand.NewSource(seed)),
		epoch: time.Now(),
	}
}

// ResetClock restarts the outage schedule: windows are re-interpreted
// relative to now.
func (in *Injector) ResetClock() {
	in.mu.Lock()
	in.epoch = time.Now()
	in.mu.Unlock()
}

// ForceOutage overrides the schedule: while on, the link is down regardless
// of the scripted windows. Tests use this to toggle outages exactly.
func (in *Injector) ForceOutage(on bool) { in.forced.Store(on) }

// Down reports whether the link is currently in an outage.
func (in *Injector) Down() bool {
	if in.forced.Load() {
		return true
	}
	if len(in.prof.Outages) == 0 {
		return false
	}
	in.mu.Lock()
	elapsed := time.Since(in.epoch)
	in.mu.Unlock()
	for _, w := range in.prof.Outages {
		if elapsed >= w.Start && elapsed < w.End {
			return true
		}
	}
	return false
}

// Stats snapshots the fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Drops:          in.drops.Load(),
		Resets:         in.resets.Load(),
		Stalls:         in.stalls.Load(),
		OutageFailures: in.outageFails.Load(),
		Dials:          in.dials.Load(),
	}
}

// decide draws the per-operation fault decisions in one lock acquisition:
// which fault (if any) fires, and the jitter fraction.
type decision struct {
	drop, reset, stall bool
	jitterFrac         float64
	resetFrac          float64
}

func (in *Injector) decide(isWrite bool) decision {
	p := &in.prof
	var d decision
	if p.DropProb == 0 && p.ResetProb == 0 && p.StallProb == 0 && p.Jitter == 0 {
		return d
	}
	in.mu.Lock()
	if isWrite && p.DropProb > 0 && in.rng.Float64() < p.DropProb {
		d.drop = true
	}
	if p.ResetProb > 0 && in.rng.Float64() < p.ResetProb {
		d.reset = true
		d.resetFrac = in.rng.Float64()
	}
	if p.StallProb > 0 && in.rng.Float64() < p.StallProb {
		d.stall = true
	}
	if p.Jitter > 0 {
		d.jitterFrac = in.rng.Float64()
	}
	in.mu.Unlock()
	return d
}

// Wrap returns nc with the injector's faults applied to every operation.
func (in *Injector) Wrap(nc net.Conn) net.Conn {
	return &conn{Conn: nc, in: in}
}

// Listen wraps lis so every accepted connection is fault-injected; Accept
// itself is never faulted (the kernel completes handshakes regardless).
func (in *Injector) Listen(lis net.Listener) net.Listener {
	return &listener{Listener: lis, in: in}
}

// DialFunc wraps base (nil = net.DialTimeout over TCP) with the injector:
// dials fail fast during outages and returned connections are wrapped.
func (in *Injector) DialFunc(base func(addr string, timeout time.Duration) (net.Conn, error)) func(addr string, timeout time.Duration) (net.Conn, error) {
	if base == nil {
		base = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		in.dials.Add(1)
		if in.Down() {
			in.outageFails.Add(1)
			return nil, &net.OpError{Op: "dial", Net: "tcp", Err: ErrLinkDown}
		}
		nc, err := base(addr, timeout)
		if err != nil {
			return nil, err
		}
		return in.Wrap(nc), nil
	}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Wrap(nc), nil
}

// conn is one fault-injected connection. It tracks the deadlines itself so
// injected sleeps can be capped at the caller's time budget.
type conn struct {
	net.Conn
	in *Injector

	mu           sync.Mutex
	rdead, wdead time.Time
	killed       atomic.Bool
}

func (c *conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdead, c.wdead = t, t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdead = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.wdead = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

func (c *conn) deadline(isWrite bool) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if isWrite {
		return c.wdead
	}
	return c.rdead
}

// sleep pauses for d, capped so it never runs past the operation's
// deadline. It reports false when the deadline was hit.
func (c *conn) sleep(d time.Duration, isWrite bool) bool {
	if d <= 0 {
		return true
	}
	ok := true
	if dl := c.deadline(isWrite); !dl.IsZero() {
		if rest := time.Until(dl); rest < d {
			d, ok = rest, false
		}
	}
	if d > 0 {
		time.Sleep(d)
	}
	return ok
}

// timeoutError mirrors the net package's deadline failure so callers using
// net.Error.Timeout() (the server's read poll, the client's retry filter)
// classify injected timeouts the same way as real ones.
type timeoutError struct{}

func (timeoutError) Error() string   { return "faultlink: injected timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// fail builds the error for a faulted operation.
func opError(op string, err error) error {
	return &net.OpError{Op: op, Net: "tcp", Err: err}
}

// delay applies latency, jitter, and the bandwidth throttle for n bytes.
// It reports false when the deadline was consumed by the delay.
func (c *conn) delay(n int, d decision, isWrite bool) bool {
	p := &c.in.prof
	total := p.Latency
	if p.Jitter > 0 {
		total += time.Duration(d.jitterFrac * float64(p.Jitter))
	}
	if p.BandwidthBps > 0 && n > 0 {
		total += time.Duration(float64(n*8) / p.BandwidthBps * float64(time.Second))
	}
	return c.sleep(total, isWrite)
}

func (c *conn) Read(b []byte) (int, error) {
	if c.in.Down() {
		c.in.outageFails.Add(1)
		return 0, opError("read", ErrLinkDown)
	}
	if c.killed.Load() {
		return 0, opError("read", ErrInjectedReset)
	}
	d := c.in.decide(false)
	if d.reset {
		c.in.resets.Add(1)
		c.killed.Store(true)
		c.Conn.Close()
		return 0, opError("read", ErrInjectedReset)
	}
	if d.stall {
		c.in.stalls.Add(1)
		if !c.sleep(c.in.prof.StallFor, false) {
			return 0, opError("read", timeoutError{})
		}
	}
	n, err := c.Conn.Read(b)
	if err == nil && !c.delay(n, d, false) {
		// Latency consumed the rest of the budget: the bytes are
		// delivered, but a pipelined follow-up will see the deadline.
		return n, nil
	}
	return n, err
}

func (c *conn) Write(b []byte) (int, error) {
	if c.in.Down() {
		c.in.outageFails.Add(1)
		return 0, opError("write", ErrLinkDown)
	}
	if c.killed.Load() {
		return 0, opError("write", ErrInjectedReset)
	}
	d := c.in.decide(true)
	if d.drop {
		// The frame evaporates: full success reported, nothing sent. The
		// peer's read must run into its own deadline, as with a frame lost
		// on the air.
		c.in.drops.Add(1)
		return len(b), nil
	}
	if d.reset {
		// Mid-frame reset: deliver a prefix, then kill the connection.
		c.in.resets.Add(1)
		c.killed.Store(true)
		prefix := int(d.resetFrac * float64(len(b)))
		if prefix > 0 {
			c.Conn.Write(b[:prefix])
		}
		c.Conn.Close()
		return prefix, opError("write", ErrInjectedReset)
	}
	if d.stall {
		c.in.stalls.Add(1)
		if !c.sleep(c.in.prof.StallFor, true) {
			return 0, opError("write", timeoutError{})
		}
	}
	if !c.delay(len(b), d, true) {
		return 0, opError("write", timeoutError{})
	}
	return c.Conn.Write(b)
}
