// profile.go: named fault profiles and the textual form mqload's -fault
// flag accepts. A spec is a preset name, a comma-separated key=value list,
// or a preset refined by overrides: "lossy,seed=7,drop=0.1".
package faultlink

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Presets returns the named profiles, keyed by name.
//
//	lossy   5% dropped frames, 2% mid-frame resets, 10ms±5ms latency
//	slow    2 Mbps throttle with 40ms±10ms latency (the paper's base link)
//	stall   10% of operations freeze for 250ms
//	outage  a clean link that dies completely for 2s out of every 10s
//	flaky   everything at once, gently
func Presets() map[string]Profile {
	return map[string]Profile{
		"lossy": {
			DropProb: 0.05, ResetProb: 0.02,
			Latency: 10 * time.Millisecond, Jitter: 5 * time.Millisecond,
		},
		"slow": {
			BandwidthBps: 2e6,
			Latency:      40 * time.Millisecond, Jitter: 10 * time.Millisecond,
		},
		"stall": {
			StallProb: 0.10, StallFor: 250 * time.Millisecond,
		},
		"outage": {
			Outages: []Outage{
				{Start: 2 * time.Second, End: 4 * time.Second},
				{Start: 12 * time.Second, End: 14 * time.Second},
				{Start: 22 * time.Second, End: 24 * time.Second},
			},
		},
		"flaky": {
			DropProb: 0.02, ResetProb: 0.01, StallProb: 0.02,
			StallFor: 100 * time.Millisecond,
			Latency:  5 * time.Millisecond, Jitter: 5 * time.Millisecond,
			Outages: []Outage{{Start: 5 * time.Second, End: 6 * time.Second}},
		},
	}
}

// ParseProfile parses a -fault spec. Keys:
//
//	seed=N          PRNG seed (default 1)
//	drop=P          per-write drop probability in [0,1]
//	reset=P         per-op mid-frame reset probability
//	stall=P         per-op stall probability
//	stallfor=DUR    stall hold time (default 200ms)
//	latency=DUR     added one-way latency
//	jitter=DUR      uniform extra latency in [0, jitter)
//	bw=BPS          bandwidth throttle in bits/second (plain float)
//	outage=AT+LEN   total-loss window starting AT after the run begins,
//	                lasting LEN; repeatable
func ParseProfile(spec string) (Profile, error) {
	var prof Profile
	parts := strings.Split(spec, ",")
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, hasEq := strings.Cut(part, "=")
		if !hasEq {
			if i != 0 {
				return prof, fmt.Errorf("faultlink: preset name %q must come first in %q", part, spec)
			}
			preset, ok := Presets()[part]
			if !ok {
				return prof, fmt.Errorf("faultlink: unknown preset %q (have lossy, slow, stall, outage, flaky)", part)
			}
			prof = preset
			continue
		}
		if err := applyKey(&prof, key, val); err != nil {
			return prof, err
		}
	}
	return prof, nil
}

func applyKey(prof *Profile, key, val string) error {
	switch key {
	case "seed":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("faultlink: bad seed %q", val)
		}
		prof.Seed = n
	case "drop", "reset", "stall":
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p < 0 || p > 1 {
			return fmt.Errorf("faultlink: %s=%q is not a probability in [0,1]", key, val)
		}
		switch key {
		case "drop":
			prof.DropProb = p
		case "reset":
			prof.ResetProb = p
		case "stall":
			prof.StallProb = p
		}
	case "stallfor", "latency", "jitter":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return fmt.Errorf("faultlink: bad duration %s=%q", key, val)
		}
		switch key {
		case "stallfor":
			prof.StallFor = d
		case "latency":
			prof.Latency = d
		case "jitter":
			prof.Jitter = d
		}
	case "bw":
		b, err := strconv.ParseFloat(val, 64)
		if err != nil || b < 0 {
			return fmt.Errorf("faultlink: bad bandwidth bw=%q (bits/second)", val)
		}
		prof.BandwidthBps = b
	case "outage":
		at, length, ok := strings.Cut(val, "+")
		if !ok {
			return fmt.Errorf("faultlink: outage=%q wants AT+LEN (e.g. outage=5s+2s)", val)
		}
		start, err1 := time.ParseDuration(at)
		dur, err2 := time.ParseDuration(length)
		if err1 != nil || err2 != nil || start < 0 || dur <= 0 {
			return fmt.Errorf("faultlink: bad outage window %q", val)
		}
		prof.Outages = append(prof.Outages, Outage{Start: start, End: start + dur})
	default:
		return fmt.Errorf("faultlink: unknown key %q", key)
	}
	return nil
}

// String renders the profile compactly for run banners.
func (p Profile) String() string {
	var parts []string
	add := func(format string, args ...any) { parts = append(parts, fmt.Sprintf(format, args...)) }
	if p.DropProb > 0 {
		add("drop=%.3g", p.DropProb)
	}
	if p.ResetProb > 0 {
		add("reset=%.3g", p.ResetProb)
	}
	if p.StallProb > 0 {
		add("stall=%.3g:%v", p.StallProb, p.StallFor)
	}
	if p.Latency > 0 || p.Jitter > 0 {
		add("latency=%v±%v", p.Latency, p.Jitter)
	}
	if p.BandwidthBps > 0 {
		add("bw=%.3gMbps", p.BandwidthBps/1e6)
	}
	for _, w := range p.Outages {
		add("outage=%v+%v", w.Start, w.End-w.Start)
	}
	if len(parts) == 0 {
		return "clean"
	}
	return strings.Join(parts, ",")
}
