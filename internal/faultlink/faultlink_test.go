package faultlink

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// pipe builds a wrapped client conn talking to a plain echo server over
// loopback TCP; the echo loop copies reads straight back.
func pipe(t *testing.T, in *Injector) net.Conn {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				buf := make([]byte, 4096)
				for {
					n, err := nc.Read(buf)
					if err != nil {
						return
					}
					if _, err := nc.Write(buf[:n]); err != nil {
						return
					}
				}
			}(nc)
		}
	}()
	nc, err := in.DialFunc(nil)(lis.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return nc
}

func echo(t *testing.T, nc net.Conn, payload []byte) error {
	t.Helper()
	if _, err := nc.Write(payload); err != nil {
		return err
	}
	got := make([]byte, len(payload))
	for off := 0; off < len(got); {
		n, err := nc.Read(got[off:])
		if err != nil {
			return err
		}
		off += n
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("echo corrupted: got %q want %q", got, payload)
	}
	return nil
}

func TestCleanProfilePassesThrough(t *testing.T) {
	nc := pipe(t, New(Profile{}))
	nc.SetDeadline(time.Now().Add(2 * time.Second))
	if err := echo(t, nc, []byte("hello fault-free world")); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyDelaysOperations(t *testing.T) {
	in := New(Profile{Latency: 30 * time.Millisecond})
	nc := pipe(t, in)
	nc.SetDeadline(time.Now().Add(2 * time.Second))
	start := time.Now()
	if err := echo(t, nc, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	// One write delay + one read delay, at least.
	if elapsed := time.Since(start); elapsed < 55*time.Millisecond {
		t.Fatalf("round trip took %v, want >= ~60ms of injected latency", elapsed)
	}
}

func TestDropStarvesTheReader(t *testing.T) {
	in := New(Profile{DropProb: 1})
	nc := pipe(t, in)
	nc.SetDeadline(time.Now().Add(100 * time.Millisecond))
	n, err := nc.Write([]byte("lost"))
	if err != nil || n != 4 {
		t.Fatalf("dropped write reported (%d, %v), want full fake success", n, err)
	}
	buf := make([]byte, 16)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("read returned data for a dropped frame")
	} else {
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Fatalf("read error %v, want a deadline timeout", err)
		}
	}
	if st := in.Stats(); st.Drops != 1 {
		t.Fatalf("drops = %d, want 1", st.Drops)
	}
}

func TestResetKillsMidFrame(t *testing.T) {
	in := New(Profile{ResetProb: 1})
	nc := pipe(t, in)
	nc.SetDeadline(time.Now().Add(time.Second))
	if _, err := nc.Write([]byte("doomed frame")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write error %v, want ErrInjectedReset", err)
	}
	// The connection stays dead afterwards.
	if _, err := nc.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset write error %v, want ErrInjectedReset", err)
	}
	if st := in.Stats(); st.Resets == 0 {
		t.Fatal("reset not counted")
	}
}

func TestStallRespectsDeadline(t *testing.T) {
	in := New(Profile{StallProb: 1, StallFor: 10 * time.Second})
	nc := pipe(t, in)
	nc.SetDeadline(time.Now().Add(80 * time.Millisecond))
	start := time.Now()
	_, err := nc.Write([]byte("stalled"))
	elapsed := time.Since(start)
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("stalled write error %v, want timeout", err)
	}
	if elapsed > time.Second {
		t.Fatalf("stall held the operation %v past its 80ms deadline", elapsed)
	}
}

func TestThrottleSlowsBulkTransfer(t *testing.T) {
	// 1 Mbps: 32 KB takes ~262ms on the wire.
	in := New(Profile{BandwidthBps: 1e6})
	nc := pipe(t, in)
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	payload := bytes.Repeat([]byte("x"), 32<<10)
	start := time.Now()
	if _, err := nc.Write(payload); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Fatalf("32KB at 1Mbps took %v, want >= ~262ms", elapsed)
	}
}

func TestForcedOutageFailsFastAndRecovers(t *testing.T) {
	in := New(Profile{})
	nc := pipe(t, in)
	nc.SetDeadline(time.Now().Add(2 * time.Second))
	if err := echo(t, nc, []byte("before")); err != nil {
		t.Fatal(err)
	}

	in.ForceOutage(true)
	start := time.Now()
	if _, err := nc.Write([]byte("during")); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("outage write error %v, want ErrLinkDown", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("outage failure took %v, want immediate", elapsed)
	}
	if _, err := in.DialFunc(nil)("127.0.0.1:1", 100*time.Millisecond); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("outage dial error %v, want ErrLinkDown", err)
	}

	in.ForceOutage(false)
	// The old conn survived (outage failures don't tear down the socket);
	// traffic resumes on it.
	nc.SetDeadline(time.Now().Add(2 * time.Second))
	if err := echo(t, nc, []byte("after")); err != nil {
		t.Fatalf("post-outage echo: %v", err)
	}
	if st := in.Stats(); st.OutageFailures < 2 {
		t.Fatalf("outage failures = %d, want >= 2", st.OutageFailures)
	}
}

func TestScriptedOutageWindow(t *testing.T) {
	in := New(Profile{Outages: []Outage{{Start: 60 * time.Millisecond, End: 160 * time.Millisecond}}})
	nc := pipe(t, in)
	nc.SetDeadline(time.Now().Add(3 * time.Second))
	if err := echo(t, nc, []byte("pre")); err != nil {
		t.Fatalf("before window: %v", err)
	}
	time.Sleep(80 * time.Millisecond)
	if !in.Down() {
		t.Skip("scheduling delay pushed the check past the scripted window")
	}
	if _, err := nc.Write([]byte("mid")); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("in-window write error %v, want ErrLinkDown", err)
	}
	time.Sleep(120 * time.Millisecond)
	if in.Down() {
		t.Fatal("link still down after the scripted window closed")
	}
	nc.SetDeadline(time.Now().Add(2 * time.Second))
	if err := echo(t, nc, []byte("post")); err != nil {
		t.Fatalf("after window: %v", err)
	}
}

func TestDeterministicDecisionSequence(t *testing.T) {
	prof := Profile{Seed: 42, DropProb: 0.3, ResetProb: 0.1, StallProb: 0.2, StallFor: time.Millisecond}
	sequence := func() []decision {
		in := New(prof)
		var ds []decision
		for i := 0; i < 64; i++ {
			ds = append(ds, in.decide(i%2 == 0))
		}
		return ds
	}
	a, b := sequence(), sequence()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identically seeded runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestParseProfile(t *testing.T) {
	prof, err := ParseProfile("lossy,seed=7,drop=0.1,outage=5s+2s")
	if err != nil {
		t.Fatal(err)
	}
	if prof.Seed != 7 || prof.DropProb != 0.1 || prof.ResetProb != 0.02 {
		t.Fatalf("preset+override parse wrong: %+v", prof)
	}
	if len(prof.Outages) != 1 || prof.Outages[0] != (Outage{Start: 5 * time.Second, End: 7 * time.Second}) {
		t.Fatalf("outage parse wrong: %+v", prof.Outages)
	}

	if _, err := ParseProfile("latency=20ms,jitter=5ms,bw=2e6,stall=0.05,stallfor=100ms"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"nope", "drop=2", "outage=5s", "seed=x", "latency=-1s", "x=1", "lossy,flaky"} {
		if _, err := ParseProfile(bad); err == nil {
			t.Errorf("ParseProfile(%q) accepted a bad spec", bad)
		}
	}
	for name := range Presets() {
		if _, err := ParseProfile(name); err != nil {
			t.Errorf("preset %q does not parse: %v", name, err)
		}
	}
	if s := mustProfile(t, "drop=0.05,latency=10ms").String(); !strings.Contains(s, "drop=0.05") {
		t.Errorf("String() = %q, want drop rendered", s)
	}
}

func mustProfile(t *testing.T, spec string) Profile {
	t.Helper()
	p, err := ParseProfile(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
