package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSegmentMBR(t *testing.T) {
	s := Segment{Point{3, 7}, Point{1, 2}}
	want := Rect{Point{1, 2}, Point{3, 7}}
	if got := s.MBR(); got != want {
		t.Errorf("MBR() = %v, want %v", got, want)
	}
}

func TestDistToPoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 0}}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{5, 3}, 3},    // perpendicular foot inside
		{Point{-3, 4}, 5},   // nearest is endpoint A
		{Point{13, 4}, 5},   // nearest is endpoint B
		{Point{5, 0}, 0},    // on the segment
		{Point{0, 0}, 0},    // at endpoint
		{Point{10, -2}, 2},  // perpendicular at endpoint B
		{Point{-10, 0}, 10}, // collinear beyond A
	}
	for _, c := range cases {
		if got := s.DistToPoint(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("DistToPoint(%v) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestDistToPointDegenerateSegment(t *testing.T) {
	s := Segment{Point{2, 2}, Point{2, 2}}
	if got := s.DistToPoint(Point{5, 6}); math.Abs(got-5) > 1e-12 {
		t.Errorf("degenerate DistToPoint = %g, want 5", got)
	}
}

func TestContainsPoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{4, 4}}
	if !s.ContainsPoint(Point{2, 2}, 1e-9) {
		t.Error("midpoint not contained")
	}
	if s.ContainsPoint(Point{2, 2.1}, 1e-9) {
		t.Error("off-segment point contained")
	}
	if !s.ContainsPoint(Point{2, 2.1}, 0.2) {
		t.Error("tolerance not honored")
	}
}

func TestSegmentIntersectsRect(t *testing.T) {
	r := Rect{Point{0, 0}, Point{10, 10}}
	cases := []struct {
		s    Segment
		want bool
	}{
		{Segment{Point{1, 1}, Point{2, 2}}, true},   // fully inside
		{Segment{Point{-5, 5}, Point{15, 5}}, true}, // crosses through
		{Segment{Point{-5, -5}, Point{-1, -1}}, false},
		{Segment{Point{-5, 5}, Point{5, 5}}, true},    // one endpoint inside
		{Segment{Point{-1, -1}, Point{1, -1}}, false}, // runs below
		{Segment{Point{0, -1}, Point{-1, 0}}, false},  // clips corner outside
		{Segment{Point{0, 10}, Point{10, 0}}, true},   // diagonal chord
		{Segment{Point{-1, 11}, Point{11, -1}}, true}, // crosses corners region
		{Segment{Point{10, 10}, Point{20, 20}}, true}, // touches corner
		{Segment{Point{-2, 0}, Point{0, -2}}, false},  // near corner, outside
		{Segment{Point{5, 10}, Point{5, 20}}, true},   // touches top edge
	}
	for _, c := range cases {
		if got := c.s.IntersectsRect(r); got != c.want {
			t.Errorf("IntersectsRect(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

// brute-force sampling oracle for segment/rect intersection
func bruteIntersects(s Segment, r Rect) bool {
	const n = 2000
	for i := 0; i <= n; i++ {
		t := float64(i) / n
		p := Point{s.A.X + t*(s.B.X-s.A.X), s.A.Y + t*(s.B.Y-s.A.Y)}
		if r.ContainsPoint(p) {
			return true
		}
	}
	return false
}

func TestIntersectsRectAgainstSamplingOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		r := Rect{
			Min: Point{rng.Float64() * 10, rng.Float64() * 10},
		}
		r.Max = Point{r.Min.X + rng.Float64()*5 + 0.5, r.Min.Y + rng.Float64()*5 + 0.5}
		s := Segment{
			Point{rng.Float64()*20 - 5, rng.Float64()*20 - 5},
			Point{rng.Float64()*20 - 5, rng.Float64()*20 - 5},
		}
		got := s.IntersectsRect(r)
		want := bruteIntersects(s, r)
		// The sampling oracle can miss razor-thin grazes, so only demand
		// agreement when the oracle says true, or when the exact distance
		// from the rect is comfortably positive.
		if want && !got {
			t.Fatalf("case %d: IntersectsRect(%v, %v) = false, oracle found inside point", i, s, r)
		}
		if got && !want {
			// verify the claim: some rect corner/edge must be within eps of s
			d := math.Min(
				math.Min(s.DistToPoint(r.Min), s.DistToPoint(r.Max)),
				math.Min(s.DistToPoint(Point{r.Min.X, r.Max.Y}), s.DistToPoint(Point{r.Max.X, r.Min.Y})),
			)
			if d > 0.01 && !bruteIntersects(s, r.Expand(1e-9)) {
				t.Fatalf("case %d: IntersectsRect(%v, %v) = true, oracle disagrees (corner dist %g)", i, s, r, d)
			}
		}
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{Point{0, 0}, Point{4, 3}}
	if r.Area() != 12 {
		t.Errorf("Area = %g, want 12", r.Area())
	}
	if r.Width() != 4 || r.Height() != 3 {
		t.Errorf("Width/Height = %g/%g", r.Width(), r.Height())
	}
	if c := r.Center(); c != (Point{2, 1.5}) {
		t.Errorf("Center = %v", c)
	}
	if r.IsEmpty() {
		t.Error("non-empty rect reported empty")
	}
	if !EmptyRect().IsEmpty() {
		t.Error("EmptyRect not empty")
	}
	if EmptyRect().Area() != 0 {
		t.Error("EmptyRect area != 0")
	}
}

func TestRectUnionIntersection(t *testing.T) {
	a := Rect{Point{0, 0}, Point{2, 2}}
	b := Rect{Point{1, 1}, Point{3, 3}}
	if got := a.Union(b); got != (Rect{Point{0, 0}, Point{3, 3}}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersection(b); got != (Rect{Point{1, 1}, Point{2, 2}}) {
		t.Errorf("Intersection = %v", got)
	}
	c := Rect{Point{5, 5}, Point{6, 6}}
	if !a.Intersection(c).IsEmpty() {
		t.Error("disjoint Intersection not empty")
	}
	if got := a.Union(EmptyRect()); got != a {
		t.Errorf("Union with empty = %v, want %v", got, a)
	}
	if got := EmptyRect().Union(a); got != a {
		t.Errorf("empty Union a = %v, want %v", got, a)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{Point{0, 0}, Point{10, 10}}
	if !r.ContainsRect(Rect{Point{1, 1}, Point{9, 9}}) {
		t.Error("inner rect not contained")
	}
	if r.ContainsRect(Rect{Point{1, 1}, Point{11, 9}}) {
		t.Error("overhanging rect contained")
	}
	if !r.ContainsRect(r) {
		t.Error("rect does not contain itself")
	}
	if !r.ContainsRect(EmptyRect()) {
		t.Error("empty rect not contained")
	}
}

func TestMinDist(t *testing.T) {
	r := Rect{Point{0, 0}, Point{10, 10}}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{5, 5}, 0},
		{Point{-3, 5}, 3},
		{Point{5, 14}, 4},
		{Point{-3, -4}, 5},
		{Point{13, 14}, 5},
		{Point{0, 0}, 0},
	}
	for _, c := range cases {
		if got := r.MinDist(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MinDist(%v) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestMinMaxDistBoundsMinDist(t *testing.T) {
	// MINDIST <= MINMAXDIST for every rect/point pair (Roussopoulos §3).
	f := func(px, py, ax, ay, w, h float64) bool {
		px, py = math.Mod(px, 100), math.Mod(py, 100)
		ax, ay = math.Mod(ax, 100), math.Mod(ay, 100)
		w, h = math.Abs(math.Mod(w, 50))+0.01, math.Abs(math.Mod(h, 50))+0.01
		r := Rect{Point{ax, ay}, Point{ax + w, ay + h}}
		p := Point{px, py}
		return r.MinDist(p) <= r.MinMaxDist(p)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxDistGuarantee(t *testing.T) {
	// If a segment's MBR is r, the distance from p to the segment can exceed
	// MinMaxDist(r) of the *segment's own MBR* only in pathological cases;
	// but for the canonical use (rect with an object touching each face) the
	// bound must hold for diagonal segments, which touch all four faces.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		s := Segment{
			Point{rng.Float64() * 100, rng.Float64() * 100},
			Point{rng.Float64() * 100, rng.Float64() * 100},
		}
		r := s.MBR()
		p := Point{rng.Float64() * 100, rng.Float64() * 100}
		if d := s.DistToPoint(p); d > r.MinMaxDist(p)+1e-9 {
			t.Fatalf("segment dist %g exceeds MinMaxDist %g (s=%v p=%v)", d, r.MinMaxDist(p), s, p)
		}
	}
}

func TestMinDistEuclideanLowerBound(t *testing.T) {
	// MinDist(p) must lower-bound the distance from p to any point in r.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		r := Rect{Point{rng.Float64() * 50, rng.Float64() * 50}, Point{}}
		r.Max = Point{r.Min.X + rng.Float64()*20, r.Min.Y + rng.Float64()*20}
		p := Point{rng.Float64() * 100, rng.Float64() * 100}
		q := Point{
			r.Min.X + rng.Float64()*r.Width(),
			r.Min.Y + rng.Float64()*r.Height(),
		}
		if r.MinDist(p) > p.Dist(q)+1e-9 {
			t.Fatalf("MinDist %g exceeds actual dist %g", r.MinDist(p), p.Dist(q))
		}
	}
}

func TestExpand(t *testing.T) {
	r := Rect{Point{2, 2}, Point{4, 4}}
	if got := r.Expand(1); got != (Rect{Point{1, 1}, Point{5, 5}}) {
		t.Errorf("Expand(1) = %v", got)
	}
	if got := r.Expand(-2); !got.IsEmpty() {
		t.Errorf("Expand(-2) = %v, want empty", got)
	}
}

func TestPointOps(t *testing.T) {
	p, q := Point{3, 4}, Point{0, 0}
	if p.Dist(q) != 5 {
		t.Errorf("Dist = %g", p.Dist(q))
	}
	if p.DistSq(q) != 25 {
		t.Errorf("DistSq = %g", p.DistSq(q))
	}
	if p.Dot(Point{1, 2}) != 11 {
		t.Errorf("Dot = %g", p.Dot(Point{1, 2}))
	}
	if p.Cross(Point{1, 2}) != 2 {
		t.Errorf("Cross = %g", p.Cross(Point{1, 2}))
	}
}

func TestSegmentLengthMidpoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{6, 8}}
	if s.Length() != 10 {
		t.Errorf("Length = %g", s.Length())
	}
	if s.Midpoint() != (Point{3, 4}) {
		t.Errorf("Midpoint = %v", s.Midpoint())
	}
}

func TestDistSymmetryQuick(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIntersectsRect(b *testing.B) {
	r := Rect{Point{0, 0}, Point{10, 10}}
	s := Segment{Point{-5, 3}, Point{15, 8}}
	for i := 0; i < b.N; i++ {
		s.IntersectsRect(r)
	}
}

func BenchmarkDistToPoint(b *testing.B) {
	s := Segment{Point{0, 0}, Point{10, 7}}
	p := Point{4, 9}
	for i := 0; i < b.N; i++ {
		s.DistToPoint(p)
	}
}
