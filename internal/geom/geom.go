// Package geom provides the planar geometry primitives used by the spatial
// index and the query refinement steps: points, line segments, and axis-
// aligned rectangles (minimum bounding rectangles, MBRs).
//
// All coordinates are float64 in an abstract map unit (the synthetic datasets
// use one unit ≈ one meter). The predicates implemented here are exactly the
// ones the paper's queries need: point–segment incidence (point queries),
// segment–rectangle intersection (range queries), and point–segment distance
// (nearest-neighbor queries), plus the MINDIST metric used to order and prune
// the branch-and-bound nearest-neighbor search.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Sub returns the vector p − q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dot returns the dot product of p and q treated as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product of p and q treated as
// vectors.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Segment is a line segment between two endpoints. Segments are the data
// items of the road-atlas datasets (streets are polylines broken into
// individual segments, as in the TIGER data the paper uses).
type Segment struct {
	A, B Point
}

// String implements fmt.Stringer.
func (s Segment) String() string { return fmt.Sprintf("[%v-%v]", s.A, s.B) }

// MBR returns the minimum bounding rectangle of the segment.
func (s Segment) MBR() Rect {
	return Rect{
		Min: Point{math.Min(s.A.X, s.B.X), math.Min(s.A.Y, s.B.Y)},
		Max: Point{math.Max(s.A.X, s.B.X), math.Max(s.A.Y, s.B.Y)},
	}
}

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the midpoint of the segment.
func (s Segment) Midpoint() Point {
	return Point{(s.A.X + s.B.X) / 2, (s.A.Y + s.B.Y) / 2}
}

// ContainsPoint reports whether p lies on the segment within tolerance eps.
// This is the refinement predicate of the point query: the filtering step
// short-lists segments whose MBR contains p; refinement checks incidence.
func (s Segment) ContainsPoint(p Point, eps float64) bool {
	return s.DistToPoint(p) <= eps
}

// DistToPoint returns the distance from p to the nearest point of the
// segment: the perpendicular distance if the foot of the perpendicular falls
// on the segment, otherwise the distance to the closer endpoint (exactly the
// definition in §3 of the paper).
func (s Segment) DistToPoint(p Point) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 == 0 {
		return p.Dist(s.A) // degenerate segment
	}
	t := p.Sub(s.A).Dot(d) / l2
	switch {
	case t <= 0:
		return p.Dist(s.A)
	case t >= 1:
		return p.Dist(s.B)
	}
	proj := Point{s.A.X + t*d.X, s.A.Y + t*d.Y}
	return p.Dist(proj)
}

// IntersectsRect reports whether any point of the segment lies inside or on
// the rectangle. This is the refinement predicate of the range query. It
// uses the Cohen–Sutherland style trivial accept/reject followed by exact
// edge tests.
func (s Segment) IntersectsRect(r Rect) bool {
	// Trivial accept: either endpoint inside.
	if r.ContainsPoint(s.A) || r.ContainsPoint(s.B) {
		return true
	}
	// Trivial reject: segment MBR disjoint from r.
	if !r.Intersects(s.MBR()) {
		return false
	}
	// Exact: does the segment cross any of the four rectangle edges?
	corners := [4]Point{
		{r.Min.X, r.Min.Y},
		{r.Max.X, r.Min.Y},
		{r.Max.X, r.Max.Y},
		{r.Min.X, r.Max.Y},
	}
	for i := 0; i < 4; i++ {
		edge := Segment{corners[i], corners[(i+1)%4]}
		if segmentsIntersect(s, edge) {
			return true
		}
	}
	return false
}

// SegmentsIntersect reports whether segments s and t share at least one
// point, including touching endpoints and collinear overlap — the
// refinement predicate of the spatial (intersection) join.
func SegmentsIntersect(s, t Segment) bool { return segmentsIntersect(s, t) }

// segmentsIntersect reports whether segments s and t share at least one
// point, including touching endpoints and collinear overlap.
func segmentsIntersect(s, t Segment) bool {
	d1 := orient(t.A, t.B, s.A)
	d2 := orient(t.A, t.B, s.B)
	d3 := orient(s.A, s.B, t.A)
	d4 := orient(s.A, s.B, t.B)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && onSegment(t, s.A):
		return true
	case d2 == 0 && onSegment(t, s.B):
		return true
	case d3 == 0 && onSegment(s, t.A):
		return true
	case d4 == 0 && onSegment(s, t.B):
		return true
	}
	return false
}

// orient returns the sign of the signed area of triangle (a, b, c): positive
// for counter-clockwise, negative for clockwise, zero for collinear.
func orient(a, b, c Point) float64 {
	return b.Sub(a).Cross(c.Sub(a))
}

// onSegment reports whether collinear point p lies within the bounding box of
// segment s. Callers must have established collinearity.
func onSegment(s Segment, p Point) bool {
	return math.Min(s.A.X, s.B.X) <= p.X && p.X <= math.Max(s.A.X, s.B.X) &&
		math.Min(s.A.Y, s.B.Y) <= p.Y && p.Y <= math.Max(s.A.Y, s.B.Y)
}

// Rect is an axis-aligned rectangle, closed on all sides. The zero value is
// the degenerate rectangle at the origin; use EmptyRect for an identity
// element under Union.
type Rect struct {
	Min, Max Point
}

// EmptyRect returns the identity element for Union: a rectangle that contains
// nothing and unions to the other operand.
func EmptyRect() Rect {
	inf := math.Inf(1)
	return Rect{Min: Point{inf, inf}, Max: Point{-inf, -inf}}
}

// String implements fmt.Stringer.
func (r Rect) String() string { return fmt.Sprintf("{%v %v}", r.Min, r.Max) }

// IsEmpty reports whether the rectangle contains no points.
func (r Rect) IsEmpty() bool { return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y }

// Width returns the extent of the rectangle along x.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the extent of the rectangle along y.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of the rectangle; empty rectangles have zero area.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Width() * r.Height()
}

// Center returns the center point of the rectangle.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// ContainsPoint reports whether p lies inside or on the boundary of r.
func (r Rect) ContainsPoint(p Point) bool {
	return r.Min.X <= p.X && p.X <= r.Max.X && r.Min.Y <= p.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely within r. An empty s is
// contained in every rectangle.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return r.Min.X <= s.Min.X && s.Max.X <= r.Max.X &&
		r.Min.Y <= s.Min.Y && s.Max.Y <= r.Max.Y
}

// Intersects reports whether r and s share at least one point. This is the
// filtering predicate: the R-tree traversal descends into every child whose
// MBR intersects the query window.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Intersection returns the overlap of r and s; the result is empty when they
// are disjoint.
func (r Rect) Intersection(s Rect) Rect {
	out := Rect{
		Min: Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// Expand returns r grown by d on every side (shrunk for negative d).
func (r Rect) Expand(d float64) Rect {
	out := Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// MinDist returns the MINDIST metric of Roussopoulos et al.: the minimum
// possible distance from p to any point inside r. It is zero when p is inside
// r. The branch-and-bound nearest-neighbor search orders and prunes subtrees
// by this value.
func (r Rect) MinDist(p Point) float64 {
	dx := axisDist(p.X, r.Min.X, r.Max.X)
	dy := axisDist(p.Y, r.Min.Y, r.Max.Y)
	return math.Hypot(dx, dy)
}

// MinMaxDist returns the MINMAXDIST metric of Roussopoulos et al.: the
// minimum over the rectangle's faces of the maximum distance from p to that
// face. Any rectangle that bounds at least one data object is guaranteed to
// contain an object within MinMaxDist of p, so it is a valid pruning bound.
func (r Rect) MinMaxDist(p Point) float64 {
	if r.IsEmpty() {
		return math.Inf(1)
	}
	rmX := nearerEdge(p.X, r.Min.X, r.Max.X)
	rmY := nearerEdge(p.Y, r.Min.Y, r.Max.Y)
	rMX := fartherEdge(p.X, r.Min.X, r.Max.X)
	rMY := fartherEdge(p.Y, r.Min.Y, r.Max.Y)
	// Fix x to the nearer x-edge, y roams to the farther y-edge — and vice
	// versa; take the minimum of the two.
	dx := math.Hypot(p.X-rmX, p.Y-rMY)
	dy := math.Hypot(p.X-rMX, p.Y-rmY)
	return math.Min(dx, dy)
}

func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	}
	return 0
}

func nearerEdge(v, lo, hi float64) float64 {
	if v <= (lo+hi)/2 {
		return lo
	}
	return hi
}

func fartherEdge(v, lo, hi float64) float64 {
	if v >= (lo+hi)/2 {
		return lo
	}
	return hi
}
