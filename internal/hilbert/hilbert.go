// Package hilbert implements the Hilbert space-filling curve used to
// linearize two-dimensional space. Kamel and Faloutsos ("On Packing
// R-trees", CIKM 1993) sort the data items by the Hilbert value of their MBR
// centroid before bulk-loading the packed R-tree; this is the structure the
// paper evaluates, so the curve is a core substrate here.
//
// The implementation is the classic iterative rotate-and-flip walk over a
// 2^order × 2^order grid. Encode and Decode are exact inverses for every cell
// of the grid, which the property tests in this package verify exhaustively
// for small orders and probabilistically for large ones.
package hilbert

// Order is the default curve order used by the index bulk loader: a
// 2^16 × 2^16 grid is fine enough that distinct street segments in the
// datasets almost never collide in one cell.
const Order = 16

// Encode returns the distance along the Hilbert curve of order `order` at
// which the cell (x, y) is visited. x and y must be in [0, 2^order).
func Encode(order uint, x, y uint32) uint64 {
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = rotate(s, x, y, rx, ry)
	}
	return d
}

// Decode returns the cell (x, y) visited at distance d along the Hilbert
// curve of order `order`. It is the inverse of Encode.
func Decode(order uint, d uint64) (x, y uint32) {
	t := d
	for s := uint32(1); s < uint32(1)<<order; s <<= 1 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & uint32(t^uint64(rx))
		x, y = rotate(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// rotate rotates/flips the quadrant so the curve orientation is correct for
// the next level of recursion.
func rotate(s, x, y, rx, ry uint32) (uint32, uint32) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// Quantizer maps continuous coordinates inside a bounding box onto the
// Hilbert grid so that arbitrary map-unit geometry can be linearized.
type Quantizer struct {
	order          uint
	minX, minY     float64
	maxX, maxY     float64
	scaleX, scaleY float64
	maxCell        uint32
}

// NewQuantizer returns a Quantizer for the box [minX,maxX] × [minY,maxY] at
// the given curve order. Degenerate extents (zero width or height) are
// handled by collapsing that axis to cell 0.
func NewQuantizer(order uint, minX, minY, maxX, maxY float64) *Quantizer {
	q := &Quantizer{
		order:   order,
		minX:    minX,
		minY:    minY,
		maxX:    maxX,
		maxY:    maxY,
		maxCell: uint32(1)<<order - 1,
	}
	if dx := maxX - minX; dx > 0 {
		q.scaleX = float64(q.maxCell) / dx
	}
	if dy := maxY - minY; dy > 0 {
		q.scaleY = float64(q.maxCell) / dy
	}
	return q
}

// Value returns the Hilbert value of the continuous point (x, y). Points
// outside the quantizer's box are clamped onto its boundary.
func (q *Quantizer) Value(x, y float64) uint64 {
	return Encode(q.order,
		q.cell(x, q.minX, q.maxX, q.scaleX),
		q.cell(y, q.minY, q.maxY, q.scaleY))
}

func (q *Quantizer) cell(v, min, max, scale float64) uint32 {
	// Clamp the coordinate first so every out-of-box input lands on exactly
	// the same cell as the corresponding boundary point.
	if v < min {
		v = min
	}
	if v > max {
		v = max
	}
	c := (v - min) * scale
	if c <= 0 {
		return 0
	}
	if c >= float64(q.maxCell) {
		return q.maxCell
	}
	return uint32(c)
}
