package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTripExhaustiveSmall(t *testing.T) {
	const order = 5
	side := uint32(1) << order
	seen := make(map[uint64]bool, side*side)
	for x := uint32(0); x < side; x++ {
		for y := uint32(0); y < side; y++ {
			d := Encode(order, x, y)
			if d >= uint64(side)*uint64(side) {
				t.Fatalf("Encode(%d,%d,%d) = %d out of range", order, x, y, d)
			}
			if seen[d] {
				t.Fatalf("duplicate Hilbert value %d at (%d,%d)", d, x, y)
			}
			seen[d] = true
			gx, gy := Decode(order, d)
			if gx != x || gy != y {
				t.Fatalf("Decode(Encode(%d,%d)) = (%d,%d)", x, y, gx, gy)
			}
		}
	}
	if len(seen) != int(side*side) {
		t.Fatalf("curve visited %d cells, want %d", len(seen), side*side)
	}
}

func TestCurveIsContinuous(t *testing.T) {
	// Consecutive curve positions must be 4-neighbors in the grid: that
	// adjacency is the locality property the packed R-tree relies on.
	const order = 6
	px, py := Decode(order, 0)
	for d := uint64(1); d < 1<<(2*order); d++ {
		x, y := Decode(order, d)
		dx := int64(x) - int64(px)
		dy := int64(y) - int64(py)
		if dx*dx+dy*dy != 1 {
			t.Fatalf("curve jumps from (%d,%d) to (%d,%d) at d=%d", px, py, x, y, d)
		}
		px, py = x, y
	}
}

func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	f := func(x, y uint32) bool {
		x &= 1<<Order - 1
		y &= 1<<Order - 1
		gx, gy := Decode(Order, Encode(Order, x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizerClamps(t *testing.T) {
	q := NewQuantizer(8, 0, 0, 100, 100)
	lo := q.Value(-5, -5)
	if lo != q.Value(0, 0) {
		t.Errorf("below-range point not clamped to origin cell: %d vs %d", lo, q.Value(0, 0))
	}
	hi := q.Value(200, 200)
	if hi != q.Value(100, 100) {
		t.Errorf("above-range point not clamped to max cell: %d vs %d", hi, q.Value(100, 100))
	}
}

func TestQuantizerDegenerateExtent(t *testing.T) {
	q := NewQuantizer(8, 5, 5, 5, 5) // zero-area box
	if got := q.Value(5, 5); got != Encode(8, 0, 0) {
		t.Errorf("degenerate quantizer: got %d, want cell (0,0) value %d", got, Encode(8, 0, 0))
	}
}

func TestQuantizerPreservesLocality(t *testing.T) {
	// Nearby points should usually have nearby Hilbert values. We check a
	// statistical version: the mean |Δd| for pairs at distance 1/256 of the
	// extent must be far below the mean for random pairs.
	q := NewQuantizer(Order, 0, 0, 1, 1)
	rng := rand.New(rand.NewSource(42))
	var near, far float64
	const n = 2000
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*0.99, rng.Float64()*0.99
		d0 := q.Value(x, y)
		d1 := q.Value(x+1.0/256, y)
		near += absDiff(d0, d1)
		d2 := q.Value(rng.Float64(), rng.Float64())
		far += absDiff(d0, d2)
	}
	if near >= far/10 {
		t.Errorf("locality too weak: mean near Δ=%g, mean random Δ=%g", near/n, far/n)
	}
}

func absDiff(a, b uint64) float64 {
	if a > b {
		return float64(a - b)
	}
	return float64(b - a)
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Encode(Order, uint32(i)&0xFFFF, uint32(i>>8)&0xFFFF)
	}
}
