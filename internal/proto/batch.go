// batch.go: the micro-batching wire messages. §4.1's protocol cost has a
// fixed per-exchange part (frame headers, packet headers, the NIC's
// sleep→active transition) and a per-result part; batching N queries into
// one frame exchange amortizes the fixed part over N. One BatchQueryMsg
// carries N independent queries; the BatchReplyMsg answers all of them in
// order, each sub-answer succeeding or failing independently.
package proto

import "fmt"

// The batch message types extend the catalogue of wire.go.
const (
	// MsgBatchQuery carries N query requests in one frame.
	MsgBatchQuery MsgType = 10
	// MsgBatchReply answers a batch: one item per query, in request order.
	MsgBatchReply MsgType = 11
)

// MaxBatchQueries bounds one batch's sub-queries.
const MaxBatchQueries = 1024

// wireQueryBytes is the fixed encoded size of one QueryMsg payload:
// id(4) + kind(1) + mode(1) + k(2) + point(16) + window(32) + eps(8) +
// timeout(4).
const wireQueryBytes = 68

// BatchQueryMsg is N queries in one frame. The per-query TimeoutMicros
// fields are ignored; the batch-level timeout governs the whole exchange.
type BatchQueryMsg struct {
	ID            uint32
	TimeoutMicros uint32
	Queries       []QueryMsg
}

// Type implements Message.
func (m *BatchQueryMsg) Type() MsgType { return MsgBatchQuery }

// RequestID implements Message.
func (m *BatchQueryMsg) RequestID() uint32 { return m.ID }

// Validate implements Message.
func (m *BatchQueryMsg) Validate() error {
	if len(m.Queries) == 0 {
		return fmt.Errorf("proto: empty batch")
	}
	if len(m.Queries) > MaxBatchQueries {
		return fmt.Errorf("proto: batch of %d queries exceeds %d", len(m.Queries), MaxBatchQueries)
	}
	for i := range m.Queries {
		if err := m.Queries[i].Validate(); err != nil {
			return fmt.Errorf("proto: batch query %d: %w", i, err)
		}
	}
	return nil
}

func (m *BatchQueryMsg) appendPayload(b []byte) []byte {
	b = appendU32(b, m.ID)
	b = appendU32(b, m.TimeoutMicros)
	b = appendU16(b, uint16(len(m.Queries)))
	for i := range m.Queries {
		b = m.Queries[i].appendPayload(b)
	}
	return b
}

func (m *BatchQueryMsg) decodePayload(b []byte) error {
	d := decoder{b: b}
	m.ID = d.u32()
	m.TimeoutMicros = d.u32()
	n := int(d.u16())
	if d.err == nil && n*wireQueryBytes != len(d.b)-d.off {
		return fmt.Errorf("proto: batch count %d does not match %d payload bytes", n, len(d.b)-d.off)
	}
	qs := m.Queries[:0]
	for i := 0; i < n; i++ {
		qb := d.bytes(wireQueryBytes)
		if d.err != nil {
			break
		}
		qs = append(qs, QueryMsg{})
		if err := qs[i].decodePayload(qb); err != nil {
			m.Queries = qs
			return err
		}
	}
	m.Queries = qs
	return d.finish("batch-query")
}

// BatchItem is one sub-answer of a batch reply. Exactly one of the three
// shapes is meaningful: an error (Err != 0), records (data-mode answers), or
// ids (everything else — an empty answer is an empty id list).
type BatchItem struct {
	IDs  []uint32
	Recs []Record
	Err  ErrCode
	Text string
}

// Batch item payload tags.
const (
	batchTagIDs  = 0
	batchTagRecs = 1
	batchTagErr  = 2
)

// tag picks the deterministic wire shape of an item from its contents, so
// decode→encode is a fixed point.
func (it *BatchItem) tag() uint8 {
	switch {
	case it.Err != 0:
		return batchTagErr
	case len(it.Recs) > 0:
		return batchTagRecs
	default:
		return batchTagIDs
	}
}

// BatchReplyMsg answers a BatchQueryMsg: Items[i] answers Queries[i].
type BatchReplyMsg struct {
	ID uint32
	// Epoch is the index-state fingerprint at answer time (see
	// IDListMsg.Epoch); 0 = no epoch information.
	Epoch uint64
	Items []BatchItem
}

// Type implements Message.
func (m *BatchReplyMsg) Type() MsgType { return MsgBatchReply }

// RequestID implements Message.
func (m *BatchReplyMsg) RequestID() uint32 { return m.ID }

// Validate implements Message.
func (m *BatchReplyMsg) Validate() error {
	if len(m.Items) == 0 {
		return fmt.Errorf("proto: empty batch reply")
	}
	if len(m.Items) > MaxBatchQueries {
		return fmt.Errorf("proto: batch reply of %d items exceeds %d", len(m.Items), MaxBatchQueries)
	}
	for i := range m.Items {
		it := &m.Items[i]
		if len(it.IDs) > 0 && len(it.Recs) > 0 {
			return fmt.Errorf("proto: batch item %d has both ids and records", i)
		}
		if it.Err != 0 && (len(it.IDs) > 0 || len(it.Recs) > 0) {
			return fmt.Errorf("proto: batch item %d has both an error and results", i)
		}
		if len(it.Text) > MaxErrorText {
			return fmt.Errorf("proto: batch item %d error text %d bytes exceeds %d", i, len(it.Text), MaxErrorText)
		}
		if it.Err == 0 && it.Text != "" {
			return fmt.Errorf("proto: batch item %d has error text without a code", i)
		}
		if err := validateRecords("batch item", it.Recs); err != nil {
			return err
		}
	}
	return nil
}

func (m *BatchReplyMsg) appendPayload(b []byte) []byte {
	b = appendU32(b, m.ID)
	b = binaryAppendU64(b, m.Epoch)
	b = appendU16(b, uint16(len(m.Items)))
	for i := range m.Items {
		it := &m.Items[i]
		t := it.tag()
		b = append(b, t)
		switch t {
		case batchTagErr:
			b = appendU16(b, uint16(it.Err))
			b = appendU16(b, uint16(len(it.Text)))
			b = append(b, it.Text...)
		case batchTagRecs:
			b = appendRecords(b, it.Recs)
		default:
			b = appendU32(b, uint32(len(it.IDs)))
			for _, id := range it.IDs {
				b = appendU32(b, id)
			}
		}
	}
	return b
}

func (m *BatchReplyMsg) decodePayload(b []byte) error {
	d := decoder{b: b}
	m.ID = d.u32()
	m.Epoch = d.u64()
	n := int(d.u16())
	if n > MaxBatchQueries {
		return fmt.Errorf("proto: batch reply count %d exceeds %d", n, MaxBatchQueries)
	}
	items := m.Items[:0]
	for i := 0; i < n && d.err == nil; i++ {
		if cap(items) > i {
			items = items[:i+1]
		} else {
			items = append(items, BatchItem{})
		}
		it := &items[i]
		it.IDs = it.IDs[:0]
		it.Recs = it.Recs[:0]
		it.Err = 0
		it.Text = ""
		switch tag := d.u8(); tag {
		case batchTagErr:
			it.Err = ErrCode(d.u16())
			tn := int(d.u16())
			it.Text = string(d.bytes(tn))
			if d.err == nil && it.Err == 0 {
				return fmt.Errorf("proto: batch item %d error with zero code", i)
			}
		case batchTagRecs:
			it.Recs = d.appendRecordsN(it.Recs, int(d.u32()))
		case batchTagIDs:
			it.IDs = d.appendIDsN(it.IDs, int(d.u32()))
		default:
			return fmt.Errorf("proto: batch item %d has unknown tag %d", i, tag)
		}
	}
	m.Items = items
	return d.finish("batch-reply")
}
