package proto

import (
	"bytes"
	"io"
	"testing"

	"mobispatial/internal/geom"
)

// The zero-allocation regression tests for the wire hot path: once the
// pools are warm, encoding a frame and decoding+releasing a frame must not
// touch the heap. testing.AllocsPerRun runs the body once to warm up before
// measuring, which primes the pools.

func TestFrameEncodeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	reply := &IDListMsg{ID: 1, IDs: []uint32{10, 20, 30, 40, 50, 60, 70, 80}}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := WriteMessage(io.Discard, reply); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("warm WriteMessage: %.1f allocs/op, want 0", n)
	}

	var buf []byte
	if n := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = AppendFrame(buf[:0], reply)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("warm AppendFrame: %.1f allocs/op, want 0", n)
	}
}

func TestFrameDecodeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	frames := [][]byte{}
	for _, m := range []Message{
		&QueryMsg{ID: 1, Kind: KindRange, Mode: ModeIDs,
			Window: geom.Rect{Max: geom.Point{X: 10, Y: 10}}},
		&IDListMsg{ID: 2, IDs: []uint32{1, 2, 3, 4, 5, 6, 7, 8}},
		&DataListMsg{ID: 3, Records: []Record{
			{ID: 1, Seg: geom.Segment{A: geom.Point{X: 1, Y: 1}, B: geom.Point{X: 2, Y: 2}}},
			{ID: 2, Seg: geom.Segment{A: geom.Point{X: 3, Y: 3}, B: geom.Point{X: 4, Y: 4}}},
		}},
		&BatchQueryMsg{ID: 4, Queries: []QueryMsg{
			{Kind: KindPoint, Mode: ModeIDs, Point: geom.Point{X: 1, Y: 1}},
			{Kind: KindRange, Mode: ModeIDs, Window: geom.Rect{Max: geom.Point{X: 2, Y: 2}}},
		}},
		&BatchReplyMsg{ID: 5, Items: []BatchItem{
			{IDs: []uint32{1, 2, 3}},
			{Recs: []Record{{ID: 9, Seg: geom.Segment{A: geom.Point{X: 1, Y: 1}, B: geom.Point{X: 2, Y: 2}}}}},
		}},
	} {
		f, err := EncodeMessage(m)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	rd := bytes.NewReader(nil)
	if n := testing.AllocsPerRun(200, func() {
		for _, f := range frames {
			rd.Reset(f)
			m, _, err := ReadMessage(rd)
			if err != nil {
				t.Fatal(err)
			}
			ReleaseMessage(m)
		}
	}); n != 0 {
		t.Fatalf("warm ReadMessage+ReleaseMessage: %.2f allocs/op, want 0", n)
	}
}
