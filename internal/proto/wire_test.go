package proto

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"testing"

	"mobispatial/internal/geom"
)

// allMessages returns one populated instance of every wire message type used
// by internal/serve.
func allMessages() []Message {
	return []Message{
		&QueryMsg{ID: 7, Kind: KindRange, Mode: ModeIDs,
			Window:        geom.Rect{Min: geom.Point{X: 1, Y: 2}, Max: geom.Point{X: 30, Y: 40}},
			Eps:           2.0,
			TimeoutMicros: 250_000},
		&QueryMsg{ID: 8, Kind: KindPoint, Mode: ModeData, Point: geom.Point{X: -5.5, Y: 12.25}, Eps: 1},
		&QueryMsg{ID: 9, Kind: KindNN, Mode: ModeIDs, K: 5, Point: geom.Point{X: 0, Y: 0}},
		&IDListMsg{ID: 7, IDs: []uint32{1, 2, 3, 0xFFFFFFFF}},
		&IDListMsg{ID: 10, IDs: nil},
		&DataListMsg{ID: 11, Records: []Record{
			{ID: 4, Seg: geom.Segment{A: geom.Point{X: 1, Y: 1}, B: geom.Point{X: 2, Y: 2}}},
			{ID: 5, Seg: geom.Segment{A: geom.Point{X: -1, Y: 0.5}, B: geom.Point{X: 0, Y: 0}}},
		}},
		&DataListMsg{ID: 12},
		&ShipmentReqMsg{ID: 13,
			Window:      geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 100, Y: 100}},
			BudgetBytes: 1 << 20, RecordBytes: 76, TimeoutMicros: 1_000_000},
		&ShipmentMsg{ID: 13,
			Coverage: geom.Rect{Min: geom.Point{X: -10, Y: -10}, Max: geom.Point{X: 110, Y: 110}},
			Records: []Record{
				{ID: 9, Seg: geom.Segment{A: geom.Point{X: 3, Y: 4}, B: geom.Point{X: 5, Y: 6}}},
			}},
		&ShipmentMsg{ID: 14, Coverage: geom.EmptyRect()}, // no-guarantee shipment
		&ErrorMsg{ID: 15, Code: CodeOverload, Text: "too many in-flight requests"},
		&PingMsg{ID: 16, Payload: []byte("abcdefgh")},
		&PingMsg{ID: 17},
		&StatsReqMsg{ID: 18},
		&StatsMsg{ID: 18, UptimeMicros: 12_345_678,
			Counters: []StatCounter{
				{Name: "serve_requests_total", Value: 42},
				{Name: `serve_queries_total{kind="range",mode="ids"}`, Value: 7},
			},
			Gauges: []StatGauge{{Name: "client_link_bandwidth_bps", Value: 2e6}},
			Hists: []StatHist{{
				Name: `serve_exec_seconds{kind="point"}`, Count: 42,
				Mean: 0.002, Min: 0.0001, Max: 0.5, P50: 0.0015, P95: 0.02, P99: 0.3,
			}},
		},
		&StatsMsg{ID: 19}, // an empty snapshot is legal
		&BatchQueryMsg{ID: 20, TimeoutMicros: 500_000, Queries: []QueryMsg{
			{ID: 1, Kind: KindRange, Mode: ModeIDs,
				Window: geom.Rect{Min: geom.Point{X: 1, Y: 2}, Max: geom.Point{X: 3, Y: 4}}},
			{ID: 2, Kind: KindPoint, Mode: ModeData, Point: geom.Point{X: 9, Y: 9}, Eps: 0.5},
			{ID: 3, Kind: KindNN, Mode: ModeIDs, K: 3, Point: geom.Point{X: -1, Y: -2}},
		}},
		&BatchReplyMsg{ID: 20, Items: []BatchItem{
			{IDs: []uint32{5, 6, 7}},
			{Recs: []Record{{ID: 8, Seg: geom.Segment{A: geom.Point{X: 1, Y: 1}, B: geom.Point{X: 2, Y: 2}}}}},
			{Err: CodeBadRequest, Text: "k too large"},
			{}, // an empty answer is an empty id list
		}},
		&NNQueryMsg{ID: 21, Point: geom.Point{X: 3.5, Y: -7}, K: 8, Bound: 123.25, TimeoutMicros: 100_000},
		&NNQueryMsg{ID: 22, Point: geom.Point{X: 0, Y: 0}, Bound: math.Inf(1)}, // unbounded leg
		&NeighborsMsg{ID: 21, Neighbors: []Neighbor{{ID: 4, Dist: 0}, {ID: 9, Dist: 12.5}}},
		&NeighborsMsg{ID: 23}, // empty answer
		&SummaryReqMsg{ID: 24},
		&SummaryMsg{ID: 24, NumRanges: 3, Items: 1000,
			Bounds: geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 90, Y: 90}},
			Ranges: []RangeInfo{
				{Index: 0, Items: 400, Lo: 0, Hi: 99, Version: 7,
					MBR: geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 50, Y: 40}}},
				{Index: 2, Items: 600, Lo: 200, Hi: 1 << 40, Version: 1 << 50,
					MBR: geom.Rect{Min: geom.Point{X: 30, Y: 20}, Max: geom.Point{X: 90, Y: 90}}},
			}},
		&SummaryMsg{ID: 25, Bounds: geom.EmptyRect()}, // an empty backend is legal
		&InsertMsg{ID: 26, ObjID: 150_000,
			Seg:           geom.Segment{A: geom.Point{X: 10, Y: 20}, B: geom.Point{X: 11, Y: 21}},
			TimeoutMicros: 100_000},
		&InsertMsg{ID: 27, ObjID: 0, Seg: geom.Segment{}}, // zero-area point object
		&DeleteMsg{ID: 28, ObjID: 150_000, TimeoutMicros: 50_000},
		&MoveMsg{ID: 29, ObjID: 150_001,
			Seg: geom.Segment{A: geom.Point{X: -3.5, Y: 7}, B: geom.Point{X: -3.5, Y: 7}}},
		&UpdateAckMsg{ID: 29, ObjID: 150_001, Epoch: 42, Existed: true, Owned: true},
		&UpdateAckMsg{ID: 30, ObjID: 5, Epoch: 0}, // miss on a non-owning server
	}
}

// TestWireRoundTrip encodes and decodes every message type and requires the
// decoded value to equal the original.
func TestWireRoundTrip(t *testing.T) {
	for _, m := range allMessages() {
		var buf bytes.Buffer
		n, err := WriteMessage(&buf, m)
		if err != nil {
			t.Fatalf("%v: write: %v", m.Type(), err)
		}
		if n != buf.Len() {
			t.Fatalf("%v: WriteMessage reported %d bytes, wrote %d", m.Type(), n, buf.Len())
		}
		got, rn, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("%v: read: %v", m.Type(), err)
		}
		if rn != n {
			t.Fatalf("%v: ReadMessage reported %d bytes, frame was %d", m.Type(), rn, n)
		}
		if got.Type() != m.Type() || got.RequestID() != m.RequestID() {
			t.Fatalf("%v: type/id mismatch: got %v id %d", m.Type(), got.Type(), got.RequestID())
		}
		if !wireEqual(m, got) {
			t.Errorf("%v: round trip mismatch:\n sent %+v\n got  %+v", m.Type(), m, got)
		}
	}
}

// wireEqual compares messages, treating nil and empty slices as equal (the
// wire cannot distinguish them) and empty rectangles as equal regardless of
// their corner representation.
func wireEqual(a, b Message) bool {
	switch x := a.(type) {
	case *IDListMsg:
		y := b.(*IDListMsg)
		return x.ID == y.ID && slicesEqual(x.IDs, y.IDs)
	case *DataListMsg:
		y := b.(*DataListMsg)
		return x.ID == y.ID && recordsEqual(x.Records, y.Records)
	case *ShipmentMsg:
		y := b.(*ShipmentMsg)
		if x.ID != y.ID || !recordsEqual(x.Records, y.Records) {
			return false
		}
		if x.Coverage.IsEmpty() || y.Coverage.IsEmpty() {
			return x.Coverage.IsEmpty() == y.Coverage.IsEmpty()
		}
		return x.Coverage == y.Coverage
	case *PingMsg:
		y := b.(*PingMsg)
		return x.ID == y.ID && bytes.Equal(x.Payload, y.Payload)
	case *BatchReplyMsg:
		y := b.(*BatchReplyMsg)
		if x.ID != y.ID || len(x.Items) != len(y.Items) {
			return false
		}
		for i := range x.Items {
			xi, yi := &x.Items[i], &y.Items[i]
			if xi.Err != yi.Err || xi.Text != yi.Text ||
				!slicesEqual(xi.IDs, yi.IDs) || !recordsEqual(xi.Recs, yi.Recs) {
				return false
			}
		}
		return true
	case *BatchQueryMsg:
		y := b.(*BatchQueryMsg)
		if x.ID != y.ID || x.TimeoutMicros != y.TimeoutMicros || len(x.Queries) != len(y.Queries) {
			return false
		}
		for i := range x.Queries {
			if x.Queries[i] != y.Queries[i] {
				return false
			}
		}
		return true
	}
	return reflect.DeepEqual(a, b)
}

func slicesEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func recordsEqual(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWireSequence streams several frames through one buffer and reads them
// back in order — the pipelining case.
func TestWireSequence(t *testing.T) {
	msgs := allMessages()
	var buf bytes.Buffer
	for _, m := range msgs {
		if _, err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("write %v: %v", m.Type(), err)
		}
	}
	for i, want := range msgs {
		got, _, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type() != want.Type() || got.RequestID() != want.RequestID() {
			t.Fatalf("frame %d: got %v/%d want %v/%d",
				i, got.Type(), got.RequestID(), want.Type(), want.RequestID())
		}
	}
	if _, _, err := ReadMessage(&buf); err != io.EOF {
		t.Fatalf("after last frame: got %v, want io.EOF", err)
	}
}

// TestWireValidateRejects exercises Validate on malformed messages.
func TestWireValidateRejects(t *testing.T) {
	bad := []Message{
		&QueryMsg{ID: 1, Kind: 9},
		&QueryMsg{ID: 1, Kind: KindPoint, Mode: 9},
		&QueryMsg{ID: 1, Kind: KindNN, Mode: ModeFilter, Point: geom.Point{}},
		&QueryMsg{ID: 1, Kind: KindRange, Window: geom.EmptyRect()},
		&QueryMsg{ID: 1, Kind: KindPoint, Point: geom.Point{X: math.NaN()}},
		&QueryMsg{ID: 1, Kind: KindPoint, Eps: math.Inf(1)},
		&ShipmentReqMsg{ID: 1, BudgetBytes: 0, RecordBytes: 76},
		&ShipmentReqMsg{ID: 1, BudgetBytes: 4096, RecordBytes: 4},
		&ErrorMsg{ID: 1, Code: 0},
		&ErrorMsg{ID: 1, Code: CodeInternal, Text: string(make([]byte, MaxErrorText+1))},
		&PingMsg{ID: 1, Payload: make([]byte, MaxPingPayload+1)},
		&DataListMsg{ID: 1, Records: []Record{{Seg: geom.Segment{A: geom.Point{X: math.NaN()}}}}},
		&StatsMsg{ID: 1, Counters: []StatCounter{{Name: "", Value: 1}}},
		&StatsMsg{ID: 1, Gauges: []StatGauge{{Name: "g", Value: math.NaN()}}},
		&StatsMsg{ID: 1, Hists: []StatHist{{Name: "h", Mean: math.NaN()}}},
		&StatsMsg{ID: 1, Counters: []StatCounter{{Name: string(make([]byte, MaxStatName+1))}}},
		&StatsMsg{ID: 1, Counters: make([]StatCounter, MaxStatsEntries+1)},
		&BatchQueryMsg{ID: 1},
		&BatchQueryMsg{ID: 1, Queries: make([]QueryMsg, MaxBatchQueries+1)},
		&BatchQueryMsg{ID: 1, Queries: []QueryMsg{{Kind: 9}}},
		&BatchReplyMsg{ID: 1},
		&BatchReplyMsg{ID: 1, Items: []BatchItem{{IDs: []uint32{1}, Recs: []Record{{ID: 2}}}}},
		&BatchReplyMsg{ID: 1, Items: []BatchItem{{Err: CodeInternal, IDs: []uint32{1}}}},
		&BatchReplyMsg{ID: 1, Items: []BatchItem{{Text: "orphan text"}}},
		&BatchReplyMsg{ID: 1, Items: []BatchItem{
			{Recs: []Record{{Seg: geom.Segment{A: geom.Point{X: math.NaN()}}}}}}},
		&NNQueryMsg{ID: 1, Point: geom.Point{X: math.NaN()}},
		&NNQueryMsg{ID: 1, Bound: math.NaN()},
		&NNQueryMsg{ID: 1, Bound: -1},
		&NeighborsMsg{ID: 1, Neighbors: []Neighbor{{ID: 2, Dist: math.NaN()}}},
		&NeighborsMsg{ID: 1, Neighbors: []Neighbor{{ID: 2, Dist: -0.5}}},
		&SummaryMsg{ID: 1, NumRanges: 2, Ranges: []RangeInfo{{Index: 2}}},
		&SummaryMsg{ID: 1, NumRanges: 1, Ranges: []RangeInfo{{Index: 0, Lo: 9, Hi: 3}}},
		&SummaryMsg{ID: 1, NumRanges: 1, Ranges: []RangeInfo{
			{Index: 0, MBR: geom.Rect{Min: geom.Point{X: math.NaN()}}}}},
		&SummaryMsg{ID: 1, Ranges: []RangeInfo{{Index: 0}}}, // zero-range cluster
		&SummaryMsg{ID: 1, NumRanges: MaxSummaryRanges + 1, Ranges: make([]RangeInfo, MaxSummaryRanges+1)},
		&InsertMsg{ID: 1, Seg: geom.Segment{A: geom.Point{X: math.NaN()}}},
		&InsertMsg{ID: 1, Seg: geom.Segment{B: geom.Point{Y: math.Inf(1)}}},
		&MoveMsg{ID: 1, Seg: geom.Segment{A: geom.Point{Y: math.NaN()}}},
		&MoveMsg{ID: 1, Seg: geom.Segment{B: geom.Point{X: math.Inf(-1)}}},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%T %+v: Validate accepted malformed message", m, m)
		}
		if _, err := EncodeMessage(m); err == nil {
			t.Errorf("%T: EncodeMessage accepted malformed message", m)
		}
	}
}

// TestWireRejectsCorruptFrames feeds truncated and corrupt frames to
// ReadMessage.
func TestWireRejectsCorruptFrames(t *testing.T) {
	frame, err := EncodeMessage(&IDListMsg{ID: 3, IDs: []uint32{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}

	// Truncations at every boundary must error, never panic.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := ReadMessage(bytes.NewReader(frame[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}

	// Unknown message type.
	badType := append([]byte(nil), frame...)
	badType[4] = 0xEE
	if _, _, err := ReadMessage(bytes.NewReader(badType)); err == nil {
		t.Fatal("unknown type accepted")
	}

	// Inner count disagreeing with the payload length.
	badCount := append([]byte(nil), frame...)
	badCount[FrameHeaderBytes+15] = 99 // id-list count field (after id u32 + epoch u64)
	if _, _, err := ReadMessage(bytes.NewReader(badCount)); err == nil {
		t.Fatal("mismatched count accepted")
	}

	// Oversized frame header.
	huge := append([]byte(nil), frame...)
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := ReadMessage(bytes.NewReader(huge)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestWireFrameLayout pins the frame header layout so independent
// implementations can interoperate.
func TestWireFrameLayout(t *testing.T) {
	frame, err := EncodeMessage(&PingMsg{ID: 0x01020304, Payload: []byte{0xAA}})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0, 0, 0, 9, // payload length: 4 id + 4 len + 1 byte
		byte(MsgPing),
		1, 2, 3, 4, // request id
		0, 0, 0, 1, // payload length
		0xAA,
	}
	if !bytes.Equal(frame, want) {
		t.Fatalf("frame layout drifted:\n got  %v\n want %v", frame, want)
	}
}
