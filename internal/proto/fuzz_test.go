package proto

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadMessage throws arbitrary bytes at the frame decoder. The decoder
// must never panic, and any frame it accepts must survive a re-encode /
// re-decode round trip (the decode→encode fixed point that keeps the wire
// format closed under forwarding). Seeds are the full round-trip corpus plus
// hand-built corrupt frames from the unit tests.
func FuzzReadMessage(f *testing.F) {
	for _, m := range allMessages() {
		frame, err := EncodeMessage(m)
		if err != nil {
			f.Fatalf("%v: %v", m.Type(), err)
		}
		f.Add(frame)
	}
	// Corrupt seeds: oversized length prefix, unknown type, short frame.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Add([]byte{0, 0, 0, 0, 0xEE})
	f.Add([]byte{0, 0, 0, 9, byte(MsgPing), 1, 2, 3})
	// Update-path seeds: an insert whose segment smuggles NaN coordinate bits
	// (must be rejected by Validate after decode, not crash), and an ack with
	// unknown flag bits set (must be rejected so re-encoding stays canonical).
	if nan, err := EncodeMessage(&InsertMsg{ID: 1, ObjID: 2}); err == nil {
		for i := FrameHeaderBytes + 8; i < FrameHeaderBytes+16; i++ {
			nan[i] = 0xFF
		}
		f.Add(nan)
	}
	if ack, err := EncodeMessage(&UpdateAckMsg{ID: 1, ObjID: 2, Epoch: 3}); err == nil {
		ack[len(ack)-1] = 0xF0 // unknown flag bits
		f.Add(ack)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Refuse declared payloads beyond 1 MB up front: the decoder handles
		// them (chunked reads fail fast on truncated input), but a fuzzer
		// that learns to complete huge frames would only slow itself down.
		if len(data) >= 4 && binary.BigEndian.Uint32(data[:4]) > 1<<20 {
			return
		}
		m, n, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		if n < FrameHeaderBytes || n > len(data) {
			t.Fatalf("accepted frame reports %d bytes of %d input", n, len(data))
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("ReadMessage returned a message failing its own Validate: %v", err)
		}
		frame, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("re-encoding an accepted %v failed: %v", m.Type(), err)
		}
		m2, _, err := ReadMessage(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("re-decoding a re-encoded %v failed: %v", m.Type(), err)
		}
		if m2.Type() != m.Type() || m2.RequestID() != m.RequestID() {
			t.Fatalf("round trip drifted: %v/%d -> %v/%d",
				m.Type(), m.RequestID(), m2.Type(), m2.RequestID())
		}
		if !wireEqual(m, m2) {
			t.Fatalf("round trip not a fixed point:\n first  %+v\n second %+v", m, m2)
		}
	})
}
