package proto

import (
	"bytes"
	"math"
	"testing"

	"mobispatial/internal/geom"
)

// TestStatsSkipsUnknownExtensions pins the snapshot's forward-compatibility
// contract: a stats frame carrying trailing extension sections this decoder
// does not know must still decode — the known sections intact, the unknown
// tail skipped. This is what lets an old mqtop read a newer router's
// snapshot instead of erroring on "trailing bytes".
func TestStatsSkipsUnknownExtensions(t *testing.T) {
	m := &StatsMsg{ID: 3, UptimeMicros: 99,
		Counters: []StatCounter{{Name: "router_fanout_total", Value: 12}},
		Gauges:   []StatGauge{{Name: "router_backends", Value: 3}},
	}
	payload := m.appendPayload(nil)

	// Append two extension sections a future snapshot shape might carry:
	// tag byte + u32 length + opaque payload.
	payload = append(payload, 0xAA)
	payload = appendU32(payload, 5)
	payload = append(payload, "hello"...)
	payload = append(payload, 0xBB)
	payload = appendU32(payload, 0)

	var got StatsMsg
	if err := got.decodePayload(payload); err != nil {
		t.Fatalf("decode with extensions: %v", err)
	}
	if got.ID != m.ID || got.UptimeMicros != m.UptimeMicros {
		t.Fatalf("header mismatch: got %+v", got)
	}
	if len(got.Counters) != 1 || got.Counters[0] != m.Counters[0] {
		t.Fatalf("counters mismatch: got %+v", got.Counters)
	}
	if len(got.Gauges) != 1 || got.Gauges[0] != m.Gauges[0] {
		t.Fatalf("gauges mismatch: got %+v", got.Gauges)
	}

	// Malformed framing — a section length past the payload end — must
	// still be an error, not a silent truncation.
	bad := m.appendPayload(nil)
	bad = append(bad, 0xCC)
	bad = appendU32(bad, 1000)
	if err := new(StatsMsg).decodePayload(bad); err == nil {
		t.Fatal("decode accepted extension length past payload end")
	}
}

// TestNNQueryReleaseReuse pins the pooled NN leg cycle: acquire, send,
// release, and the reply's neighbor slice capacity survives a release.
func TestNNQueryReleaseReuse(t *testing.T) {
	q := AcquireNNQuery()
	q.ID, q.Point, q.K, q.Bound = 5, geom.Point{X: 1, Y: 2}, 3, math.Inf(1)
	var buf bytes.Buffer
	if _, err := WriteMessage(&buf, q); err != nil {
		t.Fatalf("write: %v", err)
	}
	ReleaseMessage(q)
	got, _, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	gq, ok := got.(*NNQueryMsg)
	if !ok {
		t.Fatalf("got %T", got)
	}
	if gq.ID != 5 || gq.K != 3 || !math.IsInf(gq.Bound, 1) {
		t.Fatalf("decoded %+v", gq)
	}
	ReleaseMessage(gq)

	r := &NeighborsMsg{ID: 5, Neighbors: []Neighbor{{ID: 1, Dist: 2}}}
	ReleaseMessage(r)
	r2 := neighborsPool.Get().(*NeighborsMsg)
	if r2.ID != 0 || len(r2.Neighbors) != 0 {
		t.Fatalf("release left state behind: %+v", r2)
	}
	neighborsPool.Put(r2)
}

// TestSummaryDecodeRejectsBadCount guards the length-vs-count cross-check.
func TestSummaryDecodeRejectsBadCount(t *testing.T) {
	m := &SummaryMsg{ID: 1, NumRanges: 1, Bounds: geom.EmptyRect(),
		Ranges: []RangeInfo{{Index: 0, Lo: 0, Hi: 10}}}
	payload := m.appendPayload(nil)
	payload = append(payload, 0xEE) // stray byte breaks count*size == remaining
	if err := new(SummaryMsg).decodePayload(payload); err == nil {
		t.Fatal("decode accepted summary with trailing garbage")
	}
}
