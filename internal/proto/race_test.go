//go:build race

package proto

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
