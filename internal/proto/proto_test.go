package proto

import (
	"math"
	"testing"
	"testing/quick"

	"mobispatial/internal/ops"
)

func TestPacketizeSmall(t *testing.T) {
	tr := Packetize(100)
	if tr.Packets != 1 {
		t.Fatalf("packets = %d", tr.Packets)
	}
	if tr.WireBytes != 100+TCPHeaderBytes+IPHeaderBytes+MACHeaderBytes {
		t.Fatalf("wire bytes = %d", tr.WireBytes)
	}
}

func TestPacketizeZeroStillOneFrame(t *testing.T) {
	tr := Packetize(0)
	if tr.Packets != 1 || tr.WireBytes != TCPHeaderBytes+IPHeaderBytes+MACHeaderBytes {
		t.Fatalf("zero payload: %+v", tr)
	}
	if neg := Packetize(-5); neg != tr {
		t.Fatalf("negative payload: %+v", neg)
	}
}

func TestPacketizeBoundaries(t *testing.T) {
	if got := Packetize(MSS).Packets; got != 1 {
		t.Fatalf("exactly one MSS: %d packets", got)
	}
	if got := Packetize(MSS + 1).Packets; got != 2 {
		t.Fatalf("MSS+1: %d packets", got)
	}
	if got := Packetize(10 * MSS).Packets; got != 10 {
		t.Fatalf("10×MSS: %d packets", got)
	}
}

func TestPacketizeOverheadBounded(t *testing.T) {
	f := func(n int) bool {
		if n < 0 {
			n = -n
		}
		n %= 10 << 20
		tr := Packetize(n)
		perPkt := TCPHeaderBytes + IPHeaderBytes + MACHeaderBytes
		return tr.WireBytes == n+tr.Packets*perPkt &&
			tr.Packets >= 1 &&
			(n == 0 || tr.Packets == (n+MSS-1)/MSS)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeconds(t *testing.T) {
	tr := Packetize(MSS) // one full frame
	secs := tr.Seconds(2e6)
	want := float64(tr.WireBytes*8) / 2e6
	if math.Abs(secs-want) > 1e-15 {
		t.Fatalf("Seconds = %v, want %v", secs, want)
	}
	// Higher bandwidth, strictly faster.
	if tr.Seconds(11e6) >= secs {
		t.Fatal("11 Mbps not faster than 2 Mbps")
	}
	if tr.Seconds(0) != 0 {
		t.Fatal("zero bandwidth should not divide by zero")
	}
}

func TestChargeProcessing(t *testing.T) {
	tr := Packetize(3 * MSS)
	var send, recv ops.Counts
	tr.ChargeProcessing(&send, true)
	tr.ChargeProcessing(&recv, false)
	if send.Ops[ops.OpProtoPacket] != int64(tr.Packets) {
		t.Fatalf("send packet ops = %d", send.Ops[ops.OpProtoPacket])
	}
	if send.Ops[ops.OpProtoByte] != int64(tr.PayloadBytes) {
		t.Fatalf("send byte ops = %d", send.Ops[ops.OpProtoByte])
	}
	if recv.Ops[ops.OpProtoPacket] != int64(tr.Packets) {
		t.Fatalf("recv packet ops = %d", recv.Ops[ops.OpProtoPacket])
	}
	if send.LoadBytes == 0 || send.StoreBytes == 0 || recv.LoadBytes == 0 || recv.StoreBytes == 0 {
		t.Fatal("buffer traffic not charged")
	}
}

func TestMessageSizes(t *testing.T) {
	if IDListBytes(0) != ListHeaderBytes {
		t.Fatal("empty id list")
	}
	if IDListBytes(10) != ListHeaderBytes+40 {
		t.Fatalf("IDListBytes(10) = %d", IDListBytes(10))
	}
	if DataListBytes(10, 76) != ListHeaderBytes+760 {
		t.Fatalf("DataListBytes = %d", DataListBytes(10, 76))
	}
	if ShipmentBytes(100, 76, 5120) != ListHeaderBytes+7600+5120 {
		t.Fatalf("ShipmentBytes = %d", ShipmentBytes(100, 76, 5120))
	}
	// Ids are far smaller than records — the data-present optimization.
	if IDListBytes(1000) >= DataListBytes(1000, 76) {
		t.Fatal("id list not smaller than data list")
	}
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}
