//go:build !race

package proto

// raceEnabled reports whether the race detector is active; alloc-count
// assertions are skipped under -race because instrumentation adds
// allocations the production build does not have.
const raceEnabled = false
