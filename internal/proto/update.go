// update.go extends the wire catalogue with the mutable-world messages: live
// object updates against an updatable shard subsystem (internal/mutable).
// Inserts and moves carry full segment geometry; deletes carry the id only
// (the mobile client that drops out of the world does not know — or care —
// where its last position landed server-side). Every update is acknowledged
// with MsgUpdateAck carrying the owning shard's base epoch, which is how
// clients and the router observe compaction progress and measure staleness.
//
// Update semantics are deliberately idempotent so the client retry path and
// the router's replica fan-out need no exactly-once machinery: insert and
// move are upserts keyed by object id, delete of a missing id succeeds with
// Existed=false.
package proto

import (
	"fmt"

	"mobispatial/internal/geom"
)

// The update message types, continuing the catalogue in cluster.go.
const (
	// MsgInsert adds (or replaces — upsert) one object.
	MsgInsert MsgType = 16
	// MsgDelete removes one object by id.
	MsgDelete MsgType = 17
	// MsgMove re-positions one object: an upsert that backends not owning
	// the new position answer by deleting their stale local copy.
	MsgMove MsgType = 18
	// MsgUpdateAck acknowledges any update, carrying the shard epoch.
	MsgUpdateAck MsgType = 19
)

// checkSegment validates update geometry: both endpoints finite (NaN/Inf
// coordinates are rejected exactly like query geometry). Zero-length
// segments — point objects — are legal.
func checkSegment(s geom.Segment) error {
	if err := checkPoint(s.A); err != nil {
		return err
	}
	return checkPoint(s.B)
}

// InsertMsg adds one object with the given id and segment geometry. Existing
// objects with the same id are replaced (upsert).
type InsertMsg struct {
	ID            uint32
	ObjID         uint32
	Seg           geom.Segment
	TimeoutMicros uint32
}

// Type implements Message.
func (m *InsertMsg) Type() MsgType { return MsgInsert }

// RequestID implements Message.
func (m *InsertMsg) RequestID() uint32 { return m.ID }

// Validate implements Message.
func (m *InsertMsg) Validate() error { return checkSegment(m.Seg) }

func (m *InsertMsg) appendPayload(b []byte) []byte {
	b = appendU32(b, m.ID)
	b = appendU32(b, m.ObjID)
	b = appendPoint(b, m.Seg.A)
	b = appendPoint(b, m.Seg.B)
	return appendU32(b, m.TimeoutMicros)
}

func (m *InsertMsg) decodePayload(b []byte) error {
	d := decoder{b: b}
	m.ID = d.u32()
	m.ObjID = d.u32()
	m.Seg = geom.Segment{A: d.point(), B: d.point()}
	m.TimeoutMicros = d.u32()
	return d.finish("insert")
}

// DeleteMsg removes one object by id. Deleting an absent id is not an error:
// the ack reports Existed=false.
type DeleteMsg struct {
	ID            uint32
	ObjID         uint32
	TimeoutMicros uint32
}

// Type implements Message.
func (m *DeleteMsg) Type() MsgType { return MsgDelete }

// RequestID implements Message.
func (m *DeleteMsg) RequestID() uint32 { return m.ID }

// Validate implements Message.
func (m *DeleteMsg) Validate() error { return nil }

func (m *DeleteMsg) appendPayload(b []byte) []byte {
	b = appendU32(b, m.ID)
	b = appendU32(b, m.ObjID)
	return appendU32(b, m.TimeoutMicros)
}

func (m *DeleteMsg) decodePayload(b []byte) error {
	d := decoder{b: b}
	m.ID = d.u32()
	m.ObjID = d.u32()
	m.TimeoutMicros = d.u32()
	return d.finish("delete")
}

// MoveMsg re-positions one object. Semantically an upsert like InsertMsg; it
// is a distinct type because the distributed tier broadcasts moves (a moving
// object may cross a Hilbert range boundary, and the backend that held the
// old position must drop its copy) while inserts route to the owning range
// only.
type MoveMsg struct {
	ID            uint32
	ObjID         uint32
	Seg           geom.Segment
	TimeoutMicros uint32
}

// Type implements Message.
func (m *MoveMsg) Type() MsgType { return MsgMove }

// RequestID implements Message.
func (m *MoveMsg) RequestID() uint32 { return m.ID }

// Validate implements Message.
func (m *MoveMsg) Validate() error { return checkSegment(m.Seg) }

func (m *MoveMsg) appendPayload(b []byte) []byte {
	b = appendU32(b, m.ID)
	b = appendU32(b, m.ObjID)
	b = appendPoint(b, m.Seg.A)
	b = appendPoint(b, m.Seg.B)
	return appendU32(b, m.TimeoutMicros)
}

func (m *MoveMsg) decodePayload(b []byte) error {
	d := decoder{b: b}
	m.ID = d.u32()
	m.ObjID = d.u32()
	m.Seg = geom.Segment{A: d.point(), B: d.point()}
	m.TimeoutMicros = d.u32()
	return d.finish("move")
}

// Update-ack flag bits (wire encoding of the two booleans).
const (
	ackFlagExisted = 1 << 0
	ackFlagOwned   = 1 << 1
)

// UpdateAckMsg acknowledges one update.
type UpdateAckMsg struct {
	ID    uint32
	ObjID uint32
	// Epoch is the owning shard's base epoch at apply time — it advances at
	// every compaction swap, so the gap between acked epochs and a later
	// snapshot's epoch gauges is the observable staleness of the packed base.
	// For a fanned-out write it is the minimum epoch across the replicas
	// that applied it.
	Epoch uint64
	// Existed reports whether the object id was present before the update.
	Existed bool
	// Owned reports whether the answering server owns the object's (new)
	// position: false when a move or delete merely cleared a stale copy —
	// or found nothing — on a non-owning server.
	Owned bool
}

// Type implements Message.
func (m *UpdateAckMsg) Type() MsgType { return MsgUpdateAck }

// RequestID implements Message.
func (m *UpdateAckMsg) RequestID() uint32 { return m.ID }

// Validate implements Message.
func (m *UpdateAckMsg) Validate() error { return nil }

func (m *UpdateAckMsg) appendPayload(b []byte) []byte {
	b = appendU32(b, m.ID)
	b = appendU32(b, m.ObjID)
	b = binaryAppendU64(b, m.Epoch)
	var flags uint8
	if m.Existed {
		flags |= ackFlagExisted
	}
	if m.Owned {
		flags |= ackFlagOwned
	}
	return append(b, flags)
}

func (m *UpdateAckMsg) decodePayload(b []byte) error {
	d := decoder{b: b}
	m.ID = d.u32()
	m.ObjID = d.u32()
	m.Epoch = d.u64()
	flags := d.u8()
	if d.err == nil && flags&^uint8(ackFlagExisted|ackFlagOwned) != 0 {
		d.err = fmt.Errorf("unknown ack flags %#x", flags)
	}
	m.Existed = flags&ackFlagExisted != 0
	m.Owned = flags&ackFlagOwned != 0
	return d.finish("update-ack")
}
