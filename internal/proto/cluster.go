// cluster.go extends the wire catalogue with the distributed serving tier's
// messages: the router↔backend handshake and the cross-server nearest-
// neighbor leg. A coordinator (internal/router) fetches each backend's
// summary — its dataset bounds plus the Hilbert key ranges it holds — at
// registration, then fans client queries to the owning backends. Range and
// point legs ride the existing MsgQuery; NN legs use MsgNNQuery/MsgNeighbors
// because the cross-server best-first visit needs two things MsgQuery cannot
// carry: the running k-th-neighbor bound (so a later server prunes against
// earlier servers' answers) and exact per-neighbor distances in the reply
// (so the router merges legs without re-deriving geometry).
package proto

import (
	"fmt"
	"math"

	"mobispatial/internal/geom"
)

// The cluster message types, continuing the catalogue in wire.go.
const (
	// MsgNNQuery is a router→backend (k-)NN leg carrying the running bound.
	MsgNNQuery MsgType = 12
	// MsgNeighbors is the NN leg reply: neighbor ids with exact distances.
	MsgNeighbors MsgType = 13
	// MsgSummaryReq asks a backend for its partition summary.
	MsgSummaryReq MsgType = 14
	// MsgSummary is the summary reply: bounds, item count, and the Hilbert
	// key ranges the backend holds.
	MsgSummary MsgType = 15
)

// CodeUnavailable: no healthy replica covers part of the query — the
// distributed tier's "try again later" (transient, like overload).
const CodeUnavailable ErrCode = 6

// MaxSummaryRanges bounds the ranges one summary may carry.
const MaxSummaryRanges = 4096

// Neighbor is one (k-)NN answer on the wire: the object id and its exact
// distance to the query point. The wire form of rtree.Neighbor.
type Neighbor struct {
	ID   uint32
	Dist float64
}

// wireNeighborBytes is the encoded size of one Neighbor.
const wireNeighborBytes = 4 + 8

// NNQueryMsg is one cross-server nearest-neighbor leg.
type NNQueryMsg struct {
	ID    uint32
	Point geom.Point
	// K is the neighbor count (0 and 1 both mean single NN).
	K uint16
	// Bound is the router's running k-th-neighbor distance: the backend may
	// prune any subtree whose lower bound exceeds it. +Inf (or 0) means
	// unbounded. It is a pruning hint only — a reply may legally include
	// neighbors farther than Bound; the router's merge discards them.
	Bound float64
	// TimeoutMicros caps the backend-side processing time; 0 means the
	// backend default.
	TimeoutMicros uint32
}

// Type implements Message.
func (m *NNQueryMsg) Type() MsgType { return MsgNNQuery }

// RequestID implements Message.
func (m *NNQueryMsg) RequestID() uint32 { return m.ID }

// Validate implements Message.
func (m *NNQueryMsg) Validate() error {
	if err := checkPoint(m.Point); err != nil {
		return err
	}
	if math.IsNaN(m.Bound) || m.Bound < 0 || math.IsInf(m.Bound, -1) {
		return fmt.Errorf("proto: bad NN bound %v", m.Bound)
	}
	return nil
}

func (m *NNQueryMsg) appendPayload(b []byte) []byte {
	b = appendU32(b, m.ID)
	b = appendPoint(b, m.Point)
	b = appendU16(b, m.K)
	b = appendF64(b, m.Bound)
	return appendU32(b, m.TimeoutMicros)
}

func (m *NNQueryMsg) decodePayload(b []byte) error {
	d := decoder{b: b}
	m.ID = d.u32()
	m.Point = d.point()
	m.K = d.u16()
	m.Bound = d.f64()
	m.TimeoutMicros = d.u32()
	return d.finish("nn-query")
}

// NeighborsMsg is the NN leg reply, neighbors ascending by distance.
type NeighborsMsg struct {
	ID        uint32
	Neighbors []Neighbor
}

// Type implements Message.
func (m *NeighborsMsg) Type() MsgType { return MsgNeighbors }

// RequestID implements Message.
func (m *NeighborsMsg) RequestID() uint32 { return m.ID }

// Validate implements Message.
func (m *NeighborsMsg) Validate() error {
	if n := len(m.Neighbors); n > (MaxFramePayload-8)/wireNeighborBytes {
		return fmt.Errorf("proto: neighbor list of %d exceeds frame limit", n)
	}
	for i, nb := range m.Neighbors {
		if math.IsNaN(nb.Dist) || nb.Dist < 0 {
			return fmt.Errorf("proto: neighbor %d has bad distance %v", i, nb.Dist)
		}
	}
	return nil
}

func (m *NeighborsMsg) appendPayload(b []byte) []byte {
	b = appendU32(b, m.ID)
	b = appendU32(b, uint32(len(m.Neighbors)))
	for _, nb := range m.Neighbors {
		b = appendU32(b, nb.ID)
		b = appendF64(b, nb.Dist)
	}
	return b
}

func (m *NeighborsMsg) decodePayload(b []byte) error {
	d := decoder{b: b}
	m.ID = d.u32()
	n := int(d.u32())
	if d.err == nil && n*wireNeighborBytes != len(d.b)-d.off {
		return fmt.Errorf("proto: neighbor count %d does not match %d payload bytes", n, len(d.b)-d.off)
	}
	m.Neighbors = m.Neighbors[:0]
	if d.err == nil && d.need(n*wireNeighborBytes) {
		for i := 0; i < n; i++ {
			m.Neighbors = append(m.Neighbors, Neighbor{ID: d.u32(), Dist: d.f64()})
		}
	}
	return d.finish("neighbors")
}

// SummaryReqMsg asks a backend for its partition summary. Servers answer it
// like a stats request — bypassing admission control — so a router can
// register against a saturated backend.
type SummaryReqMsg struct {
	ID uint32
}

// Type implements Message.
func (m *SummaryReqMsg) Type() MsgType { return MsgSummaryReq }

// RequestID implements Message.
func (m *SummaryReqMsg) RequestID() uint32 { return m.ID }

// Validate implements Message.
func (m *SummaryReqMsg) Validate() error { return nil }

func (m *SummaryReqMsg) appendPayload(b []byte) []byte { return appendU32(b, m.ID) }

func (m *SummaryReqMsg) decodePayload(b []byte) error {
	d := decoder{b: b}
	m.ID = d.u32()
	return d.finish("summary-req")
}

// RangeInfo describes one contiguous Hilbert key range a backend holds: its
// index in the cluster-wide assignment, the inclusive key interval, the item
// count, and the MBR of the items — the router's routing and NN-pruning
// metadata.
type RangeInfo struct {
	Index uint32
	Items uint32
	// Lo and Hi are the inclusive Hilbert key interval of the range's items
	// under the partitioning quantizer.
	Lo, Hi uint64
	// Version is the holder's monotone write-version counter for this
	// range's shard at summary time — the freshness signal the router's
	// refresh loop and cluster-wide result-cache validity are built on.
	// 0 means the backend has no per-range version (a frozen pool).
	Version uint64
	MBR     geom.Rect
	// Heat is the holder's EWMA query rate for this range in queries per
	// second — adaptive-repartitioning telemetry. 0 means unreported (an
	// older backend omits the field entirely; see decodePayload).
	Heat float64
}

// SummaryMsg is a backend's partition summary. A monolithic (unpartitioned)
// server reports NumRanges=1 with a single range covering everything.
type SummaryMsg struct {
	ID uint32
	// NumRanges is the cluster-wide total range count the backend was
	// configured with; every backend of one cluster must agree on it.
	NumRanges uint32
	// Items is the backend's total indexed item count.
	Items uint64
	// Bounds is the MBR of every item the backend holds.
	Bounds geom.Rect
	// Ranges lists the ranges this backend holds (primary and replica alike).
	Ranges []RangeInfo
}

// Type implements Message.
func (m *SummaryMsg) Type() MsgType { return MsgSummary }

// RequestID implements Message.
func (m *SummaryMsg) RequestID() uint32 { return m.ID }

// Validate implements Message.
func (m *SummaryMsg) Validate() error {
	if len(m.Ranges) > MaxSummaryRanges {
		return fmt.Errorf("proto: summary with %d ranges exceeds %d", len(m.Ranges), MaxSummaryRanges)
	}
	if m.NumRanges == 0 && len(m.Ranges) > 0 {
		return fmt.Errorf("proto: summary holds %d ranges of a zero-range cluster", len(m.Ranges))
	}
	if err := checkRect(m.Bounds); err != nil {
		return err
	}
	for i, r := range m.Ranges {
		if r.Index >= m.NumRanges {
			return fmt.Errorf("proto: summary range %d has index %d >= %d", i, r.Index, m.NumRanges)
		}
		if r.Lo > r.Hi {
			return fmt.Errorf("proto: summary range %d has inverted keys [%d, %d]", i, r.Lo, r.Hi)
		}
		if err := checkRect(r.MBR); err != nil {
			return fmt.Errorf("proto: summary range %d: %w", i, err)
		}
		if math.IsNaN(r.Heat) || math.IsInf(r.Heat, 0) || r.Heat < 0 {
			return fmt.Errorf("proto: summary range %d has bad heat %v", i, r.Heat)
		}
	}
	return nil
}

func (m *SummaryMsg) appendPayload(b []byte) []byte {
	b = appendU32(b, m.ID)
	b = appendU32(b, m.NumRanges)
	b = binaryAppendU64(b, m.Items)
	b = appendRect(b, m.Bounds)
	b = appendU32(b, uint32(len(m.Ranges)))
	for _, r := range m.Ranges {
		b = appendU32(b, r.Index)
		b = appendU32(b, r.Items)
		b = binaryAppendU64(b, r.Lo)
		b = binaryAppendU64(b, r.Hi)
		b = binaryAppendU64(b, r.Version)
		b = appendRect(b, r.MBR)
		b = appendF64(b, r.Heat)
	}
	return b
}

func (m *SummaryMsg) decodePayload(b []byte) error {
	d := decoder{b: b}
	m.ID = d.u32()
	m.NumRanges = d.u32()
	m.Items = d.u64()
	m.Bounds = d.rect()
	n := int(d.u32())
	// Two accepted range encodings: the original 64-byte row and the
	// 72-byte row that appends the heat field. The row size is inferred
	// from the payload length, so a new router reads an old backend's
	// summary (heat zero) and vice versa.
	const rangeBytesV1 = 4 + 4 + 8 + 8 + 8 + 32
	const rangeBytesV2 = rangeBytesV1 + 8
	rb, rest := rangeBytesV2, len(d.b)-d.off
	if d.err == nil && n > 0 && n*rangeBytesV1 == rest {
		rb = rangeBytesV1
	}
	if d.err == nil && n*rb != rest {
		return fmt.Errorf("proto: summary range count %d does not match %d payload bytes", n, rest)
	}
	m.Ranges = m.Ranges[:0]
	if d.err == nil && d.need(n*rb) {
		for i := 0; i < n; i++ {
			r := RangeInfo{
				Index:   d.u32(),
				Items:   d.u32(),
				Lo:      d.u64(),
				Hi:      d.u64(),
				Version: d.u64(),
				MBR:     d.rect(),
			}
			if rb == rangeBytesV2 {
				r.Heat = d.f64()
			}
			m.Ranges = append(m.Ranges, r)
		}
	}
	return d.finish("summary")
}
