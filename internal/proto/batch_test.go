package proto

import (
	"bytes"
	"io"
	"testing"

	"mobispatial/internal/geom"
)

func testBatchQuery(n int) *BatchQueryMsg {
	m := &BatchQueryMsg{ID: 42, TimeoutMicros: 250_000}
	for i := 0; i < n; i++ {
		m.Queries = append(m.Queries, QueryMsg{
			ID:   uint32(i),
			Kind: KindRange,
			Mode: ModeIDs,
			Window: geom.Rect{
				Min: geom.Point{X: float64(i), Y: float64(i)},
				Max: geom.Point{X: float64(i + 1), Y: float64(i + 1)},
			},
		})
	}
	return m
}

// TestBatchFrameAmortizesHeaders pins the batching arithmetic the energy
// model relies on: a batch of N queries costs one frame, and its payload
// grows by exactly wireQueryBytes per query.
func TestBatchFrameAmortizesHeaders(t *testing.T) {
	one, err := EncodeMessage(testBatchQuery(1))
	if err != nil {
		t.Fatal(err)
	}
	sixteen, err := EncodeMessage(testBatchQuery(16))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(sixteen)-len(one), 15*wireQueryBytes; got != want {
		t.Fatalf("batch growth: got %d bytes per 15 queries, want %d", got, want)
	}
	// One query message alone costs a full frame header; in a batch of 16 the
	// shared overhead is under a tenth of that per query.
	single, err := EncodeMessage(&QueryMsg{ID: 1, Kind: KindRange, Mode: ModeIDs,
		Window: geom.Rect{Max: geom.Point{X: 1, Y: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	perQuery := float64(len(sixteen)) / 16
	if perQuery >= float64(len(single)) {
		t.Fatalf("batched query costs %.1f wire bytes, unbatched %d — batching should be cheaper", perQuery, len(single))
	}
}

// TestBatchReplyDecodeReusesItems round-trips two different replies through
// one pooled message and requires the second decode to fully overwrite the
// first — the aliasing hazard of item reuse.
func TestBatchReplyDecodeReusesItems(t *testing.T) {
	first := &BatchReplyMsg{ID: 1, Items: []BatchItem{
		{IDs: []uint32{1, 2, 3, 4, 5}},
		{Err: CodeDeadline, Text: "late"},
		{Recs: []Record{{ID: 7, Seg: geom.Segment{A: geom.Point{X: 1, Y: 1}, B: geom.Point{X: 2, Y: 2}}}}},
	}}
	second := &BatchReplyMsg{ID: 2, Items: []BatchItem{
		{IDs: []uint32{9}},
		{}, // empty answer
	}}

	var buf bytes.Buffer
	for _, m := range []Message{first, second} {
		if _, err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	got1, _, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !wireEqual(first, got1) {
		t.Fatalf("first reply mismatch: %+v", got1)
	}
	ReleaseMessage(got1)
	got2, _, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r2, ok := got2.(*BatchReplyMsg)
	if !ok {
		t.Fatalf("got %T", got2)
	}
	if !wireEqual(second, got2) {
		t.Fatalf("reused decode mismatch:\n want %+v\n got  %+v", second, r2)
	}
	if len(r2.Items) != 2 {
		t.Fatalf("stale items survived reuse: %d", len(r2.Items))
	}
	ReleaseMessage(got2)
}

// TestBatchRejectsCorruptFrames exercises the batch decoders' bounds checks.
func TestBatchRejectsCorruptFrames(t *testing.T) {
	frame, err := EncodeMessage(testBatchQuery(3))
	if err != nil {
		t.Fatal(err)
	}
	for cut := FrameHeaderBytes; cut < len(frame); cut++ {
		if _, _, err := ReadMessage(bytes.NewReader(frame[:cut])); err == nil {
			t.Fatalf("truncated batch at %d accepted", cut)
		}
	}
	// Count disagreeing with the payload size.
	bad := append([]byte(nil), frame...)
	bad[FrameHeaderBytes+9] = 99 // count field low byte
	if _, _, err := ReadMessage(bytes.NewReader(bad)); err == nil {
		t.Fatal("mismatched batch count accepted")
	}

	reply, err := EncodeMessage(&BatchReplyMsg{ID: 1, Items: []BatchItem{{IDs: []uint32{1, 2}}}})
	if err != nil {
		t.Fatal(err)
	}
	// Unknown item tag.
	badTag := append([]byte(nil), reply...)
	badTag[FrameHeaderBytes+14] = 0x7F // first item tag (after id u32 + epoch u64 + count u16)
	if _, _, err := ReadMessage(bytes.NewReader(badTag)); err == nil {
		t.Fatal("unknown batch item tag accepted")
	}
	// Hostile id count inside an item must error, not allocate wildly.
	badN := append([]byte(nil), reply...)
	badN[FrameHeaderBytes+15] = 0xFF // first item id-count low bytes
	if _, _, err := ReadMessage(bytes.NewReader(badN)); err == nil {
		t.Fatal("hostile batch item id count accepted")
	}
}

// TestBatchSizeHelpers sanity-checks the model-level batch sizing used by
// the planner's energy accounting.
func TestBatchSizeHelpers(t *testing.T) {
	if BatchQueryBytes(1) <= QueryRequestBytes {
		t.Fatal("batch of one should still carry the list header")
	}
	// Batching must amortize: N queries in one message cost less than N
	// separate messages.
	if BatchQueryBytes(16) >= 16*(ListHeaderBytes+QueryRequestBytes) {
		t.Fatal("BatchQueryBytes does not amortize the header")
	}
	if BatchIDListBytes(16, 160) >= 16*IDListBytes(10) {
		t.Fatal("BatchIDListBytes does not amortize the header")
	}
}

// TestReleaseMessageRoundTrip checks that releasing and reacquiring pooled
// messages yields clean values.
func TestReleaseMessageRoundTrip(t *testing.T) {
	q := AcquireQuery()
	q.ID, q.Kind, q.K = 9, KindNN, 5
	ReleaseMessage(q)
	q2 := AcquireQuery()
	if *q2 != (QueryMsg{}) {
		t.Fatalf("released query not zeroed: %+v", q2)
	}
	ReleaseMessage(q2)

	b := AcquireBatchQuery()
	if b.ID != 0 || b.TimeoutMicros != 0 || len(b.Queries) != 0 {
		t.Fatalf("acquired batch not clean: %+v", b)
	}
	b.Queries = append(b.Queries, QueryMsg{ID: 1})
	ReleaseMessage(b)
}

// TestReadMessageChunkedPath covers the big-frame path that bypasses the
// pooled buffer.
func TestReadMessageChunkedPath(t *testing.T) {
	big := &PingMsg{ID: 5, Payload: make([]byte, payloadChunk+1234)}
	for i := range big.Payload {
		big.Payload[i] = byte(i)
	}
	var buf bytes.Buffer
	if _, err := WriteMessage(&buf, big); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !wireEqual(big, got) {
		t.Fatal("chunked payload mismatch")
	}
	// A lying length prefix on a short stream errors out.
	var lie bytes.Buffer
	if _, err := WriteMessage(&lie, big); err != nil {
		t.Fatal(err)
	}
	short := lie.Bytes()[:FrameHeaderBytes+100]
	if _, _, err := ReadMessage(io.MultiReader(bytes.NewReader(short))); err == nil {
		t.Fatal("short chunked frame accepted")
	}
}
