// pool.go: sync.Pool-backed reuse for the wire hot path. The paper's point
// is that avoidable work on the query path costs energy and latency; on the
// Go side the avoidable work is per-message garbage — frame encode buffers,
// decode payload buffers, and decoded message structs. Pooling them makes a
// warm encode/decode cycle allocation-free.
//
// Ownership discipline:
//
//   - ReadMessage returns a pooled message. The receiver that finishes with
//     it calls ReleaseMessage; a receiver that hands the message's slices to
//     someone else (the client returns reply IDs/Records to its caller)
//     simply never releases it — an unreleased message is ordinary garbage
//     with unchanged semantics.
//   - A released message, and everything it points into, must not be touched
//     again: its slices will be overwritten by a future decode.
//   - Acquire*/ReleaseMessage are optional everywhere. Code that allocates
//     messages with plain literals keeps working; it just pays the
//     allocation.
package proto

import "sync"

// Retention caps: a pooled object that grew past these is dropped instead of
// pooled, so one huge shipment or ping does not pin memory forever.
const (
	maxPooledBuf     = 1 << 20
	maxPooledIDs     = 64 << 10
	maxPooledRecords = 16 << 10
)

// bufPool holds frame encode buffers and frame decode payload buffers.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(pb *[]byte) {
	if cap(*pb) > maxPooledBuf {
		return
	}
	*pb = (*pb)[:0]
	bufPool.Put(pb)
}

// Per-type message pools. Only the types that appear on the hot query path
// are pooled; shipments, errors, and stats frames are cold and stay
// plainly allocated.
var (
	queryPool      = sync.Pool{New: func() any { return new(QueryMsg) }}
	idListPool     = sync.Pool{New: func() any { return new(IDListMsg) }}
	dataListPool   = sync.Pool{New: func() any { return new(DataListMsg) }}
	pingPool       = sync.Pool{New: func() any { return new(PingMsg) }}
	shipReqPool    = sync.Pool{New: func() any { return new(ShipmentReqMsg) }}
	batchQueryPool = sync.Pool{New: func() any { return new(BatchQueryMsg) }}
	batchReplyPool = sync.Pool{New: func() any { return new(BatchReplyMsg) }}
	nnQueryPool    = sync.Pool{New: func() any { return new(NNQueryMsg) }}
	neighborsPool  = sync.Pool{New: func() any { return new(NeighborsMsg) }}
	insertPool     = sync.Pool{New: func() any { return new(InsertMsg) }}
	deletePool     = sync.Pool{New: func() any { return new(DeleteMsg) }}
	movePool       = sync.Pool{New: func() any { return new(MoveMsg) }}
	updateAckPool  = sync.Pool{New: func() any { return new(UpdateAckMsg) }}
)

// AcquireQuery returns a zeroed *QueryMsg from the pool. Pass it to a
// release-aware consumer (the client's query path releases the request after
// the round trip) or call ReleaseMessage yourself.
func AcquireQuery() *QueryMsg { return queryPool.Get().(*QueryMsg) }

// AcquireBatchQuery returns a *BatchQueryMsg from the pool with zero scalar
// fields and an empty (capacity-preserving) Queries slice.
func AcquireBatchQuery() *BatchQueryMsg { return batchQueryPool.Get().(*BatchQueryMsg) }

// AcquireNNQuery returns a zeroed *NNQueryMsg from the pool — the router's
// per-leg NN request, reused across legs like AcquireQuery.
func AcquireNNQuery() *NNQueryMsg { return nnQueryPool.Get().(*NNQueryMsg) }

// AcquireInsert returns a zeroed *InsertMsg from the pool; the moving-object
// workload issues these at write-path rates, so they pool like queries.
func AcquireInsert() *InsertMsg { return insertPool.Get().(*InsertMsg) }

// AcquireDelete returns a zeroed *DeleteMsg from the pool.
func AcquireDelete() *DeleteMsg { return deletePool.Get().(*DeleteMsg) }

// AcquireMove returns a zeroed *MoveMsg from the pool — the hottest update
// type under the moving-object workload.
func AcquireMove() *MoveMsg { return movePool.Get().(*MoveMsg) }

// ReleaseMessage returns m to its type's pool, keeping slice capacity for
// reuse. Releasing an unpooled type is a no-op. The caller must not touch m —
// or any slice it handed out from m — afterwards.
func ReleaseMessage(m Message) {
	switch v := m.(type) {
	case *QueryMsg:
		*v = QueryMsg{}
		queryPool.Put(v)
	case *IDListMsg:
		if cap(v.IDs) > maxPooledIDs {
			return
		}
		v.ID = 0
		v.Epoch = 0
		v.IDs = v.IDs[:0]
		idListPool.Put(v)
	case *DataListMsg:
		if cap(v.Records) > maxPooledRecords {
			return
		}
		v.ID = 0
		v.Epoch = 0
		v.Records = v.Records[:0]
		dataListPool.Put(v)
	case *PingMsg:
		if cap(v.Payload) > maxPooledBuf {
			return
		}
		v.ID = 0
		v.Payload = v.Payload[:0]
		pingPool.Put(v)
	case *ShipmentReqMsg:
		*v = ShipmentReqMsg{}
		shipReqPool.Put(v)
	case *BatchQueryMsg:
		v.ID = 0
		v.TimeoutMicros = 0
		v.Queries = v.Queries[:0]
		batchQueryPool.Put(v)
	case *NNQueryMsg:
		*v = NNQueryMsg{}
		nnQueryPool.Put(v)
	case *NeighborsMsg:
		if cap(v.Neighbors) > maxPooledIDs {
			return
		}
		v.ID = 0
		v.Neighbors = v.Neighbors[:0]
		neighborsPool.Put(v)
	case *InsertMsg:
		*v = InsertMsg{}
		insertPool.Put(v)
	case *DeleteMsg:
		*v = DeleteMsg{}
		deletePool.Put(v)
	case *MoveMsg:
		*v = MoveMsg{}
		movePool.Put(v)
	case *UpdateAckMsg:
		*v = UpdateAckMsg{}
		updateAckPool.Put(v)
	case *BatchReplyMsg:
		// Trim the full capacity region: items beyond len keep reusable
		// slices from earlier decodes.
		if !trimBatchItems(v.Items[:cap(v.Items)]) {
			return
		}
		v.ID = 0
		v.Epoch = 0
		v.Items = v.Items[:0]
		batchReplyPool.Put(v)
	}
}

// trimBatchItems resets the per-item slices for reuse; false means some item
// grew past the retention cap and the whole reply should be dropped.
func trimBatchItems(items []BatchItem) bool {
	for i := range items {
		it := &items[i]
		if cap(it.IDs) > maxPooledIDs || cap(it.Recs) > maxPooledRecords {
			return false
		}
		it.IDs = it.IDs[:0]
		it.Recs = it.Recs[:0]
		it.Err = 0
		it.Text = ""
	}
	return true
}
