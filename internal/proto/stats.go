// stats.go extends the wire catalogue with the observability snapshot pair:
// MsgStatsReq asks the server for its metrics snapshot and MsgStats carries
// it back — counters, gauges, and histogram summaries — so a client (or
// cmd/mqtop) can pull server-side observability over the existing query
// connection instead of needing the HTTP export surface.
package proto

import (
	"fmt"
	"math"
)

// Snapshot limits: a snapshot is diagnostic, not bulk data.
const (
	// MaxStatsEntries bounds each snapshot section.
	MaxStatsEntries = 4096
	// MaxStatName bounds one metric name (labels included).
	MaxStatName = 256
)

// StatsReqMsg asks the server for a metrics snapshot. Servers answer it like
// a ping — bypassing admission control — so observability stays available
// under overload.
type StatsReqMsg struct {
	ID uint32
}

// Type implements Message.
func (m *StatsReqMsg) Type() MsgType { return MsgStatsReq }

// RequestID implements Message.
func (m *StatsReqMsg) RequestID() uint32 { return m.ID }

// Validate implements Message.
func (m *StatsReqMsg) Validate() error { return nil }

func (m *StatsReqMsg) appendPayload(b []byte) []byte { return appendU32(b, m.ID) }

func (m *StatsReqMsg) decodePayload(b []byte) error {
	d := decoder{b: b}
	m.ID = d.u32()
	return d.finish("stats-req")
}

// StatCounter is one monotonic counter in a snapshot.
type StatCounter struct {
	Name  string
	Value uint64
}

// StatGauge is one instantaneous value in a snapshot.
type StatGauge struct {
	Name  string
	Value float64
}

// StatHist is one histogram summary in a snapshot: the headline quantiles of
// an internal/stats log-bucketed histogram, not its buckets.
type StatHist struct {
	Name  string
	Count uint64
	Mean  float64
	Min   float64
	Max   float64
	P50   float64
	P95   float64
	P99   float64
}

// StatsMsg is the server's metrics snapshot.
type StatsMsg struct {
	ID uint32
	// UptimeMicros is the server's time since start in microseconds.
	UptimeMicros uint64
	Counters     []StatCounter
	Gauges       []StatGauge
	Hists        []StatHist
}

// Type implements Message.
func (m *StatsMsg) Type() MsgType { return MsgStats }

// RequestID implements Message.
func (m *StatsMsg) RequestID() uint32 { return m.ID }

// Validate implements Message.
func (m *StatsMsg) Validate() error {
	if len(m.Counters) > MaxStatsEntries || len(m.Gauges) > MaxStatsEntries || len(m.Hists) > MaxStatsEntries {
		return fmt.Errorf("proto: stats snapshot with %d/%d/%d entries exceeds %d",
			len(m.Counters), len(m.Gauges), len(m.Hists), MaxStatsEntries)
	}
	for _, c := range m.Counters {
		if err := checkStatName(c.Name); err != nil {
			return err
		}
	}
	for _, g := range m.Gauges {
		if err := checkStatName(g.Name); err != nil {
			return err
		}
		if math.IsNaN(g.Value) {
			return fmt.Errorf("proto: NaN gauge %q", g.Name)
		}
	}
	for _, h := range m.Hists {
		if err := checkStatName(h.Name); err != nil {
			return err
		}
		for _, v := range [...]float64{h.Mean, h.Min, h.Max, h.P50, h.P95, h.P99} {
			if math.IsNaN(v) {
				return fmt.Errorf("proto: NaN summary field in histogram %q", h.Name)
			}
		}
	}
	return nil
}

func checkStatName(name string) error {
	if name == "" {
		return fmt.Errorf("proto: empty metric name in stats snapshot")
	}
	if len(name) > MaxStatName {
		return fmt.Errorf("proto: metric name of %d bytes exceeds %d", len(name), MaxStatName)
	}
	return nil
}

func appendStatName(b []byte, name string) []byte {
	b = appendU16(b, uint16(len(name)))
	return append(b, name...)
}

func (m *StatsMsg) appendPayload(b []byte) []byte {
	b = appendU32(b, m.ID)
	b = binaryAppendU64(b, m.UptimeMicros)
	b = appendU16(b, uint16(len(m.Counters)))
	for _, c := range m.Counters {
		b = appendStatName(b, c.Name)
		b = binaryAppendU64(b, c.Value)
	}
	b = appendU16(b, uint16(len(m.Gauges)))
	for _, g := range m.Gauges {
		b = appendStatName(b, g.Name)
		b = appendF64(b, g.Value)
	}
	b = appendU16(b, uint16(len(m.Hists)))
	for _, h := range m.Hists {
		b = appendStatName(b, h.Name)
		b = binaryAppendU64(b, h.Count)
		b = appendF64(b, h.Mean)
		b = appendF64(b, h.Min)
		b = appendF64(b, h.Max)
		b = appendF64(b, h.P50)
		b = appendF64(b, h.P95)
		b = appendF64(b, h.P99)
	}
	return b
}

func (m *StatsMsg) decodePayload(b []byte) error {
	d := decoder{b: b}
	m.ID = d.u32()
	m.UptimeMicros = d.u64()
	if n := int(d.u16()); n > 0 {
		m.Counters = make([]StatCounter, 0, min(n, MaxStatsEntries))
		for i := 0; i < n && d.err == nil; i++ {
			name := string(d.bytes(int(d.u16())))
			m.Counters = append(m.Counters, StatCounter{Name: name, Value: d.u64()})
		}
	}
	if n := int(d.u16()); n > 0 {
		m.Gauges = make([]StatGauge, 0, min(n, MaxStatsEntries))
		for i := 0; i < n && d.err == nil; i++ {
			name := string(d.bytes(int(d.u16())))
			m.Gauges = append(m.Gauges, StatGauge{Name: name, Value: d.f64()})
		}
	}
	if n := int(d.u16()); n > 0 {
		m.Hists = make([]StatHist, 0, min(n, MaxStatsEntries))
		for i := 0; i < n && d.err == nil; i++ {
			m.Hists = append(m.Hists, StatHist{
				Name:  string(d.bytes(int(d.u16()))),
				Count: d.u64(),
				Mean:  d.f64(),
				Min:   d.f64(),
				Max:   d.f64(),
				P50:   d.f64(),
				P95:   d.f64(),
				P99:   d.f64(),
			})
		}
	}
	// Forward compatibility: trailing extension sections. A newer server may
	// append sections this decoder does not know — each framed as a tag byte
	// plus a u32 payload length — and an old reader (mqtop against a newer
	// router, say) must skip them instead of failing the whole snapshot on
	// "trailing bytes". Only malformed framing (a length past the payload
	// end) is still an error.
	for d.err == nil && d.off < len(d.b) {
		_ = d.u8() // extension tag: unknown sections are skipped
		d.bytes(int(d.u32()))
	}
	return d.finish("stats")
}
