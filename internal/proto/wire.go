// wire.go turns the message catalogue that the simulator only *counts*
// (proto.go: query request, candidate/object id lists, data payloads, index
// shipments) into a real binary wire format that the networked service
// (internal/serve) actually marshals. Every message is carried in one frame:
//
//	uint32 big-endian payload length | uint8 message type | payload
//
// All multi-byte integers are big-endian; floats are IEEE-754 bit patterns.
// Every message carries a request id so a connection can pipeline requests
// and match responses arriving out of order.
package proto

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"mobispatial/internal/geom"
)

// MsgType identifies a wire message.
type MsgType uint8

// The wire message catalogue — the §4 protocol's messages plus the
// transport-level error and ping frames a real service needs.
const (
	// MsgQuery is a client→server query request (the §4 "query message").
	MsgQuery MsgType = 1 + iota
	// MsgIDList carries object or candidate ids only — the data-at-client
	// reply of §6.1.1 and the candidate list of filter-server schemes.
	MsgIDList
	// MsgDataList carries full data records — the data-absent reply.
	MsgDataList
	// MsgShipmentReq asks the server for an insufficient-memory shipment
	// (Fig. 2): data + sub-index covering a window under a byte budget.
	MsgShipmentReq
	// MsgShipment is the shipment reply: records plus the coverage
	// guarantee rectangle (the client rebuilds the sub-index locally).
	MsgShipment
	// MsgError is a per-request failure reply.
	MsgError
	// MsgPing is an echo frame; clients use it to measure RTT and, with a
	// large payload, effective bandwidth.
	MsgPing
	// MsgStatsReq asks the server for its metrics snapshot (stats.go).
	MsgStatsReq
	// MsgStats is the snapshot reply: counters, gauges, histogram summaries.
	MsgStats
)

var msgTypeNames = map[MsgType]string{
	MsgQuery:       "query",
	MsgIDList:      "id-list",
	MsgDataList:    "data-list",
	MsgShipmentReq: "shipment-req",
	MsgShipment:    "shipment",
	MsgError:       "error",
	MsgPing:        "ping",
	MsgStatsReq:    "stats-req",
	MsgStats:       "stats",
	MsgBatchQuery:  "batch-query",
	MsgBatchReply:  "batch-reply",
	MsgNNQuery:     "nn-query",
	MsgNeighbors:   "neighbors",
	MsgSummaryReq:  "summary-req",
	MsgSummary:     "summary",
	MsgInsert:      "insert",
	MsgDelete:      "delete",
	MsgMove:        "move",
	MsgUpdateAck:   "update-ack",
}

// String implements fmt.Stringer.
func (t MsgType) String() string {
	if s, ok := msgTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Framing limits.
const (
	// FrameHeaderBytes is the length prefix plus the type byte.
	FrameHeaderBytes = 5
	// MaxFramePayload bounds one frame's payload; larger frames are a
	// protocol error (shipments dominate: 64 MB holds ~1.8M records).
	MaxFramePayload = 64 << 20
	// MaxErrorText bounds the error message text.
	MaxErrorText = 1024
	// MaxPingPayload bounds the ping echo payload.
	MaxPingPayload = 1 << 20
)

// Query kinds on the wire (mirrors core.QueryKind; proto cannot import core).
const (
	KindPoint uint8 = 0
	KindRange uint8 = 1
	KindNN    uint8 = 2
)

// Mode selects what the server computes and returns for a query.
type Mode uint8

// The execution modes, mapping Table 1's schemes onto the wire.
const (
	// ModeData: the server filters and refines and returns full records —
	// fully-server with the data absent at the client.
	ModeData Mode = iota
	// ModeIDs: the server filters and refines and returns ids only —
	// fully-server with the data present at the client (§6.1.1).
	ModeIDs
	// ModeFilter: the server filters only and returns candidate ids — the
	// server half of filter-server/refine-client.
	ModeFilter
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeData:
		return "data"
	case ModeIDs:
		return "ids"
	case ModeFilter:
		return "filter"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// ErrCode classifies a MsgError reply.
type ErrCode uint16

// Error codes.
const (
	CodeBadRequest ErrCode = 1 + iota
	// CodeOverload: admission control rejected the request (backpressure).
	CodeOverload
	// CodeDeadline: the request missed its deadline.
	CodeDeadline
	// CodeShutdown: the server is draining.
	CodeShutdown
	// CodeUnsupported: the operation is not available (e.g. no master
	// index for shipments).
	CodeUnsupported
	CodeInternal ErrCode = 100
)

// String implements fmt.Stringer.
func (c ErrCode) String() string {
	switch c {
	case CodeBadRequest:
		return "bad-request"
	case CodeOverload:
		return "overload"
	case CodeDeadline:
		return "deadline"
	case CodeShutdown:
		return "shutdown"
	case CodeUnsupported:
		return "unsupported"
	case CodeUnavailable:
		return "unavailable"
	case CodeInternal:
		return "internal"
	}
	return fmt.Sprintf("ErrCode(%d)", uint16(c))
}

// Message is one wire message. Concrete types live in this package only; the
// encode/decode halves are unexported so the frame format stays closed.
type Message interface {
	Type() MsgType
	// RequestID returns the pipelining correlation id.
	RequestID() uint32
	// Validate checks the message is well-formed enough to put on (or
	// accept from) the wire.
	Validate() error
	appendPayload(b []byte) []byte
	decodePayload(b []byte) error
}

// Record is one shipped data record: the segment id plus its geometry — the
// wire form of a TIGER record's spatial part.
type Record struct {
	ID  uint32
	Seg geom.Segment
}

// WireRecordBytes is the encoded size of one Record.
const WireRecordBytes = 4 + 4*8

// QueryMsg is a query request.
type QueryMsg struct {
	ID   uint32
	Kind uint8 // KindPoint, KindRange, KindNN
	Mode Mode
	// K is the neighbor count for NN queries (0 and 1 both mean single NN).
	K uint16
	// Point is the query point (point and NN kinds).
	Point geom.Point
	// Window is the query window (range kind).
	Window geom.Rect
	// Eps is the point-incidence tolerance in map units; 0 lets the server
	// pick its default.
	Eps float64
	// TimeoutMicros caps the server-side processing time in microseconds;
	// 0 means the server default.
	TimeoutMicros uint32
}

// Type implements Message.
func (m *QueryMsg) Type() MsgType { return MsgQuery }

// RequestID implements Message.
func (m *QueryMsg) RequestID() uint32 { return m.ID }

// Validate implements Message.
func (m *QueryMsg) Validate() error {
	if m.Kind > KindNN {
		return fmt.Errorf("proto: bad query kind %d", m.Kind)
	}
	if m.Mode > ModeFilter {
		return fmt.Errorf("proto: bad query mode %d", m.Mode)
	}
	if m.Kind == KindNN && m.Mode == ModeFilter {
		return fmt.Errorf("proto: NN query has no filter-only mode")
	}
	if m.Eps < 0 || math.IsNaN(m.Eps) || math.IsInf(m.Eps, 0) {
		return fmt.Errorf("proto: bad eps %v", m.Eps)
	}
	// Both geometry fields are validated regardless of kind — a don't-care
	// field must still be well-formed or malformed frames survive re-encoding
	// (found by fuzzing).
	if err := checkRect(m.Window); err != nil {
		return err
	}
	if err := checkPoint(m.Point); err != nil {
		return err
	}
	if m.Kind == KindRange && m.Window.IsEmpty() {
		return fmt.Errorf("proto: empty range window")
	}
	return nil
}

func (m *QueryMsg) appendPayload(b []byte) []byte {
	b = appendU32(b, m.ID)
	b = append(b, m.Kind, byte(m.Mode))
	b = appendU16(b, m.K)
	b = appendPoint(b, m.Point)
	b = appendRect(b, m.Window)
	b = appendF64(b, m.Eps)
	return appendU32(b, m.TimeoutMicros)
}

func (m *QueryMsg) decodePayload(b []byte) error {
	d := decoder{b: b}
	m.ID = d.u32()
	m.Kind = d.u8()
	m.Mode = Mode(d.u8())
	m.K = d.u16()
	m.Point = d.point()
	m.Window = d.rect()
	m.Eps = d.f64()
	m.TimeoutMicros = d.u32()
	return d.finish("query")
}

// IDListMsg carries object or candidate ids.
type IDListMsg struct {
	ID uint32
	// Epoch is the server's index-state fingerprint at answer time (the
	// qcache hint: any acknowledged write changes it). Zero means the
	// server offers no epoch information — older servers and routers.
	// Clients use it to validate semantically cached shipments.
	Epoch uint64
	IDs   []uint32
}

// Type implements Message.
func (m *IDListMsg) Type() MsgType { return MsgIDList }

// RequestID implements Message.
func (m *IDListMsg) RequestID() uint32 { return m.ID }

// Validate implements Message.
func (m *IDListMsg) Validate() error {
	if n := len(m.IDs); n > (MaxFramePayload-8)/4 {
		return fmt.Errorf("proto: id list of %d ids exceeds frame limit", n)
	}
	return nil
}

func (m *IDListMsg) appendPayload(b []byte) []byte {
	b = appendU32(b, m.ID)
	b = binaryAppendU64(b, m.Epoch)
	b = appendU32(b, uint32(len(m.IDs)))
	for _, id := range m.IDs {
		b = appendU32(b, id)
	}
	return b
}

func (m *IDListMsg) decodePayload(b []byte) error {
	d := decoder{b: b}
	m.ID = d.u32()
	m.Epoch = d.u64()
	n := int(d.u32())
	if d.err == nil && n*4 != len(d.b)-d.off {
		return fmt.Errorf("proto: id list count %d does not match %d payload bytes", n, len(d.b)-d.off)
	}
	m.IDs = d.appendIDsN(m.IDs[:0], n)
	return d.finish("id-list")
}

// DataListMsg carries full data records.
type DataListMsg struct {
	ID uint32
	// Epoch is the index-state fingerprint, as on IDListMsg; 0 = none.
	Epoch   uint64
	Records []Record
}

// Type implements Message.
func (m *DataListMsg) Type() MsgType { return MsgDataList }

// RequestID implements Message.
func (m *DataListMsg) RequestID() uint32 { return m.ID }

// Validate implements Message.
func (m *DataListMsg) Validate() error { return validateRecords("data list", m.Records) }

func (m *DataListMsg) appendPayload(b []byte) []byte {
	b = appendU32(b, m.ID)
	b = binaryAppendU64(b, m.Epoch)
	return appendRecords(b, m.Records)
}

func (m *DataListMsg) decodePayload(b []byte) error {
	d := decoder{b: b}
	m.ID = d.u32()
	m.Epoch = d.u64()
	n := int(d.u32())
	if d.err == nil && n*WireRecordBytes != len(d.b)-d.off {
		d.err = fmt.Errorf("record count %d does not match %d payload bytes", n, len(d.b)-d.off)
	}
	m.Records = d.appendRecordsN(m.Records[:0], n)
	return d.finish("data-list")
}

// ShipmentReqMsg asks for a Fig. 2 shipment.
type ShipmentReqMsg struct {
	ID uint32
	// Window is the triggering query window the shipment must cover.
	Window geom.Rect
	// BudgetBytes is the client memory available for data + index.
	BudgetBytes uint32
	// RecordBytes is the client's record size, so the server can size the
	// selection (record payloads are larger than the 36-byte wire form:
	// they include attributes).
	RecordBytes   uint32
	TimeoutMicros uint32
}

// Type implements Message.
func (m *ShipmentReqMsg) Type() MsgType { return MsgShipmentReq }

// RequestID implements Message.
func (m *ShipmentReqMsg) RequestID() uint32 { return m.ID }

// Validate implements Message.
func (m *ShipmentReqMsg) Validate() error {
	if err := checkRect(m.Window); err != nil {
		return err
	}
	if m.BudgetBytes == 0 {
		return fmt.Errorf("proto: zero shipment budget")
	}
	if m.RecordBytes < 16 {
		return fmt.Errorf("proto: shipment record size %d < 16", m.RecordBytes)
	}
	return nil
}

func (m *ShipmentReqMsg) appendPayload(b []byte) []byte {
	b = appendU32(b, m.ID)
	b = appendRect(b, m.Window)
	b = appendU32(b, m.BudgetBytes)
	b = appendU32(b, m.RecordBytes)
	return appendU32(b, m.TimeoutMicros)
}

func (m *ShipmentReqMsg) decodePayload(b []byte) error {
	d := decoder{b: b}
	m.ID = d.u32()
	m.Window = d.rect()
	m.BudgetBytes = d.u32()
	m.RecordBytes = d.u32()
	m.TimeoutMicros = d.u32()
	return d.finish("shipment-req")
}

// ShipmentMsg is the shipment reply. An empty Coverage rectangle means the
// shipment carries no coverage guarantee (the answer alone overflowed the
// budget — §4's re-request case).
type ShipmentMsg struct {
	ID uint32
	// Epoch is the index-state fingerprint the shipment was cut under; a
	// client may answer covered queries locally while later replies carry
	// the same non-zero hint. Zero means the shipment carries no currency
	// claim (older servers, or an index that has diverged from the master
	// tree shipments are cut from).
	Epoch    uint64
	Coverage geom.Rect
	Records  []Record
}

// Type implements Message.
func (m *ShipmentMsg) Type() MsgType { return MsgShipment }

// RequestID implements Message.
func (m *ShipmentMsg) RequestID() uint32 { return m.ID }

// Validate implements Message.
func (m *ShipmentMsg) Validate() error {
	if err := checkRect(m.Coverage); err != nil {
		return err
	}
	return validateRecords("shipment", m.Records)
}

func (m *ShipmentMsg) appendPayload(b []byte) []byte {
	b = appendU32(b, m.ID)
	b = binaryAppendU64(b, m.Epoch)
	b = appendRect(b, m.Coverage)
	return appendRecords(b, m.Records)
}

func (m *ShipmentMsg) decodePayload(b []byte) error {
	d := decoder{b: b}
	m.ID = d.u32()
	m.Epoch = d.u64()
	m.Coverage = d.rect()
	m.Records = d.records()
	return d.finish("shipment")
}

// ErrorMsg is a per-request failure reply.
type ErrorMsg struct {
	ID   uint32
	Code ErrCode
	Text string
}

// Type implements Message.
func (m *ErrorMsg) Type() MsgType { return MsgError }

// RequestID implements Message.
func (m *ErrorMsg) RequestID() uint32 { return m.ID }

// Validate implements Message.
func (m *ErrorMsg) Validate() error {
	if m.Code == 0 {
		return fmt.Errorf("proto: error message with zero code")
	}
	if len(m.Text) > MaxErrorText {
		return fmt.Errorf("proto: error text %d bytes exceeds %d", len(m.Text), MaxErrorText)
	}
	return nil
}

// Error implements the error interface so servers' MsgError replies can be
// returned directly by client libraries.
func (m *ErrorMsg) Error() string {
	return fmt.Sprintf("server error %v: %s", m.Code, m.Text)
}

func (m *ErrorMsg) appendPayload(b []byte) []byte {
	b = appendU32(b, m.ID)
	b = appendU16(b, uint16(m.Code))
	b = appendU16(b, uint16(len(m.Text)))
	return append(b, m.Text...)
}

func (m *ErrorMsg) decodePayload(b []byte) error {
	d := decoder{b: b}
	m.ID = d.u32()
	m.Code = ErrCode(d.u16())
	n := int(d.u16())
	m.Text = string(d.bytes(n))
	return d.finish("error")
}

// PingMsg is echoed verbatim by the server.
type PingMsg struct {
	ID      uint32
	Payload []byte
}

// Type implements Message.
func (m *PingMsg) Type() MsgType { return MsgPing }

// RequestID implements Message.
func (m *PingMsg) RequestID() uint32 { return m.ID }

// Validate implements Message.
func (m *PingMsg) Validate() error {
	if len(m.Payload) > MaxPingPayload {
		return fmt.Errorf("proto: ping payload %d bytes exceeds %d", len(m.Payload), MaxPingPayload)
	}
	return nil
}

func (m *PingMsg) appendPayload(b []byte) []byte {
	b = appendU32(b, m.ID)
	b = appendU32(b, uint32(len(m.Payload)))
	return append(b, m.Payload...)
}

func (m *PingMsg) decodePayload(b []byte) error {
	d := decoder{b: b}
	m.ID = d.u32()
	n := int(d.u32())
	m.Payload = append(m.Payload[:0], d.bytes(n)...)
	return d.finish("ping")
}

// newMessage returns the empty concrete type for a wire type, drawing
// hot-path types from their pools (their decodePayload methods reset every
// field, reusing slice capacity).
func newMessage(t MsgType) (Message, error) {
	switch t {
	case MsgQuery:
		return queryPool.Get().(*QueryMsg), nil
	case MsgIDList:
		return idListPool.Get().(*IDListMsg), nil
	case MsgDataList:
		return dataListPool.Get().(*DataListMsg), nil
	case MsgShipmentReq:
		return shipReqPool.Get().(*ShipmentReqMsg), nil
	case MsgShipment:
		return &ShipmentMsg{}, nil
	case MsgError:
		return &ErrorMsg{}, nil
	case MsgPing:
		return pingPool.Get().(*PingMsg), nil
	case MsgStatsReq:
		return &StatsReqMsg{}, nil
	case MsgStats:
		return &StatsMsg{}, nil
	case MsgBatchQuery:
		return batchQueryPool.Get().(*BatchQueryMsg), nil
	case MsgBatchReply:
		return batchReplyPool.Get().(*BatchReplyMsg), nil
	case MsgNNQuery:
		return nnQueryPool.Get().(*NNQueryMsg), nil
	case MsgNeighbors:
		return neighborsPool.Get().(*NeighborsMsg), nil
	case MsgSummaryReq:
		return &SummaryReqMsg{}, nil
	case MsgSummary:
		return &SummaryMsg{}, nil
	case MsgInsert:
		return insertPool.Get().(*InsertMsg), nil
	case MsgDelete:
		return deletePool.Get().(*DeleteMsg), nil
	case MsgMove:
		return movePool.Get().(*MoveMsg), nil
	case MsgUpdateAck:
		return updateAckPool.Get().(*UpdateAckMsg), nil
	}
	return nil, fmt.Errorf("proto: unknown message type %d", uint8(t))
}

// AppendFrame validates m and appends its complete frame to dst, growing it
// as needed — the allocation-free encode path for callers that own a
// reusable buffer.
func AppendFrame(dst []byte, m Message) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return dst, err
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, byte(m.Type()))
	dst = m.appendPayload(dst)
	payload := len(dst) - start - FrameHeaderBytes
	if payload > MaxFramePayload {
		return dst[:start], fmt.Errorf("proto: %v frame payload %d exceeds %d", m.Type(), payload, MaxFramePayload)
	}
	binary.BigEndian.PutUint32(dst[start:start+4], uint32(payload))
	return dst, nil
}

// EncodeMessage validates m and returns its complete frame in a fresh
// buffer.
func EncodeMessage(m Message) ([]byte, error) {
	b, err := AppendFrame(make([]byte, 0, FrameHeaderBytes+64), m)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// WriteMessage frames and writes m in a single Write call (callers serialize
// concurrent writers with their own mutex; one call keeps frames intact for
// any io.Writer that does not split writes). The encode buffer is pooled, so
// a warm write allocates nothing.
func WriteMessage(w io.Writer, m Message) (int, error) {
	pb := getBuf()
	b, err := AppendFrame((*pb)[:0], m)
	if err != nil {
		putBuf(pb)
		return 0, err
	}
	n, err := w.Write(b)
	*pb = b
	putBuf(pb)
	return n, err
}

// ReadMessage reads one frame and decodes and validates it. It returns the
// message and the total frame size in bytes (header included) — load
// generators and the client's bandwidth estimator use the size.
//
// The returned message is pooled: callers that finish with it (and with
// every slice it carries) should pass it to ReleaseMessage so the next
// decode reuses it; callers that keep any part of it just don't release.
func ReadMessage(r io.Reader) (Message, int, error) {
	pb := getBuf()
	defer putBuf(pb)
	buf := *pb
	if cap(buf) < FrameHeaderBytes {
		buf = make([]byte, 0, 4096)
	}
	hdr := buf[:FrameHeaderBytes]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFramePayload {
		return nil, 0, fmt.Errorf("proto: frame payload %d exceeds %d", n, MaxFramePayload)
	}
	t := MsgType(hdr[4])
	m, err := newMessage(t)
	if err != nil {
		return nil, 0, err
	}
	var payload []byte
	if int(n) <= payloadChunk || int(n) <= cap(buf) {
		// Small (or already-fitting) payload: read into the pooled buffer.
		if cap(buf) < int(n) {
			buf = make([]byte, 0, int(n))
		}
		*pb = buf
		payload = buf[:n]
		_, err = io.ReadFull(r, payload)
	} else {
		// Big frame: grow chunkwise as bytes actually arrive, so a lying
		// length prefix costs one chunk, not a MaxFramePayload allocation.
		payload, err = readPayloadChunked(r, int(n))
	}
	if err != nil {
		ReleaseMessage(m)
		return nil, 0, fmt.Errorf("proto: short %v frame: %w", t, err)
	}
	if err := m.decodePayload(payload); err != nil {
		ReleaseMessage(m)
		return nil, 0, err
	}
	if err := m.Validate(); err != nil {
		ReleaseMessage(m)
		return nil, 0, err
	}
	return m, FrameHeaderBytes + int(n), nil
}

// payloadChunk is the allocation granularity for big incoming frame
// payloads, and the ceiling on what the direct pooled-buffer read path will
// allocate upfront on the word of a length prefix.
const payloadChunk = 64 << 10

// readPayloadChunked reads exactly n payload bytes, growing the buffer
// chunkwise.
func readPayloadChunked(r io.Reader, n int) ([]byte, error) {
	b := make([]byte, 0, payloadChunk)
	for len(b) < n {
		m := n - len(b)
		if m > payloadChunk {
			m = payloadChunk
		}
		off := len(b)
		b = append(b, make([]byte, m)...)
		if _, err := io.ReadFull(r, b[off:]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// ---- encoding helpers ----

func appendU16(b []byte, v uint16) []byte       { return binary.BigEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte       { return binary.BigEndian.AppendUint32(b, v) }
func binaryAppendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}
func appendPoint(b []byte, p geom.Point) []byte { return appendF64(appendF64(b, p.X), p.Y) }
func appendRect(b []byte, r geom.Rect) []byte   { return appendPoint(appendPoint(b, r.Min), r.Max) }

func appendRecords(b []byte, recs []Record) []byte {
	b = appendU32(b, uint32(len(recs)))
	for _, r := range recs {
		b = appendU32(b, r.ID)
		b = appendPoint(b, r.Seg.A)
		b = appendPoint(b, r.Seg.B)
	}
	return b
}

func validateRecords(what string, recs []Record) error {
	if n := len(recs); n > (MaxFramePayload-24)/WireRecordBytes {
		return fmt.Errorf("proto: %s of %d records exceeds frame limit", what, n)
	}
	for i, r := range recs {
		if err := checkPoint(r.Seg.A); err != nil {
			return fmt.Errorf("proto: %s record %d: %w", what, i, err)
		}
		if err := checkPoint(r.Seg.B); err != nil {
			return fmt.Errorf("proto: %s record %d: %w", what, i, err)
		}
	}
	return nil
}

func checkPoint(p geom.Point) error {
	if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
		return fmt.Errorf("proto: non-finite coordinate %v", p)
	}
	return nil
}

// checkRect rejects NaN corners but allows the canonical empty rectangle
// (Min > Max with infinite corners — geom.EmptyRect), which ShipmentMsg uses
// for "no coverage guarantee". NaN is rejected even in empty rectangles:
// IsEmpty is true when either axis is inverted, so a rect empty on one axis
// could otherwise smuggle NaN through on the other (found by fuzzing).
func checkRect(r geom.Rect) error {
	for _, v := range [...]float64{r.Min.X, r.Min.Y, r.Max.X, r.Max.Y} {
		if math.IsNaN(v) {
			return fmt.Errorf("proto: NaN rectangle corner %v", r)
		}
	}
	if r.IsEmpty() {
		return nil
	}
	if err := checkPoint(r.Min); err != nil {
		return err
	}
	return checkPoint(r.Max)
}

// decoder is a bounds-checked big-endian reader over one payload.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.b) {
		d.err = fmt.Errorf("truncated at byte %d (need %d of %d)", d.off, n, len(d.b))
		return false
	}
	return true
}

func (d *decoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) f64() float64 {
	if !d.need(8) {
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) point() geom.Point { return geom.Point{X: d.f64(), Y: d.f64()} }
func (d *decoder) rect() geom.Rect   { return geom.Rect{Min: d.point(), Max: d.point()} }

func (d *decoder) bytes(n int) []byte {
	if n < 0 || !d.need(n) {
		if d.err == nil {
			d.err = fmt.Errorf("negative length %d", n)
		}
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *decoder) records() []Record {
	n := int(d.u32())
	if d.err == nil && n*WireRecordBytes != len(d.b)-d.off {
		d.err = fmt.Errorf("record count %d does not match %d payload bytes", n, len(d.b)-d.off)
		return nil
	}
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, Record{
			ID:  d.u32(),
			Seg: geom.Segment{A: d.point(), B: d.point()},
		})
	}
	return recs
}

// appendIDsN appends n decoded ids to dst, reusing its capacity. The count
// is bounds-checked against the remaining payload before dst grows, so a
// hostile count cannot force a huge allocation.
func (d *decoder) appendIDsN(dst []uint32, n int) []uint32 {
	if d.err != nil || n <= 0 {
		if n < 0 && d.err == nil {
			d.err = fmt.Errorf("negative id count %d", n)
		}
		return dst
	}
	if !d.need(n * 4) {
		return dst
	}
	for i := 0; i < n; i++ {
		dst = append(dst, binary.BigEndian.Uint32(d.b[d.off:]))
		d.off += 4
	}
	return dst
}

// appendRecordsN appends n decoded records to dst, reusing its capacity,
// with the same bounds discipline as appendIDsN.
func (d *decoder) appendRecordsN(dst []Record, n int) []Record {
	if d.err != nil || n <= 0 {
		if n < 0 && d.err == nil {
			d.err = fmt.Errorf("negative record count %d", n)
		}
		return dst
	}
	if !d.need(n * WireRecordBytes) {
		return dst
	}
	for i := 0; i < n; i++ {
		dst = append(dst, Record{
			ID:  d.u32(),
			Seg: geom.Segment{A: d.point(), B: d.point()},
		})
	}
	return dst
}

func (d *decoder) finish(what string) error {
	if d.err != nil {
		return fmt.Errorf("proto: bad %s frame: %w", what, d.err)
	}
	if d.off != len(d.b) {
		return fmt.Errorf("proto: %s frame has %d trailing bytes", what, len(d.b)-d.off)
	}
	return nil
}
