// Package proto models the wireless communication software stack of §5.2:
// every message is packaged into TCP segments and IP packets, fragmented
// into MTU-sized frames, and charged both protocol-processing CPU work (per
// packet and per byte, executed on the client's processor model) and
// transfer time at the effective wireless bandwidth.
//
// The effective bandwidth B subsumes channel conditions, noise, and loss, as
// the paper does ("we adjust the delivered bandwidth to model the wireless
// channel condition").
package proto

import (
	"fmt"

	"mobispatial/internal/ops"
)

// Wire-format constants. The MAC overhead models an 802.11-class wireless
// frame (header + FCS).
const (
	TCPHeaderBytes = 20
	IPHeaderBytes  = 20
	MACHeaderBytes = 34
	// MTU is the maximum IP datagram size on the link.
	MTU = 1500
	// MSS is the TCP payload per full segment.
	MSS = MTU - TCPHeaderBytes - IPHeaderBytes
)

// Transfer describes one message's wire footprint.
type Transfer struct {
	// PayloadBytes is the application payload.
	PayloadBytes int
	// Packets is the number of frames on the air.
	Packets int
	// WireBytes is the total bytes on the air including TCP/IP/MAC headers.
	WireBytes int
}

// Packetize computes the wire footprint of a payload. A zero-byte payload
// still costs one frame (the request/ack must be carried).
func Packetize(payloadBytes int) Transfer {
	if payloadBytes < 0 {
		payloadBytes = 0
	}
	packets := (payloadBytes + MSS - 1) / MSS
	if packets == 0 {
		packets = 1
	}
	return Transfer{
		PayloadBytes: payloadBytes,
		Packets:      packets,
		WireBytes:    payloadBytes + packets*(TCPHeaderBytes+IPHeaderBytes+MACHeaderBytes),
	}
}

// Seconds returns the air time of the transfer at bandwidth bps.
func (t Transfer) Seconds(bandwidthBps float64) float64 {
	if bandwidthBps <= 0 {
		return 0
	}
	return float64(t.WireBytes*8) / bandwidthBps
}

// ChargeProcessing charges the protocol-processing CPU cost of sending or
// receiving the transfer to rec: per-packet header/driver work, per-byte
// checksum-and-copy work, and the buffer traffic at BufferBase.
func (t Transfer) ChargeProcessing(rec ops.Recorder, sending bool) {
	rec.Op(ops.OpProtoPacket, t.Packets)
	rec.Op(ops.OpProtoByte, t.PayloadBytes)
	if sending {
		// Build: read the payload from the app buffer, write the framed
		// bytes into the NIC buffer.
		rec.Load(ops.BufferBase, t.PayloadBytes)
		rec.Store(ops.BufferBase+1<<24, t.WireBytes)
	} else {
		// Receive: read frames from the NIC buffer, deliver the payload.
		rec.Load(ops.BufferBase+1<<24, t.WireBytes)
		rec.Store(ops.BufferBase, t.PayloadBytes)
	}
}

// Message sizes of the work-partitioning protocol (§4). All sizes in bytes.
// Object ids are 4 bytes; a query descriptor carries the query type, its
// geometry parameters, and (for the insufficient-memory scenario) the
// client's memory availability.
const (
	QueryRequestBytes = 64
	ObjectIDBytes     = 4
	// ListHeaderBytes prefixes every variable-length list (count, query id,
	// status).
	ListHeaderBytes = 16
)

// IDListBytes returns the payload size of a message carrying n object ids
// (used when the data is present at the client: the server sends ids only).
func IDListBytes(n int) int { return ListHeaderBytes + n*ObjectIDBytes }

// DataListBytes returns the payload size of a message carrying n full data
// records of the given record size (used when the data is absent at the
// client).
func DataListBytes(n, recordBytes int) int { return ListHeaderBytes + n*recordBytes }

// BatchQueryBytes returns the payload size of a request carrying n query
// descriptors in one message — micro-batching shares one list header across
// the batch.
func BatchQueryBytes(n int) int { return ListHeaderBytes + n*QueryRequestBytes }

// BatchIDListBytes returns the payload size of a reply answering n queries
// with totalIDs object ids overall: one shared list header plus a small
// per-item header (count + status) plus the ids.
func BatchIDListBytes(n, totalIDs int) int {
	return ListHeaderBytes + n*8 + totalIDs*ObjectIDBytes
}

// ShipmentBytes returns the payload size of an insufficient-memory shipment:
// data records plus the serialized sub-index.
func ShipmentBytes(items, recordBytes, indexBytes int) int {
	return ListHeaderBytes + items*recordBytes + indexBytes
}

// AckFrames returns the number of TCP acknowledgment frames a receiver
// emits for a transfer of the given packet count under the delayed-ACK
// policy (one ACK per two full segments, at least one).
func AckFrames(packets int) int {
	if packets <= 0 {
		return 0
	}
	return (packets + 1) / 2
}

// AckTransfer returns the wire footprint of n pure-ACK frames (headers
// only, no payload).
func AckTransfer(n int) Transfer {
	if n <= 0 {
		return Transfer{}
	}
	return Transfer{
		PayloadBytes: 0,
		Packets:      n,
		WireBytes:    n * (TCPHeaderBytes + IPHeaderBytes + MACHeaderBytes),
	}
}

// Validate sanity-checks the wire constants (used by config printers).
func Validate() error {
	if MSS <= 0 {
		return fmt.Errorf("proto: non-positive MSS %d", MSS)
	}
	return nil
}
