// Package index declares the access-method contract shared by the spatial
// index structures. The paper evaluates work partitioning on the packed
// R-tree, chosen as the representative structure from its reference [2]
// ("Analyzing Energy Behavior of Spatial Access Methods for Memory-Resident
// Data", VLDB 2001), which compared PMR quadtrees, packed R-trees, and buddy
// trees. This repository implements several of those structures; anything
// satisfying Index can serve as the filtering step of the adequate-memory
// partitioning schemes and of the index-comparison benches.
package index

import (
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
)

// DistFunc returns the exact distance from the current query point to the
// data item with the given id; the nearest-neighbor search calls it to
// refine leaf candidates. Implementations charge their own refinement cost
// to whatever recorder they close over.
type DistFunc func(id uint32) float64

// Index is a read-only spatial access method over a static set of
// identified items. All traversals emit their work to an ops.Recorder so
// the machine models can observe the execution; ops.Null{} runs them as a
// plain library.
type Index interface {
	// Search returns the ids of all items whose MBR intersects the window
	// (the filtering step of a range query).
	Search(window geom.Rect, rec ops.Recorder) []uint32
	// SearchPoint returns the ids of all items whose MBR contains p (the
	// filtering step of a point query).
	SearchPoint(p geom.Point, rec ops.Recorder) []uint32
	// Nearest returns the item nearest to p by exact distance dist,
	// ok == false when the index is empty.
	Nearest(p geom.Point, dist DistFunc, rec ops.Recorder) (id uint32, d float64, ok bool)
	// Len returns the number of indexed items.
	Len() int
	// IndexBytes returns the structure's total byte size — what must fit
	// in (or be shipped to) client memory.
	IndexBytes() int
}
