// Package stats provides the small descriptive-statistics kit the experiment
// harness uses for multi-trial aggregation: mean, standard deviation,
// median, and a normal-approximation confidence half-width.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n−1)
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes the summary of xs; it panics on an empty sample only
// indirectly by returning a zero Summary (callers check N).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// CI95 returns the half-width of a 95% confidence interval for the mean
// under the normal approximation (1.96·σ/√n); 0 for samples of size < 2.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g (min %.4g, median %.4g, max %.4g)",
		s.N, s.Mean, s.CI95(), s.Min, s.Median, s.Max)
}
