package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("mean: %+v", s)
	}
	if math.Abs(s.StdDev-2.1380899) > 1e-6 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 || s.Median != 4.5 {
		t.Fatalf("order stats: %+v", s)
	}
	if s.CI95() <= 0 {
		t.Fatal("no CI for an 8-sample")
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Error("String rendering")
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty sample")
	}
	one := Summarize([]float64{3})
	if one.Mean != 3 || one.Median != 3 || one.StdDev != 0 || one.CI95() != 0 {
		t.Fatalf("singleton: %+v", one)
	}
	odd := Summarize([]float64{3, 1, 2})
	if odd.Median != 2 {
		t.Fatalf("odd median: %v", odd.Median)
	}
}

func TestSummarizeQuickInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw)%50
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
		}
		s := Summarize(xs)
		return s.N == n &&
			s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
