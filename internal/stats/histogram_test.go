package stats

import (
	"math"
	"math/rand"
	"testing"
)

// relErr returns |got-want|/want.
func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestHistogramUniform checks quantiles of a uniform distribution on
// [1ms, 101ms] against their closed forms.
func TestHistogramUniform(t *testing.T) {
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	for i := 0; i < n; i++ {
		h.Record(0.001 + 0.100*rng.Float64())
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.10, 0.001 + 0.100*0.10},
		{0.50, 0.001 + 0.100*0.50},
		{0.95, 0.001 + 0.100*0.95},
		{0.99, 0.001 + 0.100*0.99},
	} {
		got := h.P(tc.q)
		// 2% buckets + sampling noise: accept 3% relative error.
		if relErr(got, tc.want) > 0.03 {
			t.Errorf("P(%.2f) = %.6f, want %.6f (rel err %.3f)",
				tc.q, got, tc.want, relErr(got, tc.want))
		}
	}
	if relErr(h.Mean(), 0.051) > 0.01 {
		t.Errorf("mean = %.6f, want ~0.051", h.Mean())
	}
}

// TestHistogramExponential draws a deterministic exponential sample via the
// inverse CDF and checks the p50/p95/p99 against the closed forms.
func TestHistogramExponential(t *testing.T) {
	h := NewLatencyHistogram()
	const (
		n     = 100000
		scale = 0.004 // 4 ms mean
	)
	for i := 0; i < n; i++ {
		u := (float64(i) + 0.5) / n
		h.Record(-math.Log(1-u) * scale)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, -math.Log(0.50) * scale},
		{0.95, -math.Log(0.05) * scale},
		{0.99, -math.Log(0.01) * scale},
	} {
		if got := h.P(tc.q); relErr(got, tc.want) > 0.03 {
			t.Errorf("P(%.2f) = %.6f, want %.6f", tc.q, got, tc.want)
		}
	}
	if relErr(h.Mean(), scale) > 0.01 {
		t.Errorf("mean = %.6f, want ~%.4f", h.Mean(), scale)
	}
}

// TestHistogramEdges covers empty histograms, extreme quantiles, and
// out-of-span samples.
func TestHistogramEdges(t *testing.T) {
	h := NewLatencyHistogram()
	if h.P(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}

	h.Record(5e-9)  // below span: underflow bucket
	h.Record(0.010) // in span
	h.Record(5e4)   // above span: overflow bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.P(0); got != 5e-9 {
		t.Errorf("P(0) = %g, want exact min", got)
	}
	if got := h.P(1); got != 5e4 {
		t.Errorf("P(1) = %g, want exact max", got)
	}
	// The median must come from the in-span bucket.
	if got := h.P(0.5); relErr(got, 0.010) > 0.02 {
		t.Errorf("P(0.5) = %g, want ~0.010", got)
	}
	// Quantile in the overflow region clamps to the observed max.
	if got := h.P(0.99); got > 5e4 {
		t.Errorf("P(0.99) = %g exceeds max", got)
	}

	if _, err := NewHistogram(0, 1, 1.1); err == nil {
		t.Error("lo=0 accepted")
	}
	if _, err := NewHistogram(1, 2, 1.0); err == nil {
		t.Error("growth=1 accepted")
	}
	if _, err := NewHistogram(2, 1, 1.1); err == nil {
		t.Error("hi<lo accepted")
	}
}

// TestHistogramMerge splits one sample stream across two histograms and
// requires the merge to match a histogram that saw everything.
func TestHistogramMerge(t *testing.T) {
	whole := NewLatencyHistogram()
	a, b := NewLatencyHistogram(), NewLatencyHistogram()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		x := 0.0005 * math.Exp(rng.Float64()*3) // log-uniform 0.5ms..10ms
		whole.Record(x)
		if i%2 == 0 {
			a.Record(x)
		} else {
			b.Record(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), whole.Count())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got, want := a.P(q), whole.P(q); got != want {
			t.Errorf("P(%.2f): merged %g != whole %g", q, got, want)
		}
	}
	// Summation order differs between the split and whole streams, so the
	// means agree only to float rounding; min/max are exact.
	if relErr(a.Mean(), whole.Mean()) > 1e-12 {
		t.Error("merged mean diverged from the whole-stream histogram")
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Error("merged min/max diverged from the whole-stream histogram")
	}

	other, err := NewHistogram(1, 10, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	other.Record(2)
	if err := a.Merge(other); err == nil {
		t.Error("merge across bucket layouts accepted")
	}
}
