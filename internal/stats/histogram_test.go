package stats

import (
	"math"
	"math/rand"
	"testing"
)

// relErr returns |got-want|/want.
func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestHistogramUniform checks quantiles of a uniform distribution on
// [1ms, 101ms] against their closed forms.
func TestHistogramUniform(t *testing.T) {
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	for i := 0; i < n; i++ {
		h.Record(0.001 + 0.100*rng.Float64())
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.10, 0.001 + 0.100*0.10},
		{0.50, 0.001 + 0.100*0.50},
		{0.95, 0.001 + 0.100*0.95},
		{0.99, 0.001 + 0.100*0.99},
	} {
		got := h.P(tc.q)
		// 2% buckets + sampling noise: accept 3% relative error.
		if relErr(got, tc.want) > 0.03 {
			t.Errorf("P(%.2f) = %.6f, want %.6f (rel err %.3f)",
				tc.q, got, tc.want, relErr(got, tc.want))
		}
	}
	if relErr(h.Mean(), 0.051) > 0.01 {
		t.Errorf("mean = %.6f, want ~0.051", h.Mean())
	}
}

// TestHistogramExponential draws a deterministic exponential sample via the
// inverse CDF and checks the p50/p95/p99 against the closed forms.
func TestHistogramExponential(t *testing.T) {
	h := NewLatencyHistogram()
	const (
		n     = 100000
		scale = 0.004 // 4 ms mean
	)
	for i := 0; i < n; i++ {
		u := (float64(i) + 0.5) / n
		h.Record(-math.Log(1-u) * scale)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, -math.Log(0.50) * scale},
		{0.95, -math.Log(0.05) * scale},
		{0.99, -math.Log(0.01) * scale},
	} {
		if got := h.P(tc.q); relErr(got, tc.want) > 0.03 {
			t.Errorf("P(%.2f) = %.6f, want %.6f", tc.q, got, tc.want)
		}
	}
	if relErr(h.Mean(), scale) > 0.01 {
		t.Errorf("mean = %.6f, want ~%.4f", h.Mean(), scale)
	}
}

// TestHistogramEdges covers empty histograms, extreme quantiles, and
// out-of-span samples.
func TestHistogramEdges(t *testing.T) {
	h := NewLatencyHistogram()
	if h.P(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}

	h.Record(5e-9)  // below span: underflow bucket
	h.Record(0.010) // in span
	h.Record(5e4)   // above span: overflow bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.P(0); got != 5e-9 {
		t.Errorf("P(0) = %g, want exact min", got)
	}
	if got := h.P(1); got != 5e4 {
		t.Errorf("P(1) = %g, want exact max", got)
	}
	// The median must come from the in-span bucket.
	if got := h.P(0.5); relErr(got, 0.010) > 0.02 {
		t.Errorf("P(0.5) = %g, want ~0.010", got)
	}
	// Quantile in the overflow region clamps to the observed max.
	if got := h.P(0.99); got > 5e4 {
		t.Errorf("P(0.99) = %g exceeds max", got)
	}

	if _, err := NewHistogram(0, 1, 1.1); err == nil {
		t.Error("lo=0 accepted")
	}
	if _, err := NewHistogram(1, 2, 1.0); err == nil {
		t.Error("growth=1 accepted")
	}
	if _, err := NewHistogram(2, 1, 1.1); err == nil {
		t.Error("hi<lo accepted")
	}
}

// TestHistogramMerge splits one sample stream across two histograms and
// requires the merge to match a histogram that saw everything.
func TestHistogramMerge(t *testing.T) {
	whole := NewLatencyHistogram()
	a, b := NewLatencyHistogram(), NewLatencyHistogram()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		x := 0.0005 * math.Exp(rng.Float64()*3) // log-uniform 0.5ms..10ms
		whole.Record(x)
		if i%2 == 0 {
			a.Record(x)
		} else {
			b.Record(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), whole.Count())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got, want := a.P(q), whole.P(q); got != want {
			t.Errorf("P(%.2f): merged %g != whole %g", q, got, want)
		}
	}
	// Summation order differs between the split and whole streams, so the
	// means agree only to float rounding; min/max are exact.
	if relErr(a.Mean(), whole.Mean()) > 1e-12 {
		t.Error("merged mean diverged from the whole-stream histogram")
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Error("merged min/max diverged from the whole-stream histogram")
	}

	other, err := NewHistogram(1, 10, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	other.Record(2)
	if err := a.Merge(other); err == nil {
		t.Error("merge across bucket layouts accepted")
	}
}

// TestHistogramMergeEmpty covers the degenerate merge directions: empty into
// empty, empty into populated (a no-op), and populated into empty (a copy).
func TestHistogramMergeEmpty(t *testing.T) {
	empty := NewLatencyHistogram()
	if err := empty.Merge(NewLatencyHistogram()); err != nil {
		t.Fatalf("empty+empty: %v", err)
	}
	if err := empty.Merge(nil); err != nil {
		t.Fatalf("merge nil: %v", err)
	}
	if empty.Count() != 0 || empty.Mean() != 0 || empty.Min() != 0 || empty.Max() != 0 || empty.P(0.5) != 0 {
		t.Fatal("merging empties must leave an empty histogram")
	}

	full := NewLatencyHistogram()
	for _, x := range []float64{0.001, 0.002, 0.004} {
		full.Record(x)
	}
	before := *full
	if err := full.Merge(NewLatencyHistogram()); err != nil {
		t.Fatalf("full+empty: %v", err)
	}
	if full.Count() != 3 || full.Min() != before.min || full.Max() != before.max || full.Mean() != before.sum/3 {
		t.Fatal("merging an empty histogram changed the receiver")
	}

	into := NewLatencyHistogram()
	if err := into.Merge(full); err != nil {
		t.Fatalf("empty+full: %v", err)
	}
	if into.Count() != 3 || into.Min() != 0.001 || into.Max() != 0.004 {
		t.Fatalf("empty receiver did not adopt the donor: n=%d min=%g max=%g",
			into.Count(), into.Min(), into.Max())
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got, want := into.P(q), full.P(q); got != want {
			t.Errorf("P(%g): copied-by-merge %g != donor %g", q, got, want)
		}
	}
}

// TestHistogramMergeOneSided merges histograms whose samples live entirely in
// the underflow or entirely in the overflow bucket — the extreme buckets must
// survive the merge and still drive quantiles.
func TestHistogramMergeOneSided(t *testing.T) {
	under := NewLatencyHistogram()
	under.Record(1e-9)
	under.Record(2e-9)
	over := NewLatencyHistogram()
	over.Record(5e3)
	over.Record(6e3)

	if err := under.Merge(over); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if under.Count() != 4 {
		t.Fatalf("count = %d", under.Count())
	}
	if got := under.P(0); got != 1e-9 {
		t.Errorf("P(0) = %g, want exact min 1e-9", got)
	}
	if got := under.P(1); got != 6e3 {
		t.Errorf("P(1) = %g, want exact max 6e3", got)
	}
	// Rank 2 of 4 sits in the underflow bucket, whose estimate is lo,
	// clamped up to the observed min region; rank 3 falls in overflow.
	if got := under.P(0.5); got > defaultHistLo {
		t.Errorf("P(0.5) = %g, want an underflow-bucket estimate ≤ lo", got)
	}
	if got := under.P(0.75); got != 6e3 {
		t.Errorf("P(0.75) = %g, want the overflow estimate clamped to max", got)
	}
}

// TestHistogramQuantileEdges pins q=0, q=1, and the single-bucket layout.
func TestHistogramQuantileEdges(t *testing.T) {
	// A span smaller than one growth step collapses to a single bucket.
	h, err := NewHistogram(1, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Record(1.2)
	for _, q := range []float64{0, 0.5, 1} {
		// One sample: every quantile must clamp to the only observation.
		if got := h.P(q); got != 1.2 {
			t.Errorf("single-bucket P(%g) = %g, want 1.2", q, got)
		}
	}
	h.Record(1.1)
	h.Record(1.4)
	if got := h.P(0); got != 1.1 {
		t.Errorf("P(0) = %g, want min 1.1", got)
	}
	if got := h.P(1); got != 1.4 {
		t.Errorf("P(1) = %g, want max 1.4", got)
	}
	if got := h.P(0.5); got < 1.1 || got > 1.4 {
		t.Errorf("P(0.5) = %g outside observed [1.1, 1.4]", got)
	}
	// Negative q behaves like 0, q>1 like 1 (both are clamped).
	if h.P(-1) != h.P(0) || h.P(2) != h.P(1) {
		t.Error("out-of-range q not clamped")
	}
}

// TestHistogramNonFinite is the regression test for the +Inf crash:
// int(+Inf) is implementation-defined (negative on amd64) and used to index
// the bucket slice directly, panicking. +Inf must land in the overflow
// bucket; NaN stays ignored.
func TestHistogramNonFinite(t *testing.T) {
	h := NewLatencyHistogram()
	h.Record(math.NaN())
	if h.Count() != 0 {
		t.Fatal("NaN sample recorded")
	}
	h.Record(math.Inf(1)) // must not panic
	h.Record(0.010)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.P(1); !math.IsInf(got, 1) {
		t.Errorf("P(1) = %g, want the observed +Inf max", got)
	}
	if got := h.P(0.25); relErr(got, 0.010) > 0.02 {
		t.Errorf("P(0.25) = %g, want ~0.010", got)
	}
	h2 := NewLatencyHistogram()
	h2.Record(math.Inf(-1)) // negative infinity: the underflow bucket
	if got := h2.P(0.5); !math.IsInf(got, -1) {
		t.Errorf("P(0.5) = %g, want the observed -Inf min", got)
	}
}
