package stats

import (
	"fmt"
	"math"
)

// Histogram is a streaming log-bucketed histogram for positive values —
// latency and size distributions whose samples are too many to keep. Buckets
// grow geometrically, so quantile estimates carry a bounded *relative* error
// (half the growth factor) at O(1) memory per recording site. The load
// generator records per-worker histograms and merges them, so Histogram
// itself is deliberately not synchronized.
type Histogram struct {
	lo     float64 // lower bound of bucket 0
	growth float64 // bucket width ratio
	logG   float64 // ln(growth), cached
	counts []uint64
	// under/over catch samples outside [lo, lo·growth^len); they count
	// toward quantiles as the extreme buckets.
	under, over uint64
	total       uint64
	sum         float64
	min, max    float64
}

// Default histogram range: 1 µs to ~17 minutes with 2% buckets covers any
// latency a spatial query service produces.
const (
	defaultHistLo     = 1e-6
	defaultHistHi     = 1e3
	defaultHistGrowth = 1.02
)

// NewHistogram builds a histogram with buckets spanning [lo, hi) at the
// given growth factor (>1). Values outside the span are clamped into the
// extreme buckets, so quantiles remain defined — just less precise there.
func NewHistogram(lo, hi, growth float64) (*Histogram, error) {
	if !(lo > 0) || !(hi > lo) {
		return nil, fmt.Errorf("stats: bad histogram span [%g, %g)", lo, hi)
	}
	if !(growth > 1) {
		return nil, fmt.Errorf("stats: histogram growth %g must exceed 1", growth)
	}
	n := int(math.Ceil(math.Log(hi/lo) / math.Log(growth)))
	if n < 1 {
		n = 1
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("stats: histogram would need %d buckets", n)
	}
	return &Histogram{
		lo:     lo,
		growth: growth,
		logG:   math.Log(growth),
		counts: make([]uint64, n),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}, nil
}

// NewLatencyHistogram builds the default seconds-denominated latency
// histogram: 1 µs resolution floor, 2% relative error.
func NewLatencyHistogram() *Histogram {
	h, err := NewHistogram(defaultHistLo, defaultHistHi, defaultHistGrowth)
	if err != nil {
		panic(err) // constants are valid
	}
	return h
}

// Record adds one sample.
func (h *Histogram) Record(x float64) {
	if math.IsNaN(x) {
		return
	}
	h.total++
	h.sum += x
	if x < h.min {
		h.min = x
	}
	if x > h.max {
		h.max = x
	}
	switch {
	case x < h.lo:
		h.under++
	case math.IsInf(x, 1):
		// int(+Inf) is implementation-defined (negative on amd64), so +Inf
		// must be routed to the overflow bucket before the index math.
		h.over++
	default:
		i := int(math.Log(x/h.lo) / h.logG)
		if i < 0 {
			i = 0 // x==lo can round log(x/lo) to a tiny negative
		}
		if i >= len(h.counts) {
			h.over++
		} else {
			h.counts[i]++
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int { return int(h.total) }

// Mean returns the exact mean of all samples (tracked outside the buckets).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min returns the exact minimum sample, 0 for an empty histogram.
func (h *Histogram) Min() float64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact maximum sample, 0 for an empty histogram.
func (h *Histogram) Max() float64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// P returns the q-quantile (q in [0, 1]) estimated from the buckets: the
// geometric midpoint of the bucket holding the q·N-th sample, clamped to the
// exact observed [min, max]. P(0.5) is the median, P(0.99) the p99.
func (h *Histogram) P(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	// Rank of the target sample, 1-based.
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var est float64
	switch cum := h.under; {
	case rank <= cum:
		est = h.lo
	default:
		est = h.max // falls through when rank lands in the overflow bucket
		for i, c := range h.counts {
			cum += c
			if rank <= cum {
				// Geometric midpoint of bucket i: lo·growth^(i+0.5).
				est = h.lo * math.Exp((float64(i)+0.5)*h.logG)
				break
			}
		}
	}
	return math.Min(math.Max(est, h.min), h.max)
}

// Merge adds other's samples into h. The histograms must share a bucket
// layout (same lo/growth/len), which holds for any two NewLatencyHistogram
// results.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil || other.total == 0 {
		return nil
	}
	if h.lo != other.lo || h.growth != other.growth || len(h.counts) != len(other.counts) {
		return fmt.Errorf("stats: merging histograms with different bucket layouts")
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.under += other.under
	h.over += other.over
	h.total += other.total
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	return nil
}

// String implements fmt.Stringer with the load-generator's headline numbers.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
		h.Count(), h.Mean(), h.P(0.50), h.P(0.95), h.P(0.99), h.Max())
}
