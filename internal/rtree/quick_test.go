package rtree

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
)

// itemSet is a quick-generatable random item collection.
type itemSet struct {
	items []Item
	segs  []geom.Segment
}

// Generate implements quick.Generator: between 1 and 400 random short
// segments in a 1000×1000 extent.
func (itemSet) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(400)
	var s itemSet
	s.items = make([]Item, n)
	s.segs = make([]geom.Segment, n)
	for i := 0; i < n; i++ {
		a := geom.Point{X: r.Float64() * 1000, Y: r.Float64() * 1000}
		seg := geom.Segment{
			A: a,
			B: geom.Point{X: a.X + r.Float64()*30 - 15, Y: a.Y + r.Float64()*30 - 15},
		}
		s.segs[i] = seg
		s.items[i] = Item{MBR: seg.MBR(), ID: uint32(i)}
	}
	return reflect.ValueOf(s)
}

// window is a quick-generatable query window.
type window struct{ r geom.Rect }

// Generate implements quick.Generator.
func (window) Generate(r *rand.Rand, size int) reflect.Value {
	min := geom.Point{X: r.Float64()*1100 - 50, Y: r.Float64()*1100 - 50}
	return reflect.ValueOf(window{geom.Rect{
		Min: min,
		Max: geom.Point{X: min.X + r.Float64()*200, Y: min.Y + r.Float64()*200},
	}})
}

// TestQuickSearchEquivalence: for arbitrary item sets and windows, the
// packed R-tree's filtering equals the brute-force MBR scan.
func TestQuickSearchEquivalence(t *testing.T) {
	f := func(s itemSet, w window) bool {
		tr, err := Build(s.items, Config{}, ops.Null{})
		if err != nil {
			return false
		}
		got := map[uint32]bool{}
		for _, id := range tr.Search(w.r, ops.Null{}) {
			got[id] = true
		}
		for i, seg := range s.segs {
			want := w.r.Intersects(seg.MBR())
			if got[uint32(i)] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNearestOptimality: the NN answer is never farther than any item.
func TestQuickNearestOptimality(t *testing.T) {
	f := func(s itemSet, px, py float64) bool {
		px = math.Mod(math.Abs(px), 1000)
		py = math.Mod(math.Abs(py), 1000)
		p := geom.Point{X: px, Y: py}
		tr, err := Build(s.items, Config{}, ops.Null{})
		if err != nil {
			return false
		}
		df := func(id uint32) float64 { return s.segs[id].DistToPoint(p) }
		_, d, ok := tr.Nearest(p, df, ops.Null{})
		if !ok {
			return false
		}
		for _, seg := range s.segs {
			if seg.DistToPoint(p) < d-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPackInvariants: structural invariants hold for arbitrary inputs.
func TestQuickPackInvariants(t *testing.T) {
	f := func(s itemSet) bool {
		tr, err := Build(s.items, Config{}, ops.Null{})
		if err != nil {
			return false
		}
		if tr.Len() != len(s.items) {
			return false
		}
		if len(tr.PackOrder()) != len(s.items) {
			return false
		}
		// Height consistent with fanout.
		f := tr.Fanout()
		maxItems := 1
		for i := 0; i < tr.Height(); i++ {
			maxItems *= f
		}
		if len(s.items) > maxItems {
			return false
		}
		// A whole-extent search returns everything exactly once.
		all := tr.Search(tr.Bounds(), ops.Null{})
		if len(all) != len(s.items) {
			return false
		}
		seen := map[uint32]bool{}
		for _, id := range all {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickKNNOrdering: for arbitrary inputs, k-NN results are sorted and
// prefix-consistent (the k-NN list's head equals the (k-1)-NN list).
func TestQuickKNNOrdering(t *testing.T) {
	f := func(s itemSet, px, py float64, kRaw uint8) bool {
		p := geom.Point{X: math.Mod(math.Abs(px), 1000), Y: math.Mod(math.Abs(py), 1000)}
		k := 2 + int(kRaw)%10
		tr, err := Build(s.items, Config{}, ops.Null{})
		if err != nil {
			return false
		}
		df := func(id uint32) float64 { return s.segs[id].DistToPoint(p) }
		big := tr.KNearest(p, k, df, ops.Null{})
		small := tr.KNearest(p, k-1, df, ops.Null{})
		for i := 1; i < len(big); i++ {
			if big[i].Dist < big[i-1].Dist {
				return false
			}
		}
		for i := range small {
			if small[i].Dist != big[i].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSubsetBudget: extraction never exceeds the budget and always
// includes the matching items when they fit.
func TestQuickSubsetBudget(t *testing.T) {
	f := func(s itemSet, w window, budgetKB uint8) bool {
		if len(s.items) < 10 {
			return true
		}
		tr, err := Build(s.items, Config{}, ops.Null{})
		if err != nil {
			return false
		}
		budget := Budget{Bytes: (8 + int(budgetKB)%64) * 1024, RecordBytes: 76}
		ship, err := tr.ExtractSubset(w.r, budget, ops.Null{})
		if err != nil {
			return false
		}
		if ship.DataBytes(76)+ship.IndexBytes() > budget.Bytes {
			return false
		}
		if !ship.Coverage.IsEmpty() {
			shipped := map[uint32]bool{}
			for _, it := range ship.Items {
				shipped[it.ID] = true
			}
			for _, id := range tr.Search(ship.Coverage, ops.Null{}) {
				if !shipped[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
