package rtree

import (
	"math/rand"
	"testing"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
)

// buildScratchTree makes a few-thousand-segment tree with deliberately
// shared endpoints, so exact NN distance ties — the case where a divergent
// traversal order would change the winning id — actually occur.
func buildScratchTree(t *testing.T, n int) (*Tree, []geom.Segment) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	segs := make([]geom.Segment, n)
	items := make([]Item, n)
	var prev geom.Point
	for i := range segs {
		a := prev
		if i%8 == 0 {
			a = geom.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
		}
		b := geom.Point{X: a.X + rng.Float64()*120 - 60, Y: a.Y + rng.Float64()*120 - 60}
		segs[i] = geom.Segment{A: a, B: b}
		items[i] = Item{ID: uint32(i), MBR: segs[i].MBR()}
		prev = b
	}
	tr, err := Build(items, Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, segs
}

// TestScratchPathsMatchPlainPaths drives the Append/With variants with a
// reused scratch across many queries and requires answers identical to the
// allocating entry points — ids included, so distance ties must resolve the
// same way.
func TestScratchPathsMatchPlainPaths(t *testing.T) {
	tr, segs := buildScratchTree(t, 4000)
	dist := func(pt geom.Point) DistFunc {
		return func(id uint32) float64 { return segs[id].DistToPoint(pt) }
	}
	rng := rand.New(rand.NewSource(99))
	var sc NNScratch
	var ids []uint32
	var nbs []Neighbor
	for q := 0; q < 300; q++ {
		pt := geom.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
		w := geom.Rect{
			Min: geom.Point{X: pt.X - 300, Y: pt.Y - 300},
			Max: geom.Point{X: pt.X + 300, Y: pt.Y + 300},
		}

		want := tr.Search(w, ops.Null{})
		ids = tr.AppendSearch(ids[:0], w, ops.Null{})
		if len(want) != len(ids) {
			t.Fatalf("q%d: AppendSearch %d ids, Search %d", q, len(ids), len(want))
		}
		for i := range want {
			if want[i] != ids[i] {
				t.Fatalf("q%d: AppendSearch id[%d]=%d, Search %d", q, i, ids[i], want[i])
			}
		}

		id1, d1, ok1 := tr.Nearest(pt, dist(pt), ops.Null{})
		id2, d2, ok2 := tr.NearestWith(pt, dist(pt), ops.Null{}, &sc)
		if id1 != id2 || d1 != d2 || ok1 != ok2 {
			t.Fatalf("q%d: NearestWith (%d,%g,%v) != Nearest (%d,%g,%v)", q, id2, d2, ok2, id1, d1, ok1)
		}

		k := 1 + rng.Intn(8)
		wantN := tr.KNearest(pt, k, dist(pt), ops.Null{})
		nbs = tr.KNearestAppend(nbs[:0], pt, k, dist(pt), ops.Null{}, &sc)
		if len(wantN) != len(nbs) {
			t.Fatalf("q%d: KNearestAppend %d, KNearest %d", q, len(nbs), len(wantN))
		}
		for i := range wantN {
			if wantN[i] != nbs[i] {
				t.Fatalf("q%d k=%d: neighbor %d: %+v != %+v", q, k, i, nbs[i], wantN[i])
			}
		}
	}
}

// TestScratchSearchZeroAlloc pins the warm index-walk allocation count at
// zero for all three scratch query paths.
func TestScratchSearchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	tr, segs := buildScratchTree(t, 4000)
	pt := geom.Point{X: 5000, Y: 5000}
	w := geom.Rect{Min: geom.Point{X: 4000, Y: 4000}, Max: geom.Point{X: 6000, Y: 6000}}
	df := func(id uint32) float64 { return segs[id].DistToPoint(pt) }
	var sc NNScratch
	var ids []uint32
	var nbs []Neighbor
	if n := testing.AllocsPerRun(100, func() {
		ids = tr.AppendSearch(ids[:0], w, ops.Null{})
		_, _, _ = tr.NearestWith(pt, df, ops.Null{}, &sc)
		nbs = tr.KNearestAppend(nbs[:0], pt, 5, df, ops.Null{}, &sc)
	}); n != 0 {
		t.Fatalf("warm scratch queries: %.1f allocs/op, want 0", n)
	}
}
