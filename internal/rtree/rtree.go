// Package rtree implements the packed (bulk-loaded) R-tree of Kamel and
// Faloutsos used by the paper (§3): data items are sorted by the Hilbert
// value of their MBR centroid and the tree is built bottom-up, level by
// level, with every node filled to capacity. The structure is static — the
// paper considers read-only road-atlas data — so there is no insert/delete.
//
// Every node has a byte-exact simulated address assigned at build time, and
// all traversals emit their operation and memory-reference streams to an
// ops.Recorder, which is how the cycle/energy machine models observe the
// execution (see internal/ops). Passing ops.Null{} runs the index as a plain
// spatial library.
package rtree

import (
	"fmt"
	"math"
	"sort"

	"mobispatial/internal/geom"
	"mobispatial/internal/hilbert"
	"mobispatial/internal/index"
	"mobispatial/internal/ops"
)

// Item is one spatial data item to index: an MBR and the caller's record
// identifier (for the road-atlas datasets, the segment id).
type Item struct {
	MBR geom.Rect
	ID  uint32
}

// Config controls the physical layout of the tree.
type Config struct {
	// NodeBytes is the byte size of one index node; the default models a
	// 512-byte node as in the memory-resident index study the paper builds
	// on. Fanout is derived: (NodeBytes − HeaderBytes) / EntryBytes.
	NodeBytes int
	// BaseAddr is the simulated address of the first node; defaults to
	// ops.IndexBase.
	BaseAddr uint64
	// HilbertOrder is the order of the Hilbert curve used for sorting;
	// defaults to hilbert.Order.
	HilbertOrder uint
	// Packing selects the bulk-load ordering; the default is Hilbert
	// packing (the paper's structure).
	Packing Packing
	// SortByX is a legacy alias for PackingXSort. Only used by the packing
	// ablation benchmark.
	SortByX bool
}

// Packing enumerates the bulk-load orderings.
type Packing uint8

// The available packings.
const (
	// PackingHilbert sorts by the Hilbert value of the MBR centroid (Kamel
	// and Faloutsos — the paper's structure).
	PackingHilbert Packing = iota
	// PackingSTR is Sort-Tile-Recursive (Leutenegger, Lopez, Edgington):
	// sort by x, cut into vertical tiles of ~√(n/fanout) leaves each, sort
	// each tile by y. A classic alternative the packing ablation compares.
	PackingSTR
	// PackingXSort is a naive 1-D x-sort (the ablation's strawman).
	PackingXSort
)

// Physical layout constants. MBRs are stored as four float32s plus a 4-byte
// pointer/id (20-byte entries) with an 8-byte node header (level, count,
// padding), matching the ~3.5 MB index the paper reports for the PA dataset.
const (
	HeaderBytes      = 8
	EntryBytes       = 20
	DefaultNodeBytes = 512
)

func (c *Config) fill() {
	if c.NodeBytes == 0 {
		c.NodeBytes = DefaultNodeBytes
	}
	if c.BaseAddr == 0 {
		c.BaseAddr = ops.IndexBase
	}
	if c.HilbertOrder == 0 {
		c.HilbertOrder = hilbert.Order
	}
}

// fanout returns the number of entries per node for this config.
func (c Config) fanout() int { return (c.NodeBytes - HeaderBytes) / EntryBytes }

// entry is one slot of a node: an MBR and either a child node index
// (internal nodes) or a data item id (leaves).
type entry struct {
	mbr geom.Rect
	ptr uint32
}

// node is one index node.
type node struct {
	level   int16 // 0 = leaf
	addr    uint64
	entries []entry
}

// Tree is a packed R-tree over a static set of items.
type Tree struct {
	cfg    Config
	nodes  []node
	root   int32 // index into nodes; -1 when empty
	height int   // number of levels (0 for empty tree)
	nitems int
	bounds geom.Rect
	// leafOrder[i] is the id of the i-th item in Hilbert pack order; used by
	// the memory-budgeted subset extraction (Fig. 2).
	leafOrder []Item
}

// Build bulk-loads a packed R-tree from items. The item slice is not
// retained; order is not preserved. rec receives the build's operation
// stream (one OpIndexBuildEntry per placed entry, plus the node stores),
// charged to whichever machine performs the build — the server builds the
// shipped sub-index in the insufficient-memory scenario (§4).
func Build(items []Item, cfg Config, rec ops.Recorder) (*Tree, error) {
	cfg.fill()
	fanout := cfg.fanout()
	if fanout < 2 {
		return nil, fmt.Errorf("rtree: node size %dB gives fanout %d (<2)", cfg.NodeBytes, fanout)
	}
	t := &Tree{cfg: cfg, root: -1, bounds: geom.EmptyRect()}
	if len(items) == 0 {
		return t, nil
	}
	t.nitems = len(items)

	sorted := make([]Item, len(items))
	copy(sorted, items)
	for _, it := range sorted {
		t.bounds = t.bounds.Union(it.MBR)
	}
	packing := cfg.Packing
	if cfg.SortByX {
		packing = PackingXSort
	}
	switch packing {
	case PackingXSort:
		sort.Slice(sorted, func(i, j int) bool {
			return sorted[i].MBR.Center().X < sorted[j].MBR.Center().X
		})
	case PackingSTR:
		strSort(sorted, fanout)
	default:
		q := hilbert.NewQuantizer(cfg.HilbertOrder,
			t.bounds.Min.X, t.bounds.Min.Y, t.bounds.Max.X, t.bounds.Max.Y)
		keys := make([]uint64, len(sorted))
		for i, it := range sorted {
			c := it.MBR.Center()
			keys[i] = q.Value(c.X, c.Y)
		}
		sort.Sort(&byKey{items: sorted, keys: keys})
	}
	t.leafOrder = sorted

	// Build leaves, then each upper level, packing fanout entries per node.
	level := make([]entry, len(sorted))
	for i, it := range sorted {
		level[i] = entry{mbr: it.MBR, ptr: it.ID}
	}
	rec.Op(ops.OpIndexBuildEntry, len(sorted))

	var lvl int16
	for {
		nNodes := (len(level) + fanout - 1) / fanout
		next := make([]entry, 0, nNodes)
		for i := 0; i < nNodes; i++ {
			lo := i * fanout
			hi := lo + fanout
			if hi > len(level) {
				hi = len(level)
			}
			idx := len(t.nodes)
			n := node{
				level:   lvl,
				addr:    cfg.BaseAddr + uint64(idx)*uint64(cfg.NodeBytes),
				entries: level[lo:hi:hi],
			}
			t.nodes = append(t.nodes, n)
			rec.Store(n.addr, HeaderBytes+len(n.entries)*EntryBytes)
			mbr := geom.EmptyRect()
			for _, e := range n.entries {
				mbr = mbr.Union(e.mbr)
			}
			next = append(next, entry{mbr: mbr, ptr: uint32(idx)})
		}
		rec.Op(ops.OpIndexBuildEntry, len(next))
		t.height++
		if nNodes == 1 {
			t.root = int32(len(t.nodes) - 1)
			break
		}
		level = next
		lvl++
	}
	return t, nil
}

// strSort orders items Sort-Tile-Recursively: x-sort, slice into vertical
// runs of S·fanout items (S = ⌈√(n/fanout)⌉), y-sort within each run.
func strSort(items []Item, fanout int) {
	sort.Slice(items, func(i, j int) bool {
		return items[i].MBR.Center().X < items[j].MBR.Center().X
	})
	leaves := (len(items) + fanout - 1) / fanout
	s := int(math.Ceil(math.Sqrt(float64(leaves))))
	run := s * fanout
	if run <= 0 {
		return
	}
	for lo := 0; lo < len(items); lo += run {
		hi := lo + run
		if hi > len(items) {
			hi = len(items)
		}
		tile := items[lo:hi]
		sort.Slice(tile, func(i, j int) bool {
			return tile[i].MBR.Center().Y < tile[j].MBR.Center().Y
		})
	}
}

type byKey struct {
	items []Item
	keys  []uint64
}

func (b *byKey) Len() int           { return len(b.items) }
func (b *byKey) Less(i, j int) bool { return b.keys[i] < b.keys[j] }
func (b *byKey) Swap(i, j int) {
	b.items[i], b.items[j] = b.items[j], b.items[i]
	b.keys[i], b.keys[j] = b.keys[j], b.keys[i]
}

// Len returns the number of indexed items.
func (t *Tree) Len() int { return t.nitems }

// Height returns the number of levels (1 for a single-leaf tree, 0 for an
// empty tree).
func (t *Tree) Height() int { return t.height }

// NodeCount returns the total number of index nodes.
func (t *Tree) NodeCount() int { return len(t.nodes) }

// IndexBytes returns the total byte size of the index — the quantity that
// must fit in (or be shipped to) client memory.
func (t *Tree) IndexBytes() int { return len(t.nodes) * t.cfg.NodeBytes }

// Bounds returns the MBR of all indexed items.
func (t *Tree) Bounds() geom.Rect { return t.bounds }

// Fanout returns the entries-per-node capacity.
func (t *Tree) Fanout() int { return t.cfg.fanout() }

// PackOrder returns the items in Hilbert pack order. The slice is owned by
// the tree; callers must not modify it.
func (t *Tree) PackOrder() []Item { return t.leafOrder }

// visitNode charges one node visit: the traversal bookkeeping op plus the
// load of the node header.
func (t *Tree) visitNode(n *node, rec ops.Recorder) {
	rec.Op(ops.OpNodeVisit, 1)
	rec.Load(n.addr, HeaderBytes)
}

// scanEntry charges the examination of one entry: its load and one MBR test.
func (t *Tree) scanEntry(n *node, i int, rec ops.Recorder) {
	rec.Load(n.addr+uint64(HeaderBytes+i*EntryBytes), EntryBytes)
	rec.Op(ops.OpMBRTest, 1)
}

// Search performs the filtering step for a range (window) query: it returns
// the ids of all items whose MBR intersects the window, in ascending
// traversal order. This is the first phase of range-query processing; the
// refinement step (exact segment–window tests) is the caller's job because
// it needs the actual data records.
func (t *Tree) Search(window geom.Rect, rec ops.Recorder) []uint32 {
	return t.AppendSearch(nil, window, rec)
}

// AppendSearch is Search appending into dst — the allocation-free filtering
// path for callers that own a reusable result buffer.
func (t *Tree) AppendSearch(dst []uint32, window geom.Rect, rec ops.Recorder) []uint32 {
	if t.root < 0 {
		return dst
	}
	t.search(&t.nodes[t.root], window, rec, &dst)
	return dst
}

func (t *Tree) search(n *node, window geom.Rect, rec ops.Recorder, out *[]uint32) {
	t.visitNode(n, rec)
	for i := range n.entries {
		t.scanEntry(n, i, rec)
		if !window.Intersects(n.entries[i].mbr) {
			continue
		}
		if n.level == 0 {
			rec.Op(ops.OpResultAppend, 1)
			rec.Store(ops.ScratchBase+uint64(len(*out))*4, 4)
			*out = append(*out, n.entries[i].ptr)
		} else {
			t.search(&t.nodes[n.entries[i].ptr], window, rec, out)
		}
	}
}

// SearchPoint performs the filtering step for a point query: ids of all
// items whose MBR contains p.
func (t *Tree) SearchPoint(p geom.Point, rec ops.Recorder) []uint32 {
	return t.Search(geom.Rect{Min: p, Max: p}, rec)
}

// AppendSearchPoint is SearchPoint appending into dst.
func (t *Tree) AppendSearchPoint(dst []uint32, p geom.Point, rec ops.Recorder) []uint32 {
	return t.AppendSearch(dst, geom.Rect{Min: p, Max: p}, rec)
}

// DistFunc returns the exact distance from the query point to the data item
// with the given id, used by the nearest-neighbor search for refinement of
// leaf entries. Implementations must charge their own refinement cost
// (OpRefineNN plus the data-record load) to the recorder they were built
// with.
type DistFunc = index.DistFunc

// The packed R-tree is the paper's access method; it satisfies the shared
// access-method contract.
var _ index.Index = (*Tree)(nil)

// Nearest runs the branch-and-bound nearest-neighbor search of Roussopoulos
// et al. (§3): children are visited in MINDIST order and pruned against the
// best distance found so far (with a MINMAXDIST initialization pass at each
// node). It returns the nearest item's id and its exact distance;
// ok == false when the tree is empty.
//
// As in the paper, the NN query has no separate filtering/refinement phases:
// exact item distances are computed during the traversal via dist.
func (t *Tree) Nearest(p geom.Point, dist DistFunc, rec ops.Recorder) (id uint32, d float64, ok bool) {
	return t.NearestWith(p, dist, rec, nil)
}

// NearestWith is Nearest with an optional caller-owned scratch; a nil
// scratch allocates per call exactly as Nearest always has. Both entry
// points share one traversal, so scratch reuse cannot change which of two
// equidistant items wins.
func (t *Tree) NearestWith(p geom.Point, dist DistFunc, rec ops.Recorder, sc *NNScratch) (id uint32, d float64, ok bool) {
	return t.NearestWithin(p, math.Inf(1), dist, rec, sc)
}

// NearestWithin is NearestWith with an initial upper bound: only items
// strictly closer than bound are considered, and subtrees whose MINDIST
// exceeds it are pruned from the start. ok is false when no item beats the
// bound. This is the cross-shard entry point: a sharded index carries the
// best distance found in earlier shards into each later shard's traversal,
// so the running bound prunes inside the trees, not just between them.
// With bound = +Inf it is exactly NearestWith.
func (t *Tree) NearestWithin(p geom.Point, bound float64, dist DistFunc, rec ops.Recorder, sc *NNScratch) (id uint32, d float64, ok bool) {
	if t.root < 0 {
		return 0, 0, false
	}
	best := bound
	bestID := uint32(0)
	found := false
	t.nearest(&t.nodes[t.root], p, dist, rec, sc, &best, &bestID, &found)
	return bestID, best, found
}

// branch is one child under consideration during the NN descent.
type branch struct {
	minDist float64
	idx     int // entry index within the node
}

// NNScratch holds reusable traversal state for the nearest-neighbor
// searches: one branch buffer per tree level (the descent reuses a level's
// buffer sequentially — siblings are visited one after another, children use
// lower levels) and the k-NN result heap. A scratch belongs to one search at
// a time; zero value is ready to use.
type NNScratch struct {
	levels [][]branch
	heap   neighborHeap
}

// level returns the (emptied) branch buffer for tree level l.
func (sc *NNScratch) level(l int16) []branch {
	for len(sc.levels) <= int(l) {
		sc.levels = append(sc.levels, nil)
	}
	return sc.levels[l][:0]
}

// keep stores a grown buffer back so its capacity is reused.
func (sc *NNScratch) keep(l int16, br []branch) {
	sc.levels[l] = br
}

// sortBranches orders branches by ascending MINDIST. Insertion sort: node
// fanouts are small (tens of entries), it allocates nothing, and — unlike
// sort.Slice — it is deterministic on ties, so every NN entry point
// traverses identically.
func sortBranches(br []branch) {
	for i := 1; i < len(br); i++ {
		for j := i; j > 0 && br[j].minDist < br[j-1].minDist; j-- {
			br[j], br[j-1] = br[j-1], br[j]
		}
	}
}

func (t *Tree) nearest(n *node, p geom.Point, dist DistFunc, rec ops.Recorder,
	sc *NNScratch, best *float64, bestID *uint32, found *bool) {

	t.visitNode(n, rec)
	if n.level == 0 {
		for i := range n.entries {
			t.scanEntry(n, i, rec)
			rec.Op(ops.OpDistCalc, 1)
			if n.entries[i].mbr.MinDist(p) > *best {
				continue
			}
			// Strictly-closer acceptance keeps NearestWithin's bound
			// semantics exact: an item at exactly the bound is not "within"
			// it. For the unbounded entry points best starts at +Inf, so
			// every finite distance is accepted on first sight as before.
			d := dist(n.entries[i].ptr)
			if d < *best {
				*best = d
				*bestID = n.entries[i].ptr
				*found = true
			}
		}
		return
	}

	// Order children by MINDIST; prune with MINMAXDIST and best-so-far.
	var branches []branch
	if sc != nil {
		branches = sc.level(n.level)
	} else {
		branches = make([]branch, 0, len(n.entries))
	}
	minMaxBound := math.Inf(1)
	for i := range n.entries {
		t.scanEntry(n, i, rec)
		rec.Op(ops.OpDistCalc, 2) // MINDIST + MINMAXDIST
		md := n.entries[i].mbr.MinDist(p)
		mmd := n.entries[i].mbr.MinMaxDist(p)
		if mmd < minMaxBound {
			minMaxBound = mmd
		}
		branches = append(branches, branch{minDist: md, idx: i})
	}
	if sc != nil {
		sc.keep(n.level, branches)
	}
	sortBranches(branches)
	rec.Op(ops.OpHeapOp, len(branches))

	for _, br := range branches {
		// Downward prune: a subtree whose MINDIST exceeds both the best
		// exact distance found and the MINMAXDIST guarantee cannot contain
		// the nearest neighbor.
		if br.minDist > *best || br.minDist > minMaxBound {
			continue
		}
		t.nearest(&t.nodes[n.entries[br.idx].ptr], p, dist, rec, sc, best, bestID, found)
	}
}

// Stats describes the composition of a tree, used by tests and the dataset
// report tooling.
type Stats struct {
	Items      int
	Nodes      int
	Height     int
	IndexBytes int
	Fanout     int
	LeafNodes  int
}

// TreeStats returns structural statistics.
func (t *Tree) TreeStats() Stats {
	leaves := 0
	for i := range t.nodes {
		if t.nodes[i].level == 0 {
			leaves++
		}
	}
	return Stats{
		Items:      t.nitems,
		Nodes:      len(t.nodes),
		Height:     t.height,
		IndexBytes: t.IndexBytes(),
		Fanout:     t.Fanout(),
		LeafNodes:  leaves,
	}
}
