//go:build race

package rtree

const raceEnabled = true
