package rtree

import (
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
)

// Spatial (intersection) join — one of the "other spatial queries" of the
// paper's future work (§7): find all pairs (a, b) of items from two layers
// whose geometries intersect (e.g. which streets cross which rail lines).
// The filtering step is the classic synchronized R-tree traversal of
// Brinkhoff, Kriegel, and Seeger: descend both trees in lockstep, pruning
// node pairs whose MBRs are disjoint; the refinement step (exact
// segment–segment tests) is the caller's, as for the other queries.

// Pair is one join candidate or result: item ids from the two layers.
type Pair struct {
	A, B uint32
}

// JoinCandidates returns all pairs of items whose MBRs intersect, by
// synchronized traversal of the two trees. Work on both traversals is
// charged to rec (the join runs wholly on one machine).
func JoinCandidates(ta, tb *Tree, rec ops.Recorder) []Pair {
	if ta.root < 0 || tb.root < 0 {
		return nil
	}
	var out []Pair
	joinNodes(ta, tb, ta.root, tb.root, rec, &out)
	return out
}

func joinNodes(ta, tb *Tree, ia, ib int32, rec ops.Recorder, out *[]Pair) {
	na, nb := &ta.nodes[ia], &tb.nodes[ib]
	ta.visitNode(na, rec)
	tb.visitNode(nb, rec)

	switch {
	case na.level == 0 && nb.level == 0:
		// Leaf × leaf: emit intersecting entry pairs.
		for i := range na.entries {
			ta.scanEntry(na, i, rec)
			for j := range nb.entries {
				rec.Op(ops.OpMBRTest, 1)
				if na.entries[i].mbr.Intersects(nb.entries[j].mbr) {
					rec.Op(ops.OpResultAppend, 1)
					rec.Store(ops.ScratchBase+uint64(len(*out))*8, 8)
					*out = append(*out, Pair{A: na.entries[i].ptr, B: nb.entries[j].ptr})
				}
			}
		}
	case na.level >= nb.level && na.level > 0:
		// Descend the taller (or equal) tree A.
		for i := range na.entries {
			ta.scanEntry(na, i, rec)
			if na.entries[i].mbr.Intersects(nodeMBROf(nb)) {
				joinNodes(ta, tb, int32(na.entries[i].ptr), ib, rec, out)
			}
		}
	default:
		// Descend tree B.
		for j := range nb.entries {
			tb.scanEntry(nb, j, rec)
			if nb.entries[j].mbr.Intersects(nodeMBROf(na)) {
				joinNodes(ta, tb, ia, int32(nb.entries[j].ptr), rec, out)
			}
		}
	}
}

// nodeMBROf returns the union of a node's entry MBRs (computed on the fly —
// nodes do not store their own MBR, their parents do).
func nodeMBROf(n *node) geom.Rect {
	mbr := geom.EmptyRect()
	for i := range n.entries {
		mbr = mbr.Union(n.entries[i].mbr)
	}
	return mbr
}
