package rtree

import (
	"container/heap"
	"math"
	"sort"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
)

// k-nearest-neighbor search — one of the "other spatial queries" the paper
// lists as future work (§7). The algorithm generalizes the Roussopoulos
// branch-and-bound: a max-heap keeps the k best exact distances found so
// far, and subtrees are pruned against the k-th best once the heap is full.

// Neighbor is one k-NN result.
type Neighbor struct {
	ID   uint32
	Dist float64
}

// neighborHeap is a max-heap on distance (the worst of the current best-k
// sits on top).
type neighborHeap []Neighbor

func (h neighborHeap) Len() int            { return len(h) }
func (h neighborHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h neighborHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *neighborHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *neighborHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// KNearest returns the k items nearest to p in ascending distance order
// (fewer if the tree holds fewer than k items). dist supplies exact item
// distances exactly as in Nearest.
func (t *Tree) KNearest(p geom.Point, k int, dist DistFunc, rec ops.Recorder) []Neighbor {
	if t.root < 0 || k <= 0 {
		return nil
	}
	best := &neighborHeap{}
	t.knn(&t.nodes[t.root], p, k, dist, rec, best)
	out := make([]Neighbor, best.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(best).(Neighbor)
	}
	return out
}

// bound returns the pruning distance: the k-th best so far, or +Inf while
// fewer than k neighbors are known.
func knnBound(best *neighborHeap, k int) float64 {
	if best.Len() < k {
		return math.Inf(1)
	}
	return (*best)[0].Dist
}

func (t *Tree) knn(n *node, p geom.Point, k int, dist DistFunc, rec ops.Recorder, best *neighborHeap) {
	t.visitNode(n, rec)
	if n.level == 0 {
		for i := range n.entries {
			t.scanEntry(n, i, rec)
			rec.Op(ops.OpDistCalc, 1)
			if n.entries[i].mbr.MinDist(p) > knnBound(best, k) {
				continue
			}
			d := dist(n.entries[i].ptr)
			if d < knnBound(best, k) {
				heap.Push(best, Neighbor{ID: n.entries[i].ptr, Dist: d})
				rec.Op(ops.OpHeapOp, 1)
				if best.Len() > k {
					heap.Pop(best)
					rec.Op(ops.OpHeapOp, 1)
				}
			}
		}
		return
	}
	branches := make([]branch, 0, len(n.entries))
	for i := range n.entries {
		t.scanEntry(n, i, rec)
		rec.Op(ops.OpDistCalc, 1)
		branches = append(branches, branch{minDist: n.entries[i].mbr.MinDist(p), idx: i})
	}
	sort.Slice(branches, func(a, b int) bool { return branches[a].minDist < branches[b].minDist })
	rec.Op(ops.OpHeapOp, len(branches))
	for _, br := range branches {
		if br.minDist > knnBound(best, k) {
			break // MINDIST-ordered: all later branches prune too
		}
		t.knn(&t.nodes[n.entries[br.idx].ptr], p, k, dist, rec, best)
	}
}
