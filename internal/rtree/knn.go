package rtree

import (
	"math"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
)

// k-nearest-neighbor search — one of the "other spatial queries" the paper
// lists as future work (§7). The algorithm generalizes the Roussopoulos
// branch-and-bound: a max-heap keeps the k best exact distances found so
// far, and subtrees are pruned against the k-th best once the heap is full.

// Neighbor is one k-NN result.
type Neighbor struct {
	ID   uint32
	Dist float64
}

// neighborHeap is a max-heap on distance (the worst of the current best-k
// sits on top). The sift routines are the container/heap algorithm on the
// concrete type — heap.Push boxes every Neighbor into an interface{}, which
// would put an allocation in the middle of the zero-alloc query path.
type neighborHeap []Neighbor

func (h neighborHeap) less(i, j int) bool { return h[i].Dist > h[j].Dist }

func (h *neighborHeap) push(nb Neighbor) {
	*h = append(*h, nb)
	h.up(len(*h) - 1)
}

func (h *neighborHeap) pop() Neighbor {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	old.down(0, n)
	nb := old[n]
	*h = old[:n]
	return nb
}

func (h neighborHeap) up(j int) {
	for j > 0 {
		i := (j - 1) / 2 // parent
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h neighborHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2
		}
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// KNearest returns the k items nearest to p in ascending distance order
// (fewer if the tree holds fewer than k items). dist supplies exact item
// distances exactly as in Nearest.
func (t *Tree) KNearest(p geom.Point, k int, dist DistFunc, rec ops.Recorder) []Neighbor {
	if t.root < 0 || k <= 0 {
		return nil
	}
	return t.KNearestAppend(nil, p, k, dist, rec, nil)
}

// KNearestAppend is KNearest appending into dst with an optional
// caller-owned scratch — the allocation-free k-NN path. The traversal is
// shared with KNearest, so answers (ties included) are identical.
func (t *Tree) KNearestAppend(dst []Neighbor, p geom.Point, k int, dist DistFunc, rec ops.Recorder, sc *NNScratch) []Neighbor {
	if t.root < 0 || k <= 0 {
		return dst
	}
	var best neighborHeap
	if sc != nil {
		best = sc.heap[:0]
	}
	t.knn(&t.nodes[t.root], p, k, dist, rec, sc, &best)
	start := len(dst)
	n := len(best)
	for i := 0; i < n; i++ {
		dst = append(dst, Neighbor{})
	}
	for i := start + n - 1; i >= start; i-- {
		dst[i] = best.pop()
	}
	if sc != nil {
		sc.heap = best[:0]
	}
	return dst
}

// The running-accumulator API. A sharded index answers one k-NN query by
// folding several per-shard trees into one scratch-held heap: the k-th best
// distance travels from shard to shard, pruning inside every later tree.
// KNearestAppend is exactly ResetKNN + one KNearestCollect + DrainKNNAppend,
// so single-tree and cross-tree answers share one traversal.

// ResetKNN empties sc's running k-NN accumulator. Call once before a
// sequence of KNearestCollect folds.
func (sc *NNScratch) ResetKNN() { sc.heap = sc.heap[:0] }

// KNNLen returns the number of neighbors currently accumulated.
func (sc *NNScratch) KNNLen() int { return len(sc.heap) }

// KNNBound returns the accumulator's pruning distance: the k-th best so
// far, or +Inf while fewer than k neighbors are known. A subtree — or a
// whole shard — whose lower bound exceeds it cannot contribute.
func (sc *NNScratch) KNNBound(k int) float64 { return knnBound(&sc.heap, k) }

// DrainKNNAppend appends the accumulated neighbors to dst in ascending
// distance order and empties the accumulator.
func (sc *NNScratch) DrainKNNAppend(dst []Neighbor) []Neighbor {
	start := len(dst)
	n := len(sc.heap)
	for i := 0; i < n; i++ {
		dst = append(dst, Neighbor{})
	}
	for i := start + n - 1; i >= start; i-- {
		dst[i] = sc.heap.pop()
	}
	sc.heap = sc.heap[:0]
	return dst
}

// KNNOffer folds one externally-computed candidate into sc's running
// accumulator, applying the same admit/evict rule the tree traversal uses.
// An updatable shard answers k-NN by collecting from its packed base, then
// offering the handful of delta-tree items (and skipping tombstoned ids) —
// the merged answer is what one tree over the union would have produced.
func (sc *NNScratch) KNNOffer(k int, nb Neighbor) {
	if k <= 0 || nb.Dist >= knnBound(&sc.heap, k) {
		return
	}
	sc.heap.push(nb)
	if len(sc.heap) > k {
		sc.heap.pop()
	}
}

// KNearestCollect folds this tree's k nearest neighbors into sc's running
// accumulator, pruning against the bound the accumulator already carries.
// sc must be non-nil; results accumulate across calls until DrainKNNAppend.
func (t *Tree) KNearestCollect(p geom.Point, k int, dist DistFunc, rec ops.Recorder, sc *NNScratch) {
	if t.root < 0 || k <= 0 {
		return
	}
	heap := sc.heap
	t.knn(&t.nodes[t.root], p, k, dist, rec, sc, &heap)
	sc.heap = heap
}

// bound returns the pruning distance: the k-th best so far, or +Inf while
// fewer than k neighbors are known.
func knnBound(best *neighborHeap, k int) float64 {
	if len(*best) < k {
		return math.Inf(1)
	}
	return (*best)[0].Dist
}

func (t *Tree) knn(n *node, p geom.Point, k int, dist DistFunc, rec ops.Recorder, sc *NNScratch, best *neighborHeap) {
	t.visitNode(n, rec)
	if n.level == 0 {
		for i := range n.entries {
			t.scanEntry(n, i, rec)
			rec.Op(ops.OpDistCalc, 1)
			if n.entries[i].mbr.MinDist(p) > knnBound(best, k) {
				continue
			}
			d := dist(n.entries[i].ptr)
			if d < knnBound(best, k) {
				best.push(Neighbor{ID: n.entries[i].ptr, Dist: d})
				rec.Op(ops.OpHeapOp, 1)
				if len(*best) > k {
					best.pop()
					rec.Op(ops.OpHeapOp, 1)
				}
			}
		}
		return
	}
	var branches []branch
	if sc != nil {
		branches = sc.level(n.level)
	} else {
		branches = make([]branch, 0, len(n.entries))
	}
	for i := range n.entries {
		t.scanEntry(n, i, rec)
		rec.Op(ops.OpDistCalc, 1)
		branches = append(branches, branch{minDist: n.entries[i].mbr.MinDist(p), idx: i})
	}
	if sc != nil {
		sc.keep(n.level, branches)
	}
	sortBranches(branches)
	rec.Op(ops.OpHeapOp, len(branches))
	for _, br := range branches {
		if br.minDist > knnBound(best, k) {
			break // MINDIST-ordered: all later branches prune too
		}
		t.knn(&t.nodes[n.entries[br.idx].ptr], p, k, dist, rec, sc, best)
	}
}
