package rtree

import (
	"testing"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
)

func TestBudgetCapacity(t *testing.T) {
	b := Budget{Bytes: 1 << 20, RecordBytes: 76}
	n := b.CapacityItems(DefaultNodeBytes, (DefaultNodeBytes-HeaderBytes)/EntryBytes)
	if n <= 0 {
		t.Fatal("capacity must be positive for a 1 MB budget")
	}
	// The chosen n must actually fit, and n+1 must not.
	fanout := (DefaultNodeBytes - HeaderBytes) / EntryBytes
	if n*76+packedIndexBytes(n, DefaultNodeBytes, fanout) > b.Bytes {
		t.Fatalf("capacity %d overflows budget", n)
	}
	if (n+1)*76+packedIndexBytes(n+1, DefaultNodeBytes, fanout) <= b.Bytes {
		t.Fatalf("capacity %d not maximal", n)
	}
	if (Budget{Bytes: 10, RecordBytes: 0}).CapacityItems(512, 25) != 0 {
		t.Fatal("zero record size must yield zero capacity")
	}
}

func TestPackedIndexBytes(t *testing.T) {
	if got := packedIndexBytes(0, 512, 25); got != 0 {
		t.Fatalf("empty index bytes = %d", got)
	}
	if got := packedIndexBytes(1, 512, 25); got != 512 {
		t.Fatalf("1-item index bytes = %d", got)
	}
	// 26 items -> 2 leaves + 1 root = 3 nodes.
	if got := packedIndexBytes(26, 512, 25); got != 3*512 {
		t.Fatalf("26-item index bytes = %d", got)
	}
}

func TestExtractSubsetRespectsBudgetAndCovers(t *testing.T) {
	segs := randSegments(20000, 31)
	tr := buildTest(t, segs, Config{})
	budget := Budget{Bytes: 64 * 1024, RecordBytes: 76}
	window := geom.Rect{Min: geom.Point{X: 480, Y: 480}, Max: geom.Point{X: 520, Y: 520}}

	var rec ops.Counts
	ship, err := tr.ExtractSubset(window, budget, &rec)
	if err != nil {
		t.Fatal(err)
	}
	// Budget respected.
	total := ship.DataBytes(budget.RecordBytes) + ship.IndexBytes()
	if total > budget.Bytes {
		t.Fatalf("shipment %d bytes exceeds budget %d", total, budget.Bytes)
	}
	// All items matching the window are in the shipment.
	shipped := map[uint32]bool{}
	for _, it := range ship.Items {
		shipped[it.ID] = true
	}
	for _, id := range tr.Search(window, ops.Null{}) {
		if !shipped[id] {
			t.Fatalf("matching item %d missing from shipment", id)
		}
	}
	// Coverage guarantee: every master item intersecting Coverage is
	// shipped, and the original window is covered.
	if !ship.Coverage.ContainsRect(window) {
		t.Fatalf("coverage %v does not contain window %v", ship.Coverage, window)
	}
	for _, id := range tr.Search(ship.Coverage, ops.Null{}) {
		if !shipped[id] {
			t.Fatalf("item %d intersects coverage but was not shipped", id)
		}
	}
	// The sub-tree answers the window identically to the master tree.
	got := ship.SubTree.Search(window, ops.Null{})
	want := tr.Search(window, ops.Null{})
	sortU32(got)
	sortU32(want)
	if !equalU32(got, want) {
		t.Fatalf("sub-tree answers %d ids, master %d", len(got), len(want))
	}
	// Server work was recorded.
	if rec.Ops[ops.OpNodeVisit] == 0 || rec.Ops[ops.OpIndexBuildEntry] == 0 {
		t.Fatal("extraction recorded no server work")
	}
}

func TestExtractSubsetEmptyRegion(t *testing.T) {
	segs := randSegments(5000, 32)
	tr := buildTest(t, segs, Config{})
	// A window outside all data: still ships proximate items.
	window := geom.Rect{Min: geom.Point{X: 5000, Y: 5000}, Max: geom.Point{X: 5010, Y: 5010}}
	ship, err := tr.ExtractSubset(window, Budget{Bytes: 32 * 1024, RecordBytes: 76}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ship.Items) == 0 {
		t.Fatal("empty-region extraction shipped nothing")
	}
}

func TestExtractSubsetTinyBudget(t *testing.T) {
	segs := randSegments(100, 33)
	tr := buildTest(t, segs, Config{})
	if _, err := tr.ExtractSubset(geom.Rect{}, Budget{Bytes: 10, RecordBytes: 76}, ops.Null{}); err == nil {
		t.Fatal("sub-record budget accepted")
	}
}

func TestExtractSubsetWholeDatasetFits(t *testing.T) {
	segs := randSegments(200, 34)
	tr := buildTest(t, segs, Config{})
	ship, err := tr.ExtractSubset(
		geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 10, Y: 10}},
		Budget{Bytes: 1 << 20, RecordBytes: 76}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ship.Items) != len(segs) {
		t.Fatalf("shipment has %d items, want all %d", len(ship.Items), len(segs))
	}
	// Coverage should be generous when everything is shipped.
	if !ship.Coverage.ContainsRect(tr.Bounds()) {
		t.Logf("note: coverage %v vs bounds %v", ship.Coverage, tr.Bounds())
	}
}

func TestExtractSubsetTruncatesOversizedAnswer(t *testing.T) {
	segs := randSegments(10000, 35)
	tr := buildTest(t, segs, Config{})
	// Budget holds ~100 items but the whole-extent window matches all 10k.
	budget := Budget{Bytes: 100*76 + 3*DefaultNodeBytes, RecordBytes: 76}
	ship, err := tr.ExtractSubset(tr.Bounds(), budget, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ship.DataBytes(76) + ship.IndexBytes(); got > budget.Bytes {
		t.Fatalf("truncated shipment %dB exceeds budget %dB", got, budget.Bytes)
	}
	if !ship.Coverage.IsEmpty() {
		t.Fatal("coverage must be empty when the window could not be fully shipped")
	}
}

func BenchmarkExtractSubset(b *testing.B) {
	segs := randSegments(50000, 36)
	tr := buildTest(b, segs, Config{})
	budget := Budget{Bytes: 1 << 20, RecordBytes: 76}
	w := geom.Rect{Min: geom.Point{X: 500, Y: 500}, Max: geom.Point{X: 520, Y: 520}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.ExtractSubset(w, budget, ops.Null{}); err != nil {
			b.Fatal(err)
		}
	}
}
