package rtree

import (
	"fmt"
	"math"
	"sort"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
)

// Budget describes the client's memory availability for the insufficient-
// memory scenario (§4, Fig. 2): the shipped data records plus the shipped
// sub-index must fit in Bytes.
type Budget struct {
	// Bytes is the client memory available for data + index.
	Bytes int
	// RecordBytes is the size of one data record (segment geometry plus
	// attributes) as stored/shipped.
	RecordBytes int
}

// CapacityItems returns the largest number of items n such that
// n×RecordBytes + indexBytes(n) ≤ b.Bytes for a packed tree with the given
// node size and fanout.
func (b Budget) CapacityItems(nodeBytes, fanout int) int {
	if b.RecordBytes <= 0 {
		return 0
	}
	// Index size grows in steps; binary search on n.
	lo, hi := 0, b.Bytes/b.RecordBytes+1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if mid*b.RecordBytes+packedIndexBytes(mid, nodeBytes, fanout) <= b.Bytes {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// packedIndexBytes returns the byte size of a packed tree over n items.
func packedIndexBytes(n, nodeBytes, fanout int) int {
	if n == 0 {
		return 0
	}
	nodes := 0
	level := n
	for {
		nn := (level + fanout - 1) / fanout
		nodes += nn
		if nn == 1 {
			break
		}
		level = nn
	}
	return nodes * nodeBytes
}

// Shipment is what the server sends the client in the insufficient-memory
// scenario: the chosen data items (in pack order), a freshly built sub-index
// over them, and a coverage rectangle with the guarantee that every master
// item intersecting Coverage is included in Items — so any later query
// window contained in Coverage can be answered entirely from the shipment.
type Shipment struct {
	Items    []Item
	SubTree  *Tree
	Coverage geom.Rect
}

// DataBytes returns the shipped data volume for the given record size.
func (s *Shipment) DataBytes(recordBytes int) int { return len(s.Items) * recordBytes }

// IndexBytes returns the shipped index volume.
func (s *Shipment) IndexBytes() int {
	if s.SubTree == nil {
		return 0
	}
	return s.SubTree.IndexBytes()
}

// ExtractSubset implements the shipment-selection algorithm of Fig. 2: the
// server locates the items satisfying the query window with one master-index
// traversal, then grows the selection *spatially* — expanding a rectangle
// around the window until the client's memory budget is full — and
// bulk-loads a fresh packed sub-index over the selection. Because every
// master item intersecting the expanded rectangle is shipped, that rectangle
// is the shipment's coverage guarantee by construction: any later window
// inside it can be answered entirely at the client.
//
// Any capacity left after the spatial expansion (the count jumps when the
// rectangle grows past a dense street cluster) is topped up with the
// selection's neighbors in Hilbert pack order — the "nodes on either side"
// widening of Fig. 2.
//
// rec receives the server-side work: the master traversals (including the
// expansion probes — part of the paper's w2 "extra work the server does"),
// the selection scan, and the sub-index build.
func (t *Tree) ExtractSubset(window geom.Rect, budget Budget, rec ops.Recorder) (*Shipment, error) {
	if t.root < 0 {
		return nil, fmt.Errorf("rtree: ExtractSubset on empty tree")
	}
	capacity := budget.CapacityItems(t.cfg.NodeBytes, t.cfg.fanout())
	if capacity < 1 {
		return nil, fmt.Errorf("rtree: budget %d bytes holds no items (record %dB)", budget.Bytes, budget.RecordBytes)
	}
	if capacity > t.nitems {
		capacity = t.nitems
	}

	base := window
	if base.IsEmpty() {
		c := t.bounds.Center()
		base = geom.Rect{Min: c, Max: c}
	}

	// Positions (in pack order) of items whose MBR intersects the window.
	positions := t.searchPositions(base, rec)

	if len(positions) > capacity {
		// The answer itself does not fit: ship as much of it as possible,
		// centered, with no coverage guarantee — the client will keep
		// re-requesting.
		start := (len(positions) - capacity) / 2
		selected := positions[start : start+capacity]
		ship, err := t.buildShipment(selected, rec)
		if err != nil {
			return nil, err
		}
		ship.Coverage = geom.EmptyRect()
		return ship, nil
	}

	// Spatial expansion: the largest margin δ such that the items
	// intersecting base.Expand(δ) still fit the capacity. Exponential
	// growth then binary search; every probe is one counting traversal of
	// the master index (server work).
	unit := maxf(t.bounds.Width(), t.bounds.Height())
	fits := func(d float64) bool { return t.countMatching(base.Expand(d), rec) <= capacity }
	loD, hiD := 0.0, unit/1024
	for fits(hiD) && hiD < 4*unit {
		loD = hiD
		hiD *= 2
	}
	if hiD >= 4*unit {
		// Everything fits: ship the whole dataset.
		all := make([]int, t.nitems)
		for i := range all {
			all[i] = i
		}
		ship, err := t.buildShipment(all, rec)
		if err != nil {
			return nil, err
		}
		ship.Coverage = t.bounds
		return ship, nil
	}
	for i := 0; i < 24; i++ {
		mid := (loD + hiD) / 2
		if fits(mid) {
			loD = mid
		} else {
			hiD = mid
		}
	}
	coverage := base.Expand(loD)
	selected := t.searchPositions(coverage, rec)
	if len(selected) == 0 {
		// Degenerate: nothing within the largest fitting margin (empty
		// region far from all data). Seed from the nearest item so the
		// client at least holds the local neighborhood.
		selected = []int{t.nearestPackPos(base.Center(), rec)}
	}
	// Top up leftover capacity with Hilbert-order neighbors; extra items
	// only add to the shipment, so the coverage guarantee stands.
	selected = widenSelection(selected, capacity, t.nitems)

	ship, err := t.buildShipment(selected, rec)
	if err != nil {
		return nil, err
	}
	ship.Coverage = coverage
	return ship, nil
}

// buildShipment materializes the selected pack positions and bulk-loads the
// sub-index, charging the copy and build to rec.
func (t *Tree) buildShipment(selected []int, rec ops.Recorder) (*Shipment, error) {
	items := make([]Item, len(selected))
	for i, pos := range selected {
		items[i] = t.leafOrder[pos]
	}
	rec.Op(ops.OpCopyWord, len(items)*EntryBytes/4)
	sub, err := Build(items, t.cfg, rec)
	if err != nil {
		return nil, err
	}
	return &Shipment{Items: items, SubTree: sub}, nil
}

// countMatching returns the number of items whose MBR intersects the window,
// charging the traversal to rec.
func (t *Tree) countMatching(window geom.Rect, rec ops.Recorder) int {
	count := 0
	var walk func(idx uint32)
	walk = func(idx uint32) {
		n := &t.nodes[idx]
		t.visitNode(n, rec)
		for i := range n.entries {
			t.scanEntry(n, i, rec)
			if !window.Intersects(n.entries[i].mbr) {
				continue
			}
			if n.level == 0 {
				count++
			} else {
				walk(n.entries[i].ptr)
			}
		}
	}
	walk(uint32(t.root))
	return count
}

// widenSelection expands a sorted list of pack positions to
// min(capacity, nitems) positions. Interior gaps between matched runs are
// filled smallest-first (those positions are the spatially closest unmatched
// neighbors under Hilbert locality); any remaining capacity extends the
// outermost ends symmetrically.
func widenSelection(sel []int, capacity, nitems int) []int {
	sort.Ints(sel)
	// Deduplicate in place.
	uniq := sel[:0]
	for i, p := range sel {
		if i == 0 || p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	sel = uniq
	if capacity > nitems {
		capacity = nitems
	}
	remaining := capacity - len(sel)
	if remaining <= 0 {
		return sel
	}
	in := make(map[int]bool, capacity)
	for _, p := range sel {
		in[p] = true
	}
	add := func(p int) {
		if !in[p] {
			in[p] = true
			remaining--
		}
	}

	// Interior gaps, smallest first.
	type gap struct{ lo, hi int } // exclusive run bounds: positions lo..hi missing
	var gaps []gap
	for i := 1; i < len(sel); i++ {
		if sel[i] > sel[i-1]+1 {
			gaps = append(gaps, gap{sel[i-1] + 1, sel[i] - 1})
		}
	}
	sort.Slice(gaps, func(a, b int) bool {
		return gaps[a].hi-gaps[a].lo < gaps[b].hi-gaps[b].lo
	})
	for _, g := range gaps {
		size := g.hi - g.lo + 1
		if size > remaining {
			break
		}
		for p := g.lo; p <= g.hi; p++ {
			add(p)
		}
	}

	// Extend the outer ends alternately.
	lo, hi := sel[0], sel[len(sel)-1]
	for remaining > 0 && (lo > 0 || hi < nitems-1) {
		if lo > 0 {
			lo--
			add(lo)
		}
		if remaining > 0 && hi < nitems-1 {
			hi++
			add(hi)
		}
	}

	out := make([]int, 0, len(in))
	for p := range in {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// searchPositions is Search but returns pack-order positions instead of ids.
// Leaf node k covers pack positions [k×fanout, k×fanout+len(entries)).
func (t *Tree) searchPositions(window geom.Rect, rec ops.Recorder) []int {
	var out []int
	if t.root < 0 {
		return out
	}
	fanout := t.cfg.fanout()
	var walk func(idx uint32)
	walk = func(idx uint32) {
		n := &t.nodes[idx]
		t.visitNode(n, rec)
		for i := range n.entries {
			t.scanEntry(n, i, rec)
			if !window.Intersects(n.entries[i].mbr) {
				continue
			}
			if n.level == 0 {
				out = append(out, int(idx)*fanout+i)
			} else {
				walk(n.entries[i].ptr)
			}
		}
	}
	walk(uint32(t.root))
	sort.Ints(out)
	return out
}

// nearestPackPos returns the pack position of the item whose MBR is nearest
// to p (by MINDIST), found with a branch-and-bound descent over node MBRs.
func (t *Tree) nearestPackPos(p geom.Point, rec ops.Recorder) int {
	fanout := t.cfg.fanout()
	bestPos := 0
	best := math.Inf(1)
	var walk func(idx uint32)
	walk = func(idx uint32) {
		n := &t.nodes[idx]
		t.visitNode(n, rec)
		type cand struct {
			d float64
			i int
		}
		cands := make([]cand, 0, len(n.entries))
		for i := range n.entries {
			t.scanEntry(n, i, rec)
			rec.Op(ops.OpDistCalc, 1)
			cands = append(cands, cand{n.entries[i].mbr.MinDist(p), i})
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
		for _, c := range cands {
			if c.d >= best {
				break // MINDIST lower-bounds every descendant
			}
			if n.level == 0 {
				best = c.d
				bestPos = int(idx)*fanout + c.i
			} else {
				walk(n.entries[c.i].ptr)
			}
		}
	}
	walk(uint32(t.root))
	return bestPos
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
