package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
)

// randSegments builds n random short segments in a 1000×1000 extent.
func randSegments(n int, seed int64) []geom.Segment {
	rng := rand.New(rand.NewSource(seed))
	segs := make([]geom.Segment, n)
	for i := range segs {
		a := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		segs[i] = geom.Segment{
			A: a,
			B: geom.Point{X: a.X + rng.Float64()*20 - 10, Y: a.Y + rng.Float64()*20 - 10},
		}
	}
	return segs
}

func itemsOf(segs []geom.Segment) []Item {
	items := make([]Item, len(segs))
	for i, s := range segs {
		items[i] = Item{MBR: s.MBR(), ID: uint32(i)}
	}
	return items
}

func buildTest(t testing.TB, segs []geom.Segment, cfg Config) *Tree {
	t.Helper()
	tr, err := Build(itemsOf(segs), cfg, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildEmpty(t *testing.T) {
	tr, err := Build(nil, Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Height() != 0 || tr.NodeCount() != 0 {
		t.Fatalf("empty tree stats: %+v", tr.TreeStats())
	}
	if got := tr.Search(geom.Rect{Min: geom.Point{}, Max: geom.Point{X: 1, Y: 1}}, ops.Null{}); len(got) != 0 {
		t.Fatal("search on empty tree returned results")
	}
	if _, _, ok := tr.Nearest(geom.Point{}, nil, ops.Null{}); ok {
		t.Fatal("Nearest on empty tree reported ok")
	}
}

func TestBuildSingleItem(t *testing.T) {
	segs := []geom.Segment{{A: geom.Point{X: 1, Y: 1}, B: geom.Point{X: 2, Y: 2}}}
	tr := buildTest(t, segs, Config{})
	if tr.Height() != 1 || tr.NodeCount() != 1 || tr.Len() != 1 {
		t.Fatalf("single-item tree stats: %+v", tr.TreeStats())
	}
	ids := tr.Search(geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 3, Y: 3}}, ops.Null{})
	if len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("Search = %v", ids)
	}
}

func TestBuildRejectsTinyNodes(t *testing.T) {
	if _, err := Build(itemsOf(randSegments(10, 1)), Config{NodeBytes: HeaderBytes + EntryBytes}, ops.Null{}); err == nil {
		t.Fatal("fanout-1 config accepted")
	}
}

func TestPackingInvariants(t *testing.T) {
	segs := randSegments(5000, 2)
	tr := buildTest(t, segs, Config{})
	st := tr.TreeStats()
	fanout := tr.Fanout()
	if fanout != (DefaultNodeBytes-HeaderBytes)/EntryBytes {
		t.Fatalf("fanout = %d", fanout)
	}
	wantLeaves := (5000 + fanout - 1) / fanout
	if st.LeafNodes != wantLeaves {
		t.Fatalf("leaf nodes = %d, want %d (packed full)", st.LeafNodes, wantLeaves)
	}
	// Every node except possibly the last of each level is full.
	byLevel := map[int16][]*node{}
	for i := range tr.nodes {
		byLevel[tr.nodes[i].level] = append(byLevel[tr.nodes[i].level], &tr.nodes[i])
	}
	for lvl, nodes := range byLevel {
		for i, n := range nodes {
			if i < len(nodes)-1 && len(n.entries) != fanout {
				t.Fatalf("level %d node %d has %d entries, want %d", lvl, i, len(n.entries), fanout)
			}
		}
	}
	// Parent MBR contains all child MBRs.
	for i := range tr.nodes {
		n := &tr.nodes[i]
		if n.level == 0 {
			continue
		}
		for _, e := range n.entries {
			child := &tr.nodes[e.ptr]
			for _, ce := range child.entries {
				if !e.mbr.ContainsRect(ce.mbr) {
					t.Fatalf("parent MBR %v does not contain child entry %v", e.mbr, ce.mbr)
				}
			}
		}
	}
	// Node addresses are distinct, aligned, and within the index region.
	seen := map[uint64]bool{}
	for i := range tr.nodes {
		a := tr.nodes[i].addr
		if seen[a] {
			t.Fatalf("duplicate node address %#x", a)
		}
		seen[a] = true
		if (a-ops.IndexBase)%uint64(DefaultNodeBytes) != 0 {
			t.Fatalf("misaligned node address %#x", a)
		}
	}
	if got := tr.IndexBytes(); got != st.Nodes*DefaultNodeBytes {
		t.Fatalf("IndexBytes = %d", got)
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	segs := randSegments(3000, 3)
	tr := buildTest(t, segs, Config{})
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 100; q++ {
		w := geom.Rect{Min: geom.Point{X: rng.Float64() * 950, Y: rng.Float64() * 950}}
		w.Max = geom.Point{X: w.Min.X + rng.Float64()*80, Y: w.Min.Y + rng.Float64()*80}
		got := tr.Search(w, ops.Null{})
		var want []uint32
		for i, s := range segs {
			if w.Intersects(s.MBR()) {
				want = append(want, uint32(i))
			}
		}
		sortU32(got)
		sortU32(want)
		if !equalU32(got, want) {
			t.Fatalf("query %d window %v: got %d ids, want %d", q, w, len(got), len(want))
		}
	}
}

func TestSearchPointMatchesBruteForce(t *testing.T) {
	segs := randSegments(2000, 5)
	tr := buildTest(t, segs, Config{})
	rng := rand.New(rand.NewSource(6))
	for q := 0; q < 200; q++ {
		var p geom.Point
		if q%2 == 0 { // half the probes on actual endpoints so hits occur
			s := segs[rng.Intn(len(segs))]
			p = s.A
		} else {
			p = geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		}
		got := tr.SearchPoint(p, ops.Null{})
		var want []uint32
		for i, s := range segs {
			if s.MBR().ContainsPoint(p) {
				want = append(want, uint32(i))
			}
		}
		sortU32(got)
		sortU32(want)
		if !equalU32(got, want) {
			t.Fatalf("point query %d at %v: got %v want %v", q, p, got, want)
		}
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	segs := randSegments(2000, 7)
	tr := buildTest(t, segs, Config{})
	rng := rand.New(rand.NewSource(8))
	dist := func(id uint32) float64 { return 0 } // replaced per query
	_ = dist
	for q := 0; q < 150; q++ {
		p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		df := func(id uint32) float64 { return segs[id].DistToPoint(p) }
		id, d, ok := tr.Nearest(p, df, ops.Null{})
		if !ok {
			t.Fatal("Nearest found nothing")
		}
		best := math.Inf(1)
		for _, s := range segs {
			if dd := s.DistToPoint(p); dd < best {
				best = dd
			}
		}
		if math.Abs(d-best) > 1e-9 {
			t.Fatalf("query %d at %v: NN dist %g (id %d), brute force %g", q, p, d, id, best)
		}
		if got := segs[id].DistToPoint(p); math.Abs(got-d) > 1e-9 {
			t.Fatalf("returned id %d has dist %g, reported %g", id, got, d)
		}
	}
}

func TestNearestPruningActuallyPrunes(t *testing.T) {
	segs := randSegments(5000, 9)
	tr := buildTest(t, segs, Config{})
	var rec ops.Counts
	p := geom.Point{X: 500, Y: 500}
	tr.Nearest(p, func(id uint32) float64 { return segs[id].DistToPoint(p) }, &rec)
	visits := rec.Ops[ops.OpNodeVisit]
	if visits >= int64(tr.NodeCount())/2 {
		t.Fatalf("NN visited %d of %d nodes — pruning not effective", visits, tr.NodeCount())
	}
}

func TestInstrumentationEmitsTrace(t *testing.T) {
	segs := randSegments(1000, 10)
	var buildRec ops.Counts
	tr, err := Build(itemsOf(segs), Config{}, &buildRec)
	if err != nil {
		t.Fatal(err)
	}
	if buildRec.Ops[ops.OpIndexBuildEntry] < int64(len(segs)) {
		t.Fatalf("build entries = %d, want >= %d", buildRec.Ops[ops.OpIndexBuildEntry], len(segs))
	}
	if buildRec.StoreBytes == 0 {
		t.Fatal("build emitted no stores")
	}
	var rec ops.Counts
	w := geom.Rect{Min: geom.Point{X: 100, Y: 100}, Max: geom.Point{X: 300, Y: 300}}
	ids := tr.Search(w, &rec)
	if rec.Ops[ops.OpMBRTest] == 0 || rec.Ops[ops.OpNodeVisit] == 0 {
		t.Fatal("search emitted no filtering ops")
	}
	if rec.Ops[ops.OpResultAppend] != int64(len(ids)) {
		t.Fatalf("result appends %d != results %d", rec.Ops[ops.OpResultAppend], len(ids))
	}
	if rec.LoadBytes == 0 {
		t.Fatal("search emitted no loads")
	}
}

func TestHilbertPackingBeatsXSortOnWindowQueries(t *testing.T) {
	// The point of Hilbert packing: window queries touch fewer nodes than
	// with a 1-D x-sort. This is the design choice behind the paper's index
	// (and our packing ablation bench).
	segs := randSegments(20000, 11)
	hilb := buildTest(t, segs, Config{})
	xsort := buildTest(t, segs, Config{SortByX: true})
	rng := rand.New(rand.NewSource(12))
	var hv, xv int64
	for q := 0; q < 50; q++ {
		w := geom.Rect{Min: geom.Point{X: rng.Float64() * 900, Y: rng.Float64() * 900}}
		w.Max = geom.Point{X: w.Min.X + 50, Y: w.Min.Y + 50}
		var hr, xr ops.Counts
		hilb.Search(w, &hr)
		xsort.Search(w, &xr)
		hv += hr.Ops[ops.OpNodeVisit]
		xv += xr.Ops[ops.OpNodeVisit]
	}
	if hv >= xv {
		t.Fatalf("Hilbert packing visited %d nodes, x-sort %d — expected Hilbert to win", hv, xv)
	}
}

func TestPackOrderIsHilbertSorted(t *testing.T) {
	segs := randSegments(500, 13)
	tr := buildTest(t, segs, Config{})
	if len(tr.PackOrder()) != len(segs) {
		t.Fatalf("PackOrder length %d", len(tr.PackOrder()))
	}
	// All original ids present exactly once.
	seen := make([]bool, len(segs))
	for _, it := range tr.PackOrder() {
		if seen[it.ID] {
			t.Fatalf("id %d duplicated in pack order", it.ID)
		}
		seen[it.ID] = true
	}
}

func sortU32(v []uint32) { sort.Slice(v, func(i, j int) bool { return v[i] < v[j] }) }

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkBuild10k(b *testing.B) {
	items := itemsOf(randSegments(10000, 20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(items, Config{}, ops.Null{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	segs := randSegments(50000, 21)
	tr := buildTest(b, segs, Config{})
	w := geom.Rect{Min: geom.Point{X: 400, Y: 400}, Max: geom.Point{X: 450, Y: 450}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search(w, ops.Null{})
	}
}

func BenchmarkNearest(b *testing.B) {
	segs := randSegments(50000, 22)
	tr := buildTest(b, segs, Config{})
	p := geom.Point{X: 512, Y: 377}
	df := func(id uint32) float64 { return segs[id].DistToPoint(p) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Nearest(p, df, ops.Null{})
	}
}

func TestSTRPackingCorrectAndCompetitive(t *testing.T) {
	segs := randSegments(20000, 14)
	str := buildTest(t, segs, Config{Packing: PackingSTR})
	hilb := buildTest(t, segs, Config{})
	// Correctness: identical answers.
	rng := rand.New(rand.NewSource(15))
	var sv, hv int64
	for q := 0; q < 50; q++ {
		w := geom.Rect{Min: geom.Point{X: rng.Float64() * 900, Y: rng.Float64() * 900}}
		w.Max = geom.Point{X: w.Min.X + 50, Y: w.Min.Y + 50}
		var sr, hr ops.Counts
		a := str.Search(w, &sr)
		b := hilb.Search(w, &hr)
		sortU32(a)
		sortU32(b)
		if !equalU32(a, b) {
			t.Fatalf("query %d: STR %d ids, Hilbert %d", q, len(a), len(b))
		}
		sv += sr.Ops[ops.OpNodeVisit]
		hv += hr.Ops[ops.OpNodeVisit]
	}
	// STR is a serious packing: it must land within 2× of Hilbert on node
	// visits (both far below the x-sort strawman).
	if sv > 2*hv {
		t.Fatalf("STR visits %d vs Hilbert %d — implausibly bad", sv, hv)
	}
	xsort := buildTest(t, segs, Config{Packing: PackingXSort})
	var xr ops.Counts
	for q := 0; q < 20; q++ {
		w := geom.Rect{Min: geom.Point{X: rng.Float64() * 900, Y: rng.Float64() * 900}}
		w.Max = geom.Point{X: w.Min.X + 50, Y: w.Min.Y + 50}
		xsort.Search(w, &xr)
	}
	if xr.Ops[ops.OpNodeVisit]/20 < sv/50 {
		t.Fatalf("x-sort unexpectedly beat STR per query")
	}
}
