package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
)

func TestKNearestMatchesBruteForce(t *testing.T) {
	segs := randSegments(2000, 40)
	tr := buildTest(t, segs, Config{})
	rng := rand.New(rand.NewSource(41))
	for q := 0; q < 50; q++ {
		p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		k := 1 + rng.Intn(20)
		df := func(id uint32) float64 { return segs[id].DistToPoint(p) }
		got := tr.KNearest(p, k, df, ops.Null{})
		if len(got) != k {
			t.Fatalf("query %d: got %d neighbors, want %d", q, len(got), k)
		}
		// Brute force.
		dists := make([]float64, len(segs))
		for i, s := range segs {
			dists[i] = s.DistToPoint(p)
		}
		sort.Float64s(dists)
		for i, nb := range got {
			if math.Abs(nb.Dist-dists[i]) > 1e-9 {
				t.Fatalf("query %d k=%d: neighbor %d dist %g, want %g", q, k, i, nb.Dist, dists[i])
			}
			if got := segs[nb.ID].DistToPoint(p); math.Abs(got-nb.Dist) > 1e-9 {
				t.Fatalf("neighbor id/dist mismatch")
			}
		}
		// Ascending order.
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatalf("results not sorted at %d", i)
			}
		}
	}
}

func TestKNearestDegenerateCases(t *testing.T) {
	segs := randSegments(10, 42)
	tr := buildTest(t, segs, Config{})
	df := func(id uint32) float64 { return segs[id].DistToPoint(geom.Point{X: 5, Y: 5}) }
	if got := tr.KNearest(geom.Point{X: 5, Y: 5}, 0, df, ops.Null{}); got != nil {
		t.Error("k=0 returned results")
	}
	if got := tr.KNearest(geom.Point{X: 5, Y: 5}, 50, df, ops.Null{}); len(got) != 10 {
		t.Errorf("k>n returned %d, want all 10", len(got))
	}
	empty, err := Build(nil, Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.KNearest(geom.Point{}, 3, nil, ops.Null{}); got != nil {
		t.Error("empty tree returned results")
	}
}

func TestKNearestK1AgreesWithNearest(t *testing.T) {
	segs := randSegments(1500, 43)
	tr := buildTest(t, segs, Config{})
	rng := rand.New(rand.NewSource(44))
	for q := 0; q < 50; q++ {
		p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		df := func(id uint32) float64 { return segs[id].DistToPoint(p) }
		one := tr.KNearest(p, 1, df, ops.Null{})
		_, d, ok := tr.Nearest(p, df, ops.Null{})
		if !ok || len(one) != 1 {
			t.Fatal("missing results")
		}
		if math.Abs(one[0].Dist-d) > 1e-12 {
			t.Fatalf("k=1 dist %g != Nearest %g", one[0].Dist, d)
		}
	}
}

func TestKNearestPrunes(t *testing.T) {
	segs := randSegments(20000, 45)
	tr := buildTest(t, segs, Config{})
	p := geom.Point{X: 500, Y: 500}
	var rec ops.Counts
	tr.KNearest(p, 10, func(id uint32) float64 { return segs[id].DistToPoint(p) }, &rec)
	if visits := rec.Ops[ops.OpNodeVisit]; visits > int64(tr.NodeCount())/4 {
		t.Fatalf("10-NN visited %d of %d nodes", visits, tr.NodeCount())
	}
}

func BenchmarkKNearest10(b *testing.B) {
	segs := randSegments(50000, 46)
	tr := buildTest(b, segs, Config{})
	p := geom.Point{X: 512, Y: 377}
	df := func(id uint32) float64 { return segs[id].DistToPoint(p) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.KNearest(p, 10, df, ops.Null{})
	}
}
