// key.go: cache key construction with cell snapping. Mobile queries cluster:
// vehicles near the same junction ask for almost — but not exactly — the same
// window. Quantizing query geometry to a configurable grid makes those
// near-identical queries collide on one cache entry holding the *snapped
// superset* result; the serving tier refines the superset down to the exact
// window on the way out, so caching never changes an answer.
//
// Which superset each Kind stores is chosen so refinement reproduces the
// uncached executor's semantics exactly (see internal/serve's cache path and
// DESIGN.md §16):
//
//   - KindRange: segments intersecting the snapped window. A segment
//     intersecting the exact window intersects any superset of it, so
//     refining with Segment.IntersectsRect(exact) recovers the exact answer.
//   - KindRangeFilter: item MBRs intersecting the snapped window, refined
//     with MBR.Intersects(exact).
//   - KindCell: item MBRs intersecting the one grid cell containing the
//     query point. The uncached point path filters by MBR-contains-point and
//     refines by segment distance; both predicates imply MBR-intersects-cell
//     for any point inside the cell, so this one stored set serves point
//     queries of every mode (and any eps — eps is applied at refinement
//     time, which is why it is not part of the key).
//   - KindNN: no snapping — nearest-neighbor answers are not monotone under
//     window enlargement, so the key is the exact point bit pattern plus k.
package qcache

import (
	"math"

	"mobispatial/internal/geom"
)

// Kind tags what a cached entry's payload means and how the serving tier
// refines it.
type Kind uint8

// The cacheable result shapes.
const (
	// KindRange stores the exact answer over the snapped window: ids (and
	// geometry) of segments intersecting it.
	KindRange Kind = iota
	// KindRangeFilter stores the candidate ids whose MBR intersects the
	// snapped window.
	KindRangeFilter
	// KindCell stores the candidate ids whose MBR intersects one grid cell;
	// point queries of any mode refine from it.
	KindCell
	// KindNN stores the k nearest neighbors (ids, exact distances, geometry)
	// of an exact query point.
	KindNN
)

// Key identifies one cacheable query shape. It is a comparable value: map
// key on the hot path, no strings, no slices.
type Key struct {
	kind Kind
	k    uint16
	// a..d carry the kind-specific geometry: snapped cell indices for the
	// range kinds, cell coordinates for KindCell, raw float bit patterns
	// for KindNN.
	a, b, c, d uint64
}

// Kind returns the entry shape this key addresses.
func (k Key) Kind() Kind { return k.kind }

// maxCellIndex bounds snapped cell indices. Beyond ~2^40 cells from the
// origin the float64 grid arithmetic loses the integers themselves, so such
// windows (and any NaN/Inf geometry, which floors to NaN or ±Inf) are simply
// uncacheable rather than risking a key collision.
const maxCellIndex = 1 << 40

// cellIndex quantizes one coordinate to its grid cell.
func cellIndex(v, cell float64) (int64, bool) {
	c := math.Floor(v / cell)
	if math.IsNaN(c) || c < -maxCellIndex || c > maxCellIndex {
		return 0, false
	}
	return int64(c), true
}

// RangeKey snaps a range-query window to the grid. It returns the key, the
// snapped superset window to execute and store, and whether the window is
// cacheable at all (empty, NaN, infinite, or grid-overflowing windows are
// not). filter selects the KindRangeFilter key space; exact range queries of
// either response mode share KindRange.
func RangeKey(w geom.Rect, cell float64, filter bool) (Key, geom.Rect, bool) {
	if !(cell > 0) || w.IsEmpty() {
		return Key{}, geom.Rect{}, false
	}
	x0, ok0 := cellIndex(w.Min.X, cell)
	y0, ok1 := cellIndex(w.Min.Y, cell)
	x1, ok2 := cellIndex(w.Max.X, cell)
	y1, ok3 := cellIndex(w.Max.Y, cell)
	if !ok0 || !ok1 || !ok2 || !ok3 {
		return Key{}, geom.Rect{}, false
	}
	snap := geom.Rect{
		Min: geom.Point{X: float64(x0) * cell, Y: float64(y0) * cell},
		Max: geom.Point{X: float64(x1+1) * cell, Y: float64(y1+1) * cell},
	}
	if !snap.ContainsRect(w) {
		// The refinement step is only sound over a true superset; if float
		// rounding at extreme magnitudes ever broke containment, caching
		// this window would corrupt answers. Decline instead.
		return Key{}, geom.Rect{}, false
	}
	k := Key{kind: KindRange, a: uint64(x0), b: uint64(y0), c: uint64(x1), d: uint64(y1)}
	if filter {
		k.kind = KindRangeFilter
	}
	return k, snap, true
}

// PointKey snaps a point query to its containing grid cell. The returned
// rect is the cell: the superset to filter-execute and store. Every point
// query mode shares the KindCell key space — the stored candidate set does
// not depend on mode or eps.
func PointKey(pt geom.Point, cell float64) (Key, geom.Rect, bool) {
	if !(cell > 0) {
		return Key{}, geom.Rect{}, false
	}
	x, okx := cellIndex(pt.X, cell)
	y, oky := cellIndex(pt.Y, cell)
	if !okx || !oky {
		return Key{}, geom.Rect{}, false
	}
	cr := geom.Rect{
		Min: geom.Point{X: float64(x) * cell, Y: float64(y) * cell},
		Max: geom.Point{X: float64(x+1) * cell, Y: float64(y+1) * cell},
	}
	if !cr.ContainsPoint(pt) {
		return Key{}, geom.Rect{}, false
	}
	return Key{kind: KindCell, a: uint64(x), b: uint64(y)}, cr, true
}

// NNKey keys a k-nearest-neighbor query: exact point bits plus k (0 and 1
// both mean single NN and share an entry).
func NNKey(pt geom.Point, k int) (Key, bool) {
	if k <= 0 {
		k = 1
	}
	if k > math.MaxUint16 {
		return Key{}, false
	}
	if math.IsNaN(pt.X) || math.IsNaN(pt.Y) || math.IsInf(pt.X, 0) || math.IsInf(pt.Y, 0) {
		return Key{}, false
	}
	return Key{kind: KindNN, k: uint16(k), a: math.Float64bits(pt.X), b: math.Float64bits(pt.Y)}, true
}

// FNV-1a 64-bit constants, shared by Key.hash and HintOf.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// hash spreads keys across stripes.
func (k Key) hash() uint64 {
	h := uint64(fnvOffset64)
	h ^= uint64(k.kind)
	h *= fnvPrime64
	h = fnvU64(h, uint64(k.k))
	h = fnvU64(h, k.a)
	h = fnvU64(h, k.b)
	h = fnvU64(h, k.c)
	h = fnvU64(h, k.d)
	return h
}
