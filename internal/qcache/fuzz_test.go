package qcache

import (
	"math"
	"testing"

	"mobispatial/internal/geom"
)

// FuzzSnapKeys hammers the snapped-key constructors with arbitrary float
// geometry (the same hostile inputs the proto fuzz corpus feeds the wire
// decoder: NaN, ±Inf, denormals, astronomic magnitudes). The invariants:
// never panic, and whenever a constructor accepts a window the returned
// snap must truly contain it — the refinement step's soundness hangs on
// that superset property.
func FuzzSnapKeys(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 10.0, 100.0)
	f.Add(-10.0, -10.0, 10.0, 10.0, 512.0)
	f.Add(90.0, 10.0, 110.0, 90.0, 100.0)       // straddles a grid line
	f.Add(10.0, 10.0, -10.0, 20.0, 100.0)       // inverted
	f.Add(math.NaN(), 0.0, 1.0, 1.0, 100.0)     // NaN corner
	f.Add(0.0, 0.0, math.Inf(1), 1.0, 100.0)    // infinite corner
	f.Add(1e300, 1e300, 1e301, 1e301, 1.0)      // overflow
	f.Add(0.0, 0.0, 1.0, 1.0, 0.0)              // degenerate cell
	f.Add(0.0, 0.0, 1.0, 1.0, math.Inf(1))      // infinite cell
	f.Add(5e-324, 5e-324, 1e-300, 1e-300, 1e-8) // denormals
	f.Add(-1e12, -1e12, 1e12, 1e12, 0.001)      // index overflow via tiny cell
	f.Fuzz(func(t *testing.T, x0, y0, x1, y1, cell float64) {
		w := geom.Rect{Min: geom.Point{X: x0, Y: y0}, Max: geom.Point{X: x1, Y: y1}}
		for _, filter := range []bool{false, true} {
			k, snap, ok := RangeKey(w, cell, filter)
			if ok {
				if !snap.ContainsRect(w) {
					t.Fatalf("RangeKey accepted %v (cell %v) but snap %v does not contain it", w, cell, snap)
				}
				k2, snap2, ok2 := RangeKey(w, cell, filter)
				if !ok2 || k2 != k || snap2 != snap {
					t.Fatalf("RangeKey not deterministic for %v", w)
				}
			}
		}
		pt := geom.Point{X: x0, Y: y0}
		if k, cr, ok := PointKey(pt, cell); ok {
			if !cr.ContainsPoint(pt) {
				t.Fatalf("PointKey accepted %v (cell %v) but cell rect %v misses it", pt, cell, cr)
			}
			k2, cr2, _ := PointKey(pt, cell)
			if k2 != k || cr2 != cr {
				t.Fatalf("PointKey not deterministic for %v", pt)
			}
		}
		if k, ok := NNKey(pt, int(x1)); ok {
			if k2, ok2 := NNKey(pt, int(x1)); !ok2 || k2 != k {
				t.Fatalf("NNKey not deterministic for %v k=%d", pt, int(x1))
			}
		}
	})
}
