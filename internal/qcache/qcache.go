// Package qcache is the server-side query-result cache: a sharded,
// mutex-striped LRU keyed by (kind, cell-snapped geometry, k, shard-version
// vector) storing id-list results with their geometry. The paper's whole
// argument is about minimizing the work a query costs on either side of the
// link; a result cache is the limiting case — the best query is the one
// nobody re-executes.
//
// Invalidation is epoch-based and lazy: every entry records, per
// participating index shard, the shard's monotone version counter at store
// time (the mutable tier bumps it on every overlay write and on every
// compaction epoch swap — see mutable.Pool.Version). A lookup rebuilds the
// same (participation mask, version vector) view from the live Source and
// serves the entry only on exact equality; a mismatched entry is deleted on
// the spot. No write-path eviction protocol exists or is needed: a cached
// entry is dead the moment any owning shard's version advances.
//
// Consistency: versions are bumped under the shard write lock before a write
// is acknowledged, and stores are gated on the view being identical before
// and after executing the superset query (so a result that raced a write is
// never cached). Per-shard version equality therefore implies the shard's
// visible contents are identical to store time, and a hit returns exactly
// what re-execution would. The participation mask closes the growth case: a
// shard whose bounds grow into the query region must have taken a write, so
// its version changed — and the mask recomputation notices the new overlap
// even though the shard was never in the stored vector.
package qcache

import (
	"sync"
	"sync/atomic"

	"mobispatial/internal/geom"
	"mobispatial/internal/obs"
)

// Source is the live view of the index the cache validates entries against.
// mutable.Pool implements it (per-shard write-version counters); static
// pools are wrapped in Static.
type Source interface {
	NumShards() int
	// Version returns shard i's monotone write-version counter. It must
	// advance (under the shard's write lock, before the write is
	// acknowledged) whenever the shard's visible contents can change.
	Version(i int) uint64
	// ShardBounds returns shard i's current extent; an empty rect means
	// the shard holds nothing.
	ShardBounds(i int) geom.Rect
}

// Static adapts an immutable index to Source: one pseudo-shard whose
// version never moves, so every entry stays valid forever.
type Static struct {
	// Rect is the index extent; an infinite rect is fine (it participates
	// in every query region, which is all a static index needs).
	Rect geom.Rect
}

// NumShards implements Source.
func (s Static) NumShards() int { return 1 }

// Version implements Source.
func (s Static) Version(int) uint64 { return 0 }

// ShardBounds implements Source.
func (s Static) ShardBounds(int) geom.Rect { return s.Rect }

// View is the validity snapshot an entry is stored and checked under: which
// shards could contribute to the query region (Mask bit i) and each
// participant's version, in ascending shard order. Callers reuse one View as
// scratch; BuildView appends into Vers without allocating when capacity
// suffices.
type View struct {
	Mask uint64
	Vers []uint64
}

// participateAll is the Mask sentinel for >64 shards: every shard
// participates and every version is recorded.
const participateAll = ^uint64(0)

// BuildView snapshots src's validity view for a query over region. Per
// shard, the version is read before the bounds: paired with the pre/post
// equality gate on stores, version equality then proves the bounds (and so
// the mask bit) reflect the same shard state as the versions — see the
// package comment and DESIGN.md §16.
func BuildView(src Source, region geom.Rect, v *View) {
	v.Mask = 0
	v.Vers = v.Vers[:0]
	n := src.NumShards()
	if n > 64 {
		v.Mask = participateAll
		for i := 0; i < n; i++ {
			v.Vers = append(v.Vers, src.Version(i))
		}
		return
	}
	for i := 0; i < n; i++ {
		ver := src.Version(i)
		if src.ShardBounds(i).Intersects(region) {
			v.Mask |= 1 << uint(i)
			v.Vers = append(v.Vers, ver)
		}
	}
}

// Equal reports whether two views are identical.
func (v *View) Equal(o *View) bool {
	if v.Mask != o.Mask || len(v.Vers) != len(o.Vers) {
		return false
	}
	for i := range v.Vers {
		if v.Vers[i] != o.Vers[i] {
			return false
		}
	}
	return true
}

// HintOf fingerprints src's full version vector as one non-zero uint64 —
// the epoch hint the serving tier stamps on replies so clients can validate
// semantically cached shipments. Any write anywhere changes the hint
// (conservative: cross-shard collisions aside, hint equality means "nothing
// changed"). Zero is reserved on the wire for "no epoch information".
func HintOf(src Source) uint64 {
	h := uint64(fnvOffset64)
	n := src.NumShards()
	for i := 0; i < n; i++ {
		h = fnvU64(h, src.Version(i))
	}
	if h == 0 {
		h = fnvOffset64
	}
	return h
}

// Unwritten reports whether src has never taken a write (every version
// zero). The serving tier only stamps epoch hints on shipments while this
// holds: a shipment is cut from the master tree, which is the frozen seed
// state — once writes land, the master no longer reflects the live index
// and shipped sub-indexes must not claim currency.
func Unwritten(src Source) bool {
	n := src.NumShards()
	for i := 0; i < n; i++ {
		if src.Version(i) != 0 {
			return false
		}
	}
	return true
}

// Config parameterizes a Cache.
type Config struct {
	// MaxBytes caps the total payload bytes across all stripes; defaults
	// to 64 MB.
	MaxBytes int
	// Stripes is the lock-stripe count, rounded up to a power of two;
	// defaults to 16.
	Stripes int
	// CellSize is the snapping grid pitch in map units; defaults to 512.
	// The cache stores it so every consumer (single queries, batches,
	// CLIs) keys against the same grid.
	CellSize float64
	// MaxResultIDs caps one entry's id count; oversized results bypass
	// the cache (storing them would evict many hot entries for one cold
	// monster). Defaults to 8192.
	MaxResultIDs int
	// Obs receives qcache_* metrics; nil disables them.
	Obs *obs.Hub
}

// DefaultCellSize is the default snapping grid pitch in map units (TIGER
// datasets span ~10^6 units; 512 keeps a hotspot's jittered windows inside
// a handful of cells).
const DefaultCellSize = 512

func (c *Config) fill() {
	if c.MaxBytes <= 0 {
		c.MaxBytes = 64 << 20
	}
	if c.Stripes <= 0 {
		c.Stripes = 16
	}
	if !(c.CellSize > 0) {
		c.CellSize = DefaultCellSize
	}
	if c.MaxResultIDs <= 0 {
		c.MaxResultIDs = 8192
	}
}

// entry is one cached result, linked into its stripe's LRU list.
type entry struct {
	key   Key
	mask  uint64
	vers  []uint64
	ids   []uint32
	segs  []geom.Segment
	dists []float64
	bytes int

	prev, next *entry
}

// entryOverhead approximates one entry's fixed cost (struct, map slot,
// slice headers) for the byte budget.
const entryOverhead = 128

func payloadBytes(nVers, nIDs, nSegs, nDists int) int {
	return entryOverhead + nVers*8 + nIDs*4 + nSegs*32 + nDists*8
}

// stripe is one lock domain: a map, an intrusive LRU list (head = most
// recent), and a small freelist so eviction churn reuses entry slices.
type stripe struct {
	mu    sync.Mutex
	m     map[Key]*entry
	head  *entry
	tail  *entry
	bytes int
	free  *entry
	freeN int
}

// maxFreePerStripe bounds the freelist so dead entries' slices do not pin
// memory past a burst.
const maxFreePerStripe = 32

func (st *stripe) pushFront(e *entry) {
	e.prev = nil
	e.next = st.head
	if st.head != nil {
		st.head.prev = e
	}
	st.head = e
	if st.tail == nil {
		st.tail = e
	}
}

func (st *stripe) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		st.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		st.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (st *stripe) touch(e *entry) {
	if st.head == e {
		return
	}
	st.unlink(e)
	st.pushFront(e)
}

// removeLocked deletes e from the stripe and recycles it.
func (st *stripe) removeLocked(e *entry) {
	st.unlink(e)
	delete(st.m, e.key)
	st.bytes -= e.bytes
	if st.freeN < maxFreePerStripe {
		e.vers = e.vers[:0]
		e.ids = e.ids[:0]
		e.segs = e.segs[:0]
		e.dists = e.dists[:0]
		e.bytes = 0
		e.next = st.free
		st.free = e
		st.freeN++
	}
}

func (st *stripe) alloc() *entry {
	if e := st.free; e != nil {
		st.free = e.next
		st.freeN--
		e.next = nil
		return e
	}
	return &entry{}
}

// Cache is the striped LRU. All methods are safe for concurrent use.
type Cache struct {
	cell      float64
	maxIDs    int
	maxStripe int
	mask      uint64
	stripes   []stripe

	hits, misses, stores, invals atomic.Uint64
	bypasses, races, evictions   atomic.Uint64
	entries, bytes               atomic.Int64

	m cacheMetrics
}

type cacheMetrics struct {
	hits, misses, stores, invals *obs.Counter
	bypasses, races, evictions   *obs.Counter
	entriesG, bytesG             *obs.Gauge
}

func newCacheMetrics(h *obs.Hub) cacheMetrics {
	var m cacheMetrics
	if h == nil || h.Reg == nil {
		return m // nil handles are no-ops
	}
	m.hits = h.Reg.Counter("qcache_hits_total")
	m.misses = h.Reg.Counter("qcache_misses_total")
	m.stores = h.Reg.Counter("qcache_stores_total")
	m.invals = h.Reg.Counter("qcache_invalidations_total")
	m.bypasses = h.Reg.Counter("qcache_bypass_total")
	m.races = h.Reg.Counter("qcache_store_races_total")
	m.evictions = h.Reg.Counter("qcache_evictions_total")
	m.entriesG = h.Reg.Gauge("qcache_entries")
	m.bytesG = h.Reg.Gauge("qcache_bytes")
	return m
}

// New builds a Cache.
func New(cfg Config) *Cache {
	cfg.fill()
	stripes := 1
	for stripes < cfg.Stripes {
		stripes <<= 1
	}
	c := &Cache{
		cell:      cfg.CellSize,
		maxIDs:    cfg.MaxResultIDs,
		maxStripe: cfg.MaxBytes / stripes,
		mask:      uint64(stripes - 1),
		stripes:   make([]stripe, stripes),
		m:         newCacheMetrics(cfg.Obs),
	}
	if c.maxStripe < payloadBytes(1, 1, 1, 0) {
		c.maxStripe = payloadBytes(1, 1, 1, 0)
	}
	for i := range c.stripes {
		c.stripes[i].m = make(map[Key]*entry)
	}
	return c
}

// CellSize returns the snapping grid pitch every key must be built with.
func (c *Cache) CellSize() float64 { return c.cell }

// MaxResultIDs returns the per-entry id cap.
func (c *Cache) MaxResultIDs() int { return c.maxIDs }

// Get looks k up under view v and, on a hit, appends the stored payload to
// the three destination slices (any may be non-nil capacity-bearing scratch;
// the copy happens under the stripe lock, so the returned slices never alias
// cache memory). A present entry whose view mismatches is deleted and
// counted as an invalidation plus a miss.
func (c *Cache) Get(k Key, v *View, ids []uint32, segs []geom.Segment, dists []float64) ([]uint32, []geom.Segment, []float64, bool) {
	st := &c.stripes[k.hash()&c.mask]
	st.mu.Lock()
	e := st.m[k]
	if e == nil {
		st.mu.Unlock()
		c.misses.Add(1)
		c.m.misses.Inc()
		return ids, segs, dists, false
	}
	if e.mask != v.Mask || !versEq(e.vers, v.Vers) {
		eb := e.bytes
		st.removeLocked(e)
		st.mu.Unlock()
		c.sizeDelta(-1, -int64(eb))
		c.invals.Add(1)
		c.m.invals.Inc()
		c.misses.Add(1)
		c.m.misses.Inc()
		return ids, segs, dists, false
	}
	st.touch(e)
	ids = append(ids, e.ids...)
	segs = append(segs, e.segs...)
	dists = append(dists, e.dists...)
	st.mu.Unlock()
	c.hits.Add(1)
	c.m.hits.Inc()
	return ids, segs, dists, true
}

func versEq(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Put stores a result computed under pre, revalidated against post (the view
// rebuilt after execution): if a write raced the traversal the views differ
// and the store is dropped — caching a result that mixes shard states would
// poison later hits. Oversized results are dropped too.
func (c *Cache) Put(k Key, pre, post *View, ids []uint32, segs []geom.Segment, dists []float64) {
	if len(ids) > c.maxIDs {
		c.bypasses.Add(1)
		c.m.bypasses.Inc()
		return
	}
	if !pre.Equal(post) {
		c.races.Add(1)
		c.m.races.Inc()
		return
	}
	nb := payloadBytes(len(pre.Vers), len(ids), len(segs), len(dists))
	st := &c.stripes[k.hash()&c.mask]
	st.mu.Lock()
	var dEntries, dBytes int64
	e := st.m[k]
	if e != nil {
		st.bytes -= e.bytes
		dBytes -= int64(e.bytes)
		st.touch(e)
	} else {
		e = st.alloc()
		e.key = k
		st.m[k] = e
		st.pushFront(e)
		dEntries++
	}
	e.mask = pre.Mask
	e.vers = append(e.vers[:0], pre.Vers...)
	e.ids = append(e.ids[:0], ids...)
	e.segs = append(e.segs[:0], segs...)
	e.dists = append(e.dists[:0], dists...)
	e.bytes = nb
	st.bytes += nb
	dBytes += int64(nb)
	var evicted uint64
	for st.bytes > c.maxStripe && st.tail != nil && st.tail != e {
		dEntries--
		dBytes -= int64(st.tail.bytes)
		st.removeLocked(st.tail)
		evicted++
	}
	st.mu.Unlock()
	c.sizeDelta(dEntries, dBytes)
	c.stores.Add(1)
	c.m.stores.Inc()
	if evicted > 0 {
		c.evictions.Add(evicted)
		c.m.evictions.Add(evicted)
	}
}

// sizeDelta folds one stripe mutation into the global size atomics and
// republishes the gauges (miss/store path only; hits touch neither).
func (c *Cache) sizeDelta(dEntries, dBytes int64) {
	e := c.entries.Add(dEntries)
	b := c.bytes.Add(dBytes)
	c.m.entriesG.Set(float64(e))
	c.m.bytesG.Set(float64(b))
}

// Bypass counts a query shape the serving tier declined to cache (dx pools,
// unsnappable windows, bounded NN legs).
func (c *Cache) Bypass() {
	c.bypasses.Add(1)
	c.m.bypasses.Inc()
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits, Misses, Stores, Invalidations uint64
	Bypasses, StoreRaces, Evictions     uint64
	Entries                             int
	Bytes                               int
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// Stats sums the stripe states.
func (c *Cache) Stats() Stats {
	s := Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Stores:        c.stores.Load(),
		Invalidations: c.invals.Load(),
		Bypasses:      c.bypasses.Load(),
		StoreRaces:    c.races.Load(),
		Evictions:     c.evictions.Load(),
	}
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		s.Entries += len(st.m)
		s.Bytes += st.bytes
		st.mu.Unlock()
	}
	return s
}
