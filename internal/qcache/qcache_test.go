package qcache

import (
	"math"
	"testing"

	"mobispatial/internal/geom"
)

func rect(x0, y0, x1, y1 float64) geom.Rect {
	return geom.Rect{Min: geom.Point{X: x0, Y: y0}, Max: geom.Point{X: x1, Y: y1}}
}

func TestRangeKeySnapsJitterToOneEntry(t *testing.T) {
	const cell = 100.0
	a, snapA, ok := RangeKey(rect(10, 10, 90, 90), cell, false)
	if !ok {
		t.Fatal("window should be cacheable")
	}
	b, snapB, ok := RangeKey(rect(12.5, 7.25, 93, 88), cell, false)
	if !ok {
		t.Fatal("jittered window should be cacheable")
	}
	if a != b {
		t.Fatalf("jittered windows in the same cells should share a key: %v vs %v", a, b)
	}
	if snapA != snapB {
		t.Fatalf("snapped windows differ: %v vs %v", snapA, snapB)
	}
	want := rect(0, 0, 100, 100)
	if snapA != want {
		t.Fatalf("snap = %v, want %v", snapA, want)
	}
}

func TestRangeKeyBoundaryStraddle(t *testing.T) {
	const cell = 100.0
	// Straddles the x=100 grid line: the snap must widen to cover both cells.
	k, snap, ok := RangeKey(rect(90, 10, 110, 90), cell, false)
	if !ok {
		t.Fatal("straddling window should be cacheable")
	}
	if want := rect(0, 0, 200, 100); snap != want {
		t.Fatalf("snap = %v, want %v", snap, want)
	}
	in, _, _ := RangeKey(rect(10, 10, 90, 90), cell, false)
	if k == in {
		t.Fatal("straddling window must not collide with the single-cell window")
	}
	// Exactly on the boundary: Max.X = 100 floors into cell 1, so the snap
	// still covers the closed window.
	_, snap, ok = RangeKey(rect(10, 10, 100, 90), cell, false)
	if !ok || !snap.ContainsRect(rect(10, 10, 100, 90)) {
		t.Fatalf("boundary window not covered by snap %v", snap)
	}
	// Negative coordinates floor toward -inf, not toward zero.
	_, snap, ok = RangeKey(rect(-10, -10, 10, 10), cell, false)
	if !ok {
		t.Fatal("negative window should be cacheable")
	}
	if want := rect(-100, -100, 100, 100); snap != want {
		t.Fatalf("negative snap = %v, want %v", snap, want)
	}
}

func TestRangeKeyFilterKindSeparate(t *testing.T) {
	w := rect(10, 10, 90, 90)
	a, _, _ := RangeKey(w, 100, false)
	b, _, _ := RangeKey(w, 100, true)
	if a == b {
		t.Fatal("exact and filter range keys must not collide")
	}
	if a.Kind() != KindRange || b.Kind() != KindRangeFilter {
		t.Fatalf("kinds = %v, %v", a.Kind(), b.Kind())
	}
}

func TestRangeKeyUncacheable(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name string
		w    geom.Rect
		cell float64
	}{
		{"inverted", rect(10, 10, -10, 20), 100},
		{"empty-canonical", geom.EmptyRect(), 100},
		{"nan-min", rect(nan, 0, 1, 1), 100},
		{"nan-max", rect(0, 0, 1, nan), 100},
		{"inf-max", rect(0, 0, inf, 1), 100},
		{"neg-inf-min", rect(math.Inf(-1), 0, 1, 1), 100},
		{"overflow", rect(0, 0, 1e18, 1), 100},
		{"zero-cell", rect(0, 0, 1, 1), 0},
		{"nan-cell", rect(0, 0, 1, 1), nan},
	}
	for _, tc := range cases {
		if _, _, ok := RangeKey(tc.w, tc.cell, false); ok {
			t.Errorf("%s: should be uncacheable", tc.name)
		}
	}
}

func TestPointKey(t *testing.T) {
	k, cr, ok := PointKey(geom.Point{X: 150, Y: -50}, 100)
	if !ok {
		t.Fatal("point should be cacheable")
	}
	if want := rect(100, -100, 200, 0); cr != want {
		t.Fatalf("cell rect = %v, want %v", cr, want)
	}
	if !cr.ContainsPoint(geom.Point{X: 150, Y: -50}) {
		t.Fatal("cell must contain the point")
	}
	k2, _, _ := PointKey(geom.Point{X: 199.9, Y: -0.1}, 100)
	if k != k2 {
		t.Fatal("points in one cell must share a key")
	}
	if _, _, ok := PointKey(geom.Point{X: math.NaN(), Y: 0}, 100); ok {
		t.Fatal("NaN point should be uncacheable")
	}
	if _, _, ok := PointKey(geom.Point{X: math.Inf(1), Y: 0}, 100); ok {
		t.Fatal("Inf point should be uncacheable")
	}
}

func TestNNKey(t *testing.T) {
	p := geom.Point{X: 1.5, Y: -2.25}
	k0, ok := NNKey(p, 0)
	if !ok {
		t.Fatal("NN key should build")
	}
	k1, _ := NNKey(p, 1)
	if k0 != k1 {
		t.Fatal("k=0 and k=1 must share an entry")
	}
	k5, _ := NNKey(p, 5)
	if k5 == k1 {
		t.Fatal("different k must not collide")
	}
	if _, ok := NNKey(geom.Point{X: math.NaN()}, 1); ok {
		t.Fatal("NaN point should be uncacheable")
	}
	if _, ok := NNKey(p, 1<<17); ok {
		t.Fatal("oversized k should be uncacheable")
	}
}

type fakeSource struct {
	vers   []uint64
	bounds []geom.Rect
}

func (f *fakeSource) NumShards() int              { return len(f.vers) }
func (f *fakeSource) Version(i int) uint64        { return f.vers[i] }
func (f *fakeSource) ShardBounds(i int) geom.Rect { return f.bounds[i] }

func TestBuildView(t *testing.T) {
	src := &fakeSource{
		vers:   []uint64{7, 8, 9},
		bounds: []geom.Rect{rect(0, 0, 100, 100), rect(200, 0, 300, 100), geom.EmptyRect()},
	}
	var v View
	BuildView(src, rect(50, 50, 60, 60), &v)
	if v.Mask != 1 {
		t.Fatalf("mask = %b, want 1 (only shard 0 intersects)", v.Mask)
	}
	if len(v.Vers) != 1 || v.Vers[0] != 7 {
		t.Fatalf("vers = %v, want [7]", v.Vers)
	}
	BuildView(src, rect(50, 50, 250, 60), &v)
	if v.Mask != 3 || len(v.Vers) != 2 || v.Vers[1] != 8 {
		t.Fatalf("mask=%b vers=%v, want mask=11b vers=[7 8]", v.Mask, v.Vers)
	}
	// The empty shard never participates, even for an infinite region.
	all := geom.Rect{Min: geom.Point{X: math.Inf(-1), Y: math.Inf(-1)},
		Max: geom.Point{X: math.Inf(1), Y: math.Inf(1)}}
	BuildView(src, all, &v)
	if v.Mask != 3 {
		t.Fatalf("mask = %b, want 11b", v.Mask)
	}
}

func TestBuildViewManyShards(t *testing.T) {
	src := &fakeSource{}
	for i := 0; i < 70; i++ {
		src.vers = append(src.vers, uint64(i))
		src.bounds = append(src.bounds, rect(0, 0, 1, 1))
	}
	var v View
	BuildView(src, rect(100, 100, 101, 101), &v)
	if v.Mask != participateAll || len(v.Vers) != 70 {
		t.Fatalf("past 64 shards every shard must participate: mask=%x n=%d", v.Mask, len(v.Vers))
	}
}

func seg(x float64) geom.Segment {
	return geom.Segment{A: geom.Point{X: x, Y: 0}, B: geom.Point{X: x + 1, Y: 1}}
}

func TestCacheHitMissInvalidate(t *testing.T) {
	c := New(Config{})
	src := &fakeSource{vers: []uint64{0}, bounds: []geom.Rect{rect(0, 0, 1000, 1000)}}
	k, snap, _ := RangeKey(rect(10, 10, 90, 90), c.CellSize(), false)

	var pre, post View
	BuildView(src, snap, &pre)
	ids, segs, _, hit := c.Get(k, &pre, nil, nil, nil)
	if hit {
		t.Fatal("empty cache must miss")
	}
	BuildView(src, snap, &post)
	c.Put(k, &pre, &post, []uint32{1, 2, 3}, []geom.Segment{seg(1), seg(2), seg(3)}, nil)

	ids, segs, _, hit = c.Get(k, &pre, ids[:0], segs[:0], nil)
	if !hit || len(ids) != 3 || len(segs) != 3 || ids[1] != 2 {
		t.Fatalf("hit=%v ids=%v segs=%d", hit, ids, len(segs))
	}

	// A version bump kills the entry lazily at the next lookup.
	src.vers[0] = 1
	BuildView(src, snap, &pre)
	_, _, _, hit = c.Get(k, &pre, ids[:0], segs[:0], nil)
	if hit {
		t.Fatal("stale entry served after version bump")
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.Hits != 1 || st.Misses != 2 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheMaskChangeInvalidates(t *testing.T) {
	c := New(Config{})
	src := &fakeSource{
		vers:   []uint64{0, 0},
		bounds: []geom.Rect{rect(0, 0, 100, 100), geom.EmptyRect()},
	}
	k, snap, _ := RangeKey(rect(10, 10, 90, 90), c.CellSize(), false)
	var pre, post View
	BuildView(src, snap, &pre)
	BuildView(src, snap, &post)
	c.Put(k, &pre, &post, []uint32{1}, []geom.Segment{seg(1)}, nil)

	// Shard 1 grows into the window: the mask changes even though shard 0's
	// version is untouched, so the entry must die.
	src.vers[1] = 1
	src.bounds[1] = rect(50, 50, 60, 60)
	BuildView(src, snap, &pre)
	if _, _, _, hit := c.Get(k, &pre, nil, nil, nil); hit {
		t.Fatal("mask growth must invalidate")
	}
}

func TestCacheStoreRaceDropped(t *testing.T) {
	c := New(Config{})
	src := &fakeSource{vers: []uint64{0}, bounds: []geom.Rect{rect(0, 0, 100, 100)}}
	k, snap, _ := RangeKey(rect(10, 10, 90, 90), c.CellSize(), false)
	var pre, post View
	BuildView(src, snap, &pre)
	src.vers[0] = 1 // a write lands mid-execution
	BuildView(src, snap, &post)
	c.Put(k, &pre, &post, []uint32{1}, []geom.Segment{seg(1)}, nil)
	st := c.Stats()
	if st.Stores != 0 || st.StoreRaces != 1 || st.Entries != 0 {
		t.Fatalf("raced store must be dropped: %+v", st)
	}
}

func TestCacheOversizeBypass(t *testing.T) {
	c := New(Config{MaxResultIDs: 4})
	src := &fakeSource{vers: []uint64{0}, bounds: []geom.Rect{rect(0, 0, 100, 100)}}
	k, snap, _ := RangeKey(rect(10, 10, 90, 90), c.CellSize(), false)
	var v View
	BuildView(src, snap, &v)
	c.Put(k, &v, &v, make([]uint32, 5), make([]geom.Segment, 5), nil)
	if st := c.Stats(); st.Entries != 0 || st.Bypasses != 1 {
		t.Fatalf("oversize result must bypass: %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// One stripe, a budget that holds ~3 small entries.
	c := New(Config{Stripes: 1, MaxBytes: 3 * payloadBytes(1, 1, 1, 0), CellSize: 100})
	src := &fakeSource{vers: []uint64{0}, bounds: []geom.Rect{rect(-1e9, -1e9, 1e9, 1e9)}}
	var v View

	put := func(i int) Key {
		w := rect(float64(i*1000), 0, float64(i*1000)+10, 10)
		k, snap, ok := RangeKey(w, c.CellSize(), false)
		if !ok {
			t.Fatalf("window %d uncacheable", i)
		}
		BuildView(src, snap, &v)
		c.Put(k, &v, &v, []uint32{uint32(i)}, []geom.Segment{seg(float64(i))}, nil)
		return k
	}
	k0 := put(0)
	k1 := put(1)
	k2 := put(2)
	// Touch k0 so k1 is the LRU victim when k3 arrives.
	if _, _, _, hit := c.Get(k0, &v, nil, nil, nil); !hit {
		t.Fatal("k0 should be resident")
	}
	put(3)
	if _, _, _, hit := c.Get(k1, &v, nil, nil, nil); hit {
		t.Fatal("k1 should have been evicted as LRU")
	}
	if _, _, _, hit := c.Get(k0, &v, nil, nil, nil); !hit {
		t.Fatal("k0 (recently used) should survive")
	}
	if _, _, _, hit := c.Get(k2, &v, nil, nil, nil); !hit {
		t.Fatal("k2 should survive")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheGetCopiesOut(t *testing.T) {
	c := New(Config{})
	src := &fakeSource{vers: []uint64{0}, bounds: []geom.Rect{rect(0, 0, 100, 100)}}
	k, snap, _ := RangeKey(rect(10, 10, 90, 90), c.CellSize(), false)
	var v View
	BuildView(src, snap, &v)
	c.Put(k, &v, &v, []uint32{1, 2}, []geom.Segment{seg(1), seg(2)}, []float64{0.5, 1.5})
	ids, segs, dists, hit := c.Get(k, &v, nil, nil, nil)
	if !hit {
		t.Fatal("miss")
	}
	ids[0] = 99
	segs[0] = seg(99)
	dists[0] = 99
	ids2, segs2, dists2, _ := c.Get(k, &v, nil, nil, nil)
	if ids2[0] != 1 || segs2[0] != seg(1) || dists2[0] != 0.5 {
		t.Fatal("Get must copy out, not alias cache memory")
	}
}

func TestHintOfAndUnwritten(t *testing.T) {
	src := &fakeSource{vers: []uint64{0, 0}, bounds: []geom.Rect{rect(0, 0, 1, 1), rect(0, 0, 1, 1)}}
	if !Unwritten(src) {
		t.Fatal("all-zero versions must report unwritten")
	}
	h0 := HintOf(src)
	if h0 == 0 {
		t.Fatal("hint must never be zero")
	}
	if HintOf(src) != h0 {
		t.Fatal("hint must be deterministic")
	}
	src.vers[1] = 1
	if Unwritten(src) {
		t.Fatal("a write must clear unwritten")
	}
	if HintOf(src) == h0 {
		t.Fatal("a version bump must change the hint")
	}
	if HintOf(Static{}) == 0 {
		t.Fatal("static hint must be non-zero")
	}
}

func TestStaticSource(t *testing.T) {
	s := Static{Rect: rect(0, 0, 10, 10)}
	var v View
	BuildView(s, rect(5, 5, 6, 6), &v)
	if v.Mask != 1 || len(v.Vers) != 1 || v.Vers[0] != 0 {
		t.Fatalf("static view = %+v", v)
	}
	BuildView(s, rect(100, 100, 101, 101), &v)
	if v.Mask != 0 {
		t.Fatalf("out-of-extent region should not participate: %+v", v)
	}
}
