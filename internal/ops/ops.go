// Package ops defines the instrumentation boundary between the spatial query
// algorithms and the performance/energy simulators.
//
// The reproduction follows the SimplePower methodology (§5.1 of the paper):
// the workload is *executed*, not modeled in closed form, and the execution
// emits two streams that a machine model turns into cycles and Joules:
//
//   - abstract operations (MBR test, node visit, geometric refinement, ...)
//     that stand for short straight-line instruction sequences, and
//   - a memory-reference trace of every index node, data record, and message
//     buffer touched, with byte-exact simulated addresses.
//
// The query code in internal/rtree and the protocol code in internal/proto
// call a Recorder; internal/cpu provides Recorder implementations that model
// the paper's client (Table 3) and server (Table 4) machines. A no-op
// Recorder lets the same code run as a plain spatial library with zero
// simulation overhead.
package ops

// Op identifies an abstract operation: a short straight-line sequence of
// instructions whose cost the CPU model knows statically.
type Op uint8

// The abstract operation vocabulary. Instruction budgets for each op live in
// the CPU model (internal/cpu); the comments here describe what the op
// stands for.
const (
	// OpMBRTest is one rectangle-overlap or point-in-rectangle test during
	// filtering: 4 compares with loads of one entry's MBR.
	OpMBRTest Op = iota
	// OpNodeVisit is the per-node loop setup of the index traversal: header
	// decode, bounds setup, stack push/pop.
	OpNodeVisit
	// OpDistCalc is one MINDIST/MINMAXDIST evaluation in the branch-and-
	// bound nearest-neighbor search.
	OpDistCalc
	// OpHeapOp is one priority-queue push or pop in the NN search.
	OpHeapOp
	// OpRefineRange is one exact segment-vs-window intersection test (the
	// refinement step of a range query).
	OpRefineRange
	// OpRefinePoint is one exact point-on-segment test (the refinement step
	// of a point query).
	OpRefinePoint
	// OpRefineNN is one exact point-to-segment distance evaluation.
	OpRefineNN
	// OpResultAppend is appending one hit to the result list.
	OpResultAppend
	// OpCopyWord is one 4-byte word of a buffer copy (packing results,
	// copying received payloads).
	OpCopyWord
	// OpProtoPacket is the per-packet TCP/IP processing: header
	// construction/parse, checksum setup, interrupt handling.
	OpProtoPacket
	// OpProtoByte is the per-byte protocol cost (checksumming, copy into the
	// NIC buffer).
	OpProtoByte
	// OpIndexBuildEntry is one entry emitted during a bulk load or subtree
	// extraction (sort amortization included) — charged to whoever builds.
	OpIndexBuildEntry
	// OpDispatch is the fixed per-query dispatch overhead: parsing the
	// request, selecting the query routine, formatting the reply descriptor.
	OpDispatch
	numOps
)

// NumOps is the number of distinct abstract operations.
const NumOps = int(numOps)

var opNames = [NumOps]string{
	"MBRTest", "NodeVisit", "DistCalc", "HeapOp",
	"RefineRange", "RefinePoint", "RefineNN", "ResultAppend",
	"CopyWord", "ProtoPacket", "ProtoByte", "IndexBuildEntry", "Dispatch",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if int(o) < NumOps {
		return opNames[o]
	}
	return "Op(?)"
}

// Recorder receives the execution streams. Implementations must tolerate
// size 0 memory accesses (they are no-ops).
type Recorder interface {
	// Op records n executions of abstract operation op.
	Op(op Op, n int)
	// Load records a data-memory read of size bytes at simulated address
	// addr.
	Load(addr uint64, size int)
	// Store records a data-memory write of size bytes at simulated address
	// addr.
	Store(addr uint64, size int)
}

// Null is a Recorder that discards everything; it lets the query code run as
// an ordinary spatial library.
type Null struct{}

// Op implements Recorder.
func (Null) Op(Op, int) {}

// Load implements Recorder.
func (Null) Load(uint64, int) {}

// Store implements Recorder.
func (Null) Store(uint64, int) {}

// Counts is a Recorder that tallies operation and access counts. It is used
// by tests and by the analytic advisor to characterize workloads without a
// full machine model.
type Counts struct {
	Ops        [NumOps]int64
	LoadBytes  int64
	StoreBytes int64
	LoadCalls  int64
	StoreCalls int64
}

// Op implements Recorder.
func (c *Counts) Op(op Op, n int) { c.Ops[op] += int64(n) }

// Load implements Recorder.
func (c *Counts) Load(_ uint64, size int) {
	c.LoadCalls++
	c.LoadBytes += int64(size)
}

// Store implements Recorder.
func (c *Counts) Store(_ uint64, size int) {
	c.StoreCalls++
	c.StoreBytes += int64(size)
}

// Total returns the total number of abstract operations recorded.
func (c *Counts) Total() int64 {
	var t int64
	for _, n := range c.Ops {
		t += n
	}
	return t
}

// Reset zeroes all counters.
func (c *Counts) Reset() { *c = Counts{} }

// Simulated address-space layout. Each major structure lives in its own
// region so traces from different components never alias accidentally.
const (
	// CodeBase is where abstract-operation code footprints live (I-cache).
	CodeBase uint64 = 0x0040_0000
	// IndexBase is where R-tree nodes are laid out by the bulk loader.
	IndexBase uint64 = 0x1000_0000
	// DataBase is where data records (line segments + attributes) live.
	DataBase uint64 = 0x2000_0000
	// BufferBase is where protocol/message buffers live.
	BufferBase uint64 = 0x3000_0000
	// ScratchBase is for result lists and other transient structures.
	ScratchBase uint64 = 0x3800_0000
)
