package ops

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCountsRecorder(t *testing.T) {
	var c Counts
	c.Op(OpMBRTest, 3)
	c.Op(OpRefineRange, 1)
	c.Load(0x1000, 20)
	c.Store(0x2000, 8)
	if c.Ops[OpMBRTest] != 3 || c.Ops[OpRefineRange] != 1 {
		t.Fatalf("op counts: %+v", c.Ops)
	}
	if c.LoadBytes != 20 || c.StoreBytes != 8 || c.LoadCalls != 1 || c.StoreCalls != 1 {
		t.Fatalf("access counts: %+v", c)
	}
	if c.Total() != 4 {
		t.Fatalf("Total = %d", c.Total())
	}
	c.Reset()
	if c.Total() != 0 || c.LoadBytes != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestNullRecorder(t *testing.T) {
	var n Null
	n.Op(OpMBRTest, 5)
	n.Load(0, 100)
	n.Store(0, 100)
	// Nothing to assert — it must simply not panic.
}

func TestOpStrings(t *testing.T) {
	for i := 0; i < NumOps; i++ {
		if s := Op(i).String(); s == "" || s == "Op(?)" {
			t.Errorf("op %d has no name", i)
		}
	}
	if Op(200).String() != "Op(?)" {
		t.Error("unknown op string")
	}
}

func TestAddressRegionsDisjoint(t *testing.T) {
	regions := []uint64{CodeBase, IndexBase, DataBase, BufferBase, ScratchBase}
	for i := 1; i < len(regions); i++ {
		if regions[i] <= regions[i-1] {
			t.Fatalf("address regions not ascending: %#x after %#x", regions[i], regions[i-1])
		}
	}
}

func TestTraceWriter(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.Op(OpMBRTest, 3)
	tw.Load(0x10000200, 20)
	tw.Store(ScratchBase, 4)
	tw.Op(OpMBRTest, 0) // ignored
	tw.Load(0, -1)      // ignored
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"op MBRTest x3", "ld 0x10000200 20", "st 0x38000000 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q in %q", want, out)
		}
	}
	if strings.Count(out, "\n") != 3 {
		t.Errorf("trace has %d lines, want 3", strings.Count(out, "\n"))
	}
}

func TestTee(t *testing.T) {
	var a, b Counts
	tee := Tee{&a, &b}
	tee.Op(OpNodeVisit, 2)
	tee.Load(0x100, 16)
	tee.Store(0x200, 4)
	if a != b {
		t.Fatalf("tee receivers diverged: %+v vs %+v", a, b)
	}
	if a.Ops[OpNodeVisit] != 2 || a.LoadBytes != 16 || a.StoreBytes != 4 {
		t.Fatalf("tee lost events: %+v", a)
	}
}

func TestLocked(t *testing.T) {
	var c Counts
	l := &Locked{R: &c}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Op(OpMBRTest, 1)
				l.Load(0x100, 4)
				l.Store(0x200, 4)
			}
		}()
	}
	wg.Wait()
	if c.Ops[OpMBRTest] != 8000 || c.LoadCalls != 8000 || c.StoreCalls != 8000 {
		t.Fatalf("lost events under concurrency: %+v", c)
	}
}
