package ops

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// Tracing and composition utilities around Recorder: a streaming trace
// writer for debugging cost-model questions ("what exactly does this query
// touch?"), a tee for recording while simulating, and a prefix-labeling
// wrapper for multi-phase traces.

// TraceWriter is a Recorder that streams a human-readable event log:
//
//	op MBRTest x3
//	ld 0x10000200 20
//	st 0x38000000 4
//
// It buffers internally; call Flush (or Close the underlying writer's owner)
// when done. Safe for single-goroutine use, like all Recorders.
type TraceWriter struct {
	w   *bufio.Writer
	err error
}

// NewTraceWriter wraps w.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: bufio.NewWriter(w)}
}

// Op implements Recorder.
func (t *TraceWriter) Op(op Op, n int) {
	if t.err != nil || n <= 0 {
		return
	}
	_, t.err = fmt.Fprintf(t.w, "op %s x%d\n", op, n)
}

// Load implements Recorder.
func (t *TraceWriter) Load(addr uint64, size int) {
	if t.err != nil || size <= 0 {
		return
	}
	_, t.err = fmt.Fprintf(t.w, "ld %#x %d\n", addr, size)
}

// Store implements Recorder.
func (t *TraceWriter) Store(addr uint64, size int) {
	if t.err != nil || size <= 0 {
		return
	}
	_, t.err = fmt.Fprintf(t.w, "st %#x %d\n", addr, size)
}

// Flush drains the buffer and returns the first write error, if any.
func (t *TraceWriter) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Tee duplicates every event to all receivers (e.g. a machine model plus a
// trace file).
type Tee []Recorder

// Op implements Recorder.
func (t Tee) Op(op Op, n int) {
	for _, r := range t {
		r.Op(op, n)
	}
}

// Load implements Recorder.
func (t Tee) Load(addr uint64, size int) {
	for _, r := range t {
		r.Load(addr, size)
	}
}

// Store implements Recorder.
func (t Tee) Store(addr uint64, size int) {
	for _, r := range t {
		r.Store(addr, size)
	}
}

// Locked wraps a Recorder for use from multiple goroutines (the harness
// normally gives each goroutine its own system; Locked covers ad-hoc
// aggregation in tools).
type Locked struct {
	mu sync.Mutex
	R  Recorder
}

// Op implements Recorder.
func (l *Locked) Op(op Op, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.R.Op(op, n)
}

// Load implements Recorder.
func (l *Locked) Load(addr uint64, size int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.R.Load(addr, size)
}

// Store implements Recorder.
func (l *Locked) Store(addr uint64, size int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.R.Store(addr, size)
}
