package rstar

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
)

func randItems(n int, seed int64) ([]Item, []geom.Segment) {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	segs := make([]geom.Segment, n)
	for i := range items {
		a := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		s := geom.Segment{
			A: a,
			B: geom.Point{X: a.X + rng.Float64()*20 - 10, Y: a.Y + rng.Float64()*20 - 10},
		}
		segs[i] = s
		items[i] = Item{MBR: s.MBR(), ID: uint32(i)}
	}
	return items, segs
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NodeBytes: HeaderBytes + 3*EntryBytes}); err == nil {
		t.Error("max-entries-3 config accepted")
	}
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatal("fresh tree malformed")
	}
}

func TestInsertInvariants(t *testing.T) {
	items, _ := randItems(3000, 1)
	tr, err := BuildByInsertion(items, Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsUnderSmallNodes(t *testing.T) {
	items, _ := randItems(800, 2)
	tr, err := New(Config{NodeBytes: HeaderBytes + 8*EntryBytes}) // max 8 entries
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		tr.Insert(it.MBR, it.ID, ops.Null{})
		if i%101 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 3 {
		t.Fatalf("800 items with fanout 8 in height %d", tr.Height())
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	items, segs := randItems(3000, 3)
	tr, err := BuildByInsertion(items, Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 100; q++ {
		w := geom.Rect{Min: geom.Point{X: rng.Float64() * 950, Y: rng.Float64() * 950}}
		w.Max = geom.Point{X: w.Min.X + rng.Float64()*80, Y: w.Min.Y + rng.Float64()*80}
		got := tr.Search(w, ops.Null{})
		var want []uint32
		for i, s := range segs {
			if w.Intersects(s.MBR()) {
				want = append(want, uint32(i))
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: mismatch at %d", q, i)
			}
		}
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	items, segs := randItems(2000, 5)
	tr, err := BuildByInsertion(items, Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for q := 0; q < 100; q++ {
		p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		df := func(id uint32) float64 { return segs[id].DistToPoint(p) }
		_, d, ok := tr.Nearest(p, df, ops.Null{})
		if !ok {
			t.Fatal("found nothing")
		}
		best := math.Inf(1)
		for _, s := range segs {
			if dd := s.DistToPoint(p); dd < best {
				best = dd
			}
		}
		if math.Abs(d-best) > 1e-9 {
			t.Fatalf("query %d: NN %g vs brute %g", q, d, best)
		}
	}
}

// TestRStarBeatsGuttmanQuality: the R* split/reinsertion heuristics produce
// a tree with less node overlap, measured as window-query node visits.
func TestRStarBeatsGuttmanQuality(t *testing.T) {
	items, _ := randItems(20000, 7)
	star, err := BuildByInsertion(items, Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	if err := star.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Compare against the packed tree too: packed should still win (the
	// paper's §3 point).
	rItems := make([]rtree.Item, len(items))
	for i, it := range items {
		rItems[i] = rtree.Item{MBR: it.MBR, ID: it.ID}
	}
	packed, err := rtree.Build(rItems, rtree.Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	var sv, pv int64
	for q := 0; q < 50; q++ {
		w := geom.Rect{Min: geom.Point{X: rng.Float64() * 900, Y: rng.Float64() * 900}}
		w.Max = geom.Point{X: w.Min.X + 60, Y: w.Min.Y + 60}
		var sr, pr ops.Counts
		star.Search(w, &sr)
		packed.Search(w, &pr)
		sv += sr.Ops[ops.OpNodeVisit]
		pv += pr.Ops[ops.OpNodeVisit]
	}
	if pv >= sv {
		t.Errorf("packed visits %d not below R* %d — bulk loading should still win on static data", pv, sv)
	}
}

func TestEmptyTreeQueries(t *testing.T) {
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Search(geom.Rect{Max: geom.Point{X: 1, Y: 1}}, ops.Null{}); len(got) != 0 {
		t.Fatal("empty search returned results")
	}
	if _, _, ok := tr.Nearest(geom.Point{}, nil, ops.Null{}); ok {
		t.Fatal("empty NN found something")
	}
}

func BenchmarkInsert(b *testing.B) {
	items, _ := randItems(100000, 9)
	tr, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := items[i%len(items)]
		tr.Insert(it.MBR, it.ID, ops.Null{})
	}
}
