// Package rstar implements the R*-tree of Beckmann, Kriegel, Schneider, and
// Seeger — the improved dynamic R-tree variant the paper's §3 discusses
// alongside Guttman's original and the R+-tree: structures that "attempt to
// give better balanced (and efficient) trees by dynamically adapting to the
// insertion pattern", yet still lose to bulk loading on static data.
//
// The implementation follows the published algorithm: ChooseSubtree picks by
// minimum overlap enlargement at the leaf level (minimum area enlargement
// above), splits choose the axis by minimum margin sum and the distribution
// by minimum overlap, and the first overflow on each level per insertion
// triggers a forced reinsertion of the 30 % most-distant entries instead of
// an immediate split.
//
// It shares the physical layout constants and the access-method contract of
// the other index structures and emits its work to an ops.Recorder.
package rstar

import (
	"fmt"
	"math"
	"sort"

	"mobispatial/internal/geom"
	"mobispatial/internal/index"
	"mobispatial/internal/ops"
)

// Layout constants, matching internal/rtree.
const (
	HeaderBytes      = 8
	EntryBytes       = 20
	DefaultNodeBytes = 512
)

// Config controls the tree shape.
type Config struct {
	// NodeBytes determines the maximum entries per node. Default 512.
	NodeBytes int
	// MinFillRatio is m/M; the R*-tree paper recommends 0.4.
	MinFillRatio float64
	// ReinsertFraction is the share of entries force-reinserted on the
	// first overflow of a level; the paper recommends 0.3.
	ReinsertFraction float64
	// BaseAddr of the node arena; defaults to ops.IndexBase.
	BaseAddr uint64
}

func (c *Config) fill() {
	if c.NodeBytes == 0 {
		c.NodeBytes = DefaultNodeBytes
	}
	if c.MinFillRatio == 0 {
		c.MinFillRatio = 0.4
	}
	if c.ReinsertFraction == 0 {
		c.ReinsertFraction = 0.3
	}
	if c.BaseAddr == 0 {
		c.BaseAddr = ops.IndexBase
	}
}

type entry struct {
	mbr geom.Rect
	ptr uint32
}

type node struct {
	leaf    bool
	addr    uint64
	parent  int32
	entries []entry
}

// Tree is an R*-tree.
type Tree struct {
	cfg    Config
	maxEnt int
	minEnt int
	nodes  []node
	root   int32
	nitems int
	height int
	// reinserted tracks which levels already force-reinserted during the
	// current insertion (the R* "first overflow per level" rule). Keyed by
	// level height from the leaves.
	reinserted map[int]bool
}

// The R*-tree satisfies the shared access-method contract.
var _ index.Index = (*Tree)(nil)

// Item mirrors rtree.Item.
type Item struct {
	MBR geom.Rect
	ID  uint32
}

// New returns an empty R*-tree.
func New(cfg Config) (*Tree, error) {
	cfg.fill()
	maxEnt := (cfg.NodeBytes - HeaderBytes) / EntryBytes
	if maxEnt < 4 {
		return nil, fmt.Errorf("rstar: node size %dB gives max entries %d (<4)", cfg.NodeBytes, maxEnt)
	}
	minEnt := int(float64(maxEnt) * cfg.MinFillRatio)
	if minEnt < 2 {
		minEnt = 2
	}
	t := &Tree{cfg: cfg, maxEnt: maxEnt, minEnt: minEnt, height: 1}
	t.root = t.newNode(true, -1)
	return t, nil
}

// BuildByInsertion constructs a tree by inserting items one by one.
func BuildByInsertion(items []Item, cfg Config, rec ops.Recorder) (*Tree, error) {
	t, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for _, it := range items {
		t.Insert(it.MBR, it.ID, rec)
	}
	return t, nil
}

func (t *Tree) newNode(leaf bool, parent int32) int32 {
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{
		leaf:   leaf,
		addr:   t.cfg.BaseAddr + uint64(idx)*uint64(t.cfg.NodeBytes),
		parent: parent,
	})
	return idx
}

// Len returns the number of indexed items.
func (t *Tree) Len() int { return t.nitems }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// NodeCount returns the number of allocated nodes.
func (t *Tree) NodeCount() int { return len(t.nodes) }

// IndexBytes returns the structure's byte size.
func (t *Tree) IndexBytes() int { return len(t.nodes) * t.cfg.NodeBytes }

func (t *Tree) nodeMBR(ni int32) geom.Rect {
	mbr := geom.EmptyRect()
	for _, e := range t.nodes[ni].entries {
		mbr = mbr.Union(e.mbr)
	}
	return mbr
}

// levelOf returns a node's height above the leaves (0 = leaf).
func (t *Tree) levelOf(ni int32) int {
	lvl := 0
	for !t.nodes[ni].leaf {
		ni = int32(t.nodes[ni].entries[0].ptr)
		lvl++
	}
	return lvl
}

// Insert adds one item.
func (t *Tree) Insert(mbr geom.Rect, id uint32, rec ops.Recorder) {
	t.reinserted = map[int]bool{}
	t.insertAtLevel(entry{mbr: mbr, ptr: id}, 0, rec)
	t.nitems++
}

// insertAtLevel places an entry at the given height above the leaves
// (0 = data entry into a leaf; >0 = subtree reinsertion).
func (t *Tree) insertAtLevel(e entry, level int, rec ops.Recorder) {
	ni := t.chooseSubtree(e.mbr, level, rec)
	n := &t.nodes[ni]
	n.entries = append(n.entries, e)
	if !n.leaf {
		t.nodes[e.ptr].parent = ni
	}
	rec.Op(ops.OpIndexBuildEntry, 1)
	rec.Store(n.addr+HeaderBytes+uint64(len(n.entries)-1)*EntryBytes, EntryBytes)
	if len(t.nodes[ni].entries) > t.maxEnt {
		t.overflowTreatment(ni, level, rec)
	} else {
		t.adjustUpward(ni, rec)
	}
}

// chooseSubtree descends to the node at the target level using the R*
// criteria: minimum overlap enlargement when the children are leaves,
// minimum area enlargement otherwise.
func (t *Tree) chooseSubtree(mbr geom.Rect, level int, rec ops.Recorder) int32 {
	ni := t.root
	depthToGo := t.levelOf(ni) - level
	for depthToGo > 0 {
		rec.Op(ops.OpNodeVisit, 1)
		rec.Load(t.nodes[ni].addr, HeaderBytes)
		n := &t.nodes[ni]
		childrenAreLeaves := t.nodes[n.entries[0].ptr].leaf

		bestI := 0
		bestKey := math.Inf(1)
		bestArea := math.Inf(1)
		for i, e := range n.entries {
			rec.Load(n.addr+HeaderBytes+uint64(i)*EntryBytes, EntryBytes)
			rec.Op(ops.OpMBRTest, 1)
			var key float64
			if childrenAreLeaves && depthToGo == 1 {
				// Minimum overlap enlargement with the siblings.
				grown := e.mbr.Union(mbr)
				var before, after float64
				for j, o := range n.entries {
					if j == i {
						continue
					}
					before += e.mbr.Intersection(o.mbr).Area()
					after += grown.Intersection(o.mbr).Area()
				}
				key = after - before
			} else {
				key = e.mbr.Union(mbr).Area() - e.mbr.Area()
			}
			area := e.mbr.Area()
			if key < bestKey || (key == bestKey && area < bestArea) {
				bestI, bestKey, bestArea = i, key, area
			}
		}
		ni = int32(n.entries[bestI].ptr)
		depthToGo--
	}
	return ni
}

// overflowTreatment applies the R* rule: the first overflow on a level per
// insertion triggers forced reinsertion; subsequent overflows split.
func (t *Tree) overflowTreatment(ni int32, level int, rec ops.Recorder) {
	if ni != t.root && !t.reinserted[level] {
		t.reinserted[level] = true
		t.forcedReinsert(ni, level, rec)
		return
	}
	t.splitNode(ni, rec)
}

// forcedReinsert removes the ReinsertFraction of entries farthest from the
// node's center and reinserts them from the top.
func (t *Tree) forcedReinsert(ni int32, level int, rec ops.Recorder) {
	n := &t.nodes[ni]
	center := t.nodeMBR(ni).Center()
	type dist struct {
		d float64
		i int
	}
	ds := make([]dist, len(n.entries))
	for i, e := range n.entries {
		rec.Op(ops.OpDistCalc, 1)
		ds[i] = dist{e.mbr.Center().DistSq(center), i}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d > ds[b].d })
	p := int(float64(t.maxEnt) * t.cfg.ReinsertFraction)
	if p < 1 {
		p = 1
	}
	removed := make([]entry, 0, p)
	removeIdx := map[int]bool{}
	for i := 0; i < p; i++ {
		removed = append(removed, n.entries[ds[i].i])
		removeIdx[ds[i].i] = true
	}
	kept := n.entries[:0:0]
	for i, e := range n.entries {
		if !removeIdx[i] {
			kept = append(kept, e)
		}
	}
	n.entries = kept
	rec.Store(n.addr, HeaderBytes+len(kept)*EntryBytes)
	t.adjustUpward(ni, rec)
	// Reinsert farthest-first (the paper's "far reinsert" variant).
	for _, e := range removed {
		t.insertAtLevel(e, level, rec)
	}
}

// splitNode performs the R* topological split: choose the axis minimizing
// the margin sum over all distributions, then the distribution on that axis
// minimizing overlap (ties by area).
func (t *Tree) splitNode(ni int32, rec ops.Recorder) {
	entries := append([]entry(nil), t.nodes[ni].entries...)
	m := t.minEnt

	type distribution struct {
		sorted []entry
		split  int // first split-1 entries in group A
	}
	best := distribution{}
	bestOverlap, bestArea := math.Inf(1), math.Inf(1)

	for axis := 0; axis < 2; axis++ {
		for _, byUpper := range []bool{false, true} {
			sorted := append([]entry(nil), entries...)
			sort.Slice(sorted, func(a, b int) bool {
				ra, rb := sorted[a].mbr, sorted[b].mbr
				switch {
				case axis == 0 && !byUpper:
					return ra.Min.X < rb.Min.X
				case axis == 0:
					return ra.Max.X < rb.Max.X
				case !byUpper:
					return ra.Min.Y < rb.Min.Y
				default:
					return ra.Max.Y < rb.Max.Y
				}
			})
			rec.Op(ops.OpHeapOp, len(sorted))
			for split := m; split <= len(sorted)-m; split++ {
				rec.Op(ops.OpMBRTest, 2)
				mbrA, mbrB := geom.EmptyRect(), geom.EmptyRect()
				for i := 0; i < split; i++ {
					mbrA = mbrA.Union(sorted[i].mbr)
				}
				for i := split; i < len(sorted); i++ {
					mbrB = mbrB.Union(sorted[i].mbr)
				}
				overlap := mbrA.Intersection(mbrB).Area()
				area := mbrA.Area() + mbrB.Area()
				if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
					bestOverlap, bestArea = overlap, area
					best = distribution{sorted: sorted, split: split}
				}
			}
		}
	}

	groupA := append([]entry(nil), best.sorted[:best.split]...)
	groupB := append([]entry(nil), best.sorted[best.split:]...)
	mbrA, mbrB := geom.EmptyRect(), geom.EmptyRect()
	for _, e := range groupA {
		mbrA = mbrA.Union(e.mbr)
	}
	for _, e := range groupB {
		mbrB = mbrB.Union(e.mbr)
	}

	parent := t.nodes[ni].parent
	isLeaf := t.nodes[ni].leaf
	t.nodes[ni].entries = groupA
	sibling := t.newNode(isLeaf, parent)
	t.nodes[sibling].entries = groupB
	if !isLeaf {
		for _, e := range groupB {
			t.nodes[e.ptr].parent = sibling
		}
	}
	rec.Store(t.nodes[ni].addr, HeaderBytes+len(groupA)*EntryBytes)
	rec.Store(t.nodes[sibling].addr, HeaderBytes+len(groupB)*EntryBytes)

	if parent < 0 {
		newRoot := t.newNode(false, -1)
		t.nodes[newRoot].entries = []entry{
			{mbr: mbrA, ptr: uint32(ni)},
			{mbr: mbrB, ptr: uint32(sibling)},
		}
		t.nodes[ni].parent = newRoot
		t.nodes[sibling].parent = newRoot
		t.root = newRoot
		t.height++
		rec.Store(t.nodes[newRoot].addr, HeaderBytes+2*EntryBytes)
		return
	}

	p := &t.nodes[parent]
	for i := range p.entries {
		if p.entries[i].ptr == uint32(ni) {
			p.entries[i].mbr = mbrA
			break
		}
	}
	p.entries = append(p.entries, entry{mbr: mbrB, ptr: uint32(sibling)})
	rec.Store(p.addr, HeaderBytes+len(p.entries)*EntryBytes)
	if len(p.entries) > t.maxEnt {
		t.overflowTreatment(parent, t.levelOf(parent), rec)
	} else {
		t.adjustUpward(parent, rec)
	}
}

// adjustUpward tightens ancestor entry MBRs after a change at ni.
func (t *Tree) adjustUpward(ni int32, rec ops.Recorder) {
	for {
		parent := t.nodes[ni].parent
		if parent < 0 {
			return
		}
		mbr := t.nodeMBR(ni)
		p := &t.nodes[parent]
		changed := false
		for i := range p.entries {
			if p.entries[i].ptr == uint32(ni) {
				if p.entries[i].mbr != mbr {
					p.entries[i].mbr = mbr
					rec.Store(p.addr+HeaderBytes+uint64(i)*EntryBytes, EntryBytes)
					changed = true
				}
				break
			}
		}
		if !changed {
			return
		}
		ni = parent
	}
}

// Search returns the ids of all items whose MBR intersects the window.
func (t *Tree) Search(window geom.Rect, rec ops.Recorder) []uint32 {
	var out []uint32
	if t.nitems == 0 {
		return out
	}
	var walk func(ni int32)
	walk = func(ni int32) {
		n := &t.nodes[ni]
		rec.Op(ops.OpNodeVisit, 1)
		rec.Load(n.addr, HeaderBytes)
		for i := range n.entries {
			rec.Load(n.addr+HeaderBytes+uint64(i)*EntryBytes, EntryBytes)
			rec.Op(ops.OpMBRTest, 1)
			if !window.Intersects(n.entries[i].mbr) {
				continue
			}
			if n.leaf {
				rec.Op(ops.OpResultAppend, 1)
				rec.Store(ops.ScratchBase+uint64(len(out))*4, 4)
				out = append(out, n.entries[i].ptr)
			} else {
				walk(int32(n.entries[i].ptr))
			}
		}
	}
	walk(t.root)
	return out
}

// SearchPoint returns the ids of all items whose MBR contains p.
func (t *Tree) SearchPoint(p geom.Point, rec ops.Recorder) []uint32 {
	return t.Search(geom.Rect{Min: p, Max: p}, rec)
}

// Nearest runs the branch-and-bound NN search.
func (t *Tree) Nearest(p geom.Point, dist index.DistFunc, rec ops.Recorder) (uint32, float64, bool) {
	if t.nitems == 0 {
		return 0, 0, false
	}
	best := math.Inf(1)
	bestID := uint32(0)
	found := false
	var walk func(ni int32)
	walk = func(ni int32) {
		n := &t.nodes[ni]
		rec.Op(ops.OpNodeVisit, 1)
		rec.Load(n.addr, HeaderBytes)
		if n.leaf {
			for i := range n.entries {
				rec.Load(n.addr+HeaderBytes+uint64(i)*EntryBytes, EntryBytes)
				rec.Op(ops.OpDistCalc, 1)
				if n.entries[i].mbr.MinDist(p) > best {
					continue
				}
				d := dist(n.entries[i].ptr)
				if d < best || !found {
					best, bestID, found = d, n.entries[i].ptr, true
				}
			}
			return
		}
		type cand struct {
			d float64
			i int
		}
		cands := make([]cand, 0, len(n.entries))
		for i := range n.entries {
			rec.Load(n.addr+HeaderBytes+uint64(i)*EntryBytes, EntryBytes)
			rec.Op(ops.OpDistCalc, 1)
			cands = append(cands, cand{n.entries[i].mbr.MinDist(p), i})
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
		rec.Op(ops.OpHeapOp, len(cands))
		for _, c := range cands {
			if c.d > best {
				break
			}
			walk(int32(n.entries[c.i].ptr))
		}
	}
	walk(t.root)
	return bestID, best, found
}

// CheckInvariants verifies structural invariants for tests.
func (t *Tree) CheckInvariants() error {
	seen := map[uint32]int{}
	var walk func(ni int32, depth int) (geom.Rect, int, error)
	walk = func(ni int32, depth int) (geom.Rect, int, error) {
		n := &t.nodes[ni]
		if ni != t.root && len(n.entries) > t.maxEnt {
			return geom.Rect{}, 0, fmt.Errorf("node %d overfull: %d", ni, len(n.entries))
		}
		mbr := geom.EmptyRect()
		leafDepth := -1
		for _, e := range n.entries {
			mbr = mbr.Union(e.mbr)
			if n.leaf {
				seen[e.ptr]++
				leafDepth = depth
				continue
			}
			childMBR, d, err := walk(int32(e.ptr), depth+1)
			if err != nil {
				return geom.Rect{}, 0, err
			}
			if !e.mbr.ContainsRect(childMBR) {
				return geom.Rect{}, 0, fmt.Errorf("node %d entry does not contain child", ni)
			}
			if t.nodes[e.ptr].parent != ni {
				return geom.Rect{}, 0, fmt.Errorf("node %d child %d wrong parent", ni, e.ptr)
			}
			switch {
			case leafDepth == -1:
				leafDepth = d
			case leafDepth != d:
				return geom.Rect{}, 0, fmt.Errorf("unbalanced tree")
			}
		}
		return mbr, leafDepth, nil
	}
	if _, _, err := walk(t.root, 0); err != nil {
		return err
	}
	if len(seen) != t.nitems {
		return fmt.Errorf("reachable %d != inserted %d", len(seen), t.nitems)
	}
	for id, c := range seen {
		if c != 1 {
			return fmt.Errorf("item %d stored %d times", id, c)
		}
	}
	return nil
}
