package core

import (
	"testing"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/pmrquad"
	"mobispatial/internal/sim"
)

func TestKNNSchemesAgree(t *testing.T) {
	ds := smallDataset(t, 6000)
	q := KNearest(geom.Point{X: 4200, Y: 6100}, 8)

	eC := newEngine(t, ds, nil)
	ansC, err := eC.Run(q, FullyClient, DataAtClient)
	if err != nil {
		t.Fatal(err)
	}
	if len(ansC.IDs) != 8 {
		t.Fatalf("k-NN returned %d ids, want 8", len(ansC.IDs))
	}
	eS := newEngine(t, ds, nil)
	ansS, err := eS.Run(q, FullyServer, DataAtServerOnly)
	if err != nil {
		t.Fatal(err)
	}
	// k-NN results are distance-ordered, so compare in order.
	for i := range ansC.IDs {
		if ansC.IDs[i] != ansS.IDs[i] {
			t.Fatalf("neighbor %d differs: %d vs %d", i, ansC.IDs[i], ansS.IDs[i])
		}
	}
	if ansC.NNDist != ansS.NNDist {
		t.Fatal("nearest distances differ")
	}
	// Results must be the k nearest: the first equals the 1-NN answer.
	one, err := newEngine(t, ds, nil).Run(Nearest(q.Point), FullyClient, DataAtClient)
	if err != nil {
		t.Fatal(err)
	}
	if one.IDs[0] != ansC.IDs[0] {
		t.Fatal("k-NN head differs from 1-NN")
	}
}

func TestKNNRejectsHybridSchemes(t *testing.T) {
	ds := smallDataset(t, 500)
	e := newEngine(t, ds, nil)
	q := KNearest(geom.Point{X: 5, Y: 5}, 4)
	if _, err := e.Run(q, FilterClientRefineServer, DataAtClient); err == nil {
		t.Error("k-NN accepted a filter/refine split")
	}
}

func TestKNNRejectsUnsupportedIndex(t *testing.T) {
	ds := smallDataset(t, 500)
	quad, err := pmrquad.Build(ds.Segments, ds.Extent, pmrquad.Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := sim.New(sim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngineWithIndex(ds, quad, sys)
	if _, err := eng.Run(KNearest(geom.Point{X: 5, Y: 5}, 4), FullyClient, DataAtClient); err == nil {
		t.Fatal("PMR quadtree accepted a k-NN query")
	}
	// Plain NN still works on the quadtree.
	if _, err := eng.Run(Nearest(geom.Point{X: 5, Y: 5}), FullyClient, DataAtClient); err != nil {
		t.Fatal(err)
	}
}

func TestKNNReplySizeScalesWithK(t *testing.T) {
	ds := smallDataset(t, 4000)
	p := geom.Point{X: 5000, Y: 5000}
	small := newEngine(t, ds, nil)
	if _, err := small.Run(KNearest(p, 2), FullyServer, DataAtServerOnly); err != nil {
		t.Fatal(err)
	}
	big := newEngine(t, ds, nil)
	if _, err := big.Run(KNearest(p, 200), FullyServer, DataAtServerOnly); err != nil {
		t.Fatal(err)
	}
	if big.Sys.Result().RxCycles <= small.Sys.Result().RxCycles {
		t.Fatal("larger k did not grow the reply")
	}
}
