package core

import (
	"testing"

	"mobispatial/internal/geom"
	"mobispatial/internal/sim"
)

func pipelineQuery(ds int) Query {
	return Range(geom.Rect{
		Min: geom.Point{X: 1000, Y: 1000},
		Max: geom.Point{X: 7000, Y: 7000},
	})
}

func TestPipelinedMatchesPlainAnswers(t *testing.T) {
	ds := smallDataset(t, 12000)
	q := pipelineQuery(0)

	plainEng := newEngine(t, ds, nil)
	want, err := plainEng.Run(q, FilterClientRefineServer, DataAtClient)
	if err != nil {
		t.Fatal(err)
	}
	for _, slices := range []int{1, 2, 4, 8} {
		eng := newEngine(t, ds, nil)
		got, err := eng.RunPipelined(q, DataAtClient, slices)
		if err != nil {
			t.Fatalf("slices=%d: %v", slices, err)
		}
		if !sameIDs(sortedIDs(got), sortedIDs(want)) {
			t.Fatalf("slices=%d: %d ids, plain scheme %d", slices, len(got.IDs), len(want.IDs))
		}
	}
}

func TestPipelinedValidation(t *testing.T) {
	ds := smallDataset(t, 500)
	eng := newEngine(t, ds, nil)
	if _, err := eng.RunPipelined(Point(geom.Point{}), DataAtClient, 4); err == nil {
		t.Error("point query accepted")
	}
	if _, err := eng.RunPipelined(pipelineQuery(0), DataAtClient, 0); err == nil {
		t.Error("zero slices accepted")
	}
}

func TestPipelinedHidesFilteringLatency(t *testing.T) {
	// The point of w4 > 0: at low bandwidth the pipelined variant finishes
	// in fewer total client cycles than the serial
	// filter-at-client + refine-at-server scheme, with similar energy
	// (same work, just overlapped).
	ds := smallDataset(t, 12000)
	q := pipelineQuery(0)
	slow := func(p *sim.Params) { p.BandwidthBps = 2e6 }

	serial := newEngine(t, ds, slow)
	if _, err := serial.Run(q, FilterClientRefineServer, DataAtClient); err != nil {
		t.Fatal(err)
	}
	rs := serial.Sys.Result()

	pipe := newEngine(t, ds, slow)
	if _, err := pipe.RunPipelined(q, DataAtClient, 6); err != nil {
		t.Fatal(err)
	}
	rp := pipe.Sys.Result()

	if rp.TotalClientCycles() >= rs.TotalClientCycles() {
		t.Fatalf("pipelined cycles %d not below serial %d",
			rp.TotalClientCycles(), rs.TotalClientCycles())
	}
	// Energy stays in the same ballpark (the NIC idles more but the per-
	// byte work is identical).
	if ratio := rp.Energy.Total() / rs.Energy.Total(); ratio > 1.3 || ratio < 0.6 {
		t.Fatalf("pipelined energy ratio %.2f implausible", ratio)
	}
}

func TestPipelinedSingleSliceDegeneratesToSerial(t *testing.T) {
	// With one slice there is nothing to overlap: prologue + epilogue only.
	ds := smallDataset(t, 5000)
	q := pipelineQuery(0)
	eng := newEngine(t, ds, nil)
	if _, err := eng.RunPipelined(q, DataAtClient, 1); err != nil {
		t.Fatal(err)
	}
	r := eng.Sys.Result()
	if r.TxCycles == 0 || r.RxCycles == 0 || r.ServerCycles == 0 {
		t.Fatalf("degenerate pipeline missing phases: %+v", r)
	}
}

func TestSliceWindowCoversExactly(t *testing.T) {
	w := geom.Rect{Min: geom.Point{X: 3, Y: 5}, Max: geom.Point{X: 17, Y: 11}}
	for _, n := range []int{1, 2, 3, 7} {
		slices := sliceWindow(w, n)
		if len(slices) != n {
			t.Fatalf("n=%d: %d slices", n, len(slices))
		}
		if slices[0].Min != w.Min {
			t.Fatalf("n=%d: first slice starts at %v", n, slices[0].Min)
		}
		if slices[n-1].Max != w.Max {
			t.Fatalf("n=%d: last slice ends at %v", n, slices[n-1].Max)
		}
		for i := 1; i < n; i++ {
			if slices[i].Min.X != slices[i-1].Max.X {
				t.Fatalf("n=%d: gap between slice %d and %d", n, i-1, i)
			}
		}
	}
}
