package core

import (
	"fmt"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
)

// Update handling — the paper's §7 future-work item "examining issues when
// data is frequently modified (and the latest copy needs to be obtained
// from server)". The road-atlas geometry is static (streets do not move
// between queries), but record *attributes* change: closures, speed limits,
// names. The server keeps an update log; a client holding an
// insufficient-memory shipment revalidates it with a cheap delta exchange —
// "which of my records changed since epoch E?" — and patches the changed
// records, instead of re-downloading the shipment.
//
// The revalidation frequency is a lease: the client trusts its copy for
// LeaseQueries local queries before asking again. A longer lease saves
// energy and widens the staleness window — one more energy/consistency
// trade-off in the spirit of the paper's energy/performance ones.

// UpdateLog is the server-side modification history: for every record, the
// epoch of its last change.
type UpdateLog struct {
	epoch     int64
	updatedAt map[uint32]int64
}

// NewUpdateLog returns an empty log at epoch 0.
func NewUpdateLog() *UpdateLog {
	return &UpdateLog{updatedAt: make(map[uint32]int64)}
}

// Epoch returns the current server epoch.
func (l *UpdateLog) Epoch() int64 { return l.epoch }

// Apply records one batch of attribute updates and advances the epoch.
func (l *UpdateLog) Apply(ids []uint32) {
	l.epoch++
	for _, id := range ids {
		l.updatedAt[id] = l.epoch
	}
}

// UpdatedSince returns the ids changed after epoch whose record satisfies
// keep (used to restrict the delta to the client's coverage).
func (l *UpdateLog) UpdatedSince(epoch int64, keep func(uint32) bool) []uint32 {
	var out []uint32
	for id, at := range l.updatedAt {
		if at > epoch && (keep == nil || keep(id)) {
			out = append(out, id)
		}
	}
	return out
}

// ValidationRequestBytes is the payload of a revalidation request: the
// cached epoch plus the coverage rectangle.
const ValidationRequestBytes = 48

// RunInsufficientClientValidated behaves like RunInsufficientClient but
// keeps the cached records consistent with the engine's update log: before
// a local answer is served with an expired lease, the client exchanges a
// delta with the server and patches the changed records. leaseQueries is
// the number of local answers served between revalidations (0 validates
// every time). It returns the answer, whether the query was answered from
// the (revalidated) cache, and the number of records patched.
func (e *Engine) RunInsufficientClientValidated(q Query, cache *Cache, log *UpdateLog, leaseQueries int) (Answer, bool, int, error) {
	if log == nil {
		return Answer{}, false, 0, fmt.Errorf("core: nil update log")
	}
	patched := 0
	if cache != nil && cache.Holds(q) && cache.sinceValidation >= int64(leaseQueries) {
		patched = e.revalidate(cache, log)
		cache.sinceValidation = 0
	}
	ans, local, err := e.RunInsufficientClient(q, cache)
	if err != nil {
		return ans, local, patched, err
	}
	if local {
		cache.sinceValidation++
		if log.Epoch() > cache.epoch {
			cache.StaleServed++
		}
	} else {
		// A fresh shipment is current by construction.
		cache.epoch = log.Epoch()
		cache.sinceValidation = 0
	}
	return ans, local, patched, nil
}

// revalidate runs the delta exchange and returns the number of patched
// records.
func (e *Engine) revalidate(cache *Cache, log *UpdateLog) int {
	cache.Revalidations++
	coverage := cache.ship.Coverage
	e.Sys.ClientCompute(func(rec ops.Recorder) { rec.Op(ops.OpDispatch, 1) })
	e.Sys.Send(ValidationRequestBytes)

	var changed []uint32
	e.Sys.ServerCompute(func(rec ops.Recorder) {
		rec.Op(ops.OpDispatch, 1)
		// Scan the log (one probe per logged update) and filter to the
		// client's coverage.
		changed = log.UpdatedSince(cache.epoch, func(id uint32) bool {
			rec.Op(ops.OpMBRTest, 1)
			rec.Load(e.DS.RecordAddr(id), 16)
			return e.DS.Seg(id).IntersectsRect(coverage)
		})
		rec.Op(ops.OpCopyWord, len(changed)*e.DS.RecordBytes/4)
	})
	// The reply carries the fresh records for the changed ids.
	e.Sys.Receive(DataListBytes(len(changed), e.DS.RecordBytes))
	// Patch them into the local copy.
	e.Sys.ClientCompute(func(rec ops.Recorder) {
		for _, id := range changed {
			rec.Op(ops.OpCopyWord, e.DS.RecordBytes/4)
			rec.Store(e.DS.RecordAddr(id), e.DS.RecordBytes)
		}
	})
	cache.epoch = log.Epoch()
	return len(changed)
}

// RandomUpdates picks n record ids inside a region to modify (a convenience
// for tests and the staleness experiment). The ids come from the master
// index so the update stream has spatial locality, like real road-network
// maintenance.
func (e *Engine) RandomUpdates(region geom.Rect, n int) []uint32 {
	if e.Master == nil {
		return nil
	}
	ids := e.Master.Search(region, ops.Null{})
	if len(ids) > n {
		ids = ids[:n]
	}
	return ids
}
