package core

import (
	"testing"

	"mobispatial/internal/geom"
)

func batchQueries(ds interface{ Len() int }, n int) []Query {
	var qs []Query
	for i := 0; i < n; i++ {
		base := float64(500 + i*700)
		qs = append(qs, Range(geom.Rect{
			Min: geom.Point{X: base, Y: base},
			Max: geom.Point{X: base + 600, Y: base + 600},
		}))
	}
	return qs
}

func TestBatchMatchesIndividualAnswers(t *testing.T) {
	ds := smallDataset(t, 8000)
	qs := batchQueries(ds, 8)
	qs = append(qs, Point(ds.Segments[42].A), Nearest(geom.Point{X: 3000, Y: 3000}))

	eng := newEngine(t, ds, nil)
	batch, err := eng.RunBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Answers) != len(qs) {
		t.Fatalf("batch returned %d answers for %d queries", len(batch.Answers), len(qs))
	}
	for i, q := range qs {
		ref := newEngine(t, ds, nil)
		want, err := ref.Run(q, FullyClient, DataAtClient)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(sortedIDs(batch.Answers[i]), sortedIDs(want)) {
			t.Fatalf("query %d: batch %d ids, individual %d", i, len(batch.Answers[i].IDs), len(want.IDs))
		}
	}
}

func TestBatchAmortizesCommunication(t *testing.T) {
	ds := smallDataset(t, 8000)
	qs := batchQueries(ds, 10)

	batched := newEngine(t, ds, nil)
	if _, err := batched.RunBatch(qs); err != nil {
		t.Fatal(err)
	}
	individual := newEngine(t, ds, nil)
	for _, q := range qs {
		if _, err := individual.Run(q, FullyServer, DataAtClient); err != nil {
			t.Fatal(err)
		}
	}
	rb, ri := batched.Sys.Result(), individual.Sys.Result()
	// The payload volume is essentially identical, but the batch pays the
	// per-message fixed costs once: both energy and cycles must drop.
	if rb.Energy.Total() >= ri.Energy.Total() {
		t.Fatalf("batching saved no energy: %.4f vs %.4f J", rb.Energy.Total(), ri.Energy.Total())
	}
	if rb.TotalClientCycles() >= ri.TotalClientCycles() {
		t.Fatalf("batching saved no cycles: %d vs %d", rb.TotalClientCycles(), ri.TotalClientCycles())
	}
	// The NIC wakes once instead of ten times.
	if rb.NIC.Wakeups >= ri.NIC.Wakeups {
		t.Fatalf("batch wakeups %d not below individual %d", rb.NIC.Wakeups, ri.NIC.Wakeups)
	}
}

func TestBatchValidation(t *testing.T) {
	ds := smallDataset(t, 500)
	eng := newEngine(t, ds, nil)
	if _, err := eng.RunBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}
