package core

import (
	"fmt"

	"mobispatial/internal/ops"
)

// Query batching: the paper's lesson list observes that communication costs
// "can be amortized by the savings over several queries" (§7). When the user
// interface can tolerate answering queries in groups (prefetching map tiles,
// bulk lookups), the client ships k query descriptors in one request and
// receives one combined reply — paying the transmitter ramp, the protocol
// fixed costs, and the NIC wake-up once instead of k times.

// BatchAnswer is the combined result of a batched execution.
type BatchAnswer struct {
	// Answers are the per-query answers, in request order.
	Answers []Answer
}

// RunBatch executes the queries fully at the server as one exchange, with
// the data present at the client (ids-only replies). NN queries are allowed
// in the mix. An empty batch is an error.
func (e *Engine) RunBatch(queries []Query) (BatchAnswer, error) {
	if len(queries) == 0 {
		return BatchAnswer{}, fmt.Errorf("core: empty batch")
	}

	// One request carrying all descriptors.
	e.Sys.ClientCompute(func(rec ops.Recorder) {
		rec.Op(ops.OpDispatch, 1)
		rec.Op(ops.OpCopyWord, len(queries)*QueryRequestBytesFor(queries[0])/4)
	})
	reqBytes := 0
	for _, q := range queries {
		reqBytes += QueryRequestBytesFor(q)
	}
	e.Sys.Send(reqBytes)

	// The server executes every query; the combined reply carries each
	// query's id list.
	var out BatchAnswer
	replyBytesTotal := 0
	e.Sys.ServerCompute(func(rec ops.Recorder) {
		rec.Op(ops.OpDispatch, 1)
		for _, q := range queries {
			var ans Answer
			if q.Kind == NNQuery {
				ans = e.nearest(q, rec, e.localRecordAddr)
			} else {
				cands := e.filter(q, rec)
				ans.IDs = e.refine(q, cands, rec, e.localRecordAddr)
			}
			out.Answers = append(out.Answers, ans)
			replyBytesTotal += IDListBytes(len(ans.IDs))
			rec.Op(ops.OpCopyWord, IDListBytes(len(ans.IDs))/4)
		}
	})
	e.Sys.Receive(replyBytesTotal)
	return out, nil
}
