package core

import (
	"math"
	"testing"

	"mobispatial/internal/nic"
)

// baseInputs models a mid-size range query: ~5e6 client cycles fully-local,
// modest messages, C/S = 1/8.
func baseInputs() AnalyticInputs {
	return AnalyticInputs{
		BandwidthBps: 2e6,
		CFullyLocal:  5e6,
		CLocal:       2e5,
		CProtocol:    1e5,
		CW2:          4e5,
		ClientHz:     125e6,
		ServerHz:     1e9,
		PacketTxBits: 1000 * 8,
		PacketRxBits: 4000 * 8, // id list: the data-present reply
		PClient:      0.3,
		PTx:          nic.TxPower1Km,
		PRx:          nic.RxPower,
		PIdle:        nic.IdlePower,
		PSleep:       nic.SleepPower,
		PBlocked:     0.05,
	}
}

func TestAdvisorComputeHeavyQueryOffloads(t *testing.T) {
	a := baseInputs()
	v := a.Advise()
	if !v.SavesCycles {
		t.Fatalf("compute-heavy query should save cycles by offloading: ratio %.3f", v.CycleRatio)
	}
	if v.CycleRatio >= 1 {
		t.Fatalf("CycleRatio %.3f inconsistent with SavesCycles", v.CycleRatio)
	}
}

func TestAdvisorTinyQueryStaysLocal(t *testing.T) {
	// A point query: nearly no local compute, one packet each way — the
	// §6.1.1 result that offloading never pays.
	a := baseInputs()
	a.CFullyLocal = 3e4
	a.CW2 = 3e3
	a.PacketRxBits = 600 * 8
	v := a.Advise()
	if v.SavesCycles {
		t.Fatal("tiny query should not save cycles by offloading")
	}
	if v.SavesEnergy {
		t.Fatal("tiny query should not save energy by offloading")
	}
}

func TestAdvisorEnergyNeedsMoreBandwidthThanCycles(t *testing.T) {
	// §6.1.1: schemes "start doing better in performance earlier than in
	// terms of energy" as bandwidth grows, because transmit Joules are more
	// expensive than transmit seconds. Find both crossover bandwidths.
	a := baseInputs()
	a.CFullyLocal = 2.2e6 // make the trade-off bandwidth-sensitive
	cyclesCross, energyCross := math.Inf(1), math.Inf(1)
	for b := 0.5e6; b <= 30e6; b += 0.1e6 {
		a.BandwidthBps = b
		if math.IsInf(cyclesCross, 1) && a.SavesCycles() {
			cyclesCross = b
		}
		if math.IsInf(energyCross, 1) && a.SavesEnergy() {
			energyCross = b
		}
	}
	if math.IsInf(cyclesCross, 1) || math.IsInf(energyCross, 1) {
		t.Fatalf("no crossover found (cycles %v, energy %v)", cyclesCross, energyCross)
	}
	if energyCross <= cyclesCross {
		t.Fatalf("energy crossover %.1f Mbps should come after cycles crossover %.1f Mbps",
			energyCross/1e6, cyclesCross/1e6)
	}
}

func TestAdvisorMonotoneInBandwidth(t *testing.T) {
	a := baseInputs()
	prevCycles := math.Inf(1)
	prevEnergy := math.Inf(1)
	for b := 1e6; b <= 20e6; b += 1e6 {
		a.BandwidthBps = b
		if c := a.PartitionedCycles(); c > prevCycles {
			t.Fatalf("partitioned cycles not monotone at %.0f Mbps", b/1e6)
		} else {
			prevCycles = c
		}
		if e := a.PartitionedJoules(); e > prevEnergy {
			t.Fatalf("partitioned energy not monotone at %.0f Mbps", b/1e6)
		} else {
			prevEnergy = e
		}
	}
}

func TestAdvisorSlowClientFavorsOffload(t *testing.T) {
	fast := baseInputs()
	fast.ClientHz = 500e6
	slow := baseInputs()
	slow.ClientHz = 62.5e6
	// Ratios: partitioned/fully-local. The slow client gains more from
	// offloading (communication costs the same seconds, local compute more).
	if slow.Advise().CycleRatio >= fast.Advise().CycleRatio {
		t.Fatalf("slow client ratio %.3f not better than fast %.3f",
			slow.Advise().CycleRatio, fast.Advise().CycleRatio)
	}
}

func TestAdvisorShorterDistanceFavorsOffloadEnergy(t *testing.T) {
	far := baseInputs()
	near := baseInputs()
	near.PTx = nic.TxPower100m
	// Larger uplink so transmit power matters.
	far.PacketTxBits, near.PacketTxBits = 50000*8, 50000*8
	if near.PartitionedJoules() >= far.PartitionedJoules() {
		t.Fatal("shorter distance did not cut partitioned energy")
	}
}

func TestVerdictRatiosZeroSafe(t *testing.T) {
	var a AnalyticInputs
	a.BandwidthBps = 1e6
	a.ClientHz = 1e6
	a.ServerHz = 1e9
	v := a.Advise()
	if v.CycleRatio != 0 || v.EnergyRatio != 0 {
		t.Fatalf("zero inputs gave ratios %+v", v)
	}
}
