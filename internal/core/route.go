package core

import (
	"fmt"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/roadnet"
)

// Route-query work partitioning: "driving directions" is the first
// application the paper's road-atlas discussion names, and the most
// compute-intensive query of the workload — A* expands thousands of graph
// nodes, making it the strongest offloading candidate of the suite. The
// placement question doubles: the client needs the *graph* locally to route
// itself, exactly as it needs the index to filter.

// RouteSpec binds the routable graph to its underlying dataset.
type RouteSpec struct {
	DS    *dataset.Dataset
	Graph *roadnet.Graph
}

// NewRouteSpec derives the graph (50 m snap) from the dataset.
func NewRouteSpec(ds *dataset.Dataset) (*RouteSpec, error) {
	g, err := roadnet.Build(ds, 0, ops.Null{})
	if err != nil {
		return nil, err
	}
	return &RouteSpec{DS: ds, Graph: g}, nil
}

// RouteScheme selects where the shortest-path computation runs.
type RouteScheme uint8

// The evaluated route partitionings.
const (
	// RouteFullyClient: graph on the device, no communication.
	RouteFullyClient RouteScheme = iota
	// RouteFullyServer: terminals ship up; the path's segment ids ship
	// down (the client holds the data, so ids suffice for display).
	RouteFullyServer
)

var routeSchemeNames = [...]string{"route-fully-client", "route-fully-server"}

// String implements fmt.Stringer.
func (s RouteScheme) String() string {
	if int(s) < len(routeSchemeNames) {
		return routeSchemeNames[s]
	}
	return "RouteScheme(?)"
}

// RunRoute computes the shortest path between the street-network points
// nearest from and to, under the given scheme, charging sys. ok == false
// when the terminals are not connected in the network.
func RunRoute(sys SysRunner, spec *RouteSpec, from, to geom.Point, scheme RouteScheme) (roadnet.Route, bool, error) {
	if spec == nil || spec.Graph == nil {
		return roadnet.Route{}, false, fmt.Errorf("core: incomplete route spec")
	}
	compute := func(rec ops.Recorder) (roadnet.Route, bool) {
		src, ok1 := spec.Graph.NearestNode(from, rec)
		dst, ok2 := spec.Graph.NearestNode(to, rec)
		if !ok1 || !ok2 {
			return roadnet.Route{}, false
		}
		return spec.Graph.ShortestPath(src, dst, rec)
	}

	switch scheme {
	case RouteFullyClient:
		var route roadnet.Route
		var ok bool
		sys.ClientCompute(func(rec ops.Recorder) {
			rec.Op(ops.OpDispatch, 1)
			route, ok = compute(rec)
		})
		return route, ok, nil

	case RouteFullyServer:
		sys.ClientCompute(func(rec ops.Recorder) { rec.Op(ops.OpDispatch, 1) })
		sys.Send(QueryRequestBytesFor(Query{}))
		var route roadnet.Route
		var ok bool
		sys.ServerCompute(func(rec ops.Recorder) {
			rec.Op(ops.OpDispatch, 1)
			route, ok = compute(rec)
			rec.Op(ops.OpCopyWord, len(route.SegIDs))
		})
		sys.Receive(IDListBytes(len(route.SegIDs)))
		return route, ok, nil
	}
	return roadnet.Route{}, false, fmt.Errorf("core: unknown route scheme %v", scheme)
}

// SysRunner is the subset of the simulator the route scheme needs; it lets
// tests substitute instrumented doubles.
type SysRunner interface {
	ClientCompute(func(ops.Recorder))
	ServerCompute(func(ops.Recorder))
	Send(int)
	Receive(int)
}
