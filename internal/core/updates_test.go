package core

import (
	"testing"

	"mobispatial/internal/dataset"
)

func TestUpdateLog(t *testing.T) {
	log := NewUpdateLog()
	if log.Epoch() != 0 {
		t.Fatal("fresh log epoch != 0")
	}
	log.Apply([]uint32{1, 2, 3})
	log.Apply([]uint32{3, 4})
	if log.Epoch() != 2 {
		t.Fatalf("epoch = %d", log.Epoch())
	}
	all := log.UpdatedSince(0, nil)
	if len(all) != 4 {
		t.Fatalf("updated since 0: %d ids", len(all))
	}
	recent := log.UpdatedSince(1, nil)
	if len(recent) != 2 { // ids 3 and 4 at epoch 2
		t.Fatalf("updated since 1: %v", recent)
	}
	odd := log.UpdatedSince(0, func(id uint32) bool { return id%2 == 1 })
	if len(odd) != 2 {
		t.Fatalf("filtered: %v", odd)
	}
}

func TestValidatedFlowCountsAndPatches(t *testing.T) {
	ds := smallDataset(t, 10000)
	seq := dataset.ProximitySequence(ds, 12, 0.01, 51)
	e := newEngine(t, ds, nil)
	cache := NewCache(256*1024, ds.RecordBytes)
	log := NewUpdateLog()

	// Anchor query fetches the shipment.
	if _, local, _, err := e.RunInsufficientClientValidated(Range(seq[0]), cache, log, 3); err != nil {
		t.Fatal(err)
	} else if local {
		t.Fatal("anchor was local")
	}

	// Server-side updates land inside the covered area.
	updated := e.RandomUpdates(seq[1], 5)
	if len(updated) == 0 {
		t.Skip("no records under the first follow-up window")
	}
	log.Apply(updated)

	totalPatched := 0
	for _, w := range seq[1:] {
		_, local, patched, err := e.RunInsufficientClientValidated(Range(w), cache, log, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !local {
			t.Fatal("follow-up missed the cache")
		}
		totalPatched += patched
	}
	if cache.Revalidations == 0 {
		t.Fatal("lease never triggered a revalidation")
	}
	if totalPatched == 0 {
		t.Fatal("updates were never patched to the client")
	}
	if cache.StaleServed == 0 {
		t.Fatal("no stale answers counted before the revalidation")
	}
}

func TestValidatedLeaseTradeoff(t *testing.T) {
	// A shorter lease revalidates more (more energy), serves less staleness.
	run := func(lease int) (*Cache, float64) {
		ds := smallDataset(t, 10000)
		seq := dataset.ProximitySequence(ds, 30, 0.01, 53)
		e := newEngine(t, ds, nil)
		cache := NewCache(256*1024, ds.RecordBytes)
		log := NewUpdateLog()
		for i, w := range seq {
			if i%3 == 1 {
				log.Apply(e.RandomUpdates(w, 2))
			}
			if _, _, _, err := e.RunInsufficientClientValidated(Range(w), cache, log, lease); err != nil {
				t.Fatal(err)
			}
		}
		return cache, e.Sys.Result().Energy.Total()
	}
	eager, eagerJ := run(1)
	lazy, lazyJ := run(10)
	if eager.Revalidations <= lazy.Revalidations {
		t.Fatalf("lease=1 revalidations %d not above lease=10 %d",
			eager.Revalidations, lazy.Revalidations)
	}
	if eagerJ <= lazyJ {
		t.Fatalf("eager validation energy %.4f not above lazy %.4f", eagerJ, lazyJ)
	}
	if eager.StaleServed > lazy.StaleServed {
		t.Fatalf("eager staleness %d above lazy %d", eager.StaleServed, lazy.StaleServed)
	}
}

func TestValidatedRequiresLog(t *testing.T) {
	ds := smallDataset(t, 500)
	e := newEngine(t, ds, nil)
	cache := NewCache(128*1024, ds.RecordBytes)
	if _, _, _, err := e.RunInsufficientClientValidated(Range(ds.Extent), cache, nil, 3); err == nil {
		t.Fatal("nil log accepted")
	}
}
