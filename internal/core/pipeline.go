package core

import (
	"fmt"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
)

// The pipelined partitioning scheme — the paper's future-work direction "it
// would be useful to also exploit parallelism between client and server
// executions" (§7), i.e. w4 > 0 in the Fig. 1 structure.
//
// The query window is cut into vertical slices. The client filters slice i
// while, concurrently, the candidates of slice i−1 travel to the server, are
// refined there, and the matching ids travel back. Compared to the plain
// filter-at-client + refine-at-server scheme, the client's filtering time is
// hidden inside the communication/refinement latency of the previous slice.
//
// Candidates whose MBR spans a slice boundary are deduplicated on the client
// before transmission, so every candidate is refined exactly once and the
// answer matches the other schemes exactly.

// RunPipelined executes a range query under the pipelined
// filter-at-client/refine-at-server scheme with the given number of slices.
// Only range queries can be sliced; placement selects id or record replies
// exactly as in the plain scheme.
func (e *Engine) RunPipelined(q Query, placement DataPlacement, slices int) (Answer, error) {
	if q.Kind != RangeQuery {
		return Answer{}, fmt.Errorf("core: pipelined scheme supports range queries, got %v", q.Kind)
	}
	if slices < 1 {
		return Answer{}, fmt.Errorf("core: pipeline needs >= 1 slice, got %d", slices)
	}

	windows := sliceWindow(q.Window, slices)
	seen := make(map[uint32]bool)

	// filterSlice runs the filtering step for one slice on rec, returning
	// only first-seen candidates.
	filterSlice := func(w geom.Rect, rec ops.Recorder) []uint32 {
		cands := e.Tree.Search(w, rec)
		fresh := cands[:0:0]
		for _, id := range cands {
			rec.Op(ops.OpResultAppend, 1) // dedup probe
			if seen[id] {
				continue
			}
			seen[id] = true
			fresh = append(fresh, id)
		}
		rec.Op(ops.OpCopyWord, len(fresh)) // marshal candidate ids
		return fresh
	}

	var ans Answer
	refineSlice := func(cands []uint32) (func(ops.Recorder), *int) {
		replySize := new(int)
		return func(rec ops.Recorder) {
			rec.Op(ops.OpDispatch, 1)
			rec.Op(ops.OpCopyWord, len(cands))
			hits := e.refine(q, cands, rec, e.localRecordAddr)
			ans.IDs = append(ans.IDs, hits...)
			*replySize = replyBytes(len(hits), placement, e.DS.RecordBytes)
			rec.Op(ops.OpCopyWord, *replySize/4)
		}, replySize
	}

	// Prologue: filter slice 0 with the radio still asleep.
	var pending []uint32
	e.Sys.ClientCompute(func(rec ops.Recorder) {
		rec.Op(ops.OpDispatch, 1)
		pending = filterSlice(windows[0], rec)
	})

	// Steady state: overlap filtering of slice i with the exchange and
	// refinement of slice i−1.
	for i := 1; i < len(windows); i++ {
		var next []uint32
		serverWork, replySize := refineSlice(pending)
		w := windows[i]
		// The reply size is only known after serverWork runs; OverlapStage
		// needs it up front for the air time. Pre-compute it by counting
		// the hits (the refinement outcome is deterministic), charging
		// nothing: the real charge happens inside serverWork.
		expected := e.countHits(q, pending)
		e.Sys.OverlapStage(
			func(rec ops.Recorder) { next = filterSlice(w, rec) },
			IDListBytes(len(pending)),
			serverWork,
			replyBytes(expected, placement, e.DS.RecordBytes),
		)
		_ = replySize
		pending = next
	}

	// Epilogue: the last slice's candidates go out serially.
	serverWork, _ := refineSlice(pending)
	e.Sys.Send(IDListBytes(len(pending)))
	before := len(ans.IDs)
	e.Sys.ServerCompute(serverWork)
	e.Sys.Receive(replyBytes(len(ans.IDs)-before, placement, e.DS.RecordBytes))
	return ans, nil
}

// countHits evaluates the refinement predicate without charging any machine
// (used to size a reply before the charged refinement runs).
func (e *Engine) countHits(q Query, cands []uint32) int {
	n := 0
	for _, id := range cands {
		if e.DS.Seg(id).IntersectsRect(q.Window) {
			n++
		}
	}
	return n
}

// sliceWindow cuts w into n vertical slices of equal width.
func sliceWindow(w geom.Rect, n int) []geom.Rect {
	if n <= 1 {
		return []geom.Rect{w}
	}
	out := make([]geom.Rect, n)
	step := w.Width() / float64(n)
	for i := 0; i < n; i++ {
		out[i] = geom.Rect{
			Min: geom.Point{X: w.Min.X + float64(i)*step, Y: w.Min.Y},
			Max: geom.Point{X: w.Min.X + float64(i+1)*step, Y: w.Max.Y},
		}
	}
	// Guard against float drift at the outer edge.
	out[n-1].Max.X = w.Max.X
	return out
}
