package core

import (
	"fmt"

	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
)

// The insufficient-memory scenario of §4 and §6.2: the dataset and index do
// not fit on the client. Two schemes are compared:
//
//   - fully at the server: no data or index is kept at the client; every
//     query is shipped and the server replies with full records (there is
//     nothing on the client for ids to refer to);
//   - "fully at the client": the client holds a memory-budget-sized slice
//     of the data and index, shipped by the server around the first query
//     (Fig. 2). Later queries that fall within the shipment's coverage are
//     answered locally with no communication at all; a query outside it
//     discards the slice and re-requests a fresh shipment.
//
// With enough spatial proximity from one query to the next, the big
// shipment amortizes — the trade-off Fig. 10 sweeps.

// Cache is the client-side shipment holder.
type Cache struct {
	// Budget is the client memory availability (the x of §6.2: 1 MB, 2 MB).
	Budget rtree.Budget
	ship   *rtree.Shipment
	// Refetches counts shipment downloads (1 for a well-localized
	// workload).
	Refetches int64
	// LocalHits counts queries answered without communication.
	LocalHits int64
	// Revalidations and StaleServed are maintained by the update-handling
	// extension (updates.go): delta exchanges performed, and local answers
	// served while changes were pending at the server.
	Revalidations int64
	StaleServed   int64

	// epoch is the server epoch the cached records reflect;
	// sinceValidation counts local answers since the last delta exchange.
	epoch           int64
	sinceValidation int64
}

// NewCache returns an empty cache with the given byte budget for a dataset
// with the given record size.
func NewCache(budgetBytes, recordBytes int) *Cache {
	return &Cache{Budget: rtree.Budget{Bytes: budgetBytes, RecordBytes: recordBytes}}
}

// Holds reports whether the cache can answer the window locally.
func (c *Cache) Holds(q Query) bool {
	return c.ship != nil && q.Kind == RangeQuery && c.ship.Coverage.ContainsRect(q.Window)
}

// RunInsufficientServer executes q fully at the server with no client-side
// data: identical to the adequate-memory fully-at-server scheme with the
// data absent from the client.
func (e *Engine) RunInsufficientServer(q Query) Answer {
	return e.runFullyServer(q, DataAtServerOnly)
}

// RunInsufficientClient executes a range query under the client-caching
// scheme. It returns the answer and whether the query was answered locally.
// Only range queries are supported — Fig. 10 sweeps range queries, and the
// coverage guarantee is defined for windows.
func (e *Engine) RunInsufficientClient(q Query, cache *Cache) (Answer, bool, error) {
	if q.Kind != RangeQuery {
		return Answer{}, false, fmt.Errorf("core: insufficient-memory client scheme supports range queries, got %v", q.Kind)
	}
	if cache == nil {
		return Answer{}, false, fmt.Errorf("core: nil cache")
	}
	if e.Master == nil {
		return Answer{}, false, fmt.Errorf("core: insufficient-memory schemes need a packed R-tree master index")
	}

	if cache.Holds(q) {
		cache.LocalHits++
		return e.answerFromCache(q, cache), true, nil
	}

	// Miss: discard the slice and re-request around this query. The request
	// carries the query plus the client's memory availability (§4).
	cache.Refetches++
	e.Sys.ClientCompute(func(rec ops.Recorder) { rec.Op(ops.OpDispatch, 1) })
	e.Sys.Send(QueryRequestBytesFor(q))

	var ship *rtree.Shipment
	var err error
	e.Sys.ServerCompute(func(rec ops.Recorder) {
		rec.Op(ops.OpDispatch, 1)
		ship, err = e.Master.ExtractSubset(q.Window, cache.Budget, rec)
	})
	if err != nil {
		return Answer{}, false, err
	}

	payload := ShipmentPayloadBytes(len(ship.Items), cache.Budget.RecordBytes, ship.IndexBytes())
	e.Sys.Receive(payload)

	// Install the shipment: copy records and index out of the receive
	// buffer into client memory.
	e.Sys.ClientCompute(func(rec ops.Recorder) {
		rec.Op(ops.OpCopyWord, payload/4)
		rec.Load(ops.BufferBase, payload)
		rec.Store(ops.DataBase, len(ship.Items)*cache.Budget.RecordBytes)
		rec.Store(ops.IndexBase, ship.IndexBytes())
	})
	cache.ship = ship

	if !cache.Holds(q) {
		// The budget could not hold even this query's full answer
		// (coverage is empty) — the scheme cannot answer it correctly.
		return Answer{}, false, fmt.Errorf("core: client budget %d B cannot hold the answer to %v", cache.Budget.Bytes, q.Window)
	}
	return e.answerFromCache(q, cache), false, nil
}

// answerFromCache filters on the shipped sub-index and refines against the
// shipped records, all on the client.
func (e *Engine) answerFromCache(q Query, cache *Cache) Answer {
	var ans Answer
	e.Sys.ClientCompute(func(rec ops.Recorder) {
		cands := cache.ship.SubTree.Search(q.Window, rec)
		ans.IDs = e.refine(q, cands, rec, e.localRecordAddr)
	})
	return ans
}
