package core

import (
	"fmt"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
	"mobispatial/internal/sim"
)

// Spatial-join work partitioning — extending the paper's scheme taxonomy to
// the intersection join between two layers (streets × rail/utility lines),
// another of the §7 "other spatial queries". The join, too, splits at the
// filtering/refinement boundary: the filtering step is the synchronized
// traversal of both R-trees (rtree.JoinCandidates), the refinement step the
// exact segment–segment tests over the candidate pairs.
//
// Placement considerations mirror the single-layer schemes, with one twist:
// the join needs *both* layers' indexes for filtering and both layers'
// records for refinement, so the filter-at-client variant only makes sense
// when the (small) overlay layer is replicated.

// JoinSpec binds the two layers and their indexes.
type JoinSpec struct {
	// Base is the large layer (the street network); Overlay the small one
	// (rail/utility lines), with records stored after Base's.
	Base, Overlay         *dataset.Dataset
	BaseTree, OverlayTree *rtree.Tree
	// overlayAddr maps overlay record ids to simulated addresses.
	overlayAddr func(uint32) uint64
}

// NewJoinSpec bulk-loads both indexes. The overlay's index is placed after
// the base index in the simulated address space.
func NewJoinSpec(base, overlay *dataset.Dataset) (*JoinSpec, error) {
	bt, err := rtree.Build(base.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		return nil, err
	}
	ot, err := rtree.Build(overlay.Items(), rtree.Config{
		BaseAddr: ops.IndexBase + uint64(bt.IndexBytes()),
	}, ops.Null{})
	if err != nil {
		return nil, err
	}
	return &JoinSpec{
		Base:        base,
		Overlay:     overlay,
		BaseTree:    bt,
		OverlayTree: ot,
		overlayAddr: overlay.RecordAddrAfter(base),
	}, nil
}

// JoinScheme selects where the join executes.
type JoinScheme uint8

// The evaluated join partitionings.
const (
	// JoinFullyClient: both indexes and layers on the client; no
	// communication.
	JoinFullyClient JoinScheme = iota
	// JoinFullyServer: the query ships; the reply carries the result pairs
	// (8 bytes each — both layers are replicated on the client, so ids
	// suffice).
	JoinFullyServer
	// JoinFilterServerRefineClient: the server runs the synchronized
	// traversal and ships the candidate pairs; the client refines against
	// its local records.
	JoinFilterServerRefineClient
)

var joinSchemeNames = [...]string{
	"join-fully-client", "join-fully-server", "join-filter-server-refine-client",
}

// String implements fmt.Stringer.
func (s JoinScheme) String() string {
	if int(s) < len(joinSchemeNames) {
		return joinSchemeNames[s]
	}
	return "JoinScheme(?)"
}

// PairBytes is the wire size of one candidate/result pair.
const PairBytes = 8

// RunJoin executes the intersection join of the spec's two layers under the
// given scheme on sys, returning the matching pairs.
func RunJoin(sys *sim.System, spec *JoinSpec, scheme JoinScheme) ([]rtree.Pair, error) {
	if spec == nil || spec.BaseTree == nil || spec.OverlayTree == nil {
		return nil, fmt.Errorf("core: incomplete join spec")
	}
	switch scheme {
	case JoinFullyClient:
		var pairs []rtree.Pair
		sys.ClientCompute(func(rec ops.Recorder) {
			cands := rtree.JoinCandidates(spec.BaseTree, spec.OverlayTree, rec)
			pairs = spec.refine(cands, rec)
		})
		return pairs, nil

	case JoinFullyServer:
		sys.ClientCompute(func(rec ops.Recorder) { rec.Op(ops.OpDispatch, 1) })
		sys.Send(QueryRequestBytesFor(Query{}))
		var pairs []rtree.Pair
		sys.ServerCompute(func(rec ops.Recorder) {
			rec.Op(ops.OpDispatch, 1)
			cands := rtree.JoinCandidates(spec.BaseTree, spec.OverlayTree, rec)
			pairs = spec.refine(cands, rec)
			rec.Op(ops.OpCopyWord, len(pairs)*PairBytes/4)
		})
		sys.Receive(ListHeaderPlusPairs(len(pairs)))
		return pairs, nil

	case JoinFilterServerRefineClient:
		sys.ClientCompute(func(rec ops.Recorder) { rec.Op(ops.OpDispatch, 1) })
		sys.Send(QueryRequestBytesFor(Query{}))
		var cands []rtree.Pair
		sys.ServerCompute(func(rec ops.Recorder) {
			rec.Op(ops.OpDispatch, 1)
			cands = rtree.JoinCandidates(spec.BaseTree, spec.OverlayTree, rec)
			rec.Op(ops.OpCopyWord, len(cands)*PairBytes/4)
		})
		sys.Receive(ListHeaderPlusPairs(len(cands)))
		var pairs []rtree.Pair
		sys.ClientCompute(func(rec ops.Recorder) {
			rec.Op(ops.OpCopyWord, len(cands)*PairBytes/4)
			pairs = spec.refine(cands, rec)
		})
		return pairs, nil
	}
	return nil, fmt.Errorf("core: unknown join scheme %v", scheme)
}

// refine applies the exact intersection predicate to the candidate pairs.
func (s *JoinSpec) refine(cands []rtree.Pair, rec ops.Recorder) []rtree.Pair {
	hits := cands[:0:0]
	for _, pr := range cands {
		rec.Load(s.Base.RecordAddr(pr.A), 16)
		rec.Load(s.overlayAddr(pr.B), 16)
		rec.Op(ops.OpRefineRange, 1) // exact segment×segment test ≈ clip cost
		if geom.SegmentsIntersect(s.Base.Seg(pr.A), s.Overlay.Seg(pr.B)) {
			rec.Op(ops.OpResultAppend, 1)
			hits = append(hits, pr)
		}
	}
	return hits
}

// ListHeaderPlusPairs is the payload size of a pair list.
func ListHeaderPlusPairs(n int) int { return IDListBytes(0) + n*PairBytes }
