package core

import (
	"mobispatial/internal/cpu"
	"mobispatial/internal/nic"
	"mobispatial/internal/ops"
	"mobispatial/internal/proto"
)

// Adaptive work partitioning: the paper closes hoping its lessons "provide a
// more systematic way of designing and implementing applications" (§7) —
// this file turns the §4.1 cost model into an online, per-query policy. The
// client estimates the query's work from the dataset's density before
// touching the index, prices every applicable scheme with the platform
// constants it knows (its clock, the Table 2 NIC powers, the link
// bandwidth), and picks the cheapest by energy, breaking near-ties by
// response time.
//
// The reproduced figures explain what the policy ends up doing: point and
// NN queries always stay local (Figs. 4, 6); range queries offload to the
// server once the estimated refinement work outweighs the round trip
// (Fig. 5); and the candidate-upload hybrid is essentially never chosen at
// 1 km — its transmitter cost is exactly why Fig. 5 shows it losing on
// energy everywhere.

// AdaptiveStats counts the policy's decisions.
type AdaptiveStats struct {
	KeptLocal int64
	Offloaded int64
}

// schemeEstimate is one candidate plan's predicted cost.
type schemeEstimate struct {
	scheme  Scheme
	energyJ float64
	seconds float64
}

// RunAdaptive executes q under the adaptive policy with the data replicated
// at the client. NN queries always run locally (the paper's unconditional
// finding).
func (e *Engine) RunAdaptive(q Query, stats *AdaptiveStats) (Answer, error) {
	scheme := e.chooseScheme(q)
	if stats != nil {
		if scheme == FullyClient {
			stats.KeptLocal++
		} else {
			stats.Offloaded++
		}
	}
	return e.Run(q, scheme, DataAtClient)
}

// chooseScheme prices the applicable schemes for q and returns the winner.
func (e *Engine) chooseScheme(q Query) Scheme {
	if q.Kind == NNQuery {
		return FullyClient
	}
	n := e.estimateCandidates(q)
	ests := []schemeEstimate{
		e.estimate(FullyClient, q, n),
		e.estimate(FullyServer, q, n),
		e.estimate(FilterClientRefineServer, q, n),
	}
	best := ests[0]
	for _, est := range ests[1:] {
		if est.energyJ < best.energyJ*0.95 ||
			(est.energyJ < best.energyJ*1.05 && est.seconds < best.seconds) {
			best = est
		}
	}
	return best.scheme
}

// estimateCandidates predicts the filtering output size from the dataset's
// average density. Clustering makes real counts swing around this, but the
// policy only needs the order of magnitude.
func (e *Engine) estimateCandidates(q Query) float64 {
	if q.Kind == PointQuery {
		return 2 // MBRs containing a point: a couple of incident streets
	}
	w := q.Window.Intersection(e.DS.Extent)
	density := float64(e.DS.Len()) / e.DS.Extent.Area()
	n := w.Area() * density
	if n < 1 {
		n = 1
	}
	return n
}

// estimate prices one scheme for a query with n estimated candidates.
func (e *Engine) estimate(s Scheme, q Query, n float64) schemeEstimate {
	params := e.Sys.Params()
	costs := cpu.DefaultOpCosts()
	refineOp := ops.OpRefineRange
	if q.Kind == PointQuery {
		refineOp = ops.OpRefinePoint
	}

	// Per-candidate client cycles: filtering share plus refinement with a
	// record-load miss allowance.
	filterPerCand := float64(costs[ops.OpMBRTest].Instr)*2 + 40
	refinePerCand := float64(costs[refineOp].Instr) + 3*100
	serverIPC := 2.6

	clientHz := params.Client.ClockHz
	serverHz := params.Server.ClockHz
	ptx := nic.TxPowerAt(params.DistanceM)
	pblk := params.Energy.CPUSleepWatts
	const pClient = 0.11 // calibrated active draw, as in the §4.1 advisor

	secsOfBits := func(bits float64) float64 { return bits / params.BandwidthBps }
	wire := func(payload int) float64 { return float64(proto.Packetize(payload).WireBytes * 8) }

	switch s {
	case FullyClient:
		cycles := n * (filterPerCand + refinePerCand)
		secs := cycles / clientHz
		return schemeEstimate{s, (pClient + nic.SleepPower) * secs, secs}

	case FullyServer:
		tx := secsOfBits(wire(proto.QueryRequestBytes))
		rx := secsOfBits(wire(proto.IDListBytes(int(n))))
		wait := n * (filterPerCand + refinePerCand) / serverIPC / serverHz
		secs := tx + rx + wait
		energy := ptx*tx + nic.RxPower*rx + nic.IdlePower*wait + pblk*secs
		return schemeEstimate{s, energy, secs}

	default: // FilterClientRefineServer
		filterCycles := n * filterPerCand
		tx := secsOfBits(wire(proto.QueryRequestBytes + proto.IDListBytes(int(n))))
		rx := secsOfBits(wire(proto.IDListBytes(int(n))))
		wait := n * refinePerCand / serverIPC / serverHz
		secs := filterCycles/clientHz + tx + rx + wait
		energy := (pClient+nic.SleepPower)*(filterCycles/clientHz) +
			ptx*tx + nic.RxPower*rx + nic.IdlePower*wait + pblk*(tx+rx+wait)
		return schemeEstimate{s, energy, secs}
	}
}
