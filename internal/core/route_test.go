package core

import (
	"testing"

	"mobispatial/internal/geom"
	"mobispatial/internal/sim"
)

func routeFixture(t testing.TB) *RouteSpec {
	t.Helper()
	// A compact, dense network so routes exist.
	ds := smallDataset(t, 15000)
	spec, err := NewRouteSpec(ds)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestRouteSchemesAgree(t *testing.T) {
	spec := routeFixture(t)
	from := geom.Point{X: 2000, Y: 2000}
	to := geom.Point{X: 8000, Y: 8000}

	sysC, err := sim.New(sim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	routeC, okC, err := RunRoute(sysC, spec, from, to, RouteFullyClient)
	if err != nil {
		t.Fatal(err)
	}
	sysS, err := sim.New(sim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	routeS, okS, err := RunRoute(sysS, spec, from, to, RouteFullyServer)
	if err != nil {
		t.Fatal(err)
	}
	if okC != okS {
		t.Fatalf("connectivity disagrees: client %v server %v", okC, okS)
	}
	if !okC {
		t.Skip("terminals not connected in this synthetic network")
	}
	if routeC.Meters != routeS.Meters || len(routeC.SegIDs) != len(routeS.SegIDs) {
		t.Fatalf("routes differ: %.1f m/%d segs vs %.1f m/%d segs",
			routeC.Meters, len(routeC.SegIDs), routeS.Meters, len(routeS.SegIDs))
	}

	// Accounting: fully-client is communication-free; fully-server uses the
	// radio and the server.
	rc, rs := sysC.Result(), sysS.Result()
	if rc.TxCycles != 0 || rc.ServerCycles != 0 {
		t.Fatal("fully-client route communicated")
	}
	if rs.ServerCycles == 0 || rs.RxCycles == 0 {
		t.Fatal("fully-server route did not use the server")
	}
	// Routing is compute-heavy: offloading must slash the client cycles.
	if rs.TotalClientCycles() >= rc.TotalClientCycles() {
		t.Fatalf("offloaded route cycles %d not below local %d",
			rs.TotalClientCycles(), rc.TotalClientCycles())
	}
}

func TestRouteValidation(t *testing.T) {
	sys, err := sim.New(sim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunRoute(sys, nil, geom.Point{}, geom.Point{}, RouteFullyClient); err == nil {
		t.Error("nil spec accepted")
	}
	spec := routeFixture(t)
	if _, _, err := RunRoute(sys, spec, geom.Point{}, geom.Point{}, RouteScheme(7)); err == nil {
		t.Error("unknown scheme accepted")
	}
	if RouteFullyClient.String() != "route-fully-client" || RouteScheme(7).String() != "RouteScheme(?)" {
		t.Error("scheme strings")
	}
}
