package core

import "mobispatial/internal/proto"

// Message-size helpers: thin veneer over the protocol catalogue so scheme
// code reads in domain terms.

// QueryRequestBytesFor returns the request payload size for q. All three
// query types fit the fixed-size descriptor (type tag, geometry parameters,
// client memory availability).
func QueryRequestBytesFor(Query) int { return proto.QueryRequestBytes }

// IDListBytes is the payload of an n-id object-id list.
func IDListBytes(n int) int { return proto.IDListBytes(n) }

// DataListBytes is the payload of n full data records.
func DataListBytes(n, recordBytes int) int { return proto.DataListBytes(n, recordBytes) }

// ShipmentPayloadBytes is the payload of an insufficient-memory shipment.
func ShipmentPayloadBytes(items, recordBytes, indexBytes int) int {
	return proto.ShipmentBytes(items, recordBytes, indexBytes)
}
