package core

import (
	"math/rand"
	"sort"
	"testing"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/sim"
)

// smallDataset builds a quick synthetic dataset for unit tests.
func smallDataset(t testing.TB, n int) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.GenConfig{
		Name:           "test",
		NumSegments:    n,
		RecordBytes:    76,
		Extent:         geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 10_000, Y: 10_000}},
		Clusters:       4,
		ClusterStdFrac: 0.1,
		UniformFrac:    0.3,
		StreetSegs:     [2]int{2, 10},
		SegLen:         [2]float64{40, 120},
		GridBias:       0.5,
		Seed:           77,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newEngine(t testing.TB, ds *dataset.Dataset, mutate func(*sim.Params)) *Engine {
	t.Helper()
	p := sim.DefaultParams()
	if mutate != nil {
		mutate(&p)
	}
	sys, err := sim.New(p)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ds, sys)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func sortedIDs(a Answer) []uint32 {
	ids := append([]uint32(nil), a.IDs...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sameIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSchemesAgreeOnAnswers is the core correctness property: every work
// partitioning produces exactly the same query answer.
func TestSchemesAgreeOnAnswers(t *testing.T) {
	ds := smallDataset(t, 8000)
	rng := rand.New(rand.NewSource(5))

	type cfg struct {
		scheme    Scheme
		placement DataPlacement
	}
	cfgs := []cfg{
		{FullyClient, DataAtClient},
		{FullyServer, DataAtClient},
		{FullyServer, DataAtServerOnly},
		{FilterClientRefineServer, DataAtClient},
		{FilterClientRefineServer, DataAtServerOnly},
		{FilterServerRefineClient, DataAtClient},
	}

	for qi := 0; qi < 30; qi++ {
		var q Query
		switch qi % 3 {
		case 0:
			s := ds.Segments[rng.Intn(ds.Len())]
			q = Point(s.A)
		case 1:
			c := ds.Segments[rng.Intn(ds.Len())].Midpoint()
			q = Range(geom.Rect{
				Min: geom.Point{X: c.X - 200, Y: c.Y - 200},
				Max: geom.Point{X: c.X + 200, Y: c.Y + 200},
			})
		default:
			q = Nearest(geom.Point{X: rng.Float64() * 10_000, Y: rng.Float64() * 10_000})
		}

		var ref []uint32
		for ci, c := range cfgs {
			if q.Kind == NNQuery && c.scheme != FullyClient && c.scheme != FullyServer {
				continue
			}
			e := newEngine(t, ds, nil)
			ans, err := e.Run(q, c.scheme, c.placement)
			if err != nil {
				t.Fatalf("query %d scheme %v/%v: %v", qi, c.scheme, c.placement, err)
			}
			ids := sortedIDs(ans)
			if ci == 0 {
				ref = ids
				continue
			}
			if !sameIDs(ids, ref) {
				t.Fatalf("query %d (%v): scheme %v/%v answered %v, fully-client answered %v",
					qi, q.Kind, c.scheme, c.placement, ids, ref)
			}
		}
	}
}

func TestNNRejectsHybridSchemes(t *testing.T) {
	ds := smallDataset(t, 500)
	e := newEngine(t, ds, nil)
	q := Nearest(geom.Point{X: 5, Y: 5})
	if _, err := e.Run(q, FilterClientRefineServer, DataAtClient); err == nil {
		t.Error("NN accepted filter/refine split (client filter)")
	}
	if _, err := e.Run(q, FilterServerRefineClient, DataAtClient); err == nil {
		t.Error("NN accepted filter/refine split (server filter)")
	}
}

func TestFilterServerRefineClientRequiresLocalData(t *testing.T) {
	ds := smallDataset(t, 500)
	e := newEngine(t, ds, nil)
	q := Range(geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 100, Y: 100}})
	if _, err := e.Run(q, FilterServerRefineClient, DataAtServerOnly); err == nil {
		t.Error("refine-at-client without local data accepted")
	}
}

func TestFullyClientUsesNoCommunication(t *testing.T) {
	ds := smallDataset(t, 2000)
	e := newEngine(t, ds, nil)
	q := Range(geom.Rect{Min: geom.Point{X: 1000, Y: 1000}, Max: geom.Point{X: 1500, Y: 1500}})
	if _, err := e.Run(q, FullyClient, DataAtClient); err != nil {
		t.Fatal(err)
	}
	r := e.Sys.Result()
	if r.TxCycles != 0 || r.RxCycles != 0 || r.WaitCycles != 0 || r.ServerCycles != 0 {
		t.Fatalf("fully-client communicated: %+v", r)
	}
	if r.ProcessorCycles == 0 {
		t.Fatal("fully-client did no work")
	}
}

func TestFullyServerClientDoesAlmostNothing(t *testing.T) {
	// Needs a query with substantial compute so that the client's fixed
	// dispatch+protocol overhead is small in comparison — this is exactly
	// why the paper finds offloading useless for tiny point queries.
	ds := smallDataset(t, 8000)
	e := newEngine(t, ds, nil)
	q := Range(geom.Rect{Min: geom.Point{X: 1000, Y: 1000}, Max: geom.Point{X: 6000, Y: 6000}})
	if _, err := e.Run(q, FullyServer, DataAtClient); err != nil {
		t.Fatal(err)
	}
	r := e.Sys.Result()
	if r.ServerCycles == 0 {
		t.Fatal("server did no work")
	}
	if r.TxCycles == 0 || r.RxCycles == 0 {
		t.Fatal("no communication recorded")
	}
	// Client processor work (dispatch + protocol) must be tiny next to the
	// equivalent fully-client execution.
	e2 := newEngine(t, ds, nil)
	if _, err := e2.Run(q, FullyClient, DataAtClient); err != nil {
		t.Fatal(err)
	}
	if r.ProcessorCycles*2 >= e2.Sys.Result().ProcessorCycles {
		t.Fatalf("fully-server client work %d not << fully-client %d",
			r.ProcessorCycles, e2.Sys.Result().ProcessorCycles)
	}
}

func TestDataPresentShrinksReceiveNotTransmit(t *testing.T) {
	// §6.1.1: keeping the data at the client only shrinks the reply (ids
	// instead of records): Rx drops, Tx unchanged — which is why it saves
	// more performance than energy.
	ds := smallDataset(t, 8000)
	q := Range(geom.Rect{Min: geom.Point{X: 2000, Y: 2000}, Max: geom.Point{X: 4000, Y: 4000}})

	eAbsent := newEngine(t, ds, nil)
	if _, err := eAbsent.Run(q, FullyServer, DataAtServerOnly); err != nil {
		t.Fatal(err)
	}
	ePresent := newEngine(t, ds, nil)
	if _, err := ePresent.Run(q, FullyServer, DataAtClient); err != nil {
		t.Fatal(err)
	}
	ra, rp := eAbsent.Sys.Result(), ePresent.Sys.Result()
	if rp.RxCycles >= ra.RxCycles {
		t.Fatalf("data-present Rx %d not < data-absent Rx %d", rp.RxCycles, ra.RxCycles)
	}
	if rp.TxCycles != ra.TxCycles {
		t.Fatalf("data placement changed Tx: %d vs %d", rp.TxCycles, ra.TxCycles)
	}
}

func TestSchemeAndKindStrings(t *testing.T) {
	if FullyClient.String() != "fully-client" || Scheme(99).String() != "Scheme(?)" {
		t.Error("scheme strings")
	}
	if PointQuery.String() != "point" || RangeQuery.String() != "range" || NNQuery.String() != "nn" {
		t.Error("kind strings")
	}
	if QueryKind(99).String() != "QueryKind(?)" {
		t.Error("unknown kind string")
	}
	if DataAtClient.String() != "data-at-client" || DataAtServerOnly.String() != "data-at-server-only" {
		t.Error("placement strings")
	}
}

func TestUnknownSchemeRejected(t *testing.T) {
	ds := smallDataset(t, 100)
	e := newEngine(t, ds, nil)
	if _, err := e.Run(Point(geom.Point{}), Scheme(42), DataAtClient); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
