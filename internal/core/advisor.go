package core

// The quantitative trade-off model of §4.1: closed-form conditions under
// which offloading work to the server beats executing fully at the client,
// from the performance and the energy perspectives. The experiment harness
// uses the full simulation; this model is the paper's intuition pump and is
// exposed for the advisor CLI and as a cheap pre-filter.

// AnalyticInputs are the §4.1 parameters, in the paper's notation.
type AnalyticInputs struct {
	// BandwidthBps is B, the effective wireless bandwidth (bits/s).
	BandwidthBps float64
	// CFullyLocal is the client cycles of a fully-local execution.
	CFullyLocal float64
	// CLocal is the client cycles of the locally-executed portion (w1+w3).
	CLocal float64
	// CProtocol is the client cycles of protocol processing.
	CProtocol float64
	// CW2 is the server cycles of the offloaded portion.
	CW2 float64
	// ClientHz and ServerHz are MhzC and MhzS (in Hz).
	ClientHz float64
	ServerHz float64
	// PacketTxBits / PacketRxBits are the total transmitted / received
	// message sizes in bits (wire bytes × 8).
	PacketTxBits float64
	PacketRxBits float64
	// PClient is the client's compute power draw (W); PTx, PRx, PIdle,
	// PSleep are the NIC state powers (W).
	PClient float64
	PTx     float64
	PRx     float64
	PIdle   float64
	PSleep  float64
	// PBlocked is the client core's draw while blocked on communication.
	PBlocked float64
}

// TxSeconds is PacketTx/B.
func (a AnalyticInputs) TxSeconds() float64 { return a.PacketTxBits / a.BandwidthBps }

// RxSeconds is PacketRx/B.
func (a AnalyticInputs) RxSeconds() float64 { return a.PacketRxBits / a.BandwidthBps }

// WaitSeconds is the client wall time blocked on server work: Cw2/MhzS.
func (a AnalyticInputs) WaitSeconds() float64 { return a.CW2 / a.ServerHz }

// PartitionedCycles returns the client-clock cycles of the partitioned
// execution: CTx + Cwait + CRx + Clocal + Cprotocol, with
// CTx = (PacketTx/B)·MhzC, Cwait = (Cw2/MhzS)·MhzC.
func (a AnalyticInputs) PartitionedCycles() float64 {
	return (a.TxSeconds()+a.RxSeconds()+a.WaitSeconds())*a.ClientHz +
		a.CLocal + a.CProtocol
}

// FullyLocalCycles returns CFullyLocal.
func (a AnalyticInputs) FullyLocalCycles() float64 { return a.CFullyLocal }

// SavesCycles reports the §4.1 performance condition: partitioning wins
// when CFullyLocal > CTx + Cw2·(MhzC/MhzS) + CRx + CLocal + CProtocol.
func (a AnalyticInputs) SavesCycles() bool {
	return a.CFullyLocal > a.PartitionedCycles()
}

// FullyLocalJoules returns the fully-local energy: (PClient + PSleep) ×
// CFullyLocal/MhzC — the client computes with the NIC asleep.
func (a AnalyticInputs) FullyLocalJoules() float64 {
	return (a.PClient + a.PSleep) * a.CFullyLocal / a.ClientHz
}

// PartitionedJoules returns the partitioned-execution energy: the
// transmitter and receiver run for the transfer times, the NIC idles (and
// the core blocks) while the server works, and the client pays compute
// power for its local and protocol portions.
func (a AnalyticInputs) PartitionedJoules() float64 {
	return a.PTx*a.TxSeconds() +
		a.PRx*a.RxSeconds() +
		(a.PIdle+a.PBlocked)*a.WaitSeconds() +
		a.PBlocked*(a.TxSeconds()+a.RxSeconds()) +
		(a.PClient+a.PSleep)*(a.CLocal+a.CProtocol)/a.ClientHz
}

// SavesEnergy reports the §4.1 energy condition.
func (a AnalyticInputs) SavesEnergy() bool {
	return a.FullyLocalJoules() > a.PartitionedJoules()
}

// Verdict summarizes both §4.1 conditions.
type Verdict struct {
	SavesCycles bool
	SavesEnergy bool
	// CycleRatio is partitioned/fully-local cycles (<1 = partitioning
	// faster); EnergyRatio likewise.
	CycleRatio  float64
	EnergyRatio float64
}

// Advise evaluates both conditions.
func (a AnalyticInputs) Advise() Verdict {
	v := Verdict{
		SavesCycles: a.SavesCycles(),
		SavesEnergy: a.SavesEnergy(),
	}
	if a.CFullyLocal > 0 {
		v.CycleRatio = a.PartitionedCycles() / a.CFullyLocal
	}
	if fl := a.FullyLocalJoules(); fl > 0 {
		v.EnergyRatio = a.PartitionedJoules() / fl
	}
	return v
}
