package core

import (
	"sort"
	"testing"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/rtree"
	"mobispatial/internal/sim"
)

func joinFixture(t testing.TB) (*JoinSpec, *dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	base := smallDataset(t, 8000)
	overlay, err := dataset.UtilityLines(base, 6, 40, 91)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := NewJoinSpec(base, overlay)
	if err != nil {
		t.Fatal(err)
	}
	return spec, base, overlay
}

func bruteJoin(a, b *dataset.Dataset) []rtree.Pair {
	var out []rtree.Pair
	for i, sa := range a.Segments {
		for j, sb := range b.Segments {
			if geom.SegmentsIntersect(sa, sb) {
				out = append(out, rtree.Pair{A: uint32(i), B: uint32(j)})
			}
		}
	}
	return out
}

func sortPairs(p []rtree.Pair) {
	sort.Slice(p, func(i, j int) bool {
		if p[i].A != p[j].A {
			return p[i].A < p[j].A
		}
		return p[i].B < p[j].B
	})
}

func samePairs(a, b []rtree.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestJoinMatchesBruteForce(t *testing.T) {
	spec, base, overlay := joinFixture(t)
	want := bruteJoin(base, overlay)
	if len(want) == 0 {
		t.Fatal("fixture produced no intersections")
	}
	sys, err := sim.New(sim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunJoin(sys, spec, JoinFullyClient)
	if err != nil {
		t.Fatal(err)
	}
	sortPairs(got)
	sortPairs(want)
	if !samePairs(got, want) {
		t.Fatalf("join returned %d pairs, brute force %d", len(got), len(want))
	}
}

func TestJoinSchemesAgree(t *testing.T) {
	spec, _, _ := joinFixture(t)
	var ref []rtree.Pair
	for i, scheme := range []JoinScheme{JoinFullyClient, JoinFullyServer, JoinFilterServerRefineClient} {
		sys, err := sim.New(sim.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunJoin(sys, spec, scheme)
		if err != nil {
			t.Fatal(err)
		}
		sortPairs(got)
		if i == 0 {
			ref = got
			continue
		}
		if !samePairs(got, ref) {
			t.Fatalf("%v: %d pairs vs fully-client %d", scheme, len(got), len(ref))
		}
	}
}

func TestJoinSchemeAccounting(t *testing.T) {
	spec, _, _ := joinFixture(t)
	results := map[JoinScheme]sim.Result{}
	for _, scheme := range []JoinScheme{JoinFullyClient, JoinFullyServer, JoinFilterServerRefineClient} {
		sys, err := sim.New(sim.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunJoin(sys, spec, scheme); err != nil {
			t.Fatal(err)
		}
		results[scheme] = sys.Result()
	}
	if r := results[JoinFullyClient]; r.TxCycles != 0 || r.ServerCycles != 0 {
		t.Fatal("fully-client join communicated")
	}
	if r := results[JoinFullyServer]; r.ServerCycles == 0 || r.RxCycles == 0 {
		t.Fatal("fully-server join did not use the server")
	}
	// Filter-at-server ships candidates (more pairs than results), so its
	// Rx exceeds fully-server's.
	if results[JoinFilterServerRefineClient].RxCycles <= results[JoinFullyServer].RxCycles {
		t.Fatal("candidate shipping not larger than result shipping")
	}
	// And its client does the refinement work.
	if results[JoinFilterServerRefineClient].ProcessorCycles <= results[JoinFullyServer].ProcessorCycles {
		t.Fatal("refine-at-client did no extra client work")
	}
}

func TestJoinValidation(t *testing.T) {
	sys, err := sim.New(sim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunJoin(sys, nil, JoinFullyClient); err == nil {
		t.Error("nil spec accepted")
	}
	spec, _, _ := joinFixture(t)
	if _, err := RunJoin(sys, spec, JoinScheme(9)); err == nil {
		t.Error("unknown scheme accepted")
	}
	if JoinFullyClient.String() != "join-fully-client" || JoinScheme(9).String() != "JoinScheme(?)" {
		t.Error("scheme strings")
	}
}

func TestUtilityLinesGenerator(t *testing.T) {
	base := smallDataset(t, 1000)
	if _, err := dataset.UtilityLines(base, 0, 10, 1); err == nil {
		t.Error("zero lines accepted")
	}
	overlay, err := dataset.UtilityLines(base, 4, 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if overlay.Len() == 0 || overlay.Len() > 100 {
		t.Fatalf("overlay has %d segments", overlay.Len())
	}
	for i, s := range overlay.Segments {
		if !base.Extent.ContainsPoint(s.A) || !base.Extent.ContainsPoint(s.B) {
			t.Fatalf("overlay segment %d escapes the extent", i)
		}
	}
	// Address layout: after the base's records.
	addr := overlay.RecordAddrAfter(base)
	if addr(0) != base.RecordAddr(uint32(base.Len()-1))+uint64(base.RecordBytes) {
		t.Fatal("overlay records do not follow the base records")
	}
}
