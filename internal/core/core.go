// Package core implements the paper's contribution: the work-partitioning
// schemes for mobile spatial queries (§4, Table 1). A query's execution is
// split at the filtering/refinement boundary between a resource-constrained
// mobile client and a resource-rich server across a wireless link, and every
// scheme is executed against the full machine models (internal/sim) to
// produce the client's energy breakdown and end-to-end cycle count.
//
// Adequate-memory schemes (§4, §6.1):
//
//   - FullyClient: filtering + refinement on the client (w2 = 0); needs the
//     index and data locally.
//   - FullyServer: the query is shipped; the server filters and refines and
//     returns either full data records (data absent at client) or just
//     object ids (data present).
//   - FilterClientRefineServer: the client filters on its local index and
//     sends the candidate ids; the server refines and returns records or
//     ids.
//   - FilterServerRefineClient: the server filters and returns candidate
//     ids; the client refines against its local data copy.
//
// Insufficient-memory schemes (§4, §6.2) live in insufficient.go.
package core

import (
	"fmt"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/index"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
	"mobispatial/internal/sim"
)

// QueryKind selects one of the three road-atlas query types of §3.
type QueryKind uint8

// The query types studied by the paper.
const (
	// PointQuery finds all segments incident on a point (what street is
	// this?).
	PointQuery QueryKind = iota
	// RangeQuery finds all segments intersecting a window (magnify a map
	// region).
	RangeQuery
	// NNQuery finds the nearest segment to a point (closest street to a
	// landmark). It has no separate filtering/refinement phases.
	NNQuery
)

var kindNames = [...]string{"point", "range", "nn"}

// String implements fmt.Stringer.
func (k QueryKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "QueryKind(?)"
}

// Query is one spatial query.
type Query struct {
	Kind QueryKind
	// Point is the query point for PointQuery and NNQuery.
	Point geom.Point
	// Window is the query window for RangeQuery.
	Window geom.Rect
	// K is the neighbor count for NNQuery; 0 and 1 both mean the classic
	// single nearest neighbor. k > 1 is the k-NN extension (§7 future
	// work) and needs an access method that supports it (the R-trees do;
	// the PMR quadtree does not).
	K int
}

// Point returns a point query.
func Point(p geom.Point) Query { return Query{Kind: PointQuery, Point: p} }

// Range returns a range query.
func Range(w geom.Rect) Query { return Query{Kind: RangeQuery, Window: w} }

// Nearest returns a nearest-neighbor query.
func Nearest(p geom.Point) Query { return Query{Kind: NNQuery, Point: p} }

// KNearest returns a k-nearest-neighbor query.
func KNearest(p geom.Point, k int) Query { return Query{Kind: NNQuery, Point: p, K: k} }

// Scheme enumerates the work-partitioning strategies of Table 1.
type Scheme uint8

// The adequate-memory schemes.
const (
	FullyClient Scheme = iota
	FullyServer
	FilterClientRefineServer
	FilterServerRefineClient
)

var schemeNames = [...]string{
	"fully-client",
	"fully-server",
	"filter-client-refine-server",
	"filter-server-refine-client",
}

// String implements fmt.Stringer.
func (s Scheme) String() string {
	if int(s) < len(schemeNames) {
		return schemeNames[s]
	}
	return "Scheme(?)"
}

// DataPlacement says whether the data records are replicated on the client.
// With the data present the server can answer with 4-byte object ids instead
// of full records — the message-size optimization §6.1.1 evaluates.
type DataPlacement uint8

// Data placement choices of Table 1.
const (
	DataAtClient DataPlacement = iota
	DataAtServerOnly
)

// String implements fmt.Stringer.
func (p DataPlacement) String() string {
	if p == DataAtClient {
		return "data-at-client"
	}
	return "data-at-server-only"
}

// PointEps is the incidence tolerance of the point query's refinement step,
// in map units (meters): a street is "at" the queried point when it passes
// within this distance. Map rendering pixels are a few meters at street
// zoom.
const PointEps = 2.0

// Engine executes queries under the different schemes against one dataset,
// one access method, and one simulated system. It is not safe for concurrent
// use — experiments build one Engine per sweep point.
type Engine struct {
	DS *dataset.Dataset
	// Tree is the access method used for the filtering step; the paper's
	// experiments use the packed R-tree, and the index-comparison bench
	// swaps in the alternatives (PMR quadtree, insertion-built R-tree).
	Tree index.Index
	// Master is the packed R-tree behind the insufficient-memory schemes,
	// which need its Fig. 2 subset extraction; nil when the engine was
	// built over a different access method.
	Master *rtree.Tree
	Sys    *sim.System
}

// NewEngine builds an Engine over a dataset with a freshly bulk-loaded
// master index. The bulk load itself is not charged to either machine
// (the paper treats index construction as an offline, one-time cost).
func NewEngine(ds *dataset.Dataset, sys *sim.System) (*Engine, error) {
	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		return nil, err
	}
	return &Engine{DS: ds, Tree: tree, Master: tree, Sys: sys}, nil
}

// NewEngineWithTree builds an Engine around an existing master index. Tree
// traversals are read-only, so one tree can safely back many engines
// (the experiment harness shares one index across parallel sweep points).
func NewEngineWithTree(ds *dataset.Dataset, tree *rtree.Tree, sys *sim.System) *Engine {
	return &Engine{DS: ds, Tree: tree, Master: tree, Sys: sys}
}

// NewEngineWithIndex builds an Engine over an arbitrary access method. Only
// the adequate-memory schemes are available (the insufficient-memory
// shipment algorithm is defined on the packed R-tree).
func NewEngineWithIndex(ds *dataset.Dataset, idx index.Index, sys *sim.System) *Engine {
	return &Engine{DS: ds, Tree: idx, Sys: sys}
}

// Answer is a query's result: matching segment ids (or the single nearest
// id for NN queries). Schemes must agree on it — tests verify they do.
type Answer struct {
	IDs []uint32
	// NNDist is the nearest distance for NN queries.
	NNDist float64
}

// Run executes q under the given scheme and data placement, charging all
// work to the engine's simulated system, and returns the answer. NN queries
// support only FullyClient and FullyServer (§6.1.1: no phases to split);
// other schemes return an error for them.
func (e *Engine) Run(q Query, scheme Scheme, placement DataPlacement) (Answer, error) {
	if q.Kind == NNQuery && q.K > 1 {
		if _, ok := e.Tree.(kNearester); !ok {
			return Answer{}, fmt.Errorf("core: access method %T does not support k-NN", e.Tree)
		}
	}
	switch scheme {
	case FullyClient:
		return e.runFullyClient(q), nil
	case FullyServer:
		return e.runFullyServer(q, placement), nil
	case FilterClientRefineServer:
		if q.Kind == NNQuery {
			return Answer{}, fmt.Errorf("core: NN query has no filter/refine split")
		}
		return e.runFilterClientRefineServer(q, placement), nil
	case FilterServerRefineClient:
		if q.Kind == NNQuery {
			return Answer{}, fmt.Errorf("core: NN query has no filter/refine split")
		}
		if placement != DataAtClient {
			return Answer{}, fmt.Errorf("core: %v requires the data at the client", scheme)
		}
		return e.runFilterServerRefineClient(q), nil
	}
	return Answer{}, fmt.Errorf("core: unknown scheme %v", scheme)
}

// filter runs the filtering step of q on rec and returns candidate ids.
func (e *Engine) filter(q Query, rec ops.Recorder) []uint32 {
	switch q.Kind {
	case PointQuery:
		return e.Tree.SearchPoint(q.Point, rec)
	default:
		return e.Tree.Search(q.Window, rec)
	}
}

// refine runs the refinement step over candidates on rec. recordAddr maps a
// candidate id to the address its record is read from (local data copy vs a
// receive buffer). It returns the exact answer ids.
func (e *Engine) refine(q Query, candidates []uint32, rec ops.Recorder, recordAddr func(uint32) uint64) []uint32 {
	hits := candidates[:0:0]
	for _, id := range candidates {
		// Refinement decodes the whole data record (geometry plus the
		// attributes a road-atlas answer carries).
		rec.Load(recordAddr(id), e.DS.RecordBytes)
		s := e.DS.Seg(id)
		var hit bool
		switch q.Kind {
		case PointQuery:
			rec.Op(ops.OpRefinePoint, 1)
			hit = s.ContainsPoint(q.Point, PointEps)
		default:
			rec.Op(ops.OpRefineRange, 1)
			hit = s.IntersectsRect(q.Window)
		}
		if hit {
			rec.Op(ops.OpResultAppend, 1)
			hits = append(hits, id)
		}
	}
	return hits
}

// kNearester is satisfied by access methods offering k-NN search (the
// R-tree variants).
type kNearester interface {
	KNearest(p geom.Point, k int, dist index.DistFunc, rec ops.Recorder) []rtree.Neighbor
}

// nearest runs the (unsplit) NN or k-NN query on rec.
func (e *Engine) nearest(q Query, rec ops.Recorder, recordAddr func(uint32) uint64) Answer {
	dist := func(id uint32) float64 {
		rec.Load(recordAddr(id), e.DS.RecordBytes)
		rec.Op(ops.OpRefineNN, 1)
		return e.DS.Seg(id).DistToPoint(q.Point)
	}
	if q.K > 1 {
		neighbors := e.Tree.(kNearester).KNearest(q.Point, q.K, dist, rec)
		if len(neighbors) == 0 {
			return Answer{}
		}
		ans := Answer{NNDist: neighbors[0].Dist}
		for _, nb := range neighbors {
			ans.IDs = append(ans.IDs, nb.ID)
		}
		return ans
	}
	id, d, ok := e.Tree.Nearest(q.Point, dist, rec)
	if !ok {
		return Answer{}
	}
	return Answer{IDs: []uint32{id}, NNDist: d}
}

// localRecordAddr reads records from the client/server-resident dataset
// region.
func (e *Engine) localRecordAddr(id uint32) uint64 { return e.DS.RecordAddr(id) }

// runFullyClient executes everything on the client; the NIC sleeps
// throughout (§4: w2 = 0).
func (e *Engine) runFullyClient(q Query) Answer {
	var ans Answer
	e.Sys.ClientCompute(func(rec ops.Recorder) {
		if q.Kind == NNQuery {
			ans = e.nearest(q, rec, e.localRecordAddr)
			return
		}
		cands := e.filter(q, rec)
		ans.IDs = e.refine(q, cands, rec, e.localRecordAddr)
	})
	return ans
}

// runFullyServer ships the query; the server filters and refines; the reply
// carries records (data absent) or ids (data present).
func (e *Engine) runFullyServer(q Query, placement DataPlacement) Answer {
	e.Sys.ClientCompute(func(rec ops.Recorder) { rec.Op(ops.OpDispatch, 1) })
	e.Sys.Send(QueryRequestBytesFor(q))

	var ans Answer
	e.Sys.ServerCompute(func(rec ops.Recorder) {
		rec.Op(ops.OpDispatch, 1)
		if q.Kind == NNQuery {
			ans = e.nearest(q, rec, e.localRecordAddr)
			return
		}
		cands := e.filter(q, rec)
		ans.IDs = e.refine(q, cands, rec, e.localRecordAddr)
		// Marshal the reply payload.
		rec.Op(ops.OpCopyWord, replyBytes(len(ans.IDs), placement, e.DS.RecordBytes)/4)
	})

	e.Sys.Receive(replyBytes(len(ans.IDs), placement, e.DS.RecordBytes))
	return ans
}

// runFilterClientRefineServer filters locally, ships the candidate id list,
// and receives the refined answer (w1 = filtering, w2 = refinement).
func (e *Engine) runFilterClientRefineServer(q Query, placement DataPlacement) Answer {
	var cands []uint32
	e.Sys.ClientCompute(func(rec ops.Recorder) {
		rec.Op(ops.OpDispatch, 1)
		cands = e.filter(q, rec)
		rec.Op(ops.OpCopyWord, len(cands)) // marshal candidate ids
	})
	e.Sys.Send(QueryRequestBytesFor(q) + IDListBytes(len(cands)))

	var ans Answer
	e.Sys.ServerCompute(func(rec ops.Recorder) {
		rec.Op(ops.OpDispatch, 1)
		rec.Op(ops.OpCopyWord, len(cands)) // unmarshal candidate ids
		ans.IDs = e.refine(q, cands, rec, e.localRecordAddr)
		rec.Op(ops.OpCopyWord, replyBytes(len(ans.IDs), placement, e.DS.RecordBytes)/4)
	})

	e.Sys.Receive(replyBytes(len(ans.IDs), placement, e.DS.RecordBytes))
	return ans
}

// runFilterServerRefineClient ships the query, receives candidate ids from
// the server's filtering, and refines locally against the client's data
// copy (w2 = filtering, w3 = refinement).
func (e *Engine) runFilterServerRefineClient(q Query) Answer {
	e.Sys.ClientCompute(func(rec ops.Recorder) { rec.Op(ops.OpDispatch, 1) })
	e.Sys.Send(QueryRequestBytesFor(q))

	var cands []uint32
	e.Sys.ServerCompute(func(rec ops.Recorder) {
		rec.Op(ops.OpDispatch, 1)
		cands = e.filter(q, rec)
		rec.Op(ops.OpCopyWord, len(cands))
	})
	e.Sys.Receive(IDListBytes(len(cands)))

	var ans Answer
	e.Sys.ClientCompute(func(rec ops.Recorder) {
		rec.Op(ops.OpCopyWord, len(cands))
		ans.IDs = e.refine(q, cands, rec, e.localRecordAddr)
	})
	return ans
}

// replyBytes is the refined-answer payload: ids when the client holds the
// data, full records otherwise.
func replyBytes(hits int, placement DataPlacement, recordBytes int) int {
	if placement == DataAtClient {
		return IDListBytes(hits)
	}
	return DataListBytes(hits, recordBytes)
}
