package core

import (
	"testing"

	"mobispatial/internal/geom"
	"mobispatial/internal/sim"
)

func TestAdaptiveMatchesAnswers(t *testing.T) {
	ds := smallDataset(t, 10000)
	queries := []Query{
		Point(ds.Segments[7].A),
		Range(geom.Rect{Min: geom.Point{X: 2000, Y: 2000}, Max: geom.Point{X: 6000, Y: 6000}}),
		Nearest(geom.Point{X: 3000, Y: 9000}),
		Range(geom.Rect{Min: geom.Point{X: 100, Y: 100}, Max: geom.Point{X: 300, Y: 300}}),
	}
	for i, q := range queries {
		ref := newEngine(t, ds, nil)
		want, err := ref.Run(q, FullyClient, DataAtClient)
		if err != nil {
			t.Fatal(err)
		}
		ada := newEngine(t, ds, nil)
		got, err := ada.RunAdaptive(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(sortedIDs(got), sortedIDs(want)) {
			t.Fatalf("query %d: adaptive answered %d ids, fully-client %d", i, len(got.IDs), len(want.IDs))
		}
	}
}

func TestAdaptiveDecisionRespondsToWork(t *testing.T) {
	ds := smallDataset(t, 12000)
	fast := func(p *sim.Params) { p.BandwidthBps = 11e6 }
	var stats AdaptiveStats
	e := newEngine(t, ds, fast)

	// Tiny point queries stay local.
	for i := 0; i < 5; i++ {
		if _, err := e.RunAdaptive(Point(ds.Segments[i*13].A), &stats); err != nil {
			t.Fatal(err)
		}
	}
	if stats.Offloaded != 0 {
		t.Fatalf("point queries offloaded: %+v", stats)
	}
	// A heavyweight range query (thousands of candidates) offloads at
	// 11 Mbps.
	big := Range(geom.Rect{Min: geom.Point{X: 500, Y: 500}, Max: geom.Point{X: 9500, Y: 9500}})
	if _, err := e.RunAdaptive(big, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Offloaded == 0 {
		t.Fatalf("heavyweight range query stayed local: %+v", stats)
	}
	// NN always local.
	if _, err := e.RunAdaptive(Nearest(geom.Point{X: 1, Y: 1}), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.KeptLocal < 6 {
		t.Fatalf("local count %d", stats.KeptLocal)
	}
}

func TestAdaptiveBeatsWorstFixedScheme(t *testing.T) {
	// Over a mixed workload the adaptive policy must land at or below the
	// worse of the two fixed extremes on energy — the whole point of
	// choosing per query.
	ds := smallDataset(t, 12000)
	var queries []Query
	for i := 0; i < 10; i++ {
		queries = append(queries, Point(ds.Segments[i*31].A))
	}
	queries = append(queries,
		Range(geom.Rect{Min: geom.Point{X: 1000, Y: 1000}, Max: geom.Point{X: 8000, Y: 8000}}),
		Range(geom.Rect{Min: geom.Point{X: 2000, Y: 5000}, Max: geom.Point{X: 7000, Y: 9000}}),
	)
	fast := func(p *sim.Params) { p.BandwidthBps = 11e6 }

	run := func(f func(e *Engine, q Query) error) float64 {
		e := newEngine(t, ds, fast)
		for _, q := range queries {
			if err := f(e, q); err != nil {
				t.Fatal(err)
			}
		}
		return e.Sys.Result().Energy.Total()
	}
	adaptive := run(func(e *Engine, q Query) error {
		_, err := e.RunAdaptive(q, nil)
		return err
	})
	allLocal := run(func(e *Engine, q Query) error {
		_, err := e.Run(q, FullyClient, DataAtClient)
		return err
	})
	allServer := run(func(e *Engine, q Query) error {
		_, err := e.Run(q, FullyServer, DataAtClient)
		return err
	})
	worst := allLocal
	if allServer > worst {
		worst = allServer
	}
	if adaptive >= worst {
		t.Fatalf("adaptive %.4f J not below worst fixed %.4f J (local %.4f, server %.4f)",
			adaptive, worst, allLocal, allServer)
	}
}
