package core

import (
	"testing"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/sim"
)

func TestInsufficientClientMatchesServerAnswers(t *testing.T) {
	ds := smallDataset(t, 10000)
	seq := dataset.ProximitySequence(ds, 20, 0.01, 41)

	eClient := newEngine(t, ds, nil)
	cache := NewCache(256*1024, ds.RecordBytes)
	eServer := newEngine(t, ds, nil)

	for i, w := range seq {
		q := Range(w)
		ansC, local, err := eClient.RunInsufficientClient(q, cache)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if i == 0 && local {
			t.Fatal("first query cannot be a local hit")
		}
		ansS := eServer.RunInsufficientServer(q)
		if !sameIDs(sortedIDs(ansC), sortedIDs(ansS)) {
			t.Fatalf("query %d: client-cache answer %d ids, server answer %d ids",
				i, len(ansC.IDs), len(ansS.IDs))
		}
	}
	if cache.Refetches == 0 {
		t.Fatal("no shipment ever fetched")
	}
	if cache.LocalHits == 0 {
		t.Fatal("proximity workload produced no local hits")
	}
}

func TestInsufficientClientLocalHitsAreCommunicationFree(t *testing.T) {
	ds := smallDataset(t, 10000)
	seq := dataset.ProximitySequence(ds, 10, 0.01, 43)
	e := newEngine(t, ds, nil)
	cache := NewCache(256*1024, ds.RecordBytes)

	if _, _, err := e.RunInsufficientClient(Range(seq[0]), cache); err != nil {
		t.Fatal(err)
	}
	after := e.Sys.Result()

	for _, w := range seq[1:] {
		if _, local, err := e.RunInsufficientClient(Range(w), cache); err != nil {
			t.Fatal(err)
		} else if !local {
			t.Fatal("proximate query missed the cache")
		}
	}
	final := e.Sys.Result()
	if final.TxCycles != after.TxCycles || final.RxCycles != after.RxCycles {
		t.Fatalf("local hits communicated: tx %d→%d rx %d→%d",
			after.TxCycles, final.TxCycles, after.RxCycles, final.RxCycles)
	}
	if final.ProcessorCycles <= after.ProcessorCycles {
		t.Fatal("local hits did no client work")
	}
}

func TestInsufficientClientRefetchOnFarQuery(t *testing.T) {
	ds := smallDataset(t, 10000)
	e := newEngine(t, ds, nil)
	cache := NewCache(128*1024, ds.RecordBytes)

	// Two queries in opposite corners force a refetch.
	q1 := Range(geom.Rect{Min: geom.Point{X: 100, Y: 100}, Max: geom.Point{X: 300, Y: 300}})
	q2 := Range(geom.Rect{Min: geom.Point{X: 9000, Y: 9000}, Max: geom.Point{X: 9300, Y: 9300}})
	if _, _, err := e.RunInsufficientClient(q1, cache); err != nil {
		t.Fatal(err)
	}
	if _, local, err := e.RunInsufficientClient(q2, cache); err != nil {
		t.Fatal(err)
	} else if local {
		t.Fatal("far query claimed a local hit")
	}
	if cache.Refetches != 2 {
		t.Fatalf("refetches = %d, want 2", cache.Refetches)
	}
}

func TestInsufficientClientRejectsNonRange(t *testing.T) {
	ds := smallDataset(t, 500)
	e := newEngine(t, ds, nil)
	cache := NewCache(128*1024, ds.RecordBytes)
	if _, _, err := e.RunInsufficientClient(Point(geom.Point{}), cache); err == nil {
		t.Error("point query accepted")
	}
	if _, _, err := e.RunInsufficientClient(Range(geom.Rect{}), nil); err == nil {
		t.Error("nil cache accepted")
	}
}

func TestInsufficientClientBudgetTooSmallForAnswer(t *testing.T) {
	ds := smallDataset(t, 10000)
	e := newEngine(t, ds, nil)
	// A budget of ~20 records against a window matching hundreds.
	cache := NewCache(2000, ds.RecordBytes)
	q := Range(geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 10000, Y: 10000}})
	if _, _, err := e.RunInsufficientClient(q, cache); err == nil {
		t.Fatal("oversized answer accepted")
	}
}

// runAmortization executes a y-query proximity sequence under both
// insufficient-memory schemes and returns their results.
func runAmortization(t *testing.T, y int) (caching, server sim.Result) {
	t.Helper()
	ds := smallDataset(t, 10000)
	seq := dataset.ProximitySequence(ds, y, 0.008, 47)
	eC := newEngine(t, ds, nil)
	cache := NewCache(128*1024, ds.RecordBytes)
	eS := newEngine(t, ds, nil)
	for _, w := range seq {
		if _, _, err := eC.RunInsufficientClient(Range(w), cache); err != nil {
			t.Fatal(err)
		}
		eS.RunInsufficientServer(Range(w))
	}
	return eC.Sys.Result(), eS.Sys.Result()
}

func TestCacheAmortizationShape(t *testing.T) {
	// The Fig. 10 mechanism in miniature: with few proximate queries the
	// shipment download dominates and fully-at-server wins both metrics;
	// with enough proximity the caching scheme's total energy drops below
	// fully-at-server (the trade-off the paper sweeps).
	rcFew, rsFew := runAmortization(t, 3)
	if rcFew.Energy.Total() <= rsFew.Energy.Total() {
		t.Fatalf("at y=3 caching energy %.4f J already beat server %.4f J — download not charged?",
			rcFew.Energy.Total(), rsFew.Energy.Total())
	}
	if rcFew.TotalClientCycles() <= rsFew.TotalClientCycles() {
		t.Fatalf("at y=3 caching cycles %d already beat server %d",
			rcFew.TotalClientCycles(), rsFew.TotalClientCycles())
	}

	rcMany, rsMany := runAmortization(t, 120)
	if rcMany.Energy.Total() >= rsMany.Energy.Total() {
		t.Fatalf("after 120 proximate queries caching energy %.3f J not < server %.3f J",
			rcMany.Energy.Total(), rsMany.Energy.Total())
	}
}
