package nic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable2Constants(t *testing.T) {
	if err := SanityCheckTable2(); err != nil {
		t.Fatal(err)
	}
	if TxPower1Km != 3.0891 || TxPower100m != 1.0891 || RxPower != 0.165 ||
		IdlePower != 0.100 || SleepPower != 0.0198 {
		t.Fatal("Table 2 constants drifted")
	}
	if SleepExitLatency != 470e-6 {
		t.Fatalf("sleep exit latency %v", SleepExitLatency)
	}
}

func TestTxPowerMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(math.Mod(a, 5000)), math.Abs(math.Mod(b, 5000))
		if a > b {
			a, b = b, a
		}
		return TxPowerAt(a) <= TxPowerAt(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if TxPowerAt(-10) != TxPowerAt(0) {
		t.Error("negative distance not clamped")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{DistanceM: 0}); err == nil {
		t.Fatal("zero distance accepted")
	}
	n, err := New(Config{DistanceM: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n.TxPower()-TxPower1Km) > 1e-9 {
		t.Fatalf("1 km TxPower = %v", n.TxPower())
	}
}

func TestStateEnergyAccounting(t *testing.T) {
	n, err := New(Config{DistanceM: 1000})
	if err != nil {
		t.Fatal(err)
	}
	n.TransmitFor(1.0)
	n.IdleFor(2.0)
	n.ReceiveFor(3.0)
	n.SleepFor(4.0)
	u := n.Usage()
	if math.Abs(u.TxJoules-TxPower1Km) > 1e-9 {
		t.Errorf("Tx energy %v, want %v", u.TxJoules, TxPower1Km)
	}
	if math.Abs(u.IdleJoules-2*IdlePower) > 1e-9 {
		t.Errorf("Idle energy %v", u.IdleJoules)
	}
	if math.Abs(u.RxJoules-3*RxPower) > 1e-9 {
		t.Errorf("Rx energy %v", u.RxJoules)
	}
	if math.Abs(u.SleepJoules-4*SleepPower) > 1e-9 {
		t.Errorf("Sleep energy %v", u.SleepJoules)
	}
	if math.Abs(u.TotalSeconds()-10) > 1e-9 {
		t.Errorf("total seconds %v, want 10", u.TotalSeconds())
	}
	if math.Abs(u.TotalJoules()-(TxPower1Km+2*IdlePower+3*RxPower+4*SleepPower)) > 1e-9 {
		t.Errorf("total joules %v", u.TotalJoules())
	}
}

func TestSleepExitPenalty(t *testing.T) {
	n, err := New(Config{DistanceM: 100})
	if err != nil {
		t.Fatal(err)
	}
	n.SleepFor(1.0)
	elapsed := n.TransmitFor(0.001)
	if math.Abs(elapsed-(SleepExitLatency+0.001)) > 1e-12 {
		t.Fatalf("transmit after sleep took %v, want exit latency included", elapsed)
	}
	u := n.Usage()
	if u.Wakeups != 1 {
		t.Fatalf("wakeups = %d", u.Wakeups)
	}
	// The exit latency burns idle-level power.
	if math.Abs(u.IdleJoules-SleepExitLatency*IdlePower) > 1e-12 {
		t.Fatalf("wakeup energy %v", u.IdleJoules)
	}
	// Idle -> Transmit costs nothing extra.
	n2, _ := New(Config{DistanceM: 100})
	if got := n2.TransmitFor(0.001); math.Abs(got-0.001) > 1e-12 {
		t.Fatalf("idle->transmit took %v", got)
	}
}

func TestDisableSleepAblation(t *testing.T) {
	n, err := New(Config{DistanceM: 1000, DisableSleep: true})
	if err != nil {
		t.Fatal(err)
	}
	n.SleepFor(2.0)
	u := n.Usage()
	if u.SleepSeconds != 0 {
		t.Fatal("DisableSleep still slept")
	}
	if math.Abs(u.IdleSeconds-2.0) > 1e-12 {
		t.Fatalf("idle seconds %v, want 2", u.IdleSeconds)
	}
	// No wake penalty either.
	if got := n.TransmitFor(0.001); math.Abs(got-0.001) > 1e-12 {
		t.Fatalf("transmit took %v", got)
	}
}

func TestReset(t *testing.T) {
	n, _ := New(Config{DistanceM: 500})
	n.TransmitFor(1)
	n.Reset()
	if u := n.Usage(); u.TotalSeconds() != 0 || u.TotalJoules() != 0 || u.Wakeups != 0 {
		t.Fatalf("usage after reset: %+v", u)
	}
	if n.State() != Idle {
		t.Fatalf("state after reset: %v", n.State())
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Transmit: "TRANSMIT", Receive: "RECEIVE", Idle: "IDLE", Sleep: "SLEEP"} {
		if s.String() != want {
			t.Errorf("State %d = %q", s, s.String())
		}
	}
	if State(99).String() != "State(?)" {
		t.Error("unknown state string")
	}
}

func TestNegativeDurationsIgnored(t *testing.T) {
	n, _ := New(Config{DistanceM: 100})
	n.TransmitFor(-1)
	n.IdleFor(0)
	if u := n.Usage(); u.TotalJoules() != 0 {
		t.Fatalf("negative durations accounted: %+v", u)
	}
}
