// Package nic models the client's wireless network interface card: the
// four-state power machine of §5.2 and Table 2 (TRANSMIT, RECEIVE, IDLE,
// SLEEP), based on the LMX3162 single-chip transceiver the paper cites.
//
// The SLEEP state consumes the least power but is physically disconnected —
// the NIC cannot even sense an incoming message — and takes 470 µs to exit.
// IDLE keeps carrier sense alive (used while awaiting the server's reply);
// TRANSMIT power depends strongly on the distance to the base station: the
// paper quotes 3089.1 mW at 1 km versus 1089.1 mW at 100 m.
package nic

import (
	"fmt"
	"math"
)

// State is a NIC power state.
type State uint8

// The four NIC power states of Table 2.
const (
	Transmit State = iota
	Receive
	Idle
	Sleep
	numStates
)

var stateNames = [numStates]string{"TRANSMIT", "RECEIVE", "IDLE", "SLEEP"}

// String implements fmt.Stringer.
func (s State) String() string {
	if int(s) < int(numStates) {
		return stateNames[s]
	}
	return "State(?)"
}

// Table 2 constants (Watts and seconds).
const (
	// TxPower1Km is transmit power at 1 km range.
	TxPower1Km = 3.0891
	// TxPower100m is transmit power at 100 m range.
	TxPower100m = 1.0891
	// RxPower is receive power.
	RxPower = 0.165
	// IdlePower is carrier-sense idle power.
	IdlePower = 0.100
	// SleepPower is the disconnected sleep power.
	SleepPower = 0.0198
	// SleepExitLatency is the time to transition from SLEEP to an active
	// state [29].
	SleepExitLatency = 470e-6
)

// TxPowerAt returns the transmit power at the given range in meters, using a
// free-space d² amplifier law fitted through the two published points
// (electronics floor + amplifier term). It matches Table 2 exactly at 100 m
// and 1 km.
func TxPowerAt(distanceM float64) float64 {
	// Solve TxPower100m = a + b·100², TxPower1Km = a + b·1000².
	const (
		b = (TxPower1Km - TxPower100m) / (1000*1000 - 100*100)
		a = TxPower100m - b*100*100
	)
	if distanceM < 0 {
		distanceM = 0
	}
	return a + b*distanceM*distanceM
}

// Config parameterizes a NIC instance.
type Config struct {
	// DistanceM is the range to the base station in meters.
	DistanceM float64
	// DisableSleep keeps the NIC in IDLE instead of SLEEP whenever the
	// protocol would sleep it (the NIC-sleep ablation).
	DisableSleep bool
}

// NIC accumulates time and energy per power state over a simulation. It is
// a pure accounting machine: the protocol layer (internal/sim) decides when
// to change states.
type NIC struct {
	cfg     Config
	txPower float64
	state   State
	// seconds[s] and joules[s] accumulate per state.
	seconds [numStates]float64
	joules  [numStates]float64
	// wakeups counts SLEEP exits (each costs SleepExitLatency of idle-power
	// time before the NIC is usable).
	wakeups int64
}

// New builds a NIC for the given configuration; distance must be positive.
func New(cfg Config) (*NIC, error) {
	if cfg.DistanceM <= 0 {
		return nil, fmt.Errorf("nic: distance %v m", cfg.DistanceM)
	}
	return &NIC{cfg: cfg, txPower: TxPowerAt(cfg.DistanceM), state: Idle}, nil
}

// Config returns the NIC configuration.
func (n *NIC) Config() Config { return n.cfg }

// TxPower returns the transmit power at the configured distance.
func (n *NIC) TxPower() float64 { return n.txPower }

// State returns the current power state.
func (n *NIC) State() State { return n.state }

// power returns the draw in state s.
func (n *NIC) power(s State) float64 {
	switch s {
	case Transmit:
		return n.txPower
	case Receive:
		return RxPower
	case Idle:
		return IdlePower
	default:
		return SleepPower
	}
}

// spend accounts dt seconds in state s.
func (n *NIC) spend(s State, dt float64) {
	if dt <= 0 {
		return
	}
	n.seconds[s] += dt
	n.joules[s] += dt * n.power(s)
}

// transition moves to state s, paying the SLEEP exit latency (burned at
// idle power, since the radio is ramping) when leaving SLEEP for an active
// state. It returns the latency incurred so the caller can advance its
// clock.
func (n *NIC) transition(s State) float64 {
	var latency float64
	if n.state == Sleep && s != Sleep {
		latency = SleepExitLatency
		n.spend(Idle, latency)
		n.wakeups++
	}
	n.state = s
	return latency
}

// TransmitFor puts the NIC in TRANSMIT for dt seconds, first paying any
// sleep-exit latency; the total elapsed time is returned.
func (n *NIC) TransmitFor(dt float64) float64 {
	lat := n.transition(Transmit)
	n.spend(Transmit, dt)
	return lat + dt
}

// ReceiveFor puts the NIC in RECEIVE for dt seconds, first paying any
// sleep-exit latency; the total elapsed time is returned.
func (n *NIC) ReceiveFor(dt float64) float64 {
	lat := n.transition(Receive)
	n.spend(Receive, dt)
	return lat + dt
}

// IdleFor keeps the NIC in IDLE (carrier sense) for dt seconds.
func (n *NIC) IdleFor(dt float64) float64 {
	lat := n.transition(Idle)
	n.spend(Idle, dt)
	return lat + dt
}

// SleepFor puts the NIC in SLEEP for dt seconds. With DisableSleep set the
// time is spent in IDLE instead (ablation). Entering sleep is free; the
// exit penalty is charged when the NIC next becomes active.
func (n *NIC) SleepFor(dt float64) float64 {
	if n.cfg.DisableSleep {
		return n.IdleFor(dt)
	}
	n.transition(Sleep)
	n.spend(Sleep, dt)
	return dt
}

// Usage summarizes accumulated NIC time and energy.
type Usage struct {
	TxSeconds, RxSeconds, IdleSeconds, SleepSeconds float64
	TxJoules, RxJoules, IdleJoules, SleepJoules     float64
	Wakeups                                         int64
}

// TotalJoules returns the NIC's total energy.
func (u Usage) TotalJoules() float64 {
	return u.TxJoules + u.RxJoules + u.IdleJoules + u.SleepJoules
}

// TotalSeconds returns the NIC's total accounted time.
func (u Usage) TotalSeconds() float64 {
	return u.TxSeconds + u.RxSeconds + u.IdleSeconds + u.SleepSeconds
}

// Usage returns the accumulated accounting.
func (n *NIC) Usage() Usage {
	return Usage{
		TxSeconds:    n.seconds[Transmit],
		RxSeconds:    n.seconds[Receive],
		IdleSeconds:  n.seconds[Idle],
		SleepSeconds: n.seconds[Sleep],
		TxJoules:     n.joules[Transmit],
		RxJoules:     n.joules[Receive],
		IdleJoules:   n.joules[Idle],
		SleepJoules:  n.joules[Sleep],
		Wakeups:      n.wakeups,
	}
}

// Reset clears the accounting and returns the NIC to IDLE.
func (n *NIC) Reset() {
	n.seconds = [numStates]float64{}
	n.joules = [numStates]float64{}
	n.wakeups = 0
	n.state = Idle
}

// SanityCheckTable2 verifies the fitted distance law reproduces Table 2; it
// exists so tests and the config printer can assert the constants.
func SanityCheckTable2() error {
	if math.Abs(TxPowerAt(100)-TxPower100m) > 1e-9 {
		return fmt.Errorf("nic: TxPowerAt(100m) = %v", TxPowerAt(100))
	}
	if math.Abs(TxPowerAt(1000)-TxPower1Km) > 1e-9 {
		return fmt.Errorf("nic: TxPowerAt(1km) = %v", TxPowerAt(1000))
	}
	return nil
}
