package dataset

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func smallTestDataset(t *testing.T) *Dataset {
	t.Helper()
	cfg := NYCConfig()
	cfg.NumSegments = 2000
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := smallTestDataset(t)
	var buf bytes.Buffer
	n, err := d.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.RecordBytes != d.RecordBytes || got.Extent != d.Extent {
		t.Fatalf("header mismatch: %+v", got.Summary())
	}
	if len(got.Segments) != len(d.Segments) {
		t.Fatalf("segment count %d != %d", len(got.Segments), len(d.Segments))
	}
	for i := range d.Segments {
		if got.Segments[i] != d.Segments[i] {
			t.Fatalf("segment %d differs", i)
		}
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	d := smallTestDataset(t)
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	// Flip a payload byte: checksum must catch it.
	corrupt := append([]byte(nil), pristine...)
	corrupt[len(corrupt)/2] ^= 0xFF
	if _, err := ReadFrom(bytes.NewReader(corrupt)); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corruption not detected: %v", err)
	}

	// Bad magic.
	bad := append([]byte(nil), pristine...)
	bad[0] = 'X'
	if _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}

	// Truncation.
	if _, err := ReadFrom(bytes.NewReader(pristine[:len(pristine)/3])); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	d := smallTestDataset(t)
	path := filepath.Join(t.TempDir(), "test.msds")
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("loaded %d segments, want %d", got.Len(), d.Len())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.msds")); err == nil {
		t.Fatal("missing file accepted")
	}
}
