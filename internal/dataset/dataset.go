// Package dataset provides the line-segment road-atlas datasets and query
// workloads of the paper's evaluation (§5.4).
//
// The paper uses two extracts of the US Census TIGER database: "PA" (139,006
// street segments of four southern-Pennsylvania counties, 10.06 MB) and
// "NYC" (38,778 segments of New York City and Union County NJ, 7.09 MB).
// TIGER extracts are not redistributable inside this repository, so the
// package generates synthetic road networks that preserve the properties
// the experiments depend on: the exact segment counts and byte volumes, the
// clustered spatial density (towns/boroughs vs rural background), grid-like
// local street geometry, and the segment-length scale. DESIGN.md records
// this substitution.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
)

// Dataset is an immutable collection of street segments plus the physical
// record layout used for message-size and memory accounting. Record i lives
// at simulated address DataBase + i×RecordBytes; a record holds the segment
// endpoints plus TIGER-style attributes (street name, class, zips), which is
// why RecordBytes is much larger than the 16 geometry bytes.
type Dataset struct {
	Name        string
	Segments    []geom.Segment
	RecordBytes int
	Extent      geom.Rect
}

// Len returns the number of segments.
func (d *Dataset) Len() int { return len(d.Segments) }

// TotalBytes returns the byte volume of all data records — the "10.06 MB"
// style figure of §5.4.
func (d *Dataset) TotalBytes() int { return len(d.Segments) * d.RecordBytes }

// RecordAddr returns the simulated address of record id.
func (d *Dataset) RecordAddr(id uint32) uint64 {
	return ops.DataBase + uint64(id)*uint64(d.RecordBytes)
}

// Items returns the rtree bulk-load items for the dataset.
func (d *Dataset) Items() []rtree.Item {
	items := make([]rtree.Item, len(d.Segments))
	for i, s := range d.Segments {
		items[i] = rtree.Item{MBR: s.MBR(), ID: uint32(i)}
	}
	return items
}

// Seg returns the segment with the given id.
func (d *Dataset) Seg(id uint32) geom.Segment { return d.Segments[id] }

// GenConfig parameterizes the synthetic road-network generator.
type GenConfig struct {
	Name        string
	NumSegments int
	RecordBytes int
	// Extent is the map area in meters.
	Extent geom.Rect
	// Clusters is the number of town/borough density clusters.
	Clusters int
	// ClusterStdFrac is each cluster's Gaussian sigma as a fraction of the
	// extent's smaller side.
	ClusterStdFrac float64
	// UniformFrac is the fraction of streets seeded uniformly (rural
	// background roads) rather than from a cluster.
	UniformFrac float64
	// StreetSegs is the [min,max) number of segments per street polyline.
	StreetSegs [2]int
	// SegLen is the [min,max) length in meters of one segment.
	SegLen [2]float64
	// GridBias in [0,1] pulls street headings toward the axes (1 = strict
	// Manhattan grid, 0 = free directions).
	GridBias float64
	Seed     int64
}

// Validate reports configuration errors.
func (c GenConfig) Validate() error {
	switch {
	case c.NumSegments <= 0:
		return fmt.Errorf("dataset: NumSegments %d", c.NumSegments)
	case c.RecordBytes < 16:
		return fmt.Errorf("dataset: RecordBytes %d < 16 (endpoints alone need 16)", c.RecordBytes)
	case c.Extent.IsEmpty() || c.Extent.Area() <= 0:
		return fmt.Errorf("dataset: extent %v has no area", c.Extent)
	case c.StreetSegs[0] < 1 || c.StreetSegs[1] < c.StreetSegs[0]:
		return fmt.Errorf("dataset: bad StreetSegs %v", c.StreetSegs)
	case c.SegLen[0] <= 0 || c.SegLen[1] < c.SegLen[0]:
		return fmt.Errorf("dataset: bad SegLen %v", c.SegLen)
	}
	return nil
}

// Generate builds a synthetic road network. The same config always yields
// the same dataset (generation is fully deterministic in Seed).
func Generate(cfg GenConfig) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{
		Name:        cfg.Name,
		Segments:    make([]geom.Segment, 0, cfg.NumSegments),
		RecordBytes: cfg.RecordBytes,
		Extent:      cfg.Extent,
	}

	// Town centers.
	type clusterT struct {
		c     geom.Point
		sigma float64
	}
	clusters := make([]clusterT, cfg.Clusters)
	side := math.Min(cfg.Extent.Width(), cfg.Extent.Height())
	for i := range clusters {
		clusters[i] = clusterT{
			c: geom.Point{
				X: cfg.Extent.Min.X + rng.Float64()*cfg.Extent.Width(),
				Y: cfg.Extent.Min.Y + rng.Float64()*cfg.Extent.Height(),
			},
			// Vary town sizes around the configured sigma.
			sigma: side * cfg.ClusterStdFrac * (0.5 + rng.Float64()),
		}
	}

	clamp := func(p geom.Point) geom.Point {
		p.X = math.Max(cfg.Extent.Min.X, math.Min(cfg.Extent.Max.X, p.X))
		p.Y = math.Max(cfg.Extent.Min.Y, math.Min(cfg.Extent.Max.Y, p.Y))
		return p
	}

	stalled := 0
	for len(d.Segments) < cfg.NumSegments {
		before := len(d.Segments)
		// Seed point for a new street.
		var at geom.Point
		if cfg.Clusters == 0 || rng.Float64() < cfg.UniformFrac {
			at = geom.Point{
				X: cfg.Extent.Min.X + rng.Float64()*cfg.Extent.Width(),
				Y: cfg.Extent.Min.Y + rng.Float64()*cfg.Extent.Height(),
			}
		} else {
			cl := clusters[rng.Intn(len(clusters))]
			at = clamp(geom.Point{
				X: cl.c.X + rng.NormFloat64()*cl.sigma,
				Y: cl.c.Y + rng.NormFloat64()*cl.sigma,
			})
		}
		// Street heading, optionally snapped toward the axes.
		heading := rng.Float64() * 2 * math.Pi
		if cfg.GridBias > 0 {
			snapped := math.Round(heading/(math.Pi/2)) * (math.Pi / 2)
			heading = heading*(1-cfg.GridBias) + snapped*cfg.GridBias
		}
		nSegs := cfg.StreetSegs[0]
		if span := cfg.StreetSegs[1] - cfg.StreetSegs[0]; span > 0 {
			nSegs += rng.Intn(span)
		}
		for s := 0; s < nSegs && len(d.Segments) < cfg.NumSegments; s++ {
			length := cfg.SegLen[0] + rng.Float64()*(cfg.SegLen[1]-cfg.SegLen[0])
			next := clamp(geom.Point{
				X: at.X + math.Cos(heading)*length,
				Y: at.Y + math.Sin(heading)*length,
			})
			if next == at {
				break // pinned at the boundary; start a new street
			}
			d.Segments = append(d.Segments, geom.Segment{A: at, B: next})
			at = next
			// Streets meander slightly.
			heading += (rng.Float64() - 0.5) * 0.3
		}
		if len(d.Segments) == before {
			if stalled++; stalled > 100000 {
				return nil, fmt.Errorf("dataset: generator stalled at %d/%d segments (degenerate config?)", before, cfg.NumSegments)
			}
		} else {
			stalled = 0
		}
	}
	return d, nil
}

// PAConfig returns the generator configuration for the PA-like dataset:
// 139,006 segments / 10.06 MB (RecordBytes 76) over a 100×80 km rural area
// with a handful of towns (Fulton, Franklin, Bedford, Huntingdon counties in
// the paper).
func PAConfig() GenConfig {
	return GenConfig{
		Name:           "PA",
		NumSegments:    139006,
		RecordBytes:    76, // 10.06 MB / 139,006 records ≈ 75.9 B
		Extent:         geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 100_000, Y: 80_000}},
		Clusters:       14,
		ClusterStdFrac: 0.05,
		UniformFrac:    0.35,
		StreetSegs:     [2]int{3, 18},
		SegLen:         [2]float64{60, 220},
		GridBias:       0.4,
		Seed:           1001,
	}
}

// NYCConfig returns the generator configuration for the NYC-like dataset:
// 38,778 segments / 7.09 MB (RecordBytes 192 — urban TIGER records carry
// longer name/address attribute payloads) over a dense 40×40 km grid.
func NYCConfig() GenConfig {
	return GenConfig{
		Name:           "NYC",
		NumSegments:    38778,
		RecordBytes:    192, // 7.09 MB / 38,778 records ≈ 191.7 B
		Extent:         geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 40_000, Y: 40_000}},
		Clusters:       6,
		ClusterStdFrac: 0.12,
		UniformFrac:    0.08,
		StreetSegs:     [2]int{4, 24},
		SegLen:         [2]float64{50, 130},
		GridBias:       0.85,
		Seed:           2002,
	}
}

// PA generates the PA-like dataset.
func PA() *Dataset { return mustGenerate(PAConfig()) }

// NYC generates the NYC-like dataset.
func NYC() *Dataset { return mustGenerate(NYCConfig()) }

func mustGenerate(cfg GenConfig) *Dataset {
	d, err := Generate(cfg)
	if err != nil {
		panic(err) // static configs are validated by tests
	}
	return d
}

// Stats summarizes a dataset for reporting.
type Stats struct {
	Name        string
	Segments    int
	TotalBytes  int
	RecordBytes int
	Extent      geom.Rect
	MeanSegLen  float64
}

// Summary computes dataset statistics.
func (d *Dataset) Summary() Stats {
	var total float64
	for _, s := range d.Segments {
		total += s.Length()
	}
	mean := 0.0
	if len(d.Segments) > 0 {
		mean = total / float64(len(d.Segments))
	}
	return Stats{
		Name:        d.Name,
		Segments:    len(d.Segments),
		TotalBytes:  d.TotalBytes(),
		RecordBytes: d.RecordBytes,
		Extent:      d.Extent,
		MeanSegLen:  mean,
	}
}

// UtilityLines generates a sparse overlay layer for spatial joins: long
// meandering polylines (rail lines, rivers, transmission corridors) crossing
// the base dataset's extent. The layer is its own Dataset so both join
// inputs carry record layouts and addresses; its records live immediately
// after the base dataset's region.
func UtilityLines(base *Dataset, lines, segsPerLine int, seed int64) (*Dataset, error) {
	if lines <= 0 || segsPerLine <= 0 {
		return nil, fmt.Errorf("dataset: utility layer needs positive sizes")
	}
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		Name:        base.Name + "-utility",
		RecordBytes: base.RecordBytes,
		Extent:      base.Extent,
		Segments:    make([]geom.Segment, 0, lines*segsPerLine),
	}
	w, h := base.Extent.Width(), base.Extent.Height()
	for l := 0; l < lines; l++ {
		// Enter at a random edge point, head across the extent.
		at := geom.Point{
			X: base.Extent.Min.X + rng.Float64()*w,
			Y: base.Extent.Min.Y,
		}
		heading := math.Pi/2 + (rng.Float64()-0.5)*0.8 // roughly northward
		if l%2 == 1 {
			at = geom.Point{X: base.Extent.Min.X, Y: base.Extent.Min.Y + rng.Float64()*h}
			heading = (rng.Float64() - 0.5) * 0.8 // roughly eastward
		}
		step := math.Max(w, h) / float64(segsPerLine)
		for s := 0; s < segsPerLine; s++ {
			next := geom.Point{
				X: at.X + math.Cos(heading)*step,
				Y: at.Y + math.Sin(heading)*step,
			}
			next.X = math.Max(base.Extent.Min.X, math.Min(base.Extent.Max.X, next.X))
			next.Y = math.Max(base.Extent.Min.Y, math.Min(base.Extent.Max.Y, next.Y))
			if next == at {
				break
			}
			d.Segments = append(d.Segments, geom.Segment{A: at, B: next})
			at = next
			heading += (rng.Float64() - 0.5) * 0.4
		}
	}
	return d, nil
}

// RecordAddrAfter returns a record-address function for a layer stored
// after another dataset in the simulated data region.
func (d *Dataset) RecordAddrAfter(base *Dataset) func(uint32) uint64 {
	offset := ops.DataBase + uint64(base.Len())*uint64(base.RecordBytes)
	return func(id uint32) uint64 { return offset + uint64(id)*uint64(d.RecordBytes) }
}
