package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"mobispatial/internal/geom"
)

// Binary dataset persistence so generated datasets can be exported,
// version-controlled, and re-imported without rerunning the generator.
//
// Format (little endian):
//
//	magic "MSDS" | version u16 | name len u16 | name bytes
//	recordBytes u32 | segment count u32 | extent 4×f64
//	segments: count × 4×f64 (ax ay bx by)
//	crc32 (IEEE) of everything before it
const (
	fileMagic   = "MSDS"
	fileVersion = 1
)

// WriteTo serializes the dataset.
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	cw := &countingCRCWriter{w: w}
	write := func(v interface{}) error { return binary.Write(cw, binary.LittleEndian, v) }

	if _, err := cw.Write([]byte(fileMagic)); err != nil {
		return cw.n, err
	}
	if err := write(uint16(fileVersion)); err != nil {
		return cw.n, err
	}
	name := []byte(d.Name)
	if len(name) > math.MaxUint16 {
		return cw.n, fmt.Errorf("dataset: name too long")
	}
	if err := write(uint16(len(name))); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write(name); err != nil {
		return cw.n, err
	}
	if err := write(uint32(d.RecordBytes)); err != nil {
		return cw.n, err
	}
	if err := write(uint32(len(d.Segments))); err != nil {
		return cw.n, err
	}
	ext := [4]float64{d.Extent.Min.X, d.Extent.Min.Y, d.Extent.Max.X, d.Extent.Max.Y}
	if err := write(ext); err != nil {
		return cw.n, err
	}
	for _, s := range d.Segments {
		if err := write([4]float64{s.A.X, s.A.Y, s.B.X, s.B.Y}); err != nil {
			return cw.n, err
		}
	}
	sum := cw.crc
	if err := binary.Write(cw.w, binary.LittleEndian, sum); err != nil {
		return cw.n, err
	}
	return cw.n + 4, nil
}

// ReadFrom deserializes a dataset written by WriteTo.
func ReadFrom(r io.Reader) (*Dataset, error) {
	cr := &countingCRCReader{r: r}
	read := func(v interface{}) error { return binary.Read(cr, binary.LittleEndian, v) }

	magic := make([]byte, 4)
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, err
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	var version uint16
	if err := read(&version); err != nil {
		return nil, err
	}
	if version != fileVersion {
		return nil, fmt.Errorf("dataset: unsupported version %d", version)
	}
	var nameLen uint16
	if err := read(&nameLen); err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(cr, name); err != nil {
		return nil, err
	}
	var recordBytes, count uint32
	if err := read(&recordBytes); err != nil {
		return nil, err
	}
	if err := read(&count); err != nil {
		return nil, err
	}
	if recordBytes < 16 {
		return nil, fmt.Errorf("dataset: record bytes %d", recordBytes)
	}
	var ext [4]float64
	if err := read(&ext); err != nil {
		return nil, err
	}
	d := &Dataset{
		Name:        string(name),
		RecordBytes: int(recordBytes),
		Extent: geom.Rect{
			Min: geom.Point{X: ext[0], Y: ext[1]},
			Max: geom.Point{X: ext[2], Y: ext[3]},
		},
		Segments: make([]geom.Segment, count),
	}
	for i := range d.Segments {
		var v [4]float64
		if err := read(&v); err != nil {
			return nil, err
		}
		d.Segments[i] = geom.Segment{
			A: geom.Point{X: v[0], Y: v[1]},
			B: geom.Point{X: v[2], Y: v[3]},
		}
	}
	want := cr.crc
	var got uint32
	if err := binary.Read(cr.r, binary.LittleEndian, &got); err != nil {
		return nil, err
	}
	if got != want {
		return nil, fmt.Errorf("dataset: checksum mismatch (file %08x, computed %08x)", got, want)
	}
	return d, nil
}

// SaveFile writes the dataset to path.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if _, err := d.WriteTo(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset from path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(bufio.NewReader(f))
}

type countingCRCWriter struct {
	w   io.Writer
	n   int64
	crc uint32
}

func (c *countingCRCWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

type countingCRCReader struct {
	r   io.Reader
	crc uint32
}

func (c *countingCRCReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}
