package dataset

import (
	"math"
	"testing"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
)

func TestGenerateValidation(t *testing.T) {
	bad := []GenConfig{
		{},
		{NumSegments: 10, RecordBytes: 8, Extent: geom.Rect{Max: geom.Point{X: 1, Y: 1}}, StreetSegs: [2]int{1, 2}, SegLen: [2]float64{1, 2}},
		{NumSegments: 10, RecordBytes: 76, StreetSegs: [2]int{1, 2}, SegLen: [2]float64{1, 2}}, // empty extent
		{NumSegments: 10, RecordBytes: 76, Extent: geom.Rect{Max: geom.Point{X: 1, Y: 1}}, StreetSegs: [2]int{2, 1}, SegLen: [2]float64{1, 2}},
		{NumSegments: 10, RecordBytes: 76, Extent: geom.Rect{Max: geom.Point{X: 1, Y: 1}}, StreetSegs: [2]int{1, 2}, SegLen: [2]float64{0, 2}},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestPADatasetMatchesPaperFigures(t *testing.T) {
	d := PA()
	if d.Len() != 139006 {
		t.Fatalf("PA segments = %d, want 139006", d.Len())
	}
	// 10.06 MB within 1%.
	if got, want := float64(d.TotalBytes()), 10.06*1024*1024; math.Abs(got-want)/want > 0.01 {
		t.Fatalf("PA bytes = %.2f MB, want ≈10.06 MB", got/1024/1024)
	}
	for i, s := range d.Segments {
		if !d.Extent.ContainsPoint(s.A) || !d.Extent.ContainsPoint(s.B) {
			t.Fatalf("segment %d outside extent: %v", i, s)
		}
	}
}

func TestNYCDatasetMatchesPaperFigures(t *testing.T) {
	d := NYC()
	if d.Len() != 38778 {
		t.Fatalf("NYC segments = %d, want 38778", d.Len())
	}
	if got, want := float64(d.TotalBytes()), 7.09*1024*1024; math.Abs(got-want)/want > 0.01 {
		t.Fatalf("NYC bytes = %.2f MB, want ≈7.09 MB", got/1024/1024)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(PAConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(PAConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Segments {
		if a.Segments[i] != b.Segments[i] {
			t.Fatalf("segment %d differs across runs", i)
		}
	}
}

func TestPAIndexSizeNearPaper(t *testing.T) {
	// Paper: packed R-tree over PA takes ≈3.56 MB; our 20-byte-entry layout
	// should land in the same ballpark (±25%).
	d := PA()
	tr, err := rtree.Build(d.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	gotMB := float64(tr.IndexBytes()) / 1024 / 1024
	if gotMB < 2.5 || gotMB > 4.5 {
		t.Fatalf("PA index = %.2f MB, want ≈3.56 MB ballpark", gotMB)
	}
}

func TestDatasetIsClustered(t *testing.T) {
	// The synthetic network must be non-uniform: compare occupancy variance
	// across a coarse grid to the expectation under uniformity.
	d := PA()
	const g = 16
	var counts [g][g]int
	for _, s := range d.Segments {
		m := s.Midpoint()
		x := int((m.X - d.Extent.Min.X) / d.Extent.Width() * g)
		y := int((m.Y - d.Extent.Min.Y) / d.Extent.Height() * g)
		if x >= g {
			x = g - 1
		}
		if y >= g {
			y = g - 1
		}
		counts[x][y]++
	}
	mean := float64(d.Len()) / (g * g)
	var varSum float64
	for x := 0; x < g; x++ {
		for y := 0; y < g; y++ {
			dlt := float64(counts[x][y]) - mean
			varSum += dlt * dlt
		}
	}
	cv := math.Sqrt(varSum/(g*g)) / mean
	if cv < 0.5 {
		t.Fatalf("coefficient of variation %.2f — dataset looks uniform, want clustered", cv)
	}
}

func TestRecordAddrLayout(t *testing.T) {
	d := PA()
	if d.RecordAddr(0) != ops.DataBase {
		t.Fatal("record 0 not at DataBase")
	}
	if d.RecordAddr(10)-d.RecordAddr(9) != uint64(d.RecordBytes) {
		t.Fatal("records not contiguous")
	}
}

func TestPointQueriesHitData(t *testing.T) {
	d := NYC()
	pts := PointQueries(d, 50, 7)
	if len(pts) != 50 {
		t.Fatalf("got %d points", len(pts))
	}
	tr, err := rtree.Build(d.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if len(tr.SearchPoint(p, ops.Null{})) == 0 {
			t.Fatalf("point query %d at %v hits nothing (endpoints must hit)", i, p)
		}
	}
}

func TestRangeQueriesMatchPaperDistribution(t *testing.T) {
	d := PA()
	wins := RangeQueries(d, 200, 9)
	ext := d.Extent.Area()
	for i, w := range wins {
		frac := w.Area() / ext
		// Clamping can shave the window at the border, so allow the lower
		// bound some slack; the upper bound is exact.
		if frac > 0.0101 || frac < 0.9e-4*0.5 {
			t.Fatalf("window %d area fraction %g outside [0.01%%,1%%]", i, frac)
		}
		if !d.Extent.ContainsRect(w) {
			t.Fatalf("window %d escapes the extent", i)
		}
	}
}

func TestNNQueriesInExtent(t *testing.T) {
	d := PA()
	for i, p := range NNQueries(d, 100, 11) {
		if !d.Extent.ContainsPoint(p) {
			t.Fatalf("NN query %d at %v outside extent", i, p)
		}
	}
}

func TestProximitySequence(t *testing.T) {
	d := PA()
	const y = 40
	seq := ProximitySequence(d, y, 0.01, 13)
	if len(seq) != y+1 {
		t.Fatalf("sequence length %d, want %d", len(seq), y+1)
	}
	anchor := seq[0].Center()
	r := math.Min(d.Extent.Width(), d.Extent.Height()) * 0.01
	for i, w := range seq[1:] {
		if w.Center().Dist(anchor) > 3*r {
			t.Fatalf("follow-up %d strays %.0f m from anchor (limit %.0f)", i, w.Center().Dist(anchor), 3*r)
		}
	}
}

func TestSummary(t *testing.T) {
	d := NYC()
	s := d.Summary()
	if s.Segments != d.Len() || s.TotalBytes != d.TotalBytes() {
		t.Fatalf("summary mismatch: %+v", s)
	}
	if s.MeanSegLen < 40 || s.MeanSegLen > 140 {
		t.Fatalf("NYC mean segment length %.1f m outside configured range", s.MeanSegLen)
	}
}

func BenchmarkGeneratePA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(PAConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
