package dataset

import (
	"math"
	"math/rand"

	"mobispatial/internal/geom"
)

// Workload generation, following §5.4 of the paper:
//
//   - Point queries pick a random segment endpoint (so they actually hit).
//   - Nearest-neighbor queries place the query point uniformly at random in
//     the spatial extent.
//   - Range queries draw the window size between 0.01% and 1% of the extent
//     area, the aspect ratio between 0.25 and 4, and the location from the
//     distribution of the dataset itself (a denser region receives more
//     windows) — implemented by centering windows on random segment
//     midpoints.
//
// Each experiment uses 100 runs with different parameters; the harness sums
// over the runs exactly as the paper's figures do.

// PointQueries returns n point-query locations.
func PointQueries(d *Dataset, n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Point, n)
	for i := range out {
		s := d.Segments[rng.Intn(len(d.Segments))]
		if rng.Intn(2) == 0 {
			out[i] = s.A
		} else {
			out[i] = s.B
		}
	}
	return out
}

// NNQueries returns n nearest-neighbor query points, uniform over the
// extent.
func NNQueries(d *Dataset, n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Point{
			X: d.Extent.Min.X + rng.Float64()*d.Extent.Width(),
			Y: d.Extent.Min.Y + rng.Float64()*d.Extent.Height(),
		}
	}
	return out
}

// RangeQueries returns n range-query windows per the paper's distribution.
func RangeQueries(d *Dataset, n int, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Rect, n)
	for i := range out {
		out[i] = randomWindow(d, rng)
	}
	return out
}

// randomWindow draws one window: area fraction in [0.01%, 1%], aspect in
// [0.25, 4], centered on a random segment midpoint (density-weighted
// location), clamped into the extent.
func randomWindow(d *Dataset, rng *rand.Rand) geom.Rect {
	// Log-uniform area fraction across two decades keeps small and large
	// windows equally represented.
	frac := math.Pow(10, -4+rng.Float64()*2) // 1e-4 .. 1e-2
	area := d.Extent.Area() * frac
	aspect := math.Pow(4, rng.Float64()*2-1) // 0.25 .. 4, log-uniform
	w := math.Sqrt(area * aspect)
	h := area / w
	c := d.Segments[rng.Intn(len(d.Segments))].Midpoint()
	win := geom.Rect{
		Min: geom.Point{X: c.X - w/2, Y: c.Y - h/2},
		Max: geom.Point{X: c.X + w/2, Y: c.Y + h/2},
	}
	return clampRect(win, d.Extent)
}

// clampRect translates win so it fits inside ext (shrinking only if win is
// larger than ext on an axis).
func clampRect(win, ext geom.Rect) geom.Rect {
	if dx := ext.Min.X - win.Min.X; dx > 0 {
		win.Min.X += dx
		win.Max.X += dx
	}
	if dx := win.Max.X - ext.Max.X; dx > 0 {
		win.Min.X -= dx
		win.Max.X -= dx
	}
	if dy := ext.Min.Y - win.Min.Y; dy > 0 {
		win.Min.Y += dy
		win.Max.Y += dy
	}
	if dy := win.Max.Y - ext.Max.Y; dy > 0 {
		win.Min.Y -= dy
		win.Max.Y -= dy
	}
	return win.Intersection(ext)
}

// ProximitySequence generates the insufficient-memory workload of §6.2: an
// anchor range query at a random (density-weighted) location followed by y
// windows confined to a small disc around the anchor, so that they can be
// answered from the data shipped for the anchor query. radiusFrac is the
// disc radius as a fraction of the extent's smaller side.
func ProximitySequence(d *Dataset, y int, radiusFrac float64, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Rect, 0, y+1)
	anchor := randomWindow(d, rng)
	out = append(out, anchor)
	c := anchor.Center()
	r := math.Min(d.Extent.Width(), d.Extent.Height()) * radiusFrac
	for i := 0; i < y; i++ {
		// Follow-up windows near the anchor: magnifying-glass style
		// browsing in one neighborhood, with window sides comparable to
		// the disc radius.
		cx := c.X + (rng.Float64()*2-1)*r
		cy := c.Y + (rng.Float64()*2-1)*r
		w := r * (0.95 + rng.Float64()*0.75)
		h := r * (0.95 + rng.Float64()*0.75)
		win := geom.Rect{
			Min: geom.Point{X: cx - w/2, Y: cy - h/2},
			Max: geom.Point{X: cx + w/2, Y: cy + h/2},
		}
		out = append(out, clampRect(win, d.Extent))
	}
	return out
}
