package cache

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{SizeBytes: 16 * 1024, LineBytes: 32, Assoc: 4},
		{SizeBytes: 8 * 1024, LineBytes: 32, Assoc: 4},
		{SizeBytes: 1024 * 1024, LineBytes: 128, Assoc: 2},
		{SizeBytes: 64, LineBytes: 16, Assoc: 1},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 32, Assoc: 4},
		{SizeBytes: 16 * 1024, LineBytes: 33, Assoc: 4},
		{SizeBytes: 16*1024 + 8, LineBytes: 32, Assoc: 4},
		{SizeBytes: 16 * 1024, LineBytes: 32, Assoc: 0},
		{SizeBytes: 96, LineBytes: 16, Assoc: 2}, // 3 sets, not a power of two
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 32, Assoc: 2})
	_, m := c.Access(0x100, 4, false)
	if m != 1 {
		t.Fatalf("first access misses = %d, want 1", m)
	}
	_, m = c.Access(0x104, 4, false)
	if m != 0 {
		t.Fatalf("same-line access misses = %d, want 0", m)
	}
	if got := c.Stats().Accesses; got != 2 {
		t.Fatalf("accesses = %d, want 2", got)
	}
}

func TestAccessSpanningLines(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 32, Assoc: 2})
	a, m := c.Access(30, 8, false) // crosses the 32-byte boundary
	if a != 2 || m != 2 {
		t.Fatalf("spanning access: accesses=%d misses=%d, want 2/2", a, m)
	}
	a, m = c.Access(0, 128, false) // 4 lines, first two already present
	if a != 4 || m != 2 {
		t.Fatalf("multi-line access: accesses=%d misses=%d, want 4/2", a, m)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct construction: 2-way, line 32, 2 sets (128 bytes total).
	c := New(Config{SizeBytes: 128, LineBytes: 32, Assoc: 2})
	// Three distinct lines mapping to set 0: line addresses 0, 2, 4 (stride
	// = sets*line = 64 bytes).
	c.Access(0, 1, false)   // miss, set0 way0
	c.Access(64, 1, false)  // miss, set0 way1
	c.Access(0, 1, false)   // hit, refresh line 0
	c.Access(128, 1, false) // miss, should evict line at 64 (LRU)
	if _, m := c.Access(0, 1, false); m != 0 {
		t.Error("line 0 was evicted despite being MRU")
	}
	if _, m := c.Access(64, 1, false); m != 1 {
		t.Error("line 64 unexpectedly survived (LRU violated)")
	}
}

func TestWriteBackToLower(t *testing.T) {
	l2 := New(Config{SizeBytes: 4096, LineBytes: 64, Assoc: 2})
	l1 := New(Config{SizeBytes: 128, LineBytes: 32, Assoc: 1}) // 4 sets
	l1.Lower = l2
	l1.Access(0, 4, true) // write-allocate: L1 miss -> L2 read
	if got := l2.Stats().Reads; got != 1 {
		t.Fatalf("L2 reads after L1 miss = %d, want 1", got)
	}
	// Evict the dirty line: same set, different tag (stride 128 bytes).
	l1.Access(128, 4, false)
	if got := l1.Stats().WriteBack; got != 1 {
		t.Fatalf("L1 write-backs = %d, want 1", got)
	}
	if got := l2.Stats().Writes; got != 1 {
		t.Fatalf("L2 writes after write-back = %d, want 1", got)
	}
}

func TestResetClearsEverything(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 32, Assoc: 2})
	c.Access(0, 64, true)
	c.Reset()
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("stats after Reset = %+v", s)
	}
	if _, m := c.Access(0, 1, false); m != 1 {
		t.Fatal("contents survived Reset")
	}
}

func TestHitRate(t *testing.T) {
	if (Stats{}).HitRate() != 1 {
		t.Error("empty stats hit rate should be 1")
	}
	s := Stats{Accesses: 10, Misses: 3}
	if got := s.HitRate(); got != 0.7 {
		t.Errorf("HitRate = %g, want 0.7", got)
	}
}

// refModel is an obviously-correct fully-explicit LRU model used as an
// oracle: map from set -> slice of line tags in MRU order.
type refModel struct {
	lineShift uint
	sets      int
	assoc     int
	content   map[int][]uint64
}

func newRef(cfg Config) *refModel {
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	return &refModel{
		lineShift: uint(log2(cfg.LineBytes)),
		sets:      sets,
		assoc:     cfg.Assoc,
		content:   map[int][]uint64{},
	}
}

func (r *refModel) access(addr uint64) bool { // returns hit
	lineAddr := addr >> r.lineShift
	set := int(lineAddr % uint64(r.sets))
	tag := lineAddr / uint64(r.sets)
	ways := r.content[set]
	for i, w := range ways {
		if w == tag {
			// move to front
			copy(ways[1:i+1], ways[:i])
			ways[0] = tag
			return true
		}
	}
	ways = append([]uint64{tag}, ways...)
	if len(ways) > r.assoc {
		ways = ways[:r.assoc]
	}
	r.content[set] = ways
	return false
}

func TestAgainstReferenceModel(t *testing.T) {
	cfgs := []Config{
		{SizeBytes: 256, LineBytes: 16, Assoc: 1},
		{SizeBytes: 512, LineBytes: 32, Assoc: 2},
		{SizeBytes: 2048, LineBytes: 32, Assoc: 4},
		{SizeBytes: 8 * 1024, LineBytes: 32, Assoc: 4},
	}
	rng := rand.New(rand.NewSource(99))
	for _, cfg := range cfgs {
		c := New(cfg)
		ref := newRef(cfg)
		for i := 0; i < 20000; i++ {
			// Mix of localized and scattered addresses.
			var addr uint64
			if rng.Intn(2) == 0 {
				addr = uint64(rng.Intn(4096))
			} else {
				addr = uint64(rng.Intn(1 << 20))
			}
			_, m := c.Access(addr, 1, rng.Intn(4) == 0)
			hit := ref.access(addr)
			if (m == 0) != hit {
				t.Fatalf("cfg %+v access %d addr %#x: sim hit=%v ref hit=%v", cfg, i, addr, m == 0, hit)
			}
		}
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	// A working set that fits must incur only cold misses.
	cfg := Config{SizeBytes: 8 * 1024, LineBytes: 32, Assoc: 4}
	c := New(cfg)
	lines := cfg.SizeBytes / cfg.LineBytes
	for pass := 0; pass < 5; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i*cfg.LineBytes), 4, false)
		}
	}
	if got, want := c.Stats().Misses, int64(lines); got != want {
		t.Fatalf("misses = %d, want %d (cold only)", got, want)
	}
}

func BenchmarkAccess(b *testing.B) {
	c := New(Config{SizeBytes: 8 * 1024, LineBytes: 32, Assoc: 4})
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 18))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095], 4, false)
	}
}

// accessSeq is a quick-generatable access trace.
type accessSeq struct {
	addrs  []uint64
	writes []bool
}

func (accessSeq) Generate(r *rand.Rand, size int) reflect.Value {
	n := 200 + r.Intn(2000)
	s := accessSeq{addrs: make([]uint64, n), writes: make([]bool, n)}
	base := uint64(r.Intn(1 << 16))
	for i := range s.addrs {
		if r.Intn(3) == 0 {
			s.addrs[i] = uint64(r.Intn(1 << 20)) // scattered
		} else {
			s.addrs[i] = base + uint64(r.Intn(2048)) // localized
		}
		s.writes[i] = r.Intn(4) == 0
	}
	return reflect.ValueOf(s)
}

// TestQuickAgainstReference: arbitrary traces agree with the explicit LRU
// oracle on every hit/miss decision, for several geometries.
func TestQuickAgainstReference(t *testing.T) {
	cfgs := []Config{
		{SizeBytes: 256, LineBytes: 16, Assoc: 1},
		{SizeBytes: 1024, LineBytes: 32, Assoc: 2},
		{SizeBytes: 8 * 1024, LineBytes: 32, Assoc: 4},
	}
	f := func(seq accessSeq, which uint8) bool {
		cfg := cfgs[int(which)%len(cfgs)]
		c := New(cfg)
		ref := newRef(cfg)
		for i, addr := range seq.addrs {
			_, m := c.Access(addr, 1, seq.writes[i])
			if (m == 0) != ref.access(addr) {
				return false
			}
		}
		// Counter consistency.
		st := c.Stats()
		return st.Accesses == int64(len(seq.addrs)) &&
			st.Reads+st.Writes == st.Accesses &&
			st.Misses <= st.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
