// Package cache implements a set-associative LRU hardware-cache simulator.
// It is the common building block for the client's split L1 caches (Table 3
// of the paper: 16 KB 4-way I-cache, 8 KB 4-way D-cache, 32-byte lines) and
// the server's two-level hierarchy (Table 4: 32 KB 2-way L1s with 64-byte
// lines, 1 MB 2-way unified L2 with 128-byte lines).
//
// This is a model of CPU memory hierarchies for the simulator's cycle
// accounting — not to be confused with internal/qcache, the serving tier's
// epoch-invalidated query-result cache.
//
// The simulator tracks only tags — no data — because the machine models need
// hit/miss behavior and access counts, not contents. Accesses are split at
// line boundaries, so a single Access call covering n lines counts as n
// cache accesses (exactly what a blocking cache does for an unaligned
// multi-word structure walk).
package cache

import "fmt"

// Config describes a cache geometry.
type Config struct {
	// SizeBytes is the total capacity. Must be a multiple of
	// LineBytes × Assoc.
	SizeBytes int
	// LineBytes is the line (block) size in bytes; must be a power of two.
	LineBytes int
	// Assoc is the set associativity; Assoc == Sets×0 is invalid, use 1 for
	// direct-mapped.
	Assoc int
}

// Validate checks the geometry for consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	if c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("cache: size %d not divisible by line×assoc %d", c.SizeBytes, c.LineBytes*c.Assoc)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Stats holds access counters for one cache.
type Stats struct {
	Accesses  int64 // line-granular accesses (reads + writes)
	Misses    int64
	Reads     int64
	Writes    int64
	WriteBack int64 // dirty evictions (write-back policy)
}

// HitRate returns the fraction of accesses that hit, or 1 when there were no
// accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 1
	}
	return 1 - float64(s.Misses)/float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// lru is a per-set logical timestamp; larger = more recently used.
	lru uint64
}

// Cache is a set-associative write-back, write-allocate cache model.
type Cache struct {
	cfg       Config
	sets      int
	lineShift uint
	setMask   uint64
	lines     []line // sets × assoc, set-major
	clock     uint64
	stats     Stats
	// Lower, if non-nil, receives every miss and write-back (for multilevel
	// hierarchies). Misses are reads of a full line; write-backs are writes.
	Lower *Cache
}

// New builds a cache from cfg; it panics if cfg is invalid (geometries are
// static configuration, not runtime input).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	c := &Cache{
		cfg:     cfg,
		sets:    sets,
		setMask: uint64(sets - 1),
		lines:   make([]line, sets*cfg.Assoc),
	}
	c.lineShift = uint(log2(cfg.LineBytes))
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStatsOnly zeroes the counters but keeps the cache contents (warm
// restart between measurement intervals).
func (c *Cache) ResetStatsOnly() { c.stats = Stats{} }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.clock = 0
	c.stats = Stats{}
}

// Access touches [addr, addr+size) with a read (write=false) or write
// (write=true). It returns the number of line-granular accesses and the
// number of misses that resulted. size 0 is a no-op.
func (c *Cache) Access(addr uint64, size int, write bool) (accesses, misses int) {
	if size <= 0 {
		return 0, 0
	}
	first := addr >> c.lineShift
	last := (addr + uint64(size) - 1) >> c.lineShift
	for ln := first; ln <= last; ln++ {
		accesses++
		if !c.touchLine(ln, write) {
			misses++
		}
	}
	return accesses, misses
}

// touchLine accesses a single line (identified by addr>>lineShift) and
// reports whether it hit.
func (c *Cache) touchLine(lineAddr uint64, write bool) bool {
	c.clock++
	c.stats.Accesses++
	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	set := int(lineAddr & c.setMask)
	tag := lineAddr >> uint(log2(c.sets))
	base := set * c.cfg.Assoc
	ways := c.lines[base : base+c.cfg.Assoc]

	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.clock
			if write {
				ways[i].dirty = true
			}
			return true
		}
	}
	// Miss: allocate, filling an invalid way if one exists, else evicting
	// the LRU way.
	c.stats.Misses++
	victim := -1
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(ways); i++ {
			if ways[i].lru < ways[victim].lru {
				victim = i
			}
		}
	}
	if ways[victim].valid && ways[victim].dirty {
		c.stats.WriteBack++
		if c.Lower != nil {
			// Reconstruct the victim's line address for the write-back.
			victimLine := ways[victim].tag<<uint(log2(c.sets)) | uint64(set)
			c.Lower.Access(victimLine<<c.lineShift, c.cfg.LineBytes, true)
		}
	}
	if c.Lower != nil {
		c.Lower.Access(lineAddr<<c.lineShift, c.cfg.LineBytes, false)
	}
	ways[victim] = line{tag: tag, valid: true, dirty: write, lru: c.clock}
	return false
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
