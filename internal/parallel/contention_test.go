package parallel

import (
	"math/rand"
	"sync"
	"testing"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
)

// contentionDataset builds one small-but-real dataset and pool shared by the
// contention tests.
func contentionDataset(t testing.TB) (*dataset.Dataset, *Pool) {
	t.Helper()
	cfg := dataset.GenConfig{
		Name:           "contention",
		NumSegments:    6000,
		RecordBytes:    76,
		Extent:         geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 40000, Y: 40000}},
		Clusters:       5,
		ClusterStdFrac: 0.08,
		UniformFrac:    0.2,
		StreetSegs:     [2]int{2, 8},
		SegLen:         [2]float64{40, 150},
		GridBias:       0.7,
		Seed:           42,
	}
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	pool, err := New(ds, tree, 0)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	return ds, pool
}

// TestMixedQueriesUnderContention hammers one shared index with mixed query
// types from many goroutines and cross-checks every answer against a
// single-threaded reference run. Run under -race this is the tier-1 proof
// that the single-query API really is safe for the server's per-connection
// goroutines.
func TestMixedQueriesUnderContention(t *testing.T) {
	ds, pool := contentionDataset(t)
	ext := ds.Extent

	const (
		goroutines = 24
		perG       = 150
	)

	type queryCase struct {
		kind   int // 0 point, 1 range, 2 nn, 3 knn, 4 filter-range
		pt     geom.Point
		window geom.Rect
		k      int
	}
	mk := func(rng *rand.Rand) queryCase {
		qc := queryCase{kind: rng.Intn(5)}
		cx := ext.Min.X + rng.Float64()*ext.Width()
		cy := ext.Min.Y + rng.Float64()*ext.Height()
		qc.pt = geom.Point{X: cx, Y: cy}
		half := 50 + rng.Float64()*2000
		qc.window = geom.Rect{
			Min: geom.Point{X: cx - half, Y: cy - half},
			Max: geom.Point{X: cx + half, Y: cy + half},
		}
		qc.k = 1 + rng.Intn(8)
		return qc
	}

	// Per-goroutine deterministic workloads plus single-threaded reference
	// answers computed before any concurrency starts.
	cases := make([][]queryCase, goroutines)
	wantIDs := make([][][]uint32, goroutines)
	wantNN := make([][]NearestResult, goroutines)
	for g := range cases {
		rng := rand.New(rand.NewSource(int64(1000 + g)))
		cases[g] = make([]queryCase, perG)
		wantIDs[g] = make([][]uint32, perG)
		wantNN[g] = make([]NearestResult, perG)
		for i := range cases[g] {
			qc := mk(rng)
			cases[g][i] = qc
			switch qc.kind {
			case 0:
				wantIDs[g][i] = pool.Point(qc.pt, 2.0)
			case 1:
				wantIDs[g][i] = pool.Range(qc.window)
			case 2:
				wantNN[g][i] = pool.Nearest(qc.pt)
			case 3:
				nbs, ok := pool.KNearest(qc.pt, qc.k)
				if !ok {
					t.Fatal("packed R-tree should support k-NN")
				}
				for _, nb := range nbs {
					wantIDs[g][i] = append(wantIDs[g][i], nb.ID)
				}
			case 4:
				wantIDs[g][i] = pool.FilterRange(qc.window)
			}
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, qc := range cases[g] {
				switch qc.kind {
				case 0:
					if got := pool.Point(qc.pt, 2.0); !sameIDs(got, wantIDs[g][i]) {
						errs <- "point answer diverged under contention"
						return
					}
				case 1:
					if got := pool.Range(qc.window); !sameIDs(got, wantIDs[g][i]) {
						errs <- "range answer diverged under contention"
						return
					}
				case 2:
					if got := pool.Nearest(qc.pt); got != wantNN[g][i] {
						errs <- "nearest answer diverged under contention"
						return
					}
				case 3:
					nbs, _ := pool.KNearest(qc.pt, qc.k)
					got := make([]uint32, 0, len(nbs))
					for _, nb := range nbs {
						got = append(got, nb.ID)
					}
					if !sameIDs(got, wantIDs[g][i]) {
						errs <- "k-NN answer diverged under contention"
						return
					}
				case 4:
					if got := pool.FilterRange(qc.window); !sameIDs(got, wantIDs[g][i]) {
						errs <- "filter answer diverged under contention"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestBatchAndSingleQueryInterleaved runs the batch API (which spawns its
// own worker goroutines) concurrently with single-query callers on the same
// pool — the mqsim-style harness and the server sharing one index.
func TestBatchAndSingleQueryInterleaved(t *testing.T) {
	ds, pool := contentionDataset(t)
	ext := ds.Extent

	rng := rand.New(rand.NewSource(7))
	windows := make([]geom.Rect, 64)
	points := make([]geom.Point, 64)
	for i := range windows {
		cx := ext.Min.X + rng.Float64()*ext.Width()
		cy := ext.Min.Y + rng.Float64()*ext.Height()
		points[i] = geom.Point{X: cx, Y: cy}
		windows[i] = geom.Rect{
			Min: geom.Point{X: cx - 800, Y: cy - 800},
			Max: geom.Point{X: cx + 800, Y: cy + 800},
		}
	}
	wantRange := pool.RangeAll(windows)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := pool.RangeAll(windows)
			for i := range got {
				if !sameIDs(got[i], wantRange[i]) {
					t.Error("batch range answer diverged")
					return
				}
			}
		}()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, p := range points {
				pool.Nearest(p)
				pool.Point(p, 2.0)
			}
		}(w)
	}
	wg.Wait()
}

func sameIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
