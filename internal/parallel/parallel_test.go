package parallel

import (
	"testing"

	"mobispatial/internal/dataset"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
)

func fixture(t testing.TB) (*dataset.Dataset, *rtree.Tree) {
	t.Helper()
	cfg := dataset.NYCConfig()
	cfg.NumSegments = 8000
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	return ds, tree
}

func TestNewValidation(t *testing.T) {
	ds, tree := fixture(t)
	if _, err := New(nil, tree, 4); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := New(ds, nil, 4); err == nil {
		t.Error("nil index accepted")
	}
	p, err := New(ds, tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Workers() < 1 {
		t.Fatal("no workers")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	ds, tree := fixture(t)
	windows := dataset.RangeQueries(ds, 60, 7)
	points := dataset.PointQueries(ds, 60, 8)
	nnPts := dataset.NNQueries(ds, 60, 9)

	seq, err := New(ds, tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(ds, tree, 8)
	if err != nil {
		t.Fatal(err)
	}

	a, b := seq.RangeAll(windows), par.RangeAll(windows)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("range query %d: %d vs %d hits", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("range query %d: order differs at %d", i, j)
			}
		}
	}
	pa, pb := seq.PointAll(points, 2), par.PointAll(points, 2)
	for i := range pa {
		if len(pa[i]) != len(pb[i]) {
			t.Fatalf("point query %d differs", i)
		}
	}
	na, nb := seq.NearestAll(nnPts), par.NearestAll(nnPts)
	for i := range na {
		if na[i] != nb[i] {
			t.Fatalf("NN query %d differs: %+v vs %+v", i, na[i], nb[i])
		}
	}
}

func TestEmptyBatches(t *testing.T) {
	ds, tree := fixture(t)
	p, err := New(ds, tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.RangeAll(nil); len(got) != 0 {
		t.Fatal("empty range batch returned results")
	}
	if got := p.NearestAll(nil); len(got) != 0 {
		t.Fatal("empty NN batch returned results")
	}
}

func TestRefinementActuallyFilters(t *testing.T) {
	ds, tree := fixture(t)
	p, err := New(ds, tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	windows := dataset.RangeQueries(ds, 30, 11)
	hits := p.RangeAll(windows)
	for i, w := range windows {
		for _, id := range hits[i] {
			if !ds.Seg(id).IntersectsRect(w) {
				t.Fatalf("query %d: id %d does not intersect the window", i, id)
			}
		}
		// And nothing intersecting was dropped.
		n := 0
		for sid, s := range ds.Segments {
			if s.IntersectsRect(w) {
				n++
				found := false
				for _, id := range hits[i] {
					if id == uint32(sid) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("query %d: segment %d missing", i, sid)
				}
			}
		}
		if n != len(hits[i]) {
			t.Fatalf("query %d: %d hits, brute force %d", i, len(hits[i]), n)
		}
	}
}

func benchWorkers(b *testing.B, workers int) {
	cfg := dataset.NYCConfig()
	ds, err := dataset.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		b.Fatal(err)
	}
	p, err := New(ds, tree, workers)
	if err != nil {
		b.Fatal(err)
	}
	windows := dataset.RangeQueries(ds, 256, 21)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RangeAll(windows)
	}
	b.ReportMetric(float64(len(windows)*b.N)/b.Elapsed().Seconds(), "queries/s")
}

func BenchmarkThroughput1(b *testing.B)  { benchWorkers(b, 1) }
func BenchmarkThroughput2(b *testing.B)  { benchWorkers(b, 2) }
func BenchmarkThroughput4(b *testing.B)  { benchWorkers(b, 4) }
func BenchmarkThroughput8(b *testing.B)  { benchWorkers(b, 8) }
func BenchmarkThroughput16(b *testing.B) { benchWorkers(b, 16) }
