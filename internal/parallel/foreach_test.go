package parallel

import (
	"sync/atomic"
	"testing"
)

// TestForEachWidthInvariant pins forEach's contract: every index in [0,n)
// is visited exactly once regardless of how n relates to the pool width,
// n == 0 does no work, and n < 0 (a caller bug — a width mismatch between
// the pool and the structure being swept) panics instead of deadlocking.
func TestForEachWidthInvariant(t *testing.T) {
	ds, tree := fixture(t)
	p, err := New(ds, tree, 4)
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{0, 1, 3, 4, 5, 64} { // below, at, and above width
		var calls atomic.Int64
		seen := make([]atomic.Int32, n+1)
		p.forEach(n, func(i int) {
			calls.Add(1)
			seen[i].Add(1)
		})
		if got := calls.Load(); got != int64(n) {
			t.Errorf("forEach(%d): %d calls, want %d", n, got, n)
		}
		for i := 0; i < n; i++ {
			if c := seen[i].Load(); c != 1 {
				t.Errorf("forEach(%d): index %d visited %d times", n, i, c)
			}
		}
	}

	defer func() {
		if recover() == nil {
			t.Error("forEach(-1) did not panic")
		}
	}()
	p.forEach(-1, func(int) {})
}
