// Package parallel executes spatial query workloads concurrently over a
// shared read-only index — the server side of the paper's architecture run
// as a real Go library rather than a simulated machine. Index traversals
// are pure reads, so one packed R-tree serves any number of goroutines; the
// pool fans queries out over workers and preserves input order in the
// results.
//
// This is also the repository's throughput harness: the scaling benchmarks
// measure queries/second against worker count on the full PA dataset.
package parallel

import (
	"fmt"
	"runtime"
	"sync"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/index"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
)

// Pool is a fixed-width worker pool over one dataset and one access method.
type Pool struct {
	ds      *dataset.Dataset
	idx     index.Index
	workers int
}

// New builds a pool; workers <= 0 means GOMAXPROCS.
func New(ds *dataset.Dataset, idx index.Index, workers int) (*Pool, error) {
	if ds == nil || idx == nil {
		return nil, fmt.Errorf("parallel: nil dataset or index")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{ds: ds, idx: idx, workers: workers}, nil
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// Dataset returns the pool's dataset.
func (p *Pool) Dataset() *dataset.Dataset { return p.ds }

// Index returns the pool's access method.
func (p *Pool) Index() index.Index { return p.idx }

// forEach runs fn(i) for every i in [0, n) across the pool's workers.
func (p *Pool) forEach(n int, fn func(i int)) {
	if n == 0 {
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// RangeAll answers every window query (filter + exact refinement) and
// returns the matching ids per query, in input order.
func (p *Pool) RangeAll(windows []geom.Rect) [][]uint32 {
	out := make([][]uint32, len(windows))
	p.forEach(len(windows), func(i int) {
		out[i] = p.rangeOne(windows[i])
	})
	return out
}

func (p *Pool) rangeOne(w geom.Rect) []uint32 {
	cands := p.idx.Search(w, ops.Null{})
	hits := cands[:0:0]
	for _, id := range cands {
		if p.ds.Seg(id).IntersectsRect(w) {
			hits = append(hits, id)
		}
	}
	return hits
}

// PointAll answers every point query with the given incidence tolerance.
func (p *Pool) PointAll(points []geom.Point, eps float64) [][]uint32 {
	out := make([][]uint32, len(points))
	p.forEach(len(points), func(i int) {
		out[i] = p.pointOne(points[i], eps)
	})
	return out
}

func (p *Pool) pointOne(pt geom.Point, eps float64) []uint32 {
	cands := p.idx.SearchPoint(pt, ops.Null{})
	hits := cands[:0:0]
	for _, id := range cands {
		if p.ds.Seg(id).ContainsPoint(pt, eps) {
			hits = append(hits, id)
		}
	}
	return hits
}

// NearestResult is one NN answer.
type NearestResult struct {
	ID   uint32
	Dist float64
	OK   bool
}

// NearestAll answers every nearest-neighbor query.
func (p *Pool) NearestAll(points []geom.Point) []NearestResult {
	out := make([]NearestResult, len(points))
	p.forEach(len(points), func(i int) {
		out[i] = p.Nearest(points[i])
	})
	return out
}

// The single-query API. Index traversals are pure reads, so these methods
// are safe for any number of concurrent callers — this is the interface the
// networked server (internal/serve) drives, one call per in-flight request,
// with the pool width acting as the server's natural parallelism.

// Range answers one window query (filter + exact refinement).
func (p *Pool) Range(w geom.Rect) []uint32 { return p.rangeOne(w) }

// Point answers one point query with the given incidence tolerance.
func (p *Pool) Point(pt geom.Point, eps float64) []uint32 { return p.pointOne(pt, eps) }

// FilterRange runs only the filtering step of a window query and returns the
// candidate ids — the server half of the filter-server/refine-client scheme.
func (p *Pool) FilterRange(w geom.Rect) []uint32 { return p.idx.Search(w, ops.Null{}) }

// FilterPoint runs only the filtering step of a point query.
func (p *Pool) FilterPoint(pt geom.Point) []uint32 { return p.idx.SearchPoint(pt, ops.Null{}) }

// Nearest answers one nearest-neighbor query.
func (p *Pool) Nearest(pt geom.Point) NearestResult {
	id, d, ok := p.idx.Nearest(pt, func(id uint32) float64 {
		return p.ds.Seg(id).DistToPoint(pt)
	}, ops.Null{})
	return NearestResult{ID: id, Dist: d, OK: ok}
}

// kNearester is satisfied by access methods offering k-NN search.
type kNearester interface {
	KNearest(p geom.Point, k int, dist index.DistFunc, rec ops.Recorder) []rtree.Neighbor
}

// KNearest answers one k-nearest-neighbor query; ok is false when the pool's
// access method does not support k-NN (e.g. the PMR quadtree).
func (p *Pool) KNearest(pt geom.Point, k int) (neighbors []rtree.Neighbor, ok bool) {
	kn, ok := p.idx.(kNearester)
	if !ok {
		return nil, false
	}
	return kn.KNearest(pt, k, func(id uint32) float64 {
		return p.ds.Seg(id).DistToPoint(pt)
	}, ops.Null{}), true
}
