// Package parallel executes spatial query workloads concurrently over a
// shared read-only index — the server side of the paper's architecture run
// as a real Go library rather than a simulated machine. Index traversals
// are pure reads, so one packed R-tree serves any number of goroutines; the
// pool fans queries out over workers and preserves input order in the
// results.
//
// This is also the repository's throughput harness: the scaling benchmarks
// measure queries/second against worker count on the full PA dataset.
package parallel

import (
	"fmt"
	"runtime"
	"sync"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/index"
	"mobispatial/internal/ops"
)

// Pool is a fixed-width worker pool over one dataset and one access method.
type Pool struct {
	ds      *dataset.Dataset
	idx     index.Index
	workers int
}

// New builds a pool; workers <= 0 means GOMAXPROCS.
func New(ds *dataset.Dataset, idx index.Index, workers int) (*Pool, error) {
	if ds == nil || idx == nil {
		return nil, fmt.Errorf("parallel: nil dataset or index")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{ds: ds, idx: idx, workers: workers}, nil
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// forEach runs fn(i) for every i in [0, n) across the pool's workers.
func (p *Pool) forEach(n int, fn func(i int)) {
	if n == 0 {
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// RangeAll answers every window query (filter + exact refinement) and
// returns the matching ids per query, in input order.
func (p *Pool) RangeAll(windows []geom.Rect) [][]uint32 {
	out := make([][]uint32, len(windows))
	p.forEach(len(windows), func(i int) {
		out[i] = p.rangeOne(windows[i])
	})
	return out
}

func (p *Pool) rangeOne(w geom.Rect) []uint32 {
	cands := p.idx.Search(w, ops.Null{})
	hits := cands[:0:0]
	for _, id := range cands {
		if p.ds.Seg(id).IntersectsRect(w) {
			hits = append(hits, id)
		}
	}
	return hits
}

// PointAll answers every point query with the given incidence tolerance.
func (p *Pool) PointAll(points []geom.Point, eps float64) [][]uint32 {
	out := make([][]uint32, len(points))
	p.forEach(len(points), func(i int) {
		cands := p.idx.SearchPoint(points[i], ops.Null{})
		hits := cands[:0:0]
		for _, id := range cands {
			if p.ds.Seg(id).ContainsPoint(points[i], eps) {
				hits = append(hits, id)
			}
		}
		out[i] = hits
	})
	return out
}

// NearestResult is one NN answer.
type NearestResult struct {
	ID   uint32
	Dist float64
	OK   bool
}

// NearestAll answers every nearest-neighbor query.
func (p *Pool) NearestAll(points []geom.Point) []NearestResult {
	out := make([]NearestResult, len(points))
	p.forEach(len(points), func(i int) {
		pt := points[i]
		id, d, ok := p.idx.Nearest(pt, func(id uint32) float64 {
			return p.ds.Seg(id).DistToPoint(pt)
		}, ops.Null{})
		out[i] = NearestResult{ID: id, Dist: d, OK: ok}
	})
	return out
}
