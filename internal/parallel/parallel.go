// Package parallel executes spatial query workloads concurrently over a
// shared read-only index — the server side of the paper's architecture run
// as a real Go library rather than a simulated machine. Index traversals
// are pure reads, so one packed R-tree serves any number of goroutines; the
// pool fans queries out over workers and preserves input order in the
// results.
//
// This is also the repository's throughput harness: the scaling benchmarks
// measure queries/second against worker count on the full PA dataset.
package parallel

import (
	"fmt"
	"runtime"
	"sync"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/index"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
)

// Pool is a fixed-width worker pool over one dataset and one access method.
type Pool struct {
	ds      *dataset.Dataset
	idx     index.Index
	workers int
}

// New builds a pool; workers <= 0 means GOMAXPROCS.
func New(ds *dataset.Dataset, idx index.Index, workers int) (*Pool, error) {
	if ds == nil || idx == nil {
		return nil, fmt.Errorf("parallel: nil dataset or index")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{ds: ds, idx: idx, workers: workers}, nil
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// Dataset returns the pool's dataset.
func (p *Pool) Dataset() *dataset.Dataset { return p.ds }

// Index returns the pool's access method.
func (p *Pool) Index() index.Index { return p.idx }

// Len returns the number of indexed items — the serve summary's item count.
func (p *Pool) Len() int { return p.idx.Len() }

// Bounds returns the MBR of all indexed items: straight from the access
// method when it exposes one (rtree.Tree does), otherwise the union of the
// dataset's item MBRs. The serve layer reports it in the partition summary
// the distributed tier's router prunes NN visits with.
func (p *Pool) Bounds() geom.Rect {
	if b, ok := p.idx.(interface{ Bounds() geom.Rect }); ok {
		return b.Bounds()
	}
	r := geom.EmptyRect()
	for _, it := range p.ds.Items() {
		r = r.Union(it.MBR)
	}
	return r
}

// forEach runs fn(i) for every i in [0, n) across the pool's workers.
//
// Width invariant: the number of goroutines spawned is min(p.workers, n) —
// never more workers than items (a worker with no item would park on the
// channel until close, pure overhead) and never more than the pool width
// (the pool's concurrency promise to its caller: internal/serve sizes its
// admission window as a multiple of Workers(), and internal/shard sizes its
// scatter lanes to the same bound). n < 0 is a caller bug and panics via
// the explicit check rather than silently spawning p.workers goroutines
// that then race to receive from a channel nothing ever feeds.
func (p *Pool) forEach(n int, fn func(i int)) {
	if n < 0 {
		panic(fmt.Sprintf("parallel: forEach over negative item count %d", n))
	}
	if n == 0 {
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// RangeAll answers every window query (filter + exact refinement) and
// returns the matching ids per query, in input order.
func (p *Pool) RangeAll(windows []geom.Rect) [][]uint32 {
	out := make([][]uint32, len(windows))
	p.forEach(len(windows), func(i int) {
		out[i] = p.rangeOne(windows[i])
	})
	return out
}

func (p *Pool) rangeOne(w geom.Rect) []uint32 { return p.RangeAppend(nil, w) }

// PointAll answers every point query with the given incidence tolerance.
func (p *Pool) PointAll(points []geom.Point, eps float64) [][]uint32 {
	out := make([][]uint32, len(points))
	p.forEach(len(points), func(i int) {
		out[i] = p.pointOne(points[i], eps)
	})
	return out
}

func (p *Pool) pointOne(pt geom.Point, eps float64) []uint32 { return p.PointAppend(nil, pt, eps) }

// NearestResult is one NN answer.
type NearestResult struct {
	ID   uint32
	Dist float64
	OK   bool
}

// NearestAll answers every nearest-neighbor query.
func (p *Pool) NearestAll(points []geom.Point) []NearestResult {
	out := make([]NearestResult, len(points))
	p.forEach(len(points), func(i int) {
		out[i] = p.Nearest(points[i])
	})
	return out
}

// The single-query API. Index traversals are pure reads, so these methods
// are safe for any number of concurrent callers — this is the interface the
// networked server (internal/serve) drives, one call per in-flight request,
// with the pool width acting as the server's natural parallelism.

// Range answers one window query (filter + exact refinement).
func (p *Pool) Range(w geom.Rect) []uint32 { return p.rangeOne(w) }

// Point answers one point query with the given incidence tolerance.
func (p *Pool) Point(pt geom.Point, eps float64) []uint32 { return p.pointOne(pt, eps) }

// FilterRange runs only the filtering step of a window query and returns the
// candidate ids — the server half of the filter-server/refine-client scheme.
func (p *Pool) FilterRange(w geom.Rect) []uint32 { return p.idx.Search(w, ops.Null{}) }

// FilterPoint runs only the filtering step of a point query.
func (p *Pool) FilterPoint(pt geom.Point) []uint32 { return p.idx.SearchPoint(pt, ops.Null{}) }

// Nearest answers one nearest-neighbor query.
func (p *Pool) Nearest(pt geom.Point) NearestResult {
	id, d, ok := p.idx.Nearest(pt, func(id uint32) float64 {
		return p.ds.Seg(id).DistToPoint(pt)
	}, ops.Null{})
	return NearestResult{ID: id, Dist: d, OK: ok}
}

// kNearester is satisfied by access methods offering k-NN search.
type kNearester interface {
	KNearest(p geom.Point, k int, dist index.DistFunc, rec ops.Recorder) []rtree.Neighbor
}

// KNearest answers one k-nearest-neighbor query; ok is false when the pool's
// access method does not support k-NN (e.g. the PMR quadtree).
func (p *Pool) KNearest(pt geom.Point, k int) (neighbors []rtree.Neighbor, ok bool) {
	kn, ok := p.idx.(kNearester)
	if !ok {
		return nil, false
	}
	return kn.KNearest(pt, k, func(id uint32) float64 {
		return p.ds.Seg(id).DistToPoint(pt)
	}, ops.Null{}), true
}

// The append API. Each method writes its answer into dst's spare capacity
// and returns the extended slice, so a caller that reuses its result buffers
// (the networked server's per-request scratch) pays no allocation on a warm
// query. Answers are bit-identical to the allocating methods above — the
// scratch variants share one traversal implementation with them.

// appendSearcher is satisfied by access methods whose filter step can write
// into a caller-provided slice (the packed R-tree). Other indexes fall back
// to copy-through, which stays correct but allocates inside the index.
type appendSearcher interface {
	AppendSearch(dst []uint32, w geom.Rect, rec ops.Recorder) []uint32
	AppendSearchPoint(dst []uint32, p geom.Point, rec ops.Recorder) []uint32
}

// Scratch is per-caller query state for the append API: the index traversal
// buffers plus a reusable distance closure. A DistFunc built fresh per query
// captures the query point and escapes into the index's interface call — one
// hidden heap allocation per NN query. The scratch instead keeps one closure
// alive over its own mutable fields, so moving the query point is a field
// store, not an allocation. Not safe for concurrent use; keep one per
// goroutine (or per connection, as internal/serve does).
type Scratch struct {
	NN rtree.NNScratch
	pt geom.Point
	ds *dataset.Dataset
	df index.DistFunc
}

// DistTo points the scratch's reusable closure at pt over ds's records and
// returns it. The closure is rebuilt only when the dataset changes, so a
// warm caller — this pool's NN path, or a sharded executor folding several
// per-shard trees over one dataset — pays a field store per query, never an
// allocation.
func (sc *Scratch) DistTo(ds *dataset.Dataset, pt geom.Point) index.DistFunc {
	sc.pt = pt
	if sc.df == nil || sc.ds != ds {
		sc.ds = ds
		sc.df = func(id uint32) float64 { return sc.ds.Seg(id).DistToPoint(sc.pt) }
	}
	return sc.df
}

// scratchNearester is satisfied by access methods whose NN search can reuse
// caller-owned traversal scratch.
type scratchNearester interface {
	NearestWith(p geom.Point, dist index.DistFunc, rec ops.Recorder, sc *rtree.NNScratch) (uint32, float64, bool)
}

// scratchKNearester is the scratch-reusing k-NN counterpart of kNearester.
type scratchKNearester interface {
	KNearestAppend(dst []rtree.Neighbor, p geom.Point, k int, dist index.DistFunc, rec ops.Recorder, sc *rtree.NNScratch) []rtree.Neighbor
}

// FilterRangeAppend appends the candidate ids of a window query to dst.
func (p *Pool) FilterRangeAppend(dst []uint32, w geom.Rect) []uint32 {
	if as, ok := p.idx.(appendSearcher); ok {
		return as.AppendSearch(dst, w, ops.Null{})
	}
	return append(dst, p.idx.Search(w, ops.Null{})...)
}

// FilterPointAppend appends the candidate ids of a point query to dst.
func (p *Pool) FilterPointAppend(dst []uint32, pt geom.Point) []uint32 {
	if as, ok := p.idx.(appendSearcher); ok {
		return as.AppendSearchPoint(dst, pt, ops.Null{})
	}
	return append(dst, p.idx.SearchPoint(pt, ops.Null{})...)
}

// RangeAppend appends the exact answer of a window query to dst. The
// refinement step compacts candidates in place: hits are written back over
// the candidate region, so no second buffer is needed.
func (p *Pool) RangeAppend(dst []uint32, w geom.Rect) []uint32 {
	base := len(dst)
	dst = p.FilterRangeAppend(dst, w)
	hits := dst[:base]
	for _, id := range dst[base:] {
		if p.ds.Seg(id).IntersectsRect(w) {
			hits = append(hits, id)
		}
	}
	return hits
}

// PointAppend appends the exact answer of a point query to dst.
func (p *Pool) PointAppend(dst []uint32, pt geom.Point, eps float64) []uint32 {
	base := len(dst)
	dst = p.FilterPointAppend(dst, pt)
	hits := dst[:base]
	for _, id := range dst[base:] {
		if p.ds.Seg(id).ContainsPoint(pt, eps) {
			hits = append(hits, id)
		}
	}
	return hits
}

// NearestWith answers one nearest-neighbor query reusing sc's traversal
// buffers; sc may be nil, and indexes without scratch support ignore it.
func (p *Pool) NearestWith(pt geom.Point, sc *Scratch) NearestResult {
	df, nnsc := p.scratchArgs(pt, sc)
	if sn, ok := p.idx.(scratchNearester); ok {
		id, d, found := sn.NearestWith(pt, df, ops.Null{}, nnsc)
		return NearestResult{ID: id, Dist: d, OK: found}
	}
	id, d, found := p.idx.Nearest(pt, df, ops.Null{})
	return NearestResult{ID: id, Dist: d, OK: found}
}

// KNearestAppend appends one k-NN answer to dst reusing sc; ok is false when
// the access method supports no k-NN at all.
func (p *Pool) KNearestAppend(dst []rtree.Neighbor, pt geom.Point, k int, sc *Scratch) ([]rtree.Neighbor, bool) {
	df, nnsc := p.scratchArgs(pt, sc)
	if skn, ok := p.idx.(scratchKNearester); ok {
		return skn.KNearestAppend(dst, pt, k, df, ops.Null{}, nnsc), true
	}
	if kn, ok := p.idx.(kNearester); ok {
		return append(dst, kn.KNearest(pt, k, df, ops.Null{})...), true
	}
	return dst, false
}

func (p *Pool) scratchArgs(pt geom.Point, sc *Scratch) (index.DistFunc, *rtree.NNScratch) {
	if sc == nil {
		return func(id uint32) float64 { return p.ds.Seg(id).DistToPoint(pt) }, nil
	}
	return sc.DistTo(p.ds, pt), &sc.NN
}
