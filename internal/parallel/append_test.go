package parallel

import (
	"testing"

	"mobispatial/internal/core"
	"mobispatial/internal/dataset"
	"mobispatial/internal/rtree"
)

// TestAppendMatchesSingle requires the append/scratch query paths to give
// answers identical to the allocating single-query API, with buffers reused
// across every query of the workload.
func TestAppendMatchesSingle(t *testing.T) {
	ds, tree := fixture(t)
	p, err := New(ds, tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	windows := dataset.RangeQueries(ds, 80, 7)
	points := dataset.PointQueries(ds, 80, 8)
	nnPts := dataset.NNQueries(ds, 80, 9)

	var sc Scratch
	var ids []uint32
	var nbs []rtree.Neighbor
	for i, w := range windows {
		want := p.Range(w)
		ids = p.RangeAppend(ids[:0], w)
		if !sameIDs(want, ids) {
			t.Fatalf("range %d: append %v != %v", i, ids, want)
		}
		want = p.FilterRange(w)
		ids = p.FilterRangeAppend(ids[:0], w)
		if !sameIDs(want, ids) {
			t.Fatalf("filter-range %d: append %v != %v", i, ids, want)
		}
	}
	for i, pt := range points {
		want := p.Point(pt, core.PointEps)
		ids = p.PointAppend(ids[:0], pt, core.PointEps)
		if !sameIDs(want, ids) {
			t.Fatalf("point %d: append %v != %v", i, ids, want)
		}
		want = p.FilterPoint(pt)
		ids = p.FilterPointAppend(ids[:0], pt)
		if !sameIDs(want, ids) {
			t.Fatalf("filter-point %d: append %v != %v", i, ids, want)
		}
	}
	for i, pt := range nnPts {
		if got, want := p.NearestWith(pt, &sc), p.Nearest(pt); got != want {
			t.Fatalf("nn %d: scratch %+v != %+v", i, got, want)
		}
		want, okW := p.KNearest(pt, 5)
		var ok bool
		nbs, ok = p.KNearestAppend(nbs[:0], pt, 5, &sc)
		if ok != okW || len(nbs) != len(want) {
			t.Fatalf("knn %d: append (%d,%v) != (%d,%v)", i, len(nbs), ok, len(want), okW)
		}
		for j := range want {
			if nbs[j] != want[j] {
				t.Fatalf("knn %d: neighbor %d: %+v != %+v", i, j, nbs[j], want[j])
			}
		}
	}
}

// TestAppendPreservesPrefix checks the append contract: existing dst
// contents stay untouched.
func TestAppendPreservesPrefix(t *testing.T) {
	ds, tree := fixture(t)
	p, err := New(ds, tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := dataset.RangeQueries(ds, 1, 7)[0]
	prefix := []uint32{111, 222, 333}
	out := p.RangeAppend(prefix, w)
	if len(out) < 3 || out[0] != 111 || out[1] != 222 || out[2] != 333 {
		t.Fatalf("prefix clobbered: %v", out[:3])
	}
	if !sameIDs(out[3:], p.Range(w)) {
		t.Fatalf("suffix wrong: %v", out[3:])
	}
}

// TestAppendZeroAlloc pins warm append-path query allocations at zero for
// the R-tree index.
func TestAppendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	ds, tree := fixture(t)
	p, err := New(ds, tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := dataset.RangeQueries(ds, 1, 7)[0]
	pt := dataset.NNQueries(ds, 1, 9)[0]
	var sc Scratch
	var ids []uint32
	var nbs []rtree.Neighbor
	if n := testing.AllocsPerRun(100, func() {
		ids = p.RangeAppend(ids[:0], w)
		ids = p.PointAppend(ids[:0], pt, core.PointEps)
		_ = p.NearestWith(pt, &sc)
		nbs, _ = p.KNearestAppend(nbs[:0], pt, 5, &sc)
	}); n != 0 {
		t.Fatalf("warm append queries: %.1f allocs/op, want 0", n)
	}
}
