package shard

import (
	"math"
	"math/rand"
	"testing"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/rtree"
)

// TestPartitionHilbertCoversExactly checks the partition is a partition:
// every item lands in exactly one range, ranges are contiguous and ordered
// by Hilbert key, and the per-range MBRs contain their items.
func TestPartitionHilbertCoversExactly(t *testing.T) {
	ds := dataset.PA()
	items := ds.Items()
	const n = 7
	ranges, bounds := PartitionHilbert(items, n, 0)
	if len(ranges) != n {
		t.Fatalf("got %d ranges, want %d", len(ranges), n)
	}
	if bounds.IsEmpty() {
		t.Fatal("empty bounds for a non-empty dataset")
	}
	seen := make(map[uint32]int)
	total := 0
	var prevHi uint64
	for i, r := range ranges {
		if r.Index != i {
			t.Fatalf("range %d has index %d", i, r.Index)
		}
		if len(r.Items) == 0 {
			t.Fatalf("range %d is empty", i)
		}
		if r.Lo > r.Hi {
			t.Fatalf("range %d inverted keys [%d, %d]", i, r.Lo, r.Hi)
		}
		if i > 0 && r.Lo < prevHi {
			t.Fatalf("range %d lo %d < previous hi %d", i, r.Lo, prevHi)
		}
		prevHi = r.Hi
		for _, it := range r.Items {
			if prev, dup := seen[it.ID]; dup {
				t.Fatalf("item %d in ranges %d and %d", it.ID, prev, i)
			}
			seen[it.ID] = i
			if !r.MBR.ContainsRect(it.MBR) {
				t.Fatalf("range %d MBR %v misses item %d MBR %v", i, r.MBR, it.ID, it.MBR)
			}
		}
		total += len(r.Items)
	}
	if total != len(items) {
		t.Fatalf("partition covers %d of %d items", total, len(items))
	}
}

// TestPartitionHilbertDeterministic pins the cross-process contract: two
// independent partitions of the same dataset produce identical ranges.
func TestPartitionHilbertDeterministic(t *testing.T) {
	ds := dataset.PA()
	a, _ := PartitionHilbert(ds.Items(), 5, 0)
	b, _ := PartitionHilbert(ds.Items(), 5, 0)
	for i := range a {
		if a[i].Lo != b[i].Lo || a[i].Hi != b[i].Hi || len(a[i].Items) != len(b[i].Items) || a[i].MBR != b[i].MBR {
			t.Fatalf("range %d differs across runs: %+v vs %+v", i, a[i], b[i])
		}
		for j := range a[i].Items {
			if a[i].Items[j].ID != b[i].Items[j].ID {
				t.Fatalf("range %d item %d differs: %d vs %d", i, j, a[i].Items[j].ID, b[i].Items[j].ID)
			}
		}
	}
}

// TestReplicaRangesPlacement checks the rotation placement's two views
// agree: backend b holds range r iff r's replica set contains b.
func TestReplicaRangesPlacement(t *testing.T) {
	const n, r = 5, 2
	holds := make([][]int, n)
	for b := 0; b < n; b++ {
		rs, err := ReplicaRanges(b, n, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != r {
			t.Fatalf("backend %d holds %d ranges, want %d", b, len(rs), r)
		}
		if rs[0] != b {
			t.Fatalf("backend %d primary is %d", b, rs[0])
		}
		holds[b] = rs
	}
	// Every range must appear on exactly r backends: b and b+1 mod n.
	for rg := 0; rg < n; rg++ {
		count := 0
		for b := 0; b < n; b++ {
			for _, h := range holds[b] {
				if h == rg {
					count++
					if b != rg && b != (rg+1)%n {
						t.Fatalf("range %d on unexpected backend %d", rg, b)
					}
				}
			}
		}
		if count != r {
			t.Fatalf("range %d on %d backends, want %d", rg, count, r)
		}
	}
	if _, err := ReplicaRanges(7, 5, 2); err == nil {
		t.Fatal("accepted backend index past range count")
	}
}

// TestOrderByMinDist checks the exported visit ordering: ascending by
// MINDIST, stable on ties.
func TestOrderByMinDist(t *testing.T) {
	rects := []geom.Rect{
		{Min: geom.Point{X: 10, Y: 0}, Max: geom.Point{X: 20, Y: 10}},  // dist 10
		{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 5, Y: 5}},     // dist 0
		{Min: geom.Point{X: -20, Y: 0}, Max: geom.Point{X: -10, Y: 5}}, // dist 10 (tie)
	}
	got := OrderByMinDist(nil, rects, geom.Point{X: 0, Y: 0})
	want := []int32{1, 0, 2} // tie between 0 and 2 keeps index order
	for i, sd := range got {
		if sd.Index != want[i] {
			t.Fatalf("position %d: got index %d want %d (order %+v)", i, sd.Index, want[i], got)
		}
	}
	if got[0].Dist != 0 || got[1].Dist != 10 || got[2].Dist != 10 {
		t.Fatalf("distances wrong: %+v", got)
	}
}

// TestKNearestBoundedAppend checks the external bound never costs recall:
// with any bound at least the true k-th distance, the bounded answer equals
// the unbounded one; with bound +Inf they are identical by construction.
func TestKNearestBoundedAppend(t *testing.T) {
	ds := dataset.PA()
	p, err := New(ds, Config{Shards: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	rng := rand.New(rand.NewSource(42))
	b := ds.Items()
	_ = b
	bounds := p.Bounds()
	for trial := 0; trial < 50; trial++ {
		pt := geom.Point{
			X: bounds.Min.X + rng.Float64()*bounds.Width(),
			Y: bounds.Min.Y + rng.Float64()*bounds.Height(),
		}
		k := 1 + rng.Intn(8)
		want, _ := p.KNearestAppend(nil, pt, k, nil)
		got, _ := p.KNearestBoundedAppend(nil, pt, k, math.Inf(1), nil)
		if !neighborsEqual(want, got) {
			t.Fatalf("bound=+Inf differs: want %v got %v", want, got)
		}
		if len(want) == 0 {
			continue
		}
		kth := want[len(want)-1].Dist
		got, _ = p.KNearestBoundedAppend(nil, pt, k, kth+1e-9, nil)
		// A finite bound >= the k-th distance must preserve every true
		// neighbor at distance < bound (farther entries may legally appear
		// or not — the bound is a hint). Check the prefix below the bound.
		for i, nb := range want {
			if nb.Dist >= kth {
				break
			}
			if i >= len(got) || got[i].ID != nb.ID || got[i].Dist != nb.Dist {
				t.Fatalf("bounded answer lost neighbor %v: got %v want %v", nb, got, want)
			}
		}
	}
}

func neighborsEqual(a, b []rtree.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
