package shard

import (
	"math"

	"mobispatial/internal/geom"
	"mobispatial/internal/index"
	"mobispatial/internal/ops"
	"mobispatial/internal/parallel"
	"mobispatial/internal/rtree"
)

// Nearest-neighbor queries are not scattered: they run best-first *across*
// shards on the caller's goroutine. Shards are visited in ascending order
// of MBR min-distance to the query point; the best distance found so far is
// carried into every later shard's traversal (rtree.NearestWithin /
// KNearestCollect), and the visit loop stops the moment the next shard's
// lower bound cannot beat the running bound — every remaining shard is
// pruned without touching a node. Hilbert-coherent shards make this
// scheduling sharp: the shard containing the query point is almost always
// visited first and its answer prunes the rest.

// nnState is the pooled per-query NN scratch: the visit order buffer plus a
// fallback parallel.Scratch for callers that passed none.
type nnState struct {
	order []IndexDist
	psc   parallel.Scratch
}

func (p *Pool) getNNState() *nnState   { return p.nnStates.Get().(*nnState) }
func (p *Pool) putNNState(ns *nnState) { p.nnStates.Put(ns) }

// orderShards fills ns.order with every shard's MBR min-distance to pt,
// ascending, via the exported OrderByMinDist helper (partition.go) — the
// same scheduling the router applies across servers.
func (p *Pool) orderShards(ns *nnState, pt geom.Point) {
	ns.order = OrderByMinDist(ns.order[:0], p.mbrs, pt)
}

// nnArgs resolves the distance closure and traversal scratch for one NN
// query: the caller's scratch when present, the pooled state's otherwise.
func (p *Pool) nnArgs(ns *nnState, pt geom.Point, sc *parallel.Scratch) (index.DistFunc, *rtree.NNScratch) {
	if sc == nil {
		sc = &ns.psc
	}
	return sc.DistTo(p.ds, pt), &sc.NN
}

// Nearest answers one nearest-neighbor query.
func (p *Pool) Nearest(pt geom.Point) parallel.NearestResult {
	return p.NearestWith(pt, nil)
}

// NearestWith answers one nearest-neighbor query reusing sc's traversal
// buffers; sc may be nil.
func (p *Pool) NearestWith(pt geom.Point, sc *parallel.Scratch) parallel.NearestResult {
	ns := p.getNNState()
	df, nnsc := p.nnArgs(ns, pt, sc)
	p.orderShards(ns, pt)

	var res parallel.NearestResult
	visited := 0
	for _, sd := range ns.order {
		if res.OK && sd.Dist > res.Dist {
			break
		}
		visited++
		if id, d, ok := p.shards[sd.Index].tree.NearestWithin(pt, nnBound(res), df, ops.Null{}, nnsc); ok {
			res = parallel.NearestResult{ID: id, Dist: d, OK: true}
		}
	}
	p.observeNN(visited, len(ns.order)-visited)
	p.putNNState(ns)
	return res
}

// nnBound is the running cross-shard bound: the best exact distance so far,
// +Inf before the first hit.
func nnBound(res parallel.NearestResult) float64 {
	if res.OK {
		return res.Dist
	}
	return math.Inf(1)
}

// KNearest answers one k-nearest-neighbor query.
func (p *Pool) KNearest(pt geom.Point, k int) ([]rtree.Neighbor, bool) {
	return p.KNearestAppend(nil, pt, k, nil)
}

// KNearestAppend appends one k-NN answer to dst in ascending distance
// order, reusing sc when non-nil. The bool mirrors parallel.Pool's
// "access method supports k-NN" result and is always true here: every
// shard is a packed R-tree.
func (p *Pool) KNearestAppend(dst []rtree.Neighbor, pt geom.Point, k int, sc *parallel.Scratch) ([]rtree.Neighbor, bool) {
	return p.KNearestBoundedAppend(dst, pt, k, math.Inf(1), sc)
}

// KNearestBoundedAppend is KNearestAppend seeded with an external pruning
// bound — the distributed tier's NN leg: the router carries the running
// k-th-neighbor distance from earlier servers into this one, so shards that
// cannot beat what other servers already found are pruned without a visit.
// The bound is a hint, not a filter: the answer may include neighbors
// farther than bound (the caller's merge discards them), but it always
// includes every indexed neighbor closer than bound, up to k. +Inf (or any
// non-positive bound) disables the extra pruning.
func (p *Pool) KNearestBoundedAppend(dst []rtree.Neighbor, pt geom.Point, k int, bound float64, sc *parallel.Scratch) ([]rtree.Neighbor, bool) {
	if k <= 0 {
		return dst, true
	}
	if bound <= 0 {
		bound = math.Inf(1)
	}
	ns := p.getNNState()
	df, nnsc := p.nnArgs(ns, pt, sc)
	p.orderShards(ns, pt)

	nnsc.ResetKNN()
	visited := 0
	for _, sd := range ns.order {
		// The prune: once k neighbors are known, a shard whose MBR
		// min-distance exceeds the current k-th best cannot contribute, and
		// neither can any later shard (the order is ascending). The external
		// bound prunes the same way from the first shard on.
		b := nnsc.KNNBound(k)
		if bound < b {
			b = bound
		}
		if sd.Dist > b {
			break
		}
		visited++
		p.shards[sd.Index].tree.KNearestCollect(pt, k, df, ops.Null{}, nnsc)
	}
	p.observeNN(visited, len(ns.order)-visited)
	dst = nnsc.DrainKNNAppend(dst)
	p.putNNState(ns)
	return dst, true
}
