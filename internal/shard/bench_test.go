package shard

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/parallel"
	"mobispatial/internal/rtree"
)

// The scaling benchmark: one caller issuing wide window queries, monolithic
// single-tree execution vs the sharded scatter-gather pool. Run with
//
//	go test ./internal/shard -bench ShardScaling -cpu 1,2,4
//
// The monolithic path executes a query on one goroutine regardless of -cpu;
// the sharded path fans each query across min(GOMAXPROCS, shards touched)
// lanes, so its per-query latency should drop as -cpu grows. Results are
// recorded in results/BENCH_shard.json.

var (
	benchOnce sync.Once
	benchDS   *dataset.Dataset
	benchTree *rtree.Tree
)

func benchFixture(b *testing.B) (*dataset.Dataset, *rtree.Tree) {
	b.Helper()
	benchOnce.Do(func() {
		benchDS = dataset.PA()
		t, err := rtree.Build(benchDS.Items(), rtree.Config{}, ops.Null{})
		if err != nil {
			b.Fatal(err)
		}
		benchTree = t
	})
	return benchDS, benchTree
}

// benchWindows builds wide windows (~12 km half-width on PA's 100x80 km
// extent) centered on random segments — each one crosses many Hilbert shards
// and returns thousands of ids, which is the regime scatter-gather targets.
func benchWindows(ds *dataset.Dataset, n int) []geom.Rect {
	rng := rand.New(rand.NewSource(77))
	const half = 12_000.0
	ws := make([]geom.Rect, n)
	for i := range ws {
		c := ds.Seg(uint32(rng.Intn(ds.Len()))).A
		ws[i] = geom.Rect{
			Min: geom.Point{X: c.X - half, Y: c.Y - half},
			Max: geom.Point{X: c.X + half, Y: c.Y + half},
		}
	}
	return ws
}

func BenchmarkShardScaling(b *testing.B) {
	ds, tree := benchFixture(b)
	windows := benchWindows(ds, 64)

	b.Run("monolithic", func(b *testing.B) {
		mono, err := parallel.New(ds, tree, 1)
		if err != nil {
			b.Fatal(err)
		}
		dst := make([]uint32, 0, 1<<18)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = mono.RangeAppend(dst[:0], windows[i%len(windows)])
		}
		reportQPS(b)
	})

	b.Run("sharded", func(b *testing.B) {
		p, err := New(ds, Config{Shards: 32, Workers: runtime.GOMAXPROCS(0)})
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		dst := make([]uint32, 0, 1<<18)
		for _, w := range windows { // warm the pooled gather buffers
			dst = p.RangeAppend(dst[:0], w)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = p.RangeAppend(dst[:0], windows[i%len(windows)])
		}
		reportQPS(b)
	})
}

// BenchmarkShardKNN pins the best-first NN scheduling cost: k-NN across
// shards should stay close to the monolithic tree because the first shard's
// answer prunes nearly all the rest.
func BenchmarkShardKNN(b *testing.B) {
	ds, tree := benchFixture(b)
	points := dataset.NNQueries(ds, 64, 78)

	b.Run("monolithic", func(b *testing.B) {
		mono, err := parallel.New(ds, tree, 1)
		if err != nil {
			b.Fatal(err)
		}
		var sc parallel.Scratch
		nbs := make([]rtree.Neighbor, 0, 16)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nbs, _ = mono.KNearestAppend(nbs[:0], points[i%len(points)], 8, &sc)
		}
		reportQPS(b)
	})

	b.Run("sharded", func(b *testing.B) {
		p, err := New(ds, Config{Shards: 32, Workers: runtime.GOMAXPROCS(0)})
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		var sc parallel.Scratch
		nbs := make([]rtree.Neighbor, 0, 16)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nbs, _ = p.KNearestAppend(nbs[:0], points[i%len(points)], 8, &sc)
		}
		reportQPS(b)
	})
}

func reportQPS(b *testing.B) {
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	}
}
