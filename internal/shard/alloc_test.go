package shard

import (
	"testing"

	"mobispatial/internal/dataset"
	"mobispatial/internal/obs"
	"mobispatial/internal/parallel"
)

// Warm-path allocation regression tests, mirroring internal/serve's
// hot-path discipline: after warm-up, the sharded range, point, and k-NN
// paths must not allocate — gathers, per-shard result buffers, NN order
// buffers, and distance closures are all pooled or caller-owned. Metrics are
// enabled on purpose: the obs handles must not allocate either.

func allocPool(t *testing.T) (*dataset.Dataset, *Pool) {
	t.Helper()
	ds := fixture(t, 8000)
	p, err := New(ds, Config{Shards: 8, Workers: 4, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return ds, p
}

func TestShardedRangeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	ds, p := allocPool(t)
	windows := dataset.RangeQueries(ds, 16, 5)
	dst := make([]uint32, 0, 1<<16)
	for i := 0; i < 4; i++ { // warm every window's gather/part buffers
		for _, w := range windows {
			dst = p.RangeAppend(dst[:0], w)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		dst = p.RangeAppend(dst[:0], windows[i%len(windows)])
		i++
	})
	if allocs != 0 {
		t.Errorf("warm sharded RangeAppend: %.1f allocs/op, want 0", allocs)
	}
}

func TestShardedPointZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	ds, p := allocPool(t)
	points := dataset.PointQueries(ds, 16, 6)
	dst := make([]uint32, 0, 1<<12)
	for i := 0; i < 4; i++ {
		for _, pt := range points {
			dst = p.PointAppend(dst[:0], pt, 2.0)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		dst = p.PointAppend(dst[:0], points[i%len(points)], 2.0)
		i++
	})
	if allocs != 0 {
		t.Errorf("warm sharded PointAppend: %.1f allocs/op, want 0", allocs)
	}
}

func TestShardedKNNZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	ds, p := allocPool(t)
	points := dataset.NNQueries(ds, 16, 7)
	var sc parallel.Scratch
	nbs, _ := p.KNearestAppend(nil, points[0], 8, &sc)
	for i := 0; i < 4; i++ {
		for _, pt := range points {
			nbs, _ = p.KNearestAppend(nbs[:0], pt, 8, &sc)
			_ = p.NearestWith(pt, &sc)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		nbs, _ = p.KNearestAppend(nbs[:0], points[i%len(points)], 8, &sc)
		_ = p.NearestWith(points[i%len(points)], &sc)
		i++
	})
	if allocs != 0 {
		t.Errorf("warm sharded k-NN + NN: %.1f allocs/op, want 0", allocs)
	}
}
