package shard

import (
	"fmt"
	"sort"

	"mobispatial/internal/geom"
	"mobispatial/internal/hilbert"
	"mobispatial/internal/rtree"
)

// This file exports the pieces of the sharding scheme the distributed tier
// reuses at cluster scope: the Hilbert-order partitioner (so every process
// derives the same contiguous key ranges from the same deterministic
// dataset, with no coordination) and the MINDIST visit-ordering helper the
// cross-shard NN loop schedules with (so the router's cross-*server* NN
// visit is the same algorithm one level up).

// Range is one contiguous Hilbert run of a partitioned item set — the unit
// of assignment in the distributed tier's shard→server table.
type Range struct {
	// Index is the range's position in the cluster-wide assignment.
	Index int
	// Lo and Hi are the inclusive Hilbert keys of the range's first and
	// last item under the partitioning quantizer.
	Lo, Hi uint64
	// Items is the range's item run — a subslice of the partitioned slice.
	Items []rtree.Item
	// MBR bounds the range's items.
	MBR geom.Rect
}

// PartitionHilbert sorts items in place by the Hilbert value of their MBR
// centroid (the same linearization shard.New and the packed R-tree bulk
// loader use) and cuts the order into n contiguous, near-equal runs. The
// cut formula matches shard.New's, so every process partitioning the same
// item slice — mqserve backends and the router's equivalence tests build
// from the same deterministic dataset — derives bit-identical ranges.
// order 0 means the default Hilbert order. n is clamped to the item count;
// an empty input yields no ranges.
func PartitionHilbert(items []rtree.Item, n int, order uint) ([]Range, geom.Rect) {
	bounds := geom.EmptyRect()
	for _, it := range items {
		bounds = bounds.Union(it.MBR)
	}
	if n > len(items) {
		n = len(items)
	}
	if n <= 0 || len(items) == 0 {
		return nil, bounds
	}
	if order == 0 {
		order = hilbert.Order
	}
	q := hilbert.NewQuantizer(order, bounds.Min.X, bounds.Min.Y, bounds.Max.X, bounds.Max.Y)
	keys := make([]uint64, len(items))
	for i, it := range items {
		c := it.MBR.Center()
		keys[i] = q.Value(c.X, c.Y)
	}
	sort.Sort(&byKey{items: items, keys: keys})

	ranges := make([]Range, 0, n)
	chunk := (len(items) + n - 1) / n
	for lo := 0; lo < len(items); lo += chunk {
		hi := lo + chunk
		if hi > len(items) {
			hi = len(items)
		}
		mbr := geom.EmptyRect()
		for _, it := range items[lo:hi] {
			mbr = mbr.Union(it.MBR)
		}
		ranges = append(ranges, Range{
			Index: len(ranges),
			Lo:    keys[lo],
			Hi:    keys[hi-1],
			Items: items[lo:hi],
			MBR:   mbr,
		})
	}
	return ranges, bounds
}

// WriteKey returns the Hilbert routing key of an object MBR under the
// cluster's quantizer: the key of the MBR centroid, exactly as
// PartitionHilbert computes item keys. Everything that routes a live write —
// the router picking the owning range, a mutable pool picking the owning
// shard, a backend deciding whether a moved object still belongs to it —
// must use this one recipe over the same bounds, or the same object would
// land in different places on different hops. Out-of-bounds centroids clamp
// to the boundary cell (hilbert.Quantizer's contract), so a vehicle that
// drives off the map edge still has a deterministic owner.
func WriteKey(q *hilbert.Quantizer, mbr geom.Rect) uint64 {
	c := mbr.Center()
	return q.Value(c.X, c.Y)
}

// QuantizerFor builds the partitioning quantizer over bounds — the shared
// half of the WriteKey recipe. order 0 means the default Hilbert order.
func QuantizerFor(bounds geom.Rect, order uint) *hilbert.Quantizer {
	if order == 0 {
		order = hilbert.Order
	}
	return hilbert.NewQuantizer(order, bounds.Min.X, bounds.Min.Y, bounds.Max.X, bounds.Max.Y)
}

// BoundsOf returns the union of the items' MBRs — the bounds PartitionHilbert
// quantizes over, exposed so write routers derive the identical quantizer
// from the identical deterministic item set.
func BoundsOf(items []rtree.Item) geom.Rect {
	bounds := geom.EmptyRect()
	for _, it := range items {
		bounds = bounds.Union(it.MBR)
	}
	return bounds
}

// RangeForKey returns the index of the range owning key under the gap-free
// ownership rule: range i owns keys in [cuts[i], cuts[i+1]) where cuts[i] is
// range i's Lo, the last range owns through the top of the key space, and
// keys below cuts[0] (possible for positions outside the original data
// extent) belong to range 0. cuts must be ascending and non-empty.
func RangeForKey(cuts []uint64, key uint64) int {
	// The first cut whose Lo exceeds key ends the owning range.
	i := sort.Search(len(cuts), func(i int) bool { return cuts[i] > key })
	if i == 0 {
		return 0
	}
	return i - 1
}

// ReplicaRanges returns the range indices backend holds in an N-range
// cluster with R-way replication under the rotation placement: range r
// lives on backends r, r+1, …, r+R-1 (mod N), so backend b holds ranges
// b, b-1, …, b-R+1 (mod N) — its primary first. R is clamped to [1, N].
func ReplicaRanges(backend, nRanges, replicas int) ([]int, error) {
	if nRanges <= 0 {
		return nil, fmt.Errorf("shard: %d ranges", nRanges)
	}
	if backend < 0 || backend >= nRanges {
		return nil, fmt.Errorf("shard: backend %d outside [0, %d)", backend, nRanges)
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > nRanges {
		replicas = nRanges
	}
	out := make([]int, 0, replicas)
	for j := 0; j < replicas; j++ {
		out = append(out, ((backend-j)%nRanges+nRanges)%nRanges)
	}
	return out, nil
}

// IndexDist is one candidate in a best-first MINDIST visit: the lower bound
// Dist of candidate Index.
type IndexDist struct {
	Dist  float64
	Index int32
}

// OrderByMinDist appends one entry per rect — its MBR min-distance to pt —
// to dst and returns it sorted ascending by distance. Insertion sort:
// candidate counts (shards within a pool, servers within a cluster) are
// small, it allocates nothing, and it is deterministic on ties (stable in
// index order), so equal runs always visit identically. This ordering plus
// the running k-th-neighbor bound is the whole cross-shard NN schedule; the
// router applies it unchanged across servers.
func OrderByMinDist(dst []IndexDist, rects []geom.Rect, pt geom.Point) []IndexDist {
	for i := range rects {
		dst = append(dst, IndexDist{Dist: rects[i].MinDist(pt), Index: int32(i)})
	}
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j].Dist < dst[j-1].Dist; j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	return dst
}
