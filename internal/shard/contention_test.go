package shard

import (
	"sync"
	"testing"

	"mobispatial/internal/dataset"
	"mobispatial/internal/ops"
	"mobispatial/internal/parallel"
	"mobispatial/internal/rtree"
)

// TestScatterGatherContention hammers one sharded pool from many concurrent
// callers — the case the static lane-ownership design exists for — and
// checks every answer against the precomputed monolithic result. Run under
// -race this doubles as the data-race proof for the pooled gather state.
func TestScatterGatherContention(t *testing.T) {
	ds := fixture(t, 6000)
	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := parallel.New(ds, tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(ds, Config{Shards: 12, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	windows := dataset.RangeQueries(ds, 24, 21)
	points := dataset.PointQueries(ds, 24, 22)
	nnPts := dataset.NNQueries(ds, 24, 23)

	wantRange := make([][]uint32, len(windows))
	for i, w := range windows {
		wantRange[i] = mono.Range(w)
	}
	wantPoint := make([][]uint32, len(points))
	for i, pt := range points {
		wantPoint[i] = mono.Point(pt, 2.0)
	}
	wantNN := make([]parallel.NearestResult, len(nnPts))
	wantKNN := make([][]rtree.Neighbor, len(nnPts))
	for i, pt := range nnPts {
		wantNN[i] = mono.Nearest(pt)
		wantKNN[i], _ = mono.KNearest(pt, 6)
	}

	const callers = 16
	const rounds = 30
	var wg sync.WaitGroup
	errs := make(chan string, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var sc parallel.Scratch
			var ids []uint32
			var nbs []rtree.Neighbor
			for r := 0; r < rounds; r++ {
				i := (c + r) % len(windows)
				ids = p.RangeAppend(ids[:0], windows[i])
				if !sameIDSet(ids, wantRange[i]) {
					errs <- "range answer diverged under contention"
					return
				}
				i = (c*3 + r) % len(points)
				ids = p.PointAppend(ids[:0], points[i], 2.0)
				if !sameIDSet(ids, wantPoint[i]) {
					errs <- "point answer diverged under contention"
					return
				}
				i = (c*5 + r) % len(nnPts)
				if res := p.NearestWith(nnPts[i], &sc); res.OK != wantNN[i].OK ||
					(res.OK && res.Dist != wantNN[i].Dist) {
					errs <- "NN answer diverged under contention"
					return
				}
				nbs, _ = p.KNearestAppend(nbs[:0], nnPts[i], 6, &sc)
				if len(nbs) != len(wantKNN[i]) {
					errs <- "k-NN length diverged under contention"
					return
				}
				for j := range nbs {
					if nbs[j].Dist != wantKNN[i][j].Dist {
						errs <- "k-NN distances diverged under contention"
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestCloseIdempotent: Close twice is safe; queries before Close all finish.
func TestCloseIdempotent(t *testing.T) {
	ds := fixture(t, 500)
	p, err := New(ds, Config{Shards: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	p.Range(p.Bounds())
	p.Close()
	p.Close()
}
