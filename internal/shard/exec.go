package shard

import (
	"sync"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
)

// workQueueDepth bounds each lane's pending-query queue. A full queue makes
// the scattering caller block on the channel send — backpressure toward the
// server's admission control, never a drop.
const workQueueDepth = 256

// maxPartIDs caps the retained capacity of one pooled per-shard result
// buffer, mirroring internal/serve's scratch retention: a query that
// produced an outsized shard answer releases the buffer instead of pinning
// it in the pool forever.
const maxPartIDs = 64 << 10

// gather query kinds.
const (
	gFilterRange = iota
	gRange
	gFilterPoint
	gPoint
)

// gather is the per-query scatter-gather state: the query parameters the
// lanes read, the participant shard list, one result buffer per
// participant, and the completion WaitGroup. Pooled; a warm query reuses
// every slice.
type gather struct {
	kind   uint8
	window geom.Rect
	pt     geom.Point
	eps    float64

	// participants holds the shard indices this query touches, ascending.
	// parts[j] receives shard participants[j]'s answer; len(parts) is fixed
	// at the pool's shard count so lanes index it without bounds growth.
	participants []int32
	parts        [][]uint32

	// wg counts unfinished participant shards. The caller Adds the full
	// participant count before any lane send; each lane banks its shards'
	// completions in one Add(-n) after its final read of this struct, so
	// Wait returns exactly when all per-shard answers are in place and no
	// lane still holds the pointer.
	wg sync.WaitGroup
}

// worker is one resident scatter lane. Lane w statically owns every shard
// i with i%workers == w; for each incoming gather it runs exactly its own
// participants. Static ownership is what makes pooled gathers safe: each
// participating lane receives the gather pointer once, and it banks all of
// its Dones in a single Add(-n) AFTER its last read of the gather — the
// caller's Wait can only return (and the gather only be recycled) once every
// lane has stopped touching it. Done-ing per shard inside the loop would
// race: the lane still scans the tail of participants for ownership checks
// after its last owned shard completes.
func (p *Pool) worker(w int) {
	for gs := range p.work[w] {
		ran := 0
		for j, si := range gs.participants {
			if int(si)%p.workers == w {
				gs.parts[j] = p.runShard(gs, int(si), gs.parts[j][:0])
				ran++
			}
		}
		gs.wg.Add(-ran)
	}
}

// runShard answers gs's query against one shard, appending into dst and
// returning the extended slice. Range and point kinds refine in place over
// the filter candidates, exactly as parallel.Pool does, so per-shard
// answers are bit-identical to the monolithic path restricted to that
// shard's items.
func (p *Pool) runShard(gs *gather, si int, dst []uint32) []uint32 {
	t := p.shards[si].tree
	switch gs.kind {
	case gFilterRange:
		return t.AppendSearch(dst, gs.window, ops.Null{})
	case gFilterPoint:
		return t.AppendSearchPoint(dst, gs.pt, ops.Null{})
	case gRange:
		base := len(dst)
		dst = t.AppendSearch(dst, gs.window, ops.Null{})
		hits := dst[:base]
		for _, id := range dst[base:] {
			if p.ds.Seg(id).IntersectsRect(gs.window) {
				hits = append(hits, id)
			}
		}
		return hits
	default: // gPoint
		base := len(dst)
		dst = t.AppendSearchPoint(dst, gs.pt, ops.Null{})
		hits := dst[:base]
		for _, id := range dst[base:] {
			if p.ds.Seg(id).ContainsPoint(gs.pt, gs.eps) {
				hits = append(hits, id)
			}
		}
		return hits
	}
}

func (p *Pool) getGather() *gather { return p.gathers.Get().(*gather) }
func (p *Pool) putGather(gs *gather) {
	for j := range gs.parts {
		if cap(gs.parts[j]) > maxPartIDs {
			gs.parts[j] = nil
		}
	}
	p.gathers.Put(gs)
}

// run executes one range/point-family query: select participants by shard
// MBR, then answer inline (single shard, or a single-lane pool where
// handoff buys nothing) or scatter across the lanes and gather into dst in
// shard order.
func (p *Pool) run(kind uint8, window geom.Rect, pt geom.Point, eps float64, dst []uint32) []uint32 {
	gs := p.getGather()
	gs.kind, gs.window, gs.pt, gs.eps = kind, window, pt, eps

	gs.participants = gs.participants[:0]
	switch kind {
	case gFilterRange, gRange:
		for i := range p.shards {
			if p.shards[i].mbr.Intersects(window) {
				gs.participants = append(gs.participants, int32(i))
			}
		}
	default:
		for i := range p.shards {
			if p.shards[i].mbr.ContainsPoint(pt) {
				gs.participants = append(gs.participants, int32(i))
			}
		}
	}

	n := len(gs.participants)
	p.metrics.fanoutTotal.Add(uint64(n))
	p.metrics.fanoutHist.Observe(float64(n))
	if n == 0 {
		p.metrics.inline.Inc()
		p.putGather(gs)
		return dst
	}
	if n == 1 || p.workers == 1 {
		p.metrics.inline.Inc()
		for _, si := range gs.participants {
			dst = p.runShard(gs, int(si), dst)
		}
		p.putGather(gs)
		return dst
	}

	// Scatter: one send per distinct owning lane (the lane mask dedupes),
	// one Done per shard. The caller parks in Wait — its CPU share goes to
	// the lanes — then gathers the per-shard answers in shard order.
	var lanes uint64
	for _, si := range gs.participants {
		lanes |= 1 << (int(si) % p.workers)
	}
	gs.wg.Add(n)
	p.metrics.scatter.Inc()
	for w := 0; lanes != 0; w++ {
		if lanes&(1<<w) != 0 {
			lanes &^= 1 << w
			p.work[w] <- gs
		}
	}
	gs.wg.Wait()
	for j := 0; j < n; j++ {
		dst = append(dst, gs.parts[j]...)
	}
	p.putGather(gs)
	return dst
}

// The append-first query surface, mirroring parallel.Pool. Answers are
// set-identical to a monolithic packed R-tree over the same items (the
// equivalence quick-test pins this); result order is per-shard traversal
// order concatenated in shard order.

// FilterRangeAppend appends the candidate ids of a window query to dst.
func (p *Pool) FilterRangeAppend(dst []uint32, w geom.Rect) []uint32 {
	return p.run(gFilterRange, w, geom.Point{}, 0, dst)
}

// RangeAppend appends the exact answer of a window query to dst.
func (p *Pool) RangeAppend(dst []uint32, w geom.Rect) []uint32 {
	return p.run(gRange, w, geom.Point{}, 0, dst)
}

// FilterPointAppend appends the candidate ids of a point query to dst.
func (p *Pool) FilterPointAppend(dst []uint32, pt geom.Point) []uint32 {
	return p.run(gFilterPoint, geom.Rect{}, pt, 0, dst)
}

// PointAppend appends the exact answer of a point query to dst.
func (p *Pool) PointAppend(dst []uint32, pt geom.Point, eps float64) []uint32 {
	return p.run(gPoint, geom.Rect{}, pt, eps, dst)
}

// Range answers one window query (filter + exact refinement).
func (p *Pool) Range(w geom.Rect) []uint32 { return p.RangeAppend(nil, w) }

// Point answers one point query with the given incidence tolerance.
func (p *Pool) Point(pt geom.Point, eps float64) []uint32 { return p.PointAppend(nil, pt, eps) }
