// Package shard is the sharded counterpart of internal/parallel: the
// dataset's segments are Hilbert-ordered (the same linearization the packed
// R-tree bulk loader uses) and cut into S contiguous runs, each bulk-loaded
// into its own packed R-tree with a precomputed shard MBR summary. Because
// Hilbert order is spatially coherent, every shard is a compact blob of the
// map, so the summaries prune aggressively: a point query usually touches
// one shard, a window query only the shards its rectangle crosses, and a
// (k-)NN query visits shards best-first by MBR min-distance and stops once
// the running k-th-neighbor bound beats the next shard's lower bound.
//
// Queries that touch several shards are scattered across a fixed set of
// resident worker goroutines — parallelism *within* one query, where
// internal/parallel only parallelizes across queries — and gathered into the
// caller's dst slice. The executor preserves the serve path's
// zero-allocation discipline: per-query gather state (participant lists,
// per-shard result buffers, NN scratch) is pooled, task handoff is a
// pointer send on a pre-sized channel, and the warm scatter path performs
// no heap allocation (see alloc_test.go).
//
// Pool implements the same append-first query surface as parallel.Pool, so
// internal/serve drives either through one Executor interface.
package shard

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/hilbert"
	"mobispatial/internal/obs"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
)

// DefaultShards is the shard count when Config.Shards is unset: small
// enough that per-shard trees stay several levels deep on the paper's
// datasets, large enough that wide window queries fan out past any
// realistic core count.
const DefaultShards = 16

// maxWorkers caps the scatter lane count; the shard→worker assignment uses
// a 64-bit lane mask, and machines past 64 cores gain nothing from more
// lanes per query anyway.
const maxWorkers = 64

// shardRegionBytes is the simulated-address stride between per-shard tree
// regions: each shard's nodes are laid out in their own slice of the index
// address space so the ops/energy machinery sees distinct, non-overlapping
// node addresses per shard.
const shardRegionBytes = 1 << 26

// Config parameterizes a sharded pool.
type Config struct {
	// Shards is the number of spatial partitions; DefaultShards when <= 0.
	// Clamped to the item count so every shard holds at least one item.
	Shards int
	// Workers is the scatter lane count — resident goroutines that execute
	// per-shard sub-queries; GOMAXPROCS when <= 0, capped at 64.
	Workers int
	// Tree is the per-shard packed R-tree layout; each shard overrides
	// BaseAddr with its own address region.
	Tree rtree.Config
	// Obs receives the shard metrics (fan-out and pruning histograms,
	// scatter/inline counters, shard_count gauge); nil disables them.
	Obs *obs.Registry
	// Items, when non-nil, is the item subset to index instead of the full
	// ds.Items() — how a partitioned backend (cmd/mqserve -partition)
	// builds its pool over only the Hilbert ranges it holds. Every item id
	// must be valid in ds (ids stay cluster-global so record lookups and NN
	// refinement work unchanged on a subset). The slice is sorted in place.
	Items []rtree.Item
}

// shardT is one spatial partition: a packed R-tree over a contiguous
// Hilbert run of items, plus its MBR summary for participant selection.
type shardT struct {
	tree *rtree.Tree
	mbr  geom.Rect
}

// Pool is a sharded, scatter-gather query executor over one dataset. All
// query methods are safe for any number of concurrent callers; the resident
// workers are shared across callers and never issue queries themselves
// (re-entrant scatter would deadlock the lanes, and is therefore forbidden
// by construction — nothing inside this package queries the pool).
type Pool struct {
	ds     *dataset.Dataset
	shards []shardT
	// mbrs mirrors the per-shard MBR summaries as a flat slice for the
	// exported MINDIST ordering helper (partition.go).
	mbrs    []geom.Rect
	bounds  geom.Rect
	workers int

	// work[w] feeds resident worker w. Shard i is statically owned by lane
	// i%workers, so adjacent Hilbert runs — the shards one window query
	// touches — land on distinct lanes. Each participating lane receives
	// the query's gather exactly once and marks Done per shard it ran, so
	// no stale gather reference can outlive its query.
	work []chan *gather

	gathers  sync.Pool // *gather
	nnStates sync.Pool // *nnState

	metrics metrics

	closeOnce sync.Once
}

// New Hilbert-orders the dataset's items, builds one packed R-tree per
// shard, and starts the resident scatter workers. Callers that create
// short-lived pools (tests) should Close them to release the workers.
func New(ds *dataset.Dataset, cfg Config) (*Pool, error) {
	if ds == nil {
		return nil, fmt.Errorf("shard: nil dataset")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers > maxWorkers {
		cfg.Workers = maxWorkers
	}

	items := cfg.Items
	if items == nil {
		items = ds.Items()
	}
	nShards := cfg.Shards
	if nShards > len(items) {
		nShards = len(items)
	}

	p := &Pool{
		ds:      ds,
		workers: cfg.Workers,
		bounds:  geom.EmptyRect(),
		metrics: newMetrics(cfg.Obs),
	}

	if nShards > 0 {
		for _, it := range items {
			p.bounds = p.bounds.Union(it.MBR)
		}
		hilbertSort(items, p.bounds, cfg.Tree.HilbertOrder)

		// Cut the Hilbert order into nShards contiguous runs of near-equal
		// size. Ceiling division keeps every run non-empty: run r covers
		// [r*chunk, (r+1)*chunk) and the last run absorbs the remainder.
		chunk := (len(items) + nShards - 1) / nShards
		for lo := 0; lo < len(items); lo += chunk {
			hi := lo + chunk
			if hi > len(items) {
				hi = len(items)
			}
			tcfg := cfg.Tree
			tcfg.BaseAddr = ops.IndexBase + uint64(len(p.shards))*shardRegionBytes
			tree, err := rtree.Build(items[lo:hi], tcfg, ops.Null{})
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", len(p.shards), err)
			}
			p.shards = append(p.shards, shardT{tree: tree, mbr: tree.Bounds()})
			p.mbrs = append(p.mbrs, tree.Bounds())
		}
	}

	nS := len(p.shards)
	p.gathers.New = func() any {
		return &gather{
			parts:        make([][]uint32, nS),
			participants: make([]int32, 0, nS),
		}
	}
	p.nnStates.New = func() any {
		return &nnState{order: make([]IndexDist, 0, nS)}
	}

	p.work = make([]chan *gather, p.workers)
	for w := range p.work {
		p.work[w] = make(chan *gather, workQueueDepth)
		go p.worker(w)
	}

	p.metrics.shardCount.Set(float64(nS))
	p.metrics.shardWorkers.Set(float64(p.workers))
	return p, nil
}

// hilbertSort orders items by the Hilbert value of their MBR centroid over
// bounds — the same linearization rtree.Build uses, applied once globally so
// the shard cuts partition one curve.
func hilbertSort(items []rtree.Item, bounds geom.Rect, order uint) {
	if order == 0 {
		order = hilbert.Order
	}
	q := hilbert.NewQuantizer(order, bounds.Min.X, bounds.Min.Y, bounds.Max.X, bounds.Max.Y)
	keys := make([]uint64, len(items))
	for i, it := range items {
		c := it.MBR.Center()
		keys[i] = q.Value(c.X, c.Y)
	}
	sort.Sort(&byKey{items: items, keys: keys})
}

type byKey struct {
	items []rtree.Item
	keys  []uint64
}

func (b *byKey) Len() int           { return len(b.items) }
func (b *byKey) Less(i, j int) bool { return b.keys[i] < b.keys[j] }
func (b *byKey) Swap(i, j int) {
	b.items[i], b.items[j] = b.items[j], b.items[i]
	b.keys[i], b.keys[j] = b.keys[j], b.keys[i]
}

// Close stops the resident workers. The pool must be idle: no query may be
// in flight or issued afterwards.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		for _, ch := range p.work {
			close(ch)
		}
	})
}

// Workers returns the scatter lane count — the pool's concurrency width,
// mirroring parallel.Pool.Workers for the server's admission sizing.
func (p *Pool) Workers() int { return p.workers }

// Dataset returns the pool's dataset.
func (p *Pool) Dataset() *dataset.Dataset { return p.ds }

// Shards returns the shard count.
func (p *Pool) Shards() int { return len(p.shards) }

// Bounds returns the MBR of all indexed items.
func (p *Pool) Bounds() geom.Rect { return p.bounds }

// Len returns the number of indexed items across all shards.
func (p *Pool) Len() int {
	n := 0
	for i := range p.shards {
		n += p.shards[i].tree.Len()
	}
	return n
}

// IndexBytes returns the total byte size of all per-shard trees.
func (p *Pool) IndexBytes() int {
	n := 0
	for i := range p.shards {
		n += p.shards[i].tree.IndexBytes()
	}
	return n
}

// ShardStats describes one shard for reporting and tests.
type ShardStats struct {
	Items      int
	Height     int
	IndexBytes int
	MBR        geom.Rect
}

// PerShard returns per-shard structural statistics.
func (p *Pool) PerShard() []ShardStats {
	out := make([]ShardStats, len(p.shards))
	for i := range p.shards {
		st := p.shards[i].tree.TreeStats()
		out[i] = ShardStats{Items: st.Items, Height: st.Height, IndexBytes: st.IndexBytes, MBR: p.shards[i].mbr}
	}
	return out
}
