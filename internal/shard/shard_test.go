package shard

import (
	"sort"
	"testing"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/obs"
)

func fixture(t testing.TB, n int) *dataset.Dataset {
	t.Helper()
	cfg := dataset.NYCConfig()
	cfg.NumSegments = n
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil dataset accepted")
	}
	ds := fixture(t, 2000)
	p, err := New(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Shards() != DefaultShards {
		t.Errorf("Shards() = %d, want %d", p.Shards(), DefaultShards)
	}
	if p.Workers() < 1 {
		t.Error("no workers")
	}
	if p.Dataset() != ds {
		t.Error("Dataset() mismatch")
	}
}

// TestPartitionComplete: the shards partition the item set — every id appears
// in exactly one shard, and the totals line up.
func TestPartitionComplete(t *testing.T) {
	ds := fixture(t, 3000)
	p, err := New(ds, Config{Shards: 7, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if p.Len() != ds.Len() {
		t.Fatalf("Len() = %d, want %d", p.Len(), ds.Len())
	}
	stats := p.PerShard()
	if len(stats) != 7 {
		t.Fatalf("PerShard() = %d shards, want 7", len(stats))
	}
	total := 0
	for i, st := range stats {
		if st.Items == 0 {
			t.Errorf("shard %d is empty", i)
		}
		if st.IndexBytes <= 0 || st.Height < 1 {
			t.Errorf("shard %d: bad stats %+v", i, st)
		}
		total += st.Items
	}
	if total != ds.Len() {
		t.Fatalf("per-shard items sum to %d, want %d", total, ds.Len())
	}

	// Every id retrievable: a whole-extent range filter returns each id once.
	ids := p.FilterRangeAppend(nil, p.Bounds())
	if len(ids) != ds.Len() {
		t.Fatalf("whole-extent filter returned %d ids, want %d", len(ids), ds.Len())
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		if id != uint32(i) {
			t.Fatalf("ids[%d] = %d: duplicate or missing id", i, id)
		}
	}
}

// TestShardClamp: more shards than items clamps to one item per shard.
func TestShardClamp(t *testing.T) {
	ds := fixture(t, 5)
	p, err := New(ds, Config{Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Shards() != 5 {
		t.Fatalf("Shards() = %d, want 5 (clamped to item count)", p.Shards())
	}
	if p.Len() != 5 {
		t.Fatalf("Len() = %d, want 5", p.Len())
	}
}

// TestEmptyDataset: a dataset with no segments yields a working zero-shard
// pool whose queries all come back empty.
func TestEmptyDataset(t *testing.T) {
	ds := &dataset.Dataset{Name: "empty", RecordBytes: 32}
	p, err := New(ds, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Shards() != 0 || p.Len() != 0 {
		t.Fatalf("Shards() = %d Len() = %d, want 0, 0", p.Shards(), p.Len())
	}
	if got := p.Range(p.Bounds()); len(got) != 0 {
		t.Errorf("Range on empty pool returned %d ids", len(got))
	}
	if res := p.Nearest(geom.Point{}); res.OK {
		t.Error("Nearest on empty pool reported a hit")
	}
	if nbs, ok := p.KNearest(geom.Point{}, 3); !ok || len(nbs) != 0 {
		t.Errorf("KNearest on empty pool = %d, %v", len(nbs), ok)
	}
}

// TestMetrics: the fan-out/pruning counters move and the gauges describe the
// pool.
func TestMetrics(t *testing.T) {
	ds := fixture(t, 4000)
	reg := obs.NewRegistry()
	p, err := New(ds, Config{Shards: 8, Workers: 4, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	p.Range(p.Bounds())        // fans out to all 8 shards
	p.Point(ds.Seg(0).A, 2.0)  // usually 1 shard: inline
	p.Nearest(ds.Seg(1).A)     // NN visit
	p.KNearest(ds.Seg(2).B, 4) // k-NN visit
	snap := reg.Snapshot()

	got := map[string]float64{}
	for _, c := range snap.Counters {
		got[c.Name] = float64(c.Value)
	}
	for _, g := range snap.Gauges {
		got[g.Name] = g.Value
	}
	for _, name := range []string{
		"shard_count", "shard_workers", "shard_fanout_shards_total", "shard_nn_total",
	} {
		if _, ok := got[name]; !ok {
			t.Errorf("metric %q missing from snapshot", name)
		}
	}
	if got["shard_count"] != 8 {
		t.Errorf("shard_count = %v, want 8", got["shard_count"])
	}
	if got["shard_workers"] != 4 {
		t.Errorf("shard_workers = %v, want 4", got["shard_workers"])
	}
	if got["shard_fanout_shards_total"] < 8 {
		t.Errorf("shard_fanout_shards_total = %v, want >= 8 after whole-extent query", got["shard_fanout_shards_total"])
	}
	if got["shard_nn_total"] != 2 {
		t.Errorf("shard_nn_total = %v, want 2", got["shard_nn_total"])
	}
	if got["shard_scatter_total"]+got["shard_inline_total"] != 2 {
		t.Errorf("scatter %v + inline %v != 2 range/point queries",
			got["shard_scatter_total"], got["shard_inline_total"])
	}
	if v := got["shard_nn_shards_visited_total"] + got["shard_nn_shards_pruned_total"]; v != 16 {
		t.Errorf("nn visited+pruned = %v, want 2 queries x 8 shards = 16", v)
	}
}

// TestInlineSingleLane: a one-worker pool answers everything inline and
// still matches the scattered answers of a wide pool.
func TestInlineSingleLane(t *testing.T) {
	ds := fixture(t, 3000)
	regNarrow, regWide := obs.NewRegistry(), obs.NewRegistry()
	narrow, err := New(ds, Config{Shards: 6, Workers: 1, Obs: regNarrow})
	if err != nil {
		t.Fatal(err)
	}
	defer narrow.Close()
	wide, err := New(ds, Config{Shards: 6, Workers: 4, Obs: regWide})
	if err != nil {
		t.Fatal(err)
	}
	defer wide.Close()

	for _, w := range dataset.RangeQueries(ds, 20, 3) {
		a, b := narrow.Range(w), wide.Range(w)
		if !sameIDSet(a, b) {
			t.Fatalf("window %v: narrow %d ids, wide %d ids", w, len(a), len(b))
		}
	}
	if v := counterValue(t, regNarrow, "shard_scatter_total"); v != 0 {
		t.Errorf("1-worker pool scattered %v queries; want all inline", v)
	}
	if v := counterValue(t, regWide, "shard_scatter_total"); v == 0 {
		t.Error("4-worker pool never scattered across 20 windows")
	}
}

func counterValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	for _, c := range reg.Snapshot().Counters {
		if c.Name == name {
			return float64(c.Value)
		}
	}
	t.Fatalf("counter %q not found", name)
	return 0
}

func sameIDSet(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]uint32(nil), a...)
	bs := append([]uint32(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
