package shard

import "mobispatial/internal/obs"

// metrics holds the obs handles the query paths touch, resolved once at New
// so the hot path never reaches into the registry maps. Every handle is nil
// (no-op) when Config.Obs is nil — the same discipline as internal/serve.
//
// Exported metric names:
//
//	shard_count                    gauge: shards in the pool
//	shard_workers                  gauge: scatter lanes
//	shard_fanout                   histogram: participating shards per
//	                               range/point query (after MBR pruning)
//	shard_fanout_shards_total      counter: sum of the fan-outs
//	shard_scatter_total            counter: queries that fanned out to lanes
//	shard_inline_total             counter: queries answered on the caller
//	                               (0 or 1 shards, or a 1-lane pool)
//	shard_nn_total                 counter: NN/k-NN queries
//	shard_nn_shards_visited_total  counter: shards actually searched
//	shard_nn_shards_pruned_total   counter: shards skipped by the bound
//	shard_nn_pruned                histogram: shards pruned per NN query
type metrics struct {
	shardCount   *obs.Gauge
	shardWorkers *obs.Gauge

	fanoutHist  *obs.Histogram
	fanoutTotal *obs.Counter
	scatter     *obs.Counter
	inline      *obs.Counter

	nnQueries    *obs.Counter
	nnVisited    *obs.Counter
	nnPruned     *obs.Counter
	nnPrunedHist *obs.Histogram
}

func newMetrics(r *obs.Registry) metrics {
	if r == nil {
		return metrics{}
	}
	return metrics{
		shardCount:   r.Gauge("shard_count"),
		shardWorkers: r.Gauge("shard_workers"),
		fanoutHist:   r.Histogram("shard_fanout"),
		fanoutTotal:  r.Counter("shard_fanout_shards_total"),
		scatter:      r.Counter("shard_scatter_total"),
		inline:       r.Counter("shard_inline_total"),
		nnQueries:    r.Counter("shard_nn_total"),
		nnVisited:    r.Counter("shard_nn_shards_visited_total"),
		nnPruned:     r.Counter("shard_nn_shards_pruned_total"),
		nnPrunedHist: r.Histogram("shard_nn_pruned"),
	}
}

// observeNN records one best-first NN visit: how many shards were searched
// and how many the running bound pruned outright.
func (p *Pool) observeNN(visited, pruned int) {
	p.metrics.nnQueries.Inc()
	p.metrics.nnVisited.Add(uint64(visited))
	p.metrics.nnPruned.Add(uint64(pruned))
	p.metrics.nnPrunedHist.Observe(float64(pruned))
}
