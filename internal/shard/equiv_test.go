package shard

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/parallel"
	"mobispatial/internal/rtree"
)

// TestEquivalenceQuick property-tests the sharded executor against the
// monolithic parallel.Pool over randomized small datasets, shard counts, and
// lane counts. Range/point answers must be identical as id sets; NN/k-NN
// answers must report identical distances (tie *ids* may differ, so ~10% of
// segments are exact duplicates to force ties). Empty and inverted windows
// must come back empty on both paths.
func TestEquivalenceQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(rng, 40+rng.Intn(260))

		tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
		if err != nil {
			t.Fatal(err)
		}
		mono, err := parallel.New(ds, tree, 2)
		if err != nil {
			t.Fatal(err)
		}
		sharded, err := New(ds, Config{Shards: 1 + rng.Intn(10), Workers: 1 + rng.Intn(4)})
		if err != nil {
			t.Fatal(err)
		}
		defer sharded.Close()

		ext := ds.Extent
		for q := 0; q < 8; q++ {
			w := randomWindow(rng, ext)
			if !sameIDSet(mono.FilterRange(w), sharded.FilterRangeAppend(nil, w)) {
				t.Errorf("seed %d: FilterRange mismatch on %v", seed, w)
				return false
			}
			if !sameIDSet(mono.Range(w), sharded.Range(w)) {
				t.Errorf("seed %d: Range mismatch on %v", seed, w)
				return false
			}

			pt := randomPoint(rng, ext, ds)
			if !sameIDSet(mono.FilterPoint(pt), sharded.FilterPointAppend(nil, pt)) {
				t.Errorf("seed %d: FilterPoint mismatch at %v", seed, pt)
				return false
			}
			if !sameIDSet(mono.Point(pt, 2.0), sharded.Point(pt, 2.0)) {
				t.Errorf("seed %d: Point mismatch at %v", seed, pt)
				return false
			}

			a, b := mono.Nearest(pt), sharded.Nearest(pt)
			if a.OK != b.OK || (a.OK && a.Dist != b.Dist) {
				t.Errorf("seed %d: Nearest mismatch at %v: mono %+v sharded %+v", seed, pt, a, b)
				return false
			}

			for _, k := range []int{0, 1, 3, ds.Len() + 5} {
				ma, oka := mono.KNearest(pt, k)
				sa, oks := sharded.KNearest(pt, k)
				if oka != oks || !sameDistances(ds, pt, ma, sa) {
					t.Errorf("seed %d: KNearest(k=%d) mismatch at %v: mono %d nbs, sharded %d nbs",
						seed, k, pt, len(ma), len(sa))
					return false
				}
			}
		}

		// Degenerate windows: empty and inverted rects answer empty on both.
		for _, w := range []geom.Rect{geom.EmptyRect(), {Min: geom.Point{X: 10, Y: 10}, Max: geom.Point{X: -10, Y: -10}}} {
			if got := sharded.Range(w); len(got) != 0 {
				t.Errorf("seed %d: sharded Range(%v) = %d ids, want 0", seed, w, len(got))
				return false
			}
			if got := mono.Range(w); len(got) != 0 {
				t.Errorf("seed %d: mono Range(%v) = %d ids, want 0", seed, w, len(got))
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// randomDataset builds a dataset of short random segments on a ~2km square,
// duplicating ~10% of them exactly so NN/k-NN distance ties actually occur.
func randomDataset(rng *rand.Rand, n int) *dataset.Dataset {
	const side = 2000.0
	segs := make([]geom.Segment, 0, n)
	for len(segs) < n {
		if len(segs) > 0 && rng.Float64() < 0.10 {
			segs = append(segs, segs[rng.Intn(len(segs))]) // exact duplicate: forced tie
			continue
		}
		a := geom.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
		ang := rng.Float64() * 2 * math.Pi
		l := 10 + rng.Float64()*120
		segs = append(segs, geom.Segment{A: a, B: geom.Point{X: a.X + l*math.Cos(ang), Y: a.Y + l*math.Sin(ang)}})
	}
	ext := geom.EmptyRect()
	for _, s := range segs {
		ext = ext.Union(s.MBR())
	}
	return &dataset.Dataset{Name: "quick", Segments: segs, RecordBytes: 32, Extent: ext}
}

func randomWindow(rng *rand.Rand, ext geom.Rect) geom.Rect {
	cx := ext.Min.X + rng.Float64()*(ext.Max.X-ext.Min.X)
	cy := ext.Min.Y + rng.Float64()*(ext.Max.Y-ext.Min.Y)
	hw := rng.Float64() * (ext.Max.X - ext.Min.X) / 4
	hh := rng.Float64() * (ext.Max.Y - ext.Min.Y) / 4
	return geom.Rect{Min: geom.Point{X: cx - hw, Y: cy - hh}, Max: geom.Point{X: cx + hw, Y: cy + hh}}
}

// randomPoint picks either a uniform point or an exact segment endpoint (so
// point queries hit and distance-zero NN cases appear).
func randomPoint(rng *rand.Rand, ext geom.Rect, ds *dataset.Dataset) geom.Point {
	if rng.Intn(2) == 0 && ds.Len() > 0 {
		s := ds.Seg(uint32(rng.Intn(ds.Len())))
		if rng.Intn(2) == 0 {
			return s.A
		}
		return s.B
	}
	return geom.Point{
		X: ext.Min.X + rng.Float64()*(ext.Max.X-ext.Min.X),
		Y: ext.Min.Y + rng.Float64()*(ext.Max.Y-ext.Min.Y),
	}
}

// sameDistances compares two k-NN answers by their distance sequences: same
// length, ascending, and pairwise exactly equal. Ids are compared only where
// the distance is unique within the answer (ties may legitimately resolve to
// different duplicate segments on the two paths).
func sameDistances(ds *dataset.Dataset, pt geom.Point, a, b []rtree.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Dist != b[i].Dist {
			return false
		}
		if i > 0 && (a[i].Dist < a[i-1].Dist || b[i].Dist < b[i-1].Dist) {
			return false // not ascending
		}
		// Distances must be honest: recompute from the dataset.
		if ds.Seg(a[i].ID).DistToPoint(pt) != a[i].Dist || ds.Seg(b[i].ID).DistToPoint(pt) != b[i].Dist {
			return false
		}
	}
	return true
}
