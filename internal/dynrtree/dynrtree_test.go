package dynrtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
)

func randItems(n int, seed int64) ([]Item, []geom.Segment) {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	segs := make([]geom.Segment, n)
	for i := range items {
		a := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		s := geom.Segment{
			A: a,
			B: geom.Point{X: a.X + rng.Float64()*20 - 10, Y: a.Y + rng.Float64()*20 - 10},
		}
		segs[i] = s
		items[i] = Item{MBR: s.MBR(), ID: uint32(i)}
	}
	return items, segs
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NodeBytes: HeaderBytes + EntryBytes}); err == nil {
		t.Error("fanout-1 config accepted")
	}
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("fresh tree: %d items, height %d", tr.Len(), tr.Height())
	}
}

func TestInsertAndInvariants(t *testing.T) {
	items, _ := randItems(3000, 1)
	tr, err := BuildByInsertion(items, Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Fatalf("3000 items in height %d", tr.Height())
	}
}

func TestInvariantsUnderIncrementalInsertion(t *testing.T) {
	items, _ := randItems(600, 2)
	tr, err := New(Config{NodeBytes: 128}) // small nodes: many splits
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		tr.Insert(it.MBR, it.ID, ops.Null{})
		if i%97 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	items, segs := randItems(3000, 3)
	tr, err := BuildByInsertion(items, Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 100; q++ {
		w := geom.Rect{Min: geom.Point{X: rng.Float64() * 950, Y: rng.Float64() * 950}}
		w.Max = geom.Point{X: w.Min.X + rng.Float64()*80, Y: w.Min.Y + rng.Float64()*80}
		got := tr.Search(w, ops.Null{})
		var want []uint32
		for i, s := range segs {
			if w.Intersects(s.MBR()) {
				want = append(want, uint32(i))
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: mismatch at %d", q, i)
			}
		}
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	items, segs := randItems(2000, 5)
	tr, err := BuildByInsertion(items, Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for q := 0; q < 100; q++ {
		p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		df := func(id uint32) float64 { return segs[id].DistToPoint(p) }
		_, d, ok := tr.Nearest(p, df, ops.Null{})
		if !ok {
			t.Fatal("found nothing")
		}
		best := math.Inf(1)
		for _, s := range segs {
			if dd := s.DistToPoint(p); dd < best {
				best = dd
			}
		}
		if math.Abs(d-best) > 1e-9 {
			t.Fatalf("query %d: NN %g vs brute %g", q, d, best)
		}
	}
}

func TestEmptyTreeQueries(t *testing.T) {
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Search(geom.Rect{Max: geom.Point{X: 1, Y: 1}}, ops.Null{}); len(got) != 0 {
		t.Fatal("empty search returned results")
	}
	if _, _, ok := tr.Nearest(geom.Point{}, nil, ops.Null{}); ok {
		t.Fatal("empty NN found something")
	}
}

// TestPackedBeatsInsertionBuilt quantifies the paper's §3 argument for bulk
// loading: on the same static data, the packed tree answers window queries
// with fewer node visits and occupies less memory.
func TestPackedBeatsInsertionBuilt(t *testing.T) {
	items, _ := randItems(20000, 7)
	rItems := make([]rtree.Item, len(items))
	for i, it := range items {
		rItems[i] = rtree.Item{MBR: it.MBR, ID: it.ID}
	}
	packed, err := rtree.Build(rItems, rtree.Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := BuildByInsertion(items, Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	if dyn.IndexBytes() <= packed.IndexBytes() {
		t.Errorf("insertion-built index %dB not larger than packed %dB",
			dyn.IndexBytes(), packed.IndexBytes())
	}
	rng := rand.New(rand.NewSource(8))
	var pv, dv int64
	for q := 0; q < 50; q++ {
		w := geom.Rect{Min: geom.Point{X: rng.Float64() * 900, Y: rng.Float64() * 900}}
		w.Max = geom.Point{X: w.Min.X + 60, Y: w.Min.Y + 60}
		var pr, dr ops.Counts
		packed.Search(w, &pr)
		dyn.Search(w, &dr)
		pv += pr.Ops[ops.OpNodeVisit]
		dv += dr.Ops[ops.OpNodeVisit]
	}
	if pv >= dv {
		t.Errorf("packed visits %d not below insertion-built %d", pv, dv)
	}
}

func BenchmarkInsert(b *testing.B) {
	items, _ := randItems(100000, 9)
	tr, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := items[i%len(items)]
		tr.Insert(it.MBR, it.ID, ops.Null{})
	}
}

func BenchmarkSearch(b *testing.B) {
	items, _ := randItems(50000, 10)
	tr, err := BuildByInsertion(items, Config{}, ops.Null{})
	if err != nil {
		b.Fatal(err)
	}
	w := geom.Rect{Min: geom.Point{X: 400, Y: 400}, Max: geom.Point{X: 450, Y: 450}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search(w, ops.Null{})
	}
}
