package dynrtree

import (
	"math/rand"
	"sort"
	"testing"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
)

func TestDeleteAll(t *testing.T) {
	items, _ := randItems(800, 11)
	tr, err := BuildByInsertion(items, Config{NodeBytes: 128}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	order := rng.Perm(len(items))
	for i, oi := range order {
		it := items[oi]
		if !tr.Delete(it.MBR, it.ID, ops.Null{}) {
			t.Fatalf("item %d not found", it.ID)
		}
		if tr.Len() != len(items)-i-1 {
			t.Fatalf("Len = %d after %d deletes", tr.Len(), i+1)
		}
		if i%53 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Search(geom.Rect{Min: geom.Point{X: -1e9, Y: -1e9}, Max: geom.Point{X: 1e9, Y: 1e9}}, ops.Null{}); len(got) != 0 {
		t.Fatalf("empty tree answered %d ids", len(got))
	}
}

func TestDeleteMissing(t *testing.T) {
	items, _ := randItems(100, 13)
	tr, err := BuildByInsertion(items, Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Delete(items[0].MBR, 9999, ops.Null{}) {
		t.Error("deleted an id that was never inserted")
	}
	if tr.Len() != 100 {
		t.Fatalf("Len changed to %d on a missing delete", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteShrinksRoot(t *testing.T) {
	items, _ := randItems(600, 14)
	tr, err := BuildByInsertion(items, Config{NodeBytes: 128}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 3 {
		t.Fatalf("test wants a tall tree, got height %d", tr.Height())
	}
	// Delete down to a handful of items: the root must collapse back toward
	// a single leaf rather than keeping a chain of single-child internals.
	for _, it := range items[:len(items)-3] {
		if !tr.Delete(it.MBR, it.ID, ops.Null{}) {
			t.Fatalf("item %d not found", it.ID)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 1 {
		t.Fatalf("3 items left in height-%d tree", tr.Height())
	}
}

// TestInterleavedInsertDeleteSearch drives random insert/delete traffic — the
// delta-tree workload — checking invariants and brute-force search equality
// throughout.
func TestInterleavedInsertDeleteSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	tr, err := New(Config{NodeBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	live := map[uint32]geom.Rect{}
	nextID := uint32(0)
	for step := 0; step < 4000; step++ {
		if len(live) == 0 || rng.Intn(100) < 60 {
			a := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
			mbr := geom.Segment{A: a, B: geom.Point{X: a.X + rng.Float64()*20 - 10, Y: a.Y + rng.Float64()*20 - 10}}.MBR()
			tr.Insert(mbr, nextID, ops.Null{})
			live[nextID] = mbr
			nextID++
		} else {
			var id uint32
			for id = range live {
				break
			}
			if !tr.Delete(live[id], id, ops.Null{}) {
				t.Fatalf("step %d: live item %d not found", step, id)
			}
			delete(live, id)
		}
		if step%211 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len = %d, live = %d", tr.Len(), len(live))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	w := geom.Rect{Min: geom.Point{X: 200, Y: 200}, Max: geom.Point{X: 700, Y: 700}}
	got := tr.Search(w, ops.Null{})
	var want []uint32
	for id, mbr := range live {
		if w.Intersects(mbr) {
			want = append(want, id)
		}
	}
	sortU32(got)
	sortU32(want)
	if len(got) != len(want) {
		t.Fatalf("search: got %d ids, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("search mismatch at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestAppendSearchMatchesSearch(t *testing.T) {
	items, _ := randItems(2000, 16)
	tr, err := BuildByInsertion(items, Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	buf := make([]uint32, 0, 256)
	for q := 0; q < 50; q++ {
		lo := geom.Point{X: rng.Float64() * 900, Y: rng.Float64() * 900}
		w := geom.Rect{Min: lo, Max: geom.Point{X: lo.X + 120, Y: lo.Y + 120}}
		want := tr.Search(w, ops.Null{})
		buf = tr.AppendSearch(buf[:0], w, ops.Null{})
		if len(buf) != len(want) {
			t.Fatalf("query %d: AppendSearch %d ids, Search %d", q, len(buf), len(want))
		}
		for i := range buf {
			if buf[i] != want[i] {
				t.Fatalf("query %d: id %d vs %d at %d", q, buf[i], want[i], i)
			}
		}
		pt := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		wantP := tr.SearchPoint(pt, ops.Null{})
		gotP := tr.AppendSearchPoint(nil, pt, ops.Null{})
		if len(gotP) != len(wantP) {
			t.Fatalf("point query %d: %d vs %d ids", q, len(gotP), len(wantP))
		}
	}
}

func TestAppendItemsRoundTrip(t *testing.T) {
	items, _ := randItems(500, 18)
	tr, err := BuildByInsertion(items, Config{NodeBytes: 128}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items[:200] {
		if !tr.Delete(it.MBR, it.ID, ops.Null{}) {
			t.Fatalf("item %d not found", it.ID)
		}
	}
	got := tr.AppendItems(nil)
	if len(got) != 300 {
		t.Fatalf("AppendItems returned %d items, want 300", len(got))
	}
	sort.Slice(got, func(i, j int) bool { return got[i].ID < got[j].ID })
	for i, it := range got {
		want := items[200+i]
		if it.ID != want.ID || it.MBR != want.MBR {
			t.Fatalf("item %d: got {%d %v}, want {%d %v}", i, it.ID, it.MBR, want.ID, want.MBR)
		}
	}
}

func sortU32(s []uint32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
