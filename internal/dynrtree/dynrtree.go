// Package dynrtree implements Guttman's original dynamic R-tree with
// quadratic node splitting — the item-by-item-insertion baseline the paper's
// §3 discussion contrasts with bulk loading: "these structures can become
// inefficient when the database of spatial items is static ... one should
// use bulk-loading techniques rather than insert item by item". The packing
// ablation bench quantifies exactly that claim against internal/rtree.
//
// The structure shares the packed R-tree's physical layout constants
// (20-byte entries, configurable node size) and the common access-method
// contract, and emits its work to an ops.Recorder like every other
// substrate.
package dynrtree

import (
	"fmt"
	"math"
	"sort"

	"mobispatial/internal/geom"
	"mobispatial/internal/index"
	"mobispatial/internal/ops"
)

// Layout constants, matching internal/rtree.
const (
	HeaderBytes      = 8
	EntryBytes       = 20
	DefaultNodeBytes = 512
)

// Config controls the tree shape.
type Config struct {
	// NodeBytes determines the maximum entries per node:
	// (NodeBytes − HeaderBytes) / EntryBytes. Default 512.
	NodeBytes int
	// MinFillRatio is the minimum node occupancy after a split as a
	// fraction of the maximum (Guttman's m/M); default 0.4.
	MinFillRatio float64
	// BaseAddr of the node arena; defaults to ops.IndexBase.
	BaseAddr uint64
}

func (c *Config) fill() {
	if c.NodeBytes == 0 {
		c.NodeBytes = DefaultNodeBytes
	}
	if c.MinFillRatio == 0 {
		c.MinFillRatio = 0.4
	}
	if c.BaseAddr == 0 {
		c.BaseAddr = ops.IndexBase
	}
}

type entry struct {
	mbr geom.Rect
	ptr uint32 // child node index (internal) or item id (leaf)
}

type node struct {
	leaf    bool
	addr    uint64
	parent  int32 // -1 for the root
	entries []entry
}

// Tree is a dynamic R-tree.
type Tree struct {
	cfg    Config
	maxEnt int
	minEnt int
	nodes  []node
	root   int32
	nitems int
	height int
}

// The dynamic R-tree satisfies the shared access-method contract.
var _ index.Index = (*Tree)(nil)

// New returns an empty tree.
func New(cfg Config) (*Tree, error) {
	cfg.fill()
	maxEnt := (cfg.NodeBytes - HeaderBytes) / EntryBytes
	if maxEnt < 2 {
		return nil, fmt.Errorf("dynrtree: node size %dB gives max entries %d (<2)", cfg.NodeBytes, maxEnt)
	}
	minEnt := int(float64(maxEnt) * cfg.MinFillRatio)
	if minEnt < 1 {
		minEnt = 1
	}
	if minEnt > maxEnt/2 {
		minEnt = maxEnt / 2
	}
	t := &Tree{cfg: cfg, maxEnt: maxEnt, minEnt: minEnt, height: 1}
	t.root = t.newNode(true, -1)
	return t, nil
}

// BuildByInsertion constructs a tree by inserting the items one by one (the
// baseline the paper argues against for static data). rec receives the
// build work.
func BuildByInsertion(items []Item, cfg Config, rec ops.Recorder) (*Tree, error) {
	t, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for _, it := range items {
		t.Insert(it.MBR, it.ID, rec)
	}
	return t, nil
}

// Item mirrors rtree.Item so callers can build either structure from the
// same input.
type Item struct {
	MBR geom.Rect
	ID  uint32
}

func (t *Tree) newNode(leaf bool, parent int32) int32 {
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{
		leaf:   leaf,
		addr:   t.cfg.BaseAddr + uint64(idx)*uint64(t.cfg.NodeBytes),
		parent: parent,
	})
	return idx
}

// Len returns the number of indexed items.
func (t *Tree) Len() int { return t.nitems }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// NodeCount returns the number of allocated nodes.
func (t *Tree) NodeCount() int { return len(t.nodes) }

// IndexBytes returns the structure's byte size.
func (t *Tree) IndexBytes() int { return len(t.nodes) * t.cfg.NodeBytes }

// nodeMBR computes the union of a node's entry MBRs.
func (t *Tree) nodeMBR(ni int32) geom.Rect {
	mbr := geom.EmptyRect()
	for _, e := range t.nodes[ni].entries {
		mbr = mbr.Union(e.mbr)
	}
	return mbr
}

// Insert adds one item, splitting and growing the tree as needed.
func (t *Tree) Insert(mbr geom.Rect, id uint32, rec ops.Recorder) {
	leaf := t.chooseLeaf(t.root, mbr, rec)
	t.nodes[leaf].entries = append(t.nodes[leaf].entries, entry{mbr: mbr, ptr: id})
	rec.Op(ops.OpIndexBuildEntry, 1)
	rec.Store(t.nodes[leaf].addr+HeaderBytes+uint64(len(t.nodes[leaf].entries)-1)*EntryBytes, EntryBytes)
	t.nitems++
	if len(t.nodes[leaf].entries) > t.maxEnt {
		t.splitNode(leaf, rec)
	} else {
		// Guttman's AdjustTree: grow ancestor MBRs along the insertion
		// path even when no split happened.
		t.adjustUpward(leaf, rec)
	}
}

// chooseLeaf descends from ni picking the child needing the least MBR
// enlargement (ties by smaller area), Guttman's ChooseLeaf.
func (t *Tree) chooseLeaf(ni int32, mbr geom.Rect, rec ops.Recorder) int32 {
	for {
		rec.Op(ops.OpNodeVisit, 1)
		rec.Load(t.nodes[ni].addr, HeaderBytes)
		if t.nodes[ni].leaf {
			return ni
		}
		bestI := -1
		bestEnl := math.Inf(1)
		bestArea := math.Inf(1)
		for i, e := range t.nodes[ni].entries {
			rec.Load(t.nodes[ni].addr+HeaderBytes+uint64(i)*EntryBytes, EntryBytes)
			rec.Op(ops.OpMBRTest, 1)
			area := e.mbr.Area()
			enl := e.mbr.Union(mbr).Area() - area
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				bestI, bestEnl, bestArea = i, enl, area
			}
		}
		ni = int32(t.nodes[ni].entries[bestI].ptr)
	}
}

// splitNode splits an overfull node with Guttman's quadratic algorithm and
// propagates upward.
func (t *Tree) splitNode(ni int32, rec ops.Recorder) {
	entries := t.nodes[ni].entries
	// PickSeeds: the pair wasting the most area together.
	seedA, seedB := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			rec.Op(ops.OpMBRTest, 1)
			d := entries[i].mbr.Union(entries[j].mbr).Area() -
				entries[i].mbr.Area() - entries[j].mbr.Area()
			if d > worst {
				worst, seedA, seedB = d, i, j
			}
		}
	}

	groupA := []entry{entries[seedA]}
	groupB := []entry{entries[seedB]}
	mbrA, mbrB := entries[seedA].mbr, entries[seedB].mbr
	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != seedA && i != seedB {
			rest = append(rest, e)
		}
	}
	// PickNext: assign the entry with the strongest preference first.
	for len(rest) > 0 {
		// Force-assign when one group must take everything left to reach
		// the minimum fill.
		if len(groupA)+len(rest) <= t.minEnt {
			for _, e := range rest {
				groupA = append(groupA, e)
				mbrA = mbrA.Union(e.mbr)
			}
			break
		}
		if len(groupB)+len(rest) <= t.minEnt {
			for _, e := range rest {
				groupB = append(groupB, e)
				mbrB = mbrB.Union(e.mbr)
			}
			break
		}
		bestI := 0
		bestDiff := -1.0
		for i, e := range rest {
			rec.Op(ops.OpMBRTest, 1)
			dA := mbrA.Union(e.mbr).Area() - mbrA.Area()
			dB := mbrB.Union(e.mbr).Area() - mbrB.Area()
			if diff := math.Abs(dA - dB); diff > bestDiff {
				bestDiff, bestI = diff, i
			}
		}
		e := rest[bestI]
		rest = append(rest[:bestI], rest[bestI+1:]...)
		dA := mbrA.Union(e.mbr).Area() - mbrA.Area()
		dB := mbrB.Union(e.mbr).Area() - mbrB.Area()
		if dA < dB || (dA == dB && len(groupA) < len(groupB)) {
			groupA = append(groupA, e)
			mbrA = mbrA.Union(e.mbr)
		} else {
			groupB = append(groupB, e)
			mbrB = mbrB.Union(e.mbr)
		}
	}

	parent := t.nodes[ni].parent
	isLeaf := t.nodes[ni].leaf
	t.nodes[ni].entries = groupA
	sibling := t.newNode(isLeaf, parent)
	t.nodes[sibling].entries = groupB
	if !isLeaf {
		// Reparent group B's children.
		for _, e := range groupB {
			t.nodes[e.ptr].parent = sibling
		}
	}
	rec.Store(t.nodes[ni].addr, HeaderBytes+len(groupA)*EntryBytes)
	rec.Store(t.nodes[sibling].addr, HeaderBytes+len(groupB)*EntryBytes)

	if parent < 0 {
		// Root split: grow the tree.
		newRoot := t.newNode(false, -1)
		t.nodes[newRoot].entries = []entry{
			{mbr: mbrA, ptr: uint32(ni)},
			{mbr: mbrB, ptr: uint32(sibling)},
		}
		t.nodes[ni].parent = newRoot
		t.nodes[sibling].parent = newRoot
		t.root = newRoot
		t.height++
		rec.Store(t.nodes[newRoot].addr, HeaderBytes+2*EntryBytes)
		return
	}

	// Update the parent: fix this node's MBR, add the sibling.
	p := &t.nodes[parent]
	for i := range p.entries {
		if p.entries[i].ptr == uint32(ni) {
			p.entries[i].mbr = mbrA
			break
		}
	}
	p.entries = append(p.entries, entry{mbr: mbrB, ptr: uint32(sibling)})
	rec.Store(p.addr, HeaderBytes+len(p.entries)*EntryBytes)
	if len(p.entries) > t.maxEnt {
		t.splitNode(parent, rec)
	} else {
		// Propagate the MBR growth toward the root.
		t.adjustUpward(parent, rec)
	}
}

// adjustUpward refreshes ancestor MBRs after an insertion.
func (t *Tree) adjustUpward(ni int32, rec ops.Recorder) {
	for ni >= 0 {
		parent := t.nodes[ni].parent
		if parent < 0 {
			return
		}
		mbr := t.nodeMBR(ni)
		p := &t.nodes[parent]
		for i := range p.entries {
			if p.entries[i].ptr == uint32(ni) {
				if p.entries[i].mbr.ContainsRect(mbr) {
					return // no growth; ancestors unchanged
				}
				p.entries[i].mbr = p.entries[i].mbr.Union(mbr)
				rec.Store(p.addr+HeaderBytes+uint64(i)*EntryBytes, EntryBytes)
				break
			}
		}
		ni = parent
	}
}

// Search returns the ids of all items whose MBR intersects the window.
func (t *Tree) Search(window geom.Rect, rec ops.Recorder) []uint32 {
	var out []uint32
	if t.nitems == 0 {
		return out
	}
	var walk func(ni int32)
	walk = func(ni int32) {
		n := &t.nodes[ni]
		rec.Op(ops.OpNodeVisit, 1)
		rec.Load(n.addr, HeaderBytes)
		for i := range n.entries {
			rec.Load(n.addr+HeaderBytes+uint64(i)*EntryBytes, EntryBytes)
			rec.Op(ops.OpMBRTest, 1)
			if !window.Intersects(n.entries[i].mbr) {
				continue
			}
			if n.leaf {
				rec.Op(ops.OpResultAppend, 1)
				rec.Store(ops.ScratchBase+uint64(len(out))*4, 4)
				out = append(out, n.entries[i].ptr)
			} else {
				walk(int32(n.entries[i].ptr))
			}
		}
	}
	walk(t.root)
	return out
}

// SearchPoint returns the ids of all items whose MBR contains p.
func (t *Tree) SearchPoint(p geom.Point, rec ops.Recorder) []uint32 {
	return t.Search(geom.Rect{Min: p, Max: p}, rec)
}

// Nearest runs the branch-and-bound NN search (same algorithm as the packed
// tree).
func (t *Tree) Nearest(p geom.Point, dist index.DistFunc, rec ops.Recorder) (uint32, float64, bool) {
	if t.nitems == 0 {
		return 0, 0, false
	}
	best := math.Inf(1)
	bestID := uint32(0)
	found := false
	var walk func(ni int32)
	walk = func(ni int32) {
		n := &t.nodes[ni]
		rec.Op(ops.OpNodeVisit, 1)
		rec.Load(n.addr, HeaderBytes)
		if n.leaf {
			for i := range n.entries {
				rec.Load(n.addr+HeaderBytes+uint64(i)*EntryBytes, EntryBytes)
				rec.Op(ops.OpDistCalc, 1)
				if n.entries[i].mbr.MinDist(p) > best {
					continue
				}
				d := dist(n.entries[i].ptr)
				if d < best || !found {
					best, bestID, found = d, n.entries[i].ptr, true
				}
			}
			return
		}
		type cand struct {
			d float64
			i int
		}
		cands := make([]cand, 0, len(n.entries))
		for i := range n.entries {
			rec.Load(n.addr+HeaderBytes+uint64(i)*EntryBytes, EntryBytes)
			rec.Op(ops.OpDistCalc, 1)
			cands = append(cands, cand{n.entries[i].mbr.MinDist(p), i})
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
		rec.Op(ops.OpHeapOp, len(cands))
		for _, c := range cands {
			if c.d > best {
				break
			}
			walk(int32(n.entries[c.i].ptr))
		}
	}
	walk(t.root)
	return bestID, best, found
}

// CheckInvariants verifies structural invariants (for tests): parent MBRs
// contain children, occupancy bounds hold (root exempt), every item is
// reachable exactly once.
func (t *Tree) CheckInvariants() error {
	seen := map[uint32]int{}
	var walk func(ni int32, depth int) (geom.Rect, int, error)
	walk = func(ni int32, depth int) (geom.Rect, int, error) {
		n := &t.nodes[ni]
		if ni != t.root && (len(n.entries) < t.minEnt || len(n.entries) > t.maxEnt) {
			return geom.Rect{}, 0, fmt.Errorf("node %d occupancy %d outside [%d,%d]", ni, len(n.entries), t.minEnt, t.maxEnt)
		}
		mbr := geom.EmptyRect()
		leafDepth := -1
		for _, e := range n.entries {
			mbr = mbr.Union(e.mbr)
			if n.leaf {
				seen[e.ptr]++
				leafDepth = depth
				continue
			}
			childMBR, d, err := walk(int32(e.ptr), depth+1)
			if err != nil {
				return geom.Rect{}, 0, err
			}
			if !e.mbr.ContainsRect(childMBR) {
				return geom.Rect{}, 0, fmt.Errorf("node %d entry MBR does not contain child", ni)
			}
			if t.nodes[e.ptr].parent != ni {
				return geom.Rect{}, 0, fmt.Errorf("node %d child %d has wrong parent", ni, e.ptr)
			}
			switch {
			case leafDepth == -1:
				leafDepth = d
			case leafDepth != d:
				return geom.Rect{}, 0, fmt.Errorf("unbalanced: leaf depths %d and %d", leafDepth, d)
			}
		}
		return mbr, leafDepth, nil
	}
	if _, _, err := walk(t.root, 0); err != nil {
		return err
	}
	if len(seen) != t.nitems {
		return fmt.Errorf("reachable items %d != inserted %d", len(seen), t.nitems)
	}
	for id, cnt := range seen {
		if cnt != 1 {
			return fmt.Errorf("item %d stored %d times", id, cnt)
		}
	}
	return nil
}
