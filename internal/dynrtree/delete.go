package dynrtree

import (
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
)

// This file adds deletion (Guttman's Delete / FindLeaf / CondenseTree) to the
// dynamic R-tree, turning the insert-only baseline into a structure usable as
// the delta tree of an updatable shard (internal/mutable): live inserts and
// moves land here while the packed base stays immutable, so Delete must keep
// every invariant CheckInvariants verifies — occupancy bounds, exact parent
// MBRs, balanced leaf depth, each item stored exactly once.
//
// One deliberate simplification over the 1984 paper: orphaned subtrees from
// condensing are flattened to items and re-inserted one by one instead of
// being re-attached at their original level. Item-level reinsertion preserves
// the balanced-leaf-depth invariant by construction and the delta trees this
// powers are small (they are rebuilt into the packed base at every
// compaction), so the extra insert work is noise next to the simplicity win.

// Delete removes the item with the given id whose stored MBR intersects mbr,
// condensing underfull nodes and shrinking the root as needed. It reports
// whether the item was found. Callers that recorded the exact MBR used at
// insertion time should pass it back here — the MBR only prunes the leaf
// search, the match itself is by id.
func (t *Tree) Delete(mbr geom.Rect, id uint32, rec ops.Recorder) bool {
	leaf := t.findLeaf(t.root, mbr, id, rec)
	if leaf < 0 {
		return false
	}
	n := &t.nodes[leaf]
	for i := range n.entries {
		if n.entries[i].ptr == id {
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
			break
		}
	}
	rec.Store(n.addr, HeaderBytes+len(n.entries)*EntryBytes)
	t.nitems--
	t.condenseTree(leaf, rec)
	t.shrinkRoot()
	return true
}

// findLeaf locates the leaf holding id, descending only into subtrees whose
// entry MBR intersects the item's (Guttman's FindLeaf).
func (t *Tree) findLeaf(ni int32, mbr geom.Rect, id uint32, rec ops.Recorder) int32 {
	n := &t.nodes[ni]
	rec.Op(ops.OpNodeVisit, 1)
	rec.Load(n.addr, HeaderBytes)
	for i := range n.entries {
		rec.Load(n.addr+HeaderBytes+uint64(i)*EntryBytes, EntryBytes)
		rec.Op(ops.OpMBRTest, 1)
		if n.leaf {
			if n.entries[i].ptr == id {
				return ni
			}
			continue
		}
		if !n.entries[i].mbr.Intersects(mbr) {
			continue
		}
		if f := t.findLeaf(int32(n.entries[i].ptr), mbr, id, rec); f >= 0 {
			return f
		}
	}
	return -1
}

// condenseTree walks from a shrunken leaf to the root. Underfull non-root
// nodes are unlinked from their parent and their items collected; surviving
// ancestors get their entry MBR recomputed exactly (deletion shrinks, so a
// union-style adjust would leave stale fat rectangles). Collected orphans are
// re-inserted at the end.
func (t *Tree) condenseTree(ni int32, rec ops.Recorder) {
	var orphans []Item
	for {
		parent := t.nodes[ni].parent
		if parent < 0 {
			break
		}
		p := &t.nodes[parent]
		if len(t.nodes[ni].entries) < t.minEnt {
			for i := range p.entries {
				if int32(p.entries[i].ptr) == ni {
					p.entries = append(p.entries[:i], p.entries[i+1:]...)
					break
				}
			}
			rec.Store(p.addr, HeaderBytes+len(p.entries)*EntryBytes)
			t.collectItems(ni, &orphans)
			t.nodes[ni].entries = t.nodes[ni].entries[:0]
		} else {
			mbr := t.nodeMBR(ni)
			for i := range p.entries {
				if int32(p.entries[i].ptr) == ni {
					p.entries[i].mbr = mbr
					rec.Store(p.addr+HeaderBytes+uint64(i)*EntryBytes, EntryBytes)
					break
				}
			}
		}
		ni = parent
	}
	// Re-insert the orphans. Insert increments nitems, so account for the
	// collected items first — they were never logically removed.
	t.nitems -= len(orphans)
	for _, it := range orphans {
		t.Insert(it.MBR, it.ID, rec)
	}
}

// collectItems appends every item stored under ni to out.
func (t *Tree) collectItems(ni int32, out *[]Item) {
	n := &t.nodes[ni]
	if n.leaf {
		for _, e := range n.entries {
			*out = append(*out, Item{MBR: e.mbr, ID: e.ptr})
		}
		return
	}
	for _, e := range n.entries {
		t.collectItems(int32(e.ptr), out)
	}
}

// shrinkRoot collapses single-child internal roots left behind by
// condensing, the inverse of the root split.
func (t *Tree) shrinkRoot() {
	for {
		r := &t.nodes[t.root]
		if r.leaf || len(r.entries) != 1 {
			return
		}
		child := int32(r.entries[0].ptr)
		r.entries = r.entries[:0]
		t.nodes[child].parent = -1
		t.root = child
		t.height--
	}
}

// AppendItems appends every indexed item to dst and returns the extended
// slice — the compactor's enumeration when folding a delta tree back into a
// packed base.
func (t *Tree) AppendItems(dst []Item) []Item {
	if t.nitems == 0 {
		return dst
	}
	t.collectItems(t.root, &dst)
	return dst
}

// AppendSearch appends the ids of all items whose MBR intersects the window
// to dst and returns the extended slice. Unlike Search it allocates nothing
// beyond dst's own growth, which keeps the updatable shard's delta overlay
// allocation-free on a warm read path.
func (t *Tree) AppendSearch(dst []uint32, window geom.Rect, rec ops.Recorder) []uint32 {
	if t.nitems == 0 {
		return dst
	}
	return t.appendSearch(t.root, dst, window, rec)
}

func (t *Tree) appendSearch(ni int32, dst []uint32, window geom.Rect, rec ops.Recorder) []uint32 {
	n := &t.nodes[ni]
	rec.Op(ops.OpNodeVisit, 1)
	rec.Load(n.addr, HeaderBytes)
	for i := range n.entries {
		rec.Load(n.addr+HeaderBytes+uint64(i)*EntryBytes, EntryBytes)
		rec.Op(ops.OpMBRTest, 1)
		if !window.Intersects(n.entries[i].mbr) {
			continue
		}
		if n.leaf {
			rec.Op(ops.OpResultAppend, 1)
			dst = append(dst, n.entries[i].ptr)
		} else {
			dst = t.appendSearch(int32(n.entries[i].ptr), dst, window, rec)
		}
	}
	return dst
}

// AppendSearchPoint appends the ids of all items whose MBR contains p.
func (t *Tree) AppendSearchPoint(dst []uint32, p geom.Point, rec ops.Recorder) []uint32 {
	return t.AppendSearch(dst, geom.Rect{Min: p, Max: p}, rec)
}
