// Package heat tracks per-shard query heat: a cheap access counter per
// Hilbert range, folded into an exponentially-weighted moving rate by a
// periodic decay pass. The read path cost is one atomic add — cheap enough
// to sample on EVERY query without perturbing the zero-alloc warm path —
// while the EWMA gives the repartitioner a smoothed queries-per-second rate
// per shard that forgets old hotspots at a configurable half-life.
//
// A Tracker is sized once for a fixed slot count. Topology changes (shard
// splits and merges) do not resize a live tracker; the repartitioner builds
// a new one per topology snapshot and seeds the new slots from the old rates
// (a split gives each child half the parent's rate, a merge gives the child
// the sum), so observed heat survives repartitioning instead of restarting
// from cold.
package heat

import (
	"math"
	"sync/atomic"
	"time"
)

// Tracker accumulates access counts for n slots and folds them into EWMA
// rates. Touch is safe for any number of concurrent callers; Decay is meant
// for a single background caller (concurrent Decays would double-count
// elapsed time, not corrupt state).
type Tracker struct {
	// raw[i] counts touches since the last Decay fold.
	raw []atomic.Uint64
	// rate[i] is the EWMA touches-per-second, stored as float64 bits.
	rate []atomic.Uint64
	// halfLife is the EWMA half-life in seconds: after that much idle
	// time a slot's rate halves.
	halfLife float64

	// lastFold is the unix-nano time of the last Fold (0 = never);
	// folding is the single-folder admission gate.
	lastFold atomic.Int64
	folding  atomic.Bool
}

// minFoldSeconds is the smallest elapsed window Fold will decay over:
// sub-50ms folds would spend atomics on statistically empty samples.
const minFoldSeconds = 0.05

// DefaultHalfLife is the rate half-life used when none is given: long
// enough to ride out one burst-free refresh interval, short enough that a
// migrated hotspot fades within a few repartition ticks.
const DefaultHalfLife = 10.0 // seconds

// New returns a tracker for n slots with the given half-life in seconds
// (<= 0 selects DefaultHalfLife).
func New(n int, halfLifeSeconds float64) *Tracker {
	if halfLifeSeconds <= 0 {
		halfLifeSeconds = DefaultHalfLife
	}
	return &Tracker{
		raw:      make([]atomic.Uint64, n),
		rate:     make([]atomic.Uint64, n),
		halfLife: halfLifeSeconds,
	}
}

// Len returns the slot count.
func (t *Tracker) Len() int { return len(t.raw) }

// Touch records one access to slot i. Out-of-range slots are ignored so
// readers holding a stale topology snapshot stay safe across a swap.
func (t *Tracker) Touch(i int) {
	if t == nil || i < 0 || i >= len(t.raw) {
		return
	}
	t.raw[i].Add(1)
}

// TouchN records n accesses to slot i.
func (t *Tracker) TouchN(i int, n uint64) {
	if t == nil || i < 0 || i >= len(t.raw) {
		return
	}
	t.raw[i].Add(n)
}

// Decay folds the raw counts accumulated over the elapsed seconds into the
// EWMA rates. rate' = rate*decay + (raw/elapsed)*(1-decay), with decay
// derived from the half-life; elapsed <= 0 is a no-op.
func (t *Tracker) Decay(elapsedSeconds float64) {
	if t == nil || elapsedSeconds <= 0 {
		return
	}
	decay := math.Exp2(-elapsedSeconds / t.halfLife)
	for i := range t.raw {
		n := t.raw[i].Swap(0)
		inst := float64(n) / elapsedSeconds
		old := math.Float64frombits(t.rate[i].Load())
		t.rate[i].Store(math.Float64bits(old*decay + inst*(1-decay)))
	}
}

// Fold is the self-clocking Decay: it folds raw counts over the wall-clock
// time elapsed since the previous Fold. Callers sprinkle it wherever rates
// are read (summary builders, the repartition loop) without coordinating —
// the CAS gate admits one folder at a time and the minimum-window check
// makes extra calls free.
func (t *Tracker) Fold() {
	if t == nil || !t.folding.CompareAndSwap(false, true) {
		return
	}
	now := time.Now().UnixNano()
	if last := t.lastFold.Load(); last == 0 {
		t.lastFold.Store(now)
	} else if el := float64(now-last) / float64(time.Second); el >= minFoldSeconds {
		t.Decay(el)
		t.lastFold.Store(now)
	}
	t.folding.Store(false)
}

// Rate returns slot i's EWMA rate in touches per second (0 out of range).
func (t *Tracker) Rate(i int) float64 {
	if t == nil || i < 0 || i >= len(t.rate) {
		return 0
	}
	return math.Float64frombits(t.rate[i].Load())
}

// Seed sets slot i's EWMA rate directly — used when a new tracker inherits
// heat across a topology change.
func (t *Tracker) Seed(i int, rate float64) {
	if t == nil || i < 0 || i >= len(t.rate) {
		return
	}
	t.rate[i].Store(math.Float64bits(rate))
}

// Total returns the sum of all slot rates: the pool-wide query rate the
// repartitioner compares each shard against.
func (t *Tracker) Total() float64 {
	if t == nil {
		return 0
	}
	var sum float64
	for i := range t.rate {
		sum += math.Float64frombits(t.rate[i].Load())
	}
	return sum
}
