package heat

import (
	"math"
	"sync"
	"testing"
)

func TestTouchAndDecay(t *testing.T) {
	tr := New(4, 10)
	for i := 0; i < 100; i++ {
		tr.Touch(1)
	}
	tr.Decay(1.0)
	if r := tr.Rate(1); r <= 0 || r > 100 {
		t.Fatalf("rate(1) = %v, want in (0, 100]", r)
	}
	if r := tr.Rate(0); r != 0 {
		t.Fatalf("rate(0) = %v, want 0", r)
	}
	// Idle decay: after many half-lives the rate approaches zero.
	got := tr.Rate(1)
	tr.Decay(100)
	if r := tr.Rate(1); r >= got/2 {
		t.Fatalf("rate(1) after idle decay = %v, want well below %v", r, got)
	}
}

func TestHalfLife(t *testing.T) {
	tr := New(1, 5)
	tr.Seed(0, 100)
	tr.Decay(5) // exactly one half-life with zero raw traffic
	if r := tr.Rate(0); math.Abs(r-50) > 1e-9 {
		t.Fatalf("rate after one half-life = %v, want 50", r)
	}
}

func TestOutOfRangeSafe(t *testing.T) {
	tr := New(2, 10)
	tr.Touch(-1)
	tr.Touch(2)
	tr.Seed(99, 5)
	if tr.Rate(-1) != 0 || tr.Rate(2) != 0 {
		t.Fatal("out-of-range rate should be 0")
	}
	var nilTr *Tracker
	nilTr.Touch(0) // must not panic
	if nilTr.Rate(0) != 0 || nilTr.Total() != 0 {
		t.Fatal("nil tracker should read as zero")
	}
}

func TestTotal(t *testing.T) {
	tr := New(3, 10)
	tr.Seed(0, 1)
	tr.Seed(1, 2)
	tr.Seed(2, 3)
	if got := tr.Total(); math.Abs(got-6) > 1e-9 {
		t.Fatalf("total = %v, want 6", got)
	}
}

func TestConcurrentTouch(t *testing.T) {
	tr := New(8, 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Touch(i % 8)
			}
		}(g)
	}
	wg.Wait()
	tr.Decay(1)
	var sum float64
	for i := 0; i < 8; i++ {
		sum += tr.Rate(i)
	}
	if sum <= 0 {
		t.Fatal("expected positive total rate after concurrent touches")
	}
}

func BenchmarkTouch(b *testing.B) {
	tr := New(64, 10)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			tr.Touch(i & 63)
			i++
		}
	})
}
