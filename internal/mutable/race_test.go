//go:build race

package mutable

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
