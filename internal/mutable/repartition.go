package mutable

import (
	"sort"
	"time"

	"mobispatial/internal/dynrtree"
	"mobispatial/internal/geom"
	"mobispatial/internal/heat"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
	"mobispatial/internal/shard"
)

// Workload-adaptive repartitioning. A background loop watches the per-shard
// EWMA heat the read path samples and reshapes the cut table online: a shard
// drawing a disproportionate share of queries splits at the median Hilbert
// key of its contents, and a run of cold neighbors merges back into one.
// Both operations reuse the compactor's freeze/rebuild/swap discipline —
// replacement shards are built off to the side from immutable inputs, then a
// new topology generation is published through the pool's atomic pointer —
// so readers never block on a repartition and the zero-alloc warm read path
// survives unchanged.
//
// Retirement semantics: the replaced shard keeps its layers intact (the swap
// COPIES the live overlay into the replacements, it never moves it), so a
// reader still holding the previous topology snapshot keeps observing every
// acknowledged write; the retired shard becomes garbage when those readers
// drain. The swap happens under the pool's omu, the same lock every write
// resolves ownership under, so no write can land in a retired shard.

// AdaptiveConfig tunes the repartitioner. The zero value disables it; an
// enabled config requires the pool to own every cluster range under the
// identity mapping (a replica holding a subset cannot re-cut the cluster
// unilaterally).
type AdaptiveConfig struct {
	// Enabled turns the heat-driven split/merge loop on.
	Enabled bool

	// Interval is the decision period: each tick applies at most one split
	// or merge. 0 means 500ms; negative disables the background loop
	// (tests drive RepartitionOnce directly).
	Interval time.Duration

	// SplitFactor is the heat multiple over the per-shard mean at which a
	// shard becomes split-eligible. Defaults to 1.5.
	SplitFactor float64

	// MergeFactor is the heat multiple of the mean below which an adjacent
	// pair's combined heat makes it merge-eligible. Defaults to 0.3 —
	// the gap to SplitFactor is the hysteresis that stops oscillation.
	MergeFactor float64

	// MinShardItems stops splitting shards that are already small: a shard
	// splits only when it holds at least 2*MinShardItems objects.
	// Defaults to 512.
	MinShardItems int

	// MaxShards caps the shard count. Defaults to 64 — the result cache's
	// per-shard version-vector width.
	MaxShards int

	// MinShards floors the shard count for merges. Defaults to 1.
	MinShards int

	// HalfLifeSeconds is the heat EWMA half-life;
	// 0 means heat.DefaultHalfLife.
	HalfLifeSeconds float64
}

func (c *AdaptiveConfig) fill() {
	if c.Interval == 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.SplitFactor <= 0 {
		c.SplitFactor = 1.5
	}
	if c.MergeFactor <= 0 {
		c.MergeFactor = 0.3
	}
	if c.MinShardItems <= 0 {
		c.MinShardItems = 512
	}
	if c.MaxShards <= 0 {
		c.MaxShards = 64
	}
	if c.MinShards <= 0 {
		c.MinShards = 1
	}
	if c.HalfLifeSeconds <= 0 {
		c.HalfLifeSeconds = heat.DefaultHalfLife
	}
}

func (p *Pool) repartitionLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.Adaptive.Interval)
	defer t.Stop()
	for {
		select {
		case <-p.stopc:
			return
		case <-t.C:
			p.RepartitionOnce()
		}
	}
}

// RepartitionOnce runs one decision tick: fold the heat, then apply at most
// one split (of the hottest eligible shard) or merge (of the coldest
// adjacent pair). It reports whether the topology changed. The background
// loop calls it every Adaptive.Interval; tests call it directly for
// deterministic repartitions.
func (p *Pool) RepartitionOnce() bool {
	t := p.topo.Load()
	if !t.ownsAll || len(t.shards) == 0 {
		return false
	}
	t.heat.Fold()
	cfg := &p.cfg.Adaptive
	n := len(t.shards)
	total := t.heat.Total()
	if total <= 0 {
		return false
	}
	mean := total / float64(n)

	// Split the hottest eligible shard. A lone shard splits on any
	// traffic at all — with n == 1 the mean test is vacuous.
	if n < cfg.MaxShards {
		best, bestRate := -1, 0.0
		for i, s := range t.shards {
			r := t.heat.Rate(i)
			if r > bestRate && (n == 1 || r >= cfg.SplitFactor*mean) &&
				int(s.count.Load()) >= 2*cfg.MinShardItems {
				best, bestRate = i, r
			}
		}
		if best >= 0 && p.splitShard(t, best) {
			return true
		}
	}

	// Merge the coldest adjacent pair.
	if n > cfg.MinShards && n >= 2 {
		best, bestSum := -1, 0.0
		for g := 0; g+1 < n; g++ {
			sum := t.heat.Rate(g) + t.heat.Rate(g+1)
			if best < 0 || sum < bestSum {
				best, bestSum = g, sum
			}
		}
		if best >= 0 && bestSum <= cfg.MergeFactor*mean {
			return p.mergeShards(t, best)
		}
	}
	return false
}

// detachWith is the freeze detachment with s.mu already held in write mode:
// the live overlay becomes the immutable frozen layer and nd becomes the new
// empty live delta. The caller must have checked s.frozen == nil.
func (s *mshard) detachWith(nd *dynrtree.Tree) *frozenView {
	f := &frozenView{delta: s.delta, overSeg: s.overSeg, tombs: s.tombs}
	s.frozen = f
	s.delta = nd
	s.overSeg = map[uint32]geom.Segment{}
	s.tombs = map[uint32]struct{}{}
	return f
}

// freezeForRepartition is freeze() for the repartitioner: it detaches the
// overlay even when empty, because the installed frozen layer is also the
// mutual-exclusion token against the compactor (freeze() refuses while a
// frozen layer exists, so no compaction can fold this shard mid-repartition).
// Returns nil when a freeze is already outstanding — the repartition aborts
// and retries next tick.
func (s *mshard) freezeForRepartition() *frozenView {
	nd, err := newDelta(s.pl.cfg.DeltaNodeBytes)
	if err != nil {
		s.pl.m.compactErrs.Inc()
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen != nil {
		return nil
	}
	return s.detachWith(nd)
}

// freezePairForRepartition freezes both merge victims atomically, under both
// write locks (taken in li order, the same discipline writers use). Two
// separate freezes would leave a window where a cross-shard move lands its
// removal in the first shard's LIVE tombstones but its arrival in the second
// shard's FROZEN overlay: the swap would then see a live tombstone for an id
// whose current copy sits in the merged base and wrongly kill it. With both
// detachments under both locks, any move between the victims is either
// entirely in the frozen snapshots or entirely in the live layers.
func freezePairForRepartition(p *Pool, a, b *mshard) (fa, fb *frozenView) {
	nda, err := newDelta(p.cfg.DeltaNodeBytes)
	if err != nil {
		p.m.compactErrs.Inc()
		return nil, nil
	}
	ndb, err := newDelta(p.cfg.DeltaNodeBytes)
	if err != nil {
		p.m.compactErrs.Inc()
		return nil, nil
	}
	lk, hk := a, b
	if lk.li > hk.li {
		lk, hk = hk, lk
	}
	lk.mu.Lock()
	hk.mu.Lock()
	if a.frozen == nil && b.frozen == nil {
		fa = a.detachWith(nda)
		fb = b.detachWith(ndb)
	}
	hk.mu.Unlock()
	lk.mu.Unlock()
	return fa, fb
}

// mergedItems folds a frozen overlay into its base's item set — compaction
// phase 2 without the tree build. Both inputs are immutable; the result is
// the shard's visible-beneath-the-live-overlay contents, with over carrying
// the geometry of every id whose segment differs from the base dataset.
func mergedItems(old *baseView, f *frozenView) ([]rtree.Item, map[uint32]geom.Segment) {
	items := make([]rtree.Item, 0, len(old.items)+len(f.overSeg))
	over := make(map[uint32]geom.Segment, len(old.over)+len(f.overSeg))
	for _, it := range old.items {
		if _, dead := f.tombs[it.ID]; dead {
			continue
		}
		if _, moved := f.overSeg[it.ID]; moved {
			continue
		}
		items = append(items, it)
		if seg, ok := old.over[it.ID]; ok {
			over[it.ID] = seg
		}
	}
	for id, seg := range f.overSeg {
		items = append(items, rtree.Item{MBR: seg.MBR(), ID: id})
		over[id] = seg
	}
	return items, over
}

// newRepartShard builds a replacement shard from a merged item set, seeding
// its base overlay map with the non-dataset geometries among them. The shard
// is private until the topology swap publishes it, so the direct map writes
// need no lock.
func newRepartShard(p *Pool, items []rtree.Item, over map[uint32]geom.Segment) (*mshard, error) {
	s, err := newMShard(p, int(p.liSeq.Add(1)-1), items)
	if err != nil {
		return nil, err
	}
	bv := s.base.Load()
	for id := range bv.has {
		if seg, ok := over[id]; ok {
			bv.over[id] = seg
		}
	}
	return s, nil
}

// adopt finalizes a replacement shard at swap time (omu held): every live id
// it now holds is claimed in the owner table, and its count, pend, and
// staleness clock are set from its final contents.
func (p *Pool) adopt(c *mshard, pendSince int64) {
	bv := c.base.Load()
	var n int64
	for id := range bv.has {
		if _, dead := c.tombs[id]; dead {
			continue
		}
		p.ownerOf[id] = c
		n++
	}
	for id := range c.overSeg {
		if _, inBase := bv.has[id]; !inBase {
			n++
		}
		p.ownerOf[id] = c
	}
	c.count.Store(n)
	pend := len(c.overSeg) + len(c.tombs)
	c.pend.Store(int64(pend))
	if pend > 0 {
		if pendSince == 0 {
			pendSince = time.Now().UnixNano()
		}
		c.pendSince.Store(pendSince)
	}
	c.version.Add(1)
}

// splitShard splits global range g of topology t at the median Hilbert key
// of its contents, publishing a t.gen+1 topology with one more shard. It
// reports false when the split cannot proceed (compaction in flight, no
// separating key, or t is no longer current) — every abort path restores the
// shard via finishCompact, which folds the frozen layer back into a fresh
// base.
func (p *Pool) splitShard(t *topology, g int) bool {
	if !t.ownsAll || g < 0 || g >= len(t.shards) {
		return false
	}
	s := t.shards[g]
	f := s.freezeForRepartition()
	if f == nil {
		return false
	}

	// Rebuild off to the side: no locks held, queries and writes proceed.
	items, over := mergedItems(s.base.Load(), f)
	type keyed struct {
		key uint64
		it  rtree.Item
	}
	ks := make([]keyed, len(items))
	for i, it := range items {
		ks[i] = keyed{shard.WriteKey(p.q, it.MBR), it}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })

	// The cut becomes the right child's Lo: it must strictly separate the
	// sorted keys (both children non-empty) and sit strictly inside the
	// range's key span so the cut table stays ascending. Scan outward from
	// the median for the most balanced valid cut.
	lo, hi := t.cuts[g], t.rangeHi(g)
	nk := len(ks)
	cutIdx := -1
	for d := 0; d < nk && cutIdx < 0; d++ {
		for _, idx := range [2]int{nk/2 - d, nk/2 + d} {
			if idx >= 1 && idx < nk &&
				ks[idx].key > ks[idx-1].key && ks[idx].key > lo && ks[idx].key <= hi {
				cutIdx = idx
				break
			}
		}
	}
	if cutIdx < 0 {
		// Degenerate contents (all keys equal): nothing to split on.
		s.finishCompact(f)
		return false
	}
	cut := ks[cutIdx].key

	leftItems := make([]rtree.Item, 0, cutIdx)
	rightItems := make([]rtree.Item, 0, nk-cutIdx)
	for i, k := range ks {
		if i < cutIdx {
			leftItems = append(leftItems, k.it)
		} else {
			rightItems = append(rightItems, k.it)
		}
	}
	left, errL := newRepartShard(p, leftItems, over)
	right, errR := newRepartShard(p, rightItems, over)
	if errL != nil || errR != nil {
		p.m.compactErrs.Inc()
		s.finishCompact(f)
		return false
	}

	// Swap: under omu (so ownership resolution and the cut table move
	// together) plus the parent's write lock (so the overlay distributed
	// below is final).
	p.omu.Lock()
	if p.topo.Load() != t {
		p.omu.Unlock()
		s.finishCompact(f)
		return false
	}
	s.mu.Lock()

	lbv, rbv := left.base.Load(), right.base.Load()
	// Copy (never move) the overlay written during the rebuild into the
	// children: each live entry routes by its key; if its pre-move copy
	// was rebuilt into the OTHER child's base, a tombstone there hides it.
	for id, seg := range s.overSeg {
		c, o, obv := left, right, rbv
		if shard.WriteKey(p.q, seg.MBR()) >= cut {
			c, o, obv = right, left, lbv
		}
		c.overSeg[id] = seg
		c.delta.Insert(seg.MBR(), id, ops.Null{})
		if _, ok := obv.has[id]; ok {
			o.tombs[id] = struct{}{}
		}
	}
	for id := range s.tombs {
		if _, ok := lbv.has[id]; ok {
			left.tombs[id] = struct{}{}
		} else if _, ok := rbv.has[id]; ok {
			right.tombs[id] = struct{}{}
		}
	}
	pendSince := s.pendSince.Load()
	p.adopt(left, pendSince)
	p.adopt(right, pendSince)
	if checkOwners {
		verifyOwnersLocked(p, "split", t, []*mshard{s}, []*mshard{left, right})
	}

	nt := &topology{gen: t.gen + 1, ownsAll: true}
	nt.cuts = make([]uint64, 0, len(t.cuts)+1)
	nt.cuts = append(nt.cuts, t.cuts[:g+1]...)
	nt.cuts = append(nt.cuts, cut)
	nt.cuts = append(nt.cuts, t.cuts[g+1:]...)
	nt.shards = make([]*mshard, 0, len(t.shards)+1)
	nt.shards = append(nt.shards, t.shards[:g]...)
	nt.shards = append(nt.shards, left, right)
	nt.shards = append(nt.shards, t.shards[g+1:]...)
	nt.local = make(map[int]int, len(nt.shards))
	for i := range nt.shards {
		nt.local[i] = i
	}
	nt.heat = heat.New(len(nt.shards), p.cfg.Adaptive.HalfLifeSeconds)
	for i := 0; i < g; i++ {
		nt.heat.Seed(i, t.heat.Rate(i))
	}
	half := t.heat.Rate(g) / 2
	nt.heat.Seed(g, half)
	nt.heat.Seed(g+1, half)
	for i := g + 1; i < len(t.shards); i++ {
		nt.heat.Seed(i+1, t.heat.Rate(i))
	}
	p.topo.Store(nt)

	s.mu.Unlock()
	p.omu.Unlock()
	p.splits.Add(1)
	p.m.splits.Inc()
	return true
}

// mergeShards merges global ranges g and g+1 of topology t into one shard,
// publishing a t.gen+1 topology with one fewer shard and the boundary cut
// dropped. Abort paths restore both shards via finishCompact.
func (p *Pool) mergeShards(t *topology, g int) bool {
	if !t.ownsAll || g < 0 || g+1 >= len(t.shards) {
		return false
	}
	a, b := t.shards[g], t.shards[g+1]
	fa, fb := freezePairForRepartition(p, a, b)
	if fa == nil {
		return false
	}

	itemsA, over := mergedItems(a.base.Load(), fa)
	itemsB, overB := mergedItems(b.base.Load(), fb)
	items := make([]rtree.Item, 0, len(itemsA)+len(itemsB))
	items = append(items, itemsA...)
	items = append(items, itemsB...)
	for id, seg := range overB {
		over[id] = seg
	}
	merged, err := newRepartShard(p, items, over)
	if err != nil {
		p.m.compactErrs.Inc()
		a.finishCompact(fa)
		b.finishCompact(fb)
		return false
	}

	p.omu.Lock()
	if p.topo.Load() != t {
		p.omu.Unlock()
		a.finishCompact(fa)
		b.finishCompact(fb)
		return false
	}
	lk, hk := a, b
	if lk.li > hk.li {
		lk, hk = hk, lk
	}
	lk.mu.Lock()
	hk.mu.Lock()

	mbv := merged.base.Load()
	var pendSince int64
	for _, s := range [2]*mshard{a, b} {
		for id, seg := range s.overSeg {
			merged.overSeg[id] = seg
			merged.delta.Insert(seg.MBR(), id, ops.Null{})
		}
		if ps := s.pendSince.Load(); ps > 0 && (pendSince == 0 || ps < pendSince) {
			pendSince = ps
		}
	}
	// Tombstones second: an id deleted in one shard and re-inserted into
	// the other during the rebuild is live — the overlay entry alone masks
	// its rebuilt base copy, and skipping the tombstone keeps the overlay
	// and tombstone sets disjoint.
	for _, s := range [2]*mshard{a, b} {
		for id := range s.tombs {
			if _, live := merged.overSeg[id]; live {
				continue
			}
			if _, ok := mbv.has[id]; ok {
				merged.tombs[id] = struct{}{}
			}
		}
	}
	p.adopt(merged, pendSince)
	if checkOwners {
		verifyOwnersLocked(p, "merge", t, []*mshard{a, b}, []*mshard{merged})
	}

	nt := &topology{gen: t.gen + 1, ownsAll: true}
	nt.cuts = make([]uint64, 0, len(t.cuts)-1)
	nt.cuts = append(nt.cuts, t.cuts[:g+1]...)
	nt.cuts = append(nt.cuts, t.cuts[g+2:]...)
	nt.shards = make([]*mshard, 0, len(t.shards)-1)
	nt.shards = append(nt.shards, t.shards[:g]...)
	nt.shards = append(nt.shards, merged)
	nt.shards = append(nt.shards, t.shards[g+2:]...)
	nt.local = make(map[int]int, len(nt.shards))
	for i := range nt.shards {
		nt.local[i] = i
	}
	nt.heat = heat.New(len(nt.shards), p.cfg.Adaptive.HalfLifeSeconds)
	for i := 0; i < g; i++ {
		nt.heat.Seed(i, t.heat.Rate(i))
	}
	nt.heat.Seed(g, t.heat.Rate(g)+t.heat.Rate(g+1))
	for i := g + 2; i < len(t.shards); i++ {
		nt.heat.Seed(i-1, t.heat.Rate(i))
	}
	p.topo.Store(nt)

	hk.mu.Unlock()
	lk.mu.Unlock()
	p.omu.Unlock()
	p.merges.Add(1)
	p.m.merges.Inc()
	return true
}
