package mutable

import (
	"time"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
)

// Compaction folds a shard's overlay back into a freshly bulk-loaded packed
// base in three phases, blocking writers only for the two map swaps:
//
//  1. Freeze (write lock): detach the live overlay — delta tree, override
//     map, tombstones — as an immutable frozenView and install fresh empty
//     live structures. Readers now merge three layers; writers keep landing
//     in the new live overlay.
//  2. Rebuild (no locks): bulk-load a new packed base from the old base's
//     items minus frozen tombstones and superseded ids, plus the frozen
//     overlay's items. Both inputs are immutable, so queries and writes
//     proceed concurrently.
//  3. Swap (write lock): publish the new baseView through the atomic
//     pointer, drop the frozen layer, bump the epoch.
//
// A delete that arrives during phase 2 lands in the new live tombstone set,
// which masks the new base after the swap — so the rebuild never loses a
// concurrent write. The pend counter only returns to zero once no overlay
// entries remain, which is what re-arms the lock-free fast path.

// ForceCompact synchronously compacts every shard with a non-empty overlay.
// Tests and benchmarks use it to pin the "fully folded" state.
func (p *Pool) ForceCompact() {
	for _, s := range p.topo.Load().shards {
		s.compact()
	}
}

// CompactShard synchronously compacts shard i; it reports whether a
// compaction ran. An index outside the current topology is a no-op.
func (p *Pool) CompactShard(i int) bool {
	if t := p.topo.Load(); i >= 0 && i < len(t.shards) {
		return t.shards[i].compact()
	}
	return false
}

func (s *mshard) compact() bool {
	f := s.freeze()
	if f == nil {
		return false
	}
	return s.finishCompact(f)
}

// freeze runs phase 1, returning the detached overlay, or nil when there is
// nothing to compact or a freeze is already outstanding. Split from
// finishCompact so tests can hold the three-layer state open and query
// through it deterministically.
func (s *mshard) freeze() *frozenView {
	s.mu.Lock()
	if s.frozen != nil {
		// A concurrent ForceCompact already froze; let it finish.
		s.mu.Unlock()
		return nil
	}
	if len(s.overSeg) == 0 && len(s.tombs) == 0 {
		s.mu.Unlock()
		return nil
	}
	f := &frozenView{delta: s.delta, overSeg: s.overSeg, tombs: s.tombs}
	nd, err := newDelta(s.pl.cfg.DeltaNodeBytes)
	if err != nil {
		s.mu.Unlock()
		s.pl.m.compactErrs.Inc()
		return nil
	}
	s.frozen = f
	s.delta = nd
	s.overSeg = map[uint32]geom.Segment{}
	s.tombs = map[uint32]struct{}{}
	s.mu.Unlock()
	return f
}

// finishCompact runs phases 2 and 3 over a frozen overlay.
func (s *mshard) finishCompact(f *frozenView) bool {
	// Phase 2: rebuild from immutable inputs.
	old := s.base.Load()
	items := make([]rtree.Item, 0, len(old.items)+len(f.overSeg))
	has := make(map[uint32]struct{}, len(old.items)+len(f.overSeg))
	over := make(map[uint32]geom.Segment, len(old.over)+len(f.overSeg))
	for _, it := range old.items {
		if _, dead := f.tombs[it.ID]; dead {
			continue
		}
		if _, moved := f.overSeg[it.ID]; moved {
			continue
		}
		items = append(items, it)
		has[it.ID] = struct{}{}
		if seg, ok := old.over[it.ID]; ok {
			over[it.ID] = seg
		}
	}
	for id, seg := range f.overSeg {
		items = append(items, rtree.Item{MBR: seg.MBR(), ID: id})
		has[id] = struct{}{}
		over[id] = seg
	}
	tree, err := rtree.Build(items, rtree.Config{NodeBytes: s.pl.cfg.NodeBytes}, ops.Null{})
	if err != nil {
		// Cannot happen with a config that built the initial base; if it
		// somehow does, leave the frozen layer in place — reads remain
		// correct, the shard just stays on the overlay path.
		s.pl.m.compactErrs.Inc()
		return false
	}
	nv := &baseView{tree: tree, items: items, has: has, over: over, bounds: tree.Bounds()}

	// Phase 3: swap.
	s.mu.Lock()
	s.base.Store(nv)
	s.frozen = nil
	s.epoch.Add(1)
	s.pendChangedLocked()
	if s.pend.Load() > 0 {
		// Live writes arrived during the rebuild; their age restarts at
		// the swap (a bounded understatement of true staleness).
		s.pendSince.Store(time.Now().UnixNano())
	}
	s.mu.Unlock()
	s.pl.m.compactions.Inc()
	return true
}

func (p *Pool) compactLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stopc:
			p.updateGauges()
			return
		case <-t.C:
			now := time.Now().UnixNano()
			// Load the topology fresh each tick: a repartition may have
			// swapped it, and retired shards need no compaction — their
			// readers drain and the shards become garbage.
			for _, s := range p.topo.Load().shards {
				pend := int(s.pend.Load())
				if pend == 0 {
					continue
				}
				aged := false
				if p.cfg.CompactMaxAge > 0 {
					since := s.pendSince.Load()
					aged = since > 0 && now-since >= int64(p.cfg.CompactMaxAge)
				}
				if pend >= p.cfg.CompactThreshold || aged {
					s.compact()
				}
			}
			p.updateGauges()
		}
	}
}

// updateGauges publishes per-shard epoch, pending-overlay, staleness, and
// heat gauges; the serving tier's generic stats snapshot carries them to
// mqtop and mqload with no wire-format changes. Gauge rows beyond the
// current shard count (left over from before a merge) publish zero.
func (p *Pool) updateGauges() {
	t := p.topo.Load()
	t.heat.Fold()
	epochG, pendG, staleG, heatG := p.m.shardGauges(len(t.shards))
	if epochG == nil {
		return
	}
	now := time.Now().UnixNano()
	for i := range epochG {
		if i >= len(t.shards) {
			epochG[i].Set(0)
			pendG[i].Set(0)
			staleG[i].Set(0)
			heatG[i].Set(0)
			continue
		}
		s := t.shards[i]
		epochG[i].Set(float64(s.epoch.Load()))
		pendG[i].Set(float64(s.pend.Load()))
		stale := 0.0
		if since := s.pendSince.Load(); since > 0 && now > since {
			stale = float64(now-since) / float64(time.Second)
		}
		staleG[i].Set(stale)
		heatG[i].Set(t.heat.Rate(i))
	}
}
