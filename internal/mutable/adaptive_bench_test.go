package mutable

import (
	"math/rand"
	"slices"
	"sync"
	"testing"
	"time"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/obs"
)

// BenchmarkAdaptiveZipf is the ROADMAP item 2 acceptance benchmark: a Zipf
// hotspot read stream over a pool whose hot cell is being re-written at full
// speed by a fleet of movers, static 16-shard layout vs the adaptive
// repartitioner. The static layout concentrates every hot write in one big
// shard — its overlay churns through compactions that rebuild 1/16th of the
// world each time, and hot reads ride the locked three-layer merge while it
// does. The adaptive pool splits the hot range into small shards, so each
// rebuild touches a sliver and the merge windows shrink with it. Reported
// per sub-benchmark: read latency p50/p95/p99 (ms), splits applied, final
// shard count, and folds (compactions) run. Run with -benchtime=Nx so the
// percentile window is one uninterrupted run; the recorded numbers in
// results/BENCH_adaptive.json came from:
//
//	go test ./internal/mutable -run '^$' -bench AdaptiveZipf -benchtime=10000x -count=3
func BenchmarkAdaptiveZipf(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	ds := randomDataset(rng, 200000)
	b.Run("static16", func(b *testing.B) { benchZipf(b, ds, false) })
	b.Run("adaptive", func(b *testing.B) { benchZipf(b, ds, true) })
}

func benchZipf(b *testing.B, ds *dataset.Dataset, adaptive bool) {
	hub := obs.NewHub()
	cfg := Config{CompactInterval: 2 * time.Millisecond, CompactThreshold: 128, Obs: hub}
	if adaptive {
		// MinShardItems is the stabilizer: hot slivers stop splitting near
		// 2*MinShardItems objects, so the layout reaches a fixpoint during
		// warmup instead of endlessly trading cold merges for hot splits.
		// MaxShards/MinShards give the repartitioner a little headroom around
		// the static budget of 16.
		cfg.Adaptive = AdaptiveConfig{
			Enabled:         true,
			Interval:        5 * time.Millisecond,
			MinShardItems:   250,
			MaxShards:       32,
			MinShards:       12,
			HalfLifeSeconds: 0.5,
		}
	}
	p, err := NewFromDataset(ds, 16, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()

	ext := ds.Extent
	hotC := geom.Point{X: ext.Min.X + 0.31*ext.Width(), Y: ext.Min.Y + 0.57*ext.Height()}
	hotR := 0.02 * ext.Width()

	// Zipf-ranked query centers: rank 0 is the hot cell, the tail spreads
	// uniformly — the mqload -zipf shape in miniature.
	crng := rand.New(rand.NewSource(11))
	centers := make([]geom.Point, 64)
	centers[0] = hotC
	for i := 1; i < len(centers); i++ {
		centers[i] = geom.Point{
			X: ext.Min.X + crng.Float64()*ext.Width(),
			Y: ext.Min.Y + crng.Float64()*ext.Height(),
		}
	}

	// Movers re-writing positions inside the hot cell at a fixed offered
	// rate (a paced ticker, not a spin loop — an unthrottled writer on a
	// shared core would load the two variants differently). This is the
	// write pressure that makes the static hot shard churn.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(13))
		base := uint32(ds.Len())
		const movers = 256
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for i := 0; ; {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			for j := 0; j < 128; j++ {
				a := geom.Point{
					X: hotC.X + (wrng.Float64()*2-1)*hotR,
					Y: hotC.Y + (wrng.Float64()*2-1)*hotR,
				}
				seg := geom.Segment{A: a, B: geom.Point{X: a.X + 8, Y: a.Y + 8}}
				if _, _, _, err := p.ApplyInsert(base+uint32(i%movers), seg); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		}
	}()

	qrng := rand.New(rand.NewSource(17))
	zipf := rand.NewZipf(qrng, 2.5, 1, uint64(len(centers)-1))
	side := 0.05 * ext.Width()
	var buf []uint32
	query := func() time.Duration {
		c := centers[zipf.Uint64()]
		w := geom.Rect{
			Min: geom.Point{X: c.X - side, Y: c.Y - side},
			Max: geom.Point{X: c.X + side, Y: c.Y + side},
		}
		t0 := time.Now()
		buf = p.RangeAppend(buf[:0], w)
		return time.Since(t0)
	}

	// Warm both variants identically: the adaptive pool uses this window to
	// observe the heat and split the hot range.
	warmUntil := time.Now().Add(3 * time.Second)
	for time.Now().Before(warmUntil) {
		query()
	}

	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lat = append(lat, query())
	}
	b.StopTimer()
	close(stop)
	wg.Wait()

	slices.Sort(lat)
	pct := func(q float64) float64 {
		return float64(lat[int(q*float64(len(lat)-1))]) / 1e6
	}
	b.ReportMetric(pct(0.50), "p50-ms")
	b.ReportMetric(pct(0.95), "p95-ms")
	b.ReportMetric(pct(0.99), "p99-ms")
	b.ReportMetric(float64(p.Splits()), "splits")
	b.ReportMetric(float64(p.NumShards()), "shards")
	for _, c := range hub.Reg.Snapshot().Counters {
		if c.Name == "mutable_compactions_total" {
			b.ReportMetric(float64(c.Value), "folds")
		}
	}
}
