package mutable

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"mobispatial/internal/geom"
)

// TestUpdateSoak races query goroutines against writer goroutines and the
// background compactor's epoch swaps. Run under -race this is the update
// subsystem's memory-model check; under the plain runtime it is a
// linearizability smoke: each writer owns a disjoint id set, so after the
// dust settles the pool must hold exactly the union of the writers' final
// states.
func TestUpdateSoak(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ds := randomDataset(rng, 800)
	p, err := NewFromDataset(ds, 4, Config{
		CompactInterval:  2 * time.Millisecond,
		CompactThreshold: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	dur := 400 * time.Millisecond
	if testing.Short() {
		dur = 100 * time.Millisecond
	}
	deadline := time.Now().Add(dur)

	const writers = 4
	const perWriter = 64
	base := uint32(ds.Len())
	finals := make([]map[uint32]geom.Segment, writers)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(int64(100 + w)))
			// Writer w owns fresh ids [base+w*perWriter, base+(w+1)*perWriter)
			// and the original ids congruent to w mod writers.
			final := make(map[uint32]geom.Segment)
			for id := 0; id < ds.Len(); id++ {
				if id%writers == w {
					final[uint32(id)] = ds.Seg(uint32(id))
				}
			}
			for time.Now().Before(deadline) {
				var id uint32
				if wrng.Intn(2) == 0 {
					id = base + uint32(w*perWriter+wrng.Intn(perWriter))
				} else {
					id = uint32(wrng.Intn(ds.Len()/writers))*writers + uint32(w)
					if int(id) >= ds.Len() {
						continue
					}
				}
				switch wrng.Intn(4) {
				case 0:
					seg := randomSeg(wrng, ds.Extent)
					if _, _, _, err := p.ApplyInsert(id, seg); err != nil {
						t.Error(err)
						return
					}
					final[id] = seg
				case 1:
					if _, _, _, err := p.ApplyDelete(id); err != nil {
						t.Error(err)
						return
					}
					delete(final, id)
				default:
					seg := randomSeg(wrng, ds.Extent)
					if _, _, _, err := p.ApplyMove(id, seg); err != nil {
						t.Error(err)
						return
					}
					final[id] = seg
				}
			}
			finals[w] = final
		}()
	}

	const readers = 4
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(int64(200 + r)))
			ids := make([]uint32, 0, 2048)
			for time.Now().Before(deadline) {
				w := randomWindow(rrng, ds.Extent)
				ids = p.RangeAppend(ids[:0], w)
				seen := make(map[uint32]bool, len(ids))
				for _, id := range ids {
					if seen[id] {
						t.Errorf("range answer contains id %d twice", id)
						return
					}
					seen[id] = true
				}
				pt := geom.Point{
					X: ds.Extent.Min.X + rrng.Float64()*(ds.Extent.Max.X-ds.Extent.Min.X),
					Y: ds.Extent.Min.Y + rrng.Float64()*(ds.Extent.Max.Y-ds.Extent.Min.Y),
				}
				p.NearestWith(pt, nil)
				p.KNearestAppend(nil, pt, 5, nil)
				ids = p.PointAppend(ids[:0], pt, 2.0)
			}
		}()
	}

	// One goroutine hammers explicit compactions on top of the background
	// compactor, so freeze/swap overlaps with everything else.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			p.ForceCompact()
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesce and verify the pool holds exactly the union of the writers'
	// final states — ids, count, and geometry.
	p.ForceCompact()
	model := make(map[uint32]geom.Segment)
	for _, final := range finals {
		for id, seg := range final {
			model[id] = seg
		}
	}
	if p.Len() != len(model) {
		t.Fatalf("pool holds %d objects, writers' union is %d", p.Len(), len(model))
	}
	for id, seg := range model {
		if got := p.SegOf(id); got != seg {
			t.Fatalf("id %d: pool has %v, final state %v", id, got, seg)
		}
	}
	full := geom.Rect{
		Min: geom.Point{X: ds.Extent.Min.X - 200, Y: ds.Extent.Min.Y - 200},
		Max: geom.Point{X: ds.Extent.Max.X + 200, Y: ds.Extent.Max.Y + 200},
	}
	got := p.FilterRangeAppend(nil, full)
	if len(got) != len(model) {
		t.Fatalf("full-extent candidates: %d, want %d", len(got), len(model))
	}
	for _, id := range got {
		if _, ok := model[id]; !ok {
			t.Fatalf("pool surfaced id %d not in any writer's final state", id)
		}
	}
}
