package mutable

import (
	"math"

	"mobispatial/internal/geom"
	"mobispatial/internal/index"
	"mobispatial/internal/ops"
	"mobispatial/internal/parallel"
	"mobispatial/internal/rtree"
)

// Nearest-neighbor queries fold the shards sequentially, carrying the best
// (or k-th best) distance from shard to shard as a pruning bound, exactly
// like the read-only sharded pool's cross-shard schedule. Per shard, the
// packed base is searched with the branch-and-bound traversal under a
// distance function that reports +Inf for masked (stale) ids, and the
// overlay layers — bounded by CompactThreshold — are scanned directly and
// offered through the accumulator's admit rule, so the merged answer is
// what one tree over the union would have produced.
//
// nnState is pooled so the warm path allocates nothing: the masked distance
// closure is built once per state and re-aimed at the current shard through
// the state's fields.
type nnState struct {
	p      *Pool
	sh     *mshard
	bv     *baseView
	pt     geom.Point
	masked bool
	df     index.DistFunc
}

func newNNState(p *Pool) *nnState {
	st := &nnState{p: p}
	st.df = func(id uint32) float64 {
		if st.masked && st.sh.maskBase(id) {
			return math.Inf(1)
		}
		return st.bv.seg(st.p.ds, id).DistToPoint(st.pt)
	}
	return st
}

func (st *nnState) clear() {
	st.sh = nil
	st.bv = nil
	st.masked = false
}

// NearestWith answers one nearest-neighbor query reusing sc's traversal
// buffers; sc may be nil.
func (p *Pool) NearestWith(pt geom.Point, sc *parallel.Scratch) parallel.NearestResult {
	st := p.nnPool.Get().(*nnState)
	st.pt = pt
	var nnsc *rtree.NNScratch
	if sc != nil {
		nnsc = &sc.NN
	}
	best := math.Inf(1)
	var bestID uint32
	found := false
	t := p.topo.Load()
	for i, s := range t.shards {
		if s.base.Load().bounds.ContainsPoint(pt) {
			t.heat.Touch(i)
		}
		s.nearestInto(st, nnsc, pt, &best, &bestID, &found)
	}
	st.clear()
	p.nnPool.Put(st)
	if !found {
		return parallel.NearestResult{}
	}
	return parallel.NearestResult{ID: bestID, Dist: best, OK: true}
}

func (s *mshard) nearestInto(st *nnState, nnsc *rtree.NNScratch, pt geom.Point, best *float64, bestID *uint32, found *bool) {
	if s.pend.Load() == 0 {
		bv := s.base.Load()
		st.sh, st.bv, st.masked = s, bv, false
		if id, d, ok := bv.tree.NearestWithin(pt, *best, st.df, ops.Null{}, nnsc); ok {
			*best, *bestID, *found = d, id, true
		}
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	bv := s.base.Load()
	st.sh, st.bv, st.masked = s, bv, true
	if id, d, ok := bv.tree.NearestWithin(pt, *best, st.df, ops.Null{}, nnsc); ok {
		*best, *bestID, *found = d, id, true
	}
	if f := s.frozen; f != nil {
		for id, seg := range f.overSeg {
			if s.maskFrozen(id) {
				continue
			}
			if d := seg.DistToPoint(pt); d < *best {
				*best, *bestID, *found = d, id, true
			}
		}
	}
	for id, seg := range s.overSeg {
		if d := seg.DistToPoint(pt); d < *best {
			*best, *bestID, *found = d, id, true
		}
	}
}

// KNearestAppend appends one k-NN answer (ascending distance) to dst
// reusing sc; the bool mirrors the executor contract and is always true.
func (p *Pool) KNearestAppend(dst []rtree.Neighbor, pt geom.Point, k int, sc *parallel.Scratch) ([]rtree.Neighbor, bool) {
	if k <= 0 {
		return dst, true
	}
	st := p.nnPool.Get().(*nnState)
	st.pt = pt
	var local rtree.NNScratch
	nnsc := &local
	if sc != nil {
		nnsc = &sc.NN
	}
	nnsc.ResetKNN()
	x0 := p.xfers.Load()
	t := p.topo.Load()
	from := len(dst)
	for i, s := range t.shards {
		if s.base.Load().bounds.ContainsPoint(pt) {
			t.heat.Touch(i)
		}
		s.knnInto(st, nnsc, pt, k)
	}
	st.clear()
	p.nnPool.Put(st)
	dst = nnsc.DrainKNNAppend(dst)
	if len(t.shards) > 1 && p.xfers.Load() != x0 {
		dst = dedupNeighbors(dst, from)
	}
	return dst, true
}

// dedupNeighbors drops repeated ids from dst[from:], keeping the nearest
// (first) occurrence — the answer is already sorted by ascending distance.
// Quadratic, but it runs only when a cross-shard transfer raced the scan and
// k is small; the raced answer may then hold fewer than k neighbors, which
// the executor contract allows (a pool smaller than k returns what it has).
func dedupNeighbors(dst []rtree.Neighbor, from int) []rtree.Neighbor {
	w := from
	for i := from; i < len(dst); i++ {
		dup := false
		for j := from; j < w; j++ {
			if dst[j].ID == dst[i].ID {
				dup = true
				break
			}
		}
		if !dup {
			dst[w] = dst[i]
			w++
		}
	}
	return dst[:w]
}

func (s *mshard) knnInto(st *nnState, nnsc *rtree.NNScratch, pt geom.Point, k int) {
	if s.pend.Load() == 0 {
		bv := s.base.Load()
		st.sh, st.bv, st.masked = s, bv, false
		bv.tree.KNearestCollect(pt, k, st.df, ops.Null{}, nnsc)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	bv := s.base.Load()
	st.sh, st.bv, st.masked = s, bv, true
	bv.tree.KNearestCollect(pt, k, st.df, ops.Null{}, nnsc)
	if f := s.frozen; f != nil {
		for id, seg := range f.overSeg {
			if s.maskFrozen(id) {
				continue
			}
			nnsc.KNNOffer(k, rtree.Neighbor{ID: id, Dist: seg.DistToPoint(pt)})
		}
	}
	for id, seg := range s.overSeg {
		nnsc.KNNOffer(k, rtree.Neighbor{ID: id, Dist: seg.DistToPoint(pt)})
	}
}
