package mutable

import (
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
)

// Query surface. A shard with an empty overlay (pend == 0) answers on the
// packed base through a lock-free atomic load — the identical zero-alloc
// path a read-only pool runs. A shard with pending updates takes its read
// lock and merges three layers: the base filtered through maskBase, the
// frozen delta (if a compaction is in flight) filtered through maskFrozen,
// and the live delta, which is never masked. The merge allocates nothing
// beyond the caller's dst growth: masks are map lookups and candidates are
// compacted in place.

// FilterRangeAppend appends the MBR-filter (candidate) answer of a window
// query to dst.
func (p *Pool) FilterRangeAppend(dst []uint32, w geom.Rect) []uint32 {
	for _, s := range p.shards {
		s := s
		if s.pend.Load() == 0 {
			dst = s.base.Load().tree.AppendSearch(dst, w, ops.Null{})
			continue
		}
		s.mu.RLock()
		dst = s.overlayRangeLocked(dst, w)
		s.mu.RUnlock()
	}
	return dst
}

// FilterPointAppend appends the MBR-filter answer of a point query to dst.
func (p *Pool) FilterPointAppend(dst []uint32, pt geom.Point) []uint32 {
	for _, s := range p.shards {
		s := s
		if s.pend.Load() == 0 {
			dst = s.base.Load().tree.AppendSearchPoint(dst, pt, ops.Null{})
			continue
		}
		s.mu.RLock()
		dst = s.overlayPointLocked(dst, pt)
		s.mu.RUnlock()
	}
	return dst
}

// RangeAppend appends the exact answer of a window query to dst: the
// candidate set refined against live geometry, hits compacted in place over
// the candidate region as in the read-only pool.
func (p *Pool) RangeAppend(dst []uint32, w geom.Rect) []uint32 {
	for _, s := range p.shards {
		s := s
		if s.pend.Load() == 0 {
			bv := s.base.Load()
			base := len(dst)
			dst = bv.tree.AppendSearch(dst, w, ops.Null{})
			hits := dst[:base]
			for _, id := range dst[base:] {
				if bv.seg(p.ds, id).IntersectsRect(w) {
					hits = append(hits, id)
				}
			}
			dst = hits
			continue
		}
		s.mu.RLock()
		bv := s.base.Load()
		base := len(dst)
		dst = s.overlayRangeLocked(dst, w)
		hits := dst[:base]
		for _, id := range dst[base:] {
			if s.segAnyLocked(bv, id).IntersectsRect(w) {
				hits = append(hits, id)
			}
		}
		dst = hits
		s.mu.RUnlock()
	}
	return dst
}

// PointAppend appends the exact answer of a point query to dst.
func (p *Pool) PointAppend(dst []uint32, pt geom.Point, eps float64) []uint32 {
	for _, s := range p.shards {
		s := s
		if s.pend.Load() == 0 {
			bv := s.base.Load()
			base := len(dst)
			dst = bv.tree.AppendSearchPoint(dst, pt, ops.Null{})
			hits := dst[:base]
			for _, id := range dst[base:] {
				if bv.seg(p.ds, id).ContainsPoint(pt, eps) {
					hits = append(hits, id)
				}
			}
			dst = hits
			continue
		}
		s.mu.RLock()
		bv := s.base.Load()
		base := len(dst)
		dst = s.overlayPointLocked(dst, pt)
		hits := dst[:base]
		for _, id := range dst[base:] {
			if s.segAnyLocked(bv, id).ContainsPoint(pt, eps) {
				hits = append(hits, id)
			}
		}
		dst = hits
		s.mu.RUnlock()
	}
	return dst
}

// overlayRangeLocked merges the three layers' window candidates into dst.
// Masked ids are filtered by compacting survivors in place over the region
// each layer appended (the write index never passes the read index, so the
// in-place overwrite is safe).
func (s *mshard) overlayRangeLocked(dst []uint32, w geom.Rect) []uint32 {
	n := len(dst)
	dst = s.base.Load().tree.AppendSearch(dst, w, ops.Null{})
	kept := dst[:n]
	for _, id := range dst[n:] {
		if !s.maskBase(id) {
			kept = append(kept, id)
		}
	}
	dst = kept
	if f := s.frozen; f != nil {
		n = len(dst)
		dst = f.delta.AppendSearch(dst, w, ops.Null{})
		kept = dst[:n]
		for _, id := range dst[n:] {
			if !s.maskFrozen(id) {
				kept = append(kept, id)
			}
		}
		dst = kept
	}
	return s.delta.AppendSearch(dst, w, ops.Null{})
}

func (s *mshard) overlayPointLocked(dst []uint32, pt geom.Point) []uint32 {
	n := len(dst)
	dst = s.base.Load().tree.AppendSearchPoint(dst, pt, ops.Null{})
	kept := dst[:n]
	for _, id := range dst[n:] {
		if !s.maskBase(id) {
			kept = append(kept, id)
		}
	}
	dst = kept
	if f := s.frozen; f != nil {
		n = len(dst)
		dst = f.delta.AppendSearchPoint(dst, pt, ops.Null{})
		kept = dst[:n]
		for _, id := range dst[n:] {
			if !s.maskFrozen(id) {
				kept = append(kept, id)
			}
		}
		dst = kept
	}
	return s.delta.AppendSearchPoint(dst, pt, ops.Null{})
}
