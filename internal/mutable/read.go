package mutable

import (
	"slices"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
)

// Query surface. A shard with an empty overlay (pend == 0) answers on the
// packed base through a lock-free atomic load — the identical zero-alloc
// path a read-only pool runs. A shard with pending updates takes its read
// lock and merges three layers: the base filtered through maskBase, the
// frozen delta (if a compaction is in flight) filtered through maskFrozen,
// and the live delta, which is never masked. The merge allocates nothing
// beyond the caller's dst growth: masks are map lookups and candidates are
// compacted in place.
//
// Every query loads the topology once and walks that snapshot's shards, so
// a concurrent repartition never changes the shard set mid-query; per
// participating shard (base bounds touching the query geometry) it records
// one heat sample — a single atomic add — which is what the repartitioner's
// split/merge decisions feed on.
//
// A multi-shard scan can race a cross-shard transfer of one id — an object
// moving over a cut, a delete followed by a re-insert elsewhere, or (with
// the repartitioner on) a write landing in a live shard while the scan's
// topology snapshot still shows a retired parent holding the old copy — and
// observe the same id in two shards. Writers bump Pool.xfers between the
// removal becoming visible and the insert becoming visible, so the scan
// detects every such race by comparing the counter across its walk; only
// a transferred id can appear twice (ownership keeps every other id in
// exactly one shard at a time), so the scan reads the raced transfers'
// ids out of Pool.xferRing and scrubs second occurrences of just those
// from the appended answer. A burst that outruns the ring — or a slot
// whose write is still in flight — falls back to sort-dedup of the whole
// appended region. Every path allocates nothing; the warm path pays two
// atomic loads.

const (
	// xferRingSize is the transfer ring capacity; see Pool.xferRing.
	xferRingSize = 256
	// maxXferScrub bounds how many raced transfers the per-id scrub
	// handles before the O(answer * transfers) pass would cost more than
	// the sort it replaces.
	maxXferScrub = 16
)

// dedupAppended sorts dst[base:] and compacts duplicate ids in place.
func dedupAppended(dst []uint32, base int) []uint32 {
	tail := dst[base:]
	if len(tail) < 2 {
		return dst
	}
	slices.Sort(tail)
	w := base + 1
	for i := base + 1; i < len(dst); i++ {
		if dst[i] != dst[w-1] {
			dst[w] = dst[i]
			w++
		}
	}
	return dst[:w]
}

// dedupRaced resolves a multi-shard scan against the transfers that raced
// it: with the counter unchanged the answer is clean, with a small burst it
// scrubs the transferred ids read from the ring, and otherwise it sorts.
func (p *Pool) dedupRaced(dst []uint32, from int, x0 uint64, nShards int) []uint32 {
	if nShards <= 1 {
		return dst
	}
	x1 := p.xfers.Load()
	if x1 == x0 {
		return dst
	}
	if x1-x0 > maxXferScrub {
		return dedupAppended(dst, from)
	}
	var ids [maxXferScrub]uint32
	n := 0
	for x := x0 + 1; x <= x1; x++ {
		e := p.xferRing[(x-1)%xferRingSize].Load()
		if uint32(e>>32) != uint32(x) {
			// Slot write still in flight, or lapped by a newer transfer.
			return dedupAppended(dst, from)
		}
		ids[n] = uint32(e)
		n++
	}
	var seen [maxXferScrub]bool
	w := from
	for i := from; i < len(dst); i++ {
		id := dst[i]
		dup := false
		for j := 0; j < n; j++ {
			if ids[j] == id {
				if seen[j] {
					dup = true
				} else {
					seen[j] = true
				}
				break
			}
		}
		if !dup {
			dst[w] = id
			w++
		}
	}
	return dst[:w]
}

// FilterRangeAppend appends the MBR-filter (candidate) answer of a window
// query to dst.
func (p *Pool) FilterRangeAppend(dst []uint32, w geom.Rect) []uint32 {
	x0 := p.xfers.Load()
	t := p.topo.Load()
	from := len(dst)
	for i, s := range t.shards {
		if s.base.Load().bounds.Intersects(w) {
			t.heat.Touch(i)
		}
		if s.pend.Load() == 0 {
			dst = s.base.Load().tree.AppendSearch(dst, w, ops.Null{})
			continue
		}
		s.mu.RLock()
		dst = s.overlayRangeLocked(dst, w)
		s.mu.RUnlock()
	}
	return p.dedupRaced(dst, from, x0, len(t.shards))
}

// FilterPointAppend appends the MBR-filter answer of a point query to dst.
func (p *Pool) FilterPointAppend(dst []uint32, pt geom.Point) []uint32 {
	x0 := p.xfers.Load()
	t := p.topo.Load()
	from := len(dst)
	for i, s := range t.shards {
		if s.base.Load().bounds.ContainsPoint(pt) {
			t.heat.Touch(i)
		}
		if s.pend.Load() == 0 {
			dst = s.base.Load().tree.AppendSearchPoint(dst, pt, ops.Null{})
			continue
		}
		s.mu.RLock()
		dst = s.overlayPointLocked(dst, pt)
		s.mu.RUnlock()
	}
	return p.dedupRaced(dst, from, x0, len(t.shards))
}

// RangeAppend appends the exact answer of a window query to dst: the
// candidate set refined against live geometry, hits compacted in place over
// the candidate region as in the read-only pool.
func (p *Pool) RangeAppend(dst []uint32, w geom.Rect) []uint32 {
	x0 := p.xfers.Load()
	t := p.topo.Load()
	from := len(dst)
	for i, s := range t.shards {
		if s.pend.Load() == 0 {
			bv := s.base.Load()
			if bv.bounds.Intersects(w) {
				t.heat.Touch(i)
			}
			base := len(dst)
			dst = bv.tree.AppendSearch(dst, w, ops.Null{})
			hits := dst[:base]
			for _, id := range dst[base:] {
				if bv.seg(p.ds, id).IntersectsRect(w) {
					hits = append(hits, id)
				}
			}
			dst = hits
			continue
		}
		s.mu.RLock()
		bv := s.base.Load()
		if bv.bounds.Intersects(w) {
			t.heat.Touch(i)
		}
		base := len(dst)
		dst = s.overlayRangeLocked(dst, w)
		hits := dst[:base]
		for _, id := range dst[base:] {
			if s.segAnyLocked(bv, id).IntersectsRect(w) {
				hits = append(hits, id)
			}
		}
		dst = hits
		s.mu.RUnlock()
	}
	return p.dedupRaced(dst, from, x0, len(t.shards))
}

// PointAppend appends the exact answer of a point query to dst.
func (p *Pool) PointAppend(dst []uint32, pt geom.Point, eps float64) []uint32 {
	x0 := p.xfers.Load()
	t := p.topo.Load()
	from := len(dst)
	for i, s := range t.shards {
		if s.pend.Load() == 0 {
			bv := s.base.Load()
			if bv.bounds.ContainsPoint(pt) {
				t.heat.Touch(i)
			}
			base := len(dst)
			dst = bv.tree.AppendSearchPoint(dst, pt, ops.Null{})
			hits := dst[:base]
			for _, id := range dst[base:] {
				if bv.seg(p.ds, id).ContainsPoint(pt, eps) {
					hits = append(hits, id)
				}
			}
			dst = hits
			continue
		}
		s.mu.RLock()
		bv := s.base.Load()
		if bv.bounds.ContainsPoint(pt) {
			t.heat.Touch(i)
		}
		base := len(dst)
		dst = s.overlayPointLocked(dst, pt)
		hits := dst[:base]
		for _, id := range dst[base:] {
			if s.segAnyLocked(bv, id).ContainsPoint(pt, eps) {
				hits = append(hits, id)
			}
		}
		dst = hits
		s.mu.RUnlock()
	}
	return p.dedupRaced(dst, from, x0, len(t.shards))
}

// overlayRangeLocked merges the three layers' window candidates into dst.
// Masked ids are filtered by compacting survivors in place over the region
// each layer appended (the write index never passes the read index, so the
// in-place overwrite is safe).
func (s *mshard) overlayRangeLocked(dst []uint32, w geom.Rect) []uint32 {
	n := len(dst)
	dst = s.base.Load().tree.AppendSearch(dst, w, ops.Null{})
	kept := dst[:n]
	for _, id := range dst[n:] {
		if !s.maskBase(id) {
			kept = append(kept, id)
		}
	}
	dst = kept
	if f := s.frozen; f != nil {
		n = len(dst)
		dst = f.delta.AppendSearch(dst, w, ops.Null{})
		kept = dst[:n]
		for _, id := range dst[n:] {
			if !s.maskFrozen(id) {
				kept = append(kept, id)
			}
		}
		dst = kept
	}
	return s.delta.AppendSearch(dst, w, ops.Null{})
}

func (s *mshard) overlayPointLocked(dst []uint32, pt geom.Point) []uint32 {
	n := len(dst)
	dst = s.base.Load().tree.AppendSearchPoint(dst, pt, ops.Null{})
	kept := dst[:n]
	for _, id := range dst[n:] {
		if !s.maskBase(id) {
			kept = append(kept, id)
		}
	}
	dst = kept
	if f := s.frozen; f != nil {
		n = len(dst)
		dst = f.delta.AppendSearchPoint(dst, pt, ops.Null{})
		kept = dst[:n]
		for _, id := range dst[n:] {
			if !s.maskFrozen(id) {
				kept = append(kept, id)
			}
		}
		dst = kept
	}
	return s.delta.AppendSearchPoint(dst, pt, ops.Null{})
}
