package mutable

import (
	"math/rand"
	"testing"

	"mobispatial/internal/geom"
	"mobispatial/internal/parallel"
	"mobispatial/internal/rtree"
)

// The warm read path must not regress the repo's zero-alloc discipline:
// with an empty overlay a query is the identical packed-tree path and must
// allocate nothing; with a non-empty overlay the merge adds only map
// lookups, in-place compaction, and a pooled NN state — still nothing.

func warmQueries(p *Pool, ids []uint32, nbs []rtree.Neighbor, sc *parallel.Scratch, w geom.Rect, pt geom.Point) {
	for i := 0; i < 32; i++ {
		ids = p.FilterRangeAppend(ids[:0], w)
		ids = p.RangeAppend(ids[:0], w)
		ids = p.PointAppend(ids[:0], pt, 2.0)
		p.NearestWith(pt, sc)
		nbs, _ = p.KNearestAppend(nbs[:0], pt, 8, sc)
	}
}

func measureQueries(t *testing.T, name string, p *Pool, want float64) {
	t.Helper()
	ids := make([]uint32, 0, 4096)
	nbs := make([]rtree.Neighbor, 0, 64)
	sc := &parallel.Scratch{}
	w := geom.Rect{Min: geom.Point{X: 400, Y: 400}, Max: geom.Point{X: 900, Y: 900}}
	pt := geom.Point{X: 777, Y: 555}
	warmQueries(p, ids, nbs, sc, w, pt)
	if got := testing.AllocsPerRun(100, func() {
		ids = p.FilterRangeAppend(ids[:0], w)
		ids = p.RangeAppend(ids[:0], w)
		ids = p.PointAppend(ids[:0], pt, 2.0)
		p.NearestWith(pt, sc)
		nbs, _ = p.KNearestAppend(nbs[:0], pt, 8, sc)
	}); got > want {
		t.Errorf("%s: %v allocs/op across the five query kinds, want <= %v", name, got, want)
	}
}

func TestFastPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	p := testPool(t, 1500, 4)
	measureQueries(t, "empty overlay", p, 0)
}

func TestOverlayPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	p := testPool(t, 1500, 4)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		id := uint32(rng.Intn(p.Dataset().Len() + 50))
		switch rng.Intn(3) {
		case 0:
			p.ApplyInsert(id, randomSeg(rng, p.Dataset().Extent))
		case 1:
			p.ApplyDelete(id)
		case 2:
			p.ApplyMove(id, randomSeg(rng, p.Dataset().Extent))
		}
	}
	pending := false
	for i := 0; i < p.NumShards(); i++ {
		pending = pending || p.Pending(i) > 0
	}
	if !pending {
		t.Fatal("overlay test has no pending overlay")
	}
	measureQueries(t, "live overlay", p, 0)

	// And with a frozen layer held open mid-compaction.
	var frozen []*frozenView
	for _, s := range p.topo.Load().shards {
		if f := s.freeze(); f != nil {
			frozen = append(frozen, f)
		}
	}
	if len(frozen) == 0 {
		t.Fatal("no shard froze")
	}
	// Fresh writes above the frozen layer keep all three layers non-trivial.
	for i := 0; i < 40; i++ {
		p.ApplyMove(uint32(rng.Intn(p.Dataset().Len())), randomSeg(rng, p.Dataset().Extent))
	}
	measureQueries(t, "frozen + live overlay", p, 0)
	for _, s := range p.topo.Load().shards {
		if s.frozen != nil {
			s.finishCompact(s.frozen)
		}
	}
}
