package mutable

import "fmt"

// checkOwners enables an owner-table invariant check at every repartition
// publish: after adopt, no ownerOf entry may point at a shard outside the
// about-to-be-published set. The soak test flips it on; production leaves it
// off and pays one branch per split/merge. The per-layer state dump in the
// panic is deliberate — a violation here means a writer and a repartition
// disagreed about where an id lives, and the layer bits are what localize
// which freeze window the write slipped through.
var checkOwners bool

func ownerIDState(tag string, s *mshard, id uint32) string {
	_, inOver := s.overSeg[id]
	_, inTomb := s.tombs[id]
	_, inHas := s.base.Load().has[id]
	fOver, fTomb := false, false
	if s.frozen != nil {
		_, fOver = s.frozen.overSeg[id]
		_, fTomb = s.frozen.tombs[id]
	}
	return fmt.Sprintf(" %s(li=%d over=%v tomb=%v has=%v fOver=%v fTomb=%v frozen=%v)",
		tag, s.li, inOver, inTomb, inHas, fOver, fTomb, s.frozen != nil)
}

// verifyOwnersLocked panics if any ownerOf entry points outside
// (t.shards \ retired) ∪ created. Caller holds p.omu and the shard locks of
// every retired/created shard, immediately before storing the new topology.
func verifyOwnersLocked(p *Pool, op string, t *topology, retired, created []*mshard) {
	valid := make(map[*mshard]bool, len(t.shards)+len(created))
	for _, s := range t.shards {
		valid[s] = true
	}
	for _, s := range retired {
		delete(valid, s)
	}
	for _, s := range created {
		valid[s] = true
	}
	for id, sh := range p.ownerOf {
		if !valid[sh] {
			msg := fmt.Sprintf("%s gen %d->%d: ownerOf[%d] -> invalid shard li=%d;", op, t.gen, t.gen+1, id, sh.li)
			msg += ownerIDState("owner", sh, id)
			for i, s := range retired {
				msg += ownerIDState(fmt.Sprintf("retired%d", i), s, id)
			}
			for i, s := range created {
				msg += ownerIDState(fmt.Sprintf("new%d", i), s, id)
			}
			panic(msg)
		}
	}
}
