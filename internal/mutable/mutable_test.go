package mutable

import (
	"math/rand"
	"testing"

	"mobispatial/internal/geom"
	"mobispatial/internal/shard"
)

func testPool(t *testing.T, n, shards int) *Pool {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	ds := randomDataset(rng, n)
	p, err := NewFromDataset(ds, shards, Config{CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestInsertDeleteMoveBasics(t *testing.T) {
	p := testPool(t, 120, 3)
	base := p.Dataset().Len()
	id := uint32(base) // first never-seen id
	seg := geom.Segment{A: geom.Point{X: 100, Y: 100}, B: geom.Point{X: 140, Y: 120}}

	if _, existed, owned, err := p.ApplyInsert(id, seg); err != nil || existed || !owned {
		t.Fatalf("insert new: existed=%v owned=%v err=%v", existed, owned, err)
	}
	if p.Len() != base+1 {
		t.Fatalf("Len=%d, want %d", p.Len(), base+1)
	}
	if got := p.SegOf(id); got != seg {
		t.Fatalf("SegOf=%v, want %v", got, seg)
	}
	w := seg.MBR()
	if !containsID(p.RangeAppend(nil, w), id) {
		t.Fatalf("range over %v missed inserted id %d", w, id)
	}

	// Move across the map: the id must vanish from the old window and
	// appear in the new one, whichever shard now owns it.
	seg2 := geom.Segment{A: geom.Point{X: 1800, Y: 1800}, B: geom.Point{X: 1850, Y: 1820}}
	if _, existed, owned, err := p.ApplyMove(id, seg2); err != nil || !existed || !owned {
		t.Fatalf("move: existed=%v owned=%v err=%v", existed, owned, err)
	}
	if containsID(p.RangeAppend(nil, w), id) {
		t.Fatalf("id %d still visible at old position after move", id)
	}
	if !containsID(p.RangeAppend(nil, seg2.MBR()), id) {
		t.Fatalf("id %d not visible at new position", id)
	}
	if p.Len() != base+1 {
		t.Fatalf("Len changed across move: %d", p.Len())
	}

	if _, existed, _, err := p.ApplyDelete(id); err != nil || !existed {
		t.Fatalf("delete live: existed=%v err=%v", existed, err)
	}
	if _, existed, _, err := p.ApplyDelete(id); err != nil || existed {
		t.Fatalf("delete is not idempotent: existed=%v err=%v", existed, err)
	}
	if p.Len() != base {
		t.Fatalf("Len=%d after delete, want %d", p.Len(), base)
	}
	if containsID(p.FilterRangeAppend(nil, seg2.MBR()), id) {
		t.Fatalf("deleted id %d still in candidates", id)
	}
}

func TestCompactionFoldsOverlayAndBumpsEpoch(t *testing.T) {
	p := testPool(t, 200, 2)
	rng := rand.New(rand.NewSource(11))
	base := p.Dataset().Len()
	for i := 0; i < 60; i++ {
		id := uint32(rng.Intn(base + 20))
		switch rng.Intn(3) {
		case 0:
			p.ApplyInsert(id, randomSeg(rng, p.Dataset().Extent))
		case 1:
			p.ApplyDelete(id)
		case 2:
			p.ApplyMove(id, randomSeg(rng, p.Dataset().Extent))
		}
	}
	w := geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 2200, Y: 2200}}
	before := p.RangeAppend(nil, w)
	nnBefore := p.NearestWith(geom.Point{X: 500, Y: 500}, nil)

	epochs := make([]uint64, p.NumShards())
	pending := false
	for i := range epochs {
		epochs[i] = p.Epoch(i)
		pending = pending || p.Pending(i) > 0
	}
	if !pending {
		t.Fatal("test applied 60 updates but no shard has a pending overlay")
	}
	p.ForceCompact()
	bumped := false
	for i := range epochs {
		if p.Pending(i) != 0 {
			t.Fatalf("shard %d still pending %d after ForceCompact", i, p.Pending(i))
		}
		if p.Epoch(i) > epochs[i] {
			bumped = true
		}
	}
	if !bumped {
		t.Fatal("no shard epoch advanced across ForceCompact")
	}
	if !sameIDSet(before, p.RangeAppend(nil, w)) {
		t.Fatal("full-extent range answer changed across compaction")
	}
	nnAfter := p.NearestWith(geom.Point{X: 500, Y: 500}, nil)
	if nnBefore.OK != nnAfter.OK || nnBefore.Dist != nnAfter.Dist {
		t.Fatalf("NN answer changed across compaction: %+v -> %+v", nnBefore, nnAfter)
	}
}

// TestPartitionedOwnership builds a pool holding only 2 of 4 cluster ranges
// and checks the not-owned write contract: a write keyed into a foreign
// range acks owned=false and leaves no local copy, and a move of a locally
// held object into foreign territory drops the local copy.
func TestPartitionedOwnership(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := randomDataset(rng, 160)
	items := ds.Items()
	ranges, bounds := shard.PartitionHilbert(items, 4, 0)
	if len(ranges) != 4 {
		t.Fatalf("got %d ranges", len(ranges))
	}
	cuts := make([]uint64, len(ranges))
	for i, r := range ranges {
		cuts[i] = r.Lo
	}
	p, err := New(Config{
		Dataset:         ds,
		Ranges:          []shard.Range{ranges[0], ranges[1]},
		GlobalIndex:     []int{0, 1},
		Cuts:            cuts,
		Bounds:          bounds,
		CompactInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	held := len(ranges[0].Items) + len(ranges[1].Items)
	if p.Len() != held {
		t.Fatalf("Len=%d, want %d held items", p.Len(), held)
	}

	q := shard.QuantizerFor(bounds, 0)
	foreignSeg := func() geom.Segment {
		for i := 0; i < 10000; i++ {
			seg := randomSeg(rng, bounds)
			if g := shard.RangeForKey(cuts, shard.WriteKey(q, seg.MBR())); g >= 2 {
				return seg
			}
		}
		t.Fatal("could not find a foreign-keyed segment")
		return geom.Segment{}
	}
	localSeg := func() geom.Segment {
		for i := 0; i < 10000; i++ {
			seg := randomSeg(rng, bounds)
			if g := shard.RangeForKey(cuts, shard.WriteKey(q, seg.MBR())); g < 2 {
				return seg
			}
		}
		t.Fatal("could not find a locally-keyed segment")
		return geom.Segment{}
	}

	// Foreign insert of an unknown id: refused ownership, nothing stored.
	newID := uint32(ds.Len())
	if _, existed, owned, err := p.ApplyInsert(newID, foreignSeg()); err != nil || existed || owned {
		t.Fatalf("foreign insert: existed=%v owned=%v err=%v", existed, owned, err)
	}
	if p.Len() != held {
		t.Fatalf("foreign insert changed Len to %d", p.Len())
	}

	// Local insert, then a move into foreign territory must evict it.
	ls := localSeg()
	if _, _, owned, err := p.ApplyInsert(newID, ls); err != nil || !owned {
		t.Fatalf("local insert: owned=%v err=%v", owned, err)
	}
	if p.Len() != held+1 {
		t.Fatalf("Len=%d after local insert, want %d", p.Len(), held+1)
	}
	if _, existed, owned, err := p.ApplyMove(newID, foreignSeg()); err != nil || !existed || owned {
		t.Fatalf("move out: existed=%v owned=%v err=%v", existed, owned, err)
	}
	if p.Len() != held {
		t.Fatalf("Len=%d after move-out, want %d", p.Len(), held)
	}
	if containsID(p.RangeAppend(nil, ls.MBR()), newID) {
		t.Fatal("moved-out id still visible locally")
	}
}

func TestSegOfFallsBackToDataset(t *testing.T) {
	p := testPool(t, 80, 2)
	for id := uint32(0); id < 10; id++ {
		if got, want := p.SegOf(id), p.Dataset().Seg(id); got != want {
			t.Fatalf("SegOf(%d)=%v, want dataset seg %v", id, got, want)
		}
	}
	// Unknown high id resolves to the zero segment, not a panic.
	if got := p.SegOf(uint32(p.Dataset().Len() + 999)); got != (geom.Segment{}) {
		t.Fatalf("SegOf(unknown)=%v, want zero segment", got)
	}
}

func containsID(ids []uint32, id uint32) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}
