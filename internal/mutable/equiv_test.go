package mutable

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
)

// TestUpdatableEquivalenceQuick property-tests the updatable pool against a
// from-scratch packed build of the same final item set: after any random
// interleaving of inserts, deletes, and moves — with compactions forced at
// random points, including queries issued while a freeze is held open so
// the three-layer (base + frozen + live) read path is exercised — range and
// point answers must match the fresh build as id sets, and NN/k-NN answers
// must report identical distance sequences (tie ids may differ; ~10% of
// segments are exact duplicates to force ties).
func TestUpdatableEquivalenceQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(rng, 30+rng.Intn(170))

		p, err := NewFromDataset(ds, 1+rng.Intn(4), Config{CompactInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()

		// model is the ground truth: live id -> live geometry.
		model := make(map[uint32]geom.Segment, ds.Len())
		for id := 0; id < ds.Len(); id++ {
			model[uint32(id)] = ds.Seg(uint32(id))
		}
		maxID := uint32(ds.Len() + 48)

		nops := 60 + rng.Intn(240)
		for op := 0; op < nops; op++ {
			id := uint32(rng.Intn(int(maxID)))
			switch rng.Intn(4) {
			case 0: // insert (possibly upsert)
				seg := randomSeg(rng, ds.Extent)
				_, existed, owned, err := p.ApplyInsert(id, seg)
				if err != nil || !owned {
					t.Errorf("seed %d: insert(%d): existed=%v owned=%v err=%v", seed, id, existed, owned, err)
					return false
				}
				if _, had := model[id]; existed != had {
					t.Errorf("seed %d: insert(%d) existed=%v, model had=%v", seed, id, existed, had)
					return false
				}
				model[id] = seg
			case 1: // delete (known or unknown id)
				_, existed, _, err := p.ApplyDelete(id)
				if err != nil {
					t.Errorf("seed %d: delete(%d): %v", seed, id, err)
					return false
				}
				if _, had := model[id]; existed != had {
					t.Errorf("seed %d: delete(%d) existed=%v, model had=%v", seed, id, existed, had)
					return false
				}
				delete(model, id)
			case 2: // move
				seg := randomSeg(rng, ds.Extent)
				_, existed, owned, err := p.ApplyMove(id, seg)
				if err != nil || !owned {
					t.Errorf("seed %d: move(%d): owned=%v err=%v", seed, id, owned, err)
					return false
				}
				if _, had := model[id]; existed != had {
					t.Errorf("seed %d: move(%d) existed=%v, model had=%v", seed, id, existed, had)
					return false
				}
				model[id] = seg
			case 3: // compaction events
				switch rng.Intn(3) {
				case 0:
					p.ForceCompact()
				case 1:
					p.CompactShard(rng.Intn(p.NumShards()))
				case 2:
					// Hold a freeze open across a query round so the
					// frozen layer is live on the read path, then finish.
					s := p.topo.Load().shards[rng.Intn(p.NumShards())]
					if f := s.freeze(); f != nil {
						if !agreesWithFresh(t, seed, rng, p, model, ds) {
							return false
						}
						s.finishCompact(f)
					}
				}
			}
			if p.Len() != len(model) {
				t.Errorf("seed %d: op %d: Len=%d, model=%d", seed, op, p.Len(), len(model))
				return false
			}
			if op%29 == 0 && !agreesWithFresh(t, seed, rng, p, model, ds) {
				return false
			}
		}

		p.ForceCompact()
		for i := 0; i < p.NumShards(); i++ {
			if p.Pending(i) != 0 {
				t.Errorf("seed %d: shard %d pending %d after ForceCompact", seed, i, p.Pending(i))
				return false
			}
		}
		return agreesWithFresh(t, seed, rng, p, model, ds)
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 6
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// freshRef is a from-scratch packed build over the model's final item set —
// the oracle the updated pool must agree with.
type freshRef struct {
	tree  *rtree.Tree
	model map[uint32]geom.Segment
}

func buildFresh(t *testing.T, model map[uint32]geom.Segment) *freshRef {
	t.Helper()
	items := make([]rtree.Item, 0, len(model))
	for id, seg := range model {
		items = append(items, rtree.Item{MBR: seg.MBR(), ID: id})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
	tree, err := rtree.Build(items, rtree.Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	return &freshRef{tree: tree, model: model}
}

func (r *freshRef) dist(pt geom.Point) func(id uint32) float64 {
	return func(id uint32) float64 { return r.model[id].DistToPoint(pt) }
}

func agreesWithFresh(t *testing.T, seed int64, rng *rand.Rand, p *Pool, model map[uint32]geom.Segment, ds *dataset.Dataset) bool {
	t.Helper()
	ref := buildFresh(t, model)
	ext := ds.Extent
	for q := 0; q < 6; q++ {
		w := randomWindow(rng, ext)
		if !sameIDSet(ref.tree.AppendSearch(nil, w, ops.Null{}), p.FilterRangeAppend(nil, w)) {
			t.Errorf("seed %d: FilterRange mismatch on %v", seed, w)
			return false
		}
		wantR := refRange(ref, w)
		if !sameIDSet(wantR, p.RangeAppend(nil, w)) {
			t.Errorf("seed %d: Range mismatch on %v: want %v got %v", seed, w, wantR, p.RangeAppend(nil, w))
			return false
		}

		pt := randomLivePoint(rng, ext, model)
		if !sameIDSet(ref.tree.AppendSearchPoint(nil, pt, ops.Null{}), p.FilterPointAppend(nil, pt)) {
			t.Errorf("seed %d: FilterPoint mismatch at %v", seed, pt)
			return false
		}
		if !sameIDSet(refPoint(ref, pt, 2.0), p.PointAppend(nil, pt, 2.0)) {
			t.Errorf("seed %d: Point mismatch at %v", seed, pt)
			return false
		}

		wantID, wantD, wantOK := ref.tree.NearestWith(pt, ref.dist(pt), ops.Null{}, nil)
		got := p.NearestWith(pt, nil)
		if wantOK != got.OK || (wantOK && wantD != got.Dist) {
			t.Errorf("seed %d: Nearest mismatch at %v: want (%d,%g,%v) got %+v", seed, pt, wantID, wantD, wantOK, got)
			return false
		}

		for _, k := range []int{1, 3, len(model) + 2} {
			want := ref.tree.KNearestAppend(nil, pt, k, ref.dist(pt), ops.Null{}, nil)
			gotK, ok := p.KNearestAppend(nil, pt, k, nil)
			if !ok || !sameNeighborDistances(model, pt, want, gotK) {
				t.Errorf("seed %d: KNearest(k=%d) mismatch at %v: want %d nbs, got %d nbs", seed, k, pt, len(want), len(gotK))
				return false
			}
		}
	}
	return true
}

func refRange(r *freshRef, w geom.Rect) []uint32 {
	cands := r.tree.AppendSearch(nil, w, ops.Null{})
	out := cands[:0]
	for _, id := range cands {
		if r.model[id].IntersectsRect(w) {
			out = append(out, id)
		}
	}
	return out
}

func refPoint(r *freshRef, pt geom.Point, eps float64) []uint32 {
	cands := r.tree.AppendSearchPoint(nil, pt, ops.Null{})
	out := cands[:0]
	for _, id := range cands {
		if r.model[id].ContainsPoint(pt, eps) {
			out = append(out, id)
		}
	}
	return out
}

func sameIDSet(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]uint32(nil), a...)
	bs := append([]uint32(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// sameNeighborDistances compares two k-NN answers by distance sequence,
// recomputing each reported distance from the live model so stale geometry
// cannot sneak through on either side.
func sameNeighborDistances(model map[uint32]geom.Segment, pt geom.Point, a, b []rtree.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Dist != b[i].Dist {
			return false
		}
		if i > 0 && (a[i].Dist < a[i-1].Dist || b[i].Dist < b[i-1].Dist) {
			return false
		}
		sa, oka := model[a[i].ID]
		sb, okb := model[b[i].ID]
		if !oka || !okb || sa.DistToPoint(pt) != a[i].Dist || sb.DistToPoint(pt) != b[i].Dist {
			return false
		}
	}
	return true
}

// randomDataset builds short random segments on a ~2km square, duplicating
// ~10% exactly so NN/k-NN distance ties actually occur.
func randomDataset(rng *rand.Rand, n int) *dataset.Dataset {
	const side = 2000.0
	segs := make([]geom.Segment, 0, n)
	for len(segs) < n {
		if len(segs) > 0 && rng.Float64() < 0.10 {
			segs = append(segs, segs[rng.Intn(len(segs))])
			continue
		}
		segs = append(segs, randomSeg(rng, geom.Rect{Max: geom.Point{X: side, Y: side}}))
	}
	ext := geom.EmptyRect()
	for _, s := range segs {
		ext = ext.Union(s.MBR())
	}
	return &dataset.Dataset{Name: "quick", Segments: segs, RecordBytes: 32, Extent: ext}
}

func randomSeg(rng *rand.Rand, ext geom.Rect) geom.Segment {
	a := geom.Point{
		X: ext.Min.X + rng.Float64()*(ext.Max.X-ext.Min.X),
		Y: ext.Min.Y + rng.Float64()*(ext.Max.Y-ext.Min.Y),
	}
	ang := rng.Float64() * 2 * math.Pi
	l := 10 + rng.Float64()*120
	return geom.Segment{A: a, B: geom.Point{X: a.X + l*math.Cos(ang), Y: a.Y + l*math.Sin(ang)}}
}

func randomWindow(rng *rand.Rand, ext geom.Rect) geom.Rect {
	cx := ext.Min.X + rng.Float64()*(ext.Max.X-ext.Min.X)
	cy := ext.Min.Y + rng.Float64()*(ext.Max.Y-ext.Min.Y)
	hw := rng.Float64() * (ext.Max.X - ext.Min.X) / 4
	hh := rng.Float64() * (ext.Max.Y - ext.Min.Y) / 4
	return geom.Rect{Min: geom.Point{X: cx - hw, Y: cy - hh}, Max: geom.Point{X: cx + hw, Y: cy + hh}}
}

// randomLivePoint picks a uniform point or an exact endpoint of a live
// segment (so point queries hit and distance-zero NN cases appear).
func randomLivePoint(rng *rand.Rand, ext geom.Rect, model map[uint32]geom.Segment) geom.Point {
	if rng.Intn(2) == 0 && len(model) > 0 {
		for _, s := range model { // first map entry: arbitrary but fine
			if rng.Intn(2) == 0 {
				return s.A
			}
			return s.B
		}
	}
	return geom.Point{
		X: ext.Min.X + rng.Float64()*(ext.Max.X-ext.Min.X),
		Y: ext.Min.Y + rng.Float64()*(ext.Max.Y-ext.Min.Y),
	}
}
