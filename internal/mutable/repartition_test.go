package mutable

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"mobispatial/internal/geom"
)

// adaptiveTestPool is testPool with the repartitioner armed but its
// background loop disabled — tests drive RepartitionOnce / splitShard /
// mergeShards directly for determinism.
func adaptiveTestPool(t *testing.T, n, shards int) *Pool {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	ds := randomDataset(rng, n)
	p, err := NewFromDataset(ds, shards, Config{
		CompactInterval: -1,
		Adaptive:        AdaptiveConfig{Enabled: true, Interval: -1, MinShardItems: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// TestRepartitionOnceSplitsHotShard drives the heat-driven decision end to
// end: a single-shard pool under query traffic must split (n == 1 splits on
// any heat at all), bump the topology generation, and keep answering
// correctly; a direct merge folds it back.
func TestRepartitionOnceSplitsHotShard(t *testing.T) {
	p := adaptiveTestPool(t, 2000, 1)
	ds := p.Dataset()

	if p.RepartitionOnce() {
		t.Fatal("pool repartitioned with zero traffic")
	}
	v0 := p.Version(0)

	// Heat the lone shard and tick until the fold window admits the rate.
	// The first RepartitionOnce only arms the EWMA clock (Fold's first call
	// records a baseline without decaying), so the loop ticks repeatedly.
	hot := ds.Seg(0).MBR()
	ids := make([]uint32, 0, 256)
	deadline := time.Now().Add(15 * time.Second)
	for p.Splits() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hot shard never split")
		}
		for i := 0; i < 200; i++ {
			ids = p.RangeAppend(ids[:0], hot)
		}
		p.RepartitionOnce()
		time.Sleep(20 * time.Millisecond)
	}
	if got := p.NumShards(); got != 2 {
		t.Fatalf("NumShards = %d after split, want 2", got)
	}
	if p.Gen() != 1 || p.Splits() != 1 {
		t.Fatalf("gen=%d splits=%d after one split, want 1/1", p.Gen(), p.Splits())
	}
	// The generation prefix must make every pre-split version stale.
	if v := p.Version(0); v>>versGenShift != 1 || v == v0 {
		t.Fatalf("post-split Version(0) = %#x (gen %d); want gen 1, != pre-split %#x",
			v, v>>versGenShift, v0)
	}
	// Heat survives the swap: the children inherit the parent's rate.
	if h := p.ShardHeat(0) + p.ShardHeat(1); h <= 0 {
		t.Fatalf("children inherited no heat (%v)", h)
	}

	model := make(map[uint32]geom.Segment, ds.Len())
	for id := 0; id < ds.Len(); id++ {
		model[uint32(id)] = ds.Seg(uint32(id))
	}
	rng := rand.New(rand.NewSource(3))
	if !agreesWithFresh(t, 0, rng, p, model, ds) {
		t.Fatal("post-split answers diverge from fresh build")
	}

	if !p.mergeShards(p.topo.Load(), 0) {
		t.Fatal("merge of the split pair failed")
	}
	if got := p.NumShards(); got != 1 {
		t.Fatalf("NumShards = %d after merge, want 1", got)
	}
	if p.Gen() != 2 || p.Merges() != 1 {
		t.Fatalf("gen=%d merges=%d after the merge, want 2/1", p.Gen(), p.Merges())
	}
	if !agreesWithFresh(t, 0, rng, p, model, ds) {
		t.Fatal("post-merge answers diverge from fresh build")
	}
}

// TestRepartitionEquivalenceQuick is the adaptive ≡ static property: any
// random interleaving of writes, compactions, splits, and merges must leave
// the pool agreeing with a from-scratch packed build of the final item set.
// Splits and merges are forced directly (not heat-gated) so every run
// actually reshapes the topology, including mid-overlay and mid-freeze.
func TestRepartitionEquivalenceQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(rng, 30+rng.Intn(170))

		p, err := NewFromDataset(ds, 1+rng.Intn(4), Config{
			CompactInterval: -1,
			Adaptive:        AdaptiveConfig{Enabled: true, Interval: -1, MinShardItems: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()

		model := make(map[uint32]geom.Segment, ds.Len())
		for id := 0; id < ds.Len(); id++ {
			model[uint32(id)] = ds.Seg(uint32(id))
		}
		maxID := uint32(ds.Len() + 48)

		nops := 60 + rng.Intn(240)
		for op := 0; op < nops; op++ {
			id := uint32(rng.Intn(int(maxID)))
			switch rng.Intn(5) {
			case 0: // insert (possibly upsert)
				seg := randomSeg(rng, ds.Extent)
				if _, _, owned, err := p.ApplyInsert(id, seg); err != nil || !owned {
					t.Errorf("seed %d: insert(%d): owned=%v err=%v", seed, id, owned, err)
					return false
				}
				model[id] = seg
			case 1: // delete
				if _, existed, _, err := p.ApplyDelete(id); err != nil {
					t.Errorf("seed %d: delete(%d): %v", seed, id, err)
					return false
				} else if _, had := model[id]; existed != had {
					t.Errorf("seed %d: delete(%d) existed=%v, model had=%v", seed, id, existed, had)
					return false
				}
				delete(model, id)
			case 2: // move
				seg := randomSeg(rng, ds.Extent)
				if _, _, owned, err := p.ApplyMove(id, seg); err != nil || !owned {
					t.Errorf("seed %d: move(%d): owned=%v err=%v", seed, id, owned, err)
					return false
				}
				model[id] = seg
			case 3: // compaction events
				switch rng.Intn(3) {
				case 0:
					p.ForceCompact()
				case 1:
					p.CompactShard(rng.Intn(p.NumShards()))
				case 2:
					s := p.topo.Load().shards[rng.Intn(p.NumShards())]
					if f := s.freeze(); f != nil {
						if !agreesWithFresh(t, seed, rng, p, model, ds) {
							return false
						}
						s.finishCompact(f)
					}
				}
			case 4: // repartition events
				tp := p.topo.Load()
				if rng.Intn(2) == 0 {
					p.splitShard(tp, rng.Intn(len(tp.shards)))
				} else if len(tp.shards) >= 2 {
					p.mergeShards(tp, rng.Intn(len(tp.shards)-1))
				}
				// The topology must stay internally consistent whether or
				// not the repartition committed.
				nt := p.topo.Load()
				if len(nt.cuts) != len(nt.shards) || !nt.ownsAll {
					t.Errorf("seed %d: topology %d cuts / %d shards ownsAll=%v",
						seed, len(nt.cuts), len(nt.shards), nt.ownsAll)
					return false
				}
				for i := 1; i < len(nt.cuts); i++ {
					if nt.cuts[i] <= nt.cuts[i-1] {
						t.Errorf("seed %d: cuts not strictly ascending at %d", seed, i)
						return false
					}
				}
			}
			if p.Len() != len(model) {
				t.Errorf("seed %d: op %d: Len=%d, model=%d", seed, op, p.Len(), len(model))
				return false
			}
			if op%29 == 0 && !agreesWithFresh(t, seed, rng, p, model, ds) {
				return false
			}
		}

		p.ForceCompact()
		for i := 0; i < p.NumShards(); i++ {
			if p.Pending(i) != 0 {
				t.Errorf("seed %d: shard %d pending %d after ForceCompact", seed, i, p.Pending(i))
				return false
			}
		}
		for id, seg := range model {
			if got := p.SegOf(id); got != seg {
				t.Errorf("seed %d: SegOf(%d) = %v, model %v", seed, id, got, seg)
				return false
			}
		}
		return agreesWithFresh(t, seed, rng, p, model, ds)
	}
	cfg := &quick.Config{MaxCount: 20}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRepartitionWarmReadZeroAlloc: the warm read path's zero-alloc
// discipline must survive topology swaps — a split or merge publishes new
// shards, and queries through the new topology must still allocate nothing.
func TestRepartitionWarmReadZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	p := adaptiveTestPool(t, 1500, 2)
	measureQueries(t, "before split", p, 0)

	tp := p.topo.Load()
	if !p.splitShard(tp, 0) && !p.splitShard(p.topo.Load(), 1) {
		t.Fatal("neither shard split")
	}
	if p.NumShards() != 3 {
		t.Fatalf("NumShards = %d after split, want 3", p.NumShards())
	}
	measureQueries(t, "across split", p, 0)

	if !p.mergeShards(p.topo.Load(), 0) {
		t.Fatal("merge failed")
	}
	if p.NumShards() != 2 {
		t.Fatalf("NumShards = %d after merge, want 2", p.NumShards())
	}
	measureQueries(t, "across merge", p, 0)
}

// TestRepartitionSoak races the full cast: writers, readers, the background
// compactor, the background repartitioner, AND forced splits/merges, all
// concurrently. Under -race this is the repartitioner's memory-model check;
// under the plain runtime it verifies no acknowledged write is lost across
// any number of topology swaps (each writer owns a disjoint id set, so the
// final pool must hold exactly the union of the writers' final states).
func TestRepartitionSoak(t *testing.T) {
	checkOwners = true
	defer func() { checkOwners = false }()
	rng := rand.New(rand.NewSource(43))
	ds := randomDataset(rng, 800)
	p, err := NewFromDataset(ds, 4, Config{
		CompactInterval:  2 * time.Millisecond,
		CompactThreshold: 32,
		Adaptive: AdaptiveConfig{
			Enabled:       true,
			Interval:      3 * time.Millisecond,
			MinShardItems: 8,
			MaxShards:     16,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	dur := 400 * time.Millisecond
	if testing.Short() {
		dur = 100 * time.Millisecond
	}
	deadline := time.Now().Add(dur)

	const writers = 4
	const perWriter = 64
	base := uint32(ds.Len())
	finals := make([]map[uint32]geom.Segment, writers)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(int64(100 + w)))
			final := make(map[uint32]geom.Segment)
			for id := 0; id < ds.Len(); id++ {
				if id%writers == w {
					final[uint32(id)] = ds.Seg(uint32(id))
				}
			}
			for time.Now().Before(deadline) {
				var id uint32
				if wrng.Intn(2) == 0 {
					id = base + uint32(w*perWriter+wrng.Intn(perWriter))
				} else {
					id = uint32(wrng.Intn(ds.Len()/writers))*writers + uint32(w)
					if int(id) >= ds.Len() {
						continue
					}
				}
				switch wrng.Intn(4) {
				case 0:
					seg := randomSeg(wrng, ds.Extent)
					if _, _, _, err := p.ApplyInsert(id, seg); err != nil {
						t.Error(err)
						return
					}
					final[id] = seg
				case 1:
					if _, _, _, err := p.ApplyDelete(id); err != nil {
						t.Error(err)
						return
					}
					delete(final, id)
				default:
					seg := randomSeg(wrng, ds.Extent)
					if _, _, _, err := p.ApplyMove(id, seg); err != nil {
						t.Error(err)
						return
					}
					final[id] = seg
				}
			}
			finals[w] = final
		}()
	}

	const readers = 3
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(int64(200 + r)))
			ids := make([]uint32, 0, 2048)
			for time.Now().Before(deadline) {
				w := randomWindow(rrng, ds.Extent)
				ids = p.RangeAppend(ids[:0], w)
				seen := make(map[uint32]bool, len(ids))
				for _, id := range ids {
					if seen[id] {
						t.Errorf("range answer contains id %d twice", id)
						return
					}
					seen[id] = true
				}
				pt := geom.Point{
					X: ds.Extent.Min.X + rrng.Float64()*(ds.Extent.Max.X-ds.Extent.Min.X),
					Y: ds.Extent.Min.Y + rrng.Float64()*(ds.Extent.Max.Y-ds.Extent.Min.Y),
				}
				p.NearestWith(pt, nil)
				p.KNearestAppend(nil, pt, 5, nil)
				ids = p.PointAppend(ids[:0], pt, 2.0)
			}
		}()
	}

	// On top of the background repartitioner's heat-driven ticks, force
	// splits and merges directly so every soak run actually swaps topology
	// many times, not just when the heat happens to qualify.
	wg.Add(1)
	go func() {
		defer wg.Done()
		srng := rand.New(rand.NewSource(300))
		for time.Now().Before(deadline) {
			tp := p.topo.Load()
			if n := len(tp.shards); n > 1 && srng.Intn(2) == 0 {
				p.mergeShards(tp, srng.Intn(n-1))
			} else {
				p.splitShard(tp, srng.Intn(n))
			}
			p.ForceCompact()
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}

	p.ForceCompact()
	model := make(map[uint32]geom.Segment)
	for _, final := range finals {
		for id, seg := range final {
			model[id] = seg
		}
	}
	if p.Len() != len(model) {
		t.Fatalf("pool holds %d objects after %d splits / %d merges, writers' union is %d",
			p.Len(), p.Splits(), p.Merges(), len(model))
	}
	for id, seg := range model {
		if got := p.SegOf(id); got != seg {
			t.Fatalf("id %d: pool has %v, final state %v", id, got, seg)
		}
	}
	full := geom.Rect{
		Min: geom.Point{X: ds.Extent.Min.X - 200, Y: ds.Extent.Min.Y - 200},
		Max: geom.Point{X: ds.Extent.Max.X + 200, Y: ds.Extent.Max.Y + 200},
	}
	got := p.FilterRangeAppend(nil, full)
	if len(got) != len(model) {
		// All workers have quit, so the per-shard maps are safe to read.
		gotSet := make(map[uint32]bool, len(got))
		for _, id := range got {
			gotSet[id] = true
		}
		for id := range model {
			if gotSet[id] {
				continue
			}
			p.omu.Lock()
			sh, owned := p.ownerOf[id]
			p.omu.Unlock()
			if !owned {
				t.Logf("missing id %d: not in ownerOf", id)
				continue
			}
			t.Logf("missing id %d:%s", id, ownerIDState("owner", sh, id))
		}
		t.Fatalf("full-extent candidates: %d, want %d (splits %d merges %d shards %d)",
			len(got), len(model), p.Splits(), p.Merges(), p.NumShards())
	}
	if p.Splits() == 0 {
		t.Fatal("soak ran without a single split; repartition coverage lost")
	}
}
