//go:build !race

package mutable

// raceEnabled reports whether the race detector is active; alloc-count
// tests skip under it because instrumentation allocates.
const raceEnabled = false
